// Speedup curve for the parallel, cached restriction-set verifier. For each app the
// sweep first runs the pre-parallel engine — the serial pair loop with no verdict cache,
// no cheapest-first schedule, and no footprint projection, exactly what
// AnalyzeRestrictions did before the redesign — and then the full engine at 1/2/4/8
// worker threads. Every run must produce byte-identical per-pair verdicts; the bench
// exits nonzero if any thread count (or the legacy engine) disagrees.
//
// Emits one JSON document on stdout (progress goes to stderr):
//
//   {"apps": [{"app": "Zhihu", "pairs": N, "restrictions": R,
//              "baseline": {"config": "legacy serial engine", "seconds": ...},
//              "sweep": [{"threads": 1, "seconds": ..., "speedup": ...,
//                         "speedup_vs_1thread": ..., "cache_hit_rate": ...,
//                         "identical_restrictions": true}, ...]}, ...],
//    "hardware_concurrency": N, "identical_everywhere": true}
//
// "speedup" is the end-to-end AnalyzeRestrictions improvement over the baseline row —
// what a caller of the old API gains by moving to this engine at that thread count.
// "speedup_vs_1thread" isolates the threading contribution alone; on a single-core
// machine it stays near 1.0 while "speedup" still reflects the cache + projection wins.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/smallbank.h"
#include "src/apps/todo.h"
#include "src/apps/zhihu.h"
#include "src/pipeline/pipeline.h"
#include "src/support/strings.h"

namespace {

using noctua::verifier::RestrictionReport;

// The per-pair verdicts, flattened for equality comparison across engine configs.
std::vector<std::string> VerdictLines(const RestrictionReport& report) {
  std::vector<std::string> out;
  out.reserve(report.pairs.size());
  for (const auto& v : report.pairs) {
    out.push_back(v.p + "|" + v.q + "|" + noctua::verifier::CheckOutcomeName(v.commutativity) +
                  "|" + noctua::verifier::CheckOutcomeName(v.semantic));
  }
  return out;
}

}  // namespace

int main() {
  using namespace noctua;

  struct AppCase {
    const char* name;
    app::App app;
  };
  std::vector<AppCase> cases;
  cases.push_back({"Todo", apps::MakeTodoApp()});
  cases.push_back({"SmallBank", apps::MakeSmallBankApp()});
  cases.push_back({"Zhihu", apps::MakeZhihuApp()});

  const int kThreadCounts[] = {1, 2, 4, 8};
  bool identical_everywhere = true;

  std::string json = "{" + bench::BenchJsonPreamble("parallel_sweep") + ", \"apps\": [";
  for (size_t c = 0; c < cases.size(); ++c) {
    AppCase& app_case = cases[c];
    PipelineOptions analysis_only;
    analysis_only.verify = false;
    analyzer::AnalysisResult analysis = Pipeline::Run(app_case.app, analysis_only).analysis;

    // The pre-redesign engine: one thread, every pair pays a full solver run over the
    // whole schema. This is the "1 thread" end-to-end baseline the speedups compare to.
    PipelineOptions legacy;
    legacy.parallel.threads = 1;
    legacy.parallel.cache = false;
    legacy.parallel.cheapest_first = false;
    legacy.checker.project_footprint = false;
    fprintf(stderr, "[parallel_sweep] %s: legacy serial engine...\n", app_case.name);
    RestrictionReport baseline = Pipeline::Verify(app_case.app, analysis, legacy);
    std::vector<std::string> reference = VerdictLines(baseline);
    fprintf(stderr, "[parallel_sweep] %s: legacy %.3fs (%zu pairs, %zu restrictions)\n",
            app_case.name, baseline.total_seconds, baseline.pairs.size(),
            baseline.num_restrictions());

    json += std::string(c ? ", " : "") + "{\"app\": \"" + app_case.name +
            "\", \"pairs\": " + std::to_string(baseline.pairs.size()) +
            ", \"restrictions\": " + std::to_string(baseline.num_restrictions()) +
            ", \"baseline\": {\"config\": \"legacy serial engine\", \"seconds\": " +
            FormatDouble(baseline.total_seconds, 3) + "}, \"sweep\": [";

    double one_thread_seconds = 0;
    for (size_t t = 0; t < std::size(kThreadCounts); ++t) {
      PipelineOptions options;
      options.parallel.threads = kThreadCounts[t];
      RestrictionReport report = Pipeline::Verify(app_case.app, analysis, options);
      if (kThreadCounts[t] == 1) {
        one_thread_seconds = report.total_seconds;
      }
      bool identical = VerdictLines(report) == reference;
      identical_everywhere = identical_everywhere && identical;
      double speedup = baseline.total_seconds / report.total_seconds;
      double vs_one = one_thread_seconds / report.total_seconds;
      fprintf(stderr,
              "[parallel_sweep] %s: %d thread(s) %.3fs  speedup %.2fx  "
              "(vs 1 thread %.2fx, cache hit rate %.2f)%s\n",
              app_case.name, kThreadCounts[t], report.total_seconds, speedup, vs_one,
              report.stats.CacheHitRate(), identical ? "" : "  VERDICTS DIVERGED");
      json += std::string(t ? ", " : "") +
              "{\"threads\": " + std::to_string(kThreadCounts[t]) +
              ", \"seconds\": " + FormatDouble(report.total_seconds, 3) +
              ", \"speedup\": " + FormatDouble(speedup, 2) +
              ", \"speedup_vs_1thread\": " + FormatDouble(vs_one, 2) +
              ", \"cache_hit_rate\": " + FormatDouble(report.stats.CacheHitRate(), 4) +
              ", \"cache_hits\": " + std::to_string(report.stats.cache_hits) +
              ", \"solver_checks\": " + std::to_string(report.stats.solver_checks) +
              ", \"prefiltered\": " + std::to_string(report.stats.prefiltered) +
              ", \"pool_steals\": " + std::to_string(report.stats.pool_steals) +
              ", \"phases\": " + bench::PhaseTimingJson(report) +
              ", \"identical_restrictions\": " + (identical ? "true" : "false") + "}";
    }
    json += "]}";
  }
  json += "], \"hardware_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) +
          ", \"identical_everywhere\": " + (identical_everywhere ? "true" : "false") + "}";
  printf("%s\n", json.c_str());
  if (!identical_everywhere) {
    fprintf(stderr, "[parallel_sweep] FAILED: some engine config changed a verdict\n");
    return 1;
  }
  return 0;
}
