// Regenerates paper Table 5: comparison of Noctua's analyzer-driven results against the
// spec-driven baseline (the role Rigi plays for SmallBank and Hamsaz for Courseware) on
// the two standard benchmarks. Both must find the same restriction set (§6.2).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/courseware.h"
#include "src/apps/smallbank.h"
#include "src/baseline/specs.h"
#include "src/pipeline/pipeline.h"
#include "src/support/table.h"

int main() {
  using namespace noctua;
  printf("== Table 5: Noctua vs spec-driven baseline on standard benchmarks ==\n\n");
  TextTable table({"Application", "Com. Noctua", "Com. Baseline", "Sem. Noctua",
                   "Sem. Baseline"});

  struct Case {
    const char* name;
    app::App app;
    std::vector<soir::CodePath> spec;
  };
  std::vector<Case> cases;
  {
    app::App sb = apps::MakeSmallBankApp();
    auto spec = baseline::SmallBankSpec(sb.schema());
    cases.push_back({"SmallBank", std::move(sb), std::move(spec)});
  }
  {
    app::App cw = apps::MakeCoursewareApp();
    auto spec = baseline::CoursewareSpec(cw.schema());
    cases.push_back({"Courseware", std::move(cw), std::move(spec)});
  }

  for (Case& c : cases) {
    // The Noctua column runs the full pipeline; the baseline column verifies the
    // hand-written spec paths with the same checker configuration.
    verifier::RestrictionReport noctua_report = Pipeline::Run(c.app).restrictions;
    verifier::RestrictionReport base_report =
        verifier::AnalyzeRestrictions(verifier::Checker(c.app.schema()), c.spec);
    table.AddRow({c.name, std::to_string(noctua_report.com_failures()),
                  std::to_string(base_report.com_failures()),
                  std::to_string(noctua_report.sem_failures()),
                  std::to_string(base_report.sem_failures())});
    printf("%s restricted pairs (Noctua):\n", c.name);
    for (const std::string& pair : noctua_report.RestrictedPairNames()) {
      printf("  %s\n", pair.c_str());
    }
  }
  printf("\n%s\n", table.Render().c_str());
  printf("Paper reference (Table 5): SmallBank 0/0 com, 4/4 sem; Courseware 1/1 com,\n"
         "1/1 sem. Expected sem failures: (TransactSavings,TransactSavings),\n"
         "(SendPayment,SendPayment), (Amalgamate,Amalgamate), (Amalgamate,SendPayment);\n"
         "com failure: (AddCourse,DeleteCourse); sem failure: (Enroll,DeleteCourse).\n");
  return 0;
}
