// Robustness-under-failure degradation curves — the repo's first experiment beyond the
// paper: throughput and tail latency of the PoR deployment and the SC baseline as the
// network loses an increasing fraction of messages. Emits a JSON document on stdout
// (tables and progress go to stderr) so the curve can be plotted directly:
//
//   {"app": "SmallBank", ..., "series": [{"mode": "PoR", "points": [...]}, ...]}
//
// Each point also reports the recovery machinery's work (retransmissions, dedup hits,
// anti-entropy replays) and asserts the safety properties: every cell of the sweep must
// converge with zero restriction-set violations, faults or not.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/smallbank.h"
#include "src/pipeline/pipeline.h"
#include "src/repl/simulator.h"
#include "src/support/strings.h"

int main() {
  using namespace noctua;
  app::App bank = apps::MakeSmallBankApp();
  PipelineResult pipeline = Pipeline::Run(bank);
  const analyzer::AnalysisResult& analysis = pipeline.analysis;
  repl::ConflictTable conflicts;
  for (const auto& [p, q] : pipeline.restrictions.RestrictedViewPairs()) {
    conflicts.AddPair(p, q);
  }

  const std::vector<double> kDropRates = {0.0, 0.01, 0.02, 0.05, 0.1, 0.2};
  const double kDurationMs = 800;
  const double kWriteRatio = 0.3;

  struct Mode {
    const char* name;
    bool sc;
  };
  const Mode kModes[] = {{"PoR", false}, {"SC", true}};

  bool all_safe = true;
  std::string json = "{" + noctua::bench::BenchJsonPreamble("fault_sweep") +
                     ", \"app\": \"SmallBank\", \"write_ratio\": " +
                     FormatDouble(kWriteRatio, 2) +
                     ", \"duration_ms\": " + FormatDouble(kDurationMs, 0) +
                     ", \"series\": [";
  for (size_t m = 0; m < std::size(kModes); ++m) {
    const Mode& mode = kModes[m];
    json += std::string(m ? ", " : "") + "{\"mode\": \"" + mode.name +
            "\", \"points\": [";
    for (size_t d = 0; d < kDropRates.size(); ++d) {
      double drop = kDropRates[d];
      repl::SimOptions options;
      options.duration_ms = kDurationMs;
      options.write_ratio = kWriteRatio;
      options.strong_consistency = mode.sc;
      options.faults = repl::FaultPlan::Lossy(drop);
      repl::ConflictTable table = conflicts;
      if (mode.sc) {
        table.SetTotal(true);
      }
      repl::Simulator sim(bank.schema(), analysis.paths, table, options);
      repl::SimResult r = sim.Run();
      all_safe = all_safe && r.converged && r.conflict_violations == 0;
      fprintf(stderr, "[fault_sweep] %-3s drop=%.2f: %7.0f op/s  p99 %7.2f ms%s%s\n",
              mode.name, drop, r.ThroughputOpsPerSec(), r.p99_latency_ms,
              r.converged ? "" : "  DIVERGED",
              r.conflict_violations ? "  VIOLATIONS" : "");
      json += std::string(d ? ", " : "") + "{\"drop\": " + FormatDouble(drop, 2) +
              ", \"throughput_ops\": " + FormatDouble(r.ThroughputOpsPerSec(), 1) +
              ", \"avg_latency_ms\": " + FormatDouble(r.avg_latency_ms, 3) +
              ", \"p99_latency_ms\": " + FormatDouble(r.p99_latency_ms, 3) +
              ", \"completed\": " + std::to_string(r.completed_requests) +
              ", \"timed_out\": " + std::to_string(r.timed_out_requests) +
              ", \"messages_dropped\": " + std::to_string(r.messages_dropped) +
              ", \"retransmissions\": " + std::to_string(r.retransmissions) +
              ", \"duplicates_ignored\": " + std::to_string(r.duplicates_ignored) +
              ", \"effects_replayed\": " + std::to_string(r.effects_replayed) +
              ", \"converged\": " + (r.converged ? "true" : "false") +
              ", \"conflict_violations\": " + std::to_string(r.conflict_violations) + "}";
    }
    json += "]}";
  }
  json += "]}";
  printf("%s\n", json.c_str());
  if (!all_safe) {
    fprintf(stderr, "[fault_sweep] FAILED: a cell diverged or admitted a conflict\n");
    return 1;
  }
  return 0;
}
