// Runtime-enforcement sweep — the end-to-end oracle as a benchmark. Three experiments
// in one JSON document (stdout; tables and progress on stderr):
//
//   1. "grid": every evaluated app under enforced PoR across the chaos grid
//      (3 fault plans x 3 seeds). Each cell must converge, admit zero conflicting
//      [grant, release) overlaps, and produce an execution trace the offline checker
//      validates cleanly against the full restriction set. Any failure exits 1 — this
//      is the safety gate CI runs.
//   2. "modes": SmallBank under the jittery plan in three consistency modes. Summed
//      over seeds, throughput must order strictly: SC < enforced PoR < unenforced PoR.
//      The left inequality is the paper's payoff (fine-grained coordination beats
//      serializing everything); the right one proves the enforcement cost model is
//      alive (a real coordination service is not free).
//   3. "curve": SmallBank enforced with growing prefixes of its restriction set —
//      throughput against the number of enforced pairs, i.e. what an oversized
//      restriction set costs at runtime (the "lost throughput" half of the oracle;
//      the other half — a too-small set — is what the trace checker catches).
//
// NOCTUA_ENFORCE_SHARDS / NOCTUA_ENFORCE_LEASE_MS tune the service (strictly
// validated); NOCTUA_COORD_SELFCHECK=1 additionally audits coordinator state after
// every service call.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/analyzer/analyzer.h"
#include "src/apps/apps.h"
#include "src/apps/smallbank.h"
#include "src/repl/simulator.h"
#include "src/repl/trace_check.h"
#include "src/support/strings.h"
#include "src/verifier/report.h"

namespace {

using namespace noctua;
using repl::ConflictTable;
using repl::FaultPlan;
using repl::SimOptions;
using repl::SimResult;

struct PlanCase {
  const char* name;
  FaultPlan plan;
};

std::vector<PlanCase> ChaosPlans() {
  std::vector<PlanCase> plans;
  plans.push_back({"lossy", FaultPlan::Lossy(/*drop=*/0.08, /*duplicate=*/0.05)});
  plans.push_back({"jittery", FaultPlan::Jittery(/*jitter_ms=*/2.0, /*reorder=*/0.25,
                                                 /*spike=*/0.05, /*spike_mean_ms=*/10.0)});
  FaultPlan crashy = FaultPlan::CrashRestart(/*site=*/2, /*at_ms=*/80, /*restart_ms=*/160,
                                             /*drop=*/0.02);
  crashy.coordinator_outages.push_back({200, 240});
  plans.push_back({"crashy", crashy});
  return plans;
}

// Same table policy as the chaos harness and the enforcement tests: the verifier's
// restriction set for the fast apps, the syntactic over-approximation for the two
// SMT-heavy ones.
ConflictTable ConflictsFor(const app::App& a, const std::string& name,
                           const analyzer::AnalysisResult& res) {
  auto eff = res.EffectfulPaths();
  if (name == "Zhihu" || name == "OwnPhotos") {
    return repl::ConservativeConflicts(a.schema(), eff);
  }
  verifier::RestrictionReport report = verifier::AnalyzeRestrictions(
      verifier::Checker(a.schema()), eff, {}, res.paths);
  ConflictTable table;
  for (const auto& v : report.pairs) {
    if (v.Restricted()) {
      table.AddPair(v.p.substr(0, v.p.find('#')), v.q.substr(0, v.q.find('#')));
    }
  }
  return table;
}

SimResult RunOne(const app::App& a, const analyzer::AnalysisResult& res,
                 const ConflictTable& table, const FaultPlan& plan, uint64_t seed,
                 double duration_ms, bool enforce, bool sc,
                 const repl::EnforceOptions& knobs) {
  SimOptions options;
  options.duration_ms = duration_ms;
  options.write_ratio = 0.5;
  options.seed = seed;
  options.faults = plan;
  options.strong_consistency = sc;
  options.enforce = knobs;
  options.enforce.enabled = enforce;
  repl::Simulator sim(a.schema(), res.paths, table, options);
  return sim.Run();
}

}  // namespace

int main() {
  // Fail fast on malformed knobs before spending any simulation time.
  repl::EnforceOptions knobs = repl::ApplyEnforceEnv();

  bool all_safe = true;
  std::string json = "{" + bench::BenchJsonPreamble("enforce_sweep") +
                     ", \"lease_ms\": " + FormatDouble(knobs.lease_ms, 1) +
                     ", \"num_shards\": " + std::to_string(knobs.num_shards);

  // --- 1. Enforced chaos grid over every evaluated app -------------------------------
  json += ", \"grid\": [";
  bool first_cell = true;
  for (const auto& entry : apps::EvaluatedApps()) {
    app::App a = entry.make();
    analyzer::AnalysisResult res = analyzer::AnalyzeApp(a);
    ConflictTable conflicts = ConflictsFor(a, entry.name, res);
    for (const PlanCase& pc : ChaosPlans()) {
      for (uint64_t seed : {11u, 22u, 33u}) {
        SimResult r = RunOne(a, res, conflicts, pc.plan, seed, /*duration_ms=*/250,
                             /*enforce=*/true, /*sc=*/false, knobs);
        repl::TraceCheckResult check = repl::CheckTrace(r.trace, conflicts);
        bool safe = r.converged && r.conflict_violations == 0 && check.ok() &&
                    r.completed_requests > 0 && r.lease_acquires > 0;
        all_safe = all_safe && safe;
        fprintf(stderr,
                "[enforce_sweep] %-10s %-7s seed=%2llu: %6.0f op/s  acq=%4llu exp=%3llu "
                "degr=%3llu%s%s%s\n",
                entry.name.c_str(), pc.name, (unsigned long long)seed,
                r.ThroughputOpsPerSec(), (unsigned long long)r.lease_acquires,
                (unsigned long long)r.lease_expiries, (unsigned long long)r.degradations,
                r.converged ? "" : "  DIVERGED",
                r.conflict_violations ? "  OVERLAPS" : "",
                check.ok() ? "" : "  TRACE-VIOLATION");
        if (!check.ok() && check.has_witness) {
          fprintf(stderr, "[enforce_sweep]   witness: %s\n",
                  check.first.Describe().c_str());
        }
        json += std::string(first_cell ? "" : ", ") + "{\"app\": \"" + entry.name +
                "\", \"plan\": \"" + pc.name +
                "\", \"seed\": " + std::to_string(seed) +
                ", \"throughput_ops\": " + FormatDouble(r.ThroughputOpsPerSec(), 1) +
                ", \"p99_latency_ms\": " + FormatDouble(r.p99_latency_ms, 3) +
                ", \"lease_acquires\": " + std::to_string(r.lease_acquires) +
                ", \"lease_expiries\": " + std::to_string(r.lease_expiries) +
                ", \"degradations\": " + std::to_string(r.degradations) +
                ", \"lease_laps\": " + std::to_string(r.lease_laps) +
                ", \"fence_held_effects\": " + std::to_string(r.fence_held_effects) +
                ", \"converged\": " + (r.converged ? "true" : "false") +
                ", \"conflict_violations\": " + std::to_string(r.conflict_violations) +
                ", \"trace_ops\": " + std::to_string(check.ops) +
                ", \"trace_violations\": " + std::to_string(check.violations) + "}";
        first_cell = false;
      }
    }
  }
  json += "]";

  // --- 2. Consistency-mode comparison on SmallBank -----------------------------------
  app::App bank = apps::MakeSmallBankApp();
  analyzer::AnalysisResult bank_res = analyzer::AnalyzeApp(bank);
  ConflictTable bank_table = ConflictsFor(bank, "SmallBank", bank_res);
  ConflictTable total;
  total.SetTotal(true);
  FaultPlan jittery = ChaosPlans()[1].plan;
  const double kModeDurationMs = 600;

  struct ModeCase {
    const char* name;
    const ConflictTable* table;
    bool enforce;
    bool sc;
  };
  const ModeCase kModes[] = {{"SC", &total, false, true},
                             {"PoR-enforced", &bank_table, true, false},
                             {"PoR", &bank_table, false, false}};
  double mode_tput[3] = {0, 0, 0};
  json += ", \"modes\": [";
  for (size_t m = 0; m < std::size(kModes); ++m) {
    uint64_t completed = 0;
    double ms = 0;
    for (uint64_t seed : {11u, 22u, 33u}) {
      SimResult r = RunOne(bank, bank_res, *kModes[m].table, jittery, seed,
                           kModeDurationMs, kModes[m].enforce, kModes[m].sc, knobs);
      all_safe = all_safe && r.converged && r.conflict_violations == 0;
      completed += r.completed_requests;
      ms += r.duration_ms;
    }
    mode_tput[m] = ms > 0 ? completed / (ms / 1000.0) : 0;
    fprintf(stderr, "[enforce_sweep] mode %-12s: %7.0f op/s over 3 seeds\n",
            kModes[m].name, mode_tput[m]);
    json += std::string(m ? ", " : "") + "{\"mode\": \"" + kModes[m].name +
            "\", \"throughput_ops\": " + FormatDouble(mode_tput[m], 1) + "}";
  }
  json += "]";
  bool ordered = mode_tput[0] < mode_tput[1] && mode_tput[1] < mode_tput[2];
  if (!ordered) {
    fprintf(stderr,
            "[enforce_sweep] FAILED: expected SC < PoR-enforced < PoR, got "
            "%.0f / %.0f / %.0f\n",
            mode_tput[0], mode_tput[1], mode_tput[2]);
  }

  // --- 3. Throughput against enforced-set size (SmallBank prefixes) ------------------
  json += ", \"curve\": [";
  std::vector<std::pair<std::string, std::string>> pairs(bank_table.pairs().begin(),
                                                         bank_table.pairs().end());
  bool first_point = true;
  for (size_t n = 0; n <= pairs.size(); n += 2) {
    ConflictTable prefix;
    for (size_t i = 0; i < n; ++i) {
      prefix.AddPair(pairs[i].first, pairs[i].second);
    }
    uint64_t completed = 0, waits = 0, grants = 0;
    double ms = 0;
    for (uint64_t seed : {11u, 22u, 33u}) {
      SimResult r = RunOne(bank, bank_res, prefix, jittery, seed, kModeDurationMs,
                           /*enforce=*/true, /*sc=*/false, knobs);
      all_safe = all_safe && r.converged;
      completed += r.completed_requests;
      waits += r.lock_waits;
      grants += r.lease_grants;
      ms += r.duration_ms;
    }
    double tput = ms > 0 ? completed / (ms / 1000.0) : 0;
    fprintf(stderr, "[enforce_sweep] |set|=%2zu: %7.0f op/s  lock_waits=%llu\n", n, tput,
            (unsigned long long)waits);
    json += std::string(first_point ? "" : ", ") + "{\"set_size\": " +
            std::to_string(n) + ", \"throughput_ops\": " + FormatDouble(tput, 1) +
            ", \"lock_waits\": " + std::to_string(waits) +
            ", \"lease_grants\": " + std::to_string(grants) + "}";
    first_point = false;
  }
  json += "]}";
  printf("%s\n", json.c_str());

  if (!all_safe || !ordered) {
    fprintf(stderr, "[enforce_sweep] FAILED: %s\n",
            !all_safe ? "a cell diverged, overlapped, or failed the trace check"
                      : "consistency modes are not strictly ordered");
    return 1;
  }
  return 0;
}
