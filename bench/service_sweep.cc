// Closed-loop load sweep against the Noctua service. Starts an in-process noctua-serve
// Server (loopback, ephemeral port, artifact persistence on), then drives it with one
// closed-loop client thread per tenant: each tenant walks the same schedule of
// (app, revision) analyze requests, where revision r of an app omits its r-th view —
// the service-side model of "the developer deleted an endpoint".
//
// Two full passes run back to back. The "cold" pass hits a fresh engine and empty
// per-tenant stores; the "warm" pass repeats the identical schedule against the
// now-warm engine (shared verdict cache + per-tenant artifact replay). The bench then
// checks the service's two core promises and exits nonzero if either fails:
//
//   1. every response's restriction set is byte-identical to a direct Pipeline::Run of
//      the same revision built in-process (the daemon adds no semantic drift), and
//   2. the warm pass answers the median identical request >= 5x faster than cold.
//
// Emits one JSON document on stdout (progress to stderr):
//
//   {"bench": "service_sweep", ..., "config": {...},
//    "cold": {"requests": N, "seconds": ..., "throughput_rps": ...,
//             "latency_seconds": {"p50": ..., "p95": ..., "p99": ...}},
//    "warm": {...same shape...},
//    "speedup": {"pass": ..., "per_request_median": ..., "per_request_min": ...,
//                "target": 5.0},
//    "identical_restrictions": true, "warm_solver_checks": 0,
//    "tenant_phase_latency": [{"tenant": ..., "app": ..., "mode": "cold"|"warm",
//                              "queue_wait_micros": {...}, "handle_micros": {...}}, ...],
//    "queue_wait_uncontended_ok": true,
//    "apps": [{"app": "Todo", "revisions": 3, "pairs_full": ...}, ...]}
//
// tenant_phase_latency comes from the service's own labeled histograms (scraped off
// /metrics after the warm pass): queue-wait vs handle time per (tenant, app, mode) as
// the server measured them — the attribution an operator sees, checked here against
// what a load generator knows to be true. In the uncontended configuration
// (tenants <= workers) the closed-loop clients can never queue behind each other, so
// the bench gates every tenant's queue-wait p95 at ~0 (<= 25ms of scheduling noise).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/apps.h"
#include "src/obs/json.h"
#include "src/pipeline/pipeline.h"
#include "src/service/client.h"
#include "src/service/server.h"
#include "src/support/stopwatch.h"

namespace {

using noctua::Pipeline;
using noctua::Stopwatch;
using noctua::bench::ComputePercentiles;
using noctua::bench::Percentiles;
using noctua::bench::PercentilesJson;
using noctua::obs::JsonPtr;
using noctua::obs::ParseJson;
using noctua::service::Client;
using noctua::service::HttpResponse;

constexpr double kSpeedupTarget = 5.0;

// The schedule every tenant walks: app plus the views its revisions omit (revision 0
// omits nothing). Small apps keep the sweep snappy; revisions cover the
// "analyze my edited app" request shape end to end.
struct AppPlan {
  std::string app;
  std::vector<std::string> revision_omits;  // revision_omits[r] = views omitted by rev r
};

struct RequestKey {
  std::string app;
  size_t revision;
  bool operator<(const RequestKey& o) const {
    return app != o.app ? app < o.app : revision < o.revision;
  }
};

struct RequestSample {
  double seconds = 0;
  uint64_t solver_checks = 0;
  std::vector<std::string> restrictions;
};

// One tenant's full pass over the schedule; latencies measured client-side.
struct TenantPass {
  std::vector<double> latencies;
  std::map<RequestKey, RequestSample> samples;
  bool ok = true;
  std::string error;
};

std::vector<std::string> RestrictionsOf(const JsonPtr& doc) {
  std::vector<std::string> out;
  for (const JsonPtr& item : doc->Get("restrictions")->AsArray()) {
    out.push_back(item->AsString());
  }
  return out;
}

TenantPass RunTenantPass(const std::string& tenant, int port,
                         const std::vector<AppPlan>& plans) {
  TenantPass pass;
  Client client("127.0.0.1", port);
  for (const AppPlan& plan : plans) {
    for (size_t r = 0; r < plan.revision_omits.size(); ++r) {
      std::vector<std::string> omit;
      if (!plan.revision_omits[r].empty()) {
        omit.push_back(plan.revision_omits[r]);
      }
      HttpResponse resp;
      std::string error;
      Stopwatch watch;
      if (!client.Analyze(tenant, plan.app, omit, &resp, &error)) {
        pass.ok = false;
        pass.error = "transport: " + error;
        return pass;
      }
      double seconds = watch.ElapsedSeconds();
      if (resp.status != 200) {
        pass.ok = false;
        pass.error = "HTTP " + std::to_string(resp.status) + ": " + resp.body;
        return pass;
      }
      JsonPtr doc = ParseJson(resp.body, &error);
      if (doc == nullptr) {
        pass.ok = false;
        pass.error = "response not strict JSON: " + error;
        return pass;
      }
      RequestSample sample;
      sample.seconds = seconds;
      sample.solver_checks =
          static_cast<uint64_t>(doc->Get("stats")->Get("solver_checks")->AsInt());
      sample.restrictions = RestrictionsOf(doc);
      pass.latencies.push_back(seconds);
      pass.samples[{plan.app, r}] = std::move(sample);
    }
  }
  return pass;
}

// Direct in-process ground truth for one revision: the registry app minus the omitted
// view, through the classic static facade.
std::vector<std::string> DirectRestrictions(const std::string& app_name,
                                            const std::string& omit_view) {
  for (const noctua::apps::AppEntry& entry : noctua::apps::EvaluatedApps()) {
    if (entry.name != app_name) {
      continue;
    }
    noctua::app::App base = entry.make();
    if (omit_view.empty()) {
      return Pipeline::Run(base).restrictions.RestrictedPairNames();
    }
    noctua::app::App rev(base.name(), base.source_file());
    rev.schema() = base.schema();
    for (const auto& view : base.views()) {
      if (view.name != omit_view) {
        rev.AddView(view.name, view.fn, view.fingerprint);
      }
    }
    return Pipeline::Run(rev).restrictions.RestrictedPairNames();
  }
  return {};
}

std::string PassJson(const std::vector<TenantPass>& passes, double wall_seconds) {
  std::vector<double> latencies;
  size_t requests = 0;
  for (const TenantPass& pass : passes) {
    latencies.insert(latencies.end(), pass.latencies.begin(), pass.latencies.end());
    requests += pass.latencies.size();
  }
  Percentiles p = ComputePercentiles(latencies);
  double rps = wall_seconds > 0 ? static_cast<double>(requests) / wall_seconds : 0;
  return "{\"requests\": " + std::to_string(requests) +
         ", \"seconds\": " + noctua::FormatDouble(wall_seconds, 6) +
         ", \"throughput_rps\": " + noctua::FormatDouble(rps, 2) +
         ", \"latency_seconds\": " + PercentilesJson(p) + "}";
}

// One (tenant, app, mode) row of the server's labeled phase histograms.
struct PhaseRow {
  std::string tenant;
  std::string app;
  std::string mode;
  std::string queue_wait_json;  // the summary object, verbatim
  std::string handle_json;
  uint64_t queue_wait_p95 = 0;
};

// Scrapes /metrics and folds the labeled service.queue_wait_micros /
// service.handle_micros rows into per-(tenant, app, mode) phase rows.
bool ScrapePhaseRows(int port, std::vector<PhaseRow>* rows, std::string* error) {
  Client client("127.0.0.1", port);
  HttpResponse resp;
  if (!client.Get("/metrics", &resp, error)) {
    return false;
  }
  JsonPtr doc = ParseJson(resp.body, error);
  if (doc == nullptr) {
    return false;
  }
  std::map<std::tuple<std::string, std::string, std::string>, PhaseRow> by_key;
  for (const JsonPtr& row : doc->Get("labeled")->Get("histograms")->AsArray()) {
    const std::string& name = row->Get("name")->AsString();
    if (name != "service.queue_wait_micros" && name != "service.handle_micros") {
      continue;
    }
    std::tuple<std::string, std::string, std::string> key{
        row->Get("tenant")->AsString(), row->Get("app")->AsString(),
        row->Get("mode")->AsString()};
    PhaseRow& out = by_key[key];
    out.tenant = std::get<0>(key);
    out.app = std::get<1>(key);
    out.mode = std::get<2>(key);
    JsonPtr summary = row->Get("summary");
    std::string summary_json =
        "{\"count\": " + std::to_string(summary->Get("count")->AsInt()) +
        ", \"p50\": " + std::to_string(summary->Get("p50")->AsInt()) +
        ", \"p95\": " + std::to_string(summary->Get("p95")->AsInt()) +
        ", \"p99\": " + std::to_string(summary->Get("p99")->AsInt()) +
        ", \"max\": " + std::to_string(summary->Get("max")->AsInt()) + "}";
    if (name == "service.queue_wait_micros") {
      out.queue_wait_json = std::move(summary_json);
      out.queue_wait_p95 = static_cast<uint64_t>(summary->Get("p95")->AsInt());
    } else {
      out.handle_json = std::move(summary_json);
    }
  }
  for (auto& [key, row] : by_key) {
    rows->push_back(std::move(row));
  }
  return true;
}

std::vector<TenantPass> RunPass(int tenants, int port, const std::vector<AppPlan>& plans,
                                double* wall_seconds) {
  std::vector<TenantPass> passes(tenants);
  Stopwatch watch;
  std::vector<std::thread> threads;
  for (int t = 0; t < tenants; ++t) {
    threads.emplace_back([&, t] {
      passes[t] = RunTenantPass("tenant" + std::to_string(t), port, plans);
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  *wall_seconds = watch.ElapsedSeconds();
  return passes;
}

}  // namespace

int main(int argc, char** argv) {
  int tenants = 3;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--tenants" && i + 1 < argc) {
      tenants = std::atoi(argv[++i]);
    }
  }
  if (tenants < 1) {
    tenants = 1;
  }

  const std::vector<AppPlan> plans = {
      {"Todo", {"", "reprioritize", "clear_done"}},
      {"SmallBank", {"", "Amalgamate", "Balance"}},
  };

  std::string root = (std::filesystem::temp_directory_path() / "noctua_service_sweep").string();
  std::filesystem::remove_all(root);

  noctua::service::ServiceOptions options;
  options.workers = 4;
  options.max_queue = 64;  // closed-loop clients never outrun this; no 503s expected
  options.engine.artifact_root = root;
  noctua::service::Server server(options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "service_sweep: cannot start server: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "service_sweep: %d tenants x %zu apps x 3 revisions on port %d\n",
               tenants, plans.size(), server.port());

  double cold_seconds = 0;
  std::vector<TenantPass> cold = RunPass(tenants, server.port(), plans, &cold_seconds);
  double warm_seconds = 0;
  std::vector<TenantPass> warm = RunPass(tenants, server.port(), plans, &warm_seconds);

  // Scrape the server's own per-tenant phase attribution before stopping it.
  std::vector<PhaseRow> phase_rows;
  std::string scrape_error;
  bool scraped = ScrapePhaseRows(server.port(), &phase_rows, &scrape_error);
  if (!scraped) {
    std::fprintf(stderr, "service_sweep: /metrics scrape failed: %s\n",
                 scrape_error.c_str());
  }
  server.Stop();

  bool ok = true;
  for (const std::vector<TenantPass>* passes : {&cold, &warm}) {
    for (const TenantPass& pass : *passes) {
      if (!pass.ok) {
        std::fprintf(stderr, "service_sweep: request failed: %s\n", pass.error.c_str());
        ok = false;
      }
    }
  }
  if (!ok) {
    return 1;
  }

  // Promise 1: every service answer matches the direct pipeline byte for byte — across
  // tenants, passes, and revisions.
  bool identical = true;
  for (const AppPlan& plan : plans) {
    for (size_t r = 0; r < plan.revision_omits.size(); ++r) {
      std::vector<std::string> direct = DirectRestrictions(plan.app, plan.revision_omits[r]);
      for (const std::vector<TenantPass>* passes : {&cold, &warm}) {
        for (const TenantPass& pass : *passes) {
          const RequestSample& s = pass.samples.at({plan.app, r});
          if (s.restrictions != direct) {
            std::fprintf(stderr, "service_sweep: MISMATCH %s rev %zu: service %zu vs direct %zu\n",
                         plan.app.c_str(), r, s.restrictions.size(), direct.size());
            identical = false;
          }
        }
      }
    }
  }

  // Promise 2: the warm pass re-answers each tenant's identical request >= 5x faster
  // (median across all requests), with zero solver work.
  std::vector<double> speedups;
  uint64_t warm_solver_checks = 0;
  for (int t = 0; t < tenants; ++t) {
    for (const auto& [key, cold_sample] : cold[t].samples) {
      const RequestSample& warm_sample = warm[t].samples.at(key);
      if (warm_sample.seconds > 0) {
        speedups.push_back(cold_sample.seconds / warm_sample.seconds);
      }
      warm_solver_checks += warm_sample.solver_checks;
    }
  }
  Percentiles sp = ComputePercentiles(speedups);
  double min_speedup = speedups.empty() ? 0 : *std::min_element(speedups.begin(), speedups.end());
  // The gate is the pass-level wall-clock ratio, not the per-request median: inside the
  // cold pass, whichever tenant reaches a given (app, revision) first pays the solver
  // while the others already ride the shared verdict cache, so per-request "cold"
  // latencies understate the true cold cost. The full-pass ratio is dominated by the
  // genuinely cold requests and is stable run to run.
  double pass_speedup = warm_seconds > 0 ? cold_seconds / warm_seconds : 0;
  bool fast_enough = pass_speedup >= kSpeedupTarget;
  if (!fast_enough) {
    std::fprintf(stderr, "service_sweep: warm pass only %.1fx faster than cold (target %.1fx)\n",
                 pass_speedup, kSpeedupTarget);
  }

  std::string json = "{" + noctua::bench::BenchJsonPreamble("service_sweep");
  json += ", \"config\": {\"tenants\": " + std::to_string(tenants) +
          ", \"workers\": " + std::to_string(options.workers) +
          ", \"max_queue\": " + std::to_string(options.max_queue) +
          ", \"apps\": " + std::to_string(plans.size()) + ", \"revisions_per_app\": 3}";
  json += ", \"cold\": " + PassJson(cold, cold_seconds);
  json += ", \"warm\": " + PassJson(warm, warm_seconds);
  json += ", \"speedup\": {\"pass\": " + noctua::FormatDouble(pass_speedup, 2) +
          ", \"per_request_median\": " + noctua::FormatDouble(sp.p50, 2) +
          ", \"per_request_min\": " + noctua::FormatDouble(min_speedup, 2) +
          ", \"target\": " + noctua::FormatDouble(kSpeedupTarget, 1) + "}";
  json += ", \"identical_restrictions\": ";
  json += identical ? "true" : "false";
  json += ", \"warm_solver_checks\": " + std::to_string(warm_solver_checks);

  // Uncontended gate: with at least as many workers as closed-loop tenants, no request
  // ever waits behind another, so the server-measured queue-wait must be ~0.
  const bool uncontended = tenants <= options.workers;
  constexpr uint64_t kQueueWaitSlackMicros = 25000;
  bool queue_wait_ok = true;
  if (uncontended && scraped) {
    for (const PhaseRow& row : phase_rows) {
      if (row.queue_wait_p95 > kQueueWaitSlackMicros) {
        std::fprintf(stderr,
                     "service_sweep: uncontended queue-wait p95 %llu us for tenant %s"
                     " (limit %llu)\n",
                     static_cast<unsigned long long>(row.queue_wait_p95),
                     row.tenant.c_str(),
                     static_cast<unsigned long long>(kQueueWaitSlackMicros));
        queue_wait_ok = false;
      }
    }
  }
  json += ", \"tenant_phase_latency\": [";
  bool first = true;
  for (const PhaseRow& row : phase_rows) {
    if (row.queue_wait_json.empty() || row.handle_json.empty()) {
      continue;  // a row with only one phase means the request never completed
    }
    json += std::string(first ? "" : ", ") + "{\"tenant\": \"" + row.tenant +
            "\", \"app\": \"" + row.app + "\", \"mode\": \"" + row.mode +
            "\", \"queue_wait_micros\": " + row.queue_wait_json +
            ", \"handle_micros\": " + row.handle_json + "}";
    first = false;
  }
  json += "], \"queue_wait_uncontended\": ";
  json += uncontended ? "true" : "false";
  json += ", \"queue_wait_uncontended_ok\": ";
  json += queue_wait_ok ? "true" : "false";
  json += ", \"apps\": [";
  first = true;
  for (const AppPlan& plan : plans) {
    json += std::string(first ? "" : ", ") + "{\"app\": \"" + plan.app +
            "\", \"revisions\": " + std::to_string(plan.revision_omits.size()) + "}";
    first = false;
  }
  json += "]}\n";
  std::fputs(json.c_str(), stdout);

  std::filesystem::remove_all(root);
  return identical && fast_enough && scraped && queue_wait_ok ? 0 : 1;
}
