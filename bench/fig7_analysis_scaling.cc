// Regenerates paper Figure 7: pipeline cost as the codebase grows. Following the paper,
// each application's endpoint set is doubled and tripled ("codebase doubled and tripled
// by repeating the same set of HTTP endpoints"); analysis time must scale roughly
// linearly with the number of endpoints/code paths.
//
// Beyond the paper's figure, the bench also scales the *verifier* on the grown apps:
// the pair matrix is quadratic in endpoints, but the repeated endpoints are isomorphic,
// so the canonical-fingerprint verdict cache answers most of the extra pairs without a
// solver run — and the remaining pairs spread across 1/2/4/8 worker threads. Emits one
// JSON document on stdout (tables and progress go to stderr):
//
//   {"analysis": [{"app": ..., "points": [{"scale": 1, "ms": ..., "paths": ...}, ...]}],
//    "verification": [{"app": "Todo", "scale": ..., "pairs": ..., "cache_hit_rate": ...,
//                      "threads": [{"threads": 1, "seconds": ...}, ...]}, ...],
//    "hardware_concurrency": N}
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "src/apps/apps.h"
#include "src/pipeline/pipeline.h"
#include "src/support/strings.h"
#include "src/support/table.h"

namespace {

// Returns the entry's app with its endpoint set repeated `scale` times (fresh copies
// under distinct names) — the paper's codebase-growth model.
noctua::app::App Grow(const noctua::apps::AppEntry& entry, int scale) {
  noctua::app::App a = entry.make();
  noctua::app::App grown = entry.make();
  for (int rep = 1; rep < scale; ++rep) {
    for (const noctua::app::View& v : a.views()) {
      grown.AddView(v.name + "_copy" + std::to_string(rep), v.fn);
    }
  }
  return grown;
}

}  // namespace

int main() {
  using namespace noctua;
  fprintf(stderr,
          "== Figure 7: analysis time vs codebase size (1x / 2x / 3x endpoints) ==\n\n");
  TextTable table({"Application", "1x (ms)", "2x (ms)", "3x (ms)", "paths 1x/2x/3x"});
  PipelineOptions analysis_only;
  analysis_only.verify = false;

  std::string json = "{" + bench::BenchJsonPreamble("fig7_analysis_scaling") + ", \"analysis\": [";
  bool first_app = true;
  for (const auto& entry : apps::EvaluatedApps()) {
    double ms[3];
    size_t paths[3];
    for (int k = 1; k <= 3; ++k) {
      app::App grown = Grow(entry, k);
      // Repeat a few times and take the best to de-noise sub-millisecond runs.
      double best = 1e18;
      size_t np = 0;
      for (int trial = 0; trial < 3; ++trial) {
        analyzer::AnalysisResult res = Pipeline::Run(grown, analysis_only).analysis;
        best = std::min(best, res.seconds);
        np = res.num_code_paths;
      }
      ms[k - 1] = best * 1e3;
      paths[k - 1] = np;
    }
    table.AddRow({entry.name, FormatDouble(ms[0], 2), FormatDouble(ms[1], 2),
                  FormatDouble(ms[2], 2),
                  std::to_string(paths[0]) + "/" + std::to_string(paths[1]) + "/" +
                      std::to_string(paths[2])});
    json += std::string(first_app ? "" : ", ") + "{\"app\": \"" + entry.name +
            "\", \"points\": [";
    for (int k = 1; k <= 3; ++k) {
      json += std::string(k > 1 ? ", " : "") + "{\"scale\": " + std::to_string(k) +
              ", \"ms\": " + FormatDouble(ms[k - 1], 3) +
              ", \"paths\": " + std::to_string(paths[k - 1]) + "}";
    }
    json += "]}";
    first_app = false;
  }
  fprintf(stderr, "%s\n", table.Render().c_str());
  fprintf(stderr,
          "Shape to reproduce (Fig. 7): analysis time grows ~linearly with codebase size\n"
          "(2x endpoints => ~2x time) and is fast in absolute terms.\n\n");

  // Verifier scaling on the grown codebases. Todo is the paper's smallest real app, so
  // its tripled pair matrix (quadratic growth) stays affordable in a bench; the repeated
  // endpoints make the cache's contribution directly visible.
  const int kThreadCounts[] = {1, 2, 4, 8};
  json += "], \"verification\": [";
  fprintf(stderr, "== Verifier on the grown codebase (Todo, threads 1/2/4/8) ==\n\n");
  TextTable vtable({"Scale", "#Pairs", "Cache hit%", "1 thr (s)", "2 thr (s)",
                    "4 thr (s)", "8 thr (s)"});
  bool first_cell = true;
  for (int scale = 1; scale <= 3; ++scale) {
    app::App grown = Grow(apps::EvaluatedApps()[0], scale);
    analyzer::AnalysisResult analysis = Pipeline::Run(grown, analysis_only).analysis;
    std::vector<std::string> times;
    std::string cells;
    uint64_t pairs = 0;
    double hit_rate = 0;
    for (int threads : kThreadCounts) {
      PipelineOptions options;
      options.parallel.threads = threads;
      verifier::RestrictionReport report = Pipeline::Verify(grown, analysis, options);
      pairs = report.stats.pairs;
      hit_rate = report.stats.CacheHitRate();
      cells += std::string(cells.empty() ? "" : ", ") +
               "{\"threads\": " + std::to_string(threads) +
               ", \"seconds\": " + FormatDouble(report.total_seconds, 3) + "}";
      times.push_back(FormatDouble(report.total_seconds, 3));
      fprintf(stderr, "[fig7] Todo %dx, %d thread(s): %.3fs (%llu cache hits)\n", scale,
              threads, report.total_seconds,
              (unsigned long long)report.stats.cache_hits);
    }
    std::vector<std::string> row = {std::to_string(scale) + "x", std::to_string(pairs),
                                    FormatDouble(100 * hit_rate, 1)};
    row.insert(row.end(), times.begin(), times.end());
    vtable.AddRow(row);
    json += std::string(first_cell ? "" : ", ") + "{\"app\": \"Todo\", \"scale\": " +
            std::to_string(scale) + ", \"pairs\": " + std::to_string(pairs) +
            ", \"cache_hit_rate\": " + FormatDouble(hit_rate, 4) + ", \"threads\": [" +
            cells + "]}";
    first_cell = false;
  }
  json += "], \"hardware_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) + "}";
  fprintf(stderr, "%s\n", vtable.Render().c_str());
  fprintf(stderr,
          "Shape to reproduce: the pair matrix grows quadratically (paths^2) but verify\n"
          "time does not — repeated endpoints are isomorphic, so the verdict cache\n"
          "answers them, and the remaining solver calls spread across threads.\n");

  printf("%s\n", json.c_str());
  return 0;
}
