// Regenerates paper Figure 7: program-analysis time as the codebase grows. Following the
// paper, each application's endpoint set is doubled and tripled ("codebase doubled and
// tripled by repeating the same set of HTTP endpoints"); analysis time must scale roughly
// linearly with the number of endpoints/code paths.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/apps.h"
#include "src/support/strings.h"
#include "src/support/table.h"

int main() {
  using namespace noctua;
  printf("== Figure 7: analysis time vs codebase size (1x / 2x / 3x endpoints) ==\n\n");
  TextTable table({"Application", "1x (ms)", "2x (ms)", "3x (ms)", "paths 1x/2x/3x"});
  for (const auto& entry : apps::EvaluatedApps()) {
    double ms[3];
    size_t paths[3];
    for (int k = 1; k <= 3; ++k) {
      app::App a = entry.make();
      app::App grown = entry.make();
      // Repeat the endpoint set k times (fresh copies under distinct names).
      for (int rep = 1; rep < k; ++rep) {
        for (const app::View& v : a.views()) {
          grown.AddView(v.name + "_copy" + std::to_string(rep), v.fn);
        }
      }
      // Repeat a few times and take the best to de-noise sub-millisecond runs.
      double best = 1e18;
      size_t np = 0;
      for (int trial = 0; trial < 3; ++trial) {
        analyzer::AnalysisResult res = analyzer::AnalyzeApp(grown);
        best = std::min(best, res.seconds);
        np = res.num_code_paths;
      }
      ms[k - 1] = best * 1e3;
      paths[k - 1] = np;
    }
    table.AddRow({entry.name, FormatDouble(ms[0], 2), FormatDouble(ms[1], 2),
                  FormatDouble(ms[2], 2),
                  std::to_string(paths[0]) + "/" + std::to_string(paths[1]) + "/" +
                      std::to_string(paths[2])});
  }
  printf("%s\n", table.Render().c_str());
  printf("Shape to reproduce (Fig. 7): analysis time grows ~linearly with codebase size\n"
         "(2x endpoints => ~2x time) and is fast in absolute terms.\n");
  return 0;
}
