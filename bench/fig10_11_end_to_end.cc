// Regenerates paper Figures 10 and 11: end-to-end throughput and average user-perceived
// latency for zhihu (ZH) and PostGraduation (PG) on a 3-site deployment with 1 ms
// injected cross-site latency. Four setups per app: strong consistency (SC: every
// request coordinated) and PoR with 50% / 30% / 15% write workloads using the restriction
// set computed by the verifier.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/postgraduation.h"
#include "src/apps/zhihu.h"
#include "src/pipeline/pipeline.h"
#include "src/repl/simulator.h"
#include "src/support/strings.h"
#include "src/support/table.h"

int main() {
  using namespace noctua;
  printf("== Figures 10 & 11: end-to-end throughput and latency (3 sites, 1 ms RTT leg) ==\n\n");

  struct Setup {
    const char* label;
    bool sc;
    double write_ratio;
  };
  const Setup kSetups[] = {
      {"SC", true, 0.5}, {"50%", false, 0.5}, {"30%", false, 0.3}, {"15%", false, 0.15}};

  TextTable tput({"Application", "SC (op/s)", "50% (op/s)", "30% (op/s)", "15% (op/s)",
                  "max speedup"});
  TextTable lat({"Application", "SC (ms)", "50% (ms)", "30% (ms)", "15% (ms)"});

  struct AppCase {
    const char* label;
    app::App app;
  };
  std::vector<AppCase> cases;
  cases.push_back({"ZH (zhihu)", apps::MakeZhihuApp()});
  cases.push_back({"PG (postgraduation)", apps::MakePostGraduationApp()});

  for (AppCase& c : cases) {
    fprintf(stderr, "[fig10] computing restriction set for %s...\n", c.label);
    PipelineResult pipeline = Pipeline::Run(c.app);
    const analyzer::AnalysisResult& res = pipeline.analysis;
    repl::ConflictTable conflicts;
    for (const auto& [p, q] : pipeline.restrictions.RestrictedViewPairs()) {
      conflicts.AddPair(p, q);
    }
    std::vector<std::string> tput_row = {c.label};
    std::vector<std::string> lat_row = {c.label};
    double sc_tput = 0;
    double best_tput = 0;
    for (const Setup& setup : kSetups) {
      repl::SimOptions options;
      options.write_ratio = setup.write_ratio;
      options.strong_consistency = setup.sc;
      options.duration_ms = 2000;
      repl::ConflictTable table = conflicts;
      if (setup.sc) {
        table.SetTotal(true);
      }
      repl::Simulator sim(c.app.schema(), res.paths, table, options);
      repl::SimResult result = sim.Run();
      if (!result.converged) {
        fprintf(stderr, "WARNING: %s %s did not converge\n", c.label, setup.label);
      }
      tput_row.push_back(FormatDouble(result.ThroughputOpsPerSec(), 0));
      lat_row.push_back(FormatDouble(result.avg_latency_ms, 3));
      if (setup.sc) {
        sc_tput = result.ThroughputOpsPerSec();
      } else {
        best_tput = std::max(best_tput, result.ThroughputOpsPerSec());
      }
    }
    tput_row.push_back(FormatDouble(best_tput / sc_tput, 2) + "x");
    tput.AddRow(tput_row);
    lat.AddRow(lat_row);
  }

  printf("Figure 10 (throughput):\n%s\n", tput.Render().c_str());
  printf("Figure 11 (average user-perceived latency):\n%s\n", lat.Render().c_str());
  printf("Shape to reproduce: PoR beats SC for both apps (paper: up to 2.8x for ZH), and\n"
         "throughput rises as the write ratio falls (less coordination).\n");
  return 0;
}
