// google-benchmark microbenchmarks for the SMT substrate and the verifier's hot paths:
// term interning, grounding, solving a representative check, and a full pair check.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/analyzer/analyzer.h"
#include "src/apps/smallbank.h"
#include "src/smt/backend.h"
#include "src/smt/ground.h"
#include "src/smt/solver.h"
#include "src/verifier/checker.h"

namespace {

using namespace noctua;
using smt::Sort;
using smt::Term;
using smt::TermFactory;

void BM_TermInterning(benchmark::State& state) {
  for (auto _ : state) {
    TermFactory f;
    Term acc = f.IntLit(0);
    for (int i = 0; i < 256; ++i) {
      acc = f.Add(acc, f.Mul(f.IntLit(i % 7), f.Const("x" + std::to_string(i % 16),
                                                      smt::IntSort())));
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_TermInterning);

void BM_LinearNormalization(benchmark::State& state) {
  TermFactory f;
  Term x = f.Const("x", smt::IntSort());
  Term y = f.Const("y", smt::IntSort());
  for (auto _ : state) {
    // (x + y) - (y + x) must normalize to 0.
    Term t = f.Sub(f.Add(x, y), f.Add(y, x));
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_LinearNormalization);

void BM_GroundQuantifier(benchmark::State& state) {
  int scope = static_cast<int>(state.range(0));
  for (auto _ : state) {
    TermFactory f;
    Sort rs = smt::RefSort(0);
    Term ids = f.Const("ids", smt::SetSort(rs));
    Term data = f.Const("data", smt::ArraySort(rs, smt::TupleSort({rs, smt::IntSort()})));
    Term x = f.NewBoundVar(rs);
    Term y = f.NewBoundVar(rs);
    Term axiom = f.Forall(
        x, f.Forall(y, f.Implies(f.And({f.Member(x, ids), f.Member(y, ids),
                                        f.Eq(f.Proj(f.Select(data, x), 1),
                                             f.Proj(f.Select(data, y), 1))}),
                                 f.Eq(x, y))));
    smt::Grounder g(&f, smt::Scope(scope));
    benchmark::DoNotOptimize(g.Ground(axiom));
  }
}
BENCHMARK(BM_GroundQuantifier)->Arg(2)->Arg(3)->Arg(4);

// Runs once per backend so the CI artifact carries a dfs/cdcl/portfolio row each; the
// workflow gates on the portfolio row staying within 10% of the best single backend.
void BM_SolveUniqueFieldQuery(benchmark::State& state, smt::BackendKind kind) {
  for (auto _ : state) {
    TermFactory f;
    Sort rs = smt::RefSort(0);
    Sort obj = smt::TupleSort({rs, smt::IntSort()});
    Term data = f.Const("data", smt::ArraySort(rs, obj));
    Term ids = f.Const("ids", smt::SetSort(rs));
    Term v = f.NewBoundVar(rs);
    Term wf = f.Forall(v, f.Eq(f.Proj(f.Select(data, v), 0), v));
    Term x = f.Const("x", rs);
    Term y = f.Const("y", rs);
    std::unique_ptr<smt::SolverBackend> backend =
        smt::MakeBackend(kind, smt::SolverOptions{});
    backend->AssertAll(
        {wf, f.Member(x, ids), f.Member(y, ids),
         f.Eq(f.Proj(f.Select(data, x), 1), f.Proj(f.Select(data, y), 1)),
         f.Neq(x, y)});
    auto r = backend->Check(f);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK_CAPTURE(BM_SolveUniqueFieldQuery, dfs, smt::BackendKind::kDfs);
BENCHMARK_CAPTURE(BM_SolveUniqueFieldQuery, cdcl, smt::BackendKind::kCdcl);
BENCHMARK_CAPTURE(BM_SolveUniqueFieldQuery, portfolio, smt::BackendKind::kPortfolio);

// One full commutativity + semantic check on a real pair (the verifier's unit of work).
void BM_FullPairCheck(benchmark::State& state) {
  static app::App a = apps::MakeSmallBankApp();
  static analyzer::AnalysisResult res = analyzer::AnalyzeApp(a);
  static std::vector<soir::CodePath> eff = res.EffectfulPaths();
  verifier::Checker checker(a.schema(), {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.CheckCommutativity(eff[1], eff[2]));
    benchmark::DoNotOptimize(checker.CheckSemantic(eff[1], eff[2]));
  }
}
BENCHMARK(BM_FullPairCheck);

void BM_AnalyzeSmallBank(benchmark::State& state) {
  app::App a = apps::MakeSmallBankApp();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer::AnalyzeApp(a));
  }
}
BENCHMARK(BM_AnalyzeSmallBank);

}  // namespace

BENCHMARK_MAIN();
