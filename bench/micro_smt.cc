// google-benchmark microbenchmarks for the SMT substrate and the verifier's hot paths:
// term interning, grounding, solving a representative check, and a full pair check.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "src/analyzer/analyzer.h"
#include "src/apps/apps.h"
#include "src/apps/smallbank.h"
#include "src/pipeline/pipeline.h"
#include "src/smt/backend.h"
#include "src/smt/ground.h"
#include "src/smt/solver.h"
#include "src/soir/serialize.h"
#include "src/support/check.h"
#include "src/verifier/checker.h"

namespace {

using namespace noctua;
using smt::Sort;
using smt::Term;
using smt::TermFactory;

void BM_TermInterning(benchmark::State& state) {
  for (auto _ : state) {
    TermFactory f;
    Term acc = f.IntLit(0);
    for (int i = 0; i < 256; ++i) {
      acc = f.Add(acc, f.Mul(f.IntLit(i % 7), f.Const("x" + std::to_string(i % 16),
                                                      smt::IntSort())));
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_TermInterning);

void BM_LinearNormalization(benchmark::State& state) {
  TermFactory f;
  Term x = f.Const("x", smt::IntSort());
  Term y = f.Const("y", smt::IntSort());
  for (auto _ : state) {
    // (x + y) - (y + x) must normalize to 0.
    Term t = f.Sub(f.Add(x, y), f.Add(y, x));
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_LinearNormalization);

void BM_GroundQuantifier(benchmark::State& state) {
  int scope = static_cast<int>(state.range(0));
  for (auto _ : state) {
    TermFactory f;
    Sort rs = smt::RefSort(0);
    Term ids = f.Const("ids", smt::SetSort(rs));
    Term data = f.Const("data", smt::ArraySort(rs, smt::TupleSort({rs, smt::IntSort()})));
    Term x = f.NewBoundVar(rs);
    Term y = f.NewBoundVar(rs);
    Term axiom = f.Forall(
        x, f.Forall(y, f.Implies(f.And({f.Member(x, ids), f.Member(y, ids),
                                        f.Eq(f.Proj(f.Select(data, x), 1),
                                             f.Proj(f.Select(data, y), 1))}),
                                 f.Eq(x, y))));
    smt::Grounder g(&f, smt::Scope(scope));
    benchmark::DoNotOptimize(g.Ground(axiom));
  }
}
BENCHMARK(BM_GroundQuantifier)->Arg(2)->Arg(3)->Arg(4);

// Runs once per backend so the CI artifact carries a dfs/cdcl/portfolio row each; the
// workflow gates on the portfolio row staying within 10% of the best single backend.
void BM_SolveUniqueFieldQuery(benchmark::State& state, smt::BackendKind kind) {
  for (auto _ : state) {
    TermFactory f;
    Sort rs = smt::RefSort(0);
    Sort obj = smt::TupleSort({rs, smt::IntSort()});
    Term data = f.Const("data", smt::ArraySort(rs, obj));
    Term ids = f.Const("ids", smt::SetSort(rs));
    Term v = f.NewBoundVar(rs);
    Term wf = f.Forall(v, f.Eq(f.Proj(f.Select(data, v), 0), v));
    Term x = f.Const("x", rs);
    Term y = f.Const("y", rs);
    std::unique_ptr<smt::SolverBackend> backend =
        smt::MakeBackend(kind, smt::SolverOptions{});
    backend->AssertAll(
        {wf, f.Member(x, ids), f.Member(y, ids),
         f.Eq(f.Proj(f.Select(data, x), 1), f.Proj(f.Select(data, y), 1)),
         f.Neq(x, y)});
    auto r = backend->Check(f);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK_CAPTURE(BM_SolveUniqueFieldQuery, dfs, smt::BackendKind::kDfs);
BENCHMARK_CAPTURE(BM_SolveUniqueFieldQuery, cdcl, smt::BackendKind::kCdcl);
BENCHMARK_CAPTURE(BM_SolveUniqueFieldQuery, portfolio, smt::BackendKind::kPortfolio);

// One full commutativity + semantic check on a real pair (the verifier's unit of work).
void BM_FullPairCheck(benchmark::State& state) {
  static app::App a = apps::MakeSmallBankApp();
  static analyzer::AnalysisResult res = analyzer::AnalyzeApp(a);
  static std::vector<soir::CodePath> eff = res.EffectfulPaths();
  verifier::Checker checker(a.schema(), {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.CheckCommutativity(eff[1], eff[2]));
    benchmark::DoNotOptimize(checker.CheckSemantic(eff[1], eff[2]));
  }
}
BENCHMARK(BM_FullPairCheck);

// The per-pair hot path under the optimization toggles: one PairSession runs the
// commutativity query plus both NotInvalidate directions on a real SmallBank pair —
// exactly what the verifier's pair loop executes. The prefilter is disabled so the
// timer measures solver work, not footprint set intersection. Scope 3 rather than the
// default 2: the optimizations exist for the queries where search dominates, and at
// scope 2 the fixed encode/ground floor hides most of the win. CI gates the geomean
// off/on ratio across backends (see the pair-query speedup gate in ci.yml).
void BM_PairQuery(benchmark::State& state, smt::BackendKind kind, bool optimized) {
  static app::App a = apps::MakeSmallBankApp();
  static analyzer::AnalysisResult res = analyzer::AnalyzeApp(a);
  static std::vector<soir::CodePath> eff = res.EffectfulPaths();
  verifier::CheckerOptions opt;
  opt.solver.backend = kind;
  opt.solver.scope = smt::Scope(3);
  opt.solver.symmetry = optimized ? smt::Toggle::kOn : smt::Toggle::kOff;
  opt.solver.incremental = optimized ? smt::Toggle::kOn : smt::Toggle::kOff;
  opt.independence_prefilter = false;
  verifier::Checker checker(a.schema(), opt);
  for (auto _ : state) {
    verifier::Checker::PairSession session(checker, eff[1], eff[2]);
    benchmark::DoNotOptimize(session.Commutativity());
    benchmark::DoNotOptimize(session.NotInvalidatePQ());
    benchmark::DoNotOptimize(session.NotInvalidateQP());
  }
}
BENCHMARK_CAPTURE(BM_PairQuery, dfs_off, smt::BackendKind::kDfs, false);
BENCHMARK_CAPTURE(BM_PairQuery, dfs_on, smt::BackendKind::kDfs, true);
BENCHMARK_CAPTURE(BM_PairQuery, cdcl_off, smt::BackendKind::kCdcl, false);
BENCHMARK_CAPTURE(BM_PairQuery, cdcl_on, smt::BackendKind::kCdcl, true);
BENCHMARK_CAPTURE(BM_PairQuery, portfolio_off, smt::BackendKind::kPortfolio, false);
BENCHMARK_CAPTURE(BM_PairQuery, portfolio_on, smt::BackendKind::kPortfolio, true);

void BM_AnalyzeSmallBank(benchmark::State& state) {
  app::App a = apps::MakeSmallBankApp();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer::AnalyzeApp(a));
  }
}
BENCHMARK(BM_AnalyzeSmallBank);

// Deterministic verdict fingerprint of one app under one backend/toggle setting:
// FNV-1a over the "p|q|com|sem" verdict lines of a full deterministic-budget verify.
// The optimizations must never change a verdict, so the fingerprint is the artifact
// CI diffs against the committed baseline to prove restriction-set identity.
uint64_t VerdictFingerprint(const apps::AppEntry& entry, smt::BackendKind kind,
                            bool optimized) {
  app::App a = entry.make();
  PipelineOptions analysis_only;
  analysis_only.verify = false;
  analyzer::AnalysisResult analysis = Pipeline::Run(a, analysis_only).analysis;

  PipelineOptions options;
  options.parallel.threads = 2;
  options.checker.solver.backend = kind;
  options.checker.solver.budget.deterministic = true;
  options.checker.solver.symmetry = optimized ? smt::Toggle::kOn : smt::Toggle::kOff;
  options.checker.solver.incremental = optimized ? smt::Toggle::kOn : smt::Toggle::kOff;
  verifier::RestrictionReport report = Pipeline::Verify(a, analysis, options);

  std::string lines;
  for (const verifier::PairVerdict& v : report.pairs) {
    lines += v.p + "|" + v.q + "|" + verifier::CheckOutcomeName(v.commutativity) + "|" +
             verifier::CheckOutcomeName(v.semantic) + "\n";
  }
  return soir::Fnv1a64(lines);
}

// Stamps per-app, per-backend verdict fingerprints into the benchmark context, after
// CHECK-ing that the optimized and unoptimized runs produce identical verdicts. Gated
// behind NOCTUA_BENCH_FINGERPRINTS=1 because it runs 18 full verifies (~half a minute);
// plain timing runs skip it. Only the fast apps are fingerprinted — the slow trio
// (Zhihu, OwnPhotos, PostGraduation) is covered by the tier-1 identity tests instead.
void AddVerdictFingerprints() {
  for (const apps::AppEntry& entry : apps::EvaluatedApps()) {
    if (entry.name != "Todo" && entry.name != "SmallBank" && entry.name != "Courseware") {
      continue;
    }
    for (smt::BackendKind kind :
         {smt::BackendKind::kDfs, smt::BackendKind::kCdcl, smt::BackendKind::kPortfolio}) {
      uint64_t off = VerdictFingerprint(entry, kind, /*optimized=*/false);
      uint64_t on = VerdictFingerprint(entry, kind, /*optimized=*/true);
      NOCTUA_CHECK_MSG(off == on, "optimizations changed a restriction set");
      benchmark::AddCustomContext(
          "fingerprint_" + entry.name + "_" + smt::BackendKindName(kind),
          soir::DigestHex(on));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  const char* fp = std::getenv("NOCTUA_BENCH_FINGERPRINTS");
  if (fp != nullptr && std::string(fp) == "1") {
    AddVerdictFingerprints();
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
