// Shared helpers for the benchmark harnesses that regenerate the paper's tables/figures.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <fstream>
#include <string>

#include "src/analyzer/analyzer.h"
#include "src/app/app.h"
#include "src/verifier/report.h"

namespace noctua::bench {

// Lines of code of an app's defining C++ source (the Table 4 LoC counterpart; the paper
// counts Python lines, we count ours).
inline size_t CountLoc(const std::string& path) {
  std::ifstream in(path);
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    bool blank = true;
    for (char c : line) {
      if (!isspace(static_cast<unsigned char>(c))) {
        blank = false;
        break;
      }
    }
    lines += blank ? 0 : 1;
  }
  return lines;
}

}  // namespace noctua::bench

#endif  // BENCH_BENCH_UTIL_H_
