// Shared helpers for the benchmark harnesses that regenerate the paper's tables/figures.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <fstream>
#include <string>

#include "src/analyzer/analyzer.h"
#include "src/app/app.h"
#include "src/verifier/report.h"

namespace noctua::bench {

// Lines of code of an app's defining C++ source (the Table 4 LoC counterpart; the paper
// counts Python lines, we count ours). Blank lines and lines holding nothing but a //
// comment do not count — prose is not code.
inline size_t CountLoc(const std::string& path) {
  std::ifstream in(path);
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    size_t first = 0;
    while (first < line.size() && isspace(static_cast<unsigned char>(line[first]))) {
      ++first;
    }
    if (first == line.size()) {
      continue;  // blank
    }
    if (line.compare(first, 2, "//") == 0) {
      continue;  // comment-only
    }
    ++lines;
  }
  return lines;
}

}  // namespace noctua::bench

#endif  // BENCH_BENCH_UTIL_H_
