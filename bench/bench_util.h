// Shared helpers for the benchmark harnesses that regenerate the paper's tables/figures.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "src/analyzer/analyzer.h"
#include "src/app/app.h"
#include "src/smt/backend.h"
#include "src/support/strings.h"
#include "src/verifier/report.h"

namespace noctua::bench {

// Version of every BENCH_*.json document's shape. Bump when a sweep's JSON layout
// changes incompatibly, so longitudinal tooling comparing trajectories across commits
// can tell "the metric moved" from "the schema moved".
//   v1 (implicit): the PR 1-4 sweeps, no schema_version field.
//   v2: schema_version field added; parallel_sweep rows carry per-phase percentiles.
//   v3: preamble stamps the resolved solver backend and portfolio race tallies.
//   v4: preamble stamps solver optimization tallies (incremental reuse, symmetry
//       pruning, CDCL restarts/forgetting).
inline constexpr int kBenchSchemaVersion = 4;

// The leading members every BENCH_*.json document starts with. Callers embed it right
// after their opening brace: json = "{" + BenchJsonPreamble("fault_sweep") + ", ...".
//
// The backend members make sweep artifacts self-describing under NOCTUA_SOLVER: a
// longitudinal regression between two commits means nothing if one ran dfs and the
// other raced the portfolio. The portfolio tallies are process-lifetime totals at the
// moment the document is assembled (zero for single backends).
inline std::string BenchJsonPreamble(const std::string& bench_name) {
  smt::PortfolioCounts pc = smt::GetPortfolioCounts();
  smt::SolverSharedCounts sc = smt::GetSolverSharedCounts();
  return "\"bench\": \"" + bench_name +
         "\", \"schema_version\": " + std::to_string(kBenchSchemaVersion) +
         ", \"solver_backend\": \"" +
         smt::BackendKindName(smt::ResolveBackendKind(smt::BackendKind::kAuto)) +
         "\", \"portfolio\": {\"races\": " + std::to_string(pc.races) +
         ", \"wins_dfs\": " + std::to_string(pc.wins_dfs) +
         ", \"wins_cdcl\": " + std::to_string(pc.wins_cdcl) +
         ", \"undecided\": " + std::to_string(pc.undecided) +
         "}, \"solver\": {\"incremental_reuse_hits\": " +
         std::to_string(sc.incremental_reuse_hits) +
         ", \"symmetry_pruned_nodes\": " + std::to_string(sc.symmetry_pruned) +
         ", \"cdcl_restarts\": " + std::to_string(sc.cdcl_restarts) +
         ", \"cdcl_clauses_forgotten\": " + std::to_string(sc.cdcl_clauses_forgotten) + "}";
}

// Percentiles of a sample set, exact by sorting (benches deal in hundreds of samples,
// not millions). The rank is ceil(q*n), clamped to [1, n] — the value such that at
// least q of the samples are <= it.
struct Percentiles {
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

inline Percentiles ComputePercentiles(std::vector<double> samples) {
  Percentiles out;
  if (samples.empty()) {
    return out;
  }
  std::sort(samples.begin(), samples.end());
  auto at = [&](double q) {
    size_t rank = static_cast<size_t>(q * static_cast<double>(samples.size()) + 0.999999);
    rank = std::max<size_t>(1, std::min(rank, samples.size()));
    return samples[rank - 1];
  };
  out.p50 = at(0.50);
  out.p95 = at(0.95);
  out.p99 = at(0.99);
  return out;
}

inline std::string PercentilesJson(const Percentiles& p, int digits = 6) {
  return "{\"p50\": " + FormatDouble(p.p50, digits) + ", \"p95\": " +
         FormatDouble(p.p95, digits) + ", \"p99\": " + FormatDouble(p.p99, digits) + "}";
}

// Per-phase timing distribution of one verification run: commutativity and semantic
// check wall times across the (non-prefiltered) pairs, as percentile summaries. This is
// what "where did the verify time go" questions need — totals hide the tail pair that
// dominates wall-clock on few threads.
inline std::string PhaseTimingJson(const verifier::RestrictionReport& report) {
  std::vector<double> com, sem;
  for (const auto& v : report.pairs) {
    if (v.prefiltered) {
      continue;
    }
    com.push_back(v.com_seconds);
    sem.push_back(v.sem_seconds);
  }
  return "{\"com_seconds\": " + PercentilesJson(ComputePercentiles(std::move(com))) +
         ", \"sem_seconds\": " + PercentilesJson(ComputePercentiles(std::move(sem))) +
         "}";
}

// Lines of code of an app's defining C++ source (the Table 4 LoC counterpart; the paper
// counts Python lines, we count ours). Blank lines and lines holding nothing but a //
// comment do not count — prose is not code.
inline size_t CountLoc(const std::string& path) {
  std::ifstream in(path);
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    size_t first = 0;
    while (first < line.size() && isspace(static_cast<unsigned char>(line[first]))) {
      ++first;
    }
    if (first == line.size()) {
      continue;  // blank
    }
    if (line.compare(first, 2, "//") == 0) {
      continue;  // comment-only
    }
    ++lines;
  }
  return lines;
}

}  // namespace noctua::bench

#endif  // BENCH_BENCH_UTIL_H_
