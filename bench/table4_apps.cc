// Regenerates paper Table 4: basic information about the evaluated applications —
// static info (LoC, models, relations) and analysis results (time, #code paths,
// #effectful paths).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/apps.h"
#include "src/pipeline/pipeline.h"
#include "src/support/strings.h"
#include "src/support/table.h"

int main() {
  using namespace noctua;
  printf("== Table 4: basic information about evaluated applications ==\n");
  printf("(LoC counts our C++ app definitions; the paper counts the original Python)\n\n");
  TextTable table({"Application", "#LoC", "#Models", "#Relations", "Analysis (s)",
                   "#Code Paths", "#Effectful"});
  PipelineOptions analysis_only;
  analysis_only.verify = false;  // Table 4 reports the analyzer stage alone
  for (const auto& entry : apps::EvaluatedApps()) {
    app::App a = entry.make();
    analyzer::AnalysisResult res = Pipeline::Run(a, analysis_only).analysis;
    table.AddRow({entry.name, std::to_string(bench::CountLoc(a.source_file())),
                  std::to_string(a.schema().num_models()),
                  std::to_string(a.schema().num_relations()), FormatDouble(res.seconds, 3),
                  std::to_string(res.num_code_paths),
                  std::to_string(res.num_effectful)});
  }
  printf("%s\n", table.Render().c_str());
  printf("Paper reference (Table 4): Todo 18/10, PostGraduation 40/19, Zhihu 51/17,\n"
         "OwnPhotos 545/120, SmallBank 17/4, Courseware 8/4 code/effectful paths.\n");
  return 0;
}
