// Cold-vs-warm sweep for the incremental analysis engine. For each app the bench runs
// the pipeline cold once to populate an artifact store, then replays three scripted
// developer edits — add an endpoint, edit one handler's body, rename a model across the
// codebase — each against a fresh copy of the store. Every warm run is compared against
// a from-scratch cold run of the edited app: the restriction sets must be byte-identical
// (the bench exits nonzero otherwise), and the warm run should approach O(change) — for
// a single-endpoint edit the target is a >= 5x end-to-end speedup.
//
// Emits one JSON document on stdout (progress goes to stderr):
//
//   {"apps": [{"app": "Zhihu", "pairs": N, "cold_seconds": ...,
//              "edits": [{"edit": "edit_handler", "changed_endpoints": ["VoteAnswer"],
//                         "cold_seconds": ..., "warm_seconds": ..., "speedup": ...,
//                         "pairs_replayed": ..., "pairs_computed": ...,
//                         "endpoints_reused": ..., "verdicts_replayed": ...,
//                         "solver_checks": ..., "identical_restrictions": true}, ...]},
//             ...],
//    "identical_everywhere": true}
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/ownphotos.h"
#include "src/apps/zhihu.h"
#include "src/pipeline/pipeline.h"
#include "src/pipeline/session.h"
#include "src/support/strings.h"

namespace {

using noctua::IncrementalOptions;
using noctua::IncrementalResult;
using noctua::Pipeline;
using noctua::analyzer::Sym;
using noctua::analyzer::SymObj;
using noctua::analyzer::SymSet;
using noctua::analyzer::ViewCtx;
using noctua::verifier::RestrictionReport;

std::vector<std::string> VerdictLines(const RestrictionReport& report) {
  std::vector<std::string> out;
  out.reserve(report.pairs.size());
  for (const auto& v : report.pairs) {
    out.push_back(v.p + "|" + v.q + "|" + noctua::verifier::CheckOutcomeName(v.commutativity) +
                  "|" + noctua::verifier::CheckOutcomeName(v.semantic));
  }
  return out;
}

IncrementalOptions Opts() {
  IncrementalOptions o;
  // Pin the solver's budget decisions so verdicts are identical across separate runs —
  // the identity assertion below is exact.
  o.pipeline.checker.solver.budget.deterministic = true;
  return o;
}

// Real extraction layers hash the handler source; here the registration site stamps a
// version tag per view, bumped whenever an edit rewrites a handler.
void StampFingerprints(noctua::app::App& app) {
  for (const auto& view : app.views()) {
    app.SetViewFingerprint(view.name, view.name + "@v1");
  }
}

std::string TempDirFor(const std::string& name) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("noctua_incremental_sweep_" + name))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

// One scripted developer edit: mutates a freshly built app in place.
struct Edit {
  const char* name;
  std::function<void(noctua::app::App&)> apply;
};

std::vector<Edit> ZhihuEdits() {
  std::vector<Edit> edits;

  // A brand-new endpoint: discard the user's draft for a question.
  edits.push_back({"add_endpoint", [](noctua::app::App& app) {
    app.AddView(
        "DeleteDraft",
        [](ViewCtx& v) {
          SymObj author = v.Deref("User", v.ParamRef("user", "User"));
          SymObj q = v.Deref("Question", v.ParamRef("question", "Question"));
          SymSet drafts = v.M("Draft").filter("author", author).filter("question", q);
          v.Guard(drafts.exists());
          drafts.del();
        },
        "DeleteDraft@v1");
  }});

  // One handler body edited: upvotes are now worth 25 reputation instead of 10.
  edits.push_back({"edit_handler", [](noctua::app::App& app) {
    app.ReplaceView(
        "VoteAnswer",
        [](ViewCtx& v) {
          SymObj user = v.Deref("User", v.ParamRef("user", "User"));
          SymObj answer = v.M("Answer").get("id", v.ParamRef("answer", "Answer"));
          v.GuardUniqueTogether("Vote", {{"user", user}, {"answer", answer}});
          if (v.PostBool("positive")) {
            v.Create("Vote", {{"positive", Sym(true)}}, {{"user", user}, {"answer", answer}});
            answer.with("votes", answer.attr("votes") + 1).save();
            SymObj author = answer.rel("author");
            author.with("reputation", author.attr("reputation") + 25).save();
          } else {
            v.Create("Vote", {{"positive", Sym(false)}}, {{"user", user}, {"answer", answer}});
            answer.with("votes", answer.attr("votes") - 1).save();
          }
        },
        "VoteAnswer@v2");
  }});

  // A codebase-wide rename: model Draft becomes DraftPost, and every handler mentioning
  // it is rewritten (new source, new fingerprints) — but nothing behavioral changed, so
  // the warm run should replay 100% of the prior verdicts.
  edits.push_back({"rename_model", [](noctua::app::App& app) {
    noctua::soir::Schema& s = app.schema();
    s.RenameModel(s.ModelId("Draft"), "DraftPost");
    app.ReplaceView(
        "PostAnswer",
        [](ViewCtx& v) {
          SymObj author = v.Deref("User", v.ParamRef("user", "User"));
          SymObj q = v.Deref("Question", v.ParamRef("question", "Question"));
          if (v.PostBool("from_draft")) {
            SymObj draft =
                v.M("DraftPost").filter("author", author).filter("question", q).any();
            v.Create("Answer", {{"content", draft.attr("content")}, {"votes", Sym(0)}},
                     {{"question", q}, {"author", author}});
            v.M("DraftPost").filter("author", author).filter("question", q).del();
          } else {
            v.Create("Answer", {{"content", v.Post("content")}, {"votes", Sym(0)}},
                     {{"question", q}, {"author", author}});
          }
        },
        "PostAnswer@v1-renamed");
    app.ReplaceView(
        "SaveDraft",
        [](ViewCtx& v) {
          SymObj author = v.Deref("User", v.ParamRef("user", "User"));
          SymObj q = v.Deref("Question", v.ParamRef("question", "Question"));
          v.M("DraftPost").filter("author", author).filter("question", q).del();
          v.Create("DraftPost", {{"content", v.Post("content")}},
                   {{"author", author}, {"question", q}});
        },
        "SaveDraft@v1-renamed");
  }});
  return edits;
}

std::vector<Edit> OwnPhotosEdits() {
  std::vector<Edit> edits;

  // A brand-new endpoint: un-hide everything the user hid.
  edits.push_back({"add_endpoint", [](noctua::app::App& app) {
    app.AddView(
        "unhide_all",
        [](ViewCtx& v) {
          SymObj user = v.Deref("User", v.ParamRef("user", "User"));
          v.ClearLinks("hidden_photos", user);
        },
        "unhide_all@v1");
  }});

  // One handler body edited: ratings now go up to 10 stars.
  edits.push_back({"edit_handler", [](noctua::app::App& app) {
    app.ReplaceView(
        "rate_photo",
        [](ViewCtx& v) {
          SymObj user = v.Deref("User", v.ParamRef("user", "User"));
          SymObj photo = v.M("Photo").get("id", v.ParamRef("pk", "Photo"));
          if (!(photo.rel("owner").ref() == user.ref())) {
            v.Abort();
          }
          Sym rating = v.PostInt("rating");
          v.Guard(rating >= 0);
          v.Guard(rating <= 10);
          photo.with("rating", rating).save();
        },
        "rate_photo@v2");
  }});

  // Schema-only rename: no handler mentions Cluster by name, so fingerprints are
  // untouched and analysis memoizes on top of a 100% verdict replay.
  edits.push_back({"rename_model", [](noctua::app::App& app) {
    noctua::soir::Schema& s = app.schema();
    s.RenameModel(s.ModelId("Cluster"), "FaceCluster");
  }});
  return edits;
}

}  // namespace

int main() {
  using noctua::FormatDouble;

  struct AppCase {
    const char* name;
    std::function<noctua::app::App()> make;
    std::vector<Edit> edits;
  };
  const std::vector<AppCase> cases = {
      {"Zhihu", noctua::apps::MakeZhihuApp, ZhihuEdits()},
      {"OwnPhotos", noctua::apps::MakeOwnPhotosApp, OwnPhotosEdits()},
  };

  bool identical_everywhere = true;
  std::string json =
      "{" + noctua::bench::BenchJsonPreamble("incremental_sweep") + ", \"apps\": [";
  for (size_t c = 0; c < cases.size(); ++c) {
    const AppCase& app_case = cases[c];

    // Cold base run populates the artifact store the edits start from.
    std::string base_store = TempDirFor(std::string(app_case.name) + "_base");
    noctua::app::App base = app_case.make();
    StampFingerprints(base);
    fprintf(stderr, "[incremental_sweep] %s: cold base run...\n", app_case.name);
    IncrementalResult cold_base = Pipeline::RunIncremental(base, base_store, Opts());
    fprintf(stderr, "[incremental_sweep] %s: cold %.3fs (%zu pairs)\n", app_case.name,
            cold_base.run.total_seconds, cold_base.run.restrictions.pairs.size());

    json += std::string(c ? ", " : "") + "{\"app\": \"" + app_case.name +
            "\", \"pairs\": " + std::to_string(cold_base.run.restrictions.pairs.size()) +
            ", \"cold_seconds\": " + FormatDouble(cold_base.run.total_seconds, 3) +
            ", \"edits\": [";

    for (size_t e = 0; e < app_case.edits.size(); ++e) {
      const Edit& edit = app_case.edits[e];
      noctua::app::App edited = app_case.make();
      StampFingerprints(edited);
      edit.apply(edited);

      // Each edit starts from its own copy of the base store, as if it were the next
      // thing the developer did after the base commit.
      std::string warm_store = TempDirFor(std::string(app_case.name) + "_" + edit.name);
      std::filesystem::copy(base_store, warm_store,
                            std::filesystem::copy_options::recursive);
      IncrementalResult warm = Pipeline::RunIncremental(edited, warm_store, Opts());

      // Reference: the same edited app verified from scratch.
      noctua::app::App edited_again = app_case.make();
      StampFingerprints(edited_again);
      edit.apply(edited_again);
      std::string cold_store = TempDirFor(std::string(app_case.name) + "_" + edit.name + "_cold");
      IncrementalResult cold = Pipeline::RunIncremental(edited_again, cold_store, Opts());

      bool identical = !warm.cold &&
                       VerdictLines(warm.run.restrictions) == VerdictLines(cold.run.restrictions);
      identical_everywhere = identical_everywhere && identical;
      double speedup = cold.run.total_seconds / warm.run.total_seconds;
      fprintf(stderr,
              "[incremental_sweep] %s/%s: warm %.3fs vs cold %.3fs  speedup %.2fx  "
              "(%llu pairs replayed, %llu computed, %zu endpoints memoized)%s\n",
              app_case.name, edit.name, warm.run.total_seconds, cold.run.total_seconds,
              speedup, static_cast<unsigned long long>(warm.pairs_replayed),
              static_cast<unsigned long long>(warm.pairs_computed), warm.endpoints_reused,
              identical ? "" : "  RESTRICTIONS DIVERGED");

      std::string changed = "[";
      for (size_t i = 0; i < warm.changed_endpoints.size(); ++i) {
        changed += std::string(i ? ", " : "") + "\"" + warm.changed_endpoints[i] + "\"";
      }
      changed += "]";
      json += std::string(e ? ", " : "") + "{\"edit\": \"" + edit.name +
              "\", \"changed_endpoints\": " + changed +
              ", \"cold_seconds\": " + FormatDouble(cold.run.total_seconds, 3) +
              ", \"warm_seconds\": " + FormatDouble(warm.run.total_seconds, 3) +
              ", \"speedup\": " + FormatDouble(speedup, 2) +
              ", \"pairs_replayed\": " + std::to_string(warm.pairs_replayed) +
              ", \"pairs_computed\": " + std::to_string(warm.pairs_computed) +
              ", \"endpoints_reused\": " + std::to_string(warm.endpoints_reused) +
              ", \"verdicts_replayed\": " + std::to_string(warm.run.restrictions.stats.replayed) +
              ", \"solver_checks\": " + std::to_string(warm.run.restrictions.stats.solver_checks) +
              ", \"identical_restrictions\": " + (identical ? "true" : "false") + "}";
    }
    json += "]}";
  }
  json += "], \"identical_everywhere\": " + std::string(identical_everywhere ? "true" : "false") +
          "}";
  printf("%s\n", json.c_str());
  if (!identical_everywhere) {
    fprintf(stderr,
            "[incremental_sweep] FAILED: a warm run diverged from its cold reference\n");
    return 1;
  }
  return 0;
}
