// Regenerates the paper's §6.4 case study on zhihu: the CreateQuestion / FollowQuestion
// conflict explanations, including the unique-ID optimization ablation (§5.2).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/zhihu.h"
#include "src/verifier/checker.h"

int main() {
  using namespace noctua;
  using verifier::CheckOutcome;
  using verifier::CheckOutcomeName;
  printf("== Case study (paper §6.4): CreateQuestion and FollowQuestion ==\n\n");

  app::App a = apps::MakeZhihuApp();
  analyzer::AnalysisResult res = analyzer::AnalyzeApp(a);
  const soir::CodePath* create = nullptr;
  const soir::CodePath* follow = nullptr;
  for (const auto& p : res.paths) {
    if (p.view_name == "CreateQuestion" && p.IsEffectful() && create == nullptr) {
      create = &p;
    }
    if (p.view_name == "FollowQuestion" && p.IsEffectful() && follow == nullptr) {
      follow = &p;
    }
  }

  // One baseline checker; the ablated one is derived from its options with exactly the
  // studied flag flipped, so the two configurations cannot silently diverge elsewhere.
  verifier::Checker checker(a.schema());
  verifier::CheckerOptions no_uid = checker.options();
  no_uid.encoder.unique_id_optimization = false;
  verifier::Checker checker_no_uid(a.schema(), no_uid);

  printf("CreateQuestion vs CreateQuestion:\n");
  printf("  commutativity (unique IDs asserted):    %s   [paper: no conflict]\n",
         CheckOutcomeName(checker.CheckCommutativity(*create, *create)));
  printf("  semantic       (unique IDs asserted):    %s   [paper: no conflict]\n",
         CheckOutcomeName(checker.CheckSemantic(*create, *create)));
  printf("  commutativity (optimization disabled):  %s   [paper: conflicts — same ID,\n"
         "                                                  different titles]\n",
         CheckOutcomeName(checker_no_uid.CheckCommutativity(*create, *create)));
  printf("  semantic       (optimization disabled):  %s   [paper: conflicts — uniqueness\n"
         "                                                  of the ID invalidated]\n",
         CheckOutcomeName(checker_no_uid.CheckSemantic(*create, *create)));

  printf("\nCreateQuestion vs FollowQuestion:\n");
  printf("  commutativity: %s   [paper: conflicts — FollowQuestion updates the follow\n"
         "                      field that CreateQuestion sets to zero]\n",
         CheckOutcomeName(checker.CheckCommutativity(*create, *follow)));

  printf("\nFollowQuestion vs FollowQuestion:\n");
  printf("  semantic:      %s   [paper: conflicts — (user, question) is unique together]\n",
         CheckOutcomeName(checker.CheckSemantic(*follow, *follow)));
  printf("  commutativity: %s\n",
         CheckOutcomeName(checker.CheckCommutativity(*follow, *follow)));
  return 0;
}
