// Regenerates paper Table 7 and Figure 9: PostGraduation verified with the order
// encoding enabled vs disabled. PostGraduation uses no order-related primitives, so the
// results must be identical and the time difference negligible — the decoupling property
// of the order-aware encoding (§4.2: "without cost for ordering information").
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/postgraduation.h"
#include "src/pipeline/pipeline.h"
#include "src/support/strings.h"
#include "src/support/table.h"

int main() {
  using namespace noctua;
  printf("== Table 7 / Figure 9: PostGraduation with order enabled vs disabled ==\n\n");
  app::App a = apps::MakePostGraduationApp();

  // One analysis, verified twice: the default (order-aware) encoding, then the same
  // paths with the order encoding disabled.
  PipelineOptions with_order;
  with_order.checker.encoder.use_order = true;
  PipelineOptions no_order;
  no_order.checker.encoder.use_order = false;

  PipelineResult run = Pipeline::Run(a, with_order);
  const verifier::RestrictionReport& has = run.restrictions;
  verifier::RestrictionReport without = Pipeline::Verify(a, run.analysis, no_order);

  TextTable table({"", "Has order", "No order"});
  table.AddRow({"#Com. failures", std::to_string(has.com_failures()),
                std::to_string(without.com_failures())});
  table.AddRow({"#Sem. failures", std::to_string(has.sem_failures()),
                std::to_string(without.sem_failures())});
  table.AddRow({"Com. check time (s)", FormatDouble(has.com_seconds(), 3),
                FormatDouble(without.com_seconds(), 3)});
  table.AddRow({"Sem. check time (s)", FormatDouble(has.sem_seconds(), 3),
                FormatDouble(without.sem_seconds(), 3)});
  table.AddRow({"Total time (s)", FormatDouble(has.total_seconds, 3),
                FormatDouble(without.total_seconds, 3)});
  printf("%s\n", table.Render().c_str());
  printf("Paper reference (Table 7): 24 com / 10 sem failures in both columns — the\n"
         "property to reproduce is *identical results and comparable times* with order\n"
         "on and off for an app that never observes order.\n");
  return 0;
}
