// Regenerates paper Table 6 (overall verification results for the four real-world
// applications: #checks, #restrictions, commutativity/semantic failures) and the Figure 8
// series (verification time per application — quadratic in the number of verified paths).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/apps.h"
#include "src/pipeline/pipeline.h"
#include "src/support/strings.h"
#include "src/support/table.h"

int main() {
  using namespace noctua;
  printf("== Table 6: overall verification results (4 real-world apps) ==\n");
  printf("== Figure 8: verification times ==\n\n");
  TextTable table({"Application", "#Checks", "#Restr.", "Com. fail", "Sem. fail",
                   "Verify (s)", "#Paths", "Cache hit%"});
  std::vector<std::pair<std::string, double>> fig8;
  for (const auto& entry : apps::EvaluatedApps()) {
    if (entry.name == "SmallBank" || entry.name == "Courseware") {
      continue;  // Table 6 covers the four real codebases
    }
    app::App a = entry.make();
    fprintf(stderr, "[table6] verifying %s...\n", entry.name.c_str());
    PipelineResult result = Pipeline::Run(a);
    const verifier::RestrictionReport& report = result.restrictions;
    table.AddRow({entry.name, std::to_string(report.num_checks()),
                  std::to_string(report.num_restrictions()),
                  std::to_string(report.com_failures()),
                  std::to_string(report.sem_failures()),
                  FormatDouble(report.total_seconds, 2),
                  std::to_string(result.analysis.num_effectful),
                  FormatDouble(100 * report.stats.CacheHitRate(), 1)});
    fig8.emplace_back(entry.name, report.total_seconds);
  }
  printf("%s\n", table.Render().c_str());

  printf("Figure 8 series (verification time, seconds):\n");
  for (const auto& [name, secs] : fig8) {
    printf("  %-16s %8.2f\n", name.c_str(), secs);
  }
  printf("\nPaper reference (Table 6): Todo 55 checks/31 restr; PostGraduation 190/34;\n"
         "Zhihu 171/80; OwnPhotos 7260/3066. Shape to reproduce: #checks grows\n"
         "quadratically with effectful paths and OwnPhotos dominates verification time.\n");
  return 0;
}
