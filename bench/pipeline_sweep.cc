// End-to-end pipeline sweep with the observability layer on and off.
//
// For each evaluated app the sweep runs the full pipeline (analyze + verify) three
// times with instrumentation disabled and three times with it enabled, compares the
// best-of-3 wall times (the overhead ratio the "< 3% when off" budget is judged
// against, see .github/workflows/ci.yml), and asserts the per-pair verdicts are
// byte-identical between the two configurations — instrumentation must never change
// an answer. Solver budgets are deterministic, so the verdict comparison is exact.
//
// The Zhihu run's Chrome trace-event JSON is written to --trace-out=<file>.json
// (default: pipeline_trace_zhihu.json) and then PARSED BACK and validated: the file
// must be well-formed JSON in the trace-event shape Perfetto/chrome://tracing accept,
// contain the analyze/encode/solve/cache span categories, and carry per-pair solver
// counters in span args. The bench exits nonzero if verdicts diverge (1) or the trace
// fails validation (2), so CI catches a broken exporter, not a human squinting at a
// viewer.
//
// Emits one JSON document on stdout (progress and the Zhihu RunReport table go to
// stderr): per-app obs_off/obs_on best-of-3 seconds, overhead ratios, the embedded
// RunReport, plus aggregate totals used by the CI overhead gate.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/smallbank.h"
#include "src/apps/todo.h"
#include "src/apps/zhihu.h"
#include "src/obs/json.h"
#include "src/obs/obs.h"
#include "src/pipeline/pipeline.h"
#include "src/support/strings.h"

namespace {

using noctua::verifier::RestrictionReport;

std::vector<std::string> VerdictLines(const RestrictionReport& report) {
  std::vector<std::string> out;
  out.reserve(report.pairs.size());
  for (const auto& v : report.pairs) {
    out.push_back(v.p + "|" + v.q + "|" + noctua::verifier::CheckOutcomeName(v.commutativity) +
                  "|" + noctua::verifier::CheckOutcomeName(v.semantic));
  }
  return out;
}

// Validates a written trace file by parsing it back. Returns true and fills
// `categories` on success; prints the reason to stderr on failure.
bool ValidateTrace(const std::string& path, std::set<std::string>* categories) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fprintf(stderr, "[pipeline_sweep] trace validation: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  std::string error;
  noctua::obs::JsonPtr root = noctua::obs::ParseJson(buf.str(), &error);
  if (root == nullptr) {
    fprintf(stderr, "[pipeline_sweep] trace validation: %s\n", error.c_str());
    return false;
  }
  if (!root->is_object()) {
    fprintf(stderr, "[pipeline_sweep] trace validation: root is not an object\n");
    return false;
  }
  noctua::obs::JsonPtr events = root->Get("traceEvents");
  if (events == nullptr || !events->is_array() || events->AsArray().empty()) {
    fprintf(stderr, "[pipeline_sweep] trace validation: missing/empty traceEvents\n");
    return false;
  }

  bool pair_with_solver_args = false;
  for (const noctua::obs::JsonPtr& ev : events->AsArray()) {
    if (!ev->is_object()) {
      fprintf(stderr, "[pipeline_sweep] trace validation: non-object trace event\n");
      return false;
    }
    noctua::obs::JsonPtr ph = ev->Get("ph");
    noctua::obs::JsonPtr name = ev->Get("name");
    if (ph == nullptr || !ph->is_string() || name == nullptr || !name->is_string()) {
      fprintf(stderr, "[pipeline_sweep] trace validation: event missing ph/name\n");
      return false;
    }
    if (ph->AsString() != "X") {
      continue;  // metadata events
    }
    // Complete events need cat/ts/dur/pid/tid for the viewers to place them.
    noctua::obs::JsonPtr cat = ev->Get("cat");
    for (const char* key : {"ts", "dur", "pid", "tid"}) {
      noctua::obs::JsonPtr field = ev->Get(key);
      if (field == nullptr || !field->is_number()) {
        fprintf(stderr, "[pipeline_sweep] trace validation: X event missing %s\n", key);
        return false;
      }
    }
    if (cat == nullptr || !cat->is_string()) {
      fprintf(stderr, "[pipeline_sweep] trace validation: X event missing cat\n");
      return false;
    }
    categories->insert(cat->AsString());
    if (cat->AsString() == "pair") {
      noctua::obs::JsonPtr args = ev->Get("args");
      if (args != nullptr && args->is_object() &&
          args->Get("solver_nodes") != nullptr && args->Get("cache_hits") != nullptr) {
        pair_with_solver_args = true;
      }
    }
  }

  for (const char* required : {"analyze", "encode", "solve", "cache"}) {
    if (categories->count(required) == 0) {
      fprintf(stderr, "[pipeline_sweep] trace validation: category \"%s\" absent\n",
              required);
      return false;
    }
  }
  if (categories->size() < 4) {
    fprintf(stderr, "[pipeline_sweep] trace validation: fewer than 4 span categories\n");
    return false;
  }
  if (!pair_with_solver_args) {
    fprintf(stderr,
            "[pipeline_sweep] trace validation: no pair span carries per-pair solver "
            "counters\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace noctua;

  std::string trace_out = "pipeline_trace_zhihu.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else {
      fprintf(stderr, "usage: %s [--trace-out=<file>.json]\n", argv[0]);
      return 64;
    }
  }

  struct AppCase {
    const char* name;
    app::App app;
  };
  std::vector<AppCase> cases;
  cases.push_back({"Todo", apps::MakeTodoApp()});
  cases.push_back({"SmallBank", apps::MakeSmallBankApp()});
  cases.push_back({"Zhihu", apps::MakeZhihuApp()});

  constexpr int kIterations = 3;
  bool identical_everywhere = true;
  double total_off = 0;
  double total_on = 0;
  std::string zhihu_report_table;

  std::string json = "{" + bench::BenchJsonPreamble("pipeline_sweep") +
                     ", \"trace_file\": \"" + obs::JsonEscape(trace_out) +
                     "\", \"apps\": [";
  for (size_t c = 0; c < cases.size(); ++c) {
    AppCase& app_case = cases[c];
    const bool is_zhihu = std::strcmp(app_case.name, "Zhihu") == 0;

    // Deterministic solver budget: identical verdicts regardless of machine speed, so
    // the off-vs-on comparison below is exact equality, not a flaky approximation.
    PipelineOptions base;
    base.checker.solver.budget.deterministic = true;

    double off_seconds = 0;
    std::vector<std::string> reference;
    RestrictionReport off_report;
    for (int it = 0; it < kIterations; ++it) {
      PipelineResult r = Pipeline::Run(app_case.app, base);
      if (it == 0 || r.total_seconds < off_seconds) {
        off_seconds = r.total_seconds;
      }
      if (it == 0) {
        reference = VerdictLines(r.restrictions);
        off_report = std::move(r.restrictions);
      }
    }
    fprintf(stderr, "[pipeline_sweep] %s: obs off, best of %d: %.3fs (%zu pairs)\n",
            app_case.name, kIterations, off_seconds, off_report.pairs.size());

    PipelineOptions with_obs = base;
    with_obs.obs.enabled = true;
    if (is_zhihu) {
      with_obs.obs.trace_out = trace_out;
    }
    double on_seconds = 0;
    bool identical = true;
    PipelineResult on_result;
    for (int it = 0; it < kIterations; ++it) {
      PipelineResult r = Pipeline::Run(app_case.app, with_obs);
      if (it == 0 || r.total_seconds < on_seconds) {
        on_seconds = r.total_seconds;
      }
      identical = identical && VerdictLines(r.restrictions) == reference;
      if (it == kIterations - 1) {
        on_result = std::move(r);
      }
    }
    identical_everywhere = identical_everywhere && identical;
    total_off += off_seconds;
    total_on += on_seconds;
    double ratio = off_seconds > 0 ? on_seconds / off_seconds : 0;
    fprintf(stderr,
            "[pipeline_sweep] %s: obs on,  best of %d: %.3fs  overhead %.3fx  "
            "(%zu trace events)%s\n",
            app_case.name, kIterations, on_seconds, ratio, on_result.report.trace_events,
            identical ? "" : "  VERDICTS DIVERGED");
    if (is_zhihu) {
      zhihu_report_table = on_result.report.ToTable();
    }

    json += std::string(c ? ", " : "") + "{\"app\": \"" + app_case.name +
            "\", \"pairs\": " + std::to_string(off_report.pairs.size()) +
            ", \"restrictions\": " + std::to_string(off_report.num_restrictions()) +
            ", \"obs_off_seconds\": " + FormatDouble(off_seconds, 4) +
            ", \"obs_on_seconds\": " + FormatDouble(on_seconds, 4) +
            ", \"overhead_ratio\": " + FormatDouble(ratio, 4) +
            ", \"phases\": " + bench::PhaseTimingJson(off_report) +
            ", \"identical_restrictions\": " + (identical ? "true" : "false") +
            ", \"report\": " + on_result.report.ToJson() + "}";
  }

  // Parse the written Zhihu trace back; a file Perfetto would reject fails the bench.
  std::set<std::string> categories;
  bool trace_valid = ValidateTrace(trace_out, &categories);
  fprintf(stderr, "[pipeline_sweep] trace %s: %s (%zu categories)\n", trace_out.c_str(),
          trace_valid ? "valid" : "INVALID", categories.size());
  if (!zhihu_report_table.empty()) {
    fprintf(stderr, "\n%s\n", zhihu_report_table.c_str());
  }

  std::vector<std::string> cat_list(categories.begin(), categories.end());
  double aggregate = total_off > 0 ? total_on / total_off : 0;
  json += "], \"total_obs_off_seconds\": " + FormatDouble(total_off, 4) +
          ", \"total_obs_on_seconds\": " + FormatDouble(total_on, 4) +
          ", \"aggregate_overhead_ratio\": " + FormatDouble(aggregate, 4) +
          ", \"trace_valid\": " + (trace_valid ? "true" : "false") +
          ", \"trace_span_categories\": [";
  for (size_t i = 0; i < cat_list.size(); ++i) {
    json += std::string(i ? ", " : "") + "\"" + obs::JsonEscape(cat_list[i]) + "\"";
  }
  json += "], \"identical_everywhere\": " + std::string(identical_everywhere ? "true" : "false") +
          "}";
  printf("%s\n", json.c_str());

  if (!identical_everywhere) {
    fprintf(stderr, "[pipeline_sweep] FAILED: instrumentation changed a verdict\n");
    return 1;
  }
  if (!trace_valid) {
    fprintf(stderr, "[pipeline_sweep] FAILED: trace file failed validation\n");
    return 2;
  }
  return 0;
}
