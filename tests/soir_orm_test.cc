// Tests for the SOIR layer (schema, printer, concrete interpreter) and the in-memory
// relational database substrate.
#include <gtest/gtest.h>

#include "src/apps/blog.h"
#include "src/analyzer/analyzer.h"
#include "src/orm/database.h"
#include "src/soir/interp.h"
#include "src/soir/printer.h"

namespace noctua {
namespace {

using orm::Database;
using orm::Row;
using orm::Value;

soir::Schema BankSchema() {
  soir::Schema s;
  s.AddModel("Account");
  s.AddField("Account", soir::FieldDef{.name = "owner", .type = soir::FieldType::kString});
  s.AddField("Account", soir::FieldDef{.name = "balance", .type = soir::FieldType::kInt});
  return s;
}

TEST(SchemaTest, FieldLookupAndPk) {
  soir::Schema s = BankSchema();
  const soir::ModelDef& m = s.model(s.ModelId("Account"));
  EXPECT_EQ(m.FieldIndex("owner"), 0);
  EXPECT_EQ(m.FieldIndex("balance"), 1);
  EXPECT_EQ(m.FieldIndex("id"), -1);
  EXPECT_TRUE(m.IsPk("id"));
  EXPECT_FALSE(m.IsPk("owner"));
}

TEST(SchemaTest, RelationResolution) {
  soir::Schema s;
  s.AddModel("User");
  s.AddModel("Post");
  s.AddRelation("author", "Post", "User");
  auto [fwd, is_fwd] = s.FindRelation(s.ModelId("Post"), "author");
  EXPECT_GE(fwd, 0);
  EXPECT_TRUE(is_fwd);
  auto [bwd, is_fwd2] = s.FindRelation(s.ModelId("User"), "post_set");
  EXPECT_EQ(bwd, fwd);
  EXPECT_FALSE(is_fwd2);
  auto [none, _] = s.FindRelation(s.ModelId("User"), "nope");
  EXPECT_EQ(none, -1);
}

TEST(DatabaseTest, UpsertGetEraseRoundTrip) {
  soir::Schema s = BankSchema();
  Database db(&s);
  db.Upsert(0, 1, Row{Value::Str("alice"), Value::Int(100)});
  EXPECT_TRUE(db.Exists(0, 1));
  EXPECT_EQ(db.Get(0, 1)[1].int_v(), 100);
  db.Upsert(0, 1, Row{Value::Str("alice"), Value::Int(50)});  // update keeps order
  EXPECT_EQ(db.Get(0, 1)[1].int_v(), 50);
  EXPECT_EQ(db.RowCount(0), 1u);
  db.Erase(0, 1);
  EXPECT_FALSE(db.Exists(0, 1));
}

TEST(DatabaseTest, InsertionOrderIsPreserved) {
  soir::Schema s = BankSchema();
  Database db(&s);
  db.Upsert(0, 5, Row{Value::Str("c"), Value::Int(0)});
  db.Upsert(0, 2, Row{Value::Str("a"), Value::Int(0)});
  db.Upsert(0, 9, Row{Value::Str("b"), Value::Int(0)});
  EXPECT_EQ(db.AllPks(0), (std::vector<int64_t>{5, 2, 9}));
  db.Upsert(0, 2, Row{Value::Str("a2"), Value::Int(1)});  // update: order unchanged
  EXPECT_EQ(db.AllPks(0), (std::vector<int64_t>{5, 2, 9}));
}

TEST(DatabaseTest, ForeignKeyLinkReplacesTarget) {
  soir::Schema s;
  s.AddModel("User");
  s.AddModel("Post");
  int rel = s.AddRelation("author", "Post", "User");
  Database db(&s);
  db.Link(rel, 1, 10);
  db.Link(rel, 1, 20);  // many-to-one: replaces
  EXPECT_FALSE(db.Linked(rel, 1, 10));
  EXPECT_TRUE(db.Linked(rel, 1, 20));
  EXPECT_EQ(db.Associated(rel, 1, true), (std::vector<int64_t>{20}));
  EXPECT_EQ(db.Associated(rel, 20, false), (std::vector<int64_t>{1}));
}

TEST(DatabaseTest, EraseRemovesIncidentAssociations) {
  soir::Schema s;
  s.AddModel("User");
  s.AddModel("Post");
  int rel = s.AddRelation("author", "Post", "User", soir::RelationKind::kManyToOne,
                          soir::OnDelete::kSetNull);
  Database db(&s);
  db.Upsert(1, 1, Row{});
  db.Link(rel, 1, 10);
  db.Erase(1, 1);  // delete the post (from side)
  EXPECT_FALSE(db.Linked(rel, 1, 10));
}

TEST(DatabaseTest, DoNothingLeavesDanglingReference) {
  soir::Schema s;
  s.AddModel("Course");
  s.AddModel("Enrolment");
  int rel = s.AddRelation("course", "Enrolment", "Course", soir::RelationKind::kManyToOne,
                          soir::OnDelete::kDoNothing);
  Database db(&s);
  db.Upsert(0, 7, Row{});
  db.Link(rel, 3, 7);
  db.Erase(0, 7);  // deleting the course keeps the enrolment's dangling edge
  EXPECT_TRUE(db.Linked(rel, 3, 7));
}

TEST(DatabaseTest, StripedIdsAreDisjointAcrossSites) {
  soir::Schema s = BankSchema();
  Database site0(&s);
  Database site1(&s);
  site0.StripeNewIds(0, 2);
  site1.StripeNewIds(1, 2);
  std::set<int64_t> seen;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(seen.insert(site0.NewId(0)).second);
    EXPECT_TRUE(seen.insert(site1.NewId(0)).second);
  }
}

TEST(DatabaseTest, SameStateComparesRelativeOrder) {
  soir::Schema s = BankSchema();
  Database a(&s);
  Database b(&s);
  a.Upsert(0, 1, Row{Value::Str("x"), Value::Int(0)});
  a.Upsert(0, 2, Row{Value::Str("y"), Value::Int(0)});
  b.Upsert(0, 2, Row{Value::Str("y"), Value::Int(0)});
  b.Upsert(0, 1, Row{Value::Str("x"), Value::Int(0)});
  EXPECT_FALSE(a.SameState(b, {0}));  // same rows, different insertion order
  EXPECT_TRUE(a.SameState(b));         // ...which is unobservable without order models
  Database c(&s);
  c.Upsert(0, 1, Row{Value::Str("x"), Value::Int(0)});
  c.Upsert(0, 2, Row{Value::Str("y"), Value::Int(0)});
  EXPECT_TRUE(a.SameState(c));
}

// --- Interpreter over extracted blog paths ----------------------------------------------------

class BlogInterpTest : public ::testing::Test {
 protected:
  BlogInterpTest() : app(apps::MakeBlogApp()), db(&app.schema()) {
    auto res = analyzer::AnalyzeApp(app);
    paths = std::move(res.paths);
    user_m = app.schema().ModelId("User");
    article_m = app.schema().ModelId("Article");
    comment_m = app.schema().ModelId("Comment");
    auto [a, fwd] = app.schema().FindRelation(article_m, "author");
    author_rel = a;
    // Two users; two articles by user 1; one comment on article 0.
    db.Upsert(user_m, 1, {});
    db.Upsert(user_m, 2, {});
    db.Upsert(article_m, 10,
              {Value::Str("u10"), Value::Str("t"), Value::Str("c"), Value::Int(0)});
    db.Upsert(article_m, 11,
              {Value::Str("u11"), Value::Str("t"), Value::Str("c"), Value::Int(0)});
    db.Link(author_rel, 10, 1);
    db.Link(author_rel, 11, 1);
    auto [ar, f2] = app.schema().FindRelation(comment_m, "article");
    db.Upsert(comment_m, 100, {Value::Str("hi")});
    db.Link(ar, 100, 10);
  }

  const soir::CodePath& Find(const std::string& op) const {
    for (const auto& p : paths) {
      if (p.op_name == op) {
        return p;
      }
    }
    NOCTUA_UNREACHABLE("no path " + op);
  }

  app::App app;
  std::vector<soir::CodePath> paths;
  Database db;
  int user_m, article_m, comment_m, author_rel;
};

TEST_F(BlogInterpTest, DeletePathRemovesArticlesAndCascadesComments) {
  soir::Interp interp(app.schema());
  soir::ArgValues args{{"arg_URL_username", Value::Ref(1)},
                       {"arg_POST_action", Value::Str("delete")}};
  EXPECT_TRUE(interp.Run(Find("batch_update#p0"), args, &db));
  EXPECT_EQ(db.RowCount(article_m), 0u);
  EXPECT_EQ(db.RowCount(comment_m), 0u);  // cascade via the comment->article FK
  EXPECT_EQ(db.RowCount(user_m), 2u);     // SET_NULL: users survive
}

TEST_F(BlogInterpTest, TransferPathRelinksAuthorship) {
  soir::Interp interp(app.schema());
  soir::ArgValues args{{"arg_URL_username", Value::Ref(1)},
                       {"arg_POST_action", Value::Str("transfer")},
                       {"arg_POST_to_user", Value::Ref(2)}};
  EXPECT_TRUE(interp.Run(Find("batch_update#p1"), args, &db));
  EXPECT_EQ(db.Associated(author_rel, 10, true), (std::vector<int64_t>{2}));
  EXPECT_EQ(db.Associated(author_rel, 11, true), (std::vector<int64_t>{2}));
}

TEST_F(BlogInterpTest, GuardFailureRollsBackEverything) {
  soir::Interp interp(app.schema());
  // The branch guard (action == "delete") fails: path p0 with action="transfer".
  soir::ArgValues args{{"arg_URL_username", Value::Ref(1)},
                       {"arg_POST_action", Value::Str("transfer")}};
  Database before = db;
  EXPECT_FALSE(interp.Run(Find("batch_update#p0"), args, &db));
  EXPECT_TRUE(db.SameState(before));
}

TEST_F(BlogInterpTest, MissingUserAborts) {
  soir::Interp interp(app.schema());
  soir::ArgValues args{{"arg_URL_username", Value::Ref(99)},
                       {"arg_POST_action", Value::Str("delete")}};
  EXPECT_FALSE(interp.Run(Find("batch_update#p0"), args, &db));
  EXPECT_EQ(db.RowCount(article_m), 2u);
}

TEST_F(BlogInterpTest, CreateArticleInsertsAndLinks) {
  soir::Interp interp(app.schema());
  const soir::CodePath& create = Find("create_article#p0");
  // Find the unique-id argument's name.
  std::string id_arg;
  for (const auto& arg : create.args) {
    if (arg.unique_id) {
      id_arg = arg.name;
    }
  }
  ASSERT_FALSE(id_arg.empty());
  soir::ArgValues args{{"arg_POST_author", Value::Ref(2)},
                       {"arg_POST_url", Value::Str("fresh-url")},
                       {"arg_POST_title", Value::Str("T")},
                       {"arg_POST_content", Value::Str("C")},
                       {"arg_POST_now", Value::Int(7)},
                       {id_arg, Value::Ref(77)}};
  EXPECT_TRUE(interp.Run(create, args, &db));
  EXPECT_TRUE(db.Exists(article_m, 77));
  EXPECT_EQ(db.Associated(author_rel, 77, true), (std::vector<int64_t>{2}));

  // Re-running with the same unique URL violates the uniqueness guard.
  args[id_arg] = Value::Ref(78);
  EXPECT_FALSE(interp.Run(create, args, &db));
  EXPECT_FALSE(db.Exists(article_m, 78));
}

TEST_F(BlogInterpTest, PrinterProducesReadableSoir) {
  std::string text = soir::PrintCodePath(app.schema(), Find("batch_update#p0"));
  EXPECT_NE(text.find("guard"), std::string::npos);
  EXPECT_NE(text.find("delete("), std::string::npos);
  EXPECT_NE(text.find("filter("), std::string::npos);
  EXPECT_NE(text.find("author"), std::string::npos);
}

TEST_F(BlogInterpTest, ExpressionEvaluation) {
  soir::Interp interp(app.schema());
  soir::ArgValues args;
  // count(all<Article>) == 2 against the seeded database.
  soir::ExprP count = soir::MakeAggregate(soir::MakeAll(article_m), soir::AggOp::kCount, "");
  EXPECT_EQ(interp.Eval(*count, args, db).scalar.int_v(), 2);
  // exists(filter(url == "u10")) is true.
  soir::ExprP match = soir::MakeExists(soir::MakeFilter(
      soir::MakeAll(article_m), {}, "url", soir::CmpOp::kEq, soir::MakeStrLit("u10")));
  EXPECT_TRUE(interp.Eval(*match, args, db).scalar.bool_v());
  // first(orderby(url desc)) is article 11.
  soir::ExprP last = soir::MakeFirst(soir::MakeOrderBy(soir::MakeAll(article_m), "url",
                                                       /*ascending=*/false));
  EXPECT_EQ(interp.Eval(*last, args, db).obj.pk, 11);
}

}  // namespace
}  // namespace noctua
