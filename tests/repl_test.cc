// Geo-replication simulator tests: convergence under PoR coordination, the
// PoR-beats-strong-consistency performance shape (the substance of Figures 10/11), and
// workload generation.
#include <gtest/gtest.h>

#include "src/analyzer/analyzer.h"
#include "src/apps/apps.h"
#include "src/repl/simulator.h"
#include "src/verifier/report.h"

namespace noctua::repl {
namespace {

ConflictTable ConflictsFor(const app::App& a, const std::vector<soir::CodePath>& eff) {
  verifier::RestrictionReport report =
      verifier::AnalyzeRestrictions(verifier::Checker(a.schema()), eff);
  ConflictTable table;
  for (const auto& v : report.pairs) {
    if (v.Restricted()) {
      // Lift path-level restrictions to endpoints (the paper's §6.5 simplification).
      table.AddPair(v.p.substr(0, v.p.find('#')), v.q.substr(0, v.q.find('#')));
    }
  }
  return table;
}

TEST(ConflictTableTest, SymmetricLookup) {
  ConflictTable t;
  t.AddPair("b", "a");
  EXPECT_TRUE(t.Conflicts("a", "b"));
  EXPECT_TRUE(t.Conflicts("b", "a"));
  EXPECT_FALSE(t.Conflicts("a", "c"));
  t.SetTotal(true);
  EXPECT_TRUE(t.Conflicts("a", "c"));
}

TEST(ConflictTableTest, SymmetryHoldsForEveryInsertionOrder) {
  ConflictTable forward;
  forward.AddPair("x", "y");
  ConflictTable backward;
  backward.AddPair("y", "x");
  for (const ConflictTable* t : {&forward, &backward}) {
    EXPECT_TRUE(t->Conflicts("x", "y"));
    EXPECT_TRUE(t->Conflicts("y", "x"));
  }
  EXPECT_EQ(forward.size(), 1u);
  EXPECT_EQ(backward.size(), 1u);
}

TEST(ConflictTableTest, SelfConflictPairs) {
  ConflictTable t;
  t.AddPair("deposit", "deposit");
  EXPECT_TRUE(t.Conflicts("deposit", "deposit"));
  EXPECT_FALSE(t.Conflicts("balance", "balance"));
  EXPECT_FALSE(t.Conflicts("deposit", "balance"));
  EXPECT_EQ(t.size(), 1u);
}

TEST(ConflictTableTest, SetTotalOverridesThePairSet) {
  ConflictTable t;
  t.AddPair("a", "b");
  t.SetTotal(true);
  EXPECT_TRUE(t.total());
  // Total mode: everything conflicts, including pairs never added.
  EXPECT_TRUE(t.Conflicts("p", "q"));
  EXPECT_TRUE(t.Conflicts("p", "p"));
  // Dropping total mode restores exactly the pair set.
  t.SetTotal(false);
  EXPECT_FALSE(t.total());
  EXPECT_TRUE(t.Conflicts("a", "b"));
  EXPECT_FALSE(t.Conflicts("p", "q"));
  EXPECT_FALSE(t.Conflicts("p", "p"));
}

TEST(WorkloadTest, RespectsWriteRatio) {
  app::App a = apps::MakeSmallBankApp();
  auto res = analyzer::AnalyzeApp(a);
  WorkloadGenerator gen(a.schema(), res.paths, 0.2, 7);
  orm::Database db(&a.schema());
  WorkloadGenerator::SeedDatabase(&db, 5, 7);
  int writes = 0;
  const int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    writes += gen.Next(&db).is_write ? 1 : 0;
  }
  EXPECT_NEAR(writes / static_cast<double>(kN), 0.2, 0.05);
}

TEST(WorkloadTest, ArgumentsMatchPathSignatures) {
  app::App a = apps::MakeSmallBankApp();
  auto res = analyzer::AnalyzeApp(a);
  WorkloadGenerator gen(a.schema(), res.paths, 1.0, 9);
  orm::Database db(&a.schema());
  WorkloadGenerator::SeedDatabase(&db, 5, 9);
  for (int i = 0; i < 100; ++i) {
    Request r = gen.Next(&db);
    for (const soir::ArgDef& arg : r.path->args) {
      ASSERT_TRUE(r.args.count(arg.name)) << arg.name;
    }
  }
}

class SimTest : public ::testing::TestWithParam<double> {};

TEST_P(SimTest, SmallBankConvergesUnderPoR) {
  app::App a = apps::MakeSmallBankApp();
  auto res = analyzer::AnalyzeApp(a);
  auto eff = res.EffectfulPaths();
  SimOptions options;
  options.write_ratio = GetParam();
  options.duration_ms = 300;
  Simulator sim(a.schema(), res.paths, ConflictsFor(a, eff), options);
  SimResult result = sim.Run();
  EXPECT_GT(result.completed_requests, 100u);
  EXPECT_TRUE(result.converged) << "replicas diverged under the computed restriction set";
}

INSTANTIATE_TEST_SUITE_P(WriteRatios, SimTest, ::testing::Values(0.15, 0.3, 0.5, 1.0));

TEST(SimulatorTest, StrongConsistencyConverges) {
  app::App a = apps::MakeSmallBankApp();
  auto res = analyzer::AnalyzeApp(a);
  SimOptions options;
  options.strong_consistency = true;
  options.duration_ms = 200;
  ConflictTable total;
  total.SetTotal(true);
  Simulator sim(a.schema(), res.paths, total, options);
  SimResult result = sim.Run();
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.completed_requests, 0u);
}

TEST(SimulatorTest, PoRBeatsStrongConsistency) {
  // The substance of Fig. 10: relaxing consistency improves throughput.
  app::App a = apps::MakeSmallBankApp();
  auto res = analyzer::AnalyzeApp(a);
  auto eff = res.EffectfulPaths();
  SimOptions options;
  options.write_ratio = 0.15;
  options.duration_ms = 400;

  Simulator por(a.schema(), res.paths, ConflictsFor(a, eff), options);
  SimResult por_result = por.Run();

  options.strong_consistency = true;
  ConflictTable total;
  total.SetTotal(true);
  Simulator sc(a.schema(), res.paths, total, options);
  SimResult sc_result = sc.Run();

  EXPECT_GT(por_result.ThroughputOpsPerSec(), sc_result.ThroughputOpsPerSec());
  EXPECT_LT(por_result.avg_latency_ms, sc_result.avg_latency_ms);
}

TEST(SimulatorTest, LowerWriteRatioGivesHigherThroughput) {
  // Fig. 10's trend within PoR: fewer writes, less coordination, more throughput.
  app::App a = apps::MakeSmallBankApp();
  auto res = analyzer::AnalyzeApp(a);
  auto eff = res.EffectfulPaths();
  ConflictTable conflicts = ConflictsFor(a, eff);
  auto run = [&](double ratio) {
    SimOptions options;
    options.write_ratio = ratio;
    options.duration_ms = 400;
    Simulator sim(a.schema(), res.paths, conflicts, options);
    return sim.Run().ThroughputOpsPerSec();
  };
  EXPECT_GT(run(0.15), run(0.5));
}

TEST(SimulatorTest, DeterministicGivenSeed) {
  app::App a = apps::MakeCoursewareApp();
  auto res = analyzer::AnalyzeApp(a);
  auto eff = res.EffectfulPaths();
  SimOptions options;
  options.duration_ms = 150;
  Simulator s1(a.schema(), res.paths, ConflictsFor(a, eff), options);
  Simulator s2(a.schema(), res.paths, ConflictsFor(a, eff), options);
  SimResult r1 = s1.Run();
  SimResult r2 = s2.Run();
  EXPECT_EQ(r1.completed_requests, r2.completed_requests);
  EXPECT_DOUBLE_EQ(r1.avg_latency_ms, r2.avg_latency_ms);
}

TEST(SimulatorTest, EnforcedPoRConvergesWithACleanTrace) {
  // Routing admission through the lease coordinator (instead of the omniscient
  // active-set) must preserve both safety properties, and the recorded history must
  // satisfy the trace checker against the same restriction set.
  app::App a = apps::MakeSmallBankApp();
  auto res = analyzer::AnalyzeApp(a);
  auto eff = res.EffectfulPaths();
  ConflictTable conflicts = ConflictsFor(a, eff);
  SimOptions options;
  options.write_ratio = 0.5;
  options.duration_ms = 300;
  options.enforce.enabled = true;
  Simulator sim(a.schema(), res.paths, conflicts, options);
  SimResult result = sim.Run();
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.conflict_violations, 0u);
  EXPECT_GT(result.completed_requests, 0u);
  EXPECT_GT(result.lease_acquires, 0u);
  EXPECT_GT(result.lease_grants, 0u);
  TraceCheckResult check = CheckTrace(result.trace, conflicts);
  EXPECT_TRUE(check.ok()) << (check.has_witness ? check.first.Describe() : "");
  EXPECT_GT(check.pairs_checked, 0u);
}

TEST(SimulatorTest, EnforcedThroughputSitsBetweenStrongConsistencyAndUnenforcedPoR) {
  // The enforcement cost model makes runtime coordination measurably non-free: an
  // enforced run pays per-grant service costs the omniscient coordinator doesn't, but
  // still beats serializing everything.
  app::App a = apps::MakeSmallBankApp();
  auto res = analyzer::AnalyzeApp(a);
  auto eff = res.EffectfulPaths();
  ConflictTable conflicts = ConflictsFor(a, eff);
  SimOptions options;
  options.write_ratio = 0.5;
  options.duration_ms = 400;

  Simulator unenforced(a.schema(), res.paths, conflicts, options);
  double por = unenforced.Run().ThroughputOpsPerSec();

  options.enforce.enabled = true;
  Simulator enforced(a.schema(), res.paths, conflicts, options);
  double enforced_por = enforced.Run().ThroughputOpsPerSec();

  options.enforce.enabled = false;
  options.strong_consistency = true;
  ConflictTable total;
  total.SetTotal(true);
  Simulator sc(a.schema(), res.paths, total, options);
  double strong = sc.Run().ThroughputOpsPerSec();

  EXPECT_LT(enforced_por, por) << "enforcement came for free — the cost model is dead";
  EXPECT_GT(enforced_por, strong) << "enforced PoR lost to strong consistency";
}

TEST(SimulatorTest, CoursewareConvergesUnderPoR) {
  app::App a = apps::MakeCoursewareApp();
  auto res = analyzer::AnalyzeApp(a);
  auto eff = res.EffectfulPaths();
  SimOptions options;
  options.write_ratio = 0.5;
  options.duration_ms = 300;
  Simulator sim(a.schema(), res.paths, ConflictsFor(a, eff), options);
  SimResult result = sim.Run();
  EXPECT_TRUE(result.converged);
}

}  // namespace
}  // namespace noctua::repl
