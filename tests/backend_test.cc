// Tests for the pluggable solver backends (src/smt/backend.h):
//   * the CdclSearch propositional core, driven piecewise — unit propagation chains,
//     first-UIP conflict analysis, learned-clause implication, pigeonhole pure SAT;
//   * backend selection — strict NOCTUA_SOLVER parsing and the MakeBackend factory;
//   * the portfolio race — cancellation, win accounting, verdict agreement;
//   * the headline soundness claim: every evaluated app's restriction set is
//     byte-identical across dfs, cdcl, and portfolio.
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/apps.h"
#include "src/pipeline/pipeline.h"
#include "src/smt/backend.h"
#include "src/smt/cdcl.h"
#include "src/smt/portfolio.h"
#include "src/smt/solver.h"
#include "src/smt/term.h"

namespace noctua {
namespace {

using smt::BackendKind;
using smt::CdclSearch;
using smt::SolveResult;
using smt::Term;
using smt::TermFactory;

// ------------------------------------------------------------------- CdclSearch core

TEST(CdclSearchTest, UnitPropagationChains) {
  CdclSearch s;
  int a = s.NewVar(), b = s.NewVar(), c = s.NewVar(), d = s.NewVar();
  // a -> b -> c -> d as implications.
  s.AddClause({CdclSearch::NegLit(a), CdclSearch::PosLit(b)});
  s.AddClause({CdclSearch::NegLit(b), CdclSearch::PosLit(c)});
  s.AddClause({CdclSearch::NegLit(c), CdclSearch::PosLit(d)});
  ASSERT_FALSE(s.unsat());

  s.Decide(CdclSearch::PosLit(a));
  EXPECT_EQ(s.Propagate(), -1);
  for (int v : {a, b, c, d}) {
    EXPECT_EQ(s.value(v), 1) << "var " << v;
    EXPECT_EQ(s.LevelOf(v), 1) << "var " << v;
  }

  // Backtracking undoes the whole chain.
  s.BacktrackTo(0);
  for (int v : {a, b, c, d}) {
    EXPECT_EQ(s.value(v), -1) << "var " << v;
  }
}

TEST(CdclSearchTest, PropagationReportsConflictingClause) {
  CdclSearch s;
  int a = s.NewVar(), b = s.NewVar();
  s.AddClause({CdclSearch::NegLit(a), CdclSearch::PosLit(b)});
  s.AddClause({CdclSearch::NegLit(a), CdclSearch::NegLit(b)});
  s.Decide(CdclSearch::PosLit(a));
  int conflict = s.Propagate();
  ASSERT_GE(conflict, 0);
  // The conflicting clause is falsified end to end.
  // (Either input clause may be reported depending on propagation order.)
  EXPECT_EQ(s.value(a), 1);
}

TEST(CdclSearchTest, LevelZeroUnitsPropagateImmediately) {
  CdclSearch s;
  int a = s.NewVar(), b = s.NewVar();
  s.AddClause({CdclSearch::PosLit(a)});
  s.AddClause({CdclSearch::NegLit(a), CdclSearch::PosLit(b)});
  EXPECT_EQ(s.Propagate(), -1);
  EXPECT_EQ(s.value(a), 1);
  EXPECT_EQ(s.value(b), 1);
  EXPECT_EQ(s.LevelOf(a), 0);
  EXPECT_EQ(s.LevelOf(b), 0);
}

TEST(CdclSearchTest, ContradictoryUnitsMarkUnsat) {
  CdclSearch s;
  int a = s.NewVar();
  s.AddClause({CdclSearch::PosLit(a)});
  s.Propagate();
  s.AddClause({CdclSearch::NegLit(a)});
  EXPECT_TRUE(s.unsat());
}

// The classic first-UIP shape: a@1 and b@2 are decisions; b implies c, c and a imply d,
// and (¬c ∨ ¬d) closes the trap. Analysis must resolve d away, stop at the unique
// level-2 implication point c, and pull in the level-1 context literal ¬a.
TEST(CdclSearchTest, FirstUipLearnedClauseAndBackjump) {
  CdclSearch s;
  int a = s.NewVar(), b = s.NewVar(), c = s.NewVar(), d = s.NewVar();
  s.AddClause({CdclSearch::NegLit(b), CdclSearch::PosLit(c)});
  s.AddClause({CdclSearch::NegLit(a), CdclSearch::NegLit(c), CdclSearch::PosLit(d)});
  std::vector<int> trap = {CdclSearch::NegLit(c), CdclSearch::NegLit(d)};
  s.AddClause(trap);

  s.Decide(CdclSearch::PosLit(a));
  ASSERT_EQ(s.Propagate(), -1);
  s.Decide(CdclSearch::PosLit(b));
  int conflict = s.Propagate();
  ASSERT_GE(conflict, 0);

  CdclSearch::Conflict result = s.Analyze(trap);
  ASSERT_EQ(result.learned.size(), 2u);
  EXPECT_EQ(result.learned[0], CdclSearch::NegLit(c));  // the asserting first-UIP literal
  EXPECT_EQ(result.learned[1], CdclSearch::NegLit(a));  // the level-1 context
  EXPECT_EQ(result.backjump_level, 1);
}

// Whatever Analyze learns must be *implied* by the input formula: conjoining the
// negation of the learned clause with the original clauses must be unsatisfiable.
TEST(CdclSearchTest, LearnedClauseIsImpliedByTheFormula) {
  std::vector<std::vector<int>> formula;
  auto build = [&](CdclSearch& s) {
    int a = s.NewVar(), b = s.NewVar(), c = s.NewVar(), d = s.NewVar();
    formula = {{CdclSearch::NegLit(b), CdclSearch::PosLit(c)},
               {CdclSearch::NegLit(a), CdclSearch::NegLit(c), CdclSearch::PosLit(d)},
               {CdclSearch::NegLit(c), CdclSearch::NegLit(d)}};
    for (const auto& cl : formula) {
      s.AddClause(cl);
    }
    return std::vector<int>{a, b, c, d};
  };

  CdclSearch s;
  std::vector<int> vars = build(s);
  s.Decide(CdclSearch::PosLit(vars[0]));
  ASSERT_EQ(s.Propagate(), -1);
  s.Decide(CdclSearch::PosLit(vars[1]));
  ASSERT_GE(s.Propagate(), 0);
  CdclSearch::Conflict result = s.Analyze(formula[2]);

  // Fresh search: original formula plus the negation of every learned literal.
  CdclSearch check;
  build(check);
  for (int lit : result.learned) {
    check.AddClause({CdclSearch::Negate(lit)});
  }
  EXPECT_EQ(check.Solve(nullptr, nullptr), SolveResult::kUnsat);
}

TEST(CdclSearchTest, SolvePureSatFindsSatisfyingAssignment) {
  CdclSearch s;
  int a = s.NewVar(), b = s.NewVar(), c = s.NewVar();
  std::vector<std::vector<int>> formula = {
      {CdclSearch::PosLit(a), CdclSearch::PosLit(b)},
      {CdclSearch::NegLit(a), CdclSearch::PosLit(c)},
      {CdclSearch::NegLit(b), CdclSearch::NegLit(c)},
  };
  for (const auto& cl : formula) {
    s.AddClause(cl);
  }
  ASSERT_EQ(s.Solve(nullptr, nullptr), SolveResult::kSat);
  for (const auto& cl : formula) {
    bool satisfied = false;
    for (int lit : cl) {
      satisfied = satisfied || s.LitValue(lit) == 1;
    }
    EXPECT_TRUE(satisfied);
  }
}

// Pigeonhole PHP(4,3): every unsatisfiable run must learn its way there.
TEST(CdclSearchTest, PigeonholeIsUnsatAndLearnsClauses) {
  constexpr int kPigeons = 4, kHoles = 3;
  CdclSearch s;
  int p[kPigeons][kHoles];
  for (int i = 0; i < kPigeons; ++i) {
    for (int j = 0; j < kHoles; ++j) {
      p[i][j] = s.NewVar();
    }
  }
  for (int i = 0; i < kPigeons; ++i) {
    std::vector<int> somewhere;
    for (int j = 0; j < kHoles; ++j) {
      somewhere.push_back(CdclSearch::PosLit(p[i][j]));
    }
    s.AddClause(somewhere);
  }
  for (int j = 0; j < kHoles; ++j) {
    for (int i = 0; i < kPigeons; ++i) {
      for (int k = i + 1; k < kPigeons; ++k) {
        s.AddClause({CdclSearch::NegLit(p[i][j]), CdclSearch::NegLit(p[k][j])});
      }
    }
  }
  EXPECT_EQ(s.Solve(nullptr, nullptr), SolveResult::kUnsat);
  EXPECT_GT(s.conflicts(), 0u);
  EXPECT_GT(s.learned_clauses(), 0u);
}

// Aggressive Luby restarts must not change a verdict: with a one-conflict restart unit
// the pigeonhole refutation still lands at unsat (input clauses and level-0 units
// survive every restart and DB reduction), the schedule actually fires, and the
// injection hook runs once per restart.
TEST(CdclSearchTest, LubyRestartsPreserveUnsatAndFireTheHook) {
  constexpr int kPigeons = 4, kHoles = 3;
  CdclSearch s;
  uint64_t hook_calls = 0;
  s.ConfigureRestarts(1, [&]() { ++hook_calls; });
  int p[kPigeons][kHoles];
  for (int i = 0; i < kPigeons; ++i) {
    for (int j = 0; j < kHoles; ++j) {
      p[i][j] = s.NewVar();
    }
  }
  for (int i = 0; i < kPigeons; ++i) {
    std::vector<int> somewhere;
    for (int j = 0; j < kHoles; ++j) {
      somewhere.push_back(CdclSearch::PosLit(p[i][j]));
    }
    s.AddClause(somewhere);
  }
  for (int j = 0; j < kHoles; ++j) {
    for (int i = 0; i < kPigeons; ++i) {
      for (int k = i + 1; k < kPigeons; ++k) {
        s.AddClause({CdclSearch::NegLit(p[i][j]), CdclSearch::NegLit(p[k][j])});
      }
    }
  }
  EXPECT_EQ(s.Solve(nullptr, nullptr), SolveResult::kUnsat);
  EXPECT_GT(s.restarts(), 0u);
  EXPECT_EQ(hook_calls, s.restarts());
}

// ------------------------------------------------------------------ backend selection

TEST(BackendKindTest, ParseAcceptsExactlyTheThreeKnobValues) {
  BackendKind k = BackendKind::kAuto;
  EXPECT_TRUE(smt::ParseBackendKind("dfs", &k));
  EXPECT_EQ(k, BackendKind::kDfs);
  EXPECT_TRUE(smt::ParseBackendKind("cdcl", &k));
  EXPECT_EQ(k, BackendKind::kCdcl);
  EXPECT_TRUE(smt::ParseBackendKind("portfolio", &k));
  EXPECT_EQ(k, BackendKind::kPortfolio);

  for (const char* bad : {"auto", "DFS", "Cdcl", "", "z3", "dfs ", " dfs", "portfolio2"}) {
    BackendKind untouched = BackendKind::kPortfolio;
    EXPECT_FALSE(smt::ParseBackendKind(bad, &untouched)) << '"' << bad << '"';
    EXPECT_EQ(untouched, BackendKind::kPortfolio) << '"' << bad << '"';
  }
}

TEST(BackendKindTest, EnvSelectionIsStrict) {
  ASSERT_EQ(unsetenv("NOCTUA_SOLVER"), 0);
  EXPECT_EQ(smt::BackendKindFromEnv(), BackendKind::kDfs);
  ASSERT_EQ(setenv("NOCTUA_SOLVER", "cdcl", 1), 0);
  EXPECT_EQ(smt::BackendKindFromEnv(), BackendKind::kCdcl);
  ASSERT_EQ(setenv("NOCTUA_SOLVER", "portfolio", 1), 0);
  EXPECT_EQ(smt::BackendKindFromEnv(), BackendKind::kPortfolio);
  // Typos fall back to dfs (with a one-shot stderr warning) instead of being absorbed.
  for (const char* bad : {"Portfolio", "z3", "dfs,cdcl", "auto"}) {
    ASSERT_EQ(setenv("NOCTUA_SOLVER", bad, 1), 0);
    EXPECT_EQ(smt::BackendKindFromEnv(), BackendKind::kDfs) << '"' << bad << '"';
  }
  ASSERT_EQ(unsetenv("NOCTUA_SOLVER"), 0);
}

TEST(BackendFactoryTest, PinnedKindOverridesOptionsAndEnv) {
  smt::SolverOptions options;
  options.backend = BackendKind::kCdcl;
  EXPECT_STREQ(smt::MakeBackend(options)->name(), "cdcl");
  EXPECT_STREQ(smt::MakeBackend(BackendKind::kPortfolio, options)->name(), "portfolio");

  ASSERT_EQ(setenv("NOCTUA_SOLVER", "cdcl", 1), 0);
  smt::SolverOptions from_env;  // backend = kAuto
  EXPECT_STREQ(smt::MakeBackend(from_env)->name(), "cdcl");
  ASSERT_EQ(unsetenv("NOCTUA_SOLVER"), 0);
  EXPECT_STREQ(smt::MakeBackend(from_env)->name(), "dfs");
}

TEST(BackendFactoryTest, CapabilitiesMatchTheContract) {
  smt::SolverOptions options;
  EXPECT_TRUE(smt::MakeBackend(BackendKind::kDfs, options)->caps().cancellable);
  EXPECT_TRUE(smt::MakeBackend(BackendKind::kCdcl, options)->caps().cancellable);
  // The race is synchronous: external cancellation is honored only between races.
  EXPECT_FALSE(smt::MakeBackend(BackendKind::kPortfolio, options)->caps().cancellable);
  for (BackendKind k : {BackendKind::kDfs, BackendKind::kCdcl, BackendKind::kPortfolio}) {
    EXPECT_TRUE(smt::MakeBackend(k, options)->caps().deterministic_budget);
    EXPECT_TRUE(smt::MakeBackend(k, options)->caps().produces_model);
    // All three retain grounding work across Checks (the portfolio through its
    // persistent contestants), which is what the verifier's pair sessions key on.
    EXPECT_TRUE(smt::MakeBackend(k, options)->caps().incremental);
  }
}

// ------------------------------------------------------------- optimization toggles

TEST(ToggleTest, ParseAcceptsExactlyOnAndOff) {
  smt::Toggle t = smt::Toggle::kAuto;
  EXPECT_TRUE(smt::ParseToggle("on", &t));
  EXPECT_EQ(t, smt::Toggle::kOn);
  EXPECT_TRUE(smt::ParseToggle("off", &t));
  EXPECT_EQ(t, smt::Toggle::kOff);
  for (const char* bad : {"auto", "1", "0", "true", "ON", "Off", " on", "on ", ""}) {
    smt::Toggle untouched = smt::Toggle::kOn;
    EXPECT_FALSE(smt::ParseToggle(bad, &untouched)) << '"' << bad << '"';
    EXPECT_EQ(untouched, smt::Toggle::kOn) << '"' << bad << '"';
  }
}

TEST(ToggleTest, EnvKnobsAreStrictAndDefaultOn) {
  smt::SolverOptions options;  // both toggles kAuto: defer to the environment
  ASSERT_EQ(unsetenv("NOCTUA_SYMMETRY"), 0);
  ASSERT_EQ(unsetenv("NOCTUA_INCREMENTAL"), 0);
  EXPECT_TRUE(smt::SymmetryEnabled(options));
  EXPECT_TRUE(smt::IncrementalEnabled(options));

  ASSERT_EQ(setenv("NOCTUA_SYMMETRY", "off", 1), 0);
  ASSERT_EQ(setenv("NOCTUA_INCREMENTAL", "off", 1), 0);
  EXPECT_FALSE(smt::SymmetryEnabled(options));
  EXPECT_FALSE(smt::IncrementalEnabled(options));

  // Typos warn (once, on stderr) and fall back to on instead of being absorbed.
  for (const char* bad : {"0", "disabled", "On", "yes"}) {
    ASSERT_EQ(setenv("NOCTUA_SYMMETRY", bad, 1), 0);
    ASSERT_EQ(setenv("NOCTUA_INCREMENTAL", bad, 1), 0);
    EXPECT_TRUE(smt::SymmetryEnabled(options)) << '"' << bad << '"';
    EXPECT_TRUE(smt::IncrementalEnabled(options)) << '"' << bad << '"';
  }

  // A pinned option wins over any environment value.
  options.symmetry = smt::Toggle::kOff;
  options.incremental = smt::Toggle::kOff;
  ASSERT_EQ(setenv("NOCTUA_SYMMETRY", "on", 1), 0);
  ASSERT_EQ(setenv("NOCTUA_INCREMENTAL", "on", 1), 0);
  EXPECT_FALSE(smt::SymmetryEnabled(options));
  EXPECT_FALSE(smt::IncrementalEnabled(options));

  ASSERT_EQ(unsetenv("NOCTUA_SYMMETRY"), 0);
  ASSERT_EQ(unsetenv("NOCTUA_INCREMENTAL"), 0);
}

// ------------------------------------------------------------------- portfolio race

// Pin the threaded race on, even on single-core machines where the backend would
// normally fall back to the sequential cascade — these tests are about the race.
class PortfolioTest : public ::testing::Test {
 protected:
  void SetUp() override { smt::PortfolioBackend::SetRaceModeForTesting(1); }
  void TearDown() override { smt::PortfolioBackend::SetRaceModeForTesting(-1); }
};

TEST_F(PortfolioTest, DecidesAndCountsWins) {
  smt::PortfolioCounts before = smt::GetPortfolioCounts();

  TermFactory f;
  Term x = f.Const("x", smt::IntSort());
  smt::SolverOptions options;
  auto backend = smt::MakeBackend(BackendKind::kPortfolio, options);
  backend->Assert(f.Eq(x, f.IntLit(1)));
  backend->Assert(f.Eq(x, f.IntLit(2)));
  EXPECT_EQ(backend->Check(f), SolveResult::kUnsat);
  // A decisive race records exactly one winner.
  int w = backend->stats().portfolio_winner;
  EXPECT_TRUE(w == 0 || w == 1) << w;

  smt::PortfolioCounts after = smt::GetPortfolioCounts();
  EXPECT_EQ(after.races, before.races + 1);
  EXPECT_EQ(after.wins_dfs + after.wins_cdcl, before.wins_dfs + before.wins_cdcl + 1);
}

TEST_F(PortfolioTest, SatRaceProducesAWitnessModel) {
  TermFactory f;
  Term x = f.Const("x", smt::IntSort());
  auto backend = smt::MakeBackend(BackendKind::kPortfolio, smt::SolverOptions{});
  backend->Assert(f.Eq(x, f.IntLit(1)));
  ASSERT_EQ(backend->Check(f), SolveResult::kSat);
  EXPECT_FALSE(backend->model().ToString().empty());
}

TEST_F(PortfolioTest, ExternalCancellationShortCircuitsTheRace) {
  TermFactory f;
  Term x = f.Const("x", smt::IntSort());
  std::atomic<bool> cancel{true};
  auto backend = smt::MakeBackend(BackendKind::kPortfolio, smt::SolverOptions{});
  backend->set_cancel(&cancel);
  backend->Assert(f.Eq(x, f.IntLit(1)));
  EXPECT_EQ(backend->Check(f), SolveResult::kUnknown);
  // Clearing the flag lets the same backend race normally.
  cancel.store(false);
  EXPECT_EQ(backend->Check(f), SolveResult::kSat);
}

// The single-core fallback: same verdicts and the same tally bookkeeping as the race,
// with dfs deciding first and cdcl only consulted when dfs abandons.
TEST(PortfolioCascadeTest, SequentialFallbackDecidesAndTallies) {
  smt::PortfolioBackend::SetRaceModeForTesting(0);
  smt::PortfolioCounts before = smt::GetPortfolioCounts();

  TermFactory f;
  Term x = f.Const("x", smt::IntSort());
  auto backend = smt::MakeBackend(BackendKind::kPortfolio, smt::SolverOptions{});
  backend->Assert(f.Eq(x, f.IntLit(1)));
  backend->Assert(f.Eq(x, f.IntLit(2)));
  EXPECT_EQ(backend->Check(f), SolveResult::kUnsat);
  // dfs refutes this outright, so the cascade never reaches cdcl.
  EXPECT_EQ(backend->stats().portfolio_winner, 0);

  auto sat = smt::MakeBackend(BackendKind::kPortfolio, smt::SolverOptions{});
  sat->Assert(f.Eq(x, f.IntLit(7)));
  ASSERT_EQ(sat->Check(f), SolveResult::kSat);
  EXPECT_FALSE(sat->model().ToString().empty());

  smt::PortfolioCounts after = smt::GetPortfolioCounts();
  EXPECT_EQ(after.races, before.races + 2);
  EXPECT_EQ(after.wins_dfs, before.wins_dfs + 2);
  EXPECT_EQ(after.wins_cdcl, before.wins_cdcl);
  smt::PortfolioBackend::SetRaceModeForTesting(-1);
}

// ---------------------------------------------------- cross-backend restriction sets

std::vector<std::string> VerdictLines(const verifier::RestrictionReport& report) {
  std::vector<std::string> out;
  out.reserve(report.pairs.size());
  for (const auto& v : report.pairs) {
    out.push_back(v.p + "|" + v.q + "|" + verifier::CheckOutcomeName(v.commutativity) +
                  "|" + verifier::CheckOutcomeName(v.semantic));
  }
  return out;
}

// The acceptance bar for the whole redesign: on every evaluated app, the dfs, cdcl, and
// portfolio backends must produce byte-identical restriction sets. Budgets are pinned to
// deterministic (node-only) mode so the comparison is exact on any machine.
class BackendIdentityTest : public ::testing::TestWithParam<apps::AppEntry> {};

TEST_P(BackendIdentityTest, RestrictionSetsAreByteIdenticalAcrossBackends) {
  app::App a = GetParam().make();
  PipelineOptions analysis_only;
  analysis_only.verify = false;
  analyzer::AnalysisResult analysis = Pipeline::Run(a, analysis_only).analysis;

  auto run = [&](BackendKind kind) {
    PipelineOptions options;
    options.parallel.threads = 2;
    options.checker.solver.backend = kind;
    options.checker.solver.budget.deterministic = true;
    return Pipeline::Verify(a, analysis, options);
  };

  verifier::RestrictionReport dfs = run(BackendKind::kDfs);
  ASSERT_FALSE(dfs.pairs.empty());
  EXPECT_EQ(dfs.stats.solver_backend, "dfs");
  std::vector<std::string> expected = VerdictLines(dfs);

  verifier::RestrictionReport cdcl = run(BackendKind::kCdcl);
  EXPECT_EQ(cdcl.stats.solver_backend, "cdcl");
  EXPECT_EQ(VerdictLines(cdcl), expected);
  EXPECT_EQ(cdcl.RestrictedPairNames(), dfs.RestrictedPairNames());

  verifier::RestrictionReport portfolio = run(BackendKind::kPortfolio);
  EXPECT_EQ(portfolio.stats.solver_backend, "portfolio");
  EXPECT_EQ(VerdictLines(portfolio), expected);
  EXPECT_EQ(portfolio.RestrictedPairNames(), dfs.RestrictedPairNames());
  // Every solver query of the portfolio run was a race, and the report's tallies are
  // deltas for this run alone.
  if (portfolio.stats.solver_checks > 0) {
    EXPECT_GT(portfolio.stats.portfolio_races, 0u);
    EXPECT_EQ(portfolio.stats.portfolio_wins_dfs + portfolio.stats.portfolio_wins_cdcl +
                  portfolio.stats.portfolio_undecided,
              portfolio.stats.portfolio_races);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, BackendIdentityTest, ::testing::ValuesIn(apps::EvaluatedApps()),
    [](const ::testing::TestParamInfo<apps::AppEntry>& info) { return info.param.name; });

// The acceptance bar for the hot-path optimizations: on every evaluated app, turning
// incremental solving and symmetry reduction off must not move a single verdict. The
// off-mode reference runs on dfs and is compared against pinned-on runs of dfs and
// cdcl; the portfolio needs no row of its own — it is composed of the other two, and
// BackendIdentityTest already pins its restriction set to theirs with the toggles at
// their defaults.
class OptimizationIdentityTest : public ::testing::TestWithParam<apps::AppEntry> {};

TEST_P(OptimizationIdentityTest, TogglesDoNotChangeTheRestrictionSet) {
  app::App a = GetParam().make();
  PipelineOptions analysis_only;
  analysis_only.verify = false;
  analyzer::AnalysisResult analysis = Pipeline::Run(a, analysis_only).analysis;

  auto run = [&](BackendKind kind, smt::Toggle mode) {
    PipelineOptions options;
    options.parallel.threads = 2;
    options.checker.solver.backend = kind;
    options.checker.solver.budget.deterministic = true;
    options.checker.solver.symmetry = mode;
    options.checker.solver.incremental = mode;
    return Pipeline::Verify(a, analysis, options);
  };

  verifier::RestrictionReport off = run(BackendKind::kDfs, smt::Toggle::kOff);
  ASSERT_FALSE(off.pairs.empty());
  // The toggles are really off: nothing was reused or pruned.
  EXPECT_EQ(off.stats.incremental_reuse_hits, 0u);
  EXPECT_EQ(off.stats.symmetry_pruned, 0u);
  std::vector<std::string> expected = VerdictLines(off);

  for (BackendKind kind : {BackendKind::kDfs, BackendKind::kCdcl}) {
    verifier::RestrictionReport on = run(kind, smt::Toggle::kOn);
    EXPECT_EQ(VerdictLines(on), expected) << smt::BackendKindName(kind);
    EXPECT_EQ(on.RestrictedPairNames(), off.RestrictedPairNames())
        << smt::BackendKindName(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, OptimizationIdentityTest, ::testing::ValuesIn(apps::EvaluatedApps()),
    [](const ::testing::TestParamInfo<apps::AppEntry>& info) { return info.param.name; });

}  // namespace
}  // namespace noctua
