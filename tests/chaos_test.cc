// Chaos convergence harness: runs a grid of fault plans × seeds for every evaluated app
// and asserts the two paper-level safety properties after quiescence — all replicas
// converge to identical state, and no two restriction-set-conflicting operations were
// ever concurrently active — while both consistency modes stay live under every
// non-total-partition plan. Also pins the perfect-network contract: a zero-fault
// FaultPlan reproduces the fault-free simulator's counters exactly, and a faulty run is
// bit-deterministic given its seed.
#include <gtest/gtest.h>

#include "src/analyzer/analyzer.h"
#include "src/apps/apps.h"
#include "src/repl/simulator.h"
#include "src/verifier/report.h"

namespace noctua::repl {
namespace {

struct PlanCase {
  const char* name;
  FaultPlan plan;
};

// Three qualitatively different ways the network and machines can misbehave. All are
// non-total partitions: every message class has a nonzero chance of getting through, so
// liveness (completed_requests > 0) must survive each of them.
std::vector<PlanCase> ChaosPlans() {
  std::vector<PlanCase> plans;
  plans.push_back({"lossy", FaultPlan::Lossy(/*drop=*/0.08, /*duplicate=*/0.05)});
  plans.push_back({"jittery", FaultPlan::Jittery(/*jitter_ms=*/2.0, /*reorder=*/0.25,
                                                 /*spike=*/0.05, /*spike_mean_ms=*/10.0)});
  FaultPlan crashy = FaultPlan::CrashRestart(/*site=*/2, /*at_ms=*/80, /*restart_ms=*/160,
                                             /*drop=*/0.02);
  crashy.coordinator_outages.push_back({200, 240});
  plans.push_back({"crashy", crashy});
  return plans;
}

// Conflict table for one evaluated app. The four fast apps use the verifier's computed
// restriction set (the paper's §6.5 configuration); Zhihu and OwnPhotos take minutes of
// SMT time, so the chaos grid coordinates them with the syntactic conservative
// over-approximation instead — safe by construction, and the fault layer under test is
// identical either way.
ConflictTable ConflictsFor(const app::App& a, const std::string& name,
                           const analyzer::AnalysisResult& res) {
  auto eff = res.EffectfulPaths();
  if (name == "Zhihu" || name == "OwnPhotos") {
    return ConservativeConflicts(a.schema(), eff);
  }
  // Pass the full path list as order observers: a read-only endpoint that renders a
  // model in insertion order makes that order part of state equality, and under a
  // faulty network unrestricted concurrent inserts really do land in different orders
  // at different sites (Todo exercises exactly this).
  verifier::RestrictionReport report = verifier::AnalyzeRestrictions(
      verifier::Checker(a.schema()), eff, {}, res.paths);
  ConflictTable table;
  for (const auto& v : report.pairs) {
    if (v.Restricted()) {
      table.AddPair(v.p.substr(0, v.p.find('#')), v.q.substr(0, v.q.find('#')));
    }
  }
  return table;
}

class ChaosGridTest : public ::testing::TestWithParam<int> {};

TEST_P(ChaosGridTest, EveryPlanAndSeedConvergesWithoutViolations) {
  auto entries = apps::EvaluatedApps();
  const auto& entry = entries[GetParam()];
  app::App a = entry.make();
  analyzer::AnalysisResult res = analyzer::AnalyzeApp(a);
  ConflictTable conflicts = ConflictsFor(a, entry.name, res);

  for (const PlanCase& pc : ChaosPlans()) {
    for (uint64_t seed : {11u, 22u, 33u}) {
      SimOptions options;
      options.duration_ms = 250;
      options.write_ratio = 0.5;
      options.seed = seed;
      options.faults = pc.plan;
      Simulator sim(a.schema(), res.paths, conflicts, options);
      SimResult result = sim.Run();
      SCOPED_TRACE(::testing::Message()
                   << entry.name << " plan=" << pc.name << " seed=" << seed);
      // Run() returning at all means the event queue drained: quiescence was reached.
      EXPECT_TRUE(result.converged) << "replicas diverged under faults";
      EXPECT_EQ(result.conflict_violations, 0u)
          << "conflicting operations were concurrently active";
      EXPECT_GT(result.completed_requests, 0u) << "system lost liveness";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, ChaosGridTest, ::testing::Range(0, 6));

TEST(ChaosTest, StrongConsistencyStaysLiveUnderEveryPlan) {
  app::App a = apps::MakeSmallBankApp();
  analyzer::AnalysisResult res = analyzer::AnalyzeApp(a);
  for (const PlanCase& pc : ChaosPlans()) {
    SimOptions options;
    options.duration_ms = 250;
    options.write_ratio = 0.5;
    options.strong_consistency = true;
    options.faults = pc.plan;
    ConflictTable total;
    total.SetTotal(true);
    Simulator sim(a.schema(), res.paths, total, options);
    SimResult result = sim.Run();
    SCOPED_TRACE(pc.name);
    EXPECT_GT(result.completed_requests, 0u);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.conflict_violations, 0u);
  }
}

TEST(ChaosTest, CrashedReplicaRecoversViaCatchUp) {
  app::App a = apps::MakeSmallBankApp();
  analyzer::AnalysisResult res = analyzer::AnalyzeApp(a);
  ConflictTable conflicts = ConflictsFor(a, "SmallBank", res);
  SimOptions options;
  options.duration_ms = 300;
  options.write_ratio = 0.5;
  options.faults = FaultPlan::CrashRestart(/*site=*/1, /*at_ms=*/60, /*restart_ms=*/150);
  Simulator sim(a.schema(), res.paths, conflicts, options);
  SimResult result = sim.Run();
  EXPECT_EQ(result.replica_crashes, 1u);
  EXPECT_EQ(result.replica_recoveries, 1u);
  EXPECT_GT(result.effects_replayed, 0u) << "catch-up never replayed missed effects";
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.conflict_violations, 0u);
}

TEST(ChaosTest, LossyLinksExerciseRetriesAndDedup) {
  app::App a = apps::MakeSmallBankApp();
  analyzer::AnalysisResult res = analyzer::AnalyzeApp(a);
  ConflictTable conflicts = ConflictsFor(a, "SmallBank", res);
  SimOptions options;
  options.duration_ms = 250;
  options.faults = FaultPlan::Lossy(0.1, 0.1);
  Simulator sim(a.schema(), res.paths, conflicts, options);
  SimResult result = sim.Run();
  EXPECT_GT(result.messages_dropped, 0u);
  EXPECT_GT(result.messages_duplicated, 0u);
  EXPECT_GT(result.retransmissions, 0u);
  EXPECT_GT(result.duplicates_ignored, 0u) << "idempotent dedup never engaged";
  EXPECT_TRUE(result.converged);
}

// All integer counters of a SimResult, for exact equality checks.
std::vector<uint64_t> Counters(const SimResult& r) {
  return {r.completed_requests, r.committed_writes,   r.aborted_requests,
          r.timed_out_requests, r.crash_lost_requests, r.messages_sent,
          r.messages_dropped,   r.messages_duplicated, r.retransmissions,
          r.duplicates_ignored, r.effect_gaps_buffered, r.effects_replayed,
          r.ack_giveups,        r.replica_crashes,     r.replica_recoveries,
          r.conflict_violations};
}

TEST(ChaosTest, ZeroFaultPlanReproducesTheFaultFreeSimulatorExactly) {
  app::App a = apps::MakeSmallBankApp();
  analyzer::AnalysisResult res = analyzer::AnalyzeApp(a);
  ConflictTable conflicts = ConflictsFor(a, "SmallBank", res);
  SimOptions options;
  options.duration_ms = 300;

  Simulator plain(a.schema(), res.paths, conflicts, options);
  SimResult base = plain.Run();

  options.faults = FaultPlan::None();
  Simulator zero(a.schema(), res.paths, conflicts, options);
  SimResult with_plan = zero.Run();

  EXPECT_EQ(Counters(base), Counters(with_plan));
  EXPECT_DOUBLE_EQ(base.avg_latency_ms, with_plan.avg_latency_ms);
  EXPECT_DOUBLE_EQ(base.p99_latency_ms, with_plan.p99_latency_ms);
  EXPECT_EQ(base.converged, with_plan.converged);
  // The perfect network sends no simulated messages at all: the fault machinery is
  // provably disengaged, so Figures 10/11 are untouched by this layer.
  EXPECT_EQ(base.messages_sent, 0u);
}

TEST(ChaosTest, FaultyRunsAreDeterministicGivenSeed) {
  // Protects the seeded event ordering the chaos harness depends on: two runs with
  // identical SimOptions — including an active FaultPlan — must agree bit-for-bit.
  app::App a = apps::MakeCoursewareApp();
  analyzer::AnalysisResult res = analyzer::AnalyzeApp(a);
  ConflictTable conflicts = ConflictsFor(a, "Courseware", res);
  SimOptions options;
  options.duration_ms = 200;
  options.seed = 77;
  options.faults = FaultPlan::Lossy(0.1, 0.05);
  options.faults.crashes.push_back({1, 50, 120});

  Simulator s1(a.schema(), res.paths, conflicts, options);
  Simulator s2(a.schema(), res.paths, conflicts, options);
  SimResult r1 = s1.Run();
  SimResult r2 = s2.Run();
  EXPECT_EQ(Counters(r1), Counters(r2));
  EXPECT_DOUBLE_EQ(r1.avg_latency_ms, r2.avg_latency_ms);
  EXPECT_DOUBLE_EQ(r1.p99_latency_ms, r2.p99_latency_ms);
  EXPECT_EQ(r1.converged, r2.converged);
}

TEST(ChaosTest, ConservativeTableCoversTheVerifiedRestrictionSet) {
  // The syntactic over-approximation used for the slow apps must restrict at least
  // everything the verifier restricts (endpoint-lifted), or coordinating with it would
  // be unsound.
  app::App a = apps::MakeSmallBankApp();
  analyzer::AnalysisResult res = analyzer::AnalyzeApp(a);
  auto eff = res.EffectfulPaths();
  ConflictTable conservative = ConservativeConflicts(a.schema(), eff);
  verifier::RestrictionReport report =
      verifier::AnalyzeRestrictions(verifier::Checker(a.schema()), eff);
  for (const auto& v : report.pairs) {
    if (v.Restricted()) {
      std::string p = v.p.substr(0, v.p.find('#'));
      std::string q = v.q.substr(0, v.q.find('#'));
      EXPECT_TRUE(conservative.Conflicts(p, q)) << "(" << p << ", " << q << ")";
    }
  }
}

}  // namespace
}  // namespace noctua::repl
