// Property-based tests on cross-component invariants:
//   * solver models satisfy the formula under the independent three-valued evaluator
//     (the two implementations share no evaluation code);
//   * grounding preserves truth under the evaluator;
//   * the linear-arithmetic normal form respects integer semantics;
//   * ORM databases keep their structural invariants under random operation streams;
//   * the simulator converges for every evaluated app under its computed restriction set.
#include <gtest/gtest.h>

#include <memory>

#include "src/analyzer/analyzer.h"
#include "src/apps/apps.h"
#include "src/repl/simulator.h"
#include "src/smt/backend.h"
#include "src/smt/eval.h"
#include "src/smt/ground.h"
#include "src/smt/solver.h"
#include "src/support/rng.h"
#include "src/verifier/report.h"

namespace noctua {
namespace {

using smt::Scope;
using smt::Sort;
using smt::Term;
using smt::TermFactory;

// Generates a random ground-able boolean term over a small vocabulary of constants.
class RandomTerms {
 public:
  RandomTerms(TermFactory* f, Rng* rng) : f_(f), rng_(rng) {
    ints_ = {f_->Const("i0", smt::IntSort()), f_->Const("i1", smt::IntSort()),
             f_->Const("i2", smt::IntSort())};
    refs_ = {f_->Const("r0", smt::RefSort(0)), f_->Const("r1", smt::RefSort(0))};
    set_ = f_->Const("s", smt::SetSort(smt::RefSort(0)));
    array_ = f_->Const("arr", smt::ArraySort(smt::RefSort(0), smt::IntSort()));
  }

  Term Int(int depth) {
    switch (rng_->NextBelow(depth > 0 ? 5 : 2)) {
      case 0:
        return f_->IntLit(rng_->NextInRange(-2, 3));
      case 1:
        return ints_[rng_->NextBelow(ints_.size())];
      case 2:
        return f_->Add(Int(depth - 1), Int(depth - 1));
      case 3:
        return f_->Sub(Int(depth - 1), Int(depth - 1));
      default:
        return f_->Select(array_, Ref());
    }
  }

  Term Ref() { return refs_[rng_->NextBelow(refs_.size())]; }

  Term Bool(int depth) {
    switch (rng_->NextBelow(depth > 0 ? 7 : 3)) {
      case 0:
        return f_->Le(Int(depth - 1), Int(depth - 1));
      case 1:
        return f_->Eq(Ref(), Ref());
      case 2:
        return f_->Member(Ref(), set_);
      case 3:
        return f_->And(Bool(depth - 1), Bool(depth - 1));
      case 4:
        return f_->Or(Bool(depth - 1), Bool(depth - 1));
      case 5:
        return f_->Not(Bool(depth - 1));
      default: {
        Term v = f_->NewBoundVar(smt::RefSort(0));
        // forall x. member(x, s) -> arr[x] <= <int expr>
        return f_->Forall(v, f_->Implies(f_->Member(v, set_),
                                         f_->Le(f_->Select(array_, v), Int(depth - 1))));
      }
    }
  }

 private:
  TermFactory* f_;
  Rng* rng_;
  std::vector<Term> ints_;
  std::vector<Term> refs_;
  Term set_;
  Term array_;
};

// Evaluates a term under an assignment parsed from the solver's model, using the
// independent Evaluator (atoms the model omits stay unknown).
smt::Value EvalUnderModel(const Scope& scope, Term t, const smt::SmtModel& model) {
  smt::AtomTable atoms(scope, {t});
  std::vector<smt::Value> assignment(atoms.size());
  for (size_t i = 0; i < atoms.size(); ++i) {
    const smt::Atom& a = atoms.atoms()[i];
    auto it = model.values.find(a.Name());
    if (it == model.values.end()) {
      continue;
    }
    const std::string& v = it->second;
    if (a.sort->is_bool()) {
      assignment[i] = smt::Value::Bool(v == "true");
    } else if (a.sort->is_int()) {
      assignment[i] = smt::Value::Int(std::stoll(v));
    } else if (a.sort->is_ref()) {
      assignment[i] = smt::Value::Ref(std::stoll(v.substr(1)));  // "#k"
    } else if (a.sort->is_string()) {
      assignment[i] = smt::Value::Str(v.substr(1, v.size() - 2));  // quoted
    }
  }
  smt::Evaluator eval(scope, atoms, assignment);
  return eval.Eval(t);
}

class SolverPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverPropertyTest, SatModelsSatisfyFormulaUnderIndependentEvaluator) {
  Rng rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    TermFactory f;
    RandomTerms gen(&f, &rng);
    Term formula = gen.Bool(3);
    smt::SolverOptions options;
    options.budget.timeout_seconds = 5.0;

    // Every random formula doubles as a cross-backend agreement check: the model finder
    // and the CDCL backend decide the same finite question, so their verdicts must match
    // and each backend's model must satisfy the formula under the independent Evaluator.
    constexpr smt::BackendKind kKinds[] = {smt::BackendKind::kDfs, smt::BackendKind::kCdcl};
    smt::SolveResult verdicts[2];
    for (int b = 0; b < 2; ++b) {
      std::unique_ptr<smt::SolverBackend> backend = smt::MakeBackend(kKinds[b], options);
      backend->Assert(formula);
      smt::SolveResult r = backend->Check(f);
      ASSERT_NE(r, smt::SolveResult::kUnknown);
      verdicts[b] = r;
      if (r == smt::SolveResult::kSat) {
        smt::Value v = EvalUnderModel(options.scope, formula, backend->model());
        // The model may omit don't-care atoms; a known value must be true.
        if (v.is_known()) {
          EXPECT_TRUE(v.bool_v()) << backend->name() << ": " << formula->ToString()
                                  << "\nmodel:\n"
                                  << backend->model().ToString();
        }
      } else {
        // UNSAT: the negation must be satisfiable (no formula is both ways).
        std::unique_ptr<smt::SolverBackend> neg = smt::MakeBackend(kKinds[b], options);
        neg->Assert(f.Not(formula));
        EXPECT_EQ(neg->Check(f), smt::SolveResult::kSat)
            << backend->name() << ": " << formula->ToString();
      }
    }
    ASSERT_EQ(verdicts[0], verdicts[1]) << "dfs and cdcl disagree on " << formula->ToString();
  }
}

TEST_P(SolverPropertyTest, GroundingPreservesEvaluation) {
  Rng rng(GetParam() * 31 + 7);
  Scope scope(2);
  for (int round = 0; round < 40; ++round) {
    TermFactory f;
    RandomTerms gen(&f, &rng);
    Term formula = gen.Bool(3);
    smt::Grounder grounder(&f, scope);
    Term grounded = grounder.Ground(formula);
    // Build a full random assignment and evaluate both forms.
    smt::AtomTable atoms(scope, {formula, grounded});
    std::vector<smt::Value> assignment(atoms.size());
    for (size_t i = 0; i < atoms.size(); ++i) {
      const smt::Atom& a = atoms.atoms()[i];
      if (a.sort->is_bool()) {
        assignment[i] = smt::Value::Bool(rng.NextBool());
      } else if (a.sort->is_int()) {
        assignment[i] = smt::Value::Int(rng.NextInRange(-3, 3));
      } else if (a.sort->is_ref()) {
        assignment[i] = smt::Value::Ref(rng.NextBelow(2));
      } else {
        assignment[i] = smt::Value::Str("s" + std::to_string(rng.NextBelow(2)));
      }
    }
    smt::Evaluator e1(scope, atoms, assignment);
    smt::Value v1 = e1.Eval(formula);
    smt::Evaluator e2(scope, atoms, assignment);
    smt::Value v2 = e2.Eval(grounded);
    ASSERT_TRUE(v1.is_known());
    ASSERT_TRUE(v2.is_known());
    EXPECT_EQ(v1.bool_v(), v2.bool_v()) << formula->ToString();
  }
}

TEST_P(SolverPropertyTest, LinearNormalFormIsSemanticallyCorrect) {
  Rng rng(GetParam() * 17 + 3);
  Scope scope(2);
  for (int round = 0; round < 60; ++round) {
    TermFactory f;
    RandomTerms gen(&f, &rng);
    Term a = gen.Int(3);
    Term b = gen.Int(3);
    // a + b - b == a must hold semantically (and usually collapses syntactically).
    Term lhs = f.Sub(f.Add(a, b), b);
    smt::AtomTable atoms(scope, {lhs, a});
    std::vector<smt::Value> assignment(atoms.size());
    for (size_t i = 0; i < atoms.size(); ++i) {
      const smt::Atom& at = atoms.atoms()[i];
      assignment[i] = at.sort->is_int() ? smt::Value::Int(rng.NextInRange(-5, 5))
                                        : smt::Value::Ref(rng.NextBelow(2));
    }
    smt::Evaluator e1(scope, atoms, assignment);
    smt::Value v1 = e1.Eval(lhs);
    smt::Evaluator e2(scope, atoms, assignment);
    smt::Value v2 = e2.Eval(a);
    ASSERT_TRUE(v1.is_known() && v2.is_known());
    EXPECT_EQ(v1.int_v(), v2.int_v());
  }
}

// Lex-leader symmetry reduction prunes only non-canonical witnesses, never verdicts:
// every random formula must be decided identically with the reduction pinned on and
// off, on both concrete backends. Scope 3 so the reduction actually engages (a scope-2
// group has a single non-trivial transposition and truncates almost nothing).
TEST_P(SolverPropertyTest, SymmetryReductionPreservesVerdicts) {
  Rng rng(GetParam() * 101 + 13);
  for (int round = 0; round < 25; ++round) {
    TermFactory f;
    RandomTerms gen(&f, &rng);
    Term formula = gen.Bool(3);
    for (smt::BackendKind kind : {smt::BackendKind::kDfs, smt::BackendKind::kCdcl}) {
      smt::SolveResult verdicts[2];
      for (int on = 0; on < 2; ++on) {
        smt::SolverOptions options;
        options.scope = Scope(3);
        options.budget.timeout_seconds = 5.0;
        options.symmetry = on ? smt::Toggle::kOn : smt::Toggle::kOff;
        std::unique_ptr<smt::SolverBackend> backend = smt::MakeBackend(kind, options);
        backend->Assert(formula);
        verdicts[on] = backend->Check(f);
        ASSERT_NE(verdicts[on], smt::SolveResult::kUnknown);
      }
      EXPECT_EQ(verdicts[0], verdicts[1])
          << smt::BackendKindName(kind) << " verdict moved under symmetry reduction: "
          << formula->ToString();
    }
  }
}

// Renames scope elements a <-> b of model 0 throughout `t` — the test-side twin of the
// clean-model automorphism argument the symmetry breaker relies on.
Term TransposeRefs(TermFactory& f, Term t, int a, int b) {
  if (t->kind() == smt::TermKind::kRefLit) {
    if (t->sort()->is_ref() && t->sort()->model_id() == 0) {
      int64_t i = t->int_payload();
      int64_t ni = i == a ? b : (i == b ? a : i);
      if (ni != i) {
        return f.RefLit(t->sort(), static_cast<int>(ni));
      }
    }
    return t;
  }
  if (t->children().empty()) {
    return t;
  }
  std::vector<Term> kids;
  kids.reserve(t->children().size());
  bool changed = false;
  for (Term c : t->children()) {
    Term n = TransposeRefs(f, c, a, b);
    changed = changed || n != c;
    kids.push_back(n);
  }
  return changed ? smt::RebuildTerm(f, t, std::move(kids)) : t;
}

// Verdicts are invariant under renaming the scope's interchangeable instances: a random
// formula decorated with explicit instance literals (which make the model "dirty" — the
// breaker must stand down rather than prune against the pinned elements) and its image
// under every transposition of the scope must be decided identically with the default
// toggles on. If the lex-leader scheme ever pruned a dirty model or an entailed image,
// some transposition would flip sat to unsat here.
TEST_P(SolverPropertyTest, VerdictsInvariantUnderInstancePermutation) {
  Rng rng(GetParam() * 57 + 29);
  Sort rs = smt::RefSort(0);
  for (int round = 0; round < 15; ++round) {
    TermFactory f;
    RandomTerms gen(&f, &rng);
    // Same interned vocabulary as RandomTerms (hash-consing returns the same constants).
    Term set = f.Const("s", smt::SetSort(rs));
    Term arr = f.Const("arr", smt::ArraySort(rs, smt::IntSort()));
    Term lit = f.RefLit(rs, static_cast<int>(rng.NextBelow(3)));
    Term decor = rng.NextBool()
                     ? f.Member(lit, set)
                     : f.Le(f.Select(arr, lit), f.IntLit(rng.NextInRange(-2, 2)));
    Term base = gen.Bool(3);
    Term formula = rng.NextBool() ? f.And(base, decor) : f.Or(base, decor);
    for (smt::BackendKind kind : {smt::BackendKind::kDfs, smt::BackendKind::kCdcl}) {
      smt::SolverOptions options;
      options.scope = Scope(3);
      options.budget.timeout_seconds = 5.0;
      std::unique_ptr<smt::SolverBackend> backend = smt::MakeBackend(kind, options);
      backend->Assert(formula);
      smt::SolveResult expected = backend->Check(f);
      ASSERT_NE(expected, smt::SolveResult::kUnknown);
      for (auto [a, b] : {std::pair<int, int>{0, 1}, {1, 2}, {0, 2}}) {
        Term image = TransposeRefs(f, formula, a, b);
        std::unique_ptr<smt::SolverBackend> pb = smt::MakeBackend(kind, options);
        pb->Assert(image);
        EXPECT_EQ(pb->Check(f), expected)
            << smt::BackendKindName(kind) << " transposition (" << a << " " << b
            << ") moved the verdict: " << formula->ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverPropertyTest, ::testing::Values(1, 2, 3, 4, 5));

// --- ORM invariants under random operation streams -------------------------------------------

TEST(OrmPropertyTest, InvariantsHoldUnderRandomOps) {
  soir::Schema s;
  s.AddModel("A");
  s.AddField("A", soir::FieldDef{.name = "v", .type = soir::FieldType::kInt});
  s.AddModel("B");
  int rel = s.AddRelation("a", "B", "A", soir::RelationKind::kManyToOne,
                          soir::OnDelete::kSetNull);
  orm::Database db(&s);
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    switch (rng.NextBelow(5)) {
      case 0:
        db.Upsert(0, rng.NextBelow(8), {orm::Value::Int(rng.NextInRange(0, 9))});
        break;
      case 1:
        db.Upsert(1, rng.NextBelow(8), {});
        break;
      case 2:
        db.Erase(rng.NextBelow(2) ? 1 : 0, rng.NextBelow(8));
        break;
      case 3:
        db.Link(rel, rng.NextBelow(8), rng.NextBelow(8));
        break;
      default:
        db.ClearLinks(rel, rng.NextBelow(8), true);
        break;
    }
    // Invariant 1: a FK holds at most one target.
    for (int64_t from = 0; from < 8; ++from) {
      EXPECT_LE(db.Associated(rel, from, true).size(), 1u);
    }
    // Invariant 2: AllPks is consistent with RowCount and strictly ordered.
    for (int m = 0; m < 2; ++m) {
      std::vector<int64_t> pks = db.AllPks(m);
      EXPECT_EQ(pks.size(), db.RowCount(m));
      for (size_t k = 1; k < pks.size(); ++k) {
        EXPECT_LT(db.OrderOf(m, pks[k - 1]), db.OrderOf(m, pks[k]));
      }
    }
  }
}

// --- Convergence across every evaluated app ----------------------------------------------------

class AppConvergenceTest : public ::testing::TestWithParam<int> {};

TEST_P(AppConvergenceTest, ReplicasConvergeUnderComputedRestrictions) {
  auto entries = apps::EvaluatedApps();
  const auto& entry = entries[GetParam()];
  if (entry.name == "OwnPhotos") {
    GTEST_SKIP() << "OwnPhotos restriction computation is exercised by the bench";
  }
  app::App a = entry.make();
  analyzer::AnalysisResult res = analyzer::AnalyzeApp(a);
  auto eff = res.EffectfulPaths();
  verifier::RestrictionReport report =
      verifier::AnalyzeRestrictions(verifier::Checker(a.schema()), eff);
  repl::ConflictTable conflicts;
  for (const auto& v : report.pairs) {
    if (v.Restricted()) {
      conflicts.AddPair(v.p.substr(0, v.p.find('#')), v.q.substr(0, v.q.find('#')));
    }
  }
  repl::SimOptions options;
  options.duration_ms = 250;
  options.write_ratio = 0.5;
  options.seed = 1000 + GetParam();
  repl::Simulator sim(a.schema(), res.paths, conflicts, options);
  repl::SimResult result = sim.Run();
  EXPECT_TRUE(result.converged) << entry.name;
  EXPECT_GT(result.completed_requests, 0u);
}

INSTANTIATE_TEST_SUITE_P(Apps, AppConvergenceTest, ::testing::Values(0, 1, 2, 4, 5));

}  // namespace
}  // namespace noctua
