// Tests for the parallel, cached verification engine and the noctua::Pipeline facade:
// the thread pool itself, determinism of the restriction set across thread counts, and
// agreement between every engine configuration (cache on/off, projection on/off,
// cheapest-first on/off) — the redesign must change how fast verdicts are produced,
// never which verdicts.
#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/apps.h"
#include "src/pipeline/engine.h"
#include "src/pipeline/pipeline.h"
#include "src/soir/printer.h"
#include "src/support/thread_pool.h"
#include "src/verifier/cache.h"

namespace noctua {
namespace {

// ---------------------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.ParallelFor(counts.size(), [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, SerialPoolHonorsDispatchOrder) {
  ThreadPool pool(1);
  std::vector<size_t> order = {4, 2, 0, 1, 3};
  std::vector<size_t> executed;
  pool.ParallelFor(5, [&](size_t i) { executed.push_back(i); }, &order);
  EXPECT_EQ(executed, order);
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  ThreadPool pool(8);
  std::atomic<uint64_t> sum{0};
  const size_t n = 10000;
  pool.ParallelFor(n, [&](size_t i) { sum.fetch_add(i + 1); });
  EXPECT_EQ(sum.load(), n * (n + 1) / 2);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> ran{0};
    pool.ParallelFor(17, [&](size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 17);
  }
}

TEST(ThreadPoolTest, DefaultThreadsReadsEnvironment) {
  ASSERT_EQ(setenv("NOCTUA_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::DefaultThreads(), 3);
  ASSERT_EQ(unsetenv("NOCTUA_THREADS"), 0);
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

TEST(ThreadPoolTest, DefaultThreadsRejectsMalformedEnvironment) {
  // atoi-style lenient parsing would turn "8x" into 8 and "abc" into 0; the variable
  // must parse as a whole positive integer or be ignored entirely.
  const int fallback = [] {
    unsetenv("NOCTUA_THREADS");
    return ThreadPool::DefaultThreads();
  }();
  for (const char* bad : {"abc", "-3", "0", "12abc", "3.5", "", "99999999999999999999"}) {
    ASSERT_EQ(setenv("NOCTUA_THREADS", bad, 1), 0);
    EXPECT_EQ(ThreadPool::DefaultThreads(), fallback) << "NOCTUA_THREADS=\"" << bad << '"';
  }
  ASSERT_EQ(unsetenv("NOCTUA_THREADS"), 0);
}

TEST(ThreadPoolTest, DefaultThreadsClampsAbsurdValues) {
  ASSERT_EQ(setenv("NOCTUA_THREADS", "100000", 1), 0);
  EXPECT_EQ(ThreadPool::DefaultThreads(), 256);
  ASSERT_EQ(setenv("NOCTUA_THREADS", "256", 1), 0);
  EXPECT_EQ(ThreadPool::DefaultThreads(), 256);
  ASSERT_EQ(unsetenv("NOCTUA_THREADS"), 0);
}

// Lifecycle tests for the long-lived pool an Engine owns. Workers start lazily, so an
// idle pool must construct and destruct without ever spinning up (or busy-waiting in) a
// worker thread, and a working pool must survive arbitrarily many submit/drain cycles.
// All of these run under TSan in CI.

TEST(ThreadPoolTest, IdlePoolConstructsAndDestructsWithoutWork) {
  for (int round = 0; round < 100; ++round) {
    ThreadPool pool(8);
    EXPECT_EQ(pool.threads(), 8);
    EXPECT_EQ(pool.stats().tasks, 0u);  // lazy start: nothing ran, nothing spun
  }
}

TEST(ThreadPoolTest, ManySubmitDrainCyclesOnOnePool) {
  ThreadPool pool(4);
  std::atomic<uint64_t> total{0};
  const int batches = 200;
  const size_t per_batch = 16;
  for (int b = 0; b < batches; ++b) {
    pool.ParallelFor(per_batch,
                     [&](size_t i) { total.fetch_add(i + 1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(total.load(), batches * (per_batch * (per_batch + 1) / 2));
  EXPECT_EQ(pool.stats().tasks, batches * per_batch);
}

TEST(ThreadPoolTest, RepeatedConstructRunDestroyIsClean) {
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(3);
    std::atomic<int> ran{0};
    pool.ParallelFor(8, [&](size_t) { ran.fetch_add(1, std::memory_order_relaxed); });
    ASSERT_EQ(ran.load(), 8);
  }
}

TEST(ThreadPoolTest, PoolDrivenAndDestroyedOffTheOwningThread) {
  // A daemon constructs its Engine (and thus its pool) on main but serves requests from
  // worker threads; the pool must not care which thread runs ParallelFor or deletes it.
  auto pool = std::make_unique<ThreadPool>(4);
  std::atomic<int> ran{0};
  std::thread driver([&] {
    pool->ParallelFor(32, [&](size_t) { ran.fetch_add(1, std::memory_order_relaxed); });
    pool.reset();
  });
  driver.join();
  EXPECT_EQ(ran.load(), 32);
}

// ------------------------------------------------------------------- canonical fingerprint

TEST(CanonicalFingerprintTest, CopiedEndpointsShareFingerprints) {
  // The cache's bread and butter: a copied endpoint is isomorphic to its original, so
  // every pair involving the copy must produce the same cache key as the original pair.
  app::App a = apps::MakeSmallBankApp();
  app::App copied = apps::MakeSmallBankApp();
  for (const app::View& v : a.views()) {
    copied.AddView(v.name + "_twin", v.fn);
  }
  analyzer::AnalysisResult analysis = analyzer::AnalyzeApp(copied);
  const std::vector<soir::CodePath>& eff = analysis.EffectfulPaths();

  std::set<std::string> originals;
  std::set<std::string> twins;
  for (const soir::CodePath& p : eff) {
    soir::CanonicalizationCtx ctx(copied.schema());
    std::string canon = soir::CanonicalPath(copied.schema(), p, &ctx);
    (p.view_name.find("_twin") != std::string::npos ? twins : originals).insert(canon);
  }
  EXPECT_EQ(originals, twins);
}

TEST(CanonicalFingerprintTest, SeparatesAndMergesSmallBankPaths) {
  app::App a = apps::MakeSmallBankApp();
  analyzer::AnalysisResult analysis = analyzer::AnalyzeApp(a);
  std::map<std::string, std::string> canon;
  for (const soir::CodePath& p : analysis.EffectfulPaths()) {
    soir::CanonicalizationCtx ctx(a.schema());
    canon[p.view_name] = soir::CanonicalPath(a.schema(), p, &ctx);
  }
  ASSERT_EQ(canon.size(), 4u);
  // SendPayment and Amalgamate are the same operation shape in this modeling (move a2
  // from a0's checking to a1's checking under the same guards) — the fingerprint must
  // identify them, which is where SmallBank's cache hits come from...
  EXPECT_EQ(canon.at("SendPayment"), canon.at("Amalgamate"));
  // ...while operations over different field slots or guard shapes stay distinct.
  EXPECT_NE(canon.at("DepositChecking"), canon.at("TransactSavings"));
  EXPECT_NE(canon.at("DepositChecking"), canon.at("SendPayment"));
  EXPECT_NE(canon.at("TransactSavings"), canon.at("SendPayment"));
}

// ------------------------------------------------------------------------- verdict cache

TEST(VerdictCacheTest, LookupInsertAndCounters) {
  verifier::VerdictCache cache;
  EXPECT_FALSE(cache.Lookup("k").has_value());
  cache.Insert("k", verifier::CheckOutcome::kFail);
  auto hit = cache.Lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, verifier::CheckOutcome::kFail);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

// -------------------------------------------------------------- determinism & agreement

std::vector<std::string> VerdictLines(const verifier::RestrictionReport& report) {
  std::vector<std::string> out;
  out.reserve(report.pairs.size());
  for (const auto& v : report.pairs) {
    out.push_back(v.p + "|" + v.q + "|" + verifier::CheckOutcomeName(v.commutativity) +
                  "|" + verifier::CheckOutcomeName(v.semantic));
  }
  return out;
}

// Pipeline configurations whose verdicts must all agree. `deterministic_budget` pins the
// solver to its node budget (no wall-clock dependence), so the comparison is exact even
// on a loaded machine.
PipelineOptions AgreementOptions(int threads, bool cache, bool cheapest_first,
                             bool projection) {
  PipelineOptions options;
  options.parallel.threads = threads;
  options.parallel.cache = cache;
  options.parallel.cheapest_first = cheapest_first;
  options.checker.project_footprint = projection;
  options.checker.solver.budget.deterministic = true;
  return options;
}

class EngineAgreementTest : public ::testing::TestWithParam<apps::AppEntry> {};

TEST_P(EngineAgreementTest, VerdictsIdenticalAcrossThreadCounts) {
  app::App a = GetParam().make();
  PipelineOptions analysis_only;
  analysis_only.verify = false;
  analyzer::AnalysisResult analysis = Pipeline::Run(a, analysis_only).analysis;

  verifier::RestrictionReport reference =
      Pipeline::Verify(a, analysis, AgreementOptions(1, true, true, true));
  std::vector<std::string> expected = VerdictLines(reference);
  ASSERT_FALSE(expected.empty());

  for (int threads : {2, 8}) {
    verifier::RestrictionReport report =
        Pipeline::Verify(a, analysis, AgreementOptions(threads, true, true, true));
    EXPECT_EQ(report.stats.threads_used, threads);
    EXPECT_EQ(VerdictLines(report), expected) << "threads=" << threads;
  }
}

TEST_P(EngineAgreementTest, CacheAndScheduleDoNotChangeVerdicts) {
  app::App a = GetParam().make();
  PipelineOptions analysis_only;
  analysis_only.verify = false;
  analyzer::AnalysisResult analysis = Pipeline::Run(a, analysis_only).analysis;

  std::vector<std::string> expected =
      VerdictLines(Pipeline::Verify(a, analysis, AgreementOptions(1, true, true, true)));
  // Cache off, schedule off (report order), both at 2 threads.
  EXPECT_EQ(VerdictLines(Pipeline::Verify(a, analysis, AgreementOptions(2, false, true, true))),
            expected);
  EXPECT_EQ(VerdictLines(Pipeline::Verify(a, analysis, AgreementOptions(2, true, false, true))),
            expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, EngineAgreementTest,
    ::testing::Values(apps::AppEntry{"Blog", apps::MakeBlogApp},
                      apps::AppEntry{"Todo", apps::MakeTodoApp},
                      apps::AppEntry{"SmallBank", apps::MakeSmallBankApp},
                      apps::AppEntry{"Courseware", apps::MakeCoursewareApp}),
    [](const ::testing::TestParamInfo<apps::AppEntry>& info) { return info.param.name; });

// The big apps get the full thread sweep too, but only one extra engine config each so
// the suite stays within the tier-1 budget (their pair matrices dominate the runtime).
TEST(EngineAgreementBigApps, PostGraduationIdenticalAcrossThreads) {
  app::App a = apps::MakePostGraduationApp();
  PipelineOptions analysis_only;
  analysis_only.verify = false;
  analyzer::AnalysisResult analysis = Pipeline::Run(a, analysis_only).analysis;
  std::vector<std::string> expected =
      VerdictLines(Pipeline::Verify(a, analysis, AgreementOptions(1, true, true, true)));
  EXPECT_EQ(VerdictLines(Pipeline::Verify(a, analysis, AgreementOptions(8, true, true, true))),
            expected);
}

TEST(EngineAgreementBigApps, ZhihuIdenticalAcrossThreadsAndCache) {
  app::App a = apps::MakeZhihuApp();
  PipelineOptions analysis_only;
  analysis_only.verify = false;
  analyzer::AnalysisResult analysis = Pipeline::Run(a, analysis_only).analysis;
  verifier::RestrictionReport reference =
      Pipeline::Verify(a, analysis, AgreementOptions(1, true, true, true));
  std::vector<std::string> expected = VerdictLines(reference);
  EXPECT_GT(reference.stats.cache_hits, 0u);
  EXPECT_EQ(VerdictLines(Pipeline::Verify(a, analysis, AgreementOptions(8, true, true, true))),
            expected);
  EXPECT_EQ(VerdictLines(Pipeline::Verify(a, analysis, AgreementOptions(2, false, true, true))),
            expected);
}

TEST(EngineAgreementTestExtra, ProjectionDoesNotChangeVerdicts) {
  app::App a = apps::MakeCoursewareApp();
  PipelineOptions analysis_only;
  analysis_only.verify = false;
  analyzer::AnalysisResult analysis = Pipeline::Run(a, analysis_only).analysis;
  EXPECT_EQ(VerdictLines(Pipeline::Verify(a, analysis, AgreementOptions(1, true, true, false))),
            VerdictLines(Pipeline::Verify(a, analysis, AgreementOptions(1, true, true, true))));
}

// ----------------------------------------------------------------------------- Pipeline

TEST(PipelineTest, RunMatchesHandRolledDance) {
  app::App a = apps::MakeSmallBankApp();
  PipelineResult result = Pipeline::Run(a);

  analyzer::AnalysisResult manual = analyzer::AnalyzeApp(a);
  verifier::RestrictionReport expected =
      verifier::AnalyzeRestrictions(verifier::Checker(a.schema()), manual.EffectfulPaths());

  EXPECT_EQ(result.analysis.num_effectful, manual.num_effectful);
  EXPECT_EQ(VerdictLines(result.restrictions), VerdictLines(expected));
  EXPECT_EQ(result.stats().pairs, expected.stats.pairs);
  EXPECT_GT(result.total_seconds, 0.0);
}

TEST(PipelineTest, VerifyFalseSkipsTheVerifier) {
  app::App a = apps::MakeSmallBankApp();
  PipelineOptions options;
  options.verify = false;
  PipelineResult result = Pipeline::Run(a, options);
  EXPECT_GT(result.analysis.num_effectful, 0u);
  EXPECT_TRUE(result.restrictions.pairs.empty());
}

TEST(PipelineTest, StatsReportCacheAndPrefilterActivity) {
  app::App a = apps::MakeSmallBankApp();
  PipelineResult result = Pipeline::Run(a);
  const verifier::ReportStats& stats = result.stats();
  EXPECT_EQ(stats.pairs, result.restrictions.pairs.size());
  // SmallBank's self-pairs guarantee NotInvalidate cache hits.
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.solver_checks, 0u);
  EXPECT_GT(stats.CacheHitRate(), 0.0);
}

TEST(PipelineTest, ThreadsOptionFlowsThrough) {
  app::App a = apps::MakeCoursewareApp();
  PipelineOptions options;
  options.parallel.threads = 2;
  PipelineResult result = Pipeline::Run(a, options);
  EXPECT_EQ(result.stats().threads_used, 2);
}

// ------------------------------------------------------------------------------- Engine

TEST(EngineTest, MatchesStaticPipelineFacade) {
  app::App todo = apps::MakeTodoApp();
  PipelineResult direct = Pipeline::Run(todo);
  Engine engine{EngineConfig{}};
  PipelineResult engined = engine.Run(todo);
  EXPECT_EQ(engined.restrictions.RestrictedPairNames(),
            direct.restrictions.RestrictedPairNames());
  EXPECT_EQ(engined.restrictions.num_checks(), direct.restrictions.num_checks());
}

TEST(EngineTest, WarmEngineAnswersRepeatRunsFromItsVerdictCache) {
  Engine engine{EngineConfig{}};
  app::App todo = apps::MakeTodoApp();
  PipelineResult cold = engine.Run(todo);
  PipelineResult warm = engine.Run(todo);
  EXPECT_GT(cold.restrictions.stats.solver_checks, 0u);
  EXPECT_EQ(warm.restrictions.stats.solver_checks, 0u);
  EXPECT_GT(warm.restrictions.stats.cache_hits, 0u);
  EXPECT_EQ(warm.restrictions.RestrictedPairNames(),
            cold.restrictions.RestrictedPairNames());
}

TEST(EngineTest, SequentialEnginesKeepIndependentSolverTallies) {
  // Regression for the cross-run counter bleed: portfolio/solver tallies used to live in
  // process-wide globals, so a second pipeline's lifetime counters started wherever the
  // first left off. Each Engine owns its sink now — its tally is exactly its own work.
  EngineConfig config;
  config.solver = smt::BackendKind::kPortfolio;
  app::App todo = apps::MakeTodoApp();

  Engine first(config);
  PipelineResult r1 = first.Run(todo);
  const smt::PortfolioCounts p1 = first.counters().Portfolio();

  Engine second(config);
  PipelineResult r2 = second.Run(todo);
  const smt::PortfolioCounts p2 = second.counters().Portfolio();

  ASSERT_GT(r1.restrictions.stats.portfolio_races, 0u);
  EXPECT_EQ(p1.races, r1.restrictions.stats.portfolio_races);
  EXPECT_EQ(p2.races, r2.restrictions.stats.portfolio_races);
  EXPECT_EQ(p1.races, p2.races);  // identical work, not first's tally plus second's
  // Running the second engine must not have moved the first engine's counters.
  EXPECT_EQ(first.counters().Portfolio().races, p1.races);
  EXPECT_EQ(p1.wins_dfs + p1.wins_cdcl + p1.undecided, p1.races);
}

TEST(EngineTest, IdleEngineConstructsAndDestructsCleanly) {
  Engine engine{EngineConfig{}};
  EXPECT_EQ(engine.verdicts().size(), 0u);
  EXPECT_EQ(engine.counters().Shared().incremental_reuse_hits, 0u);
}

TEST(EngineTest, VerdictCacheCapacityKnobReachesTheEngineCache) {
  ASSERT_EQ(unsetenv("NOCTUA_VERDICT_CACHE"), 0);
  // Unset = unbounded, preserving the throwaway per-call facade's old behavior.
  EXPECT_EQ(EngineConfig::FromEnv().verdict_cache_capacity, 0u);

  ASSERT_EQ(setenv("NOCTUA_VERDICT_CACHE", "123", 1), 0);
  EngineConfig config = EngineConfig::FromEnv();
  EXPECT_EQ(config.verdict_cache_capacity, 123u);
  Engine engine(config);
  EXPECT_EQ(engine.verdicts().capacity(), 123u);
  ASSERT_EQ(unsetenv("NOCTUA_VERDICT_CACHE"), 0);
}

TEST(EngineTest, ResolveOptionsPinsAutoKnobsAndInjectsEngineState) {
  EngineConfig config;
  config.solver = smt::BackendKind::kCdcl;
  config.symmetry = false;
  Engine engine(config);

  PipelineOptions defaults;
  PipelineOptions resolved = engine.ResolveOptions(defaults);
  EXPECT_EQ(resolved.checker.solver.backend, smt::BackendKind::kCdcl);
  EXPECT_EQ(resolved.checker.solver.symmetry, smt::Toggle::kOff);
  EXPECT_EQ(resolved.parallel.pool, &engine.pool());
  EXPECT_EQ(resolved.parallel.counters, &engine.counters());
  EXPECT_EQ(resolved.parallel.store, &engine.verdicts());

  // A caller that brought its own store (or asked for a bounded run-local cache, or a
  // different pool width) keeps it — the engine never overrides explicit choices.
  verifier::VerdictCache mine;
  PipelineOptions custom;
  custom.parallel.store = &mine;
  custom.parallel.threads = engine.pool().threads() + 1;
  PipelineOptions kept = engine.ResolveOptions(custom);
  EXPECT_EQ(kept.parallel.store, &mine);
  EXPECT_EQ(kept.parallel.pool, nullptr);
}

}  // namespace
}  // namespace noctua
