// Tests for the parallel, cached verification engine and the noctua::Pipeline facade:
// the thread pool itself, determinism of the restriction set across thread counts, and
// agreement between every engine configuration (cache on/off, projection on/off,
// cheapest-first on/off) — the redesign must change how fast verdicts are produced,
// never which verdicts.
#include <atomic>
#include <map>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/apps.h"
#include "src/pipeline/pipeline.h"
#include "src/soir/printer.h"
#include "src/support/thread_pool.h"
#include "src/verifier/cache.h"

namespace noctua {
namespace {

// ---------------------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.ParallelFor(counts.size(), [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, SerialPoolHonorsDispatchOrder) {
  ThreadPool pool(1);
  std::vector<size_t> order = {4, 2, 0, 1, 3};
  std::vector<size_t> executed;
  pool.ParallelFor(5, [&](size_t i) { executed.push_back(i); }, &order);
  EXPECT_EQ(executed, order);
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  ThreadPool pool(8);
  std::atomic<uint64_t> sum{0};
  const size_t n = 10000;
  pool.ParallelFor(n, [&](size_t i) { sum.fetch_add(i + 1); });
  EXPECT_EQ(sum.load(), n * (n + 1) / 2);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> ran{0};
    pool.ParallelFor(17, [&](size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 17);
  }
}

TEST(ThreadPoolTest, DefaultThreadsReadsEnvironment) {
  ASSERT_EQ(setenv("NOCTUA_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::DefaultThreads(), 3);
  ASSERT_EQ(unsetenv("NOCTUA_THREADS"), 0);
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

TEST(ThreadPoolTest, DefaultThreadsRejectsMalformedEnvironment) {
  // atoi-style lenient parsing would turn "8x" into 8 and "abc" into 0; the variable
  // must parse as a whole positive integer or be ignored entirely.
  const int fallback = [] {
    unsetenv("NOCTUA_THREADS");
    return ThreadPool::DefaultThreads();
  }();
  for (const char* bad : {"abc", "-3", "0", "12abc", "3.5", "", "99999999999999999999"}) {
    ASSERT_EQ(setenv("NOCTUA_THREADS", bad, 1), 0);
    EXPECT_EQ(ThreadPool::DefaultThreads(), fallback) << "NOCTUA_THREADS=\"" << bad << '"';
  }
  ASSERT_EQ(unsetenv("NOCTUA_THREADS"), 0);
}

TEST(ThreadPoolTest, DefaultThreadsClampsAbsurdValues) {
  ASSERT_EQ(setenv("NOCTUA_THREADS", "100000", 1), 0);
  EXPECT_EQ(ThreadPool::DefaultThreads(), 256);
  ASSERT_EQ(setenv("NOCTUA_THREADS", "256", 1), 0);
  EXPECT_EQ(ThreadPool::DefaultThreads(), 256);
  ASSERT_EQ(unsetenv("NOCTUA_THREADS"), 0);
}

// ------------------------------------------------------------------- canonical fingerprint

TEST(CanonicalFingerprintTest, CopiedEndpointsShareFingerprints) {
  // The cache's bread and butter: a copied endpoint is isomorphic to its original, so
  // every pair involving the copy must produce the same cache key as the original pair.
  app::App a = apps::MakeSmallBankApp();
  app::App copied = apps::MakeSmallBankApp();
  for (const app::View& v : a.views()) {
    copied.AddView(v.name + "_twin", v.fn);
  }
  analyzer::AnalysisResult analysis = analyzer::AnalyzeApp(copied);
  const std::vector<soir::CodePath>& eff = analysis.EffectfulPaths();

  std::set<std::string> originals;
  std::set<std::string> twins;
  for (const soir::CodePath& p : eff) {
    soir::CanonicalizationCtx ctx(copied.schema());
    std::string canon = soir::CanonicalPath(copied.schema(), p, &ctx);
    (p.view_name.find("_twin") != std::string::npos ? twins : originals).insert(canon);
  }
  EXPECT_EQ(originals, twins);
}

TEST(CanonicalFingerprintTest, SeparatesAndMergesSmallBankPaths) {
  app::App a = apps::MakeSmallBankApp();
  analyzer::AnalysisResult analysis = analyzer::AnalyzeApp(a);
  std::map<std::string, std::string> canon;
  for (const soir::CodePath& p : analysis.EffectfulPaths()) {
    soir::CanonicalizationCtx ctx(a.schema());
    canon[p.view_name] = soir::CanonicalPath(a.schema(), p, &ctx);
  }
  ASSERT_EQ(canon.size(), 4u);
  // SendPayment and Amalgamate are the same operation shape in this modeling (move a2
  // from a0's checking to a1's checking under the same guards) — the fingerprint must
  // identify them, which is where SmallBank's cache hits come from...
  EXPECT_EQ(canon.at("SendPayment"), canon.at("Amalgamate"));
  // ...while operations over different field slots or guard shapes stay distinct.
  EXPECT_NE(canon.at("DepositChecking"), canon.at("TransactSavings"));
  EXPECT_NE(canon.at("DepositChecking"), canon.at("SendPayment"));
  EXPECT_NE(canon.at("TransactSavings"), canon.at("SendPayment"));
}

// ------------------------------------------------------------------------- verdict cache

TEST(VerdictCacheTest, LookupInsertAndCounters) {
  verifier::VerdictCache cache;
  EXPECT_FALSE(cache.Lookup("k").has_value());
  cache.Insert("k", verifier::CheckOutcome::kFail);
  auto hit = cache.Lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, verifier::CheckOutcome::kFail);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

// -------------------------------------------------------------- determinism & agreement

std::vector<std::string> VerdictLines(const verifier::RestrictionReport& report) {
  std::vector<std::string> out;
  out.reserve(report.pairs.size());
  for (const auto& v : report.pairs) {
    out.push_back(v.p + "|" + v.q + "|" + verifier::CheckOutcomeName(v.commutativity) +
                  "|" + verifier::CheckOutcomeName(v.semantic));
  }
  return out;
}

// Engine configurations whose verdicts must all agree. `deterministic_budget` pins the
// solver to its node budget (no wall-clock dependence), so the comparison is exact even
// on a loaded machine.
PipelineOptions EngineConfig(int threads, bool cache, bool cheapest_first,
                             bool projection) {
  PipelineOptions options;
  options.parallel.threads = threads;
  options.parallel.cache = cache;
  options.parallel.cheapest_first = cheapest_first;
  options.checker.project_footprint = projection;
  options.checker.solver.budget.deterministic = true;
  return options;
}

class EngineAgreementTest : public ::testing::TestWithParam<apps::AppEntry> {};

TEST_P(EngineAgreementTest, VerdictsIdenticalAcrossThreadCounts) {
  app::App a = GetParam().make();
  PipelineOptions analysis_only;
  analysis_only.verify = false;
  analyzer::AnalysisResult analysis = Pipeline::Run(a, analysis_only).analysis;

  verifier::RestrictionReport reference =
      Pipeline::Verify(a, analysis, EngineConfig(1, true, true, true));
  std::vector<std::string> expected = VerdictLines(reference);
  ASSERT_FALSE(expected.empty());

  for (int threads : {2, 8}) {
    verifier::RestrictionReport report =
        Pipeline::Verify(a, analysis, EngineConfig(threads, true, true, true));
    EXPECT_EQ(report.stats.threads_used, threads);
    EXPECT_EQ(VerdictLines(report), expected) << "threads=" << threads;
  }
}

TEST_P(EngineAgreementTest, CacheAndScheduleDoNotChangeVerdicts) {
  app::App a = GetParam().make();
  PipelineOptions analysis_only;
  analysis_only.verify = false;
  analyzer::AnalysisResult analysis = Pipeline::Run(a, analysis_only).analysis;

  std::vector<std::string> expected =
      VerdictLines(Pipeline::Verify(a, analysis, EngineConfig(1, true, true, true)));
  // Cache off, schedule off (report order), both at 2 threads.
  EXPECT_EQ(VerdictLines(Pipeline::Verify(a, analysis, EngineConfig(2, false, true, true))),
            expected);
  EXPECT_EQ(VerdictLines(Pipeline::Verify(a, analysis, EngineConfig(2, true, false, true))),
            expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, EngineAgreementTest,
    ::testing::Values(apps::AppEntry{"Blog", apps::MakeBlogApp},
                      apps::AppEntry{"Todo", apps::MakeTodoApp},
                      apps::AppEntry{"SmallBank", apps::MakeSmallBankApp},
                      apps::AppEntry{"Courseware", apps::MakeCoursewareApp}),
    [](const ::testing::TestParamInfo<apps::AppEntry>& info) { return info.param.name; });

// The big apps get the full thread sweep too, but only one extra engine config each so
// the suite stays within the tier-1 budget (their pair matrices dominate the runtime).
TEST(EngineAgreementBigApps, PostGraduationIdenticalAcrossThreads) {
  app::App a = apps::MakePostGraduationApp();
  PipelineOptions analysis_only;
  analysis_only.verify = false;
  analyzer::AnalysisResult analysis = Pipeline::Run(a, analysis_only).analysis;
  std::vector<std::string> expected =
      VerdictLines(Pipeline::Verify(a, analysis, EngineConfig(1, true, true, true)));
  EXPECT_EQ(VerdictLines(Pipeline::Verify(a, analysis, EngineConfig(8, true, true, true))),
            expected);
}

TEST(EngineAgreementBigApps, ZhihuIdenticalAcrossThreadsAndCache) {
  app::App a = apps::MakeZhihuApp();
  PipelineOptions analysis_only;
  analysis_only.verify = false;
  analyzer::AnalysisResult analysis = Pipeline::Run(a, analysis_only).analysis;
  verifier::RestrictionReport reference =
      Pipeline::Verify(a, analysis, EngineConfig(1, true, true, true));
  std::vector<std::string> expected = VerdictLines(reference);
  EXPECT_GT(reference.stats.cache_hits, 0u);
  EXPECT_EQ(VerdictLines(Pipeline::Verify(a, analysis, EngineConfig(8, true, true, true))),
            expected);
  EXPECT_EQ(VerdictLines(Pipeline::Verify(a, analysis, EngineConfig(2, false, true, true))),
            expected);
}

TEST(EngineAgreementTestExtra, ProjectionDoesNotChangeVerdicts) {
  app::App a = apps::MakeCoursewareApp();
  PipelineOptions analysis_only;
  analysis_only.verify = false;
  analyzer::AnalysisResult analysis = Pipeline::Run(a, analysis_only).analysis;
  EXPECT_EQ(VerdictLines(Pipeline::Verify(a, analysis, EngineConfig(1, true, true, false))),
            VerdictLines(Pipeline::Verify(a, analysis, EngineConfig(1, true, true, true))));
}

// ----------------------------------------------------------------------------- Pipeline

TEST(PipelineTest, RunMatchesHandRolledDance) {
  app::App a = apps::MakeSmallBankApp();
  PipelineResult result = Pipeline::Run(a);

  analyzer::AnalysisResult manual = analyzer::AnalyzeApp(a);
  verifier::RestrictionReport expected =
      verifier::AnalyzeRestrictions(verifier::Checker(a.schema()), manual.EffectfulPaths());

  EXPECT_EQ(result.analysis.num_effectful, manual.num_effectful);
  EXPECT_EQ(VerdictLines(result.restrictions), VerdictLines(expected));
  EXPECT_EQ(result.stats().pairs, expected.stats.pairs);
  EXPECT_GT(result.total_seconds, 0.0);
}

TEST(PipelineTest, VerifyFalseSkipsTheVerifier) {
  app::App a = apps::MakeSmallBankApp();
  PipelineOptions options;
  options.verify = false;
  PipelineResult result = Pipeline::Run(a, options);
  EXPECT_GT(result.analysis.num_effectful, 0u);
  EXPECT_TRUE(result.restrictions.pairs.empty());
}

TEST(PipelineTest, StatsReportCacheAndPrefilterActivity) {
  app::App a = apps::MakeSmallBankApp();
  PipelineResult result = Pipeline::Run(a);
  const verifier::ReportStats& stats = result.stats();
  EXPECT_EQ(stats.pairs, result.restrictions.pairs.size());
  // SmallBank's self-pairs guarantee NotInvalidate cache hits.
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.solver_checks, 0u);
  EXPECT_GT(stats.CacheHitRate(), 0.0);
}

TEST(PipelineTest, ThreadsOptionFlowsThrough) {
  app::App a = apps::MakeCoursewareApp();
  PipelineOptions options;
  options.parallel.threads = 2;
  PipelineResult result = Pipeline::Run(a, options);
  EXPECT_EQ(result.stats().threads_used, 2);
}

}  // namespace
}  // namespace noctua
