// Tests for the incremental analysis engine: stable serialization of schemas, code
// paths, analyses, and verdicts; renaming-invariant content digests; the on-disk
// artifact store with its fail-closed loader; and O(change) re-verification — a warm
// run must produce the byte-identical restriction set of a cold run while replaying
// every verdict the edit did not touch.
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/apps.h"
#include "src/pipeline/pipeline.h"
#include "src/pipeline/session.h"
#include "src/soir/printer.h"
#include "src/soir/serialize.h"
#include "src/verifier/cache.h"

namespace noctua {
namespace {

using analyzer::Sym;
using analyzer::SymObj;
using analyzer::SymSet;
using analyzer::ViewCtx;
using soir::FieldDef;
using soir::FieldType;
using soir::OnDelete;
using soir::RelationKind;

// ------------------------------------------------------------------ parameterized app
//
// A small lending app whose every name is a parameter captured by the handlers, so a
// "codebase-wide rename" edit is literally the same program under different names —
// the scenario the renaming-invariant digests must see through.

struct LibraryNames {
  std::string book = "Book";
  std::string member = "Member";
  std::string loan = "Loan";
  std::string title = "title";
  std::string copies = "copies";
  std::string borrower = "borrower";
  std::string of_book = "of_book";
};

struct LibraryConfig {
  LibraryNames names;
  // Guard constant in the checkout handler: changing it is the "developer edited a
  // handler body" scenario (the fingerprint tracks it).
  int min_copies = 1;
  // Registers one extra endpoint (the "developer added an endpoint" scenario).
  bool with_review = false;
  // Appended to every handler fingerprint — models "the rename rewrote every handler's
  // source" without changing any handler's behavior.
  std::string fp_suffix;
};

app::App MakeLibraryApp(const LibraryConfig& cfg) {
  app::App app("library", __FILE__);
  soir::Schema& s = app.schema();
  const LibraryNames n = cfg.names;

  s.AddModel(n.book);
  s.AddField(n.book, FieldDef{.name = n.title, .type = FieldType::kString});
  s.AddField(n.book, FieldDef{.name = n.copies, .type = FieldType::kInt});
  s.AddModel(n.member);
  s.AddField(n.member, FieldDef{.name = "name", .type = FieldType::kString});
  s.AddModel(n.loan);
  s.AddField(n.loan, FieldDef{.name = "created", .type = FieldType::kDatetime});
  s.AddRelation(n.borrower, n.loan, n.member, RelationKind::kManyToOne, OnDelete::kCascade,
                "loans");
  s.AddRelation(n.of_book, n.loan, n.book, RelationKind::kManyToOne, OnDelete::kCascade,
                "book_loans");

  app.AddView(
      "add_book",
      [n](ViewCtx& v) {
        v.Create(n.book, {{n.title, v.Post("title")}, {n.copies, v.PostInt("copies")}});
      },
      "add_book@v1" + cfg.fp_suffix);

  const int min_copies = cfg.min_copies;
  app.AddView(
      "checkout",
      [n, min_copies](ViewCtx& v) {
        SymObj member = v.Deref(n.member, v.ParamRef("member", n.member));
        SymObj book = v.M(n.book).get("id", v.ParamRef("book", n.book));
        v.Guard(book.attr(n.copies) >= min_copies);
        v.Create(n.loan, {{"created", v.PostInt("now")}},
                 {{n.borrower, member}, {n.of_book, book}});
        book.with(n.copies, book.attr(n.copies) - 1).save();
      },
      "checkout@min" + std::to_string(min_copies) + cfg.fp_suffix);

  app.AddView(
      "return_book",
      [n](ViewCtx& v) {
        SymObj member = v.Deref(n.member, v.ParamRef("member", n.member));
        SymObj book = v.M(n.book).get("id", v.ParamRef("book", n.book));
        SymSet loan = v.M(n.loan).filter(n.borrower, member).filter(n.of_book, book);
        v.Guard(loan.exists());
        loan.del();
        book.with(n.copies, book.attr(n.copies) + 1).save();
      },
      "return_book@v1" + cfg.fp_suffix);

  if (cfg.with_review) {
    app.AddView(
        "review",
        [n](ViewCtx& v) {
          SymObj book = v.M(n.book).get("id", v.ParamRef("book", n.book));
          book.with(n.title, v.Post("title")).save();
        },
        "review@v1" + cfg.fp_suffix);
  }
  return app;
}

LibraryConfig RenamedConfig(const std::string& fp_suffix) {
  LibraryConfig cfg;
  cfg.names.book = "Tome";
  cfg.names.member = "Patron";
  cfg.names.loan = "Lending";
  cfg.names.title = "headline";
  cfg.names.copies = "stock";
  cfg.names.borrower = "holder";
  cfg.names.of_book = "of_tome";
  cfg.fp_suffix = fp_suffix;
  return cfg;
}

// --------------------------------------------------------------------------- helpers

std::string TempStore(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/noctua_incremental_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

IncrementalOptions Opts(int threads = 2) {
  IncrementalOptions o;
  o.pipeline.parallel.threads = threads;
  // Pin the solver to its node budget so verdicts are identical run-to-run even on a
  // loaded machine — the identity assertions below are exact.
  o.pipeline.checker.solver.budget.deterministic = true;
  return o;
}

std::vector<std::string> VerdictLines(const verifier::RestrictionReport& report) {
  std::vector<std::string> out;
  out.reserve(report.pairs.size());
  for (const auto& v : report.pairs) {
    out.push_back(v.p + "|" + v.q + "|" + verifier::CheckOutcomeName(v.commutativity) +
                  "|" + verifier::CheckOutcomeName(v.semantic));
  }
  return out;
}

// The strict O(change) property: any pair not involving a view in `changed` must have
// been replayed (or prefiltered) — never solved this run.
void ExpectUnchangedPairsReplayed(const verifier::RestrictionReport& report,
                                  const std::set<std::string>& changed) {
  auto view_of = [](const std::string& op) { return op.substr(0, op.find('#')); };
  for (const auto& v : report.pairs) {
    if (changed.count(view_of(v.p)) != 0 || changed.count(view_of(v.q)) != 0) {
      continue;
    }
    EXPECT_NE(v.provenance, verifier::PairProvenance::kComputed)
        << "(" << v.p << ", " << v.q << ") was re-verified but neither endpoint changed";
  }
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteAll(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << data;
  ASSERT_TRUE(out.good()) << path;
}

// -------------------------------------------------------------- serialization round-trips

TEST(SerializeTest, SchemaRoundTripsToIdenticalDigests) {
  app::App a = apps::MakeZhihuApp();
  soir::ArtifactWriter w;
  soir::SerializeSchema(a.schema(), &w);

  soir::ArtifactReader r(w.str());
  soir::Schema copy;
  ASSERT_TRUE(soir::DeserializeSchema(&r, &copy));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(copy.ToString(), a.schema().ToString());
  EXPECT_EQ(soir::SchemaContentDigest(copy), soir::SchemaContentDigest(a.schema()));
  EXPECT_EQ(soir::SchemaStructuralDigest(copy), soir::SchemaStructuralDigest(a.schema()));
}

TEST(SerializeTest, StructuralDigestSurvivesRenamesOnly) {
  app::App b = MakeLibraryApp(RenamedConfig(""));
  app::App base = MakeLibraryApp(LibraryConfig{});
  // Renaming every model/field/relation preserves structure but changes exact content.
  EXPECT_EQ(soir::SchemaStructuralDigest(b.schema()),
            soir::SchemaStructuralDigest(base.schema()));
  EXPECT_NE(soir::SchemaContentDigest(b.schema()),
            soir::SchemaContentDigest(base.schema()));
  // A real structural edit (extra field) changes both.
  app::App extra = MakeLibraryApp(LibraryConfig{});
  extra.schema().AddField("Member",
                          FieldDef{.name = "email", .type = FieldType::kString});
  EXPECT_NE(soir::SchemaStructuralDigest(extra.schema()),
            soir::SchemaStructuralDigest(base.schema()));
}

TEST(SerializeTest, CodePathsRoundTripWithIdenticalDigestsAndCanonicalForm) {
  app::App a = apps::MakeSmallBankApp();
  analyzer::AnalysisResult analysis = analyzer::AnalyzeApp(a);
  ASSERT_FALSE(analysis.paths.empty());
  for (const soir::CodePath& p : analysis.paths) {
    soir::ArtifactWriter w;
    soir::SerializeCodePath(p, &w);
    soir::ArtifactReader r(w.str());
    soir::CodePath copy;
    ASSERT_TRUE(soir::DeserializeCodePath(&r, a.schema(), &copy)) << p.op_name;
    EXPECT_TRUE(r.AtEnd());
    EXPECT_EQ(copy.op_name, p.op_name);
    EXPECT_EQ(soir::PathDigest(a.schema(), copy), soir::PathDigest(a.schema(), p));
    soir::CanonicalizationCtx c1(a.schema());
    soir::CanonicalizationCtx c2(a.schema());
    EXPECT_EQ(soir::CanonicalPath(a.schema(), copy, &c1),
              soir::CanonicalPath(a.schema(), p, &c2));
  }
}

TEST(SerializeTest, AnalysisRoundTripValidates) {
  app::App a = apps::MakeSmallBankApp();
  analyzer::AnalysisResult analysis = analyzer::AnalyzeApp(a);
  soir::ArtifactWriter w;
  analyzer::SerializeAnalysis(analysis, &w);

  soir::ArtifactReader r(w.str());
  analyzer::AnalysisResult copy;
  ASSERT_TRUE(analyzer::DeserializeAnalysis(&r, a.schema(), &copy));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(copy.paths.size(), analysis.paths.size());
  EXPECT_EQ(copy.num_code_paths, analysis.num_code_paths);
  EXPECT_EQ(copy.num_effectful, analysis.num_effectful);
  EXPECT_EQ(copy.endpoint_digests, analysis.endpoint_digests);
  EXPECT_EQ(copy.endpoint_code_paths, analysis.endpoint_code_paths);
  EXPECT_TRUE(analyzer::ValidateAnalysisDigests(a.schema(), copy));
}

TEST(SerializeTest, VerdictCachePersistsAndMarksReplayed) {
  verifier::VerdictCache cache;
  cache.Insert("com|a \"quoted\" key\nwith newline", verifier::CheckOutcome::kFail);
  cache.Insert("ni|simple", verifier::CheckOutcome::kPass);
  std::string file = TempStore("verdicts") + ".verdicts";
  ASSERT_TRUE(cache.SaveToFile(file));

  verifier::VerdictCache loaded;
  ASSERT_TRUE(loaded.LoadFromFile(file));
  EXPECT_EQ(loaded.size(), 2u);
  auto entry = loaded.LookupEntry("com|a \"quoted\" key\nwith newline");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->outcome, verifier::CheckOutcome::kFail);
  EXPECT_TRUE(entry->replayed);

  // Corruption fails closed and leaves the cache untouched.
  std::string data = ReadAll(file);
  for (const std::string& bad :
       {data.substr(0, data.size() / 2), std::string("garbage"),
        std::string("noctua-verdicts 999 0"), data + " trailing"}) {
    WriteAll(file, bad);
    verifier::VerdictCache fresh;
    EXPECT_FALSE(fresh.LoadFromFile(file));
    EXPECT_EQ(fresh.size(), 0u);
  }
}

// ----------------------------------------------------------- fingerprint anti-collision

TEST(FingerprintAntiCollisionTest, DifferentGuardLiteralsGetDifferentKeys) {
  LibraryConfig one;
  LibraryConfig five;
  five.min_copies = 5;
  app::App a1 = MakeLibraryApp(one);
  app::App a5 = MakeLibraryApp(five);
  analyzer::AnalysisResult r1 = analyzer::AnalyzeApp(a1);
  analyzer::AnalysisResult r5 = analyzer::AnalyzeApp(a5);
  // Only the guard constant differs; the digests and the verdict keys must separate.
  EXPECT_NE(r1.endpoint_digests.at("checkout"), r5.endpoint_digests.at("checkout"));
  EXPECT_EQ(r1.endpoint_digests.at("add_book"), r5.endpoint_digests.at("add_book"));

  auto path_of = [](const analyzer::AnalysisResult& r, const std::string& view) {
    for (const soir::CodePath& p : r.EffectfulPaths()) {
      if (p.view_name == view) {
        return p;
      }
    }
    ADD_FAILURE() << "no effectful path for " << view;
    return soir::CodePath{};
  };
  soir::CodePath p1 = path_of(r1, "checkout");
  soir::CodePath p5 = path_of(r5, "checkout");
  EXPECT_NE(verifier::CommutativityKey(a1.schema(), p1, p1, {}),
            verifier::CommutativityKey(a5.schema(), p5, p5, {}));
  EXPECT_NE(verifier::NotInvalidateKey(a1.schema(), p1, p1),
            verifier::NotInvalidateKey(a5.schema(), p5, p5));
}

TEST(FingerprintAntiCollisionTest, DirectionOrderAndPairingChangeKeys) {
  app::App a = MakeLibraryApp(LibraryConfig{});
  analyzer::AnalysisResult r = analyzer::AnalyzeApp(a);
  const soir::CodePath* checkout = nullptr;
  const soir::CodePath* add_book = nullptr;
  const soir::CodePath* ret = nullptr;
  for (const soir::CodePath& p : r.EffectfulPaths()) {
    if (p.view_name == "checkout") checkout = &p;
    if (p.view_name == "add_book") add_book = &p;
    if (p.view_name == "return_book") ret = &p;
  }
  ASSERT_TRUE(checkout != nullptr && add_book != nullptr && ret != nullptr);

  // NotInvalidate is directed: (p, q) and (q, p) are different queries.
  EXPECT_NE(verifier::NotInvalidateKey(a.schema(), *checkout, *add_book),
            verifier::NotInvalidateKey(a.schema(), *add_book, *checkout));
  // Pairing the same path with different partners separates.
  EXPECT_NE(verifier::CommutativityKey(a.schema(), *checkout, *add_book, {}),
            verifier::CommutativityKey(a.schema(), *checkout, *ret, {}));
  // Order membership of a mentioned model is part of the commutativity fingerprint.
  int book = a.schema().ModelId("Book");
  EXPECT_NE(verifier::CommutativityKey(a.schema(), *checkout, *add_book, {}),
            verifier::CommutativityKey(a.schema(), *checkout, *add_book, {book}));
}

TEST(FingerprintAntiCollisionTest, SmallBankDigestsSeparateFieldSlots) {
  app::App a = apps::MakeSmallBankApp();
  analyzer::AnalysisResult r = analyzer::AnalyzeApp(a);
  std::map<std::string, std::string> digest = r.endpoint_digests;
  // SendPayment and Amalgamate are canonically the same operation (the cache's win)...
  EXPECT_EQ(digest.at("SendPayment"), digest.at("Amalgamate"));
  // ...but operations over different field slots must keep distinct digests.
  EXPECT_NE(digest.at("DepositChecking"), digest.at("TransactSavings"));
  EXPECT_NE(digest.at("DepositChecking"), digest.at("SendPayment"));
}

// ------------------------------------------------------------------- incremental engine

TEST(IncrementalTest, WarmRunReplaysEverythingWhenNothingChanged) {
  std::string store = TempStore("unchanged");
  app::App a = MakeLibraryApp(LibraryConfig{});
  IncrementalResult cold = Pipeline::RunIncremental(a, store, Opts());
  EXPECT_TRUE(cold.cold);
  EXPECT_EQ(cold.pairs_replayed, 0u);
  ASSERT_FALSE(cold.run.restrictions.pairs.empty());

  app::App again = MakeLibraryApp(LibraryConfig{});
  IncrementalResult warm = Pipeline::RunIncremental(again, store, Opts());
  EXPECT_FALSE(warm.cold);
  EXPECT_TRUE(warm.changed_endpoints.empty());
  EXPECT_EQ(warm.endpoints_reused, again.views().size());
  EXPECT_EQ(warm.pairs_computed, 0u);
  ExpectUnchangedPairsReplayed(warm.run.restrictions, {});
  EXPECT_EQ(VerdictLines(warm.run.restrictions), VerdictLines(cold.run.restrictions));
}

TEST(IncrementalTest, HandlerEditReverifiesOnlyPairsTouchingIt) {
  std::string store = TempStore("handler_edit");
  Pipeline::RunIncremental(MakeLibraryApp(LibraryConfig{}), store, Opts());

  LibraryConfig edited;
  edited.min_copies = 5;  // checkout's guard changed (and so did its fingerprint)
  app::App b = MakeLibraryApp(edited);
  IncrementalResult warm = Pipeline::RunIncremental(b, store, Opts());
  EXPECT_FALSE(warm.cold);
  EXPECT_EQ(warm.changed_endpoints, std::vector<std::string>{"checkout"});
  EXPECT_EQ(warm.endpoints_reused, b.views().size() - 1);
  EXPECT_GT(warm.pairs_replayed, 0u);
  ExpectUnchangedPairsReplayed(warm.run.restrictions, {"checkout"});

  // Byte-identical to a from-scratch run of the edited app.
  std::string cold_store = TempStore("handler_edit_cold");
  IncrementalResult cold = Pipeline::RunIncremental(MakeLibraryApp(edited), cold_store, Opts());
  EXPECT_EQ(VerdictLines(warm.run.restrictions), VerdictLines(cold.run.restrictions));
}

TEST(IncrementalTest, AddedEndpointReverifiesOnlyItsPairs) {
  std::string store = TempStore("add_endpoint");
  Pipeline::RunIncremental(MakeLibraryApp(LibraryConfig{}), store, Opts());

  LibraryConfig with_review;
  with_review.with_review = true;
  app::App b = MakeLibraryApp(with_review);
  IncrementalResult warm = Pipeline::RunIncremental(b, store, Opts());
  EXPECT_FALSE(warm.cold);
  EXPECT_EQ(warm.changed_endpoints, std::vector<std::string>{"review"});
  ExpectUnchangedPairsReplayed(warm.run.restrictions, {"review"});

  std::string cold_store = TempStore("add_endpoint_cold");
  IncrementalResult cold =
      Pipeline::RunIncremental(MakeLibraryApp(with_review), cold_store, Opts());
  EXPECT_EQ(VerdictLines(warm.run.restrictions), VerdictLines(cold.run.restrictions));
}

TEST(IncrementalTest, RenameOnlyEditReplaysEveryVerdict) {
  std::string store = TempStore("rename");
  app::App a = MakeLibraryApp(LibraryConfig{});
  IncrementalResult cold = Pipeline::RunIncremental(a, store, Opts());

  // The rename rewrote every handler's source (fingerprints change), so analysis re-runs
  // — but every digest and every verdict fingerprint is renaming-invariant: nothing is
  // re-verified and the restriction set is byte-identical.
  app::App renamed = MakeLibraryApp(RenamedConfig("@renamed"));
  IncrementalResult warm = Pipeline::RunIncremental(renamed, store, Opts());
  EXPECT_FALSE(warm.cold);
  EXPECT_EQ(warm.endpoints_reused, 0u);
  EXPECT_TRUE(warm.changed_endpoints.empty())
      << "a pure rename must not change any endpoint digest";
  EXPECT_EQ(warm.pairs_computed, 0u) << "a pure rename must replay 100% of verdicts";
  ExpectUnchangedPairsReplayed(warm.run.restrictions, {});
  EXPECT_EQ(VerdictLines(warm.run.restrictions), VerdictLines(cold.run.restrictions));

  // Schema-only rename with untouched handlers (fingerprints equal): analysis memoizes
  // on top of the verdict replay.
  app::App renamed_again = MakeLibraryApp(RenamedConfig("@renamed"));
  IncrementalResult memo = Pipeline::RunIncremental(renamed_again, store, Opts());
  EXPECT_FALSE(memo.cold);
  EXPECT_EQ(memo.endpoints_reused, renamed_again.views().size());
  EXPECT_EQ(memo.pairs_computed, 0u);
  EXPECT_EQ(VerdictLines(memo.run.restrictions), VerdictLines(cold.run.restrictions));
}

TEST(IncrementalTest, StructuralSchemaEditFallsBackToCold) {
  std::string store = TempStore("schema_edit");
  Pipeline::RunIncremental(MakeLibraryApp(LibraryConfig{}), store, Opts());

  app::App b = MakeLibraryApp(LibraryConfig{});
  b.schema().AddField("Member", FieldDef{.name = "email", .type = FieldType::kString});
  IncrementalResult warm = Pipeline::RunIncremental(b, store, Opts());
  EXPECT_TRUE(warm.cold) << "model ids cannot be trusted across structural edits";
}

TEST(IncrementalTest, CorruptedArtifactsFallBackToColdWithIdenticalVerdicts) {
  std::string store = TempStore("corrupt");
  app::App a = MakeLibraryApp(LibraryConfig{});
  IncrementalResult reference = Pipeline::RunIncremental(a, store, Opts());
  std::vector<std::string> expected = VerdictLines(reference.run.restrictions);

  struct Corruption {
    const char* file;
    enum { kTruncate, kGarbage, kVersion, kDelete } kind;
  };
  const Corruption kCorruptions[] = {
      {"analysis", Corruption::kTruncate},
      {"verdicts", Corruption::kGarbage},
      {"manifest", Corruption::kVersion},
      {"schema", Corruption::kDelete},
  };
  for (const Corruption& c : kCorruptions) {
    std::string path = store + "/" + c.file;
    switch (c.kind) {
      case Corruption::kTruncate:
        WriteAll(path, ReadAll(path).substr(0, ReadAll(path).size() / 2));
        break;
      case Corruption::kGarbage:
        WriteAll(path, "not an artifact at all {{{");
        break;
      case Corruption::kVersion:
        WriteAll(path, "noctua-manifest 9999 \"library\" \"x\" \"y\"");
        break;
      case Corruption::kDelete:
        std::filesystem::remove(path);
        break;
    }
    IncrementalResult warm = Pipeline::RunIncremental(a, store, Opts());
    EXPECT_TRUE(warm.cold) << c.file << " corruption must degrade to a cold run";
    EXPECT_EQ(VerdictLines(warm.run.restrictions), expected) << c.file;
    // The run re-saved good artifacts; prove the store recovered.
    IncrementalResult recovered = Pipeline::RunIncremental(a, store, Opts());
    EXPECT_FALSE(recovered.cold) << c.file;
  }
}

TEST(IncrementalTest, RealAppsReplayByteIdentical) {
  for (const apps::AppEntry& entry : {apps::AppEntry{"SmallBank", apps::MakeSmallBankApp},
                                      apps::AppEntry{"Courseware", apps::MakeCoursewareApp}}) {
    std::string store = TempStore(std::string("real_") + entry.name);
    app::App a = entry.make();
    IncrementalResult cold = Pipeline::RunIncremental(a, store, Opts());
    EXPECT_TRUE(cold.cold) << entry.name;

    app::App b = entry.make();
    IncrementalResult warm = Pipeline::RunIncremental(b, store, Opts());
    EXPECT_FALSE(warm.cold) << entry.name;
    EXPECT_TRUE(warm.changed_endpoints.empty()) << entry.name;
    EXPECT_EQ(warm.pairs_computed, 0u) << entry.name;
    EXPECT_EQ(VerdictLines(warm.run.restrictions), VerdictLines(cold.run.restrictions))
        << entry.name;
  }
}

// ---------------------------------------------------------------------------- paranoia

TEST(IncrementalTest, FullParanoiaAgreesOnAnHonestStore) {
  std::string store = TempStore("paranoia_honest");
  app::App a = MakeLibraryApp(LibraryConfig{});
  Pipeline::RunIncremental(a, store, Opts());

  IncrementalOptions opts = Opts();
  opts.paranoia = 1.0;
  opts.paranoia_seed = 7;
  IncrementalResult warm = Pipeline::RunIncremental(a, store, opts);
  EXPECT_FALSE(warm.cold);
  const verifier::ReportStats& stats = warm.run.restrictions.stats;
  EXPECT_GT(stats.replayed, 0u);
  EXPECT_EQ(stats.paranoia_rechecks, stats.replayed)
      << "paranoia=1.0 must re-solve every replayed verdict";
  EXPECT_EQ(warm.pairs_computed, 0u);
}

TEST(IncrementalDeathTest, ParanoiaCatchesAPoisonedStore) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::string store = TempStore("paranoia_poison");
  app::App a = MakeLibraryApp(LibraryConfig{});
  Pipeline::RunIncremental(a, store, Opts(1));

  // Flip the first stored verdict — the silent corruption FNV fingerprints can't catch.
  std::string file = store + "/verdicts";
  soir::ArtifactReader r(ReadAll(file));
  r.ExpectAtom("noctua-verdicts");
  int64_t version = r.Int();
  size_t n = r.Count(1000000);
  ASSERT_TRUE(r.ok());
  ASSERT_GT(n, 0u);
  soir::ArtifactWriter w;
  w.Atom("noctua-verdicts");
  w.Int(version);
  w.Int(static_cast<int64_t>(n));
  for (size_t i = 0; i < n; ++i) {
    std::string key = r.Str();
    int64_t outcome = r.Int();
    if (i == 0) {
      outcome = outcome == 0 ? 1 : 0;
    }
    w.Str(key);
    w.Int(outcome);
  }
  ASSERT_TRUE(r.ok());
  WriteAll(file, w.str());

  IncrementalOptions opts = Opts(1);
  opts.paranoia = 1.0;
  EXPECT_DEATH(Pipeline::RunIncremental(a, store, opts), "paranoia recheck disagrees");
}

}  // namespace
}  // namespace noctua
