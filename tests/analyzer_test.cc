// Tests for the embedded program analyzer: path finder exploration, symbolic values,
// argument discovery, effect collection, and the Figure 3 blog walkthrough.
#include <gtest/gtest.h>

#include <set>

#include "src/analyzer/analyzer.h"
#include "src/analyzer/path_finder.h"
#include "src/apps/blog.h"
#include "src/soir/printer.h"
#include "src/support/check.h"

namespace noctua::analyzer {
namespace {

using soir::CommandKind;

TEST(PathFinderTest, SingleBranchYieldsTwoPaths) {
  PathFinder pf;
  std::vector<std::vector<bool>> runs;
  do {
    pf.StartPath();
    runs.push_back({pf.Branch("c")});
  } while (pf.NextPath());
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], std::vector<bool>({true}));
  EXPECT_EQ(runs[1], std::vector<bool>({false}));
}

TEST(PathFinderTest, NestedBranchesEnumerateAllCombinations) {
  PathFinder pf;
  std::set<std::pair<bool, bool>> seen;
  do {
    pf.StartPath();
    bool a = pf.Branch("a");
    bool b = pf.Branch(a ? "b1" : "b2");  // different conditions on each side
    seen.insert({a, b});
  } while (pf.NextPath());
  EXPECT_EQ(seen.size(), 4u);
}

TEST(PathFinderTest, ShortCircuitedSecondBranch) {
  // Mirrors `if a: ... (no b)` vs `else: if b: ...` — three paths total.
  PathFinder pf;
  int paths = 0;
  do {
    pf.StartPath();
    if (!pf.Branch("a")) {
      pf.Branch("b");
    }
    ++paths;
  } while (pf.NextPath());
  EXPECT_EQ(paths, 3);
}

TEST(PathFinderTest, RepeatedConditionGetsDistinctDecisions) {
  // A while loop branching on the same printed condition: occurrence counting must
  // unroll it rather than loop forever.
  PathFinder::Options opts;
  opts.max_decisions_per_path = 5;
  PathFinder pf(opts);
  size_t longest = 0;
  do {
    pf.StartPath();
    size_t iters = 0;
    while (pf.Branch("loop_cond")) {
      ++iters;
    }
    longest = std::max(longest, iters);
  } while (pf.NextPath());
  EXPECT_EQ(longest, 5u);  // capped by the decision budget
}

TEST(PathFinderTest, MaxPathsBudget) {
  PathFinder::Options opts;
  opts.max_paths = 4;
  PathFinder pf(opts);
  int paths = 0;
  do {
    pf.StartPath();
    for (int i = 0; i < 10; ++i) {
      pf.Branch("c" + std::to_string(i));
    }
    ++paths;
  } while (pf.NextPath());
  EXPECT_EQ(paths, 4);
  EXPECT_TRUE(pf.budget_exhausted());
}

// --- Sym folding --------------------------------------------------------------------------

TEST(SymTest, ConcreteComputationsFoldEagerly) {
  Sym a = 2;
  Sym b = 3;
  Sym sum = a + b;
  EXPECT_EQ(sum.expr()->kind, soir::ExprKind::kIntLit);
  EXPECT_EQ(sum.expr()->int_val, 5);
  // Concrete comparisons produce literals and never reach the path finder, so a plain
  // `if` on them needs no context.
  EXPECT_TRUE(static_cast<bool>(Sym(2) < Sym(3)));
  EXPECT_FALSE(static_cast<bool>(Sym("x") == Sym("y")));
}

TEST(SymTest, SymbolicComputationsBuildIr) {
  soir::Schema schema;
  PathFinder pf;
  TraceCtx trace(schema, &pf);
  trace.StartPath();
  Sym x(&trace, trace.Arg("x", soir::Type::Int()));
  Sym y = x + 1;
  EXPECT_EQ(y.expr()->kind, soir::ExprKind::kAdd);
  Sym c = y > 0;
  EXPECT_EQ(c.expr()->kind, soir::ExprKind::kCmp);
}

// --- Blog app (Figure 3) --------------------------------------------------------------------

class BlogTest : public ::testing::Test {
 protected:
  BlogTest() : app(apps::MakeBlogApp()), result(AnalyzeApp(app)) {}

  const soir::CodePath& FindPath(const std::string& op) const {
    for (const auto& p : result.paths) {
      if (p.op_name == op) {
        return p;
      }
    }
    NOCTUA_UNREACHABLE("no such path: " + op);
  }

  app::App app;
  AnalysisResult result;
};

TEST_F(BlogTest, BatchUpdateHasThreeCodePathsTwoEffectful) {
  // Paper §4.1: batch_update corresponds to three code paths, of which the delete and
  // transfer branches are effectful; the RuntimeError path aborts.
  int total = 0;
  int effectful = 0;
  for (const auto& p : result.paths) {
    if (p.view_name == "batch_update") {
      ++total;
      if (p.IsEffectful()) {
        ++effectful;
      }
    }
  }
  EXPECT_EQ(total, 2);      // the aborted path produces no CodePath object
  EXPECT_EQ(effectful, 2);  // BU_delete and BU_transfer
}

TEST_F(BlogTest, ArgumentsAreDiscoveredDuringExecution) {
  const soir::CodePath& p = FindPath("batch_update#p1");  // the transfer path
  std::set<std::string> names;
  for (const auto& a : p.args) {
    names.insert(a.name);
  }
  EXPECT_TRUE(names.count("arg_URL_username"));
  EXPECT_TRUE(names.count("arg_POST_action"));
  EXPECT_TRUE(names.count("arg_POST_to_user"));
}

TEST_F(BlogTest, DeletePathCascadesToComments) {
  const soir::CodePath& p = FindPath("batch_update#p0");
  // Deleting articles cascades to comments (FK article on_delete=CASCADE); the SET_NULL
  // author relation must NOT cascade to users.
  int deletes = 0;
  std::set<int> deleted_models;
  for (const auto& c : p.commands) {
    if (c.kind == CommandKind::kDelete) {
      ++deletes;
      deleted_models.insert(c.a->type.model_id);
    }
  }
  EXPECT_EQ(deletes, 2);
  EXPECT_TRUE(deleted_models.count(app.schema().ModelId("Article")));
  EXPECT_TRUE(deleted_models.count(app.schema().ModelId("Comment")));
  EXPECT_FALSE(deleted_models.count(app.schema().ModelId("User")));
}

TEST_F(BlogTest, PathConditionsRecordBranchPolarity) {
  const soir::CodePath& p0 = FindPath("batch_update#p0");
  const soir::CodePath& p1 = FindPath("batch_update#p1");
  std::string s0;
  std::string s1;
  for (const auto& c : p0.commands) {
    if (c.kind == CommandKind::kGuard) {
      s0 += soir::PrintCommand(app.schema(), c) + "\n";
    }
  }
  for (const auto& c : p1.commands) {
    if (c.kind == CommandKind::kGuard) {
      s1 += soir::PrintCommand(app.schema(), c) + "\n";
    }
  }
  EXPECT_NE(s0.find("== \"delete\""), std::string::npos);
  EXPECT_NE(s1.find("not((arg_POST_action == \"delete\"))"), std::string::npos);
  EXPECT_NE(s1.find("== \"transfer\""), std::string::npos);
}

TEST_F(BlogTest, CreateRecordsUniqueIdArgAndGuards) {
  const soir::CodePath& p = FindPath("create_article#p0");
  bool has_unique_arg = false;
  for (const auto& a : p.args) {
    if (a.unique_id) {
      has_unique_arg = true;
      EXPECT_EQ(a.type.kind, soir::Type::Kind::kRef);
    }
  }
  EXPECT_TRUE(has_unique_arg);
  // Guards: pk non-existence + url uniqueness + author existence.
  int guards = 0;
  for (const auto& c : p.commands) {
    if (c.kind == CommandKind::kGuard) {
      ++guards;
    }
  }
  EXPECT_GE(guards, 3);
  // Effects: insert + author link.
  bool has_update = false;
  bool has_link = false;
  for (const auto& c : p.commands) {
    has_update = has_update || c.kind == CommandKind::kUpdate;
    has_link = has_link || c.kind == CommandKind::kLink;
  }
  EXPECT_TRUE(has_update);
  EXPECT_TRUE(has_link);
}

TEST_F(BlogTest, RepeatedRunsAreDeterministic) {
  AnalysisResult again = AnalyzeApp(app);
  ASSERT_EQ(again.paths.size(), result.paths.size());
  for (size_t i = 0; i < again.paths.size(); ++i) {
    EXPECT_EQ(soir::PrintCodePath(app.schema(), again.paths[i]),
              soir::PrintCodePath(app.schema(), result.paths[i]));
  }
}

TEST_F(BlogTest, FootprintCollection) {
  const soir::CodePath& p = FindPath("batch_update#p1");  // transfer
  std::vector<int> reads;
  std::vector<int> writes;
  std::vector<int> rels;
  p.CollectFootprint(app.schema(), &reads, &writes, &rels);
  // transfer reads User and Article, writes no model rows, touches the author relation.
  EXPECT_TRUE(std::find(reads.begin(), reads.end(), app.schema().ModelId("Article")) !=
              reads.end());
  EXPECT_TRUE(writes.empty());
  EXPECT_FALSE(rels.empty());
}

}  // namespace
}  // namespace noctua::analyzer
