// Tests for Noctua-as-a-service (src/service): protocol strictness, admission
// control, warm-vs-cold correctness against the direct pipeline, per-tenant artifact
// namespace isolation, metrics well-formedness (JSON and Prometheus exposition),
// request-scoped tracing (trace-id round-trip, uniqueness under concurrency, inline
// span trees), and clean shutdown.
//
// Every server here binds an ephemeral loopback port (port 0), so suites can run in
// parallel without port collisions.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/apps.h"
#include "src/obs/json.h"
#include "src/obs/prom.h"
#include "src/pipeline/engine.h"
#include "src/pipeline/pipeline.h"
#include "src/service/client.h"
#include "src/service/server.h"

namespace noctua::service {
namespace {

// One started server + a client pointed at it, torn down in order.
struct TestServer {
  explicit TestServer(ServiceOptions options) : server(std::move(options)) {
    std::string error;
    bool ok = server.Start(&error);
    EXPECT_TRUE(ok) << error;
  }
  ~TestServer() { server.Stop(); }

  Client client() { return Client("127.0.0.1", server.port()); }

  Server server;
};

std::string TempDir(const std::string& tag) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("noctua_service_test_" + tag)).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Restriction names from a response body, via the strict parser.
std::vector<std::string> RestrictionsOf(const std::string& body) {
  std::string error;
  obs::JsonPtr doc = obs::ParseJson(body, &error);
  EXPECT_NE(doc, nullptr) << error << "\nbody: " << body;
  if (doc == nullptr) {
    return {};
  }
  obs::JsonPtr arr = doc->Get("restrictions");
  EXPECT_NE(arr, nullptr);
  std::vector<std::string> out;
  for (const obs::JsonPtr& item : arr->AsArray()) {
    out.push_back(item->AsString());
  }
  return out;
}

// A raw loopback connection to the test server, for requests the strict Client
// refuses to send (malformed framing, deliberate stalls).
int RawConnect(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

TEST(ServiceProtocolTest, HealthzAnswersOk) {
  TestServer ts{ServiceOptions{}};
  HttpResponse resp;
  std::string error;
  ASSERT_TRUE(ts.client().Get("/healthz", &resp, &error)) << error;
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"ok\""), std::string::npos);
}

TEST(ServiceProtocolTest, UnknownEndpointIs404AndWrongMethodIs405) {
  TestServer ts{ServiceOptions{}};
  HttpResponse resp;
  std::string error;
  ASSERT_TRUE(ts.client().Get("/nope", &resp, &error)) << error;
  EXPECT_EQ(resp.status, 404);
  ASSERT_TRUE(ts.client().Get("/v1/analyze", &resp, &error)) << error;
  EXPECT_EQ(resp.status, 405);
  ASSERT_TRUE(ts.client().Post("/healthz", "", &resp, &error)) << error;
  EXPECT_EQ(resp.status, 405);
}

TEST(ServiceProtocolTest, MalformedRequestsAre400NotCrashes) {
  TestServer ts{ServiceOptions{}};
  Client client = ts.client();
  HttpResponse resp;
  std::string error;

  ASSERT_TRUE(client.Post("/v1/analyze", "this is not json", &resp, &error)) << error;
  EXPECT_EQ(resp.status, 400);

  ASSERT_TRUE(client.Post("/v1/analyze", "{\"app\": \"Todo\"}", &resp, &error)) << error;
  EXPECT_EQ(resp.status, 400);  // missing tenant

  ASSERT_TRUE(client.Analyze("t1", "NoSuchApp", {}, &resp, &error)) << error;
  EXPECT_EQ(resp.status, 400);

  ASSERT_TRUE(client.Analyze("../evil", "Todo", {}, &resp, &error)) << error;
  EXPECT_EQ(resp.status, 400);  // path-shaped tenant rejected

  ASSERT_TRUE(client.Analyze("t1", "Todo", {"NoSuchView"}, &resp, &error)) << error;
  EXPECT_EQ(resp.status, 400);

  // The server is still alive and serving after all of the above.
  ASSERT_TRUE(client.Get("/healthz", &resp, &error)) << error;
  EXPECT_EQ(resp.status, 200);
}

TEST(ServiceProtocolTest, OverflowingContentLengthIs400NotACrash) {
  // Regression: an all-digit Content-Length past uint64 used to throw out of
  // std::stoull and std::terminate the daemon.
  TestServer ts{ServiceOptions{}};
  int fd = RawConnect(ts.server.port());
  const std::string req =
      "POST /v1/analyze HTTP/1.1\r\nHost: localhost\r\n"
      "Content-Length: 99999999999999999999\r\n\r\n";
  ASSERT_EQ(::send(fd, req.data(), req.size(), 0), static_cast<ssize_t>(req.size()));
  char buf[256];
  ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
  ASSERT_GT(n, 0);
  EXPECT_EQ(std::string(buf, static_cast<size_t>(n)).rfind("HTTP/1.1 400", 0), 0u);
  ::close(fd);

  // The daemon survived and still serves.
  HttpResponse resp;
  std::string error;
  ASSERT_TRUE(ts.client().Get("/healthz", &resp, &error)) << error;
  EXPECT_EQ(resp.status, 200);
}

TEST(ServiceControlPlaneTest, StalledClientDoesNotBlockControlPlane) {
  // Regression: request reading used to run inline on the accept thread, so one client
  // that connected and sent nothing stalled /healthz (and all admission) for the whole
  // io timeout. Reads now happen on the reader pool; accept never blocks on a socket.
  ServiceOptions options;
  options.io_timeout_seconds = 5;
  TestServer ts{options};
  int stalled = RawConnect(ts.server.port());  // connected, never sends a byte

  HttpResponse resp;
  std::string error;
  auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(ts.client().Get("/healthz", &resp, &error)) << error;
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_EQ(resp.status, 200);
  EXPECT_LT(seconds, 2.0);  // answered well inside the stalled client's 5s timeout
  ::close(stalled);
}

TEST(ServiceAnalyzeTest, MatchesDirectPipelineRunByteForByte) {
  TestServer ts{ServiceOptions{}};
  HttpResponse resp;
  std::string error;
  ASSERT_TRUE(ts.client().Analyze("t1", "Todo", {}, &resp, &error)) << error;
  ASSERT_EQ(resp.status, 200) << resp.body;

  PipelineResult direct = Pipeline::Run(apps::MakeTodoApp());
  EXPECT_EQ(RestrictionsOf(resp.body), direct.restrictions.RestrictedPairNames());
}

TEST(ServiceAnalyzeTest, SecondIdenticalRequestIsWarmAndIdentical) {
  TestServer ts{ServiceOptions{}};
  Client client = ts.client();
  HttpResponse first, second;
  std::string error;
  ASSERT_TRUE(client.Analyze("t1", "Todo", {}, &first, &error)) << error;
  ASSERT_EQ(first.status, 200) << first.body;
  ASSERT_TRUE(client.Analyze("t2", "Todo", {}, &second, &error)) << error;
  ASSERT_EQ(second.status, 200) << second.body;

  EXPECT_EQ(RestrictionsOf(first.body), RestrictionsOf(second.body));
  // The warm request was served entirely from the engine's verdict cache.
  obs::JsonPtr doc = obs::ParseJson(second.body, &error);
  ASSERT_NE(doc, nullptr) << error;
  EXPECT_EQ(doc->Get("stats")->Get("solver_checks")->AsInt(), 0);
}

TEST(ServiceAnalyzeTest, OmitViewsModelsARevision) {
  TestServer ts{ServiceOptions{}};
  HttpResponse full, rev;
  std::string error;
  ASSERT_TRUE(ts.client().Analyze("t1", "Todo", {}, &full, &error)) << error;
  ASSERT_TRUE(ts.client().Analyze("t1", "Todo", {"reprioritize"}, &rev, &error)) << error;
  ASSERT_EQ(full.status, 200);
  ASSERT_EQ(rev.status, 200) << rev.body;
  // The revision has strictly fewer pairs, and no restriction mentions the omitted view.
  for (const std::string& r : RestrictionsOf(rev.body)) {
    EXPECT_EQ(r.find("reprioritize"), std::string::npos) << r;
  }
  obs::JsonPtr full_doc = obs::ParseJson(full.body, &error);
  obs::JsonPtr rev_doc = obs::ParseJson(rev.body, &error);
  ASSERT_NE(full_doc, nullptr);
  ASSERT_NE(rev_doc, nullptr);
  EXPECT_LT(rev_doc->Get("pairs")->AsInt(), full_doc->Get("pairs")->AsInt());
}

TEST(ServiceTenantTest, TenantsGetDisjointArtifactNamespaces) {
  std::string root = TempDir("tenants");
  ServiceOptions options;
  options.workers = 2;
  options.engine.artifact_root = root;
  TestServer ts{options};

  // Two tenants analyze the same app CONCURRENTLY; their stores must be disjoint.
  std::vector<std::string> stores(2);
  std::vector<std::thread> posters;
  for (int i = 0; i < 2; ++i) {
    posters.emplace_back([&, i] {
      Client client("127.0.0.1", ts.server.port());
      HttpResponse resp;
      std::string error;
      ASSERT_TRUE(client.Analyze(i == 0 ? "alice" : "bob", "Todo", {}, &resp, &error))
          << error;
      ASSERT_EQ(resp.status, 200) << resp.body;
      obs::JsonPtr doc = obs::ParseJson(resp.body, &error);
      ASSERT_NE(doc, nullptr) << error;
      stores[i] = doc->Get("store")->AsString();
      EXPECT_EQ(doc->Get("mode")->AsString(), "incremental");
    });
  }
  for (std::thread& t : posters) {
    t.join();
  }

  EXPECT_EQ(stores[0], root + "/alice/Todo");
  EXPECT_EQ(stores[1], root + "/bob/Todo");
  EXPECT_NE(stores[0], stores[1]);
  // Both namespaces materialized on disk, each with its own manifest.
  EXPECT_TRUE(std::filesystem::exists(stores[0] + "/manifest"));
  EXPECT_TRUE(std::filesystem::exists(stores[1] + "/manifest"));

  // A tenant's second request replays from ITS OWN store.
  Client client = ts.client();
  HttpResponse resp;
  std::string error;
  ASSERT_TRUE(client.Analyze("alice", "Todo", {}, &resp, &error)) << error;
  ASSERT_EQ(resp.status, 200);
  obs::JsonPtr doc = obs::ParseJson(resp.body, &error);
  ASSERT_NE(doc, nullptr);
  EXPECT_FALSE(doc->Get("cold")->AsBool());

  std::filesystem::remove_all(root);
}

TEST(ServiceTenantTest, EngineRejectsPathShapedTenantNames) {
  EngineConfig config;
  config.artifact_root = "/tmp/noctua_root";
  Engine engine(config);
  EXPECT_EQ(engine.TenantStoreDir("alice", "Todo"), "/tmp/noctua_root/alice/Todo");
  EXPECT_EQ(engine.TenantStoreDir("..", "Todo"), "");
  EXPECT_EQ(engine.TenantStoreDir("a/b", "Todo"), "");
  EXPECT_EQ(engine.TenantStoreDir(".hidden", "Todo"), "");
  EXPECT_EQ(engine.TenantStoreDir("", "Todo"), "");
  EXPECT_EQ(engine.TenantStoreDir("alice", "../Todo"), "");
  Engine rootless{EngineConfig{}};
  EXPECT_EQ(rootless.TenantStoreDir("alice", "Todo"), "");
}

TEST(ServiceAdmissionTest, FullQueueFailsFastWith503) {
  ServiceOptions options;
  options.workers = 1;
  options.max_queue = 0;  // every analyze request over-admits: deterministic 503
  TestServer ts{options};
  Client client = ts.client();

  HttpResponse resp;
  std::string error;
  ASSERT_TRUE(client.Analyze("t1", "Todo", {}, &resp, &error)) << error;
  EXPECT_EQ(resp.status, 503);
  EXPECT_NE(resp.body.find("admission queue full"), std::string::npos) << resp.body;

  // Control plane stays responsive while analysis is load-shedding, and the rejection
  // is visible in /metrics.
  ASSERT_TRUE(client.Get("/metrics", &resp, &error)) << error;
  ASSERT_EQ(resp.status, 200);
  obs::JsonPtr doc = obs::ParseJson(resp.body, &error);
  ASSERT_NE(doc, nullptr) << error;
  EXPECT_GE(doc->Get("service")->Get("rejected")->AsInt(), 1);
  EXPECT_EQ(doc->Get("service")->Get("admitted")->AsInt(), 0);
}

TEST(ServiceMetricsTest, MetricsAreStrictJsonWithLiveCounters) {
  TestServer ts{ServiceOptions{}};
  Client client = ts.client();
  HttpResponse resp;
  std::string error;
  ASSERT_TRUE(client.Analyze("t1", "Todo", {}, &resp, &error)) << error;
  ASSERT_EQ(resp.status, 200) << resp.body;

  ASSERT_TRUE(client.Get("/metrics", &resp, &error)) << error;
  ASSERT_EQ(resp.status, 200);
  obs::JsonPtr doc = obs::ParseJson(resp.body, &error);
  ASSERT_NE(doc, nullptr) << "metrics not strict JSON: " << error;

  for (const char* key : {"service", "engine", "counters", "histograms"}) {
    ASSERT_NE(doc->Get(key), nullptr) << key;
    EXPECT_TRUE(doc->Get(key)->is_object()) << key;
  }
  // The analyze above recorded live into the server's collector: counters are non-zero
  // WITHOUT any Stop(), and the request histogram saw one sample.
  EXPECT_EQ(doc->Get("counters")->Get("service.requests")->AsInt(), 1);
  EXPECT_EQ(doc->Get("counters")->Get("service.requests_ok")->AsInt(), 1);
  EXPECT_GT(doc->Get("counters")->Get("verifier.pairs_checked")->AsInt(), 0);
  EXPECT_EQ(doc->Get("histograms")->Get("service.request_micros")->Get("count")->AsInt(), 1);
  EXPECT_GT(doc->Get("engine")->Get("verdict_cache_entries")->AsInt(), 0);
}

TEST(ServiceMetricsTest, PrometheusExpositionPassesCheckerWithTenantSeries) {
  TestServer ts{ServiceOptions{}};
  Client client = ts.client();
  HttpResponse resp;
  std::string error;
  ASSERT_TRUE(client.Analyze("t1", "Todo", {}, &resp, &error)) << error;
  ASSERT_EQ(resp.status, 200) << resp.body;

  ASSERT_TRUE(client.Get("/metrics?format=prometheus", &resp, &error)) << error;
  ASSERT_EQ(resp.status, 200);
  // The exposition survives its own scrape-side contract test...
  size_t series = 0;
  EXPECT_TRUE(obs::CheckPrometheusText(resp.body, &error, &series))
      << error << "\n" << resp.body;
  EXPECT_GT(series, 10u);
  // ...and the server's MetricsPrometheus() is the same body generator.
  EXPECT_TRUE(obs::CheckPrometheusText(ts.server.MetricsPrometheus(), &error)) << error;

  auto has = [&](const std::string& line) {
    EXPECT_NE(resp.body.find(line + "\n"), std::string::npos) << "missing: " << line;
  };
  // Admission gauges, the unlabeled totals, and the per-tenant breakdown all made it.
  has("noctua_service_workers 2");
  has("noctua_service_requests_total 1");
  has("noctua_service_requests_ok_total{tenant=\"t1\",app=\"Todo\",mode=\"cold\"} 1");
  has("noctua_service_request_micros_count{tenant=\"t1\",app=\"Todo\","
      "mode=\"cold\"} 1");
  EXPECT_NE(resp.body.find("noctua_service_verdicts_total{tenant=\"t1\","
                           "app=\"Todo\",mode=\"computed\"}"),
            std::string::npos)
      << resp.body;

  // An unknown format is a 400, not a silent JSON fallback.
  ASSERT_TRUE(client.Get("/metrics?format=xml", &resp, &error)) << error;
  EXPECT_EQ(resp.status, 400);
}

TEST(ServiceMetricsTest, LabeledRowsAppearInJsonMetrics) {
  std::string root = TempDir("labeled");
  ServiceOptions options;
  options.engine.artifact_root = root;
  TestServer ts{options};
  Client client = ts.client();
  HttpResponse resp;
  std::string error;
  // Alice runs cold then warm (replayed from her store); bob runs cold once.
  ASSERT_TRUE(client.Analyze("alice", "Todo", {}, &resp, &error)) << error;
  ASSERT_EQ(resp.status, 200) << resp.body;
  ASSERT_TRUE(client.Analyze("alice", "Todo", {}, &resp, &error)) << error;
  ASSERT_EQ(resp.status, 200) << resp.body;
  ASSERT_TRUE(client.Analyze("bob", "Todo", {}, &resp, &error)) << error;
  ASSERT_EQ(resp.status, 200) << resp.body;

  ASSERT_TRUE(client.Get("/metrics", &resp, &error)) << error;
  obs::JsonPtr doc = obs::ParseJson(resp.body, &error);
  ASSERT_NE(doc, nullptr) << error;
  obs::JsonPtr labeled = doc->Get("labeled");
  ASSERT_NE(labeled, nullptr);

  // The cold/warm mode label splits alice's two requests into separate rows; bob has
  // his own row — per-tenant breakdown, not one blended aggregate.
  std::set<std::pair<std::string, std::string>> ok_rows;
  for (const obs::JsonPtr& row : labeled->Get("counters")->AsArray()) {
    if (row->Get("name")->AsString() == "service.requests_ok") {
      ok_rows.emplace(row->Get("tenant")->AsString(), row->Get("mode")->AsString());
      EXPECT_EQ(row->Get("value")->AsInt(), 1);
    }
  }
  EXPECT_TRUE(ok_rows.count({"alice", "cold"}));
  EXPECT_TRUE(ok_rows.count({"alice", "warm"}));
  EXPECT_TRUE(ok_rows.count({"bob", "cold"}));

  // Alice's latency histograms saw both requests, with queue-wait and handle phases
  // broken out separately.
  std::set<std::string> hist_names;
  int alice_samples = 0;
  for (const obs::JsonPtr& row : labeled->Get("histograms")->AsArray()) {
    if (row->Get("tenant")->AsString() == "alice") {
      hist_names.insert(row->Get("name")->AsString());
      alice_samples += static_cast<int>(row->Get("summary")->Get("count")->AsInt());
    }
  }
  EXPECT_TRUE(hist_names.count("service.request_micros"));
  EXPECT_TRUE(hist_names.count("service.queue_wait_micros"));
  EXPECT_TRUE(hist_names.count("service.handle_micros"));
  // 3 histograms x (1 cold + 1 warm sample) each.
  EXPECT_EQ(alice_samples, 6);
  std::filesystem::remove_all(root);
}

// -----------------------------------------------------------------------------
// Request-scoped tracing

// The inline span tree of a traced response, parsed strictly. Returns the complete
// ("ph": "X") events only.
std::vector<obs::JsonPtr> TraceSpansOf(const std::string& body, std::string* trace_id) {
  std::string error;
  obs::JsonPtr doc = obs::ParseJson(body, &error);
  EXPECT_NE(doc, nullptr) << error << "\nbody: " << body;
  if (doc == nullptr) {
    return {};
  }
  *trace_id = doc->Get("trace_id")->AsString();
  obs::JsonPtr trace = doc->Get("trace");
  EXPECT_NE(trace, nullptr) << body;
  if (trace == nullptr) {
    return {};
  }
  EXPECT_EQ(trace->Get("otherData")->Get("trace_id")->AsString(), *trace_id);
  std::vector<obs::JsonPtr> spans;
  for (const obs::JsonPtr& ev : trace->Get("traceEvents")->AsArray()) {
    if (ev->Get("ph")->AsString() == "X") {
      spans.push_back(ev);
    }
  }
  return spans;
}

TEST(ServiceTracingTest, CallerSuppliedTraceIdRoundTripsThroughEverySpan) {
  TestServer ts{ServiceOptions{}};
  AnalyzeParams params;
  params.tenant = "t1";
  params.app = "Todo";
  params.trace = true;
  params.trace_id = "it:42.a-b_c";
  HttpResponse resp;
  std::string error;
  ASSERT_TRUE(ts.client().Analyze(params, &resp, &error)) << error;
  ASSERT_EQ(resp.status, 200) << resp.body;

  std::string trace_id;
  std::vector<obs::JsonPtr> spans = TraceSpansOf(resp.body, &trace_id);
  EXPECT_EQ(trace_id, "it:42.a-b_c");
  ASSERT_FALSE(spans.empty());

  // One tree: every span carries the caller's id, covering admission (queue_wait), the
  // engine run, and the per-pair verify fan-out — the pool workers inherited the
  // request context across the ParallelFor boundary.
  std::set<std::string> names, cats;
  for (const obs::JsonPtr& span : spans) {
    EXPECT_EQ(span->Get("args")->Get("trace_id")->AsString(), "it:42.a-b_c")
        << span->Get("name")->AsString();
    names.insert(span->Get("name")->AsString());
    cats.insert(span->Get("cat")->AsString());
  }
  EXPECT_TRUE(names.count("queue_wait"));
  EXPECT_TRUE(names.count("engine_run"));
  EXPECT_TRUE(names.count("analyze:t1:Todo"));
  for (const char* cat : {"service", "pipeline", "pair", "solve"}) {
    EXPECT_TRUE(cats.count(cat)) << "missing category " << cat;
  }
}

TEST(ServiceTracingTest, InvalidTraceHeaderIs400) {
  TestServer ts{ServiceOptions{}};
  AnalyzeParams params;
  params.tenant = "t1";
  params.app = "Todo";
  params.trace_id = "bad header!";  // space and '!' are outside [A-Za-z0-9._:-]
  HttpResponse resp;
  std::string error;
  ASSERT_TRUE(ts.client().Analyze(params, &resp, &error)) << error;
  EXPECT_EQ(resp.status, 400);
  EXPECT_NE(resp.body.find("x-noctua-trace"), std::string::npos) << resp.body;

  // Over-long ids are rejected too.
  params.trace_id = std::string(65, 'a');
  ASSERT_TRUE(ts.client().Analyze(params, &resp, &error)) << error;
  EXPECT_EQ(resp.status, 400);

  // A non-boolean "trace" key is a 400, not a silent ignore.
  ASSERT_TRUE(ts.client().Post("/v1/analyze",
                               "{\"tenant\": \"t1\", \"app\": \"Todo\", "
                               "\"trace\": \"yes\"}",
                               &resp, &error))
      << error;
  EXPECT_EQ(resp.status, 400);
}

TEST(ServiceTracingTest, UntracedResponsesStillCarryAGeneratedTraceId) {
  TestServer ts{ServiceOptions{}};
  HttpResponse resp;
  std::string error;
  ASSERT_TRUE(ts.client().Analyze("t1", "Todo", {}, &resp, &error)) << error;
  ASSERT_EQ(resp.status, 200) << resp.body;
  obs::JsonPtr doc = obs::ParseJson(resp.body, &error);
  ASSERT_NE(doc, nullptr) << error;
  // The generated id is present (for log correlation) but no span tree was captured.
  EXPECT_EQ(doc->Get("trace_id")->AsString().rfind("ntr-", 0), 0u);
  EXPECT_EQ(doc->Get("trace"), nullptr);
}

TEST(ServiceTracingTest, ConcurrentRequestsNeverShareATraceId) {
  ServiceOptions options;
  options.workers = 4;
  TestServer ts{options};
  constexpr int kRequests = 8;
  std::vector<std::string> ids(kRequests);
  std::vector<std::thread> posters;
  for (int i = 0; i < kRequests; ++i) {
    posters.emplace_back([&, i] {
      Client client("127.0.0.1", ts.server.port());
      AnalyzeParams params;
      params.tenant = "t" + std::to_string(i % 4);  // tenants overlap across requests
      params.app = "Todo";
      params.trace = true;
      HttpResponse resp;
      std::string error;
      ASSERT_TRUE(client.Analyze(params, &resp, &error)) << error;
      ASSERT_EQ(resp.status, 200) << resp.body;
      std::string trace_id;
      std::vector<obs::JsonPtr> spans = TraceSpansOf(resp.body, &trace_id);
      ids[i] = trace_id;
      // Every span of this response belongs to this request — even though all
      // requests' spans interleaved in the shared per-thread buffers, none of another
      // request's spans leaked into this capture.
      ASSERT_FALSE(spans.empty());
      for (const obs::JsonPtr& span : spans) {
        EXPECT_EQ(span->Get("args")->Get("trace_id")->AsString(), trace_id);
      }
    });
  }
  for (std::thread& t : posters) {
    t.join();
  }
  EXPECT_EQ(std::set<std::string>(ids.begin(), ids.end()).size(),
            static_cast<size_t>(kRequests));
}

TEST(ServiceShutdownTest, ShutdownUnblocksWaitAndStopsServing) {
  auto ts = std::make_unique<TestServer>(ServiceOptions{});
  int port = ts->server.port();
  Client client("127.0.0.1", port);

  std::thread waiter([&] { ts->server.Wait(); });
  HttpResponse resp;
  std::string error;
  ASSERT_TRUE(client.Post("/shutdown", "", &resp, &error)) << error;
  EXPECT_EQ(resp.status, 200);
  waiter.join();  // Wait() returned -> the daemon's main loop would now exit
  ts->server.Stop();

  // The listener is gone: a fresh connection is refused (or reset mid-handshake).
  EXPECT_FALSE(client.Get("/healthz", &resp, &error));
  ts.reset();
}

}  // namespace
}  // namespace noctua::service
