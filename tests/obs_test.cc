// Tests for the observability layer: histogram bucket math, counter/histogram
// aggregation, concurrent span recording through the worker pool (the TSan target),
// Chrome-trace export parsed back through the bundled JSON parser, the RunReport built
// from a real pipeline run, and the verdict cache's per-shard statistics and bounded
// eviction.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/apps/apps.h"
#include "src/obs/json.h"
#include "src/obs/obs.h"
#include "src/obs/report.h"
#include "src/pipeline/pipeline.h"
#include "src/support/thread_pool.h"
#include "src/verifier/cache.h"

namespace noctua::obs {
namespace {

// -----------------------------------------------------------------------------
// Histogram bucket math

TEST(HistBuckets, BoundariesArePowersOfTwo) {
  EXPECT_EQ(HistBucketFor(0), 0u);
  EXPECT_EQ(HistBucketFor(1), 1u);
  EXPECT_EQ(HistBucketFor(2), 2u);
  EXPECT_EQ(HistBucketFor(3), 2u);
  EXPECT_EQ(HistBucketFor(4), 3u);
  EXPECT_EQ(HistBucketFor(7), 3u);
  EXPECT_EQ(HistBucketFor(8), 4u);
  // Every bucket's lower bound maps back into that bucket, and the value just below it
  // lands one bucket earlier.
  for (size_t b = 1; b < kHistBuckets; ++b) {
    uint64_t lo = HistBucketLowerBound(b);
    EXPECT_EQ(HistBucketFor(lo), b) << "bucket " << b;
    EXPECT_EQ(HistBucketFor(lo - 1), b - 1) << "bucket " << b;
  }
}

TEST(HistBuckets, FullUint64RangeFits) {
  // bit_width(UINT64_MAX) == 64, so the top value must land inside the array, not one
  // past it.
  EXPECT_LT(HistBucketFor(UINT64_MAX), kHistBuckets);
  EXPECT_EQ(HistBucketFor(UINT64_MAX), 64u);
  EXPECT_EQ(HistBucketFor(uint64_t{1} << 63), 64u);
  EXPECT_EQ(HistBucketFor((uint64_t{1} << 63) - 1), 63u);
}

TEST(HistBuckets, ObserveExtremesDoesNotCorrupt) {
  Collector collector(ObsOptions{.enabled = true});
  Observe(Hist::kSolverNodesPerQuery, 0);
  Observe(Hist::kSolverNodesPerQuery, UINT64_MAX);
  collector.Stop();
  HistSummary s = collector.histogram(Hist::kSolverNodesPerQuery);
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, UINT64_MAX);
}

TEST(HistBuckets, PercentilesAreBucketLowerBounds) {
  Collector collector(ObsOptions{.enabled = true});
  // 100 samples: 98 in bucket [64, 128), 2 in bucket [4096, 8192). p50/p95 sit in the
  // dense bucket, p99 in the sparse one; the summary reports bucket lower bounds.
  for (int i = 0; i < 98; ++i) {
    Observe(Hist::kPairMicros, 100);
  }
  Observe(Hist::kPairMicros, 5000);
  Observe(Hist::kPairMicros, 5000);
  collector.Stop();
  HistSummary s = collector.histogram(Hist::kPairMicros);
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 98u * 100 + 2 * 5000);
  EXPECT_EQ(s.min, 100u);
  EXPECT_EQ(s.max, 5000u);
  EXPECT_EQ(s.p50, 64u);
  EXPECT_EQ(s.p95, 64u);
  EXPECT_EQ(s.p99, 4096u);
  EXPECT_DOUBLE_EQ(s.Mean(), (98.0 * 100 + 2 * 5000) / 100.0);
}

// -----------------------------------------------------------------------------
// Enabled/disabled gating

TEST(Gating, NothingRecordsWithoutCollector) {
  ASSERT_FALSE(Enabled());
  ASSERT_FALSE(Active());
  // All no-ops; the collector installed afterwards must start from zero.
  Add(Counter::kPairsChecked, 41);
  Observe(Hist::kPairMicros, 7);
  {
    ScopedSpan span("orphan", kCatPair);
    EXPECT_FALSE(span.active());
  }
  Collector collector(ObsOptions{.enabled = true});
  EXPECT_TRUE(Enabled());
  EXPECT_TRUE(Active());
  collector.Stop();
  EXPECT_FALSE(Enabled());
  EXPECT_EQ(collector.counter(Counter::kPairsChecked), 0u);
  EXPECT_EQ(collector.histogram(Hist::kPairMicros).count, 0u);
  EXPECT_TRUE(collector.events().empty());
}

TEST(Gating, EmptyDynamicNameIsInactive) {
  Collector collector(ObsOptions{.enabled = true});
  {
    // The Enabled-gated dynamic-name pattern: when collection is off the call site
    // passes "", which must record nothing even while a collector runs.
    ScopedSpan span(std::string(), kCatAnalyze);
    EXPECT_FALSE(span.active());
    span.Arg("ignored", 1);
  }
  collector.Stop();
  EXPECT_TRUE(collector.events().empty());
}

TEST(Gating, ConsecutiveCollectorsDoNotBleed) {
  {
    Collector first(ObsOptions{.enabled = true});
    Add(Counter::kSolverChecks, 5);
    { ScopedSpan span("first-run", kCatVerify); }
    first.Stop();
    EXPECT_EQ(first.counter(Counter::kSolverChecks), 5u);
    EXPECT_EQ(first.events().size(), 1u);
  }
  Collector second(ObsOptions{.enabled = true});
  second.Stop();
  EXPECT_EQ(second.counter(Counter::kSolverChecks), 0u);
  EXPECT_TRUE(second.events().empty());
}

// -----------------------------------------------------------------------------
// Concurrent recording (run under TSan in CI)

TEST(ConcurrentSpans, PoolWorkersRecordIndependently) {
  constexpr size_t kTasks = 256;
  Collector collector(ObsOptions{.enabled = true});
  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [](size_t i) {
    ScopedSpan span(Enabled() ? "task-" + std::to_string(i) : std::string(), kCatPair);
    span.Arg("index", i);
    Add(Counter::kPairsChecked);
    Observe(Hist::kPairMicros, i + 1);
  });
  collector.Stop();

  EXPECT_EQ(collector.counter(Counter::kPairsChecked), kTasks);
  EXPECT_EQ(collector.histogram(Hist::kPairMicros).count, kTasks);
  const std::vector<TraceEvent>& events = collector.events();
  ASSERT_EQ(events.size(), kTasks);
  // Every task's span survived exactly once, with its arg intact, stamped with a
  // positive thread index; the merged stream is sorted by start time.
  std::set<std::string> names;
  for (const TraceEvent& ev : events) {
    names.insert(ev.name);
    EXPECT_GT(ev.tid, 0);
    EXPECT_GE(ev.ts_us, 0);
    EXPECT_GE(ev.dur_us, 0);
    ASSERT_EQ(ev.args.size(), 1u);
    EXPECT_STREQ(ev.args[0].first, "index");
  }
  EXPECT_EQ(names.size(), kTasks);
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const TraceEvent& a, const TraceEvent& b) {
                               return a.ts_us < b.ts_us;
                             }));
}

TEST(ConcurrentSpans, CountersAccumulateAcrossThreads) {
  Collector collector(ObsOptions{.enabled = true});
  ThreadPool pool(4);
  pool.ParallelFor(1000, [](size_t) { Add(Counter::kSolverNodes, 3); });
  collector.Stop();
  EXPECT_EQ(collector.counter(Counter::kSolverNodes), 3000u);
}

// -----------------------------------------------------------------------------
// Chrome-trace export, parsed back with the bundled JSON parser

TEST(ChromeTrace, ExportParsesBackWithExpectedShape) {
  Collector collector(ObsOptions{.enabled = true});
  {
    ScopedSpan outer("outer \"quoted\"", kCatPipeline);
    outer.Arg("pairs", 3);
    ScopedSpan inner("inner", kCatSolve);
    inner.Arg("nodes", 42);
  }
  Add(Counter::kSolverChecks, 7);
  collector.Stop();

  std::string error;
  JsonPtr root = ParseJson(collector.ChromeTraceJson(), &error);
  ASSERT_NE(root, nullptr) << error;
  ASSERT_TRUE(root->is_object());
  EXPECT_EQ(root->Get("displayTimeUnit")->AsString(), "ms");

  JsonPtr events = root->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  size_t complete = 0, metadata = 0;
  for (const JsonPtr& ev : events->AsArray()) {
    ASSERT_TRUE(ev->is_object());
    if (ev->Get("ph")->AsString() == "M") {
      ++metadata;
      EXPECT_EQ(ev->Get("name")->AsString(), "thread_name");
      continue;
    }
    ++complete;
    EXPECT_EQ(ev->Get("ph")->AsString(), "X");
    EXPECT_TRUE(ev->Get("ts")->is_number());
    EXPECT_TRUE(ev->Get("dur")->is_number());
    EXPECT_TRUE(ev->Get("pid")->is_number());
    EXPECT_TRUE(ev->Get("tid")->is_number());
  }
  EXPECT_EQ(complete, 2u);
  EXPECT_GE(metadata, 1u);  // at least the recording thread's name

  // The escaped span name round-trips, and args survive as numbers.
  bool found_outer = false;
  for (const JsonPtr& ev : events->AsArray()) {
    if (ev->Get("name")->AsString() == "outer \"quoted\"") {
      found_outer = true;
      EXPECT_EQ(ev->Get("cat")->AsString(), "pipeline");
      JsonPtr args = ev->Get("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->Get("pairs")->AsDouble(), 3.0);
    }
  }
  EXPECT_TRUE(found_outer);

  // Non-zero counters export under otherData.counters.
  JsonPtr counters = root->Get("otherData")->Get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Get("verifier.solver_checks")->AsDouble(), 7.0);
}

TEST(JsonParser, AcceptsAndRejects) {
  std::string error;
  JsonPtr v = ParseJson(R"({"a": [1, 2.5, -3e2], "b": {"nested": "x\nA"}, "c": true, "d": null})", &error);
  ASSERT_NE(v, nullptr) << error;
  EXPECT_EQ(v->Get("a")->AsArray().size(), 3u);
  EXPECT_DOUBLE_EQ(v->Get("a")->AsArray()[2]->AsDouble(), -300.0);
  EXPECT_EQ(v->Get("b")->Get("nested")->AsString(), "x\nA");
  EXPECT_TRUE(v->Get("c")->AsBool());
  EXPECT_TRUE(v->Get("d")->is_null());
  EXPECT_EQ(v->Get("missing"), nullptr);

  EXPECT_EQ(ParseJson("{", &error), nullptr);
  EXPECT_EQ(ParseJson("[1, 2,]", &error), nullptr);
  EXPECT_EQ(ParseJson("{} trailing", &error), nullptr);
  EXPECT_EQ(ParseJson("\"unterminated", &error), nullptr);
}

// -----------------------------------------------------------------------------
// RunReport from a real pipeline run (the golden-report test)

TEST(RunReport, TodoPipelineProducesCoherentReport) {
  app::App app = apps::MakeTodoApp();
  PipelineOptions options;
  options.checker.solver.budget.deterministic = true;
  options.obs.enabled = true;
  PipelineResult result = Pipeline::Run(app, options);

  ASSERT_TRUE(result.has_report);
  const RunReport& report = result.report;
  EXPECT_EQ(report.app, app.name());
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_EQ(report.pairs_checked, result.restrictions.pairs.size());
  EXPECT_GT(report.pairs_per_second, 0.0);
  EXPECT_GT(report.trace_events, 0u);

  // The full pipeline exercises at least the analyze/pair/solve/cache taxonomy.
  std::set<std::string> cats(report.span_categories.begin(), report.span_categories.end());
  for (const char* required : {"pipeline", "analyze", "verify", "pair", "encode",
                               "solve", "cache"}) {
    EXPECT_TRUE(cats.count(required)) << "missing category " << required;
  }

  auto counter_value = [&](const std::string& name) -> uint64_t {
    for (const CounterRow& row : report.counters) {
      if (row.name == name) {
        return row.value;
      }
    }
    return 0;
  };
  EXPECT_EQ(counter_value("verifier.pairs_checked"), report.pairs_checked);
  EXPECT_GT(counter_value("verifier.solver_checks"), 0u);
  EXPECT_GT(counter_value("smt.solver_nodes"), 0u);

  // Slow pairs: non-empty, sorted slowest-first, capped at the configured top-N.
  ASSERT_FALSE(report.slow_pairs.empty());
  EXPECT_LE(report.slow_pairs.size(), options.obs.top_slowest_pairs);
  EXPECT_TRUE(std::is_sorted(report.slow_pairs.begin(), report.slow_pairs.end(),
                             [](const SlowPair& a, const SlowPair& b) {
                               return a.micros > b.micros;
                             }));

  // Both serializations hold together: the JSON parses back with the same app name, and
  // the table mentions every counter.
  std::string error;
  JsonPtr parsed = ParseJson(report.ToJson(), &error);
  ASSERT_NE(parsed, nullptr) << error;
  EXPECT_EQ(parsed->Get("app")->AsString(), app.name());
  EXPECT_EQ(parsed->Get("pairs_checked")->AsDouble(),
            static_cast<double>(report.pairs_checked));
  std::string table = report.ToTable();
  for (const CounterRow& row : report.counters) {
    EXPECT_NE(table.find(row.name), std::string::npos) << row.name;
  }
}

TEST(RunReport, DisabledPipelineProducesNoReport) {
  app::App app = apps::MakeTodoApp();
  PipelineOptions options;
  options.checker.solver.budget.deterministic = true;
  PipelineResult result = Pipeline::Run(app, options);
  EXPECT_FALSE(result.has_report);
  EXPECT_FALSE(Active());
}

// -----------------------------------------------------------------------------
// Verdict cache: per-shard statistics and bounded eviction

TEST(CacheShardStats, HitsMissesAndOccupancyPerShard) {
  verifier::VerdictCache cache;  // unbounded
  for (int i = 0; i < 100; ++i) {
    cache.Insert("key-" + std::to_string(i), verifier::CheckOutcome::kPass);
  }
  EXPECT_EQ(cache.size(), 100u);
  EXPECT_TRUE(cache.Lookup("key-3").has_value());
  EXPECT_FALSE(cache.Lookup("absent").has_value());

  std::vector<verifier::VerdictCache::ShardStats> shards = cache.PerShardStats();
  ASSERT_EQ(shards.size(), verifier::VerdictCache::kNumShards);
  size_t entries = 0;
  uint64_t hits = 0, misses = 0, evictions = 0;
  for (const auto& s : shards) {
    entries += s.entries;
    hits += s.hits;
    misses += s.misses;
    evictions += s.evictions;
  }
  EXPECT_EQ(entries, cache.size());
  EXPECT_EQ(hits, cache.hits());
  EXPECT_EQ(misses, cache.misses());
  EXPECT_EQ(evictions, 0u);
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(misses, 1u);
}

TEST(CacheShardStats, BoundedCacheEvictsFifoPerShard) {
  // Per-shard share is capacity / kNumShards = 1: the second insert hashing to a shard
  // evicts that shard's oldest entry.
  verifier::VerdictCache cache(verifier::VerdictCache::kNumShards);
  constexpr int kInserts = 200;
  for (int i = 0; i < kInserts; ++i) {
    cache.Insert("key-" + std::to_string(i), verifier::CheckOutcome::kPass);
  }
  EXPECT_LE(cache.size(), verifier::VerdictCache::kNumShards);
  EXPECT_EQ(cache.evictions(), kInserts - cache.size());
  std::vector<verifier::VerdictCache::ShardStats> shards = cache.PerShardStats();
  uint64_t shard_evictions = 0;
  for (const auto& s : shards) {
    EXPECT_LE(s.entries, 1u);
    shard_evictions += s.evictions;
  }
  EXPECT_EQ(shard_evictions, cache.evictions());
}

TEST(CacheShardStats, DuplicateInsertKeepsExistingEntry) {
  verifier::VerdictCache cache(verifier::VerdictCache::kNumShards);
  cache.Insert("same", verifier::CheckOutcome::kPass);
  cache.Insert("same", verifier::CheckOutcome::kFail);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(*cache.Lookup("same"), verifier::CheckOutcome::kPass);
}

}  // namespace
}  // namespace noctua::obs
