// Tests for the observability layer: histogram bucket math (exact reservoir
// percentiles, intra-bucket interpolation), counter/histogram aggregation, labeled
// per-tenant metrics with the cardinality cap, request-scoped trace contexts and
// capture, concurrent span recording through the worker pool (the TSan target),
// Chrome-trace export parsed back through the bundled JSON parser, Prometheus text
// exposition and its checker, the structured event log, the RunReport built from a
// real pipeline run, and the verdict cache's per-shard statistics and bounded eviction.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/apps.h"
#include "src/obs/json.h"
#include "src/obs/log.h"
#include "src/obs/obs.h"
#include "src/obs/prom.h"
#include "src/obs/report.h"
#include "src/pipeline/pipeline.h"
#include "src/support/thread_pool.h"
#include "src/verifier/cache.h"

namespace noctua::obs {
namespace {

// -----------------------------------------------------------------------------
// Histogram bucket math

TEST(HistBuckets, BoundariesArePowersOfTwo) {
  EXPECT_EQ(HistBucketFor(0), 0u);
  EXPECT_EQ(HistBucketFor(1), 1u);
  EXPECT_EQ(HistBucketFor(2), 2u);
  EXPECT_EQ(HistBucketFor(3), 2u);
  EXPECT_EQ(HistBucketFor(4), 3u);
  EXPECT_EQ(HistBucketFor(7), 3u);
  EXPECT_EQ(HistBucketFor(8), 4u);
  // Every bucket's lower bound maps back into that bucket, and the value just below it
  // lands one bucket earlier.
  for (size_t b = 1; b < kHistBuckets; ++b) {
    uint64_t lo = HistBucketLowerBound(b);
    EXPECT_EQ(HistBucketFor(lo), b) << "bucket " << b;
    EXPECT_EQ(HistBucketFor(lo - 1), b - 1) << "bucket " << b;
  }
}

TEST(HistBuckets, FullUint64RangeFits) {
  // bit_width(UINT64_MAX) == 64, so the top value must land inside the array, not one
  // past it.
  EXPECT_LT(HistBucketFor(UINT64_MAX), kHistBuckets);
  EXPECT_EQ(HistBucketFor(UINT64_MAX), 64u);
  EXPECT_EQ(HistBucketFor(uint64_t{1} << 63), 64u);
  EXPECT_EQ(HistBucketFor((uint64_t{1} << 63) - 1), 63u);
}

TEST(HistBuckets, ObserveExtremesDoesNotCorrupt) {
  Collector collector(ObsOptions{.enabled = true});
  Observe(Hist::kSolverNodesPerQuery, 0);
  Observe(Hist::kSolverNodesPerQuery, UINT64_MAX);
  collector.Stop();
  HistSummary s = collector.histogram(Hist::kSolverNodesPerQuery);
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, UINT64_MAX);
}

TEST(HistBuckets, SmallCountPercentilesAreExact) {
  Collector collector(ObsOptions{.enabled = true});
  // 100 samples: 98 at 100, 2 at 5000. Count <= kHistReservoir, so the summary reports
  // exact nearest-rank percentiles from the sample reservoir — NOT bucket lower bounds
  // (64 / 4096 here); a service histogram with one sample per request never quantizes.
  for (int i = 0; i < 98; ++i) {
    Observe(Hist::kPairMicros, 100);
  }
  Observe(Hist::kPairMicros, 5000);
  Observe(Hist::kPairMicros, 5000);
  collector.Stop();
  HistSummary s = collector.histogram(Hist::kPairMicros);
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 98u * 100 + 2 * 5000);
  EXPECT_EQ(s.min, 100u);
  EXPECT_EQ(s.max, 5000u);
  EXPECT_EQ(s.p50, 100u);
  EXPECT_EQ(s.p95, 100u);
  EXPECT_EQ(s.p99, 5000u);
  EXPECT_DOUBLE_EQ(s.Mean(), (98.0 * 100 + 2 * 5000) / 100.0);
}

TEST(HistBuckets, LargeCountPercentilesInterpolateWithinBuckets) {
  Collector collector(ObsOptions{.enabled = true});
  // 512 samples (past the reservoir): 400 at 100 (bucket [64, 128)), 112 at 5000
  // (bucket [4096, 8192)). Percentiles interpolate linearly inside the bucket holding
  // the rank and clamp to the observed [min, max].
  for (int i = 0; i < 400; ++i) {
    Observe(Hist::kPairMicros, 100);
  }
  for (int i = 0; i < 112; ++i) {
    Observe(Hist::kPairMicros, 5000);
  }
  collector.Stop();
  HistSummary s = collector.histogram(Hist::kPairMicros);
  EXPECT_EQ(s.count, 512u);
  EXPECT_EQ(s.min, 100u);
  EXPECT_EQ(s.max, 5000u);
  // Rank 256 of 512 falls 256/400 of the way through [64, 127]: 64 + 63 * 0.64 = 104 —
  // close to the true 100, never the old bucket-floor 64.
  EXPECT_EQ(s.p50, 104u);
  // p95/p99 ranks land in the sparse top bucket; the interpolated value clamps to the
  // observed max instead of overshooting toward 8191.
  EXPECT_EQ(s.p95, 5000u);
  EXPECT_EQ(s.p99, 5000u);
}

TEST(HistBuckets, SingleValuedHistogramStaysExactPastReservoir) {
  Collector collector(ObsOptions{.enabled = true});
  for (int i = 0; i < 300; ++i) {
    Observe(Hist::kPairMicros, 100);
  }
  collector.Stop();
  HistSummary s = collector.histogram(Hist::kPairMicros);
  EXPECT_EQ(s.count, 300u);
  // The [min, max] clamp keeps a constant-valued histogram exact at any count.
  EXPECT_EQ(s.p50, 100u);
  EXPECT_EQ(s.p95, 100u);
  EXPECT_EQ(s.p99, 100u);
}

// -----------------------------------------------------------------------------
// Enabled/disabled gating

TEST(Gating, NothingRecordsWithoutCollector) {
  ASSERT_FALSE(Enabled());
  ASSERT_FALSE(Active());
  // All no-ops; the collector installed afterwards must start from zero.
  Add(Counter::kPairsChecked, 41);
  Observe(Hist::kPairMicros, 7);
  {
    ScopedSpan span("orphan", kCatPair);
    EXPECT_FALSE(span.active());
  }
  Collector collector(ObsOptions{.enabled = true});
  EXPECT_TRUE(Enabled());
  EXPECT_TRUE(Active());
  collector.Stop();
  EXPECT_FALSE(Enabled());
  EXPECT_EQ(collector.counter(Counter::kPairsChecked), 0u);
  EXPECT_EQ(collector.histogram(Hist::kPairMicros).count, 0u);
  EXPECT_TRUE(collector.events().empty());
}

TEST(Gating, EmptyDynamicNameIsInactive) {
  Collector collector(ObsOptions{.enabled = true});
  {
    // The Enabled-gated dynamic-name pattern: when collection is off the call site
    // passes "", which must record nothing even while a collector runs.
    ScopedSpan span(std::string(), kCatAnalyze);
    EXPECT_FALSE(span.active());
    span.Arg("ignored", 1);
  }
  collector.Stop();
  EXPECT_TRUE(collector.events().empty());
}

TEST(Gating, ConsecutiveCollectorsDoNotBleed) {
  {
    Collector first(ObsOptions{.enabled = true});
    Add(Counter::kSolverChecks, 5);
    { ScopedSpan span("first-run", kCatVerify); }
    first.Stop();
    EXPECT_EQ(first.counter(Counter::kSolverChecks), 5u);
    EXPECT_EQ(first.events().size(), 1u);
  }
  Collector second(ObsOptions{.enabled = true});
  second.Stop();
  EXPECT_EQ(second.counter(Counter::kSolverChecks), 0u);
  EXPECT_TRUE(second.events().empty());
}

// -----------------------------------------------------------------------------
// Concurrent recording (run under TSan in CI)

TEST(ConcurrentSpans, PoolWorkersRecordIndependently) {
  constexpr size_t kTasks = 256;
  Collector collector(ObsOptions{.enabled = true});
  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [](size_t i) {
    ScopedSpan span(Enabled() ? "task-" + std::to_string(i) : std::string(), kCatPair);
    span.Arg("index", i);
    Add(Counter::kPairsChecked);
    Observe(Hist::kPairMicros, i + 1);
  });
  collector.Stop();

  EXPECT_EQ(collector.counter(Counter::kPairsChecked), kTasks);
  EXPECT_EQ(collector.histogram(Hist::kPairMicros).count, kTasks);
  const std::vector<TraceEvent>& events = collector.events();
  ASSERT_EQ(events.size(), kTasks);
  // Every task's span survived exactly once, with its arg intact, stamped with a
  // positive thread index; the merged stream is sorted by start time.
  std::set<std::string> names;
  for (const TraceEvent& ev : events) {
    names.insert(ev.name);
    EXPECT_GT(ev.tid, 0);
    EXPECT_GE(ev.ts_us, 0);
    EXPECT_GE(ev.dur_us, 0);
    ASSERT_EQ(ev.args.size(), 1u);
    EXPECT_STREQ(ev.args[0].first, "index");
  }
  EXPECT_EQ(names.size(), kTasks);
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const TraceEvent& a, const TraceEvent& b) {
                               return a.ts_us < b.ts_us;
                             }));
}

TEST(ConcurrentSpans, CountersAccumulateAcrossThreads) {
  Collector collector(ObsOptions{.enabled = true});
  ThreadPool pool(4);
  pool.ParallelFor(1000, [](size_t) { Add(Counter::kSolverNodes, 3); });
  collector.Stop();
  EXPECT_EQ(collector.counter(Counter::kSolverNodes), 3000u);
}

// -----------------------------------------------------------------------------
// Labeled metrics: per-tenant breakdown with a bounded label registry

TEST(LabeledMetrics, RowsBreakDownByTenantAppMode) {
  Collector collector(ObsOptions{.enabled = true});
  AddLabeled(Counter::kServiceRequestsOk, {"alice", "Todo", "cold"}, 1);
  AddLabeled(Counter::kServiceRequestsOk, {"alice", "Todo", "cold"}, 2);
  AddLabeled(Counter::kServiceRequestsOk, {"bob", "Todo", "warm"}, 1);
  ObserveLabeled(Hist::kServiceHandleMicros, {"alice", "Todo", "cold"}, 150);
  ObserveLabeled(Hist::kServiceHandleMicros, {"alice", "Todo", "cold"}, 250);

  std::vector<LabeledCounterRow> counters = LiveLabeledCounters();
  ASSERT_EQ(counters.size(), 2u);
  // Deterministic (metric, labels) order: alice before bob.
  EXPECT_EQ(counters[0].labels.tenant, "alice");
  EXPECT_EQ(counters[0].labels.app, "Todo");
  EXPECT_EQ(counters[0].labels.mode, "cold");
  EXPECT_EQ(counters[0].counter, Counter::kServiceRequestsOk);
  EXPECT_EQ(counters[0].value, 3u);  // 1 + 2 merged into one row
  EXPECT_EQ(counters[1].labels.tenant, "bob");
  EXPECT_EQ(counters[1].value, 1u);

  std::vector<LabeledHistRow> hists = LiveLabeledHistograms();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].hist, Hist::kServiceHandleMicros);
  EXPECT_EQ(hists[0].summary.count, 2u);
  EXPECT_EQ(hists[0].summary.sum, 400u);
  EXPECT_EQ(hists[0].summary.min, 150u);
  EXPECT_EQ(hists[0].summary.max, 250u);
  EXPECT_EQ(hists[0].summary.p50, 150u);  // exact: both samples in the reservoir
  EXPECT_EQ(hists[0].buckets.count, 2u);
  collector.Stop();
}

TEST(LabeledMetrics, DisabledAndZeroDeltaRecordNothing) {
  ASSERT_FALSE(Enabled());
  AddLabeled(Counter::kServiceRequestsOk, {"alice", "Todo", "cold"}, 5);  // no collector
  EXPECT_TRUE(LiveLabeledCounters().empty());

  Collector collector(ObsOptions{.enabled = true});
  AddLabeled(Counter::kServiceRequestsOk, {"alice", "Todo", "cold"}, 0);  // empty delta
  EXPECT_TRUE(LiveLabeledCounters().empty());
  collector.Stop();
  // After Stop the live view is empty again even though rows could exist.
  EXPECT_TRUE(LiveLabeledCounters().empty());
  EXPECT_TRUE(LiveLabeledHistograms().empty());
}

TEST(LabeledMetrics, CardinalityFoldsIntoOverflowTuple) {
  Collector collector(ObsOptions{.enabled = true});
  for (size_t i = 0; i < kMaxLabelSets; ++i) {
    AddLabeled(Counter::kServiceRequests, {"t" + std::to_string(i), "app", "cold"}, 1);
  }
  // The registry is at capacity: fresh tenants fold into {_other, _other, mode}; the
  // mode dimension survives (it is a closed set chosen by code, not by callers).
  AddLabeled(Counter::kServiceRequests, {"fresh1", "app", "cold"}, 1);
  AddLabeled(Counter::kServiceRequests, {"fresh2", "app", "cold"}, 1);
  AddLabeled(Counter::kServiceRequests, {"fresh3", "app", "warm"}, 1);

  std::vector<LabeledCounterRow> rows = LiveLabeledCounters();
  collector.Stop();
  uint64_t overflow_cold = 0, overflow_warm = 0;
  size_t named = 0;
  for (const LabeledCounterRow& row : rows) {
    if (row.labels.tenant == kLabelOverflow) {
      EXPECT_EQ(row.labels.app, kLabelOverflow);
      (row.labels.mode == "cold" ? overflow_cold : overflow_warm) = row.value;
    } else {
      ++named;
      EXPECT_EQ(row.value, 1u);
    }
  }
  EXPECT_EQ(named, kMaxLabelSets);
  EXPECT_EQ(overflow_cold, 2u);  // fresh1 + fresh2 merged
  EXPECT_EQ(overflow_warm, 1u);
  // No named row for the folded tenants exists anywhere.
  for (const LabeledCounterRow& row : rows) {
    EXPECT_NE(row.labels.tenant.rfind("fresh", 0), 0u) << row.labels.tenant;
  }
}

// -----------------------------------------------------------------------------
// Request-scoped trace context and capture

TEST(TraceContext, SpansAreStampedAndCaptured) {
  Collector collector(ObsOptions{.enabled = true});
  TraceCapture capture;
  {
    ScopedTraceContext scope(42, &capture);
    ScopedSpan span("req", kCatService);
  }
  { ScopedSpan span("outside", kCatService); }  // context restored: unstamped
  collector.Stop();

  ASSERT_EQ(collector.events().size(), 2u);
  for (const TraceEvent& ev : collector.events()) {
    EXPECT_EQ(ev.trace, ev.name == "req" ? 42u : 0u) << ev.name;
  }
  // The capture saw exactly the in-context span.
  std::vector<TraceEvent> captured = capture.Snapshot();
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].name, "req");
  EXPECT_EQ(captured[0].trace, 42u);
}

TEST(TraceContext, NestedScopesRestoreOuterContext) {
  EXPECT_EQ(CurrentTraceContext().trace, 0u);
  EXPECT_EQ(CurrentTraceContext().capture, nullptr);
  {
    ScopedTraceContext outer(1, nullptr);
    EXPECT_EQ(CurrentTraceContext().trace, 1u);
    {
      TraceCapture capture;
      ScopedTraceContext inner(2, &capture);
      EXPECT_EQ(CurrentTraceContext().trace, 2u);
      EXPECT_EQ(CurrentTraceContext().capture, &capture);
    }
    EXPECT_EQ(CurrentTraceContext().trace, 1u);
    EXPECT_EQ(CurrentTraceContext().capture, nullptr);
  }
  EXPECT_EQ(CurrentTraceContext().trace, 0u);
}

TEST(TraceContext, RecordSpanBackfillsMeasuredInterval) {
  Collector collector(ObsOptions{.enabled = true});
  TraceCapture capture;
  {
    ScopedTraceContext scope(7, &capture);
    // Queue-wait pattern: the interval was stamped elsewhere (reader thread) and is
    // recorded after the fact on this thread.
    int64_t start = SteadyNowMicros();
    RecordSpan("queue_wait", kCatService, start, start + 800);
  }
  collector.Stop();
  ASSERT_EQ(collector.events().size(), 1u);
  const TraceEvent& ev = collector.events()[0];
  EXPECT_EQ(ev.name, "queue_wait");
  EXPECT_STREQ(ev.category, kCatService);
  EXPECT_EQ(ev.dur_us, 800);
  EXPECT_EQ(ev.trace, 7u);
  ASSERT_EQ(capture.Snapshot().size(), 1u);
  EXPECT_EQ(capture.Snapshot()[0].dur_us, 800);
}

TEST(TraceContext, NothingRecordsWithoutCollector) {
  ASSERT_FALSE(Enabled());
  TraceCapture capture;
  ScopedTraceContext scope(9, &capture);
  { ScopedSpan span("dead", kCatService); }
  RecordSpan("also_dead", kCatService, 0, 100);
  EXPECT_TRUE(capture.Snapshot().empty());
}

TEST(TraceContext, PoolTasksInheritSubmitterContextWhenPropagated) {
  // The propagation idiom used by verifier::AnalyzeRestrictions: capture the context
  // before ParallelFor, re-install it inside every task.
  Collector collector(ObsOptions{.enabled = true});
  TraceCapture capture;
  {
    ScopedTraceContext scope(31, &capture);
    const TraceContext ctx = CurrentTraceContext();
    ThreadPool pool(4);
    pool.ParallelFor(64, [&ctx](size_t i) {
      ScopedTraceContext task_scope(ctx);
      ScopedSpan span(Enabled() ? "pair-" + std::to_string(i) : std::string(), kCatPair);
    });
  }
  collector.Stop();
  ASSERT_EQ(collector.events().size(), 64u);
  for (const TraceEvent& ev : collector.events()) {
    EXPECT_EQ(ev.trace, 31u) << ev.name;
  }
  EXPECT_EQ(capture.Snapshot().size(), 64u);
}

TEST(TraceCapture, ChromeTraceJsonInjectsExternalTraceId) {
  Collector collector(ObsOptions{.enabled = true});
  TraceCapture capture;
  {
    ScopedTraceContext scope(5, &capture);
    ScopedSpan a("first", kCatService);
    ScopedSpan b("second", kCatPipeline);
  }
  collector.Stop();

  std::string error;
  JsonPtr root = ParseJson(capture.ChromeTraceJson("req:abc"), &error);
  ASSERT_NE(root, nullptr) << error;
  EXPECT_EQ(root->Get("otherData")->Get("trace_id")->AsString(), "req:abc");
  JsonPtr events = root->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  size_t spans = 0;
  for (const JsonPtr& ev : events->AsArray()) {
    if (ev->Get("ph")->AsString() != "X") {
      continue;
    }
    ++spans;
    // Every span of the request carries the external id as a string arg, so a tree
    // merged into a larger trace stays filterable.
    EXPECT_EQ(ev->Get("args")->Get("trace_id")->AsString(), "req:abc");
  }
  EXPECT_EQ(spans, 2u);
}

// -----------------------------------------------------------------------------
// Chrome-trace export, parsed back with the bundled JSON parser

TEST(ChromeTrace, ExportParsesBackWithExpectedShape) {
  Collector collector(ObsOptions{.enabled = true});
  {
    ScopedSpan outer("outer \"quoted\"", kCatPipeline);
    outer.Arg("pairs", 3);
    ScopedSpan inner("inner", kCatSolve);
    inner.Arg("nodes", 42);
  }
  Add(Counter::kSolverChecks, 7);
  collector.Stop();

  std::string error;
  JsonPtr root = ParseJson(collector.ChromeTraceJson(), &error);
  ASSERT_NE(root, nullptr) << error;
  ASSERT_TRUE(root->is_object());
  EXPECT_EQ(root->Get("displayTimeUnit")->AsString(), "ms");

  JsonPtr events = root->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  size_t complete = 0, metadata = 0;
  for (const JsonPtr& ev : events->AsArray()) {
    ASSERT_TRUE(ev->is_object());
    if (ev->Get("ph")->AsString() == "M") {
      ++metadata;
      EXPECT_EQ(ev->Get("name")->AsString(), "thread_name");
      continue;
    }
    ++complete;
    EXPECT_EQ(ev->Get("ph")->AsString(), "X");
    EXPECT_TRUE(ev->Get("ts")->is_number());
    EXPECT_TRUE(ev->Get("dur")->is_number());
    EXPECT_TRUE(ev->Get("pid")->is_number());
    EXPECT_TRUE(ev->Get("tid")->is_number());
  }
  EXPECT_EQ(complete, 2u);
  EXPECT_GE(metadata, 1u);  // at least the recording thread's name

  // The escaped span name round-trips, and args survive as numbers.
  bool found_outer = false;
  for (const JsonPtr& ev : events->AsArray()) {
    if (ev->Get("name")->AsString() == "outer \"quoted\"") {
      found_outer = true;
      EXPECT_EQ(ev->Get("cat")->AsString(), "pipeline");
      JsonPtr args = ev->Get("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->Get("pairs")->AsDouble(), 3.0);
    }
  }
  EXPECT_TRUE(found_outer);

  // Non-zero counters export under otherData.counters.
  JsonPtr counters = root->Get("otherData")->Get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Get("verifier.solver_checks")->AsDouble(), 7.0);
}

TEST(JsonParser, AcceptsAndRejects) {
  std::string error;
  JsonPtr v = ParseJson(R"({"a": [1, 2.5, -3e2], "b": {"nested": "x\nA"}, "c": true, "d": null})", &error);
  ASSERT_NE(v, nullptr) << error;
  EXPECT_EQ(v->Get("a")->AsArray().size(), 3u);
  EXPECT_DOUBLE_EQ(v->Get("a")->AsArray()[2]->AsDouble(), -300.0);
  EXPECT_EQ(v->Get("b")->Get("nested")->AsString(), "x\nA");
  EXPECT_TRUE(v->Get("c")->AsBool());
  EXPECT_TRUE(v->Get("d")->is_null());
  EXPECT_EQ(v->Get("missing"), nullptr);

  EXPECT_EQ(ParseJson("{", &error), nullptr);
  EXPECT_EQ(ParseJson("[1, 2,]", &error), nullptr);
  EXPECT_EQ(ParseJson("{} trailing", &error), nullptr);
  EXPECT_EQ(ParseJson("\"unterminated", &error), nullptr);
}

// -----------------------------------------------------------------------------
// Prometheus text exposition and its checker

TEST(Prometheus, MetricNameMapping) {
  EXPECT_EQ(PrometheusMetricName("service.request_micros"),
            "noctua_service_request_micros");
  EXPECT_EQ(PrometheusMetricName("verifier.pairs_checked"),
            "noctua_verifier_pairs_checked");
}

TEST(Prometheus, ExpositionRendersLiveRegistryAndValidates) {
  Collector collector(ObsOptions{.enabled = true});
  Add(Counter::kPairsChecked, 5);
  AddLabeled(Counter::kServiceRequestsOk, {"alice", "Todo", "cold"}, 2);
  for (int i = 0; i < 3; ++i) {
    Observe(Hist::kPairMicros, 100);  // bucket [64, 128): le="127"
  }
  ObserveLabeled(Hist::kServiceHandleMicros, {"alice", "Todo", "cold"}, 1000);
  std::vector<PromSample> extras;
  extras.push_back({"noctua_service_queue_depth", "Admitted-not-started requests",
                    "gauge", {}, 4});
  std::string text = PrometheusText(extras);
  collector.Stop();

  std::string error;
  size_t series = 0;
  EXPECT_TRUE(CheckPrometheusText(text, &error, &series)) << error << "\n" << text;
  EXPECT_GT(series, 0u);
  auto has = [&](const std::string& line) {
    EXPECT_NE(text.find(line + "\n"), std::string::npos) << "missing: " << line;
  };
  has("noctua_service_queue_depth 4");
  has("noctua_verifier_pairs_checked_total 5");
  // Labeled counter rows are extra series of the same family.
  has("noctua_service_requests_ok_total{tenant=\"alice\",app=\"Todo\",mode=\"cold\"} 2");
  // Histogram: cumulative buckets with integer le bounds, closed by +Inf/_sum/_count.
  has("noctua_verifier_pair_micros_bucket{le=\"127\"} 3");
  has("noctua_verifier_pair_micros_bucket{le=\"+Inf\"} 3");
  has("noctua_verifier_pair_micros_sum 300");
  has("noctua_verifier_pair_micros_count 3");
  // Labeled histogram series carry the tenant labels plus le.
  has("noctua_service_handle_micros_bucket{tenant=\"alice\",app=\"Todo\","
      "mode=\"cold\",le=\"+Inf\"} 1");
  has("noctua_service_handle_micros_count{tenant=\"alice\",app=\"Todo\","
      "mode=\"cold\"} 1");
}

TEST(Prometheus, ExpositionSkipsEmptyFamiliesAndEscapesLabels) {
  Collector collector(ObsOptions{.enabled = true});
  AddLabeled(Counter::kServiceRequestsOk, {"al\"ice", "", "cold"}, 1);
  std::string text = PrometheusText({});
  collector.Stop();
  std::string error;
  EXPECT_TRUE(CheckPrometheusText(text, &error)) << error << "\n" << text;
  // The quote is escaped; the empty app label is omitted, not rendered as "".
  EXPECT_NE(text.find("{tenant=\"al\\\"ice\",mode=\"cold\"} 1"), std::string::npos)
      << text;
  // Untouched families do not appear at all.
  EXPECT_EQ(text.find("noctua_smt_solve_micros"), std::string::npos);
}

TEST(Prometheus, CheckerRejectsBrokenExpositions) {
  std::string error;
  // Well-formed minimal histogram passes.
  EXPECT_TRUE(CheckPrometheusText(
      "x_bucket{le=\"1\"} 2\nx_bucket{le=\"+Inf\"} 3\nx_sum 7\nx_count 3\n", &error))
      << error;
  // Non-monotone cumulative buckets.
  EXPECT_FALSE(CheckPrometheusText(
      "x_bucket{le=\"1\"} 5\nx_bucket{le=\"+Inf\"} 3\nx_sum 7\nx_count 3\n", &error));
  EXPECT_NE(error.find("non-monotone"), std::string::npos) << error;
  // Missing +Inf.
  EXPECT_FALSE(
      CheckPrometheusText("x_bucket{le=\"1\"} 2\nx_sum 7\nx_count 2\n", &error));
  // _count disagrees with the +Inf bucket.
  EXPECT_FALSE(CheckPrometheusText(
      "x_bucket{le=\"+Inf\"} 3\nx_sum 7\nx_count 2\n", &error));
  // Missing _sum.
  EXPECT_FALSE(CheckPrometheusText("x_bucket{le=\"+Inf\"} 3\nx_count 3\n", &error));
  // Malformed lines and names.
  EXPECT_FALSE(CheckPrometheusText("9bad 1\n", &error));
  EXPECT_FALSE(CheckPrometheusText("no_value\n", &error));
  EXPECT_FALSE(CheckPrometheusText("x{le=\"unterminated} 1\n", &error));
  EXPECT_FALSE(CheckPrometheusText("# FOO comment form\n", &error));
  // Comments and blank lines are fine; label sets distinguish families.
  size_t series = 0;
  EXPECT_TRUE(CheckPrometheusText("# HELP a_total help text\n# TYPE a_total counter\n"
                                  "\na_total 1\na_total{tenant=\"t\"} 1\n",
                                  &error, &series))
      << error;
  EXPECT_EQ(series, 2u);
}

// -----------------------------------------------------------------------------
// Structured event log

TEST(EventLogTest, ParseLogLevelIsExact) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  LogLevel untouched = LogLevel::kWarn;
  EXPECT_FALSE(ParseLogLevel("INFO", &untouched));
  EXPECT_FALSE(ParseLogLevel("verbose", &untouched));
  EXPECT_FALSE(ParseLogLevel("", &untouched));
  EXPECT_EQ(untouched, LogLevel::kWarn);
}

TEST(EventLogTest, WritesJsonLinesAboveConfiguredLevel) {
  std::string path =
      (std::filesystem::temp_directory_path() / "noctua_obs_test_log.jsonl").string();
  std::filesystem::remove(path);
  {
    EventLog log;
    std::string error;
    ASSERT_TRUE(log.Configure(LogLevel::kInfo, path, &error)) << error;
    EXPECT_TRUE(log.Enabled(LogLevel::kInfo));
    EXPECT_TRUE(log.Enabled(LogLevel::kError));
    EXPECT_FALSE(log.Enabled(LogLevel::kDebug));
    log.Log(LogLevel::kDebug, "dropped", {{"n", 1}});
    log.Log(LogLevel::kInfo, "request",
            {{"trace_id", std::string("ntr-1")},
             {"tenant", std::string("al\"ice")},
             {"status", 200},
             {"queue_wait_us", uint64_t{41}},
             {"ok", true},
             {"ratio", 0.5}});
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  // Exactly one line (the debug probe was dropped), and it is strict JSON with the
  // typed fields intact.
  std::string error;
  JsonPtr doc = ParseJson(line, &error);
  ASSERT_NE(doc, nullptr) << error << "\nline: " << line;
  EXPECT_GT(doc->Get("ts_ms")->AsDouble(), 0.0);
  EXPECT_EQ(doc->Get("level")->AsString(), "info");
  EXPECT_EQ(doc->Get("event")->AsString(), "request");
  EXPECT_EQ(doc->Get("trace_id")->AsString(), "ntr-1");
  EXPECT_EQ(doc->Get("tenant")->AsString(), "al\"ice");
  EXPECT_EQ(doc->Get("status")->AsDouble(), 200.0);
  EXPECT_EQ(doc->Get("queue_wait_us")->AsDouble(), 41.0);
  EXPECT_TRUE(doc->Get("ok")->AsBool());
  EXPECT_DOUBLE_EQ(doc->Get("ratio")->AsDouble(), 0.5);
  EXPECT_FALSE(std::getline(in, line));
  std::filesystem::remove(path);
}

TEST(EventLogTest, ConfigureFailureKeepsPreviousSink) {
  EventLog log;
  std::string error;
  EXPECT_FALSE(log.Configure(LogLevel::kInfo,
                             "/nonexistent_noctua_dir/event.log", &error));
  EXPECT_FALSE(error.empty());
  // Still usable (stderr sink, default level untouched by the failed call's file).
  log.Log(LogLevel::kDebug, "quiet", {});  // below level: no output, no crash
}

TEST(EventLogTest, RateLimiterAllowsBurstThenDenies) {
  LogRateLimiter limiter(/*per_second=*/0.0, /*burst=*/3.0);
  EXPECT_TRUE(limiter.Allow());
  EXPECT_TRUE(limiter.Allow());
  EXPECT_TRUE(limiter.Allow());
  // Bucket empty and no refill: everything further is shed.
  EXPECT_FALSE(limiter.Allow());
  EXPECT_FALSE(limiter.Allow());
}

// -----------------------------------------------------------------------------
// RunReport from a real pipeline run (the golden-report test)

TEST(RunReport, TodoPipelineProducesCoherentReport) {
  app::App app = apps::MakeTodoApp();
  PipelineOptions options;
  options.checker.solver.budget.deterministic = true;
  options.obs.enabled = true;
  PipelineResult result = Pipeline::Run(app, options);

  ASSERT_TRUE(result.has_report);
  const RunReport& report = result.report;
  EXPECT_EQ(report.app, app.name());
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_EQ(report.pairs_checked, result.restrictions.pairs.size());
  EXPECT_GT(report.pairs_per_second, 0.0);
  EXPECT_GT(report.trace_events, 0u);

  // The full pipeline exercises at least the analyze/pair/solve/cache taxonomy.
  std::set<std::string> cats(report.span_categories.begin(), report.span_categories.end());
  for (const char* required : {"pipeline", "analyze", "verify", "pair", "encode",
                               "solve", "cache"}) {
    EXPECT_TRUE(cats.count(required)) << "missing category " << required;
  }

  auto counter_value = [&](const std::string& name) -> uint64_t {
    for (const CounterRow& row : report.counters) {
      if (row.name == name) {
        return row.value;
      }
    }
    return 0;
  };
  EXPECT_EQ(counter_value("verifier.pairs_checked"), report.pairs_checked);
  EXPECT_GT(counter_value("verifier.solver_checks"), 0u);
  EXPECT_GT(counter_value("smt.solver_nodes"), 0u);

  // Slow pairs: non-empty, sorted slowest-first, capped at the configured top-N.
  ASSERT_FALSE(report.slow_pairs.empty());
  EXPECT_LE(report.slow_pairs.size(), options.obs.top_slowest_pairs);
  EXPECT_TRUE(std::is_sorted(report.slow_pairs.begin(), report.slow_pairs.end(),
                             [](const SlowPair& a, const SlowPair& b) {
                               return a.micros > b.micros;
                             }));

  // Both serializations hold together: the JSON parses back with the same app name, and
  // the table mentions every counter.
  std::string error;
  JsonPtr parsed = ParseJson(report.ToJson(), &error);
  ASSERT_NE(parsed, nullptr) << error;
  EXPECT_EQ(parsed->Get("app")->AsString(), app.name());
  EXPECT_EQ(parsed->Get("pairs_checked")->AsDouble(),
            static_cast<double>(report.pairs_checked));
  std::string table = report.ToTable();
  for (const CounterRow& row : report.counters) {
    EXPECT_NE(table.find(row.name), std::string::npos) << row.name;
  }
}

TEST(RunReport, DisabledPipelineProducesNoReport) {
  app::App app = apps::MakeTodoApp();
  PipelineOptions options;
  options.checker.solver.budget.deterministic = true;
  PipelineResult result = Pipeline::Run(app, options);
  EXPECT_FALSE(result.has_report);
  EXPECT_FALSE(Active());
}

// -----------------------------------------------------------------------------
// Verdict cache: per-shard statistics and bounded eviction

TEST(CacheShardStats, HitsMissesAndOccupancyPerShard) {
  verifier::VerdictCache cache;  // unbounded
  for (int i = 0; i < 100; ++i) {
    cache.Insert("key-" + std::to_string(i), verifier::CheckOutcome::kPass);
  }
  EXPECT_EQ(cache.size(), 100u);
  EXPECT_TRUE(cache.Lookup("key-3").has_value());
  EXPECT_FALSE(cache.Lookup("absent").has_value());

  std::vector<verifier::VerdictCache::ShardStats> shards = cache.PerShardStats();
  ASSERT_EQ(shards.size(), verifier::VerdictCache::kNumShards);
  size_t entries = 0;
  uint64_t hits = 0, misses = 0, evictions = 0;
  for (const auto& s : shards) {
    entries += s.entries;
    hits += s.hits;
    misses += s.misses;
    evictions += s.evictions;
  }
  EXPECT_EQ(entries, cache.size());
  EXPECT_EQ(hits, cache.hits());
  EXPECT_EQ(misses, cache.misses());
  EXPECT_EQ(evictions, 0u);
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(misses, 1u);
}

TEST(CacheShardStats, BoundedCacheEvictsFifoPerShard) {
  // Per-shard share is capacity / kNumShards = 1: the second insert hashing to a shard
  // evicts that shard's oldest entry.
  verifier::VerdictCache cache(verifier::VerdictCache::kNumShards);
  constexpr int kInserts = 200;
  for (int i = 0; i < kInserts; ++i) {
    cache.Insert("key-" + std::to_string(i), verifier::CheckOutcome::kPass);
  }
  EXPECT_LE(cache.size(), verifier::VerdictCache::kNumShards);
  EXPECT_EQ(cache.evictions(), kInserts - cache.size());
  std::vector<verifier::VerdictCache::ShardStats> shards = cache.PerShardStats();
  uint64_t shard_evictions = 0;
  for (const auto& s : shards) {
    EXPECT_LE(s.entries, 1u);
    shard_evictions += s.evictions;
  }
  EXPECT_EQ(shard_evictions, cache.evictions());
}

TEST(CacheShardStats, DuplicateInsertKeepsExistingEntry) {
  verifier::VerdictCache cache(verifier::VerdictCache::kNumShards);
  cache.Insert("same", verifier::CheckOutcome::kPass);
  cache.Insert("same", verifier::CheckOutcome::kFail);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(*cache.Lookup("same"), verifier::CheckOutcome::kPass);
}

}  // namespace
}  // namespace noctua::obs
