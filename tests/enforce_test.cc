// Runtime-enforcement tests: the sharded lease-based LeaseCoordinator as a unit (group
// pair-locks, FIFO queueing, lease expiry, epoch fencing, degradation latch), the
// offline execution-trace checker on hand-built histories, and the two halves of the
// end-to-end oracle on the full simulator — (1) enforcing the computed restriction set
// yields violation-free traces across the whole chaos grid, and (2) dropping any single
// computed restriction is detected by the trace checker with a concrete witness cycle.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "src/analyzer/analyzer.h"
#include "src/apps/apps.h"
#include "src/repl/coord.h"
#include "src/repl/simulator.h"
#include "src/repl/trace_check.h"
#include "src/verifier/report.h"

namespace noctua::repl {
namespace {

// Every coordinator in this binary runs with its internal state audit on: after each
// service call the LeaseCoordinator re-validates its lock/registration invariants and
// aborts on the first inconsistency, naming the offending entry point.
const bool kSelfCheck = [] {
  setenv("NOCTUA_COORD_SELFCHECK", "1", /*overwrite=*/0);
  return true;
}();

// ---------------------------------------------------------------------------------------
// LeaseCoordinator unit tests
// ---------------------------------------------------------------------------------------

ConflictTable OnePair(const std::string& a, const std::string& b) {
  ConflictTable t;
  t.AddPair(a, b);
  return t;
}

TEST(LeaseCoordinatorTest, GroupLockAdmitsOneSideAndQueuesTheOther) {
  ConflictTable t = OnePair("E", "F");
  LeaseCoordinator coord(t, {/*num_shards=*/2, /*lease_ms=*/80});

  EXPECT_EQ(coord.Acquire(1, "E", 0, 0, 0.0, false).granted, std::vector<int64_t>{1});
  // A second E-op joins the same side of the group lock concurrently.
  EXPECT_EQ(coord.Acquire(2, "E", 1, 0, 0.0, false).granted, std::vector<int64_t>{2});
  // An F-op is incompatible and queues.
  EXPECT_TRUE(coord.Acquire(3, "F", 2, 0, 0.0, false).granted.empty());
  EXPECT_EQ(coord.stats().lock_waits, 1u);

  // Both E holders must release before the F-op proceeds.
  EXPECT_TRUE(coord.Release(1, 0, 0, 1.0).granted.empty());
  EXPECT_EQ(coord.Release(2, 1, 0, 2.0).granted, std::vector<int64_t>{3});
  EXPECT_TRUE(coord.IsActive(3));
}

TEST(LeaseCoordinatorTest, SelfPairLockIsAMutex) {
  ConflictTable t = OnePair("E", "E");
  LeaseCoordinator coord(t, {1, 80});
  EXPECT_EQ(coord.Acquire(1, "E", 0, 0, 0.0, false).granted, std::vector<int64_t>{1});
  EXPECT_TRUE(coord.Acquire(2, "E", 1, 0, 0.0, false).granted.empty());
  EXPECT_EQ(coord.Release(1, 0, 0, 1.0).granted, std::vector<int64_t>{2});
}

TEST(LeaseCoordinatorTest, UnrestrictedEndpointIsGrantedInstantly) {
  ConflictTable t = OnePair("E", "F");
  LeaseCoordinator coord(t, {2, 80});
  EXPECT_EQ(coord.NumLocks("G"), 0u);
  EXPECT_EQ(coord.Acquire(7, "G", 0, 0, 0.0, false).granted, std::vector<int64_t>{7});
}

TEST(LeaseCoordinatorTest, TotalModeIsOneGlobalExclusiveLock) {
  ConflictTable t;
  t.SetTotal(true);
  LeaseCoordinator coord(t, {4, 80});
  EXPECT_EQ(coord.NumLocks("anything"), 1u);
  EXPECT_EQ(coord.Acquire(1, "A", 0, 0, 0.0, false).granted, std::vector<int64_t>{1});
  EXPECT_TRUE(coord.Acquire(2, "B", 1, 0, 0.0, false).granted.empty());
  EXPECT_TRUE(coord.Acquire(3, "A", 2, 0, 0.0, false).granted.empty());
  // FIFO: B was first in line, and the lock is exclusive even among same-endpoint ops.
  EXPECT_EQ(coord.Release(1, 0, 0, 1.0).granted, std::vector<int64_t>{2});
  EXPECT_EQ(coord.Release(2, 1, 0, 2.0).granted, std::vector<int64_t>{3});
}

TEST(LeaseCoordinatorTest, ExpiryReapsSilentHolderAndWakesWaiter) {
  ConflictTable t = OnePair("E", "F");
  LeaseCoordinator coord(t, {2, 80});
  coord.Acquire(1, "E", 0, 0, 0.0, false);
  coord.Acquire(2, "F", 1, 0, 1.0, false);
  EXPECT_DOUBLE_EQ(coord.NextDeadline(), 80.0);

  EXPECT_TRUE(coord.ExpireDue(79.0).expired.empty());
  LeaseCoordinator::Outcome out = coord.ExpireDue(80.5);
  EXPECT_EQ(out.expired, std::vector<int64_t>{1});
  // Op 2's lease (1.0 + 80) is still alive; it inherits the lock.
  EXPECT_EQ(out.granted, std::vector<int64_t>{2});
  EXPECT_EQ(coord.stats().expiries, 1u);
  EXPECT_FALSE(coord.IsActive(1));
  EXPECT_TRUE(coord.IsActive(2));
}

TEST(LeaseCoordinatorTest, RenewExtendsTheLease) {
  ConflictTable t = OnePair("E", "F");
  LeaseCoordinator coord(t, {2, 80});
  coord.Acquire(1, "E", 0, 0, 0.0, false);
  coord.Renew(1, 0, 0, 50.0);
  EXPECT_TRUE(coord.ExpireDue(100.0).expired.empty());  // deadline moved to 130
  EXPECT_EQ(coord.ExpireDue(130.5).expired, std::vector<int64_t>{1});
}

TEST(LeaseCoordinatorTest, NewerEpochRevokesTheOldIncarnationImmediately) {
  ConflictTable t = OnePair("E", "F");
  LeaseCoordinator coord(t, {2, 80});
  coord.Acquire(1, "E", /*site=*/0, /*epoch=*/0, 0.0, false);
  coord.Acquire(2, "F", /*site=*/1, /*epoch=*/0, 0.0, false);  // queued behind op 1

  // Site 0 restarted: its first epoch-1 message fences every epoch-0 holding away,
  // without waiting for the lease, and op 2 inherits the lock.
  LeaseCoordinator::Outcome out = coord.Acquire(3, "E", 0, /*epoch=*/1, 5.0, false);
  EXPECT_EQ(out.expired, std::vector<int64_t>{1});
  ASSERT_EQ(out.granted.size(), 1u);
  EXPECT_EQ(out.granted[0], 2);  // FIFO: the queued F-op was first in line
  EXPECT_EQ(coord.stats().expiries, 1u);

  // Messages from the dead incarnation are rejected, not processed.
  EXPECT_TRUE(coord.Release(1, 0, /*epoch=*/0, 6.0).fenced);
  EXPECT_TRUE(coord.Renew(1, 0, /*epoch=*/0, 6.0).fenced);
  EXPECT_EQ(coord.stats().fencing_rejections, 2u);

  // Epochs are per site: site 1's epoch-0 traffic is unaffected.
  EXPECT_FALSE(coord.Renew(2, 1, 0, 6.0).fenced);
}

TEST(LeaseCoordinatorTest, DegradedLatchWaitsForDrainAndStallsNewArrivals) {
  ConflictTable t;
  t.AddPair("E", "F");
  t.AddPair("G", "H");
  LeaseCoordinator coord(t, {2, 80});
  coord.Acquire(1, "E", 0, 0, 0.0, false);
  ASSERT_TRUE(coord.IsActive(1));

  // A degraded op wants the service-global exclusive latch: it must wait for every
  // current holder to drain, even ones touching unrelated pairs.
  EXPECT_TRUE(coord.Acquire(9, "G", 1, 0, 1.0, true).granted.empty());
  // While the latch is pending, new fine-grained arrivals stall before their first
  // lock — even on pairs the current holders never touch.
  uint64_t waits_before = coord.stats().lock_waits;
  EXPECT_TRUE(coord.Acquire(3, "H", 2, 0, 2.0, false).granted.empty());
  EXPECT_EQ(coord.stats().lock_waits, waits_before);  // stalled, not queued on a lock

  // The last holder drains: the latch is granted, exclusively.
  LeaseCoordinator::Outcome out = coord.Release(1, 0, 0, 3.0);
  EXPECT_EQ(out.granted, std::vector<int64_t>{9});
  EXPECT_EQ(coord.stats().degradations, 1u);

  // The latch released: the stalled arrival resumes and acquires normally.
  out = coord.Release(9, 1, 0, 4.0);
  EXPECT_EQ(out.granted, std::vector<int64_t>{3});
}

TEST(LeaseCoordinatorTest, QueuedOpCanUpgradeToDegradedMode) {
  ConflictTable t = OnePair("E", "F");
  LeaseCoordinator coord(t, {2, 80});
  coord.Acquire(1, "E", 0, 0, 0.0, false);
  coord.Acquire(2, "F", 1, 0, 0.0, false);  // queued on the (E, F) lock

  // The origin's backoff budget ran out; it re-requests in degraded mode and is pulled
  // out of the fine-grained wait queue.
  EXPECT_TRUE(coord.Acquire(2, "F", 1, 0, 10.0, true).granted.empty());
  LeaseCoordinator::Outcome out = coord.Release(1, 0, 0, 11.0);
  EXPECT_EQ(out.granted, std::vector<int64_t>{2});
  EXPECT_EQ(coord.stats().degradations, 1u);
}

TEST(LeaseCoordinatorTest, AcquireAndReleaseAreIdempotent) {
  ConflictTable t = OnePair("E", "F");
  LeaseCoordinator coord(t, {2, 80});
  coord.Acquire(1, "E", 0, 0, 0.0, false);
  // A retransmitted admission re-sends the grant but registers nothing new.
  EXPECT_EQ(coord.Acquire(1, "E", 0, 0, 1.0, false).granted, std::vector<int64_t>{1});
  EXPECT_EQ(coord.stats().acquires, 1u);
  EXPECT_EQ(coord.stats().grants, 2u);
  // Duplicate releases are harmless no-ops.
  coord.Release(1, 0, 0, 2.0);
  EXPECT_TRUE(coord.Release(1, 0, 0, 3.0).fenced == false);
  EXPECT_EQ(coord.stats().expiries, 0u);
}

// ---------------------------------------------------------------------------------------
// Trace checker unit tests
// ---------------------------------------------------------------------------------------

ExecutionTrace ThreeSiteTrace(std::vector<TraceOp> ops,
                              std::vector<std::vector<int64_t>> orders) {
  ExecutionTrace trace;
  trace.Clear(static_cast<int>(orders.size()));
  trace.ops = std::move(ops);
  trace.site_order = std::move(orders);
  return trace;
}

TEST(TraceCheckTest, CleanHistoryPasses) {
  ExecutionTrace trace = ThreeSiteTrace({{1, "E", 0, 0}, {2, "F", 1, 0}},
                                        {{1, 2}, {1, 2}, {1, 2}});
  TraceCheckResult res = CheckTrace(trace, OnePair("E", "F"));
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.ops, 2u);
  EXPECT_EQ(res.pairs_checked, 1u);
}

TEST(TraceCheckTest, ConflictOrderCycleIsReportedWithWitness) {
  // Site 0 applied op 1 before op 2; site 1 applied them the other way around.
  ExecutionTrace trace = ThreeSiteTrace({{1, "E", 0, 0}, {2, "F", 1, 0}},
                                        {{1, 2}, {2, 1}, {1, 2}});
  TraceCheckResult res = CheckTrace(trace, OnePair("E", "F"));
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.violations, 1u);
  ASSERT_TRUE(res.has_witness);
  EXPECT_EQ(res.first.kind, TraceViolation::Kind::kConflictOrder);
  std::set<std::string> witness_eps{res.first.endpoint_a, res.first.endpoint_b};
  EXPECT_EQ(witness_eps, (std::set<std::string>{"E", "F"}));
  std::set<int64_t> witness_ops{res.first.op_a, res.first.op_b};
  EXPECT_EQ(witness_ops, (std::set<int64_t>{1, 2}));
  EXPECT_NE(res.first.site_a, res.first.site_b);
  EXPECT_FALSE(res.first.Describe().empty());

  // The same disagreement is invisible — and legal — without the restriction.
  EXPECT_TRUE(CheckTrace(trace, OnePair("E", "X")).ok());
}

TEST(TraceCheckTest, SelfPairDisagreementIsAViolation) {
  ExecutionTrace trace = ThreeSiteTrace({{1, "E", 0, 0}, {2, "E", 1, 0}},
                                        {{1, 2}, {2, 1}, {1, 2}});
  EXPECT_FALSE(CheckTrace(trace, OnePair("E", "E")).ok());
  EXPECT_TRUE(CheckTrace(trace, OnePair("F", "F")).ok());
}

TEST(TraceCheckTest, SessionOrderBreakIsReportedEvenWithoutRestrictions) {
  // Both ops originate at site 0 with sequence 0 then 1, but site 1 applied them
  // backwards — a per-origin FIFO violation independent of any restriction set.
  ExecutionTrace trace = ThreeSiteTrace({{1, "E", 0, 0}, {2, "E", 0, 1}},
                                        {{1, 2}, {2, 1}, {1, 2}});
  ConflictTable empty;
  TraceCheckResult res = CheckTrace(trace, empty);
  EXPECT_FALSE(res.ok());
  ASSERT_TRUE(res.has_witness);
  EXPECT_EQ(res.first.kind, TraceViolation::Kind::kSessionOrder);
  EXPECT_EQ(res.first.site_b, 0);  // the shared origin
}

TEST(TraceCheckTest, TotalModeChecksEveryEndpointPair) {
  ExecutionTrace trace = ThreeSiteTrace({{1, "E", 0, 0}, {2, "F", 1, 0}},
                                        {{1, 2}, {2, 1}, {1, 2}});
  ConflictTable total;
  total.SetTotal(true);
  EXPECT_FALSE(CheckTrace(trace, total).ok());
}

TEST(TraceCheckTest, SitesMissingAnOperationAreSkipped) {
  // Site 1 and 2 never applied op 2 (e.g. it committed right at the crash horizon):
  // no cross-site pair is comparable, so nothing can be (dis)agreed on.
  ExecutionTrace trace =
      ThreeSiteTrace({{1, "E", 0, 0}, {2, "F", 1, 0}}, {{1, 2}, {1}, {1}});
  TraceCheckResult res = CheckTrace(trace, OnePair("E", "F"));
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.pairs_checked, 1u);  // comparable at site 0 only — one reference site
}

// ---------------------------------------------------------------------------------------
// Environment knobs
// ---------------------------------------------------------------------------------------

struct ScopedEnv {
  ScopedEnv(const char* name, const char* value) : name_(name) {
    setenv(name, value, 1);
  }
  ~ScopedEnv() { unsetenv(name_); }
  const char* name_;
};

TEST(EnforceEnvTest, KnobsOverrideDefaults) {
  ScopedEnv e1("NOCTUA_ENFORCE", "1");
  ScopedEnv e2("NOCTUA_ENFORCE_SHARDS", "8");
  ScopedEnv e3("NOCTUA_ENFORCE_LEASE_MS", "120.5");
  EnforceOptions opts = ApplyEnforceEnv();
  EXPECT_TRUE(opts.enabled);
  EXPECT_EQ(opts.num_shards, 8);
  EXPECT_DOUBLE_EQ(opts.lease_ms, 120.5);
}

TEST(EnforceEnvTest, UnsetKnobsKeepTheBase) {
  EnforceOptions base;
  base.enabled = true;
  base.num_shards = 3;
  EnforceOptions opts = ApplyEnforceEnv(base);
  EXPECT_TRUE(opts.enabled);
  EXPECT_EQ(opts.num_shards, 3);
  EXPECT_DOUBLE_EQ(opts.lease_ms, base.lease_ms);
}

TEST(EnforceEnvDeathTest, JunkValuesFailFast) {
  ScopedEnv e("NOCTUA_ENFORCE", "yes");
  EXPECT_DEATH(ApplyEnforceEnv(), "NOCTUA_ENFORCE");
}

TEST(EnforceEnvDeathTest, NonIntegerShardsFailFast) {
  ScopedEnv e("NOCTUA_ENFORCE_SHARDS", "4x");
  EXPECT_DEATH(ApplyEnforceEnv(), "NOCTUA_ENFORCE_SHARDS");
}

TEST(EnforceEnvDeathTest, OutOfRangeShardsFailFast) {
  ScopedEnv e("NOCTUA_ENFORCE_SHARDS", "65");
  EXPECT_DEATH(ApplyEnforceEnv(), "outside");
}

TEST(EnforceEnvDeathTest, NonPositiveLeaseFailsFast) {
  ScopedEnv e("NOCTUA_ENFORCE_LEASE_MS", "0");
  EXPECT_DEATH(ApplyEnforceEnv(), "NOCTUA_ENFORCE_LEASE_MS");
}

// ---------------------------------------------------------------------------------------
// End-to-end: enforced simulation runs across the chaos grid
// ---------------------------------------------------------------------------------------

struct PlanCase {
  const char* name;
  FaultPlan plan;
};

// The chaos harness's three fault regimes (tests/chaos_test.cc), reused verbatim so the
// enforcement layer faces exactly the conditions the omniscient protocol is proven on.
std::vector<PlanCase> ChaosPlans() {
  std::vector<PlanCase> plans;
  plans.push_back({"lossy", FaultPlan::Lossy(/*drop=*/0.08, /*duplicate=*/0.05)});
  plans.push_back({"jittery", FaultPlan::Jittery(/*jitter_ms=*/2.0, /*reorder=*/0.25,
                                                 /*spike=*/0.05, /*spike_mean_ms=*/10.0)});
  FaultPlan crashy = FaultPlan::CrashRestart(/*site=*/2, /*at_ms=*/80, /*restart_ms=*/160,
                                             /*drop=*/0.02);
  crashy.coordinator_outages.push_back({200, 240});
  plans.push_back({"crashy", crashy});
  return plans;
}

// Conflict table for one evaluated app: the verifier's restriction set for the fast
// apps, the syntactic over-approximation for the two SMT-heavy ones (same policy as the
// chaos harness).
ConflictTable ConflictsFor(const app::App& a, const std::string& name,
                           const analyzer::AnalysisResult& res) {
  auto eff = res.EffectfulPaths();
  if (name == "Zhihu" || name == "OwnPhotos") {
    return ConservativeConflicts(a.schema(), eff);
  }
  verifier::RestrictionReport report = verifier::AnalyzeRestrictions(
      verifier::Checker(a.schema()), eff, {}, res.paths);
  ConflictTable table;
  for (const auto& v : report.pairs) {
    if (v.Restricted()) {
      table.AddPair(v.p.substr(0, v.p.find('#')), v.q.substr(0, v.q.find('#')));
    }
  }
  return table;
}

SimResult RunEnforced(const app::App& a, const analyzer::AnalysisResult& res,
                      const ConflictTable& conflicts, const FaultPlan& plan,
                      uint64_t seed) {
  SimOptions options;
  options.duration_ms = 250;
  options.write_ratio = 0.5;
  options.seed = seed;
  options.faults = plan;
  options.enforce.enabled = true;
  Simulator sim(a.schema(), res.paths, conflicts, options);
  return sim.Run();
}

class EnforcedGridTest : public ::testing::TestWithParam<int> {};

TEST_P(EnforcedGridTest, FullRestrictionSetYieldsViolationFreeTracesEverywhere) {
  auto entries = apps::EvaluatedApps();
  const auto& entry = entries[GetParam()];
  app::App a = entry.make();
  analyzer::AnalysisResult res = analyzer::AnalyzeApp(a);
  ConflictTable conflicts = ConflictsFor(a, entry.name, res);

  for (const PlanCase& pc : ChaosPlans()) {
    for (uint64_t seed : {11u, 22u, 33u}) {
      SCOPED_TRACE(::testing::Message()
                   << entry.name << " plan=" << pc.name << " seed=" << seed);
      SimResult result = RunEnforced(a, res, conflicts, pc.plan, seed);
      EXPECT_TRUE(result.converged) << "replicas diverged under enforcement";
      EXPECT_GT(result.completed_requests, 0u) << "enforcement lost liveness";
      EXPECT_GT(result.lease_acquires, 0u) << "the lease coordinator was never engaged";
      EXPECT_EQ(result.conflict_violations, 0u)
          << "conflicting operations were concurrently active";
      TraceCheckResult check = CheckTrace(result.trace, conflicts);
      EXPECT_TRUE(check.ok()) << "trace checker found: "
                              << (check.has_witness ? check.first.Describe() : "?");
      EXPECT_GT(check.ops, 0u) << "no committed writes were recorded";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, EnforcedGridTest, ::testing::Range(0, 6));

// The mutation half of the oracle: for every bundled app, removing one computed
// restriction from the *enforced* table must produce a history that the checker —
// validating against the *full* table — rejects with a concrete witness, on some
// (plan, seed) of the grid. Under the jittery plan concurrent commits of an
// unrestricted-by-mistake pair routinely land in opposite orders at their two origins.
class MutationTest : public ::testing::TestWithParam<int> {};

TEST_P(MutationTest, DroppingAnyOneRestrictionIsDetectedByTheTraceChecker) {
  auto entries = apps::EvaluatedApps();
  const auto& entry = entries[GetParam()];
  app::App a = entry.make();
  analyzer::AnalysisResult res = analyzer::AnalyzeApp(a);
  ConflictTable full = ConflictsFor(a, entry.name, res);
  ASSERT_GT(full.size(), 0u) << entry.name << " has an empty restriction set";

  FaultPlan jittery = FaultPlan::Jittery(2.0, 0.25, 0.05, 10.0);
  // Try the most detectable mutants first: a dropped self-pair (E, E) materializes as
  // soon as one hot endpoint commits concurrently from two sites, while a cross pair
  // needs traffic on both endpoints — which the conservative tables of the SMT-heavy
  // apps cannot guarantee within the run budget.
  std::vector<std::pair<std::string, std::string>> candidates;
  for (const auto& pr : full.pairs()) {
    if (pr.first == pr.second) {
      candidates.push_back(pr);
    }
  }
  for (const auto& pr : full.pairs()) {
    if (pr.first != pr.second) {
      candidates.push_back(pr);
    }
  }
  bool detected = false;
  int runs = 0;
  for (const auto& [p, q] : candidates) {
    ConflictTable mutant = full;
    ASSERT_TRUE(mutant.RemovePair(p, q));
    for (uint64_t seed : {11u, 22u, 33u}) {
      ++runs;
      SimResult result = RunEnforced(a, res, mutant, jittery, seed);
      TraceCheckResult check = CheckTrace(result.trace, full);
      if (!check.ok()) {
        ASSERT_TRUE(check.has_witness);
        if (check.first.kind == TraceViolation::Kind::kConflictOrder) {
          // Only (p, q) went unenforced, so the cycle must be on exactly that pair.
          std::set<std::string> witness{check.first.endpoint_a, check.first.endpoint_b};
          EXPECT_EQ(witness, (std::set<std::string>{p, q}))
              << "witness names a pair other than the dropped one: "
              << check.first.Describe();
        }
        detected = true;
        break;
      }
    }
    if (detected || runs >= 24) {
      break;
    }
  }
  EXPECT_TRUE(detected)
      << entry.name << ": no dropped restriction was caught within " << runs << " runs";
}

INSTANTIATE_TEST_SUITE_P(Apps, MutationTest, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------------------
// Fault-mode specifics: expiry, fencing, degradation
// ---------------------------------------------------------------------------------------

TEST(EnforcedSimTest, CrashedHoldersAreReclaimedByLeaseExpiry) {
  app::App a = apps::MakeSmallBankApp();
  analyzer::AnalysisResult res = analyzer::AnalyzeApp(a);
  ConflictTable conflicts = ConflictsFor(a, "SmallBank", res);
  SimOptions options;
  options.duration_ms = 300;
  options.write_ratio = 0.5;
  options.faults = FaultPlan::CrashRestart(/*site=*/2, /*at_ms=*/80, /*restart_ms=*/200);
  options.enforce.enabled = true;
  options.enforce.lease_ms = 40.0;  // shorter than the 120 ms downtime
  Simulator sim(a.schema(), res.paths, conflicts, options);
  SimResult result = sim.Run();
  EXPECT_GT(result.lease_expiries, 0u)
      << "the dead cohort's locks were never reclaimed by expiry";
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.conflict_violations, 0u);
  TraceCheckResult check = CheckTrace(result.trace, conflicts);
  EXPECT_TRUE(check.ok()) << (check.has_witness ? check.first.Describe() : "");
}

TEST(EnforcedSimTest, EpochFencingRejectsPreCrashGhostMessages) {
  // A crash with a fast restart on a duplicating, spiky network: delayed copies of the
  // old incarnation's messages arrive after the new epoch announced itself and must be
  // fenced, not processed. The exact seed where a straggler survives long enough varies,
  // so scan a few — every run must stay safe either way.
  app::App a = apps::MakeSmallBankApp();
  analyzer::AnalysisResult res = analyzer::AnalyzeApp(a);
  ConflictTable conflicts = ConflictsFor(a, "SmallBank", res);
  FaultPlan plan = FaultPlan::Jittery(2.0, 0.25, 0.3, 15.0);
  plan.link.duplicate = 0.3;
  plan.crashes.push_back({/*site=*/2, /*at_ms=*/80, /*restart_ms=*/92});

  uint64_t total_fenced = 0;
  for (uint64_t seed = 1; seed <= 12 && total_fenced == 0; ++seed) {
    SimOptions options;
    options.duration_ms = 250;
    options.write_ratio = 0.5;
    options.seed = seed;
    options.faults = plan;
    options.enforce.enabled = true;
    Simulator sim(a.schema(), res.paths, conflicts, options);
    SimResult result = sim.Run();
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.conflict_violations, 0u);
    TraceCheckResult check = CheckTrace(result.trace, conflicts);
    EXPECT_TRUE(check.ok()) << (check.has_witness ? check.first.Describe() : "");
    total_fenced += result.fencing_rejections;
  }
  EXPECT_GT(total_fenced, 0u) << "no stale-epoch message was ever fenced";
}

TEST(EnforcedSimTest, ShardOutageDegradesToStrongConsistencyAndStaysSafe) {
  app::App a = apps::MakeSmallBankApp();
  analyzer::AnalysisResult res = analyzer::AnalyzeApp(a);
  ConflictTable conflicts = ConflictsFor(a, "SmallBank", res);
  SimOptions options;
  options.duration_ms = 300;
  options.write_ratio = 0.5;
  options.enforce.enabled = true;
  options.enforce.num_shards = 2;
  options.enforce.degrade_after_retries = 3;
  // Every lock shard unreachable for 100 ms: fine-grained admission cannot proceed, so
  // ops must burn their backoff budget and fall back to the exclusive latch.
  options.enforce.shard_outages.push_back({0, 60.0, 160.0});
  options.enforce.shard_outages.push_back({1, 60.0, 160.0});
  Simulator sim(a.schema(), res.paths, conflicts, options);
  SimResult result = sim.Run();
  EXPECT_GT(result.degradations, 0u) << "no op ever degraded despite a full shard outage";
  EXPECT_GT(result.completed_requests, 0u);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.conflict_violations, 0u);
  TraceCheckResult check = CheckTrace(result.trace, conflicts);
  EXPECT_TRUE(check.ok()) << (check.has_witness ? check.first.Describe() : "");
}

TEST(EnforcedSimTest, CoordinatorOutageFailoverUnderEveryPreset) {
  // Whole-service outages (FaultPlan's coordinator_outages) on top of each preset: the
  // enforcement protocol must ride them out with retries and stay safe and live.
  app::App a = apps::MakeSmallBankApp();
  analyzer::AnalysisResult res = analyzer::AnalyzeApp(a);
  ConflictTable conflicts = ConflictsFor(a, "SmallBank", res);
  for (const PlanCase& pc : ChaosPlans()) {
    FaultPlan plan = pc.plan;
    if (plan.coordinator_outages.empty()) {
      plan.coordinator_outages.push_back({100, 140});
    }
    SCOPED_TRACE(pc.name);
    SimResult result = RunEnforced(a, res, conflicts, plan, /*seed=*/11);
    EXPECT_TRUE(result.converged);
    EXPECT_GT(result.completed_requests, 0u);
    EXPECT_EQ(result.conflict_violations, 0u);
    TraceCheckResult check = CheckTrace(result.trace, conflicts);
    EXPECT_TRUE(check.ok()) << (check.has_witness ? check.first.Describe() : "");
  }
}

}  // namespace
}  // namespace noctua::repl
