// Unit tests for the SMT substrate: sorts, term construction/simplification, evaluation,
// and the solver backends (every solver test runs against dfs, cdcl, and portfolio).
#include <gtest/gtest.h>

#include <memory>

#include "src/smt/backend.h"
#include "src/smt/eval.h"
#include "src/smt/solver.h"
#include "src/smt/sort.h"
#include "src/smt/term.h"

namespace noctua::smt {
namespace {

class TermTest : public ::testing::Test {
 protected:
  TermFactory f;
};

TEST(SortTest, ScalarSingletons) {
  EXPECT_EQ(BoolSort().get(), BoolSort().get());
  EXPECT_EQ(IntSort().get(), IntSort().get());
  EXPECT_TRUE(SortEq(RefSort(3), RefSort(3)));
  EXPECT_FALSE(SortEq(RefSort(3), RefSort(4)));
}

TEST(SortTest, CompositeStructure) {
  Sort arr = ArraySort(RefSort(0), IntSort());
  EXPECT_TRUE(arr->is_array());
  EXPECT_TRUE(SortEq(arr->index_sort(), RefSort(0)));
  EXPECT_TRUE(SortEq(arr->element_sort(), IntSort()));
  EXPECT_TRUE(SetSort(RefSort(1))->is_set());
  EXPECT_FALSE(ArraySort(RefSort(1), IntSort())->is_set());
}

TEST(SortTest, PairRequiresRefs) {
  Sort p = PairSort(RefSort(0), RefSort(1));
  EXPECT_TRUE(p->is_pair());
  EXPECT_TRUE(p->is_finite_domain());
  EXPECT_FALSE(IntSort()->is_finite_domain());
}

TEST(SortTest, ToStringIsReadable) {
  EXPECT_EQ(RefSort(2)->ToString(), "Ref<2>");
  EXPECT_EQ(ArraySort(RefSort(0), BoolSort())->ToString(), "Array<Ref<0>,Bool>");
}

TEST_F(TermTest, HashConsingMakesEqualTermsPointerEqual) {
  Term a = f.Add(f.Const("x", IntSort()), f.IntLit(1));
  Term b = f.Add(f.Const("x", IntSort()), f.IntLit(1));
  EXPECT_EQ(a, b);
}

TEST_F(TermTest, ConstantFolding) {
  EXPECT_EQ(f.Add(f.IntLit(2), f.IntLit(3)), f.IntLit(5));
  EXPECT_EQ(f.Sub(f.IntLit(2), f.IntLit(3)), f.IntLit(-1));
  EXPECT_EQ(f.Mul(f.IntLit(4), f.IntLit(3)), f.IntLit(12));
  EXPECT_EQ(f.Neg(f.IntLit(7)), f.IntLit(-7));
  EXPECT_EQ(f.Concat(f.StrLit("ab"), f.StrLit("cd")), f.StrLit("abcd"));
  EXPECT_EQ(f.Lt(f.IntLit(1), f.IntLit(2)), f.True());
  EXPECT_EQ(f.Le(f.IntLit(3), f.IntLit(2)), f.False());
}

TEST_F(TermTest, NeutralElements) {
  Term x = f.Const("x", IntSort());
  EXPECT_EQ(f.Add(x, f.IntLit(0)), x);
  EXPECT_EQ(f.Mul(x, f.IntLit(1)), x);
  EXPECT_EQ(f.Mul(x, f.IntLit(0)), f.IntLit(0));
  EXPECT_EQ(f.Sub(x, x), f.IntLit(0));
  Term s = f.Const("s", StringSort());
  EXPECT_EQ(f.Concat(s, f.StrLit("")), s);
}

TEST_F(TermTest, BooleanSimplification) {
  Term p = f.Const("p", BoolSort());
  EXPECT_EQ(f.And(p, f.True()), p);
  EXPECT_EQ(f.And(p, f.False()), f.False());
  EXPECT_EQ(f.Or(p, f.False()), p);
  EXPECT_EQ(f.Or(p, f.True()), f.True());
  EXPECT_EQ(f.Not(f.Not(p)), p);
  EXPECT_EQ(f.And(p, f.Not(p)), f.False());
  EXPECT_EQ(f.Or(p, f.Not(p)), f.True());
  EXPECT_EQ(f.And(p, p), p);
}

TEST_F(TermTest, AndFlattens) {
  Term p = f.Const("p", BoolSort());
  Term q = f.Const("q", BoolSort());
  Term r = f.Const("r", BoolSort());
  Term nested = f.And(f.And(p, q), r);
  EXPECT_EQ(nested->kind(), TermKind::kAnd);
  EXPECT_EQ(nested->children().size(), 3u);
}

TEST_F(TermTest, EqSimplification) {
  Term x = f.Const("x", IntSort());
  EXPECT_EQ(f.Eq(x, x), f.True());
  EXPECT_EQ(f.Eq(f.IntLit(1), f.IntLit(1)), f.True());
  EXPECT_EQ(f.Eq(f.IntLit(1), f.IntLit(2)), f.False());
  EXPECT_EQ(f.Eq(f.StrLit("a"), f.StrLit("b")), f.False());
  // Equality is canonically ordered, so both orders intern to the same term.
  Term y = f.Const("y", IntSort());
  EXPECT_EQ(f.Eq(x, y), f.Eq(y, x));
}

TEST_F(TermTest, TupleProjAndWith) {
  Term t = f.MkTuple({f.IntLit(1), f.StrLit("a")});
  EXPECT_EQ(f.Proj(t, 0), f.IntLit(1));
  EXPECT_EQ(f.Proj(t, 1), f.StrLit("a"));
  Term t2 = f.TupleWith(t, 0, f.IntLit(9));
  EXPECT_EQ(f.Proj(t2, 0), f.IntLit(9));
  EXPECT_EQ(f.Proj(t2, 1), f.StrLit("a"));
}

TEST_F(TermTest, TupleEqDecomposes) {
  Term a = f.MkTuple({f.Const("x", IntSort()), f.IntLit(1)});
  Term b = f.MkTuple({f.IntLit(5), f.IntLit(1)});
  Term eq = f.Eq(a, b);
  // (x, 1) == (5, 1)  simplifies to x == 5.
  EXPECT_EQ(eq, f.Eq(f.Const("x", IntSort()), f.IntLit(5)));
}

TEST_F(TermTest, SelectOverStore) {
  Sort arr_sort = ArraySort(RefSort(0), IntSort());
  Term a = f.Const("a", arr_sort);
  Term i = f.RefLit(RefSort(0), 0);
  Term j = f.RefLit(RefSort(0), 1);
  Term stored = f.Store(a, i, f.IntLit(42));
  EXPECT_EQ(f.Select(stored, i), f.IntLit(42));
  EXPECT_EQ(f.Select(stored, j), f.Select(a, j));
}

TEST_F(TermTest, SelectOverConstArray) {
  Term k = f.ConstArray(RefSort(0), f.IntLit(7));
  EXPECT_EQ(f.Select(k, f.Const("i", RefSort(0))), f.IntLit(7));
}

TEST_F(TermTest, StoreOfSameSelectIsIdentity) {
  Sort arr_sort = ArraySort(RefSort(0), IntSort());
  Term a = f.Const("a", arr_sort);
  Term i = f.Const("i", RefSort(0));
  EXPECT_EQ(f.Store(a, i, f.Select(a, i)), a);
}

TEST_F(TermTest, LambdaBetaReduction) {
  Term v = f.NewBoundVar(RefSort(0));
  Term lam = f.ArrayLambda(v, f.Add(f.Select(f.Const("ord", ArraySort(RefSort(0), IntSort())), v),
                                    f.IntLit(1)));
  Term idx = f.RefLit(RefSort(0), 1);
  Term sel = f.Select(lam, idx);
  // select(λx. ord[x]+1, #1) beta-reduces to ord[#1]+1.
  EXPECT_EQ(sel, f.Add(f.Select(f.Const("ord", ArraySort(RefSort(0), IntSort())), idx),
                       f.IntLit(1)));
}

TEST_F(TermTest, DistinctLiteralFolding) {
  EXPECT_EQ(f.Distinct({f.IntLit(1), f.IntLit(2), f.IntLit(3)}), f.True());
  EXPECT_EQ(f.Distinct({f.IntLit(1), f.IntLit(1)}), f.False());
  EXPECT_EQ(f.Distinct({f.IntLit(1)}), f.True());
}

TEST_F(TermTest, PairAccessors) {
  Term p = f.MkPair(f.RefLit(RefSort(0), 1), f.RefLit(RefSort(1), 0));
  EXPECT_EQ(f.Fst(p), f.RefLit(RefSort(0), 1));
  EXPECT_EQ(f.Snd(p), f.RefLit(RefSort(1), 0));
}

// --- Evaluation ---------------------------------------------------------------------------

class EvalTest : public ::testing::Test {
 protected:
  Value EvalClosed(Term t) {
    Scope scope(2);
    AtomTable atoms(scope, {t});
    std::vector<Value> empty_assignment(atoms.size());
    Evaluator ev(scope, atoms, empty_assignment);
    return ev.Eval(t);
  }

  TermFactory f;
};

TEST_F(EvalTest, GroundArithmetic) {
  // Build a non-simplified ground term by mixing a const that cancels.
  Term t = f.Add(f.Mul(f.IntLit(3), f.IntLit(4)), f.IntLit(5));
  Value v = EvalClosed(t);
  EXPECT_EQ(v.int_v(), 17);
}

TEST_F(EvalTest, UnknownConstPropagates) {
  Term x = f.Const("x", IntSort());
  Value v = EvalClosed(f.Add(x, f.IntLit(1)));
  EXPECT_TRUE(v.is_unknown());
}

TEST_F(EvalTest, ThreeValuedAndShortCircuits) {
  Term x = f.Const("x", BoolSort());
  // x AND false is false even though x is unknown; built via Intern path (no simplifier)
  // would be ideal, but the simplifier already folds this — evaluate Or instead.
  Value v = EvalClosed(f.And(x, f.Const("y", BoolSort())));
  EXPECT_TRUE(v.is_unknown());
  // Mul by zero short-circuits unknowns.
  Term m = f.Mul(f.Const("k", IntSort()), f.Sub(f.Const("a", IntSort()), f.Const("a", IntSort())));
  EXPECT_EQ(EvalClosed(m).int_v(), 0);
}

TEST_F(EvalTest, ForallOverScope) {
  // forall x:Ref<0>. x == x  -> true (trivially, via simplifier); use a data array.
  Term data = f.Const("d", ArraySort(RefSort(0), IntSort()));
  Term v0 = f.NewBoundVar(RefSort(0));
  Term all_eq = f.Forall(v0, f.Eq(f.Select(data, v0), f.Select(data, v0)));
  EXPECT_EQ(EvalClosed(all_eq).bool_v(), true);
}

TEST_F(EvalTest, CountAndSumOverStoredSets) {
  Sort rs = RefSort(0);
  Term set = f.SetAdd(f.SetAdd(f.EmptySet(rs), f.RefLit(rs, 0)), f.RefLit(rs, 1));
  Term v = f.NewBoundVar(rs);
  Term count = f.Count(v, f.Member(v, set));
  EXPECT_EQ(EvalClosed(count).int_v(), 2);

  Term one_removed = f.SetRemove(set, f.RefLit(rs, 0));
  Term v2 = f.NewBoundVar(rs);
  EXPECT_EQ(EvalClosed(f.Count(v2, f.Member(v2, one_removed))).int_v(), 1);
}

TEST_F(EvalTest, SumAggregatesValues) {
  Sort rs = RefSort(0);
  Term data = f.Store(f.Store(f.ConstArray(rs, f.IntLit(0)), f.RefLit(rs, 0), f.IntLit(10)),
                      f.RefLit(rs, 1), f.IntLit(32));
  Term v = f.NewBoundVar(rs);
  Term sum = f.Sum(v, f.True(), f.Select(data, v));
  EXPECT_EQ(EvalClosed(sum).int_v(), 42);
}

TEST_F(EvalTest, MinMaxAggAndArgExtreme) {
  Sort rs = RefSort(0);
  Term key = f.Store(f.Store(f.ConstArray(rs, f.IntLit(0)), f.RefLit(rs, 0), f.IntLit(5)),
                     f.RefLit(rs, 1), f.IntLit(3));
  Term v1 = f.NewBoundVar(rs);
  EXPECT_EQ(EvalClosed(f.MinAgg(v1, f.True(), f.Select(key, v1))).int_v(), 3);
  Term v2 = f.NewBoundVar(rs);
  EXPECT_EQ(EvalClosed(f.MaxAgg(v2, f.True(), f.Select(key, v2))).int_v(), 5);
  Term v3 = f.NewBoundVar(rs);
  Value first = EvalClosed(f.ArgExtreme(v3, f.True(), f.Select(key, v3), /*want_max=*/false));
  EXPECT_EQ(first.int_v(), 1);  // element #1 has the smaller key
  Term v4 = f.NewBoundVar(rs);
  Value last = EvalClosed(f.ArgExtreme(v4, f.True(), f.Select(key, v4), /*want_max=*/true));
  EXPECT_EQ(last.int_v(), 0);
}

TEST_F(EvalTest, EmptyAggregatesDefaultToZero) {
  Term v = f.NewBoundVar(RefSort(0));
  EXPECT_EQ(EvalClosed(f.Sum(v, f.False(), f.IntLit(9))).int_v(), 0);
}

TEST_F(EvalTest, SetOperations) {
  Sort rs = RefSort(0);
  Term a = f.SetAdd(f.EmptySet(rs), f.RefLit(rs, 0));
  Term b = f.SetAdd(f.EmptySet(rs), f.RefLit(rs, 1));
  Term u = f.SetUnion(a, b);
  Term v = f.NewBoundVar(rs);
  EXPECT_EQ(EvalClosed(f.Count(v, f.Member(v, u))).int_v(), 2);
  EXPECT_EQ(EvalClosed(f.SetIsEmpty(f.SetIntersect(a, b))).bool_v(), true);
  EXPECT_EQ(EvalClosed(f.SetSubset(a, u)).bool_v(), true);
  EXPECT_EQ(EvalClosed(f.SetSubset(u, a)).bool_v(), false);
  EXPECT_EQ(EvalClosed(f.SetEq(f.SetDifference(u, b), a)).bool_v(), true);
}

TEST(AtomTableTest, DecomposesCompositeConstants) {
  TermFactory f;
  Scope scope(2);
  Sort obj = TupleSort({IntSort(), StringSort()});
  Term data = f.Const("data", ArraySort(RefSort(0), obj));
  Term ids = f.Const("ids", SetSort(RefSort(0)));
  Term x = f.Const("x", IntSort());
  AtomTable atoms(scope, {f.And(f.Member(f.Const("r", RefSort(0)), ids),
                                f.Eq(f.Proj(f.Select(data, f.Const("r", RefSort(0))), 0), x))});
  // r: 1 atom; ids: 2 bool atoms; data: 2 elems * 2 fields = 4 atoms; x: 1 atom.
  EXPECT_EQ(atoms.size(), 8u);
  EXPECT_GE(atoms.Find(ids, 1, -1), 0);
  EXPECT_GE(atoms.Find(data, 0, 1), 0);
  EXPECT_EQ(atoms.Find(data, 0, 5), -1);
}

// --- Solver -------------------------------------------------------------------------------

// Every solver-behavior test runs against each backend: the same queries must get the
// same verdicts from the model finder, the CDCL backend, and the portfolio race.
class SolverTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  SolveResult Check(const std::vector<Term>& assertions) {
    options.backend = GetParam();
    std::unique_ptr<SolverBackend> backend = MakeBackend(options);
    last_model.values.clear();
    backend->AssertAll(assertions);
    SolveResult r = backend->Check(f);
    if (r == SolveResult::kSat) {
      last_model = backend->model();
    }
    return r;
  }

  TermFactory f;
  SolverOptions options;
  SmtModel last_model;
};

TEST_P(SolverTest, TrivialSatAndUnsat) {
  Term x = f.Const("x", IntSort());
  EXPECT_EQ(Check({f.Eq(x, f.IntLit(3))}), SolveResult::kSat);
  EXPECT_EQ(Check({f.Eq(x, f.IntLit(3)), f.Eq(x, f.IntLit(4))}), SolveResult::kUnsat);
}

TEST_P(SolverTest, GroundContradiction) {
  EXPECT_EQ(Check({f.Const("p", BoolSort()), f.Not(f.Const("p", BoolSort()))}),
            SolveResult::kUnsat);
}

TEST_P(SolverTest, ArithmeticWitness) {
  Term x = f.Const("x", IntSort());
  Term y = f.Const("y", IntSort());
  // x + y == 3 and x < y has a witness with the harvested domain {.., 2, 3, 4}.
  EXPECT_EQ(Check({f.Eq(f.Add(x, y), f.IntLit(3)), f.Lt(x, y)}), SolveResult::kSat);
}

TEST_P(SolverTest, RefDistinctBeyondScopeIsUnsat) {
  Term a = f.Const("a", RefSort(0));
  Term b = f.Const("b", RefSort(0));
  Term c = f.Const("c", RefSort(0));
  // Scope is 2, so three pairwise-distinct refs cannot exist.
  EXPECT_EQ(Check({f.Distinct({a, b, c})}), SolveResult::kUnsat);
  options.scope.SetModelSize(0, 3);
  EXPECT_EQ(Check({f.Distinct({a, b, c})}), SolveResult::kSat);
}

TEST_P(SolverTest, SetReasoning) {
  Sort rs = RefSort(0);
  Term s = f.Const("s", SetSort(rs));
  Term e = f.Const("e", rs);
  // e ∈ s and s ⊆ ∅ is unsat.
  EXPECT_EQ(Check({f.Member(e, s), f.SetSubset(s, f.EmptySet(rs))}), SolveResult::kUnsat);
  // e ∈ s and s ⊆ {e} is sat.
  EXPECT_EQ(Check({f.Member(e, s), f.SetSubset(s, f.SetAdd(f.EmptySet(rs), e))}),
            SolveResult::kSat);
}

TEST_P(SolverTest, ArrayWellFormedness) {
  // data[i].0 == i for all i, and two members with equal field-0 must be the same element.
  Sort rs = RefSort(0);
  Sort obj = TupleSort({rs, IntSort()});
  Term data = f.Const("data", ArraySort(rs, obj));
  Term ids = f.Const("ids", SetSort(rs));
  Term v = f.NewBoundVar(rs);
  Term wf = f.Forall(v, f.Eq(f.Proj(f.Select(data, v), 0), v));
  Term x = f.Const("x", rs);
  Term y = f.Const("y", rs);
  Term both_in = f.And(f.Member(x, ids), f.Member(y, ids));
  Term same_pk = f.Eq(f.Proj(f.Select(data, x), 0), f.Proj(f.Select(data, y), 0));
  EXPECT_EQ(Check({wf, both_in, same_pk, f.Neq(x, y)}), SolveResult::kUnsat);
}

TEST_P(SolverTest, StringWitnessUsesFreshSymbols) {
  Term s = f.Const("s", StringSort());
  // s != every literal in the formula: satisfiable thanks to fresh symbols.
  EXPECT_EQ(Check({f.Neq(s, f.StrLit("alice")), f.Neq(s, f.StrLit("bob"))}), SolveResult::kSat);
}

TEST_P(SolverTest, TimeoutReturnsUnknown) {
  // A formula engineered to be hard: many int unknowns with only a global constraint that
  // cannot be pruned locally, under a tiny timeout.
  std::vector<Term> xs;
  Term sum = f.IntLit(0);
  for (int i = 0; i < 24; ++i) {
    Term x = f.Const("x" + std::to_string(i), IntSort());
    xs.push_back(x);
    sum = f.Add(sum, f.Mul(x, x));
  }
  options.budget.timeout_seconds = 0.02;
  options.max_int_domain = 8;
  // sum of squares == 9999 is unsatisfiable over the small domain but requires exhausting
  // a large space; with the small timeout the solver must give up.
  SolveResult r = Check({f.Eq(sum, f.IntLit(9999)), f.Lt(xs[0], xs[1])});
  EXPECT_EQ(r, SolveResult::kUnknown);
}

TEST_P(SolverTest, ModelIsReturnedAndConsistent) {
  Term x = f.Const("x", IntSort());
  Term p = f.Const("p", BoolSort());
  ASSERT_EQ(Check({f.Eq(x, f.IntLit(7)), p}), SolveResult::kSat);
  EXPECT_EQ(last_model.values.at("x"), "7");
  EXPECT_EQ(last_model.values.at("p"), "true");
}

TEST_P(SolverTest, CommutativityStyleQuery) {
  // A miniature commutativity check: two increments commute (unsat = no counterexample),
  // increment and assignment do not (sat = counterexample exists).
  Sort rs = RefSort(0);
  Sort obj = TupleSort({IntSort()});
  Term data = f.Const("data", ArraySort(rs, obj));
  Term r1 = f.Const("r1", rs);
  Term r2 = f.Const("r2", rs);

  auto incr = [&](Term d, Term at) {
    return f.Store(d, at, f.MkTuple({f.Add(f.Proj(f.Select(d, at), 0), f.IntLit(1))}));
  };
  auto assign = [&](Term d, Term at, Term v) { return f.Store(d, at, f.MkTuple({v})); };

  // incr;incr vs incr;incr (different order, same ops): always equal.
  Term ab = incr(incr(data, r1), r2);
  Term ba = incr(incr(data, r2), r1);
  Term var = f.NewBoundVar(rs);
  Term differs = f.Not(f.Forall(var, f.Eq(f.Select(ab, var), f.Select(ba, var))));
  EXPECT_EQ(Check({differs}), SolveResult::kUnsat);

  // incr;assign vs assign;incr: differs when r1 == r2.
  Term arg = f.Const("v", IntSort());
  Term pq = assign(incr(data, r1), r2, arg);
  Term qp = incr(assign(data, r2, arg), r1);
  Term var2 = f.NewBoundVar(rs);
  Term differs2 = f.Not(f.Forall(var2, f.Eq(f.Select(pq, var2), f.Select(qp, var2))));
  EXPECT_EQ(Check({differs2}), SolveResult::kSat);
}

INSTANTIATE_TEST_SUITE_P(Backends, SolverTest,
                         ::testing::Values(BackendKind::kDfs, BackendKind::kCdcl,
                                           BackendKind::kPortfolio),
                         [](const ::testing::TestParamInfo<BackendKind>& info) {
                           return std::string(BackendKindName(info.param));
                         });

// Parameterized sweep: solver scope sizes behave consistently, on every backend.
class ScopeSweepTest : public ::testing::TestWithParam<std::tuple<int, BackendKind>> {};

TEST_P(ScopeSweepTest, PigeonholePrinciple) {
  // k+1 pairwise distinct refs never fit in a scope of k; k do.
  auto [k, kind] = GetParam();
  TermFactory f;
  SolverOptions options;
  options.scope = Scope(k);
  options.backend = kind;
  std::vector<Term> refs;
  for (int i = 0; i <= k; ++i) {
    refs.push_back(f.Const("r" + std::to_string(i), RefSort(0)));
  }
  std::unique_ptr<SolverBackend> backend = MakeBackend(options);
  backend->AssertAll({f.Distinct(refs)});
  EXPECT_EQ(backend->Check(f), SolveResult::kUnsat);
  refs.pop_back();
  std::unique_ptr<SolverBackend> backend2 = MakeBackend(options);
  backend2->AssertAll({f.Distinct(refs)});
  EXPECT_EQ(backend2->Check(f), SolveResult::kSat);
}

INSTANTIATE_TEST_SUITE_P(
    Scopes, ScopeSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(BackendKind::kDfs, BackendKind::kCdcl,
                                         BackendKind::kPortfolio)),
    [](const ::testing::TestParamInfo<std::tuple<int, BackendKind>>& info) {
      return "k" + std::to_string(std::get<0>(info.param)) +
             std::string(BackendKindName(std::get<1>(info.param)));
    });

// --- Incremental solving ------------------------------------------------------------------

// Push/Pop round-trips are invisible: after a Pop the assertion stack is exactly the
// pre-Push stack (same interned Terms, same order), and an incremental backend that has
// already solved framed queries answers the next one exactly like a fresh instance fed
// the same goal-first conjunction — same verdict, same model, byte for byte. The second
// framed Check must also report ground-cache reuse for the unchanged frame roots.
TEST(IncrementalBackendTest, PushPopRoundTripMatchesFreshSolve) {
  for (BackendKind kind : {BackendKind::kDfs, BackendKind::kCdcl}) {
    TermFactory f;
    SolverOptions options;
    options.backend = kind;
    options.incremental = Toggle::kOn;

    Sort rs = RefSort(0);
    Sort obj = TupleSort({rs, IntSort()});
    Term data = f.Const("data", ArraySort(rs, obj));
    Term ids = f.Const("ids", SetSort(rs));
    Term v = f.NewBoundVar(rs);
    Term wf = f.Forall(v, f.Eq(f.Proj(f.Select(data, v), 0), v));
    Term x = f.Const("x", rs);
    Term y = f.Const("y", rs);
    Term both_in = f.And(f.Member(x, ids), f.Member(y, ids));
    Term same_pk = f.Eq(f.Proj(f.Select(data, x), 0), f.Proj(f.Select(data, y), 0));

    std::unique_ptr<SolverBackend> inc = MakeBackend(options);
    ASSERT_TRUE(inc->caps().incremental) << BackendKindName(kind);
    inc->AssertAll({wf, both_in});
    const std::vector<Term> frame = inc->assertions();

    inc->Push();
    inc->AddAssertion(same_pk);
    inc->AddAssertion(f.Neq(x, y));
    EXPECT_EQ(inc->Check(f), SolveResult::kUnsat) << BackendKindName(kind);
    inc->Pop();
    EXPECT_EQ(inc->num_frames(), 0u);
    EXPECT_EQ(inc->assertions(), frame);

    inc->Push();
    inc->AddAssertion(f.Eq(x, y));
    SolveResult r = inc->Check(f);
    ASSERT_EQ(r, SolveResult::kSat) << BackendKindName(kind);
    EXPECT_GT(inc->stats().incremental_reuse_hits, 0u) << BackendKindName(kind);
    const std::string inc_model = inc->model().ToString();
    inc->Pop();
    EXPECT_EQ(inc->assertions(), frame);

    // Check() hands the innermost frame to the procedure first, so the fresh twin
    // asserts the goal ahead of the frame.
    std::unique_ptr<SolverBackend> fresh = MakeBackend(options);
    fresh->AssertAll({f.Eq(x, y), wf, both_in});
    ASSERT_EQ(fresh->Check(f), r) << BackendKindName(kind);
    EXPECT_EQ(fresh->model().ToString(), inc_model) << BackendKindName(kind);
  }
}

}  // namespace
}  // namespace noctua::smt
