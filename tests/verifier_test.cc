// Verifier tests: the paper's Table 5 results, the §6.4 case-study pairs, the unique-ID
// optimization ablation (§5.2), the order-encoding ablation (§4.2 / Table 7), and
// differential testing of verdicts against concrete execution.
#include <gtest/gtest.h>

#include <map>

#include "src/analyzer/analyzer.h"
#include "src/apps/apps.h"
#include "src/baseline/specs.h"
#include "src/soir/interp.h"
#include "src/repl/workload.h"
#include "src/support/rng.h"
#include "src/verifier/report.h"

namespace noctua::verifier {
namespace {

std::map<std::string, PairVerdict> ByViewPair(const RestrictionReport& report) {
  std::map<std::string, PairVerdict> out;
  for (const PairVerdict& v : report.pairs) {
    std::string p = v.p.substr(0, v.p.find('#'));
    std::string q = v.q.substr(0, v.q.find('#'));
    out[p + "|" + q] = v;
  }
  return out;
}

class SmallBankVerify : public ::testing::Test {
 protected:
  static const RestrictionReport& Report() {
    static RestrictionReport report = [] {
      app::App a = apps::MakeSmallBankApp();
      auto res = analyzer::AnalyzeApp(a);
      return AnalyzeRestrictions(Checker(a.schema()), res.EffectfulPaths());
    }();
    return report;
  }
};

TEST_F(SmallBankVerify, MatchesPaperTable5) {
  // Paper Table 5: 0 commutativity failures, 4 semantic failures.
  EXPECT_EQ(Report().com_failures(), 0u);
  EXPECT_EQ(Report().sem_failures(), 4u);
  EXPECT_EQ(Report().num_restrictions(), 4u);
  EXPECT_EQ(Report().num_checks(), 10u);  // 4 effectful ops -> 10 unordered pairs
}

TEST_F(SmallBankVerify, ExactRestrictedPairs) {
  auto by_pair = ByViewPair(Report());
  // §6.2: (TransactSavings,TransactSavings), (SendPayment,SendPayment),
  // (Amalgamate,Amalgamate), (Amalgamate,SendPayment).
  EXPECT_TRUE(by_pair.at("TransactSavings|TransactSavings").Restricted());
  EXPECT_TRUE(by_pair.at("SendPayment|SendPayment").Restricted());
  EXPECT_TRUE(by_pair.at("Amalgamate|Amalgamate").Restricted());
  EXPECT_TRUE(by_pair.at("SendPayment|Amalgamate").Restricted());
  EXPECT_FALSE(by_pair.at("DepositChecking|DepositChecking").Restricted());
  EXPECT_FALSE(by_pair.at("DepositChecking|TransactSavings").Restricted());
  EXPECT_FALSE(by_pair.at("DepositChecking|SendPayment").Restricted());
  EXPECT_FALSE(by_pair.at("DepositChecking|Amalgamate").Restricted());
  EXPECT_FALSE(by_pair.at("TransactSavings|SendPayment").Restricted());
  EXPECT_FALSE(by_pair.at("TransactSavings|Amalgamate").Restricted());
}

TEST_F(SmallBankVerify, BaselineSpecFindsSameRestrictionSet) {
  // Table 5: the spec-driven baseline and the analyzer-driven run agree.
  app::App a = apps::MakeSmallBankApp();
  auto spec = baseline::SmallBankSpec(a.schema());
  RestrictionReport spec_report = AnalyzeRestrictions(Checker(a.schema()), spec);
  EXPECT_EQ(spec_report.com_failures(), Report().com_failures());
  EXPECT_EQ(spec_report.sem_failures(), Report().sem_failures());
  EXPECT_EQ(spec_report.num_restrictions(), Report().num_restrictions());
}

class CoursewareVerify : public ::testing::Test {
 protected:
  static const RestrictionReport& Report() {
    static RestrictionReport report = [] {
      app::App a = apps::MakeCoursewareApp();
      auto res = analyzer::AnalyzeApp(a);
      return AnalyzeRestrictions(Checker(a.schema()), res.EffectfulPaths());
    }();
    return report;
  }
};

TEST_F(CoursewareVerify, MatchesPaperTable5) {
  // Paper Table 5: 1 commutativity failure, 1 semantic failure.
  EXPECT_EQ(Report().com_failures(), 1u);
  EXPECT_EQ(Report().sem_failures(), 1u);
  EXPECT_EQ(Report().num_restrictions(), 2u);
}

TEST_F(CoursewareVerify, ExactFailures) {
  auto by_pair = ByViewPair(Report());
  // (AddCourse,DeleteCourse): same-ID race — commutativity (paper §6.2).
  EXPECT_TRUE(OutcomeRestricts(by_pair.at("AddCourse|DeleteCourse").commutativity));
  EXPECT_FALSE(OutcomeRestricts(by_pair.at("AddCourse|DeleteCourse").semantic));
  // (Enroll,DeleteCourse): referential integrity — semantic.
  EXPECT_TRUE(OutcomeRestricts(by_pair.at("Enroll|DeleteCourse").semantic));
  EXPECT_FALSE(OutcomeRestricts(by_pair.at("Enroll|DeleteCourse").commutativity));
  EXPECT_FALSE(by_pair.at("Register|Register").Restricted());
  EXPECT_FALSE(by_pair.at("Enroll|Enroll").Restricted());
}

TEST_F(CoursewareVerify, BaselineSpecAgrees) {
  app::App a = apps::MakeCoursewareApp();
  auto spec = baseline::CoursewareSpec(a.schema());
  RestrictionReport spec_report = AnalyzeRestrictions(Checker(a.schema()), spec);
  EXPECT_EQ(spec_report.num_restrictions(), 2u);
  EXPECT_EQ(spec_report.com_failures(), 1u);
  EXPECT_EQ(spec_report.sem_failures(), 1u);
}

// --- Case study (§6.4) ----------------------------------------------------------------------

class ZhihuCaseStudy : public ::testing::Test {
 protected:
  ZhihuCaseStudy() : app(apps::MakeZhihuApp()) {
    auto res = analyzer::AnalyzeApp(app);
    for (auto& p : res.EffectfulPaths()) {
      paths.push_back(p);
    }
  }

  const soir::CodePath& Find(const std::string& view) const {
    for (const auto& p : paths) {
      if (p.view_name == view) {
        return p;
      }
    }
    NOCTUA_UNREACHABLE("no path for view " + view);
  }

  app::App app;
  std::vector<soir::CodePath> paths;
};

TEST_F(ZhihuCaseStudy, CreateQuestionDoesNotConflictWithItself) {
  // §6.4: thanks to the unique-ID assertion, CreateQuestion self-commutes.
  Checker checker(app.schema(), {});
  const soir::CodePath& create = Find("CreateQuestion");
  EXPECT_EQ(checker.CheckCommutativity(create, create), CheckOutcome::kPass);
  EXPECT_EQ(checker.CheckSemantic(create, create), CheckOutcome::kPass);
}

TEST_F(ZhihuCaseStudy, WithoutUniqueIdOptimizationCreateConflicts) {
  // §6.4: removing the assertion makes CreateQuestion conflict with itself — the two new
  // IDs can collide, writing different titles to the same object.
  CheckerOptions options;
  options.encoder.unique_id_optimization = false;
  Checker checker(app.schema(), options);
  const soir::CodePath& create = Find("CreateQuestion");
  EXPECT_EQ(checker.CheckCommutativity(create, create), CheckOutcome::kFail);
}

TEST_F(ZhihuCaseStudy, FollowQuestionConflictsWithCreateQuestion) {
  // §6.4: FollowQuestion updates the follow counter that CreateQuestion initializes.
  Checker checker(app.schema(), {});
  EXPECT_EQ(checker.CheckCommutativity(Find("CreateQuestion"), Find("FollowQuestion")),
            CheckOutcome::kFail);
}

TEST_F(ZhihuCaseStudy, FollowQuestionConflictsWithItselfSemantically) {
  // §6.4: (user, question) is unique-together, so a preceding FollowQuestion invalidates
  // the precondition of a later one.
  Checker checker(app.schema(), {});
  const soir::CodePath& follow = Find("FollowQuestion");
  EXPECT_EQ(checker.CheckSemantic(follow, follow), CheckOutcome::kFail);
}

// --- Order encoding (§4.2, Table 7) -----------------------------------------------------------

TEST(OrderEncoding, PostGraduationIdenticalWithAndWithoutOrder) {
  // Table 7: PostGraduation uses no order primitives, so disabling the order encoding
  // changes nothing.
  app::App a = apps::MakePostGraduationApp();
  auto res = analyzer::AnalyzeApp(a);
  auto eff = res.EffectfulPaths();
  CheckerOptions with_order;
  with_order.encoder.use_order = true;
  CheckerOptions no_order;
  no_order.encoder.use_order = false;
  RestrictionReport r1 = AnalyzeRestrictions(Checker(a.schema(), with_order), eff);
  RestrictionReport r2 = AnalyzeRestrictions(Checker(a.schema(), no_order), eff);
  EXPECT_EQ(r1.com_failures(), r2.com_failures());
  EXPECT_EQ(r1.sem_failures(), r2.sem_failures());
  EXPECT_EQ(r1.num_restrictions(), r2.num_restrictions());
}

TEST(OrderEncoding, OrderUsingPathsAreConservativeWithoutOrder) {
  // A pair involving first()/order_by() must be restricted (unsupported) when the order
  // encoding is disabled — the coverage the paper's design adds (§2.2.2).
  app::App a = apps::MakeTodoApp();
  auto res = analyzer::AnalyzeApp(a);
  const soir::CodePath* order_path = nullptr;
  for (const auto& p : res.paths) {
    if (Encoder::UsesOrderPrimitives(p)) {
      order_path = &p;
      break;
    }
  }
  ASSERT_NE(order_path, nullptr);
  CheckerOptions no_order;
  no_order.encoder.use_order = false;
  no_order.independence_prefilter = false;
  Checker checker(a.schema(), no_order);
  EXPECT_EQ(checker.CheckCommutativity(*order_path, *order_path),
            CheckOutcome::kUnsupported);
  CheckerOptions with_order;
  with_order.independence_prefilter = false;
  Checker checker2(a.schema(), with_order);
  EXPECT_NE(checker2.CheckCommutativity(*order_path, *order_path),
            CheckOutcome::kUnsupported);
}

// --- Differential testing: verifier verdicts vs concrete execution --------------------------

// If the verifier says a pair commutes, executing the two operations in both orders from
// random common states must produce identical databases and commit patterns. Restricted
// pairs are allowed to diverge (that is what the restriction prevents at run time).
class DifferentialTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DifferentialTest, CommutativeVerdictsHoldConcretely) {
  app::App a = GetParam() == std::string("smallbank") ? apps::MakeSmallBankApp()
                                                      : apps::MakeCoursewareApp();
  auto res = analyzer::AnalyzeApp(a);
  auto eff = res.EffectfulPaths();
  RestrictionReport report = AnalyzeRestrictions(Checker(a.schema()), eff);
  std::map<std::string, bool> com_ok;
  for (const PairVerdict& v : report.pairs) {
    com_ok[v.p + "|" + v.q] = !OutcomeRestricts(v.commutativity);
  }

  soir::Interp interp(a.schema());
  Rng rng(2026);
  int divergences = 0;
  int checked = 0;
  for (size_t i = 0; i < eff.size(); ++i) {
    for (size_t j = i; j < eff.size(); ++j) {
      if (!com_ok.at(eff[i].op_name + "|" + eff[j].op_name)) {
        continue;
      }
      for (int trial = 0; trial < 20; ++trial) {
        orm::Database db(&a.schema());
        repl::WorkloadGenerator::SeedDatabase(&db, 3, rng.Next());
        repl::WorkloadGenerator gen(a.schema(), eff, 1.0, rng.Next());
        // Draw both argument vectors against the same initial state; unique-id arguments
        // get distinct fresh IDs thanks to the scratch DB advancing its ID counter.
        orm::Database scratch = db;
        repl::Request rp = gen.ForPath(eff[i], &scratch);
        repl::Request rq = gen.ForPath(eff[j], &scratch);

        // Both operations must be generable from the common state (their preconditions
        // hold at the origin); effects then replay unconditionally in both orders, the
        // operation-transfer semantics the commutativity rule models.
        orm::Database probe_p = db;
        orm::Database probe_q = db;
        if (!interp.Run(*rp.path, rp.args, &probe_p) ||
            !interp.Run(*rq.path, rq.args, &probe_q)) {
          continue;
        }
        orm::Database pq = db;
        interp.Apply(*rp.path, rp.args, &pq);
        interp.Apply(*rq.path, rq.args, &pq);
        orm::Database qp = db;
        interp.Apply(*rq.path, rq.args, &qp);
        interp.Apply(*rp.path, rp.args, &qp);
        ++checked;
        if (!pq.SameState(qp)) {
          ++divergences;
        }
      }
    }
  }
  EXPECT_GT(checked, 0);
  EXPECT_EQ(divergences, 0) << "a pair judged commutative diverged concretely";
}

INSTANTIATE_TEST_SUITE_P(Apps, DifferentialTest,
                         ::testing::Values("smallbank", "courseware"));

}  // namespace
}  // namespace noctua::verifier
