file(REMOVE_RECURSE
  "libnoctua_repl.a"
)
