# Empty dependencies file for noctua_repl.
# This may be replaced when dependencies are built.
