file(REMOVE_RECURSE
  "CMakeFiles/noctua_repl.dir/simulator.cc.o"
  "CMakeFiles/noctua_repl.dir/simulator.cc.o.d"
  "CMakeFiles/noctua_repl.dir/workload.cc.o"
  "CMakeFiles/noctua_repl.dir/workload.cc.o.d"
  "libnoctua_repl.a"
  "libnoctua_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noctua_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
