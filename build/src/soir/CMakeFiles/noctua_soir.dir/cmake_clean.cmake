file(REMOVE_RECURSE
  "CMakeFiles/noctua_soir.dir/ast.cc.o"
  "CMakeFiles/noctua_soir.dir/ast.cc.o.d"
  "CMakeFiles/noctua_soir.dir/interp.cc.o"
  "CMakeFiles/noctua_soir.dir/interp.cc.o.d"
  "CMakeFiles/noctua_soir.dir/printer.cc.o"
  "CMakeFiles/noctua_soir.dir/printer.cc.o.d"
  "CMakeFiles/noctua_soir.dir/schema.cc.o"
  "CMakeFiles/noctua_soir.dir/schema.cc.o.d"
  "libnoctua_soir.a"
  "libnoctua_soir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noctua_soir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
