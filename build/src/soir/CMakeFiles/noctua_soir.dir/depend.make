# Empty dependencies file for noctua_soir.
# This may be replaced when dependencies are built.
