file(REMOVE_RECURSE
  "libnoctua_soir.a"
)
