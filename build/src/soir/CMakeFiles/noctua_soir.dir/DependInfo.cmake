
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soir/ast.cc" "src/soir/CMakeFiles/noctua_soir.dir/ast.cc.o" "gcc" "src/soir/CMakeFiles/noctua_soir.dir/ast.cc.o.d"
  "/root/repo/src/soir/interp.cc" "src/soir/CMakeFiles/noctua_soir.dir/interp.cc.o" "gcc" "src/soir/CMakeFiles/noctua_soir.dir/interp.cc.o.d"
  "/root/repo/src/soir/printer.cc" "src/soir/CMakeFiles/noctua_soir.dir/printer.cc.o" "gcc" "src/soir/CMakeFiles/noctua_soir.dir/printer.cc.o.d"
  "/root/repo/src/soir/schema.cc" "src/soir/CMakeFiles/noctua_soir.dir/schema.cc.o" "gcc" "src/soir/CMakeFiles/noctua_soir.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/noctua_support.dir/DependInfo.cmake"
  "/root/repo/build/src/orm/CMakeFiles/noctua_orm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
