# Empty compiler generated dependencies file for noctua_smt.
# This may be replaced when dependencies are built.
