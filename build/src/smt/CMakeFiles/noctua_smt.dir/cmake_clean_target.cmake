file(REMOVE_RECURSE
  "libnoctua_smt.a"
)
