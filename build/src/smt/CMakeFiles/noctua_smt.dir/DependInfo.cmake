
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smt/eval.cc" "src/smt/CMakeFiles/noctua_smt.dir/eval.cc.o" "gcc" "src/smt/CMakeFiles/noctua_smt.dir/eval.cc.o.d"
  "/root/repo/src/smt/ground.cc" "src/smt/CMakeFiles/noctua_smt.dir/ground.cc.o" "gcc" "src/smt/CMakeFiles/noctua_smt.dir/ground.cc.o.d"
  "/root/repo/src/smt/solver.cc" "src/smt/CMakeFiles/noctua_smt.dir/solver.cc.o" "gcc" "src/smt/CMakeFiles/noctua_smt.dir/solver.cc.o.d"
  "/root/repo/src/smt/sort.cc" "src/smt/CMakeFiles/noctua_smt.dir/sort.cc.o" "gcc" "src/smt/CMakeFiles/noctua_smt.dir/sort.cc.o.d"
  "/root/repo/src/smt/term.cc" "src/smt/CMakeFiles/noctua_smt.dir/term.cc.o" "gcc" "src/smt/CMakeFiles/noctua_smt.dir/term.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/noctua_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
