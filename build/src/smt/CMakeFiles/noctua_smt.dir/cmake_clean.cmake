file(REMOVE_RECURSE
  "CMakeFiles/noctua_smt.dir/eval.cc.o"
  "CMakeFiles/noctua_smt.dir/eval.cc.o.d"
  "CMakeFiles/noctua_smt.dir/ground.cc.o"
  "CMakeFiles/noctua_smt.dir/ground.cc.o.d"
  "CMakeFiles/noctua_smt.dir/solver.cc.o"
  "CMakeFiles/noctua_smt.dir/solver.cc.o.d"
  "CMakeFiles/noctua_smt.dir/sort.cc.o"
  "CMakeFiles/noctua_smt.dir/sort.cc.o.d"
  "CMakeFiles/noctua_smt.dir/term.cc.o"
  "CMakeFiles/noctua_smt.dir/term.cc.o.d"
  "libnoctua_smt.a"
  "libnoctua_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noctua_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
