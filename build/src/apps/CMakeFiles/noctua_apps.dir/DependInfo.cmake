
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/blog.cc" "src/apps/CMakeFiles/noctua_apps.dir/blog.cc.o" "gcc" "src/apps/CMakeFiles/noctua_apps.dir/blog.cc.o.d"
  "/root/repo/src/apps/courseware.cc" "src/apps/CMakeFiles/noctua_apps.dir/courseware.cc.o" "gcc" "src/apps/CMakeFiles/noctua_apps.dir/courseware.cc.o.d"
  "/root/repo/src/apps/ownphotos.cc" "src/apps/CMakeFiles/noctua_apps.dir/ownphotos.cc.o" "gcc" "src/apps/CMakeFiles/noctua_apps.dir/ownphotos.cc.o.d"
  "/root/repo/src/apps/postgraduation.cc" "src/apps/CMakeFiles/noctua_apps.dir/postgraduation.cc.o" "gcc" "src/apps/CMakeFiles/noctua_apps.dir/postgraduation.cc.o.d"
  "/root/repo/src/apps/smallbank.cc" "src/apps/CMakeFiles/noctua_apps.dir/smallbank.cc.o" "gcc" "src/apps/CMakeFiles/noctua_apps.dir/smallbank.cc.o.d"
  "/root/repo/src/apps/todo.cc" "src/apps/CMakeFiles/noctua_apps.dir/todo.cc.o" "gcc" "src/apps/CMakeFiles/noctua_apps.dir/todo.cc.o.d"
  "/root/repo/src/apps/zhihu.cc" "src/apps/CMakeFiles/noctua_apps.dir/zhihu.cc.o" "gcc" "src/apps/CMakeFiles/noctua_apps.dir/zhihu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analyzer/CMakeFiles/noctua_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/soir/CMakeFiles/noctua_soir.dir/DependInfo.cmake"
  "/root/repo/build/src/orm/CMakeFiles/noctua_orm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/noctua_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
