# Empty dependencies file for noctua_apps.
# This may be replaced when dependencies are built.
