file(REMOVE_RECURSE
  "CMakeFiles/noctua_apps.dir/blog.cc.o"
  "CMakeFiles/noctua_apps.dir/blog.cc.o.d"
  "CMakeFiles/noctua_apps.dir/courseware.cc.o"
  "CMakeFiles/noctua_apps.dir/courseware.cc.o.d"
  "CMakeFiles/noctua_apps.dir/ownphotos.cc.o"
  "CMakeFiles/noctua_apps.dir/ownphotos.cc.o.d"
  "CMakeFiles/noctua_apps.dir/postgraduation.cc.o"
  "CMakeFiles/noctua_apps.dir/postgraduation.cc.o.d"
  "CMakeFiles/noctua_apps.dir/smallbank.cc.o"
  "CMakeFiles/noctua_apps.dir/smallbank.cc.o.d"
  "CMakeFiles/noctua_apps.dir/todo.cc.o"
  "CMakeFiles/noctua_apps.dir/todo.cc.o.d"
  "CMakeFiles/noctua_apps.dir/zhihu.cc.o"
  "CMakeFiles/noctua_apps.dir/zhihu.cc.o.d"
  "libnoctua_apps.a"
  "libnoctua_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noctua_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
