file(REMOVE_RECURSE
  "libnoctua_apps.a"
)
