file(REMOVE_RECURSE
  "CMakeFiles/noctua_orm.dir/database.cc.o"
  "CMakeFiles/noctua_orm.dir/database.cc.o.d"
  "libnoctua_orm.a"
  "libnoctua_orm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noctua_orm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
