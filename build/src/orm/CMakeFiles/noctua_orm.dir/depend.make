# Empty dependencies file for noctua_orm.
# This may be replaced when dependencies are built.
