file(REMOVE_RECURSE
  "libnoctua_orm.a"
)
