
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verifier/checker.cc" "src/verifier/CMakeFiles/noctua_verifier.dir/checker.cc.o" "gcc" "src/verifier/CMakeFiles/noctua_verifier.dir/checker.cc.o.d"
  "/root/repo/src/verifier/encoder.cc" "src/verifier/CMakeFiles/noctua_verifier.dir/encoder.cc.o" "gcc" "src/verifier/CMakeFiles/noctua_verifier.dir/encoder.cc.o.d"
  "/root/repo/src/verifier/report.cc" "src/verifier/CMakeFiles/noctua_verifier.dir/report.cc.o" "gcc" "src/verifier/CMakeFiles/noctua_verifier.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/soir/CMakeFiles/noctua_soir.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/noctua_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/orm/CMakeFiles/noctua_orm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/noctua_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
