file(REMOVE_RECURSE
  "libnoctua_verifier.a"
)
