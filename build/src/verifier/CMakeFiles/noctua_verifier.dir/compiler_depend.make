# Empty compiler generated dependencies file for noctua_verifier.
# This may be replaced when dependencies are built.
