file(REMOVE_RECURSE
  "CMakeFiles/noctua_verifier.dir/checker.cc.o"
  "CMakeFiles/noctua_verifier.dir/checker.cc.o.d"
  "CMakeFiles/noctua_verifier.dir/encoder.cc.o"
  "CMakeFiles/noctua_verifier.dir/encoder.cc.o.d"
  "CMakeFiles/noctua_verifier.dir/report.cc.o"
  "CMakeFiles/noctua_verifier.dir/report.cc.o.d"
  "libnoctua_verifier.a"
  "libnoctua_verifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noctua_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
