file(REMOVE_RECURSE
  "CMakeFiles/noctua_baseline.dir/specs.cc.o"
  "CMakeFiles/noctua_baseline.dir/specs.cc.o.d"
  "libnoctua_baseline.a"
  "libnoctua_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noctua_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
