file(REMOVE_RECURSE
  "libnoctua_baseline.a"
)
