# Empty compiler generated dependencies file for noctua_baseline.
# This may be replaced when dependencies are built.
