file(REMOVE_RECURSE
  "libnoctua_support.a"
)
