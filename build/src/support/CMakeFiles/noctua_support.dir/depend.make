# Empty dependencies file for noctua_support.
# This may be replaced when dependencies are built.
