file(REMOVE_RECURSE
  "CMakeFiles/noctua_support.dir/strings.cc.o"
  "CMakeFiles/noctua_support.dir/strings.cc.o.d"
  "CMakeFiles/noctua_support.dir/table.cc.o"
  "CMakeFiles/noctua_support.dir/table.cc.o.d"
  "libnoctua_support.a"
  "libnoctua_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noctua_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
