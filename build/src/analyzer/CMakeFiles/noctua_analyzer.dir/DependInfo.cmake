
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analyzer/analyzer.cc" "src/analyzer/CMakeFiles/noctua_analyzer.dir/analyzer.cc.o" "gcc" "src/analyzer/CMakeFiles/noctua_analyzer.dir/analyzer.cc.o.d"
  "/root/repo/src/analyzer/path_finder.cc" "src/analyzer/CMakeFiles/noctua_analyzer.dir/path_finder.cc.o" "gcc" "src/analyzer/CMakeFiles/noctua_analyzer.dir/path_finder.cc.o.d"
  "/root/repo/src/analyzer/sym.cc" "src/analyzer/CMakeFiles/noctua_analyzer.dir/sym.cc.o" "gcc" "src/analyzer/CMakeFiles/noctua_analyzer.dir/sym.cc.o.d"
  "/root/repo/src/analyzer/trace.cc" "src/analyzer/CMakeFiles/noctua_analyzer.dir/trace.cc.o" "gcc" "src/analyzer/CMakeFiles/noctua_analyzer.dir/trace.cc.o.d"
  "/root/repo/src/analyzer/view_ctx.cc" "src/analyzer/CMakeFiles/noctua_analyzer.dir/view_ctx.cc.o" "gcc" "src/analyzer/CMakeFiles/noctua_analyzer.dir/view_ctx.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/soir/CMakeFiles/noctua_soir.dir/DependInfo.cmake"
  "/root/repo/build/src/orm/CMakeFiles/noctua_orm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/noctua_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
