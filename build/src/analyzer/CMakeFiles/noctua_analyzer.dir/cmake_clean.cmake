file(REMOVE_RECURSE
  "CMakeFiles/noctua_analyzer.dir/analyzer.cc.o"
  "CMakeFiles/noctua_analyzer.dir/analyzer.cc.o.d"
  "CMakeFiles/noctua_analyzer.dir/path_finder.cc.o"
  "CMakeFiles/noctua_analyzer.dir/path_finder.cc.o.d"
  "CMakeFiles/noctua_analyzer.dir/sym.cc.o"
  "CMakeFiles/noctua_analyzer.dir/sym.cc.o.d"
  "CMakeFiles/noctua_analyzer.dir/trace.cc.o"
  "CMakeFiles/noctua_analyzer.dir/trace.cc.o.d"
  "CMakeFiles/noctua_analyzer.dir/view_ctx.cc.o"
  "CMakeFiles/noctua_analyzer.dir/view_ctx.cc.o.d"
  "libnoctua_analyzer.a"
  "libnoctua_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noctua_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
