# Empty compiler generated dependencies file for noctua_analyzer.
# This may be replaced when dependencies are built.
