file(REMOVE_RECURSE
  "libnoctua_analyzer.a"
)
