# Empty compiler generated dependencies file for ablation_unique_id.
# This may be replaced when dependencies are built.
