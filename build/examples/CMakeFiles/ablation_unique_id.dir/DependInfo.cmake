
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/ablation_unique_id.cc" "examples/CMakeFiles/ablation_unique_id.dir/ablation_unique_id.cc.o" "gcc" "examples/CMakeFiles/ablation_unique_id.dir/ablation_unique_id.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/noctua_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/verifier/CMakeFiles/noctua_verifier.dir/DependInfo.cmake"
  "/root/repo/build/src/repl/CMakeFiles/noctua_repl.dir/DependInfo.cmake"
  "/root/repo/build/src/analyzer/CMakeFiles/noctua_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/soir/CMakeFiles/noctua_soir.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/noctua_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/orm/CMakeFiles/noctua_orm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/noctua_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
