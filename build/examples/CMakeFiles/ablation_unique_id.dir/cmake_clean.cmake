file(REMOVE_RECURSE
  "CMakeFiles/ablation_unique_id.dir/ablation_unique_id.cc.o"
  "CMakeFiles/ablation_unique_id.dir/ablation_unique_id.cc.o.d"
  "ablation_unique_id"
  "ablation_unique_id.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_unique_id.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
