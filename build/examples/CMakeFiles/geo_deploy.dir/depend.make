# Empty dependencies file for geo_deploy.
# This may be replaced when dependencies are built.
