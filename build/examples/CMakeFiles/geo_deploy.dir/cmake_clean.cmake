file(REMOVE_RECURSE
  "CMakeFiles/geo_deploy.dir/geo_deploy.cc.o"
  "CMakeFiles/geo_deploy.dir/geo_deploy.cc.o.d"
  "geo_deploy"
  "geo_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
