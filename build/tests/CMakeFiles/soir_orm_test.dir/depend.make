# Empty dependencies file for soir_orm_test.
# This may be replaced when dependencies are built.
