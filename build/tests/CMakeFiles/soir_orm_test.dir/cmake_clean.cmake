file(REMOVE_RECURSE
  "CMakeFiles/soir_orm_test.dir/soir_orm_test.cc.o"
  "CMakeFiles/soir_orm_test.dir/soir_orm_test.cc.o.d"
  "soir_orm_test"
  "soir_orm_test.pdb"
  "soir_orm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soir_orm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
