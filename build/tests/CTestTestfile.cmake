# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smt_test[1]_include.cmake")
include("/root/repo/build/tests/analyzer_test[1]_include.cmake")
include("/root/repo/build/tests/soir_orm_test[1]_include.cmake")
include("/root/repo/build/tests/verifier_test[1]_include.cmake")
include("/root/repo/build/tests/repl_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
