# Empty compiler generated dependencies file for table5_correctness.
# This may be replaced when dependencies are built.
