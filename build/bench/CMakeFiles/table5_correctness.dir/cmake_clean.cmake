file(REMOVE_RECURSE
  "CMakeFiles/table5_correctness.dir/table5_correctness.cc.o"
  "CMakeFiles/table5_correctness.dir/table5_correctness.cc.o.d"
  "table5_correctness"
  "table5_correctness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_correctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
