file(REMOVE_RECURSE
  "CMakeFiles/table4_apps.dir/table4_apps.cc.o"
  "CMakeFiles/table4_apps.dir/table4_apps.cc.o.d"
  "table4_apps"
  "table4_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
