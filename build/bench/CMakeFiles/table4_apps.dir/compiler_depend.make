# Empty compiler generated dependencies file for table4_apps.
# This may be replaced when dependencies are built.
