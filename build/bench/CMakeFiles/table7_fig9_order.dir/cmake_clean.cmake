file(REMOVE_RECURSE
  "CMakeFiles/table7_fig9_order.dir/table7_fig9_order.cc.o"
  "CMakeFiles/table7_fig9_order.dir/table7_fig9_order.cc.o.d"
  "table7_fig9_order"
  "table7_fig9_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_fig9_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
