# Empty dependencies file for table7_fig9_order.
# This may be replaced when dependencies are built.
