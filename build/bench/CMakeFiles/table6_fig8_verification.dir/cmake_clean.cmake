file(REMOVE_RECURSE
  "CMakeFiles/table6_fig8_verification.dir/table6_fig8_verification.cc.o"
  "CMakeFiles/table6_fig8_verification.dir/table6_fig8_verification.cc.o.d"
  "table6_fig8_verification"
  "table6_fig8_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_fig8_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
