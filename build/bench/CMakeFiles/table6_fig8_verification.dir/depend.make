# Empty dependencies file for table6_fig8_verification.
# This may be replaced when dependencies are built.
