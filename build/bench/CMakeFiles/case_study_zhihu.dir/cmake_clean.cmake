file(REMOVE_RECURSE
  "CMakeFiles/case_study_zhihu.dir/case_study_zhihu.cc.o"
  "CMakeFiles/case_study_zhihu.dir/case_study_zhihu.cc.o.d"
  "case_study_zhihu"
  "case_study_zhihu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_study_zhihu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
