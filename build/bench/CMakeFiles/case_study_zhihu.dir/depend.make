# Empty dependencies file for case_study_zhihu.
# This may be replaced when dependencies are built.
