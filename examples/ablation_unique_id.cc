// Example: what the unique-ID optimization (paper §5.2) buys — the restriction set of
// Courseware with and without the assertion that database-generated IDs are globally
// unique. Without it, every insert conflicts with itself.
#include <cstdio>

#include "src/analyzer/analyzer.h"
#include "src/apps/courseware.h"
#include "src/verifier/report.h"

int main() {
  using namespace noctua;
  app::App a = apps::MakeCoursewareApp();
  analyzer::AnalysisResult analysis = analyzer::AnalyzeApp(a);
  auto effectful = analysis.EffectfulPaths();

  verifier::CheckerOptions with_uid;    // default: optimization on
  verifier::CheckerOptions without_uid;
  without_uid.encoder.unique_id_optimization = false;

  verifier::RestrictionReport on = verifier::AnalyzeRestrictions(a.schema(), effectful,
                                                                 with_uid);
  verifier::RestrictionReport off = verifier::AnalyzeRestrictions(a.schema(), effectful,
                                                                  without_uid);

  printf("Courseware restrictions WITH the unique-ID assertion (%zu):\n",
         on.num_restrictions());
  for (const auto& p : on.RestrictedPairNames()) {
    printf("  %s\n", p.c_str());
  }
  printf("\nCourseware restrictions WITHOUT it (%zu):\n", off.num_restrictions());
  for (const auto& p : off.RestrictedPairNames()) {
    printf("  %s\n", p.c_str());
  }
  printf("\nThe delta is exactly the self-pairs of inserting operations: without the\n"
         "assertion the two replicas \"could\" draw the same fresh ID, an impossible\n"
         "execution the optimization rules out (paper §5.2).\n");
  return 0;
}
