// Example: what the unique-ID optimization (paper §5.2) buys — the restriction set of
// Courseware with and without the assertion that database-generated IDs are globally
// unique. Without it, every insert conflicts with itself.
#include <cstdio>

#include "src/apps/courseware.h"
#include "src/pipeline/pipeline.h"

int main() {
  using namespace noctua;
  app::App a = apps::MakeCoursewareApp();

  // Analyze once and verify with the default options (optimization on), then re-verify
  // the same analysis with the single flag flipped.
  PipelineResult with_uid = Pipeline::Run(a);
  PipelineOptions ablated;
  ablated.checker.encoder.unique_id_optimization = false;
  verifier::RestrictionReport off = Pipeline::Verify(a, with_uid.analysis, ablated);
  const verifier::RestrictionReport& on = with_uid.restrictions;

  printf("Courseware restrictions WITH the unique-ID assertion (%zu):\n",
         on.num_restrictions());
  for (const auto& p : on.RestrictedPairNames()) {
    printf("  %s\n", p.c_str());
  }
  printf("\nCourseware restrictions WITHOUT it (%zu):\n", off.num_restrictions());
  for (const auto& p : off.RestrictedPairNames()) {
    printf("  %s\n", p.c_str());
  }
  printf("\nThe delta is exactly the self-pairs of inserting operations: without the\n"
         "assertion the two replicas \"could\" draw the same fresh ID, an impossible\n"
         "execution the optimization rules out (paper §5.2).\n");
  return 0;
}
