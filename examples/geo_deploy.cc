// Example: from analysis to deployment — using Noctua's restriction set to run a
// geo-replicated SmallBank on the 3-site simulator, and comparing it against strong
// consistency (the end-to-end story of paper §6.5). The last section re-runs the PoR
// deployment on a hostile network — lost/duplicated messages, a replica crash, a
// coordinator outage — to show the recovery protocol keeping the same safety guarantees.
#include <cstdio>

#include "src/apps/smallbank.h"
#include "src/pipeline/pipeline.h"
#include "src/repl/simulator.h"

int main() {
  using namespace noctua;

  app::App bank = apps::MakeSmallBankApp();

  // One call: analysis plus the PoR restriction set.
  PipelineResult result = Pipeline::Run(bank);
  const analyzer::AnalysisResult& analysis = result.analysis;
  const verifier::RestrictionReport& report = result.restrictions;

  repl::ConflictTable conflicts;
  printf("Restriction set:\n");
  for (const auto& [p, q] : report.RestrictedViewPairs()) {
    conflicts.AddPair(p, q);
    printf("  (%s, %s)\n", p.c_str(), q.c_str());
  }

  // Deploy on 3 sites, 1 ms cross-site latency, 30% writes.
  repl::SimOptions options;
  options.write_ratio = 0.3;
  options.duration_ms = 2000;

  repl::Simulator por(bank.schema(), analysis.paths, conflicts, options);
  repl::SimResult por_result = por.Run();

  options.strong_consistency = true;
  repl::ConflictTable total;
  total.SetTotal(true);
  repl::Simulator sc(bank.schema(), analysis.paths, total, options);
  repl::SimResult sc_result = sc.Run();

  printf("\n%-22s %12s %12s %12s\n", "", "ops/s", "latency(ms)", "converged");
  printf("%-22s %12.0f %12.3f %12s\n", "strong consistency", sc_result.ThroughputOpsPerSec(),
         sc_result.avg_latency_ms, sc_result.converged ? "yes" : "NO");
  printf("%-22s %12.0f %12.3f %12s\n", "PoR (Noctua)", por_result.ThroughputOpsPerSec(),
         por_result.avg_latency_ms, por_result.converged ? "yes" : "NO");
  printf("\nSpeedup: %.2fx — only the %zu restricted pairs pay coordination; every other\n"
         "request runs against the local replica.\n",
         por_result.ThroughputOpsPerSec() / sc_result.ThroughputOpsPerSec(),
         report.num_restrictions());

  // Same deployment, hostile network: 5% message loss, 3% duplication, latency jitter,
  // one replica crashing a quarter of the way in and recovering at the midpoint, and a
  // 100 ms coordinator outage. The hardened protocol (retries + dedup + sequence-gapped
  // apply queues + anti-entropy catch-up) must preserve convergence and the restriction
  // set; only throughput and tail latency are allowed to degrade.
  options.strong_consistency = false;
  repl::FaultPlan plan = repl::FaultPlan::Lossy(0.05, 0.03);
  plan.link.jitter_ms = 1.0;
  plan.crashes.push_back({2, options.duration_ms * 0.25, options.duration_ms * 0.5});
  plan.coordinator_outages.push_back(
      {options.duration_ms * 0.6, options.duration_ms * 0.6 + 100});
  options.faults = plan;
  repl::Simulator chaos(bank.schema(), analysis.paths, conflicts, options);
  repl::SimResult chaos_result = chaos.Run();

  printf("\nPoR under faults (5%% loss, crash+restart, coordinator outage):\n");
  printf("  %-28s %12.0f op/s (perfect network: %.0f)\n", "throughput",
         chaos_result.ThroughputOpsPerSec(), por_result.ThroughputOpsPerSec());
  printf("  %-28s %9.3f ms / %9.3f ms\n", "latency avg / p99", chaos_result.avg_latency_ms,
         chaos_result.p99_latency_ms);
  printf("  %-28s %llu dropped, %llu duplicated, %llu retransmitted, %llu dedup hits\n",
         "network", (unsigned long long)chaos_result.messages_dropped,
         (unsigned long long)chaos_result.messages_duplicated,
         (unsigned long long)chaos_result.retransmissions,
         (unsigned long long)chaos_result.duplicates_ignored);
  printf("  %-28s %llu crash / %llu recovery, %llu effects replayed by anti-entropy\n",
         "failures", (unsigned long long)chaos_result.replica_crashes,
         (unsigned long long)chaos_result.replica_recoveries,
         (unsigned long long)chaos_result.effects_replayed);
  printf("  %-28s converged=%s, restriction violations=%llu\n", "safety",
         chaos_result.converged ? "yes" : "NO",
         (unsigned long long)chaos_result.conflict_violations);
  return chaos_result.converged && chaos_result.conflict_violations == 0 ? 0 : 1;
}
