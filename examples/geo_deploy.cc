// Example: from analysis to deployment — using Noctua's restriction set to run a
// geo-replicated SmallBank on the 3-site simulator, and comparing it against strong
// consistency (the end-to-end story of paper §6.5).
#include <cstdio>

#include "src/analyzer/analyzer.h"
#include "src/apps/smallbank.h"
#include "src/repl/simulator.h"
#include "src/verifier/report.h"

int main() {
  using namespace noctua;

  app::App bank = apps::MakeSmallBankApp();
  analyzer::AnalysisResult analysis = analyzer::AnalyzeApp(bank);
  auto effectful = analysis.EffectfulPaths();

  // Compute the PoR restriction set with the verifier.
  verifier::RestrictionReport report =
      verifier::AnalyzeRestrictions(bank.schema(), effectful, {});
  repl::ConflictTable conflicts;
  printf("Restriction set:\n");
  for (const auto& v : report.pairs) {
    if (v.Restricted()) {
      std::string p = v.p.substr(0, v.p.find('#'));
      std::string q = v.q.substr(0, v.q.find('#'));
      conflicts.AddPair(p, q);
      printf("  (%s, %s)\n", p.c_str(), q.c_str());
    }
  }

  // Deploy on 3 sites, 1 ms cross-site latency, 30% writes.
  repl::SimOptions options;
  options.write_ratio = 0.3;
  options.duration_ms = 2000;

  repl::Simulator por(bank.schema(), analysis.paths, conflicts, options);
  repl::SimResult por_result = por.Run();

  options.strong_consistency = true;
  repl::ConflictTable total;
  total.SetTotal(true);
  repl::Simulator sc(bank.schema(), analysis.paths, total, options);
  repl::SimResult sc_result = sc.Run();

  printf("\n%-22s %12s %12s %12s\n", "", "ops/s", "latency(ms)", "converged");
  printf("%-22s %12.0f %12.3f %12s\n", "strong consistency", sc_result.ThroughputOpsPerSec(),
         sc_result.avg_latency_ms, sc_result.converged ? "yes" : "NO");
  printf("%-22s %12.0f %12.3f %12s\n", "PoR (Noctua)", por_result.ThroughputOpsPerSec(),
         por_result.avg_latency_ms, por_result.converged ? "yes" : "NO");
  printf("\nSpeedup: %.2fx — only the %zu restricted pairs pay coordination; every other\n"
         "request runs against the local replica.\n",
         por_result.ThroughputOpsPerSec() / sc_result.ThroughputOpsPerSec(),
         report.num_restrictions());
  return 0;
}
