// Quickstart: the full Noctua pipeline on the paper's Figure 3 blog application.
//
//   1. Define an application (schema + view functions) — here the multi-user blog.
//   2. Pipeline::Run drives the ANALYZER (explore every code path into SOIR) and the
//      VERIFIER (commutativity + semantic checks over every pair) in one call.
//   3. The output is the restriction set: pairs that need coordination under PoR.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "src/apps/blog.h"
#include "src/pipeline/pipeline.h"
#include "src/soir/printer.h"

int main() {
  using namespace noctua;

  // Step 1: the application (see src/apps/blog.cc for the model/view definitions).
  app::App blog = apps::MakeBlogApp();
  printf("=== Schema ===\n%s\n", blog.schema().ToString().c_str());

  // Step 2: the whole pipeline — analysis, then verification of every effectful pair.
  PipelineResult result = Pipeline::Run(blog);

  const analyzer::AnalysisResult& analysis = result.analysis;
  printf("=== Analysis: %zu code paths (%zu effectful) in %.3fs ===\n\n",
         analysis.num_code_paths, analysis.num_effectful, analysis.seconds);
  for (const soir::CodePath& path : analysis.paths) {
    printf("%s\n", soir::PrintCodePath(blog.schema(), path).c_str());
  }

  // Step 3: the restriction set.
  const verifier::RestrictionReport& report = result.restrictions;
  printf("=== Verification: %zu checks in %.2fs (%d threads, %llu verdicts cached) ===\n%s\n",
         report.num_checks(), report.total_seconds, report.stats.threads_used,
         (unsigned long long)report.stats.cache_hits, report.ToString().c_str());
  printf("Every pair listed above must be coordinated by the geo-replicated store; all\n"
         "other pairs can run concurrently without breaking convergence or invariants.\n");
  return 0;
}
