// Quickstart: the full Noctua pipeline on the paper's Figure 3 blog application.
//
//   1. Define an application (schema + view functions) — here the multi-user blog.
//   2. ANALYZER explores every code path and extracts SOIR.
//   3. VERIFIER runs the commutativity and semantic checks over every pair.
//   4. The output is the restriction set: pairs that need coordination under PoR.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "src/analyzer/analyzer.h"
#include "src/apps/blog.h"
#include "src/soir/printer.h"
#include "src/verifier/report.h"

int main() {
  using namespace noctua;

  // Step 1: the application (see src/apps/blog.cc for the model/view definitions).
  app::App blog = apps::MakeBlogApp();
  printf("=== Schema ===\n%s\n", blog.schema().ToString().c_str());

  // Step 2: program analysis — no user input, just the registered endpoints.
  analyzer::AnalysisResult analysis = analyzer::AnalyzeApp(blog);
  printf("=== Analysis: %zu code paths (%zu effectful) in %.3fs ===\n\n",
         analysis.num_code_paths, analysis.num_effectful, analysis.seconds);
  for (const soir::CodePath& path : analysis.paths) {
    printf("%s\n", soir::PrintCodePath(blog.schema(), path).c_str());
  }

  // Step 3: verification — both checking rules over every pair of effectful paths.
  auto effectful = analysis.EffectfulPaths();
  verifier::RestrictionReport report =
      verifier::AnalyzeRestrictions(blog.schema(), effectful, {});

  // Step 4: the restriction set.
  printf("=== Verification: %zu checks in %.2fs ===\n%s\n", report.num_checks(),
         report.total_seconds, report.ToString().c_str());
  printf("Every pair listed above must be coordinated by the geo-replicated store; all\n"
         "other pairs can run concurrently without breaking convergence or invariants.\n");
  return 0;
}
