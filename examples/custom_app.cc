// Example: analyzing your own application.
//
// Shows the full authoring surface: models with validators, relations with on-delete
// policies, views with branching, bulk updates with F-expressions, and how the analyzer
// discovers parameters and paths — then prints the SOIR and the restriction set.
//
// The app is a tiny ticket tracker: agents claim tickets, resolve them, and escalate
// stale ones.
#include <cstdio>

#include "src/pipeline/pipeline.h"
#include "src/soir/printer.h"

int main() {
  using namespace noctua;
  using analyzer::Sym;
  using analyzer::SymObj;
  using analyzer::SymSet;
  using analyzer::ViewCtx;

  app::App app("tickets", __FILE__);
  soir::Schema& s = app.schema();

  s.AddModel("Agent");
  s.AddField("Agent", {.name = "name", .type = soir::FieldType::kString, .unique = true});
  s.AddField("Agent", {.name = "open_load", .type = soir::FieldType::kInt, .positive = true});

  s.AddModel("Ticket");
  s.AddField("Ticket", {.name = "subject", .type = soir::FieldType::kString});
  s.AddField("Ticket",
             {.name = "status",
              .type = soir::FieldType::kString,
              .choices = {"open", "claimed", "resolved"},
              .default_string = "open"});
  s.AddField("Ticket", {.name = "priority", .type = soir::FieldType::kInt, .positive = true});
  s.AddRelation("assignee", "Ticket", "Agent", soir::RelationKind::kManyToOne,
                soir::OnDelete::kSetNull);

  // open_ticket: anyone may file a ticket.
  app.AddView("open_ticket", [](ViewCtx& v) {
    Sym priority = v.PostInt("priority");
    v.Guard(priority >= 0);
    v.Create("Ticket", {{"subject", v.Post("subject")},
                        {"status", Sym("open")},
                        {"priority", priority}});
  });

  // claim_ticket: an agent takes an open ticket; their load counter goes up.
  app.AddView("claim_ticket", [](ViewCtx& v) {
    SymObj agent = v.Deref("Agent", v.ParamRef("agent", "Agent"));
    SymObj ticket = v.M("Ticket").get("id", v.ParamRef("ticket", "Ticket"));
    v.Guard(ticket.attr("status") == "open");
    ticket.with("status", Sym("claimed")).save();
    v.Link("assignee", ticket, agent);
    agent.with("open_load", agent.attr("open_load") + 1).save();
  });

  // resolve_ticket: the assignee closes it and sheds load.
  app.AddView("resolve_ticket", [](ViewCtx& v) {
    SymObj agent = v.Deref("Agent", v.ParamRef("agent", "Agent"));
    SymObj ticket = v.M("Ticket").get("id", v.ParamRef("ticket", "Ticket"));
    v.Guard(ticket.attr("status") == "claimed");
    ticket.with("status", Sym("resolved")).save();
    v.Guard(agent.attr("open_load") >= 1);
    agent.with("open_load", agent.attr("open_load") - 1).save();
  });

  // escalate_stale: bulk-bumps the priority of every open ticket (an F-expression).
  app.AddView("escalate_stale", [](ViewCtx& v) {
    SymSet open = v.M("Ticket").filter("status", Sym("open"));
    open.update_each("priority", [](SymObj t) { return t.attr("priority") + 1; });
  });

  PipelineResult result = Pipeline::Run(app);
  printf("=== %zu code paths ===\n\n", result.analysis.num_code_paths);
  for (const auto& path : result.analysis.paths) {
    printf("%s\n", soir::PrintCodePath(app.schema(), path).c_str());
  }

  printf("=== Restriction set ===\n%s", result.restrictions.ToString().c_str());
  printf("\nReading the result: claim_ticket conflicts with itself (two agents claiming\n"
         "the same open ticket both see status == \"open\"), while open_ticket commutes\n"
         "with everything thanks to database-generated unique IDs.\n");
  return 0;
}
