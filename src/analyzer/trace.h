// TraceCtx: the per-path recording state of the embedded analyzer.
//
// While a view function executes under the analyzer, every symbolic branch, discovered
// argument and database effect flows through this context (paper §4.1: "the debugger
// notifies the path finder of any branching event, while the path finder maintains the
// current path state"; effects and arguments are recorded as they are encountered).
#ifndef SRC_ANALYZER_TRACE_H_
#define SRC_ANALYZER_TRACE_H_

#include <map>
#include <string>
#include <vector>

#include "src/analyzer/path_finder.h"
#include "src/soir/ast.h"
#include "src/soir/schema.h"

namespace noctua::analyzer {

// Thrown when the application logic aborts the request (e.g. `raise RuntimeError()` in
// paper Fig. 3); the path is still counted but produces no effects.
struct AbortPath {};

class TraceCtx {
 public:
  TraceCtx(const soir::Schema& schema, PathFinder* finder)
      : schema_(schema), finder_(finder) {}

  const soir::Schema& schema() const { return schema_; }

  // Resets per-path state before re-running the view function.
  void StartPath();

  // Decides a symbolic branch: consults the path finder and records the taken side as a
  // path condition (guard). `cond` must not be a literal.
  bool Branch(const soir::ExprP& cond);

  // Records a guard that is required for the request to commit (object existence,
  // uniqueness, validators) without branching.
  void Guard(soir::ExprP cond);

  void Record(soir::Command cmd);

  // Returns (creating on first use) the expression for a named argument. Arguments are
  // discovered during execution, exactly like POST parameters in the paper (§4.1).
  soir::ExprP Arg(const std::string& name, soir::Type type, bool unique_id = false);

  // A fresh argument name, e.g. for IDs of newly created objects.
  std::string FreshArgName(const std::string& prefix);

  [[noreturn]] void Abort() { throw AbortPath{}; }

  // Packages the recorded path. Call after the view function returned normally.
  soir::CodePath Finish(const std::string& op_name, const std::string& view_name);

 private:
  const soir::Schema& schema_;
  PathFinder* finder_;
  std::vector<soir::ArgDef> args_;
  std::map<std::string, soir::ExprP> arg_exprs_;
  std::vector<soir::Command> commands_;
  int fresh_counter_ = 0;
};

}  // namespace noctua::analyzer

#endif  // SRC_ANALYZER_TRACE_H_
