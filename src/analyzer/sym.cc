#include "src/analyzer/sym.h"

#include <map>

#include "src/support/check.h"

namespace noctua::analyzer {
namespace {

using soir::CmpOp;
using soir::Expr;
using soir::ExprKind;
using soir::ExprP;
using soir::Type;

bool IsLit(const ExprP& e) {
  return e->kind == ExprKind::kBoolLit || e->kind == ExprKind::kIntLit ||
         e->kind == ExprKind::kStrLit;
}

TraceCtx* JoinCtx(const Sym& a, const Sym& b) {
  TraceCtx* ctx = a.ctx() ? a.ctx() : b.ctx();
  return ctx;
}

Sym FoldCmp(CmpOp op, const Sym& a, const Sym& b) {
  TraceCtx* ctx = JoinCtx(a, b);
  const ExprP& ea = a.expr();
  const ExprP& eb = b.expr();
  NOCTUA_CHECK_MSG(ea && eb, "comparison of a default-constructed Sym");
  if (IsLit(ea) && IsLit(eb)) {
    // Concrete comparison: evaluate eagerly (Fig. 5 line 7).
    bool result = false;
    if (ea->kind == ExprKind::kStrLit) {
      int c = ea->str.compare(eb->str);
      switch (op) {
        case CmpOp::kEq: result = c == 0; break;
        case CmpOp::kNe: result = c != 0; break;
        case CmpOp::kLt: result = c < 0; break;
        case CmpOp::kLe: result = c <= 0; break;
        case CmpOp::kGt: result = c > 0; break;
        case CmpOp::kGe: result = c >= 0; break;
      }
    } else {
      int64_t x = ea->int_val;
      int64_t y = eb->int_val;
      switch (op) {
        case CmpOp::kEq: result = x == y; break;
        case CmpOp::kNe: result = x != y; break;
        case CmpOp::kLt: result = x < y; break;
        case CmpOp::kLe: result = x <= y; break;
        case CmpOp::kGt: result = x > y; break;
        case CmpOp::kGe: result = x >= y; break;
      }
    }
    return Sym(ctx, soir::MakeBoolLit(result));
  }
  return Sym(ctx, soir::MakeCmp(op, ea, eb));
}

Sym FoldArith(ExprKind kind, const Sym& a, const Sym& b) {
  TraceCtx* ctx = JoinCtx(a, b);
  const ExprP& ea = a.expr();
  const ExprP& eb = b.expr();
  if (ea->kind == ExprKind::kIntLit && eb->kind == ExprKind::kIntLit) {
    int64_t x = ea->int_val;
    int64_t y = eb->int_val;
    int64_t r = kind == ExprKind::kAdd ? x + y : kind == ExprKind::kSub ? x - y : x * y;
    return Sym(ctx, soir::MakeIntLit(r));
  }
  switch (kind) {
    case ExprKind::kAdd:
      return Sym(ctx, soir::MakeAdd(ea, eb));
    case ExprKind::kSub:
      return Sym(ctx, soir::MakeSub(ea, eb));
    default:
      return Sym(ctx, soir::MakeMul(ea, eb));
  }
}

}  // namespace

Sym::operator bool() const {
  NOCTUA_CHECK_MSG(expr_, "branching on a default-constructed Sym");
  if (expr_->kind == ExprKind::kBoolLit) {
    return expr_->int_val != 0;
  }
  NOCTUA_CHECK_MSG(ctx_ != nullptr, "branching on a symbolic value with no trace context");
  return ctx_->Branch(expr_);
}

Sym Sym::operator!() const {
  if (expr_->kind == ExprKind::kBoolLit) {
    return Sym(ctx_, soir::MakeBoolLit(expr_->int_val == 0));
  }
  return Sym(ctx_, soir::MakeNot(expr_));
}

Sym operator+(const Sym& a, const Sym& b) { return FoldArith(ExprKind::kAdd, a, b); }
Sym operator-(const Sym& a, const Sym& b) { return FoldArith(ExprKind::kSub, a, b); }
Sym operator*(const Sym& a, const Sym& b) { return FoldArith(ExprKind::kMul, a, b); }

Sym Sym::operator-() const {
  if (expr_->kind == ExprKind::kIntLit) {
    return Sym(ctx_, soir::MakeIntLit(-expr_->int_val));
  }
  return Sym(ctx_, soir::MakeNegate(expr_));
}

Sym operator==(const Sym& a, const Sym& b) { return FoldCmp(CmpOp::kEq, a, b); }
Sym operator!=(const Sym& a, const Sym& b) { return FoldCmp(CmpOp::kNe, a, b); }
Sym operator<(const Sym& a, const Sym& b) { return FoldCmp(CmpOp::kLt, a, b); }
Sym operator<=(const Sym& a, const Sym& b) { return FoldCmp(CmpOp::kLe, a, b); }
Sym operator>(const Sym& a, const Sym& b) { return FoldCmp(CmpOp::kGt, a, b); }
Sym operator>=(const Sym& a, const Sym& b) { return FoldCmp(CmpOp::kGe, a, b); }

Sym operator&(const Sym& a, const Sym& b) {
  TraceCtx* ctx = JoinCtx(a, b);
  if (IsLit(a.expr()) && IsLit(b.expr())) {
    return Sym(ctx, soir::MakeBoolLit(a.expr()->int_val != 0 && b.expr()->int_val != 0));
  }
  return Sym(ctx, soir::MakeAnd(a.expr(), b.expr()));
}

Sym operator|(const Sym& a, const Sym& b) {
  TraceCtx* ctx = JoinCtx(a, b);
  if (IsLit(a.expr()) && IsLit(b.expr())) {
    return Sym(ctx, soir::MakeBoolLit(a.expr()->int_val != 0 || b.expr()->int_val != 0));
  }
  return Sym(ctx, soir::MakeOr(a.expr(), b.expr()));
}

Sym SymConcat(const Sym& a, const Sym& b) {
  TraceCtx* ctx = JoinCtx(a, b);
  if (a.expr()->kind == ExprKind::kStrLit && b.expr()->kind == ExprKind::kStrLit) {
    return Sym(ctx, soir::MakeStrLit(a.expr()->str + b.expr()->str));
  }
  return Sym(ctx, soir::MakeConcat(a.expr(), b.expr()));
}

// --- Lookup resolution ----------------------------------------------------------------------

LookupPath ResolveLookup(const soir::Schema& schema, int model_id, const std::string& key) {
  LookupPath out;
  out.final_model = model_id;
  // Django separates lookup segments with double underscores.
  std::vector<std::string> parts;
  {
    std::string rest = key;
    size_t pos;
    while ((pos = rest.find("__")) != std::string::npos) {
      parts.push_back(rest.substr(0, pos));
      rest = rest.substr(pos + 2);
    }
    parts.push_back(rest);
  }
  // A trailing comparison suffix?
  static const std::map<std::string, CmpOp> kSuffixes = {
      {"gt", CmpOp::kGt}, {"gte", CmpOp::kGe}, {"lt", CmpOp::kLt},
      {"lte", CmpOp::kLe}, {"ne", CmpOp::kNe}, {"exact", CmpOp::kEq}};
  if (parts.size() > 1) {
    auto it = kSuffixes.find(parts.back());
    if (it != kSuffixes.end()) {
      out.op = it->second;
      parts.pop_back();
    }
  }
  int cur = model_id;
  for (size_t i = 0; i < parts.size(); ++i) {
    const std::string& seg = parts[i];
    auto [rel_id, forward] = schema.FindRelation(cur, seg);
    if (rel_id >= 0) {
      out.steps.push_back(soir::RelStep{rel_id, forward});
      const soir::RelationDef& rel = schema.relation(rel_id);
      cur = forward ? rel.to_model : rel.from_model;
      if (i + 1 == parts.size()) {
        // Path ends in a related key: compare the target's pk.
        out.target_is_relation = true;
        out.field = schema.model(cur).pk_name();
      }
      continue;
    }
    NOCTUA_CHECK_MSG(i + 1 == parts.size(),
                     "lookup segment " << seg << " is neither a relation of "
                                       << schema.model(cur).name() << " nor final");
    NOCTUA_CHECK_MSG(schema.model(cur).IsPk(seg) || schema.model(cur).FieldIndex(seg) >= 0,
                     "unknown field " << seg << " on " << schema.model(cur).name());
    out.field = seg;
  }
  out.final_model = cur;
  return out;
}

// --- SymObj ----------------------------------------------------------------------------------

Sym SymObj::attr(const std::string& field) const {
  const soir::ModelDef& m = ctx_->schema().model(model_id());
  if (m.IsPk(field) || field == "id") {
    return Sym(ctx_, soir::MakeRefOf(expr_));
  }
  int idx = m.FieldIndex(field);
  NOCTUA_CHECK_MSG(idx >= 0, "unknown field " << field << " on " << m.name());
  const soir::FieldDef& f = m.field(idx);
  Type t = Type::Int();
  switch (f.type) {
    case soir::FieldType::kBool:
      t = Type::Bool();
      break;
    case soir::FieldType::kInt:
      t = Type::Int();
      break;
    case soir::FieldType::kFloat:
      t = Type::Float();
      break;
    case soir::FieldType::kString:
      t = Type::String();
      break;
    case soir::FieldType::kDatetime:
      t = Type::Datetime();
      break;
    case soir::FieldType::kRef:
      t = Type::Int();
      break;
  }
  return Sym(ctx_, soir::MakeGetField(expr_, field, t));
}

SymObj SymObj::with(const std::string& field, const Sym& value) const {
  return SymObj(ctx_, soir::MakeSetField(expr_, field, value.expr()));
}

void SymObj::save() const {
  const soir::ModelDef& m = ctx_->schema().model(model_id());
  // Database-level validators become commit preconditions (paper §2.3: utility classes
  // like PositiveIntegerField carry consistency-relevant semantics).
  for (const soir::FieldDef& f : m.fields()) {
    if (f.positive) {
      ctx_->Guard(soir::MakeCmp(CmpOp::kGe, soir::MakeGetField(expr_, f.name, Type::Int()),
                                soir::MakeIntLit(0)));
    }
    if (!f.choices.empty()) {
      ExprP any;
      for (const std::string& c : f.choices) {
        ExprP eq = soir::MakeCmp(CmpOp::kEq,
                                 soir::MakeGetField(expr_, f.name, Type::String()),
                                 soir::MakeStrLit(c));
        any = any ? soir::MakeOr(any, eq) : eq;
      }
      ctx_->Guard(any);
    }
  }
  soir::Command cmd;
  cmd.kind = soir::CommandKind::kUpdate;
  cmd.a = soir::MakeSingleton(expr_);
  ctx_->Record(std::move(cmd));
}

namespace {
// Client-side cascade expansion (Django performs cascades in Python, not in SQL).
void CascadeDelete(TraceCtx* ctx, const ExprP& set, int depth) {
  const soir::Schema& schema = ctx->schema();
  int model = set->type.model_id;
  if (depth < static_cast<int>(schema.num_models())) {
    for (const soir::RelationDef& rel : schema.relations()) {
      if (rel.to_model == model && rel.kind == soir::RelationKind::kManyToOne &&
          rel.on_delete == soir::OnDelete::kCascade && rel.from_model != model) {
        ExprP children =
            soir::MakeFollow(set, {soir::RelStep{rel.id, /*forward=*/false}}, rel.from_model);
        CascadeDelete(ctx, children, depth + 1);
      }
    }
  }
  soir::Command cmd;
  cmd.kind = soir::CommandKind::kDelete;
  cmd.a = set;
  ctx->Record(std::move(cmd));
}
}  // namespace

void SymObj::destroy() const { CascadeDelete(ctx_, soir::MakeSingleton(expr_), 0); }

Sym SymObj::ref() const { return Sym(ctx_, soir::MakeRefOf(expr_)); }

SymObj SymObj::rel(const std::string& key) const {
  auto [rel_id, forward] = ctx_->schema().FindRelation(model_id(), key);
  NOCTUA_CHECK_MSG(rel_id >= 0, "unknown related key " << key);
  const soir::RelationDef& rel = ctx_->schema().relation(rel_id);
  int target = forward ? rel.to_model : rel.from_model;
  ExprP set = soir::MakeFollow(soir::MakeSingleton(expr_), {soir::RelStep{rel_id, forward}},
                               target);
  // Django raises RelatedObjectDoesNotExist when the FK is null.
  ctx_->Guard(soir::MakeExists(set));
  return SymObj(ctx_, soir::MakeAny(set));
}

SymSet SymObj::rel_set(const std::string& key) const {
  auto [rel_id, forward] = ctx_->schema().FindRelation(model_id(), key);
  NOCTUA_CHECK_MSG(rel_id >= 0, "unknown related key " << key);
  const soir::RelationDef& rel = ctx_->schema().relation(rel_id);
  int target = forward ? rel.to_model : rel.from_model;
  return SymSet(ctx_, soir::MakeFollow(soir::MakeSingleton(expr_),
                                       {soir::RelStep{rel_id, forward}}, target));
}

// --- SymSet ----------------------------------------------------------------------------------

SymSet SymSet::filter(const std::string& key, const Sym& value) const {
  LookupPath lp = ResolveLookup(ctx_->schema(), model_id(), key);
  return SymSet(ctx_, soir::MakeFilter(expr_, lp.steps, lp.field, lp.op, value.expr()));
}

SymSet SymSet::filter(const std::string& key, const SymObj& target) const {
  LookupPath lp = ResolveLookup(ctx_->schema(), model_id(), key);
  NOCTUA_CHECK_MSG(lp.target_is_relation, "object-valued filter needs a relation path");
  return SymSet(ctx_, soir::MakeFilter(expr_, lp.steps, lp.field, lp.op,
                                       soir::MakeRefOf(target.expr())));
}

SymObj SymSet::get(const std::string& key, const Sym& value) const {
  SymSet matched = filter(key, value);
  ctx_->Guard(soir::MakeExists(matched.expr()));
  return SymObj(ctx_, soir::MakeAny(matched.expr()));
}

SymObj SymSet::get(const std::string& key, const SymObj& target) const {
  SymSet matched = filter(key, target);
  ctx_->Guard(soir::MakeExists(matched.expr()));
  return SymObj(ctx_, soir::MakeAny(matched.expr()));
}

Sym SymSet::exists() const { return Sym(ctx_, soir::MakeExists(expr_)); }

Sym SymSet::count() const {
  return Sym(ctx_, soir::MakeAggregate(expr_, soir::AggOp::kCount, ""));
}

Sym SymSet::aggregate(soir::AggOp op, const std::string& field) const {
  return Sym(ctx_, soir::MakeAggregate(expr_, op, field));
}

SymSet SymSet::order_by(const std::string& field) const {
  bool asc = true;
  std::string f = field;
  if (!f.empty() && f[0] == '-') {
    asc = false;
    f = f.substr(1);
  }
  return SymSet(ctx_, soir::MakeOrderBy(expr_, f, asc));
}

SymSet SymSet::reversed() const { return SymSet(ctx_, soir::MakeReverse(expr_)); }

SymObj SymSet::first() const {
  ctx_->Guard(soir::MakeExists(expr_));
  return SymObj(ctx_, soir::MakeFirst(expr_));
}

SymObj SymSet::last() const {
  ctx_->Guard(soir::MakeExists(expr_));
  return SymObj(ctx_, soir::MakeLast(expr_));
}

SymObj SymSet::any() const {
  ctx_->Guard(soir::MakeExists(expr_));
  return SymObj(ctx_, soir::MakeAny(expr_));
}

SymSet SymSet::follow(const std::string& key) const {
  auto [rel_id, forward] = ctx_->schema().FindRelation(model_id(), key);
  NOCTUA_CHECK_MSG(rel_id >= 0, "unknown related key " << key);
  const soir::RelationDef& rel = ctx_->schema().relation(rel_id);
  int target = forward ? rel.to_model : rel.from_model;
  return SymSet(ctx_, soir::MakeFollow(expr_, {soir::RelStep{rel_id, forward}}, target));
}

void SymSet::RecordValidatorGuards(ExprP updated_set, const std::string& field) const {
  const soir::ModelDef& m = ctx_->schema().model(model_id());
  int idx = m.FieldIndex(field);
  if (idx < 0) {
    return;
  }
  const soir::FieldDef& f = m.field(idx);
  if (f.positive) {
    // No member of the updated set may have a negative value.
    ExprP bad = soir::MakeFilter(updated_set, {}, field, CmpOp::kLt, soir::MakeIntLit(0));
    ctx_->Guard(soir::MakeNot(soir::MakeExists(bad)));
  }
  if (!f.choices.empty()) {
    ExprP bad = updated_set;
    for (const std::string& c : f.choices) {
      bad = soir::MakeFilter(bad, {}, field, CmpOp::kNe, soir::MakeStrLit(c));
    }
    ctx_->Guard(soir::MakeNot(soir::MakeExists(bad)));
  }
}

void SymSet::update(const std::string& field, const Sym& value) const {
  ExprP updated = soir::MakeMapSet(expr_, field, value.expr());
  RecordValidatorGuards(updated, field);
  soir::Command cmd;
  cmd.kind = soir::CommandKind::kUpdate;
  cmd.a = std::move(updated);
  ctx_->Record(std::move(cmd));
}

void SymSet::update_each(const std::string& field,
                         const std::function<Sym(SymObj)>& fn) const {
  SymObj bound(ctx_, soir::MakeBoundObj(model_id()));
  Sym value = fn(bound);
  ExprP updated = soir::MakeMapSet(expr_, field, value.expr());
  RecordValidatorGuards(updated, field);
  soir::Command cmd;
  cmd.kind = soir::CommandKind::kUpdate;
  cmd.a = std::move(updated);
  ctx_->Record(std::move(cmd));
}

void SymSet::del() const { CascadeDelete(ctx_, expr_, 0); }

void SymSet::relink(const std::string& key, const SymObj& target) const {
  auto [rel_id, forward] = ctx_->schema().FindRelation(model_id(), key);
  NOCTUA_CHECK_MSG(rel_id >= 0 && forward, "relink needs a forward related key");
  soir::Command cmd;
  cmd.kind = soir::CommandKind::kRLink;
  cmd.relation = rel_id;
  cmd.a = expr_;
  cmd.b = target.expr();
  ctx_->Record(std::move(cmd));
}

}  // namespace noctua::analyzer
