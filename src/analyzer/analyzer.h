// The ANALYZER driver (paper §4.1, Figure 5's AnalyzeApp / AnalyzeFunc).
//
// For every registered HTTP endpoint, the view function is re-executed under the path
// finder until all code paths are traversed. Each completed run yields one SOIR code path;
// runs ending in Abort (application-level rejection) are counted but carry no effects.
//
// Analysis results are incremental-engine artifacts: every endpoint carries a
// renaming-invariant content digest over its paths (soir::PathDigest), the whole result
// serializes to a stable versioned form, and AnalyzeAppIncremental can skip symbolic
// re-execution for endpoints whose handler fingerprint matches a prior result.
#ifndef SRC_ANALYZER_ANALYZER_H_
#define SRC_ANALYZER_ANALYZER_H_

#include <map>
#include <string>
#include <vector>

#include "src/analyzer/path_finder.h"
#include "src/app/app.h"
#include "src/soir/ast.h"
#include "src/soir/serialize.h"

namespace noctua::analyzer {

struct AnalyzerOptions {
  PathFinder::Options path_finder;
};

struct AnalysisResult {
  // Every non-aborted code path (effectful and read-only), in endpoint registration
  // order, then path-discovery order within an endpoint.
  std::vector<soir::CodePath> paths;
  size_t num_code_paths = 0;  // including aborted paths (paper Table 4 "#Code Paths")
  size_t num_effectful = 0;   // paths with at least one non-guard command
  double seconds = 0;

  // Per-endpoint incremental metadata, keyed by view name.
  // The digest is renaming-invariant content identity over the endpoint's paths: equal
  // digests mean every verification verdict involving this endpoint is reusable.
  std::map<std::string, std::string> endpoint_digests;
  // Total code paths explored per endpoint (including aborted ones), so a memoized
  // endpoint still contributes its Table-4 counters.
  std::map<std::string, size_t> endpoint_code_paths;
  // The handler fingerprint each endpoint was analyzed under ("" when unknown).
  std::map<std::string, std::string> view_fingerprints;
  // Endpoints served from the prior artifact without symbolic re-execution.
  size_t endpoints_reused = 0;

  // The effectful subset of `paths`, computed on first call and cached (benches call
  // this inside timing loops). Invalidated by nothing: results are treated as immutable
  // once analysis finishes. Not safe to call concurrently with the first call.
  const std::vector<soir::CodePath>& EffectfulPaths() const;

 private:
  mutable std::vector<soir::CodePath> effectful_cache_;
  mutable bool effectful_cached_ = false;
};

// Analyzes a single view function (Fig. 5 AnalyzeFunc). Appends to `result` and records
// the endpoint's digest and counters.
void AnalyzeView(const soir::Schema& schema, const app::View& view,
                 const AnalyzerOptions& options, AnalysisResult* result);

// Analyzes every endpoint of the app (Fig. 5 AnalyzeApp).
AnalysisResult AnalyzeApp(const app::App& app, const AnalyzerOptions& options = {});

// AnalyzeApp memoized against a prior result: an endpoint whose non-empty handler
// fingerprint matches `prior` reuses the prior paths/digest/counters without re-running
// the handler. `prior` must have been produced under a schema whose *structural* digest
// (soir::SchemaStructuralDigest) equals the current app's — the caller checks; model/
// relation ids must line up for the reused paths to mean the same thing. prior ==
// nullptr degenerates to AnalyzeApp.
AnalysisResult AnalyzeAppIncremental(const app::App& app, const AnalysisResult* prior,
                                     const AnalyzerOptions& options = {});

// Stable serialization of a whole analysis (paths + per-endpoint metadata; the timing
// field is excluded — it is a measurement, not content). Deserialization validates
// against `schema` and recomputes nothing: digests load as stored, so a round-trip
// reproduces them byte-identically.
void SerializeAnalysis(const AnalysisResult& analysis, soir::ArtifactWriter* w);
bool DeserializeAnalysis(soir::ArtifactReader* r, const soir::Schema& schema,
                         AnalysisResult* out);

// Recomputes every endpoint digest from the result's paths and compares with the stored
// values (and checks no path claims an unknown endpoint). False means the artifact's
// paths and digests disagree — corruption; the loader falls back to a cold run.
bool ValidateAnalysisDigests(const soir::Schema& schema, const AnalysisResult& analysis);

}  // namespace noctua::analyzer

#endif  // SRC_ANALYZER_ANALYZER_H_
