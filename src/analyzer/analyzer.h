// The ANALYZER driver (paper §4.1, Figure 5's AnalyzeApp / AnalyzeFunc).
//
// For every registered HTTP endpoint, the view function is re-executed under the path
// finder until all code paths are traversed. Each completed run yields one SOIR code path;
// runs ending in Abort (application-level rejection) are counted but carry no effects.
#ifndef SRC_ANALYZER_ANALYZER_H_
#define SRC_ANALYZER_ANALYZER_H_

#include <string>
#include <vector>

#include "src/analyzer/path_finder.h"
#include "src/app/app.h"
#include "src/soir/ast.h"

namespace noctua::analyzer {

struct AnalyzerOptions {
  PathFinder::Options path_finder;
};

struct AnalysisResult {
  // Every non-aborted code path (effectful and read-only).
  std::vector<soir::CodePath> paths;
  size_t num_code_paths = 0;  // including aborted paths (paper Table 4 "#Code Paths")
  size_t num_effectful = 0;   // paths with at least one non-guard command
  double seconds = 0;

  // The effectful subset of `paths`, computed on first call and cached (benches call
  // this inside timing loops). Invalidated by nothing: results are treated as immutable
  // once analysis finishes. Not safe to call concurrently with the first call.
  const std::vector<soir::CodePath>& EffectfulPaths() const;

 private:
  mutable std::vector<soir::CodePath> effectful_cache_;
  mutable bool effectful_cached_ = false;
};

// Analyzes a single view function (Fig. 5 AnalyzeFunc). Appends to `result`.
void AnalyzeView(const soir::Schema& schema, const app::View& view,
                 const AnalyzerOptions& options, AnalysisResult* result);

// Analyzes every endpoint of the app (Fig. 5 AnalyzeApp).
AnalysisResult AnalyzeApp(const app::App& app, const AnalyzerOptions& options = {});

}  // namespace noctua::analyzer

#endif  // SRC_ANALYZER_ANALYZER_H_
