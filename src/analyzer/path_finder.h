// Code-path discovery: the systematic branch-state exploration of paper Figure 5.
//
// The analyzer repeatedly re-executes a view function with the same symbolic arguments.
// Whenever the function is about to branch on a *symbolic* condition, the runtime hook
// (our SymBool -> bool conversion, the counterpart of Python's __bool__) asks the
// PathFinder which way to go. New conditions take the true branch first; after the run
// completes, the trailing decision state is advanced (last true flipped to false) until
// every combination reachable through the function has been visited.
//
// Conditions are keyed by their printed SOIR expression plus an occurrence counter, so a
// loop whose condition expression repeats gets distinct decision points per iteration
// (finite unrolling, the deliberately unsound choice discussed in paper §5.3). Exploration
// is bounded by max_decisions_per_path and max_paths.
#ifndef SRC_ANALYZER_PATH_FINDER_H_
#define SRC_ANALYZER_PATH_FINDER_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace noctua::analyzer {

class PathFinder {
 public:
  struct Options {
    size_t max_decisions_per_path = 64;
    size_t max_paths = 100000;
  };

  PathFinder() : PathFinder(Options()) {}
  explicit PathFinder(Options options) : options_(options) {}

  // Begins (re-)execution of the function for the next path.
  void StartPath();

  // The onBranch hook: returns the branch decision for the condition with the given
  // canonical key. Concrete conditions must not reach here (the Sym layer evaluates them
  // eagerly, Fig. 5 line 7).
  bool Branch(const std::string& cond_key);

  // Advances the branch state after a completed run. Returns true if another path
  // remains to explore (Fig. 5 lines 24-29).
  bool NextPath();

  // Number of decisions taken in the current path.
  size_t CurrentDepth() const { return decisions_.size(); }
  size_t paths_explored() const { return paths_explored_; }
  bool budget_exhausted() const { return budget_exhausted_; }

 private:
  struct Decision {
    std::string key;
    bool value;
  };

  Options options_;
  std::vector<Decision> decisions_;  // the ordered branching state (curState in Fig. 5)
  size_t cursor_ = 0;                // decisions consumed during the current run
  std::map<std::string, int> occurrence_;  // per-path occurrence counts per condition
  size_t paths_explored_ = 0;
  bool budget_exhausted_ = false;
};

}  // namespace noctua::analyzer

#endif  // SRC_ANALYZER_PATH_FINDER_H_
