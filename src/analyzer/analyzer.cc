#include "src/analyzer/analyzer.h"

#include <algorithm>

#include "src/analyzer/trace.h"
#include "src/analyzer/view_ctx.h"
#include "src/support/check.h"
#include "src/support/stopwatch.h"

namespace noctua::analyzer {

const std::vector<soir::CodePath>& AnalysisResult::EffectfulPaths() const {
  if (!effectful_cached_) {
    std::copy_if(paths.begin(), paths.end(), std::back_inserter(effectful_cache_),
                 [](const soir::CodePath& p) { return p.IsEffectful(); });
    effectful_cached_ = true;
  }
  return effectful_cache_;
}

void AnalyzeView(const soir::Schema& schema, const app::View& view,
                 const AnalyzerOptions& options, AnalysisResult* result) {
  PathFinder finder(options.path_finder);
  TraceCtx trace(schema, &finder);
  int path_index = 0;
  do {
    trace.StartPath();
    ViewCtx ctx(&trace);
    bool aborted = false;
    try {
      view.fn(ctx);
    } catch (const AbortPath&) {
      aborted = true;
    }
    ++result->num_code_paths;
    if (!aborted) {
      soir::CodePath path =
          trace.Finish(view.name + "#p" + std::to_string(path_index), view.name);
      if (path.IsEffectful()) {
        ++result->num_effectful;
      }
      result->paths.push_back(std::move(path));
    }
    ++path_index;
  } while (finder.NextPath());
}

AnalysisResult AnalyzeApp(const app::App& app, const AnalyzerOptions& options) {
  Stopwatch watch;
  AnalysisResult result;
  for (const app::View& view : app.views()) {
    AnalyzeView(app.schema(), view, options, &result);
  }
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace noctua::analyzer
