#include "src/analyzer/analyzer.h"

#include <algorithm>

#include "src/analyzer/trace.h"
#include "src/analyzer/view_ctx.h"
#include "src/obs/obs.h"
#include "src/support/check.h"
#include "src/support/stopwatch.h"

namespace noctua::analyzer {

const std::vector<soir::CodePath>& AnalysisResult::EffectfulPaths() const {
  if (!effectful_cached_) {
    std::copy_if(paths.begin(), paths.end(), std::back_inserter(effectful_cache_),
                 [](const soir::CodePath& p) { return p.IsEffectful(); });
    effectful_cached_ = true;
  }
  return effectful_cache_;
}

namespace {

// Digest over one endpoint's paths: each path's renaming-invariant digest plus the
// explored-path counter, so "same effectful paths, different abort branches" still
// registers as a change in Table-4 accounting.
std::string EndpointDigest(const soir::Schema& schema,
                           const std::vector<const soir::CodePath*>& paths,
                           size_t code_paths) {
  std::string material;
  for (const soir::CodePath* p : paths) {
    material += soir::PathDigest(schema, *p);
    material += ';';
  }
  material += "#code_paths=" + std::to_string(code_paths);
  return soir::DigestHex(soir::Fnv1a64(material));
}

}  // namespace

void AnalyzeView(const soir::Schema& schema, const app::View& view,
                 const AnalyzerOptions& options, AnalysisResult* result) {
  obs::ScopedSpan span(obs::Enabled() ? view.name : std::string(), obs::kCatAnalyze);
  PathFinder finder(options.path_finder);
  TraceCtx trace(schema, &finder);
  int path_index = 0;
  size_t first_path = result->paths.size();
  size_t code_paths = 0;
  do {
    trace.StartPath();
    ViewCtx ctx(&trace);
    bool aborted = false;
    try {
      view.fn(ctx);
    } catch (const AbortPath&) {
      aborted = true;
    }
    ++code_paths;
    if (!aborted) {
      soir::CodePath path =
          trace.Finish(view.name + "#p" + std::to_string(path_index), view.name);
      if (path.IsEffectful()) {
        ++result->num_effectful;
      }
      result->paths.push_back(std::move(path));
    }
    ++path_index;
  } while (finder.NextPath());
  result->num_code_paths += code_paths;
  result->endpoint_code_paths[view.name] = code_paths;
  std::vector<const soir::CodePath*> view_paths;
  for (size_t i = first_path; i < result->paths.size(); ++i) {
    view_paths.push_back(&result->paths[i]);
  }
  result->endpoint_digests[view.name] = EndpointDigest(schema, view_paths, code_paths);
  result->view_fingerprints[view.name] = view.fingerprint;
  span.Arg("code_paths", code_paths);
  span.Arg("paths_kept", result->paths.size() - first_path);
}

AnalysisResult AnalyzeApp(const app::App& app, const AnalyzerOptions& options) {
  return AnalyzeAppIncremental(app, nullptr, options);
}

AnalysisResult AnalyzeAppIncremental(const app::App& app, const AnalysisResult* prior,
                                     const AnalyzerOptions& options) {
  Stopwatch watch;
  AnalysisResult result;
  for (const app::View& view : app.views()) {
    bool reused = false;
    if (prior != nullptr && !view.fingerprint.empty()) {
      auto fp = prior->view_fingerprints.find(view.name);
      auto digest = prior->endpoint_digests.find(view.name);
      auto code_paths = prior->endpoint_code_paths.find(view.name);
      if (fp != prior->view_fingerprints.end() && fp->second == view.fingerprint &&
          digest != prior->endpoint_digests.end() &&
          code_paths != prior->endpoint_code_paths.end()) {
        for (const soir::CodePath& p : prior->paths) {
          if (p.view_name != view.name) {
            continue;
          }
          if (p.IsEffectful()) {
            ++result.num_effectful;
          }
          result.paths.push_back(p);
        }
        result.num_code_paths += code_paths->second;
        result.endpoint_code_paths[view.name] = code_paths->second;
        result.endpoint_digests[view.name] = digest->second;
        result.view_fingerprints[view.name] = view.fingerprint;
        ++result.endpoints_reused;
        reused = true;
      }
    }
    if (!reused) {
      AnalyzeView(app.schema(), view, options, &result);
    }
  }
  result.seconds = watch.ElapsedSeconds();
  if (obs::Enabled()) {
    obs::Add(obs::Counter::kEndpointsMemoized, result.endpoints_reused);
    obs::Add(obs::Counter::kEndpointsAnalyzed,
             app.views().size() - result.endpoints_reused);
  }
  return result;
}

// --- Serialization --------------------------------------------------------------------------

namespace {
constexpr size_t kMaxPaths = 10000000;
constexpr size_t kMaxEndpoints = 1000000;
}  // namespace

void SerializeAnalysis(const AnalysisResult& analysis, soir::ArtifactWriter* w) {
  w->Atom("analysis");
  w->Int(static_cast<int64_t>(analysis.num_code_paths));
  w->Int(static_cast<int64_t>(analysis.num_effectful));
  w->Int(static_cast<int64_t>(analysis.paths.size()));
  for (const soir::CodePath& p : analysis.paths) {
    SerializeCodePath(p, w);
  }
  w->Int(static_cast<int64_t>(analysis.endpoint_digests.size()));
  for (const auto& [view, digest] : analysis.endpoint_digests) {
    w->Str(view);
    w->Str(digest);
    auto code_paths = analysis.endpoint_code_paths.find(view);
    w->Int(code_paths != analysis.endpoint_code_paths.end()
               ? static_cast<int64_t>(code_paths->second)
               : 0);
    auto fp = analysis.view_fingerprints.find(view);
    w->Str(fp != analysis.view_fingerprints.end() ? fp->second : "");
  }
}

bool DeserializeAnalysis(soir::ArtifactReader* r, const soir::Schema& schema,
                         AnalysisResult* out) {
  r->ExpectAtom("analysis");
  int64_t num_code_paths = r->Int();
  int64_t num_effectful = r->Int();
  if (!r->ok() || num_code_paths < 0 || num_effectful < 0) {
    r->Fail();
    return false;
  }
  out->num_code_paths = static_cast<size_t>(num_code_paths);
  out->num_effectful = static_cast<size_t>(num_effectful);
  size_t num_paths = r->Count(kMaxPaths);
  for (size_t i = 0; r->ok() && i < num_paths; ++i) {
    soir::CodePath path;
    if (!DeserializeCodePath(r, schema, &path)) {
      return false;
    }
    out->paths.push_back(std::move(path));
  }
  size_t num_endpoints = r->Count(kMaxEndpoints);
  for (size_t i = 0; r->ok() && i < num_endpoints; ++i) {
    std::string view = r->Str();
    std::string digest = r->Str();
    int64_t code_paths = r->Int();
    std::string fp = r->Str();
    if (!r->ok() || code_paths < 0) {
      r->Fail();
      return false;
    }
    out->endpoint_digests[view] = digest;
    out->endpoint_code_paths[view] = static_cast<size_t>(code_paths);
    out->view_fingerprints[view] = fp;
  }
  return r->ok();
}

bool ValidateAnalysisDigests(const soir::Schema& schema, const AnalysisResult& analysis) {
  std::map<std::string, std::vector<const soir::CodePath*>> by_view;
  for (const soir::CodePath& p : analysis.paths) {
    by_view[p.view_name].push_back(&p);
  }
  static const std::vector<const soir::CodePath*> kNoPaths;
  for (const auto& [view, digest] : analysis.endpoint_digests) {
    auto code_paths = analysis.endpoint_code_paths.find(view);
    if (code_paths == analysis.endpoint_code_paths.end()) {
      return false;
    }
    auto it = by_view.find(view);
    const auto& paths = it == by_view.end() ? kNoPaths : it->second;
    if (EndpointDigest(schema, paths, code_paths->second) != digest) {
      return false;
    }
  }
  for (const auto& [view, unused] : by_view) {
    if (analysis.endpoint_digests.find(view) == analysis.endpoint_digests.end()) {
      return false;  // a path claims an endpoint the metadata does not know
    }
  }
  return true;
}

}  // namespace noctua::analyzer
