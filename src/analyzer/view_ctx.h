// ViewCtx — the API surface application view functions are written against.
//
// A view function receives a ViewCtx and uses it to read request parameters, query models
// and record effects, exactly like a Django view uses `request` and `Model.objects`. Under
// the analyzer, every returned value is symbolic; parameter accesses are discovered as
// code path arguments on first touch (paper §4.1 "whenever a new POST parameter is
// accessed, it is automatically recorded as an additional argument").
#ifndef SRC_ANALYZER_VIEW_CTX_H_
#define SRC_ANALYZER_VIEW_CTX_H_

#include <string>
#include <utility>
#include <vector>

#include "src/analyzer/sym.h"
#include "src/analyzer/trace.h"

namespace noctua::analyzer {

class ViewCtx {
 public:
  explicit ViewCtx(TraceCtx* trace) : trace_(trace) {}

  const soir::Schema& schema() const { return trace_->schema(); }
  TraceCtx* trace() const { return trace_; }

  // --- Request parameters (typed accessors; discovered as arguments on first use) --------
  Sym Param(const std::string& name) { return ArgOf("arg_URL_" + name, soir::Type::String()); }
  Sym ParamInt(const std::string& name) { return ArgOf("arg_URL_" + name, soir::Type::Int()); }
  Sym ParamRef(const std::string& name, const std::string& model) {
    return ArgOf("arg_URL_" + name, soir::Type::Ref(schema().ModelId(model)));
  }
  Sym Post(const std::string& name) { return ArgOf("arg_POST_" + name, soir::Type::String()); }
  Sym PostInt(const std::string& name) { return ArgOf("arg_POST_" + name, soir::Type::Int()); }
  Sym PostBool(const std::string& name) {
    return ArgOf("arg_POST_" + name, soir::Type::Bool());
  }
  Sym PostRef(const std::string& name, const std::string& model) {
    return ArgOf("arg_POST_" + name, soir::Type::Ref(schema().ModelId(model)));
  }

  // --- Model managers ---------------------------------------------------------------------
  // Model.objects — the full query set of the model (SOIR all<model>).
  SymSet M(const std::string& model) {
    return SymSet(trace_, soir::MakeAll(schema().ModelId(model)));
  }

  // Dereferences a Ref-typed value (e.g. from ParamRef) into an object, guarding that it
  // exists — the translation of Model.objects.get(pk=...) in the paper's Fig. 3 walkthrough.
  SymObj Deref(const std::string& model, const Sym& ref);

  // --- Object creation ----------------------------------------------------------------------
  // Model.objects.create(...): allocates a globally-unique new ID (an argument marked
  // unique_id, §5.2), guards against duplicates on unique fields, records the insert, and
  // links the given forward relations. Fields not listed take their schema defaults.
  SymObj Create(const std::string& model, std::vector<std::pair<std::string, Sym>> fields,
                std::vector<std::pair<std::string, SymObj>> links = {});

  // Declares a composite uniqueness constraint check for the *current request* — the
  // "unique together" semantics of §6.4's FollowQuestion case: aborts (guards) unless no
  // object already carries all the given relation targets.
  void GuardUniqueTogether(const std::string& model,
                           std::vector<std::pair<std::string, SymObj>> rel_targets);

  // --- Relations ------------------------------------------------------------------------------
  void Link(const std::string& key, const SymObj& from, const SymObj& to);
  void Delink(const std::string& key, const SymObj& from, const SymObj& to);
  void ClearLinks(const std::string& key, const SymObj& obj);

  // --- Control --------------------------------------------------------------------------------
  void Guard(const Sym& cond) { trace_->Guard(cond.expr()); }
  [[noreturn]] void Abort() { trace_->Abort(); }

 private:
  Sym ArgOf(const std::string& name, soir::Type type) {
    return Sym(trace_, trace_->Arg(name, type));
  }

  TraceCtx* trace_;
};

}  // namespace noctua::analyzer

#endif  // SRC_ANALYZER_VIEW_CTX_H_
