// Symbolic values — the C++ counterpart of the paper's Sym class (Figure 6).
//
// Operations on Sym values are overloaded to build SOIR IR expressions instead of
// computing; concrete values mixed into symbolic expressions are lifted to literals; and
// the implicit conversion to bool — the analogue of Python's __bool__ — is the branching
// hook that drives path exploration (paper §5.1 "Path discovery"). Purely concrete
// computations fold eagerly, so they never reach the path finder (Fig. 5 line 7).
//
// SymObj and SymSet add the ORM facade: filter / get / order_by / update / delete / ...
// Their effectful methods do not touch any database — they record SOIR commands in the
// TraceCtx, which is exactly how the paper's analyzer collects effects (§4.1).
#ifndef SRC_ANALYZER_SYM_H_
#define SRC_ANALYZER_SYM_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/analyzer/trace.h"
#include "src/soir/ast.h"

namespace noctua::analyzer {

class SymObj;
class SymSet;

// A scalar symbolic value (Bool / Int / Float / String / Datetime / Ref).
class Sym {
 public:
  Sym() = default;
  Sym(TraceCtx* ctx, soir::ExprP expr) : ctx_(ctx), expr_(std::move(expr)) {}
  // Literal lifting: lets application code write `count + 1`, `action == "delete"`.
  Sym(int64_t v) : expr_(soir::MakeIntLit(v)) {}          // NOLINT(runtime/explicit)
  Sym(int v) : expr_(soir::MakeIntLit(v)) {}              // NOLINT(runtime/explicit)
  Sym(bool v) : expr_(soir::MakeBoolLit(v)) {}            // NOLINT(runtime/explicit)
  Sym(const char* s) : expr_(soir::MakeStrLit(s)) {}      // NOLINT(runtime/explicit)
  Sym(const std::string& s) : expr_(soir::MakeStrLit(s)) {}  // NOLINT(runtime/explicit)

  const soir::ExprP& expr() const { return expr_; }
  TraceCtx* ctx() const { return ctx_; }

  // The branching hook (Python __bool__): concrete values return directly; symbolic ones
  // consult the path finder and record the taken side as a path condition. Explicit, so it
  // fires only in boolean contexts (if/while/&&) — exactly where Python calls __bool__.
  explicit operator bool() const;

  Sym operator!() const;

  friend Sym operator+(const Sym& a, const Sym& b);
  friend Sym operator-(const Sym& a, const Sym& b);
  friend Sym operator*(const Sym& a, const Sym& b);
  Sym operator-() const;
  friend Sym operator==(const Sym& a, const Sym& b);
  friend Sym operator!=(const Sym& a, const Sym& b);
  friend Sym operator<(const Sym& a, const Sym& b);
  friend Sym operator<=(const Sym& a, const Sym& b);
  friend Sym operator>(const Sym& a, const Sym& b);
  friend Sym operator>=(const Sym& a, const Sym& b);
  // Non-short-circuiting logical connectives (&& / || cannot be overloaded faithfully).
  friend Sym operator&(const Sym& a, const Sym& b);
  friend Sym operator|(const Sym& a, const Sym& b);

 private:
  friend class SymObj;
  friend class SymSet;
  TraceCtx* ctx_ = nullptr;
  soir::ExprP expr_;
};

// String concatenation (kept off operator+ to avoid ambiguity with arithmetic).
Sym SymConcat(const Sym& a, const Sym& b);

// A symbolic object (one model instance).
class SymObj {
 public:
  SymObj() = default;
  SymObj(TraceCtx* ctx, soir::ExprP expr) : ctx_(ctx), expr_(std::move(expr)) {}

  const soir::ExprP& expr() const { return expr_; }
  int model_id() const { return expr_->type.model_id; }

  // Field read; `attr(pk_name)` or attr("id") yields the object's Ref.
  Sym attr(const std::string& field) const;
  // Functional field update (SOIR setf) — returns the modified object.
  SymObj with(const std::string& field, const Sym& value) const;
  // Persists this object: records update(singleton(obj)) plus validator guards.
  void save() const;
  // Deletes this object (cascading per the schema's on_delete policies).
  void destroy() const;
  Sym ref() const;

  // Follows a forward relation with multiplicity one (obj.author); records an existence
  // guard, mirroring Django raising RelatedObjectDoesNotExist.
  SymObj rel(const std::string& key) const;
  // Follows any related key to a query set (obj.article_set, many-to-many keys).
  SymSet rel_set(const std::string& key) const;

 private:
  TraceCtx* ctx_ = nullptr;
  soir::ExprP expr_;
};

// A symbolic query set.
class SymSet {
 public:
  SymSet() = default;
  SymSet(TraceCtx* ctx, soir::ExprP expr) : ctx_(ctx), expr_(std::move(expr)) {}

  const soir::ExprP& expr() const { return expr_; }
  int model_id() const { return expr_->type.model_id; }

  // Django-style lookup: `key` is a "__"-separated path of related keys ending in a field
  // ("author__name"), optionally with a comparison suffix ("age__gte"). A path ending in a
  // related key compares the target's primary key ("author" ~ author's pk).
  SymSet filter(const std::string& key, const Sym& value) const;
  SymSet filter(const std::string& key, const SymObj& target) const;

  // filter + existence guard + arbitrary element (Django .get()).
  SymObj get(const std::string& key, const Sym& value) const;
  SymObj get(const std::string& key, const SymObj& target) const;

  Sym exists() const;
  Sym count() const;
  Sym aggregate(soir::AggOp op, const std::string& field) const;

  // Django order_by("field") / order_by("-field").
  SymSet order_by(const std::string& field) const;
  SymSet reversed() const;
  SymObj first() const;  // records an existence guard
  SymObj last() const;
  SymObj any() const;

  SymSet follow(const std::string& key) const;

  // Bulk update (Django queryset.update(field=value)); validator guards are recorded for
  // the written field.
  void update(const std::string& field, const Sym& value) const;
  // Bulk update where the new value depends on the current object (F-expressions),
  // e.g. qs.update_each("follow", [](SymObj o) { return o.attr("follow") + 1; }).
  void update_each(const std::string& field, const std::function<Sym(SymObj)>& fn) const;
  // Bulk delete with client-side cascade expansion per on_delete (like Django).
  void del() const;

  // Re-links the given forward relation of every member to `target`
  // (queryset.update(author=target) in Django).
  void relink(const std::string& key, const SymObj& target) const;

 private:
  void RecordValidatorGuards(soir::ExprP updated_set, const std::string& field) const;
  TraceCtx* ctx_ = nullptr;
  soir::ExprP expr_;
};

// Resolves a Django-style lookup path against the schema. Returns the relation steps, the
// final field name and the comparison operator (from a __gte/__lt/... suffix, default ==).
struct LookupPath {
  std::vector<soir::RelStep> steps;
  std::string field;      // final data field, or the pk name when comparing a relation
  soir::CmpOp op = soir::CmpOp::kEq;
  bool target_is_relation = false;  // true when the path's last key was a related key
  int final_model = -1;             // model the field lives on
};
LookupPath ResolveLookup(const soir::Schema& schema, int model_id, const std::string& key);

}  // namespace noctua::analyzer

#endif  // SRC_ANALYZER_SYM_H_
