#include "src/analyzer/trace.h"

#include "src/soir/printer.h"
#include "src/support/check.h"

namespace noctua::analyzer {

void TraceCtx::StartPath() {
  args_.clear();
  arg_exprs_.clear();
  commands_.clear();
  fresh_counter_ = 0;
  finder_->StartPath();
}

bool TraceCtx::Branch(const soir::ExprP& cond) {
  NOCTUA_CHECK_MSG(cond->kind != soir::ExprKind::kBoolLit,
                   "concrete conditions must be folded before branching");
  bool taken = finder_->Branch(soir::PrintExpr(schema_, *cond));
  Guard(taken ? cond : soir::MakeNot(cond));
  return taken;
}

void TraceCtx::Guard(soir::ExprP cond) {
  soir::Command cmd;
  cmd.kind = soir::CommandKind::kGuard;
  cmd.a = std::move(cond);
  commands_.push_back(std::move(cmd));
}

void TraceCtx::Record(soir::Command cmd) { commands_.push_back(std::move(cmd)); }

soir::ExprP TraceCtx::Arg(const std::string& name, soir::Type type, bool unique_id) {
  auto it = arg_exprs_.find(name);
  if (it != arg_exprs_.end()) {
    NOCTUA_CHECK_MSG(it->second->type == type,
                     "argument " << name << " used at two different types");
    return it->second;
  }
  soir::ExprP e = soir::MakeArg(name, type);
  args_.push_back(soir::ArgDef{name, type, unique_id});
  arg_exprs_[name] = e;
  return e;
}

std::string TraceCtx::FreshArgName(const std::string& prefix) {
  return prefix + "_" + std::to_string(fresh_counter_++);
}

soir::CodePath TraceCtx::Finish(const std::string& op_name, const std::string& view_name) {
  soir::CodePath path;
  path.op_name = op_name;
  path.view_name = view_name;
  path.args = args_;
  path.commands = commands_;
  return path;
}

}  // namespace noctua::analyzer
