#include "src/analyzer/view_ctx.h"

#include "src/support/check.h"

namespace noctua::analyzer {

using soir::CmpOp;
using soir::ExprP;
using soir::Type;

SymObj ViewCtx::Deref(const std::string& model, const Sym& ref) {
  int m = schema().ModelId(model);
  NOCTUA_CHECK_MSG(ref.expr()->type.kind == Type::Kind::kRef,
                   "Deref needs a Ref-typed value (use ParamRef/PostRef)");
  // guard(exists<Model>(ref)); obj = deref(ref) — paper §3.1.3.
  ExprP matched = soir::MakeFilter(soir::MakeAll(m), {}, schema().model(m).pk_name(),
                                   CmpOp::kEq, ref.expr());
  trace_->Guard(soir::MakeExists(matched));
  return SymObj(trace_, soir::MakeDeref(ref.expr()));
}

SymObj ViewCtx::Create(const std::string& model,
                       std::vector<std::pair<std::string, Sym>> fields,
                       std::vector<std::pair<std::string, SymObj>> links) {
  int m = schema().ModelId(model);
  const soir::ModelDef& md = schema().model(m);

  // The database generates a globally-unique ID for the new object; it enters the path as
  // a unique-id argument (§5.2) with the condition that it does not exist yet.
  std::string id_name = trace_->FreshArgName("arg_new_" + md.name());
  ExprP new_id = trace_->Arg(id_name, Type::Ref(m), /*unique_id=*/true);
  ExprP already =
      soir::MakeFilter(soir::MakeAll(m), {}, md.pk_name(), CmpOp::kEq, new_id);
  trace_->Guard(soir::MakeNot(soir::MakeExists(already)));

  // Assemble field values in schema order, defaulting unset fields.
  std::vector<ExprP> values(md.fields().size());
  for (auto& [name, sym] : fields) {
    int idx = md.FieldIndex(name);
    NOCTUA_CHECK_MSG(idx >= 0, "Create: unknown field " << name << " on " << md.name());
    values[idx] = sym.expr();
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (!values[i]) {
      const soir::FieldDef& fd = md.fields()[i];
      switch (fd.type) {
        case soir::FieldType::kBool:
          values[i] = soir::MakeBoolLit(fd.default_int != 0);
          break;
        case soir::FieldType::kString:
          values[i] = soir::MakeStrLit(fd.default_string);
          break;
        default:
          values[i] = soir::MakeIntLit(fd.default_int);
          break;
      }
    }
  }

  // Unique fields: the insert aborts if another object already holds the value
  // (IntegrityError in Django); this is part of the commit precondition.
  for (size_t i = 0; i < values.size(); ++i) {
    const soir::FieldDef& fd = md.fields()[i];
    if (fd.unique) {
      ExprP dup = soir::MakeFilter(soir::MakeAll(m), {}, fd.name, CmpOp::kEq, values[i]);
      trace_->Guard(soir::MakeNot(soir::MakeExists(dup)));
    }
    if (fd.positive) {
      trace_->Guard(soir::MakeCmp(CmpOp::kGe, values[i], soir::MakeIntLit(0)));
    }
  }

  ExprP obj = soir::MakeNewObj(m, new_id, std::move(values));
  soir::Command insert;
  insert.kind = soir::CommandKind::kUpdate;
  insert.a = soir::MakeSingleton(obj);
  trace_->Record(std::move(insert));

  SymObj result(trace_, obj);
  for (auto& [key, target] : links) {
    Link(key, result, target);
  }
  return result;
}

void ViewCtx::GuardUniqueTogether(const std::string& model,
                                  std::vector<std::pair<std::string, SymObj>> rel_targets) {
  int m = schema().ModelId(model);
  ExprP matched = soir::MakeAll(m);
  for (auto& [key, target] : rel_targets) {
    LookupPath lp = ResolveLookup(schema(), m, key);
    NOCTUA_CHECK_MSG(lp.target_is_relation, "GuardUniqueTogether needs relation keys");
    matched = soir::MakeFilter(matched, lp.steps, lp.field, CmpOp::kEq,
                               soir::MakeRefOf(target.expr()));
  }
  trace_->Guard(soir::MakeNot(soir::MakeExists(matched)));
}

namespace {
std::pair<int, bool> RequireForward(const soir::Schema& schema, int model,
                                    const std::string& key) {
  auto [rel_id, forward] = schema.FindRelation(model, key);
  NOCTUA_CHECK_MSG(rel_id >= 0, "unknown related key " << key);
  return {rel_id, forward};
}
}  // namespace

void ViewCtx::Link(const std::string& key, const SymObj& from, const SymObj& to) {
  auto [rel_id, forward] = RequireForward(schema(), from.model_id(), key);
  soir::Command cmd;
  cmd.kind = soir::CommandKind::kLink;
  cmd.relation = rel_id;
  cmd.a = forward ? from.expr() : to.expr();
  cmd.b = forward ? to.expr() : from.expr();
  trace_->Record(std::move(cmd));
}

void ViewCtx::Delink(const std::string& key, const SymObj& from, const SymObj& to) {
  auto [rel_id, forward] = RequireForward(schema(), from.model_id(), key);
  soir::Command cmd;
  cmd.kind = soir::CommandKind::kDelink;
  cmd.relation = rel_id;
  cmd.a = forward ? from.expr() : to.expr();
  cmd.b = forward ? to.expr() : from.expr();
  trace_->Record(std::move(cmd));
}

void ViewCtx::ClearLinks(const std::string& key, const SymObj& obj) {
  auto [rel_id, forward] = RequireForward(schema(), obj.model_id(), key);
  soir::Command cmd;
  cmd.kind = soir::CommandKind::kClearLinks;
  cmd.relation = rel_id;
  cmd.a = obj.expr();
  cmd.forward = forward;
  trace_->Record(std::move(cmd));
}

}  // namespace noctua::analyzer
