#include "src/analyzer/path_finder.h"

#include "src/support/check.h"

namespace noctua::analyzer {

void PathFinder::StartPath() {
  cursor_ = 0;
  occurrence_.clear();
  ++paths_explored_;
}

bool PathFinder::Branch(const std::string& cond_key) {
  // Distinguish repeated occurrences of the same condition within one path (loop
  // iterations), so each gets its own decision point.
  int occ = occurrence_[cond_key]++;
  std::string key = occ == 0 ? cond_key : cond_key + "#" + std::to_string(occ);

  if (cursor_ < decisions_.size()) {
    // Replaying a previously made decision. The function must branch deterministically
    // given the decisions so far; a mismatch means the app used extra-symbolic
    // nondeterminism, which the analysis model excludes.
    NOCTUA_CHECK_MSG(decisions_[cursor_].key == key,
                     "non-deterministic branch order: expected " << decisions_[cursor_].key
                                                                 << " got " << key);
    return decisions_[cursor_++].value;
  }
  if (decisions_.size() >= options_.max_decisions_per_path) {
    // Decision budget exhausted: force the false branch to steer loops toward exit
    // without recording the decision (conservative truncation; §5.3).
    budget_exhausted_ = true;
    return false;
  }
  decisions_.push_back(Decision{key, true});  // new conditions take the true branch first
  ++cursor_;
  return true;
}

bool PathFinder::NextPath() {
  if (paths_explored_ >= options_.max_paths) {
    budget_exhausted_ = true;
    return false;
  }
  // Drop decisions that never happened in this run (stale deeper state), then flip the
  // deepest unflipped decision from true to false.
  decisions_.resize(cursor_);
  while (!decisions_.empty()) {
    if (decisions_.back().value) {
      decisions_.back().value = false;
      return true;
    }
    decisions_.pop_back();
  }
  return false;
}

}  // namespace noctua::analyzer
