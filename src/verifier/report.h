// Restriction-set assembly: runs both checking rules over every unordered pair of
// effectful code paths (including each path with itself) and aggregates the paper's
// Table 5/6 statistics.
//
// The pair loop is parallel (work-stealing pool, per-worker term factories), cached
// (canonical-fingerprint verdict cache shared across pairs), and scheduled cheapest
// first (prefilter hits retire before expensive SMT pairs start). Results are written
// into index-addressed slots, so the report's pair order — and every verdict in it — is
// identical for any thread count.
#ifndef SRC_VERIFIER_REPORT_H_
#define SRC_VERIFIER_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/soir/ast.h"
#include "src/verifier/checker.h"

namespace noctua {
class ThreadPool;
namespace smt {
class SolverCounterSink;
}  // namespace smt
}  // namespace noctua

namespace noctua::verifier {

class VerdictCache;

// Execution knobs for AnalyzeRestrictions, orthogonal to what is checked
// (CheckerOptions) — these change only how fast the same verdicts are produced.
struct ParallelOptions {
  // Degree of parallelism including the calling thread; 0 means the NOCTUA_THREADS
  // environment variable if set, else the hardware concurrency. 1 runs the classic
  // serial loop (no pool).
  int threads = 0;
  // Share solver verdicts between pairs whose queries are isomorphic up to renaming.
  bool cache = true;
  // Dispatch pairs cheapest-first (prefiltered pairs, then by footprint-size estimate).
  bool cheapest_first = true;
  // External verdict store to use instead of a run-local cache. The incremental engine
  // seeds it from a prior run's artifact (VerdictCache::LoadFromFile) so unchanged pairs
  // replay without a solver call; new verdicts are inserted into it, so saving it after
  // the run persists the union. Ignored when `cache` is false. nullptr = run-local.
  VerdictCache* store = nullptr;
  // Probability of re-solving a *replayed* verdict anyway and CHECK-failing if the fresh
  // outcome disagrees — a randomized audit of artifact integrity (FNV fingerprints are
  // not cryptographic). Sampling is derandomized per fingerprint (seeded by the key and
  // `paranoia_seed`), so the audited subset is thread-schedule independent. 0 disables;
  // 1.0 re-solves everything replayed.
  double paranoia = 0;
  uint64_t paranoia_seed = 0;
  // Entry bound for the RUN-LOCAL verdict cache (0 = unbounded). Evicted verdicts cost
  // at most a duplicate solver call, never correctness. Ignored when `store` is set: a
  // persistent store must not silently drop verdicts it is expected to replay.
  size_t cache_capacity = 0;
  // Borrowed worker pool to run the pair loop on instead of constructing a run-local
  // one. The caller must guarantee exclusive use for the duration of the run (a
  // ThreadPool supports one ParallelFor at a time); pool-task stats are reported as
  // before/after deltas. When set, `threads` is ignored. nullptr = run-local pool.
  ThreadPool* pool = nullptr;
  // Where this run's solver tallies (reuse hits, symmetry pruning, portfolio wins, ...)
  // are accumulated and delta'd from. nullptr = the process-wide sink, which preserves
  // the historical single-run behavior but cross-contaminates concurrent runs.
  smt::SolverCounterSink* counters = nullptr;
};

// Where a pair's verdicts came from, for incremental-run provenance.
enum class PairProvenance : uint8_t {
  kComputed,     // at least one of its verdicts was solved (or twin-cached) this run
  kReplayed,     // every verdict was served by an entry loaded from a prior run's store
  kPrefiltered,  // retired by the independence prefilter; no verdict queries at all
};

const char* PairProvenanceName(PairProvenance p);

struct PairVerdict {
  std::string p;
  std::string q;
  CheckOutcome commutativity = CheckOutcome::kPass;
  CheckOutcome semantic = CheckOutcome::kPass;
  double com_seconds = 0;
  double sem_seconds = 0;
  uint64_t solver_nodes = 0;  // nodes the solver explored for this pair (0 if cached)
  bool prefiltered = false;   // retired by the independence prefilter, no solver run
  uint8_t cache_hits = 0;     // verdicts of this pair served from the cache (0..3)
  PairProvenance provenance = PairProvenance::kComputed;

  bool Restricted() const {
    return OutcomeRestricts(commutativity) || OutcomeRestricts(semantic);
  }
};

// Aggregate execution statistics for one AnalyzeRestrictions run. Cache counters are
// deltas over this run (a persistent store accumulates across runs; the report
// snapshots its counters before and after).
struct ReportStats {
  int threads_used = 1;
  uint64_t pairs = 0;            // pairs examined
  uint64_t prefiltered = 0;      // pairs retired by the independence prefilter
  uint64_t solver_checks = 0;    // solver-level queries actually executed
  uint64_t cache_hits = 0;       // queries answered from the verdict cache
  uint64_t cache_misses = 0;     // cache lookups that went to the solver
  uint64_t replayed = 0;         // queries answered by entries loaded from a prior store
  uint64_t paranoia_rechecks = 0;  // replayed verdicts re-solved by paranoia sampling
  uint64_t pairs_replayed = 0;   // pairs with provenance kReplayed
  uint64_t pairs_computed = 0;   // pairs with provenance kComputed
  uint64_t solver_nodes = 0;     // total search nodes across all executed queries
  double check_seconds = 0;      // per-check wall time summed across workers
  uint64_t pool_tasks = 0;       // tasks the worker pool executed for this run
  uint64_t pool_steals = 0;      // tasks a participant stole from another's deque
  uint64_t cache_evictions = 0;  // verdicts dropped by a bounded run-local cache

  // Resolved solver backend name ("dfs", "cdcl", "portfolio") every query of this run
  // went through.
  std::string solver_backend = "dfs";
  // Portfolio race tallies for this run (all zero for single backends): races executed,
  // wins per contestant, races with no decisive verdict.
  uint64_t portfolio_races = 0;
  uint64_t portfolio_wins_dfs = 0;
  uint64_t portfolio_wins_cdcl = 0;
  uint64_t portfolio_undecided = 0;

  // Solver-optimization tallies for this run (deltas of the process-wide counters in
  // smt/backend.h): grounding roots served from an incremental backend's cache, work
  // removed by lex-leader symmetry reduction, CDCL Luby restarts, and learned clauses
  // dropped by clause-DB reduction.
  uint64_t incremental_reuse_hits = 0;
  uint64_t symmetry_pruned = 0;
  uint64_t cdcl_restarts = 0;
  uint64_t cdcl_clauses_forgotten = 0;

  // Per-shard snapshot of the verdict cache after the run (occupancy plus lifetime
  // hit/miss/eviction counts of the cache object — for a persistent store these span
  // all runs it served).
  struct CacheShardStat {
    size_t entries = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };
  std::vector<CacheShardStat> cache_shards;

  double CacheHitRate() const {
    uint64_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0 : static_cast<double>(cache_hits) / static_cast<double>(lookups);
  }
};

struct RestrictionReport {
  std::vector<PairVerdict> pairs;
  double total_seconds = 0;
  ReportStats stats;

  size_t num_checks() const { return pairs.size(); }  // Table 6 "#Checks": pairs examined
  size_t num_restrictions() const;
  size_t com_failures() const;  // pairs whose commutativity check did not pass
  size_t sem_failures() const;  // pairs whose semantic check did not pass
  double com_seconds() const;
  double sem_seconds() const;

  // Names of restricted pairs, e.g. "(Amalgamate, SendPayment)".
  std::vector<std::string> RestrictedPairNames() const;
  // Restricted pairs lifted to view level (op names up to '#'), deduplicated and in
  // first-appearance order — the input for deployment conflict tables.
  std::vector<std::pair<std::string, std::string>> RestrictedViewPairs() const;
  std::string ToString() const;
};

// Runs both rules over every unordered pair of `paths` (which should be the effectful
// paths of one application). Models whose insertion order is observed by *any* of the
// paths are compared order-sensitively in every commutativity check.
//
// The checker carries what to verify (schema + CheckerOptions); `parallel` carries how
// to execute. A const Checker is shared by all workers — see checker.h for the
// threading contract.
//
// `observers` holds additional paths that are NOT checked pairwise but whose order
// observations still count: a read-only endpoint that renders a model in insertion
// order makes that order part of app-wide state equality, so two writes that insert
// into the model must not be declared commutative merely because no *effectful* path
// looks at the order. Callers assembling a deployment restriction set should pass the
// application's full path list here; omitting it reproduces the narrower analysis.
RestrictionReport AnalyzeRestrictions(const Checker& checker,
                                      const std::vector<soir::CodePath>& paths,
                                      const ParallelOptions& parallel = {},
                                      const std::vector<soir::CodePath>& observers = {});

}  // namespace noctua::verifier

#endif  // SRC_VERIFIER_REPORT_H_
