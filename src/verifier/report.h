// Restriction-set assembly: runs both checking rules over every unordered pair of
// effectful code paths (including each path with itself) and aggregates the paper's
// Table 5/6 statistics.
#ifndef SRC_VERIFIER_REPORT_H_
#define SRC_VERIFIER_REPORT_H_

#include <string>
#include <vector>

#include "src/soir/ast.h"
#include "src/verifier/checker.h"

namespace noctua::verifier {

struct PairVerdict {
  std::string p;
  std::string q;
  CheckOutcome commutativity = CheckOutcome::kPass;
  CheckOutcome semantic = CheckOutcome::kPass;
  double com_seconds = 0;
  double sem_seconds = 0;

  bool Restricted() const {
    return OutcomeRestricts(commutativity) || OutcomeRestricts(semantic);
  }
};

struct RestrictionReport {
  std::vector<PairVerdict> pairs;
  double total_seconds = 0;

  size_t num_checks() const { return pairs.size(); }  // Table 6 "#Checks": pairs examined
  size_t num_restrictions() const;
  size_t com_failures() const;  // pairs whose commutativity check did not pass
  size_t sem_failures() const;  // pairs whose semantic check did not pass
  double com_seconds() const;
  double sem_seconds() const;

  // Names of restricted pairs, e.g. "(Amalgamate, SendPayment)".
  std::vector<std::string> RestrictedPairNames() const;
  std::string ToString() const;
};

// Runs both rules over every unordered pair of `paths` (which should be the effectful
// paths of one application). Models whose insertion order is observed by *any* of the
// paths are compared order-sensitively in every commutativity check.
//
// `observers` holds additional paths that are NOT checked pairwise but whose order
// observations still count: a read-only endpoint that renders a model in insertion
// order makes that order part of app-wide state equality, so two writes that insert
// into the model must not be declared commutative merely because no *effectful* path
// looks at the order. Callers assembling a deployment restriction set should pass the
// application's full path list here; omitting it reproduces the narrower analysis.
RestrictionReport AnalyzeRestrictions(const soir::Schema& schema,
                                      const std::vector<soir::CodePath>& paths,
                                      const CheckerOptions& options = {},
                                      const std::vector<soir::CodePath>& observers = {});

}  // namespace noctua::verifier

#endif  // SRC_VERIFIER_REPORT_H_
