// The VERIFIER: instantiates the checking rules of paper §2.2.1 as counterexample
// queries, runs the SMT backend, and assembles the restriction set.
//
//   Commutativity(P, Q):   ∀S,x,y.  S + P(x) + Q(y) = S + Q(y) + P(x)
//   Semantic(P, Q):        NotInvalidate(P,Q) ∧ NotInvalidate(Q,P)
//   NotInvalidate(P, Q):   ∀S,x,y.  g_P(x,S) ⟹ g_P(x, S + Q(y))
//
// Each rule is refuted: the solver searches for a state and arguments witnessing a
// violation (§5.2 "Generation"). Preconditions of the replayed effects are asserted on
// fresh states (the effect must be producible somewhere). A pair is restricted iff either
// rule fails, times out, or hits an unsupported construct (conservative fallback, §3.3).
#ifndef SRC_VERIFIER_CHECKER_H_
#define SRC_VERIFIER_CHECKER_H_

#include <set>
#include <string>
#include <vector>

#include "src/smt/solver.h"
#include "src/soir/ast.h"
#include "src/verifier/encoder.h"

namespace noctua::verifier {

enum class CheckOutcome : uint8_t {
  kPass,         // no counterexample within scope: the pair is safe under this rule
  kFail,         // counterexample found: restrict
  kTimeout,      // solver gave up: restrict conservatively
  kUnsupported,  // encoding hit an unsupported construct: restrict conservatively
};

const char* CheckOutcomeName(CheckOutcome o);
inline bool OutcomeRestricts(CheckOutcome o) { return o != CheckOutcome::kPass; }

struct CheckerOptions {
  smt::SolverOptions solver;
  EncoderOptions encoder;
  // Skip the solver when the two paths touch provably disjoint parts of the schema.
  bool independence_prefilter = true;
  // Assert replayed effects' preconditions on fresh origin states (paper §5.2); when
  // false, preconditions are asserted on the shared initial state (cheaper, stricter).
  bool fresh_origin_states = true;
};

struct CheckStats {
  double seconds = 0;
  uint64_t solver_nodes = 0;
  bool prefiltered = false;
};

class Checker {
 public:
  Checker(const soir::Schema& schema, CheckerOptions options)
      : schema_(schema), options_(std::move(options)) {}

  const CheckerOptions& options() const { return options_; }

  // Rule 1. `order_models` is the set of models whose relative order matters for state
  // equality (models whose insertion order is observed by any operation of the app);
  // pass nullptr to derive it from the pair alone.
  CheckOutcome CheckCommutativity(const soir::CodePath& p, const soir::CodePath& q,
                                  const std::set<int>* order_models = nullptr,
                                  CheckStats* stats = nullptr);

  // Rule 2, one direction: can Q's effect invalidate P's precondition?
  CheckOutcome CheckNotInvalidate(const soir::CodePath& p, const soir::CodePath& q,
                                  CheckStats* stats = nullptr);

  // Rule 2, both directions (the paper's semantic check).
  CheckOutcome CheckSemantic(const soir::CodePath& p, const soir::CodePath& q,
                             CheckStats* stats = nullptr);

 private:
  // True when the two paths' footprints are disjoint, so both rules trivially pass.
  bool Independent(const soir::CodePath& p, const soir::CodePath& q) const;
  CheckOutcome RunSolver(smt::TermFactory& factory, const std::vector<smt::Term>& assertions,
                         bool any_unsupported, CheckStats* stats);

  const soir::Schema& schema_;
  CheckerOptions options_;
};

}  // namespace noctua::verifier

#endif  // SRC_VERIFIER_CHECKER_H_
