// The VERIFIER: instantiates the checking rules of paper §2.2.1 as counterexample
// queries, runs the SMT backend, and assembles the restriction set.
//
//   Commutativity(P, Q):   ∀S,x,y.  S + P(x) + Q(y) = S + Q(y) + P(x)
//   Semantic(P, Q):        NotInvalidate(P,Q) ∧ NotInvalidate(Q,P)
//   NotInvalidate(P, Q):   ∀S,x,y.  g_P(x,S) ⟹ g_P(x, S + Q(y))
//
// Each rule is refuted: the solver searches for a state and arguments witnessing a
// violation (§5.2 "Generation"). Preconditions of the replayed effects are asserted on
// fresh states (the effect must be producible somewhere). A pair is restricted iff either
// rule fails, times out, or hits an unsupported construct (conservative fallback, §3.3).
#ifndef SRC_VERIFIER_CHECKER_H_
#define SRC_VERIFIER_CHECKER_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/smt/backend.h"
#include "src/smt/solver.h"
#include "src/soir/ast.h"
#include "src/verifier/encoder.h"

namespace noctua::verifier {

enum class CheckOutcome : uint8_t {
  kPass,         // no counterexample within scope: the pair is safe under this rule
  kFail,         // counterexample found: restrict
  kTimeout,      // solver gave up: restrict conservatively
  kUnsupported,  // encoding hit an unsupported construct: restrict conservatively
};

const char* CheckOutcomeName(CheckOutcome o);
inline bool OutcomeRestricts(CheckOutcome o) { return o != CheckOutcome::kPass; }

struct CheckerOptions {
  smt::SolverOptions solver;
  EncoderOptions encoder;
  // Skip the solver when the two paths touch provably disjoint parts of the schema.
  bool independence_prefilter = true;
  // Assert replayed effects' preconditions on fresh origin states (paper §5.2); when
  // false, preconditions are asserted on the shared initial state (cheaper, stricter).
  bool fresh_origin_states = true;
  // Project every query onto the pair's footprint closure: state constants and axioms
  // are only materialized for models/relations the pair can actually reach. The dropped
  // axioms are independently satisfiable, so verdicts are unchanged — but queries over
  // a two-model corner of a 14-model schema shrink dramatically.
  bool project_footprint = true;
};

struct CheckStats {
  double seconds = 0;
  uint64_t solver_nodes = 0;
  bool prefiltered = false;
  bool cache_hit = false;  // verdict served by the report-level fingerprint cache
  bool replayed = false;   // the serving cache entry was loaded from a prior run's store
};

class Checker {
 public:
  Checker(const soir::Schema& schema, CheckerOptions options = {})
      : schema_(schema), options_(std::move(options)) {}

  const CheckerOptions& options() const { return options_; }
  const soir::Schema& schema() const { return schema_; }

  // A check is a pure function of (schema, options, pair): all methods are const and a
  // single Checker may be shared by concurrent verification workers. Each check builds
  // its own TermFactory/Encoder/Solver, so nothing mutable is shared.

  // Rule 1. `order_models` is the set of models whose relative order matters for state
  // equality (models whose insertion order is observed by any operation of the app);
  // pass nullptr to derive it from the pair alone.
  CheckOutcome CheckCommutativity(const soir::CodePath& p, const soir::CodePath& q,
                                  const std::set<int>* order_models = nullptr,
                                  CheckStats* stats = nullptr) const;

  // Rule 2, one direction: can Q's effect invalidate P's precondition?
  CheckOutcome CheckNotInvalidate(const soir::CodePath& p, const soir::CodePath& q,
                                  CheckStats* stats = nullptr) const;

  // Rule 2, both directions (the paper's semantic check).
  CheckOutcome CheckSemantic(const soir::CodePath& p, const soir::CodePath& q,
                             CheckStats* stats = nullptr) const;

  // As above, additionally reporting each direction's own stats (direction two is left
  // untouched when it is skipped because direction one already restricts).
  CheckOutcome CheckSemantic(const soir::CodePath& p, const soir::CodePath& q,
                             CheckStats* stats, CheckStats* dir1_stats,
                             CheckStats* dir2_stats) const;

  // The per-pair hot path: one TermFactory, one solver backend, and one grounding pass
  // shared by a pair's commutativity query and both NotInvalidate directions. The
  // NotInvalidate frame — initial-state axioms, both preconditions, the unique-id axiom —
  // is asserted once; each direction pushes only its negated goal (plus the replayed
  // effect's definitions) and pops it afterwards, so an incremental backend re-grounds
  // only the per-direction roots. Falls back to the per-call legacy methods when the
  // backend is not incremental or NOCTUA_INCREMENTAL=off; verdicts are identical either
  // way (the shared frame is content-identical in shared-origin mode and differs only by
  // satisfiability-preserving origin constraints in fresh-origin mode).
  //
  // Both NotInvalidate directions encode p's arguments with prefix "x" and q's with "y"
  // (the legacy direction two swaps them); verdicts are invariant under that renaming.
  //
  // A session is single-threaded and must not outlive its Checker.
  class PairSession {
   public:
    PairSession(const Checker& checker, const soir::CodePath& p, const soir::CodePath& q,
                const std::set<int>* order_models = nullptr);
    ~PairSession();
    PairSession(const PairSession&) = delete;
    PairSession& operator=(const PairSession&) = delete;

    CheckOutcome Commutativity(CheckStats* stats = nullptr);
    // "Can q's effect invalidate p's precondition?" == CheckNotInvalidate(p, q).
    CheckOutcome NotInvalidatePQ(CheckStats* stats = nullptr);
    // The mirror direction == CheckNotInvalidate(q, p).
    CheckOutcome NotInvalidateQP(CheckStats* stats = nullptr);

   private:
    struct Shared;
    void EnsureShared();
    void BuildNiFrame();
    CheckOutcome NotInvalidateDir(bool pq, CheckStats* stats);

    const Checker& checker_;
    const soir::CodePath& p_;
    const soir::CodePath& q_;
    std::set<int> com_order_;  // StateEq order set for the commutativity query
    std::set<int> ni_order_;   // pair-derived order union for NotInvalidate
    bool prefiltered_ = false;
    std::unique_ptr<Shared> shared_;
  };

  // True when the prefilter would retire this pair without a solver call (footprints
  // provably disjoint). Exposed so the scheduler can retire such pairs first.
  bool Prefilterable(const soir::CodePath& p, const soir::CodePath& q) const {
    return options_.independence_prefilter && Independent(p, q);
  }

  // The pair's footprint closure: every model/relation either path can reach through
  // expressions, commands, relation paths, argument types, relation endpoints, or
  // delete-incident relations. This is what project_footprint materializes.
  struct PairScope {
    std::set<int> models;
    std::set<int> relations;
  };
  PairScope ComputeScope(const soir::CodePath& p, const soir::CodePath& q) const;

  // Severity order of outcomes (pass < fail < timeout < unsupported): the worse of two
  // directions decides a semantic check.
  static CheckOutcome WorseOutcome(CheckOutcome a, CheckOutcome b);

 private:
  // True when the two paths' footprints are disjoint, so both rules trivially pass.
  bool Independent(const soir::CodePath& p, const soir::CodePath& q) const;
  CheckOutcome RunSolver(smt::TermFactory& factory, const std::vector<smt::Term>& assertions,
                         bool any_unsupported, CheckStats* stats) const;
  // Runs a Check on an already-asserted backend and flushes the per-query solver
  // introspection; both the legacy per-call path and PairSession funnel through here.
  CheckOutcome RunSolverOn(smt::SolverBackend& backend, smt::TermFactory& factory,
                           bool any_unsupported, CheckStats* stats) const;
  // Applies project_footprint to a per-check encoder configuration.
  void ApplyProjection(const soir::CodePath& p, const soir::CodePath& q,
                       EncoderOptions* enc_options) const;

  const soir::Schema& schema_;
  CheckerOptions options_;
};

}  // namespace noctua::verifier

#endif  // SRC_VERIFIER_CHECKER_H_
