#include "src/verifier/cache.h"

#include "src/soir/printer.h"
#include "src/verifier/encoder.h"

namespace noctua::verifier {

std::optional<CheckOutcome> VerdictCache::Lookup(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lk(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void VerdictCache::Insert(const std::string& key, CheckOutcome outcome) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lk(shard.mu);
  shard.map.emplace(key, outcome);
}

size_t VerdictCache::size() const {
  size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(const_cast<Shard&>(s).mu);
    n += s.map.size();
  }
  return n;
}

namespace {

// Appends the order-membership vector: for each model the pair mentions (canonical
// order), whether its insertion order participates in the encoding. Membership of
// *unmentioned* models is irrelevant — they are projected out of the query.
std::string OrderPart(const soir::CanonicalizationCtx& ctx, const std::set<int>& order_models) {
  std::string out = "|ord:";
  for (int m : ctx.models()) {
    out += order_models.count(m) != 0 ? '1' : '0';
  }
  return out;
}

}  // namespace

std::string CommutativityKey(const soir::Schema& schema, const soir::CodePath& p,
                             const soir::CodePath& q, const std::set<int>& order_models) {
  soir::CanonicalizationCtx ctx(schema);
  std::string key = "com|";
  key += soir::CanonicalPath(schema, p, &ctx);
  key += "|";
  key += soir::CanonicalPath(schema, q, &ctx);
  key += OrderPart(ctx, order_models);
  key += "|";
  key += ctx.SchemaSignature();
  return key;
}

std::string NotInvalidateKey(const soir::Schema& schema, const soir::CodePath& p,
                             const soir::CodePath& q) {
  std::set<int> order = Encoder::OrderRelevantModels(p);
  std::set<int> oq = Encoder::OrderRelevantModels(q);
  order.insert(oq.begin(), oq.end());

  soir::CanonicalizationCtx ctx(schema);
  std::string key = "ni|";
  key += soir::CanonicalPath(schema, p, &ctx);
  key += "|";
  key += soir::CanonicalPath(schema, q, &ctx);
  key += OrderPart(ctx, order);
  key += "|";
  key += ctx.SchemaSignature();
  return key;
}

}  // namespace noctua::verifier
