#include "src/verifier/cache.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "src/soir/printer.h"
#include "src/soir/serialize.h"
#include "src/verifier/encoder.h"

namespace noctua::verifier {

std::optional<CheckOutcome> VerdictCache::Lookup(const std::string& key) {
  auto entry = LookupEntry(key);
  if (!entry) {
    return std::nullopt;
  }
  return entry->outcome;
}

std::optional<VerdictCache::Entry> VerdictCache::LookupEntry(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lk(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    ++shard.misses;
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  ++shard.hits;
  return it->second;
}

void VerdictCache::Insert(const std::string& key, CheckOutcome outcome) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lk(shard.mu);
  InsertLocked(shard, key, Entry{outcome, false});
}

// Inserts under the shard lock, evicting FIFO when a bounded shard is at its share of
// the capacity. Duplicate keys keep the existing entry (and do not re-enter the FIFO).
void VerdictCache::InsertLocked(Shard& shard, const std::string& key, Entry entry) {
  if (!shard.map.emplace(key, entry).second) {
    return;
  }
  if (capacity_ == 0) {
    return;
  }
  shard.fifo.push_back(key);
  size_t shard_capacity = std::max<size_t>(1, capacity_ / kShards);
  while (shard.map.size() > shard_capacity && !shard.fifo.empty()) {
    shard.map.erase(shard.fifo.front());
    shard.fifo.pop_front();
    ++shard.evictions;
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<VerdictCache::ShardStats> VerdictCache::PerShardStats() const {
  std::vector<ShardStats> out;
  out.reserve(kShards);
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(const_cast<Shard&>(s).mu);
    out.push_back(ShardStats{s.map.size(), s.hits, s.misses, s.evictions});
  }
  return out;
}

size_t VerdictCache::size() const {
  size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(const_cast<Shard&>(s).mu);
    n += s.map.size();
  }
  return n;
}

namespace {
constexpr size_t kMaxVerdicts = 10000000;
}  // namespace

bool VerdictCache::SaveToFile(const std::string& path) const {
  std::vector<std::pair<std::string, CheckOutcome>> entries;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(const_cast<Shard&>(s).mu);
    for (const auto& [key, entry] : s.map) {
      entries.emplace_back(key, entry.outcome);
    }
  }
  std::sort(entries.begin(), entries.end());

  soir::ArtifactWriter w;
  w.Atom("noctua-verdicts");
  w.Int(soir::kArtifactVersion);
  w.Int(static_cast<int64_t>(entries.size()));
  for (const auto& [key, outcome] : entries) {
    w.Str(key);
    w.Int(static_cast<int64_t>(outcome));
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out << w.str();
  return static_cast<bool>(out);
}

bool VerdictCache::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  soir::ArtifactReader r(buf.str());
  r.ExpectAtom("noctua-verdicts");
  if (r.Int() != soir::kArtifactVersion) {
    return false;
  }
  size_t n = r.Count(kMaxVerdicts);
  // Parse everything before touching the cache: a corrupted tail must not leave a
  // half-loaded store behind.
  std::vector<std::pair<std::string, CheckOutcome>> entries;
  entries.reserve(n);
  for (size_t i = 0; r.ok() && i < n; ++i) {
    std::string key = r.Str();
    int64_t outcome = r.Int();
    if (outcome < 0 || outcome > static_cast<int64_t>(CheckOutcome::kUnsupported)) {
      r.Fail();
      break;
    }
    entries.emplace_back(std::move(key), static_cast<CheckOutcome>(outcome));
  }
  if (!r.ok() || !r.AtEnd()) {
    return false;
  }
  for (auto& [key, outcome] : entries) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lk(shard.mu);
    InsertLocked(shard, key, Entry{outcome, true});
  }
  return true;
}

namespace {

// Appends the order-membership vector: for each model the pair mentions (canonical
// order), whether its insertion order participates in the encoding. Membership of
// *unmentioned* models is irrelevant — they are projected out of the query.
std::string OrderPart(const soir::CanonicalizationCtx& ctx, const std::set<int>& order_models) {
  std::string out = "|ord:";
  for (int m : ctx.models()) {
    out += order_models.count(m) != 0 ? '1' : '0';
  }
  return out;
}

}  // namespace

std::string CommutativityKey(const soir::Schema& schema, const soir::CodePath& p,
                             const soir::CodePath& q, const std::set<int>& order_models) {
  soir::CanonicalizationCtx ctx(schema);
  std::string key = "com|";
  key += soir::CanonicalPath(schema, p, &ctx);
  key += "|";
  key += soir::CanonicalPath(schema, q, &ctx);
  key += OrderPart(ctx, order_models);
  key += "|";
  key += ctx.SchemaSignature();
  return key;
}

std::string NotInvalidateKey(const soir::Schema& schema, const soir::CodePath& p,
                             const soir::CodePath& q) {
  std::set<int> order = Encoder::OrderRelevantModels(p);
  std::set<int> oq = Encoder::OrderRelevantModels(q);
  order.insert(oq.begin(), oq.end());

  soir::CanonicalizationCtx ctx(schema);
  std::string key = "ni|";
  key += soir::CanonicalPath(schema, p, &ctx);
  key += "|";
  key += soir::CanonicalPath(schema, q, &ctx);
  key += OrderPart(ctx, order);
  key += "|";
  key += ctx.SchemaSignature();
  return key;
}

}  // namespace noctua::verifier
