#include "src/verifier/encoder.h"

#include <algorithm>

#include "src/support/check.h"

namespace noctua::verifier {

using smt::Term;
using soir::CmpOp;
using soir::Expr;
using soir::ExprKind;
using soir::FieldType;

Encoder::Encoder(const soir::Schema& schema, smt::TermFactory* factory, EncoderOptions options)
    : schema_(schema), f_(factory), options_(options) {
  ref_sorts_.reserve(schema.num_models());
  obj_sorts_.reserve(schema.num_models());
  for (size_t m = 0; m < schema.num_models(); ++m) {
    ref_sorts_.push_back(smt::RefSort(static_cast<int>(m)));
    std::vector<smt::Sort> fields;
    fields.push_back(ref_sorts_.back());  // tuple field 0: the primary key
    for (const soir::FieldDef& fd : schema.model(static_cast<int>(m)).fields()) {
      switch (fd.type) {
        case FieldType::kBool:
          fields.push_back(smt::BoolSort());
          break;
        case FieldType::kString:
          fields.push_back(smt::StringSort());
          break;
        default:  // Int, Float, Datetime, Ref-as-int
          fields.push_back(smt::IntSort());
          break;
      }
    }
    obj_sorts_.push_back(smt::TupleSort(std::move(fields)));
  }
  pair_sorts_.reserve(schema.num_relations());
  for (const soir::RelationDef& rel : schema.relations()) {
    pair_sorts_.push_back(smt::PairSort(ref_sorts_[rel.from_model], ref_sorts_[rel.to_model]));
  }
}

smt::Sort Encoder::RefSortOf(int model) const { return ref_sorts_[model]; }
smt::Sort Encoder::ObjSortOf(int model) const { return obj_sorts_[model]; }
smt::Sort Encoder::PairSortOf(int relation) const { return pair_sorts_[relation]; }

int Encoder::FieldTupleIndex(int model, const std::string& field) const {
  const soir::ModelDef& md = schema_.model(model);
  if (md.IsPk(field) || field == "id") {
    return -1;
  }
  int idx = md.FieldIndex(field);
  NOCTUA_CHECK_MSG(idx >= 0, "unknown field " << field << " on " << md.name());
  return idx + 1;  // tuple slot 0 is the pk
}

EncState Encoder::FreshState(const std::string& prefix) {
  EncState s;
  s.models.resize(schema_.num_models());
  for (size_t m = 0; m < schema_.num_models(); ++m) {
    if (!options_.ModelActive(static_cast<int>(m))) {
      continue;  // projected out: null terms, so accidental use fails loudly
    }
    const std::string base = prefix + "_" + schema_.model(static_cast<int>(m)).name();
    s.models[m].ids = f_->Const(base + "_ids", smt::SetSort(ref_sorts_[m]));
    s.models[m].data = f_->Const(base + "_data", smt::ArraySort(ref_sorts_[m], obj_sorts_[m]));
    s.models[m].order =
        options_.OrderFor(static_cast<int>(m))
            ? f_->Const(base + "_order", smt::ArraySort(ref_sorts_[m], smt::IntSort()))
            : nullptr;
  }
  s.relations.resize(schema_.num_relations());
  for (size_t r = 0; r < schema_.num_relations(); ++r) {
    if (!options_.RelationActive(static_cast<int>(r))) {
      continue;
    }
    s.relations[r] = f_->Const(prefix + "_rel_" + schema_.relation(r).name + "_" +
                                   std::to_string(r),
                               smt::SetSort(pair_sorts_[r]));
  }
  return s;
}

smt::Term Encoder::StateAxioms(const EncState& s) {
  std::vector<Term> axioms;
  for (size_t m = 0; m < schema_.num_models(); ++m) {
    if (!options_.ModelActive(static_cast<int>(m))) {
      continue;
    }
    const EncModelState& ms = s.models[m];
    // Well-formedness: the pk stored in the tuple matches the index (§5.2).
    {
      Term v = f_->NewBoundVar(ref_sorts_[m]);
      axioms.push_back(f_->Forall(v, f_->Eq(f_->Proj(f_->Select(ms.data, v), 0), v)));
    }
    // Unique fields are injective over live objects.
    const soir::ModelDef& md = schema_.model(static_cast<int>(m));
    for (size_t i = 0; i < md.fields().size(); ++i) {
      if (!md.fields()[i].unique) {
        continue;
      }
      Term x = f_->NewBoundVar(ref_sorts_[m]);
      Term y = f_->NewBoundVar(ref_sorts_[m]);
      Term same_field = f_->Eq(f_->Proj(f_->Select(ms.data, x), i + 1),
                               f_->Proj(f_->Select(ms.data, y), i + 1));
      axioms.push_back(f_->Forall(
          x, f_->Forall(y, f_->Implies(f_->And({f_->Member(x, ms.ids), f_->Member(y, ms.ids),
                                                same_field}),
                                       f_->Eq(x, y)))));
    }
    // Order numbers are unique over live objects.
    if (options_.OrderFor(static_cast<int>(m))) {
      Term x = f_->NewBoundVar(ref_sorts_[m]);
      Term y = f_->NewBoundVar(ref_sorts_[m]);
      axioms.push_back(f_->Forall(
          x, f_->Forall(
                 y, f_->Implies(f_->And({f_->Member(x, ms.ids), f_->Member(y, ms.ids),
                                         f_->Eq(f_->Select(ms.order, x),
                                                f_->Select(ms.order, y))}),
                                f_->Eq(x, y)))));
    }
  }
  for (size_t r = 0; r < schema_.num_relations(); ++r) {
    if (!options_.RelationActive(static_cast<int>(r))) {
      continue;
    }
    const soir::RelationDef& rel = schema_.relation(static_cast<int>(r));
    // Referential integrity: associations connect live objects only. Under DO_NOTHING
    // the to side may dangle, so the axiom covers only the maintained direction.
    {
      Term p = f_->NewBoundVar(pair_sorts_[r]);
      Term live = f_->Member(f_->Fst(p), s.models[rel.from_model].ids);
      if (rel.on_delete != soir::OnDelete::kDoNothing) {
        live = f_->And(live, f_->Member(f_->Snd(p), s.models[rel.to_model].ids));
      }
      axioms.push_back(f_->Forall(p, f_->Implies(f_->Member(p, s.relations[r]), live)));
    }
    // Foreign keys hold at most one target.
    if (rel.kind == soir::RelationKind::kManyToOne) {
      Term p = f_->NewBoundVar(pair_sorts_[r]);
      Term q = f_->NewBoundVar(pair_sorts_[r]);
      axioms.push_back(f_->Forall(
          p, f_->Forall(q, f_->Implies(f_->And({f_->Member(p, s.relations[r]),
                                                f_->Member(q, s.relations[r]),
                                                f_->Eq(f_->Fst(p), f_->Fst(q))}),
                                       f_->Eq(f_->Snd(p), f_->Snd(q))))));
    }
  }
  return f_->And(std::move(axioms));
}

smt::Term Encoder::ArgConst(const soir::ArgDef& arg, const std::string& prefix) {
  std::string name = prefix + "_" + arg.name;
  auto it = arg_cache_.find(name);
  if (it != arg_cache_.end()) {
    return it->second;
  }
  smt::Sort sort;
  switch (arg.type.kind) {
    case soir::Type::Kind::kBool:
      sort = smt::BoolSort();
      break;
    case soir::Type::Kind::kString:
      sort = smt::StringSort();
      break;
    case soir::Type::Kind::kRef:
      sort = ref_sorts_[arg.type.model_id];
      break;
    default:
      sort = smt::IntSort();
      break;
  }
  Term c = f_->Const(name, sort);
  arg_cache_[name] = c;
  if (arg.unique_id) {
    unique_args_[arg.type.model_id].push_back(c);
  }
  return c;
}

smt::Term Encoder::UniqueIdAxiom(const EncState& initial) {
  if (!options_.unique_id_optimization) {
    return f_->True();
  }
  std::vector<Term> parts;
  for (const auto& [model, args] : unique_args_) {
    // The database never hands out the same new ID twice...
    parts.push_back(f_->Distinct(std::vector<Term>(args.begin(), args.end())));
    // ...and never one that is already live.
    for (Term a : args) {
      parts.push_back(f_->Not(f_->Member(a, initial.models[model].ids)));
    }
  }
  return f_->And(std::move(parts));
}

smt::Term Encoder::CmpTerm(CmpOp op, Term a, Term b) {
  if (a->sort()->is_int()) {
    switch (op) {
      case CmpOp::kEq:
        return f_->Eq(a, b);
      case CmpOp::kNe:
        return f_->Neq(a, b);
      case CmpOp::kLt:
        return f_->Lt(a, b);
      case CmpOp::kLe:
        return f_->Le(a, b);
      case CmpOp::kGt:
        return f_->Gt(a, b);
      case CmpOp::kGe:
        return f_->Ge(a, b);
    }
  }
  // Bool / String / Ref: only (in)equality is meaningful.
  switch (op) {
    case CmpOp::kEq:
      return f_->Eq(a, b);
    case CmpOp::kNe:
      return f_->Neq(a, b);
    default:
      return nullptr;  // caller marks the path unsupported
  }
}

smt::Term Encoder::FieldOf(const EncObj& obj, const std::string& field, PathCtx& ctx) {
  int idx = FieldTupleIndex(obj.model, field);
  if (idx < 0) {
    return obj.ref;
  }
  return f_->Proj(obj.tuple, idx);
}

smt::Term Encoder::FilterPred(Term x, int model, Term data0,
                              const std::vector<soir::RelStep>& path, size_t step,
                              const std::string& field, CmpOp op, Term value, PathCtx& ctx) {
  if (step == path.size()) {
    int idx = FieldTupleIndex(model, field);
    Term lhs = idx < 0 ? x : f_->Proj(f_->Select(data0, x), idx);
    Term cmp = CmpTerm(op, lhs, value);
    if (cmp == nullptr) {
      ctx.unsupported = true;
      return f_->True();
    }
    return cmp;
  }
  const soir::RelStep& rs = path[step];
  const soir::RelationDef& rel = schema_.relation(rs.relation);
  int target = rs.forward ? rel.to_model : rel.from_model;
  Term y = f_->NewBoundVar(ref_sorts_[target]);
  Term pair = rs.forward ? f_->MkPair(x, y) : f_->MkPair(y, x);
  Term inner = FilterPred(y, target, ctx.state.models[target].data, path, step + 1, field, op,
                          value, ctx);
  return f_->Exists(y, f_->And({f_->Member(pair, ctx.state.relations[rs.relation]),
                                f_->Member(y, ctx.state.models[target].ids), inner}));
}

Encoder::EncVal Encoder::Eval(const Expr& e, PathCtx& ctx) {
  auto scalar = [&](size_t i) { return Eval(*e.child(i), ctx).scalar; };
  EncVal out;
  switch (e.kind) {
    case ExprKind::kArg: {
      soir::ArgDef def{e.str, e.type, false};
      out.scalar = ArgConst(def, ctx.arg_prefix);
      return out;
    }
    case ExprKind::kBoolLit:
      out.scalar = f_->BoolLit(e.int_val != 0);
      return out;
    case ExprKind::kIntLit:
      out.scalar = f_->IntLit(e.int_val);
      return out;
    case ExprKind::kStrLit:
      out.scalar = f_->StrLit(e.str);
      return out;
    case ExprKind::kBoundObj:
      NOCTUA_CHECK_MSG(ctx.bound_obj != nullptr, "kBoundObj outside mapset");
      out.kind = EncVal::Kind::kObj;
      out.obj = *ctx.bound_obj;
      return out;
    case ExprKind::kAnd:
      out.scalar = f_->And(scalar(0), scalar(1));
      return out;
    case ExprKind::kOr:
      out.scalar = f_->Or(scalar(0), scalar(1));
      return out;
    case ExprKind::kNot:
      out.scalar = f_->Not(scalar(0));
      return out;
    case ExprKind::kAdd:
      out.scalar = f_->Add(scalar(0), scalar(1));
      return out;
    case ExprKind::kSub:
      out.scalar = f_->Sub(scalar(0), scalar(1));
      return out;
    case ExprKind::kMul:
      out.scalar = f_->Mul(scalar(0), scalar(1));
      return out;
    case ExprKind::kNegate:
      out.scalar = f_->Neg(scalar(0));
      return out;
    case ExprKind::kCmp: {
      Term a = scalar(0);
      Term b = scalar(1);
      Term cmp = CmpTerm(e.cmp_op, a, b);
      if (cmp == nullptr) {
        ctx.unsupported = true;
        cmp = f_->True();
      }
      out.scalar = cmp;
      return out;
    }
    case ExprKind::kConcat:
      out.scalar = f_->Concat(scalar(0), scalar(1));
      return out;
    case ExprKind::kGetField: {
      EncVal obj = Eval(*e.child(0), ctx);
      out.scalar = FieldOf(obj.obj, e.str, ctx);
      return out;
    }
    case ExprKind::kSetField: {
      EncVal obj = Eval(*e.child(0), ctx);
      Term v = scalar(1);
      int idx = FieldTupleIndex(obj.obj.model, e.str);
      NOCTUA_CHECK_MSG(idx > 0, "setf of pk is not allowed");
      out.kind = EncVal::Kind::kObj;
      out.obj = obj.obj;
      out.obj.tuple = f_->TupleWith(obj.obj.tuple, idx, v);
      return out;
    }
    case ExprKind::kNewObj: {
      int m = e.type.model_id;
      Term pk = scalar(0);
      std::vector<Term> fields;
      fields.push_back(pk);
      for (size_t i = 1; i < e.children.size(); ++i) {
        Term v = scalar(i);
        // Booleans/ints/strings arrive with the right sorts from the expression types.
        fields.push_back(v);
      }
      out.kind = EncVal::Kind::kObj;
      out.obj = EncObj{m, pk, f_->MkTuple(std::move(fields))};
      return out;
    }
    case ExprKind::kSingleton: {
      EncVal obj = Eval(*e.child(0), ctx);
      int m = obj.obj.model;
      out.kind = EncVal::Kind::kSet;
      out.set.model = m;
      out.set.member = f_->SetAdd(f_->EmptySet(ref_sorts_[m]), obj.obj.ref);
      out.set.data = f_->Store(ctx.state.models[m].data, obj.obj.ref, obj.obj.tuple);
      out.set.order = ctx.state.models[m].order;
      out.set.db_subset = false;
      return out;
    }
    case ExprKind::kDeref: {
      Term ref = scalar(0);
      int m = e.type.model_id;
      out.kind = EncVal::Kind::kObj;
      out.obj = EncObj{m, ref, f_->Select(ctx.state.models[m].data, ref)};
      return out;
    }
    case ExprKind::kAny:
    case ExprKind::kFirst:
    case ExprKind::kLast: {
      EncVal set = Eval(*e.child(0), ctx);
      int m = set.set.model;
      Term v = f_->NewBoundVar(ref_sorts_[m]);
      Term key;
      bool want_max = e.kind == ExprKind::kLast;
      if (e.kind == ExprKind::kAny) {
        // An arbitrary member; determinized as the scope's lowest-index member so the
        // choice does not observe insertion order.
        key = f_->IntLit(0);
      } else {
        if (set.set.order == nullptr) {
          ctx.unsupported = true;
          key = f_->IntLit(0);
        } else {
          key = f_->Select(set.set.order, v);
        }
      }
      Term chosen = f_->ArgExtreme(v, f_->Member(v, set.set.member), key, want_max);
      out.kind = EncVal::Kind::kObj;
      out.obj = EncObj{m, chosen, f_->Select(set.set.data, chosen)};
      return out;
    }
    case ExprKind::kRefOf: {
      EncVal obj = Eval(*e.child(0), ctx);
      out.scalar = obj.obj.ref;
      return out;
    }
    case ExprKind::kAll: {
      int m = e.type.model_id;
      out.kind = EncVal::Kind::kSet;
      out.set.model = m;
      out.set.member = ctx.state.models[m].ids;
      out.set.data = ctx.state.models[m].data;
      out.set.order = ctx.state.models[m].order;
      out.set.db_subset = true;
      return out;
    }
    case ExprKind::kFilter: {
      EncVal base = Eval(*e.child(0), ctx);
      Term value = scalar(1);
      Term x = f_->NewBoundVar(ref_sorts_[base.set.model]);
      Term pred = FilterPred(x, base.set.model, base.set.data, e.rel_path, 0, e.str, e.cmp_op,
                             value, ctx);
      out.kind = EncVal::Kind::kSet;
      out.set = base.set;
      out.set.member = f_->ArrayLambda(x, f_->And(f_->Member(x, base.set.member), pred));
      return out;
    }
    case ExprKind::kFollow: {
      EncVal base = Eval(*e.child(0), ctx);
      EncSet cur = base.set;
      for (const soir::RelStep& rs : e.rel_path) {
        const soir::RelationDef& rel = schema_.relation(rs.relation);
        int target = rs.forward ? rel.to_model : rel.from_model;
        Term y = f_->NewBoundVar(ref_sorts_[target]);
        Term x = f_->NewBoundVar(ref_sorts_[cur.model]);
        Term pair = rs.forward ? f_->MkPair(x, y) : f_->MkPair(y, x);
        Term related = f_->Exists(
            x, f_->And(f_->Member(x, cur.member),
                       f_->Member(pair, ctx.state.relations[rs.relation])));
        EncSet next;
        next.model = target;
        next.member =
            f_->ArrayLambda(y, f_->And(f_->Member(y, ctx.state.models[target].ids), related));
        next.data = ctx.state.models[target].data;
        next.order = ctx.state.models[target].order;
        next.db_subset = true;
        cur = next;
      }
      out.kind = EncVal::Kind::kSet;
      out.set = cur;
      return out;
    }
    case ExprKind::kOrderBy: {
      EncVal base = Eval(*e.child(0), ctx);
      out.kind = EncVal::Kind::kSet;
      out.set = base.set;
      if (!options_.use_order) {
        ctx.unsupported = true;
        return out;
      }
      int idx = FieldTupleIndex(base.set.model, e.str);
      const soir::ModelDef& md = schema_.model(base.set.model);
      bool int_like =
          idx > 0 && (md.fields()[idx - 1].type == FieldType::kInt ||
                      md.fields()[idx - 1].type == FieldType::kFloat ||
                      md.fields()[idx - 1].type == FieldType::kDatetime);
      if (!int_like) {
        // orderby over strings or pks is outside the integer-order encoding (§4.2).
        ctx.unsupported = true;
        return out;
      }
      // order'[x] = data[x].f (ascending) or -data[x].f (descending) — the paper's rule.
      Term x = f_->NewBoundVar(ref_sorts_[base.set.model]);
      Term keyed = f_->Proj(f_->Select(base.set.data, x), idx);
      out.set.order = f_->ArrayLambda(x, e.int_val ? keyed : f_->Neg(keyed));
      return out;
    }
    case ExprKind::kReverse: {
      EncVal base = Eval(*e.child(0), ctx);
      out.kind = EncVal::Kind::kSet;
      out.set = base.set;
      if (!options_.use_order || base.set.order == nullptr) {
        ctx.unsupported = true;
        return out;
      }
      // order'[x] = -order[x] (§4.2).
      Term x = f_->NewBoundVar(ref_sorts_[base.set.model]);
      out.set.order = f_->ArrayLambda(x, f_->Neg(f_->Select(base.set.order, x)));
      return out;
    }
    case ExprKind::kAggregate: {
      EncVal base = Eval(*e.child(0), ctx);
      int m = base.set.model;
      Term v = f_->NewBoundVar(ref_sorts_[m]);
      Term cond = f_->Member(v, base.set.member);
      if (e.agg_op == soir::AggOp::kCount) {
        out.scalar = f_->Count(v, cond);
        return out;
      }
      int idx = FieldTupleIndex(m, e.str);
      if (idx <= 0) {
        ctx.unsupported = true;
        out.scalar = f_->IntLit(0);
        return out;
      }
      Term value = f_->Proj(f_->Select(base.set.data, v), idx);
      switch (e.agg_op) {
        case soir::AggOp::kSum:
          out.scalar = f_->Sum(v, cond, value);
          break;
        case soir::AggOp::kMin:
          out.scalar = f_->MinAgg(v, cond, value);
          break;
        case soir::AggOp::kMax:
          out.scalar = f_->MaxAgg(v, cond, value);
          break;
        default:
          NOCTUA_UNREACHABLE("bad agg op");
      }
      return out;
    }
    case ExprKind::kExists: {
      EncVal base = Eval(*e.child(0), ctx);
      Term v = f_->NewBoundVar(ref_sorts_[base.set.model]);
      out.scalar = f_->Exists(v, f_->Member(v, base.set.member));
      return out;
    }
    case ExprKind::kMapSet: {
      EncVal base = Eval(*e.child(0), ctx);
      int m = base.set.model;
      int idx = FieldTupleIndex(m, e.str);
      NOCTUA_CHECK_MSG(idx > 0, "mapset of pk is not allowed");
      Term x = f_->NewBoundVar(ref_sorts_[m]);
      EncObj bound{m, x, f_->Select(base.set.data, x)};
      const EncObj* saved = ctx.bound_obj;
      ctx.bound_obj = &bound;
      Term value = Eval(*e.child(1), ctx).scalar;
      ctx.bound_obj = saved;
      out.kind = EncVal::Kind::kSet;
      out.set = base.set;
      out.set.data = f_->ArrayLambda(x, f_->TupleWith(f_->Select(base.set.data, x), idx, value));
      return out;
    }
  }
  NOCTUA_UNREACHABLE("bad expr kind");
}

void Encoder::ApplyCommand(const soir::Command& cmd, PathCtx& ctx) {
  switch (cmd.kind) {
    case soir::CommandKind::kGuard: {
      ctx.guards.push_back(Eval(*cmd.a, ctx).scalar);
      return;
    }
    case soir::CommandKind::kUpdate: {
      EncVal val = Eval(*cmd.a, ctx);
      const EncSet& set = val.set;
      int m = set.model;
      EncModelState& ms = ctx.state.models[m];
      Term old_ids = ms.ids;
      {
        Term x = f_->NewBoundVar(ref_sorts_[m]);
        ms.data = f_->ArrayLambda(
            x, f_->Ite(f_->Member(x, set.member), f_->Select(set.data, x),
                       f_->Select(ms.data, x)));
      }
      if (!set.db_subset) {
        ms.ids = f_->SetUnion(old_ids, set.member);
        if (ms.order != nullptr) {
          // Inserted objects are appended: they get a fresh order number greater than
          // every live object's (matching the storage engine's monotone counter).
          Term fresh = f_->Const("freshord_" + std::to_string(fresh_counter_++),
                                 smt::IntSort());
          Term v = f_->NewBoundVar(ref_sorts_[m]);
          ctx.defs.push_back(f_->Forall(
              v, f_->Implies(f_->Member(v, old_ids),
                             f_->Lt(f_->Select(ms.order, v), fresh))));
          Term x = f_->NewBoundVar(ref_sorts_[m]);
          ms.order = f_->ArrayLambda(
              x, f_->Ite(f_->And(f_->Member(x, set.member), f_->Not(f_->Member(x, old_ids))),
                         fresh, f_->Select(ms.order, x)));
        }
      }
      return;
    }
    case soir::CommandKind::kDelete: {
      EncVal val = Eval(*cmd.a, ctx);
      const EncSet& set = val.set;
      int m = set.model;
      ctx.state.models[m].ids = f_->SetDifference(ctx.state.models[m].ids, set.member);
      for (size_t r = 0; r < schema_.num_relations(); ++r) {
        const soir::RelationDef& rel = schema_.relation(static_cast<int>(r));
        if (rel.from_model != m && rel.to_model != m) {
          continue;
        }
        Term p = f_->NewBoundVar(pair_sorts_[r]);
        std::vector<Term> keep = {f_->Member(p, ctx.state.relations[r])};
        if (rel.from_model == m) {
          keep.push_back(f_->Not(f_->Member(f_->Fst(p), set.member)));
        }
        if (rel.to_model == m && rel.on_delete != soir::OnDelete::kDoNothing) {
          keep.push_back(f_->Not(f_->Member(f_->Snd(p), set.member)));
        }
        ctx.state.relations[r] = f_->ArrayLambda(p, f_->And(std::move(keep)));
      }
      return;
    }
    case soir::CommandKind::kLink:
    case soir::CommandKind::kRLink: {
      int r = cmd.relation;
      const soir::RelationDef& rel = schema_.relation(r);
      Term to_ref = Eval(*cmd.b, ctx).obj.ref;
      if (cmd.kind == soir::CommandKind::kLink) {
        Term from_ref = Eval(*cmd.a, ctx).obj.ref;
        if (rel.kind == soir::RelationKind::kManyToOne) {
          // A foreign key replaces any previous target of `from`.
          Term p = f_->NewBoundVar(pair_sorts_[r]);
          ctx.state.relations[r] = f_->ArrayLambda(
              p, f_->Ite(f_->Eq(f_->Fst(p), from_ref), f_->Eq(f_->Snd(p), to_ref),
                         f_->Member(p, ctx.state.relations[r])));
        } else {
          ctx.state.relations[r] =
              f_->SetAdd(ctx.state.relations[r], f_->MkPair(from_ref, to_ref));
        }
      } else {
        EncVal set = Eval(*cmd.a, ctx);
        Term p = f_->NewBoundVar(pair_sorts_[r]);
        Term in_set = f_->Member(f_->Fst(p), set.set.member);
        if (rel.kind == soir::RelationKind::kManyToOne) {
          ctx.state.relations[r] = f_->ArrayLambda(
              p, f_->Ite(in_set, f_->Eq(f_->Snd(p), to_ref),
                         f_->Member(p, ctx.state.relations[r])));
        } else {
          ctx.state.relations[r] = f_->ArrayLambda(
              p, f_->Or(f_->Member(p, ctx.state.relations[r]),
                        f_->And(in_set, f_->Eq(f_->Snd(p), to_ref))));
        }
      }
      return;
    }
    case soir::CommandKind::kDelink: {
      Term from_ref = Eval(*cmd.a, ctx).obj.ref;
      Term to_ref = Eval(*cmd.b, ctx).obj.ref;
      ctx.state.relations[cmd.relation] =
          f_->SetRemove(ctx.state.relations[cmd.relation], f_->MkPair(from_ref, to_ref));
      return;
    }
    case soir::CommandKind::kClearLinks: {
      Term obj_ref = Eval(*cmd.a, ctx).obj.ref;
      int r = cmd.relation;
      Term p = f_->NewBoundVar(pair_sorts_[r]);
      Term side = cmd.forward ? f_->Fst(p) : f_->Snd(p);
      ctx.state.relations[r] = f_->ArrayLambda(
          p, f_->And(f_->Member(p, ctx.state.relations[r]), f_->Neq(side, obj_ref)));
      return;
    }
  }
  NOCTUA_UNREACHABLE("bad command kind");
}

Encoder::PathResult Encoder::ApplyPath(const soir::CodePath& path, const EncState& in,
                                       const std::string& arg_prefix) {
  PathCtx ctx;
  ctx.path = &path;
  ctx.arg_prefix = arg_prefix;
  ctx.state = in;
  // Pre-register argument constants so unique-id arguments are known even when the path's
  // guard structure would otherwise delay their first use.
  for (const soir::ArgDef& a : path.args) {
    ArgConst(a, arg_prefix);
  }
  for (const soir::Command& cmd : path.commands) {
    ApplyCommand(cmd, ctx);
  }
  PathResult r;
  r.pre = f_->And(std::move(ctx.guards));
  r.post = std::move(ctx.state);
  r.defs = f_->And(std::move(ctx.defs));
  r.unsupported = ctx.unsupported;
  return r;
}

smt::Term Encoder::StateEq(const EncState& a, const EncState& b,
                           const std::set<int>& order_models) {
  std::vector<Term> parts;
  for (size_t m = 0; m < schema_.num_models(); ++m) {
    if (!options_.ModelActive(static_cast<int>(m))) {
      continue;  // projected models are untouched by both sides: trivially equal
    }
    parts.push_back(f_->SetEq(a.models[m].ids, b.models[m].ids));
    // Data must agree on live objects (dead slots are garbage and may differ).
    {
      Term x = f_->NewBoundVar(ref_sorts_[m]);
      parts.push_back(f_->Forall(
          x, f_->Implies(f_->Member(x, a.models[m].ids),
                         f_->Eq(f_->Select(a.models[m].data, x),
                                f_->Select(b.models[m].data, x)))));
    }
    if (order_models.count(static_cast<int>(m)) != 0 && a.models[m].order != nullptr &&
        b.models[m].order != nullptr) {
      // Relative order must agree: the actual integers do not matter (§4.2).
      Term x = f_->NewBoundVar(ref_sorts_[m]);
      Term y = f_->NewBoundVar(ref_sorts_[m]);
      Term both_live = f_->And(f_->Member(x, a.models[m].ids), f_->Member(y, a.models[m].ids));
      Term lt_a = f_->Lt(f_->Select(a.models[m].order, x), f_->Select(a.models[m].order, y));
      Term lt_b = f_->Lt(f_->Select(b.models[m].order, x), f_->Select(b.models[m].order, y));
      parts.push_back(
          f_->Forall(x, f_->Forall(y, f_->Implies(both_live, f_->Eq(lt_a, lt_b)))));
    }
  }
  for (size_t r = 0; r < schema_.num_relations(); ++r) {
    if (!options_.RelationActive(static_cast<int>(r))) {
      continue;
    }
    parts.push_back(f_->SetEq(a.relations[r], b.relations[r]));
  }
  return f_->And(std::move(parts));
}

std::set<int> Encoder::OrderRelevantModels(const soir::CodePath& p) {
  return soir::OrderRelevantModels(p);
}

bool Encoder::UsesOrderPrimitives(const soir::CodePath& p) {
  return !OrderRelevantModels(p).empty();
}

}  // namespace noctua::verifier
