// Verdict cache for the verifier: maps a canonical fingerprint of a verification query
// (rule + the pair's canonically-renamed paths + the schema fragment they touch + order
// membership) to the solver's outcome.
//
// Two queries with equal fingerprints are isomorphic SMT problems — identical term DAGs
// up to constant names, which the bounded model finder never interprets — so their
// sat/unsat verdicts coincide and one solver run serves both. The evaluated apps are
// full of such twins: viewsets stamp structurally identical endpoints onto every model,
// and the semantic rule checks NotInvalidate(P, P) twice per self-pair.
//
// The cache is also the incremental engine's persistence unit: SaveToFile/LoadFromFile
// round-trip the verdict map through a versioned artifact, and entries that arrived from
// disk are marked `replayed` so the report can attribute each pair's verdicts to this
// run or a prior one (and so paranoia sampling knows which verdicts to spot-re-solve).
// Because the fingerprints encode everything the SMT encoding can see, seeding a run
// with a prior store is sound by construction: any pair affected by an edit — changed
// paths, changed schema fragment, changed order membership — misses and is re-solved.
//
// Thread-safety: sharded by key hash; lookups and inserts from concurrent verification
// workers are safe. Two workers may race to compute the same fingerprint — both compute,
// both insert the (equal) outcome; the cache trades that rare duplicated solver call for
// never blocking a worker on another's multi-millisecond check. Save/Load are not
// concurrency-safe against writers; call them before and after a run, not during.
#ifndef SRC_VERIFIER_CACHE_H_
#define SRC_VERIFIER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/soir/ast.h"
#include "src/soir/schema.h"
#include "src/verifier/checker.h"

namespace noctua::verifier {

class VerdictCache {
 public:
  // One cached verdict. `replayed` is true when the entry was loaded from a prior run's
  // artifact rather than computed by this process.
  struct Entry {
    CheckOutcome outcome = CheckOutcome::kPass;
    bool replayed = false;
  };

  // `capacity` bounds the total number of entries (0 = unbounded, the default). When a
  // shard would exceed its share (capacity / kShards, at least 1), the oldest entries of
  // that shard are evicted FIFO. Only meaningful for run-local caches under memory
  // pressure; a cache that will be persisted as an artifact should stay unbounded, since
  // evicted verdicts silently become cold misses on the next warm run.
  explicit VerdictCache(size_t capacity = 0) : capacity_(capacity) {}
  VerdictCache(const VerdictCache&) = delete;
  VerdictCache& operator=(const VerdictCache&) = delete;

  // Returns the cached outcome, counting a hit; nullopt counts a miss.
  std::optional<CheckOutcome> Lookup(const std::string& key);
  // Like Lookup, but exposes provenance.
  std::optional<Entry> LookupEntry(const std::string& key);
  void Insert(const std::string& key, CheckOutcome outcome);

  // Persists every entry (sorted by key, so equal caches produce byte-identical files).
  // Returns false if the file cannot be written.
  bool SaveToFile(const std::string& path) const;
  // Loads a previously saved store, marking every loaded entry replayed. All-or-nothing:
  // a missing, truncated, corrupted, or version-mismatched file returns false and leaves
  // the cache untouched (the caller falls back to a cold run). Entries already present
  // keep their current value — loading never overwrites a computed verdict.
  bool LoadFromFile(const std::string& path);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }
  size_t capacity() const { return capacity_; }
  size_t size() const;

  static constexpr size_t kNumShards = 16;

  // Point-in-time statistics of one shard, for the per-shard occupancy report.
  struct ShardStats {
    size_t entries = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };
  // Snapshot of all kNumShards shards, in shard order.
  std::vector<ShardStats> PerShardStats() const;

 private:
  static constexpr size_t kShards = kNumShards;
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, Entry> map;
    std::deque<std::string> fifo;  // insertion order, only maintained when bounded
    uint64_t hits = 0;             // guarded by mu
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };
  Shard& ShardFor(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % kShards];
  }
  void InsertLocked(Shard& shard, const std::string& key, Entry entry);

  const size_t capacity_;
  Shard shards_[kShards];
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

// Fingerprint of one commutativity query over the (ordered) pair (p, q) with the given
// app-wide order-relevant model set.
std::string CommutativityKey(const soir::Schema& schema, const soir::CodePath& p,
                             const soir::CodePath& q, const std::set<int>& order_models);

// Fingerprint of one NotInvalidate(p, q) query (directed). The checker derives order
// models for this rule from the pair alone, and so does the key.
std::string NotInvalidateKey(const soir::Schema& schema, const soir::CodePath& p,
                             const soir::CodePath& q);

}  // namespace noctua::verifier

#endif  // SRC_VERIFIER_CACHE_H_
