// Verdict cache for the verifier: maps a canonical fingerprint of a verification query
// (rule + the pair's canonically-renamed paths + the schema fragment they touch + order
// membership) to the solver's outcome.
//
// Two queries with equal fingerprints are isomorphic SMT problems — identical term DAGs
// up to constant names, which the bounded model finder never interprets — so their
// sat/unsat verdicts coincide and one solver run serves both. The evaluated apps are
// full of such twins: viewsets stamp structurally identical endpoints onto every model,
// and the semantic rule checks NotInvalidate(P, P) twice per self-pair.
//
// Thread-safety: sharded by key hash; lookups and inserts from concurrent verification
// workers are safe. Two workers may race to compute the same fingerprint — both compute,
// both insert the (equal) outcome; the cache trades that rare duplicated solver call for
// never blocking a worker on another's multi-millisecond check.
#ifndef SRC_VERIFIER_CACHE_H_
#define SRC_VERIFIER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "src/soir/ast.h"
#include "src/soir/schema.h"
#include "src/verifier/checker.h"

namespace noctua::verifier {

class VerdictCache {
 public:
  VerdictCache() = default;
  VerdictCache(const VerdictCache&) = delete;
  VerdictCache& operator=(const VerdictCache&) = delete;

  // Returns the cached outcome, counting a hit; nullopt counts a miss.
  std::optional<CheckOutcome> Lookup(const std::string& key);
  void Insert(const std::string& key, CheckOutcome outcome);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const;

 private:
  static constexpr size_t kShards = 16;
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, CheckOutcome> map;
  };
  Shard& ShardFor(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % kShards];
  }

  Shard shards_[kShards];
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

// Fingerprint of one commutativity query over the (ordered) pair (p, q) with the given
// app-wide order-relevant model set.
std::string CommutativityKey(const soir::Schema& schema, const soir::CodePath& p,
                             const soir::CodePath& q, const std::set<int>& order_models);

// Fingerprint of one NotInvalidate(p, q) query (directed). The checker derives order
// models for this rule from the pair alone, and so does the key.
std::string NotInvalidateKey(const soir::Schema& schema, const soir::CodePath& p,
                             const soir::CodePath& q);

}  // namespace noctua::verifier

#endif  // SRC_VERIFIER_CACHE_H_
