#include "src/verifier/checker.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <string_view>

#include "src/obs/obs.h"
#include "src/smt/backend.h"
#include "src/support/check.h"
#include "src/support/stopwatch.h"

namespace noctua::verifier {

using smt::Term;

const char* CheckOutcomeName(CheckOutcome o) {
  switch (o) {
    case CheckOutcome::kPass:
      return "pass";
    case CheckOutcome::kFail:
      return "fail";
    case CheckOutcome::kTimeout:
      return "timeout";
    case CheckOutcome::kUnsupported:
      return "unsupported";
  }
  return "?";
}

bool Checker::Independent(const soir::CodePath& p, const soir::CodePath& q) const {
  std::vector<int> rp, wp, relp, rq, wq, relq;
  p.CollectFootprint(schema_, &rp, &wp, &relp);
  q.CollectFootprint(schema_, &rq, &wq, &relq);
  auto intersects = [](const std::vector<int>& a, const std::vector<int>& b) {
    return std::any_of(a.begin(), a.end(), [&](int x) {
      return std::find(b.begin(), b.end(), x) != b.end();
    });
  };
  // Writes of one side may not touch anything the other side reads or writes, and the two
  // sides may not touch a common relation (we do not split relation reads from writes, so
  // this is conservative).
  if (intersects(wp, rq) || intersects(wp, wq) || intersects(wq, rp)) {
    return false;
  }
  if (intersects(relp, relq)) {
    return false;
  }
  return true;
}

Checker::PairScope Checker::ComputeScope(const soir::CodePath& p,
                                         const soir::CodePath& q) const {
  PairScope s;
  auto add_model = [&](int m) {
    if (m >= 0) {
      s.models.insert(m);
    }
  };
  auto add_relation = [&](int r) {
    if (r < 0 || !s.relations.insert(r).second) {
      return;
    }
    // Endpoints of every active relation are active: referential-integrity axioms and
    // traversal encodings mention both sides.
    const soir::RelationDef& rel = schema_.relation(r);
    add_model(rel.from_model);
    add_model(rel.to_model);
  };
  auto add_path = [&](const soir::CodePath& path) {
    for (const soir::ArgDef& a : path.args) {
      add_model(a.type.model_id);  // unique-id axioms reference the arg's model state
    }
    soir::VisitExprs(path, [&](const soir::Expr& e) {
      add_model(e.type.model_id);
      for (const soir::RelStep& rs : e.rel_path) {
        add_relation(rs.relation);
      }
    });
    for (const soir::Command& cmd : path.commands) {
      add_relation(cmd.relation);
      if (cmd.kind == soir::CommandKind::kDelete) {
        // Deletes rewrite every incident relation.
        int m = cmd.a->type.model_id;
        for (size_t r = 0; r < schema_.num_relations(); ++r) {
          const soir::RelationDef& rel = schema_.relation(static_cast<int>(r));
          if (rel.from_model == m || rel.to_model == m) {
            add_relation(static_cast<int>(r));
          }
        }
      }
    }
  };
  add_path(p);
  add_path(q);
  return s;
}

void Checker::ApplyProjection(const soir::CodePath& p, const soir::CodePath& q,
                              EncoderOptions* enc_options) const {
  if (!options_.project_footprint) {
    return;
  }
  PairScope scope = ComputeScope(p, q);
  enc_options->project = true;
  enc_options->active_models = std::move(scope.models);
  enc_options->active_relations = std::move(scope.relations);
}

CheckOutcome Checker::WorseOutcome(CheckOutcome a, CheckOutcome b) {
  auto severity = [](CheckOutcome o) {
    switch (o) {
      case CheckOutcome::kPass:
        return 0;
      case CheckOutcome::kFail:
        return 1;
      case CheckOutcome::kTimeout:
        return 2;
      case CheckOutcome::kUnsupported:
        return 3;
    }
    return 3;
  };
  return severity(a) >= severity(b) ? a : b;
}

CheckOutcome Checker::RunSolver(smt::TermFactory& factory,
                                const std::vector<Term>& assertions, bool any_unsupported,
                                CheckStats* stats) const {
  if (any_unsupported) {
    return CheckOutcome::kUnsupported;
  }
  std::unique_ptr<smt::SolverBackend> backend = smt::MakeBackend(options_.solver);
  backend->AssertAll(assertions);
  return RunSolverOn(*backend, factory, false, stats);
}

CheckOutcome Checker::RunSolverOn(smt::SolverBackend& backend, smt::TermFactory& factory,
                                  bool any_unsupported, CheckStats* stats) const {
  if (any_unsupported) {
    return CheckOutcome::kUnsupported;
  }
  obs::ScopedSpan span("solve", obs::kCatSolve);
  smt::SolveResult r = backend.Check(factory);
  const smt::SolverStats& ss = backend.stats();
  if (stats != nullptr) {
    stats->solver_nodes = ss.nodes_visited;
  }
  if (obs::Enabled()) {
    // Flush per-query solver introspection in one shot — the backend counted its own
    // nodes, so the search itself carried no instrumentation.
    span.Arg("nodes", ss.nodes_visited);
    span.Arg("assignments", ss.evaluations);
    span.Arg("atoms", ss.num_atoms);
    obs::Add(obs::Counter::kSolverNodes, ss.nodes_visited);
    obs::Add(obs::Counter::kSolverAssignments, ss.evaluations);
    obs::Add(obs::Counter::kGroundExpansions, ss.binders_expanded);
    obs::Add(obs::Counter::kSimplifyHits, factory.intern_hits());
    if (ss.conflicts > 0) {
      obs::Add(obs::Counter::kCdclConflicts, ss.conflicts);
    }
    if (ss.learned_clauses > 0) {
      obs::Add(obs::Counter::kCdclLearnedClauses, ss.learned_clauses);
    }
    if (ss.incremental_reuse_hits > 0) {
      obs::Add(obs::Counter::kSolverIncrementalReuse, ss.incremental_reuse_hits);
    }
    if (ss.symmetry_pruned > 0) {
      obs::Add(obs::Counter::kSolverSymmetryPruned, ss.symmetry_pruned);
    }
    if (ss.restarts > 0) {
      obs::Add(obs::Counter::kCdclRestarts, ss.restarts);
    }
    if (ss.clauses_forgotten > 0) {
      obs::Add(obs::Counter::kCdclClausesForgotten, ss.clauses_forgotten);
    }
    if (std::string_view(backend.name()) == "portfolio") {
      obs::Add(obs::Counter::kPortfolioRaces);
      if (ss.portfolio_winner == 0) {
        obs::Add(obs::Counter::kPortfolioWinsDfs);
      } else if (ss.portfolio_winner == 1) {
        obs::Add(obs::Counter::kPortfolioWinsCdcl);
      } else {
        obs::Add(obs::Counter::kPortfolioUndecided);
      }
    }
    obs::Observe(obs::Hist::kSolveMicros, static_cast<uint64_t>(ss.seconds * 1e6));
    obs::Observe(obs::Hist::kSolverNodesPerQuery, ss.nodes_visited);
    obs::Observe(obs::Hist::kSolverAssignmentsPerQuery, ss.evaluations);
    obs::Observe(obs::Hist::kGroundExpansionsPerQuery, ss.binders_expanded);
  }
  switch (r) {
    case smt::SolveResult::kUnsat:
      return CheckOutcome::kPass;
    case smt::SolveResult::kSat:
      return CheckOutcome::kFail;
    case smt::SolveResult::kUnknown:
      return CheckOutcome::kTimeout;
  }
  return CheckOutcome::kTimeout;
}

CheckOutcome Checker::CheckCommutativity(const soir::CodePath& p, const soir::CodePath& q,
                                         const std::set<int>* order_models,
                                         CheckStats* stats) const {
  Stopwatch watch;
  if (options_.independence_prefilter && Independent(p, q)) {
    if (stats != nullptr) {
      stats->prefiltered = true;
      stats->seconds = watch.ElapsedSeconds();
    }
    return CheckOutcome::kPass;
  }

  // Order information is materialized only for models whose order this pair (or, when
  // provided by the caller, any operation of the app) observes — the decoupling of §4.2.
  std::set<int> order;
  if (order_models != nullptr) {
    order = *order_models;
  } else {
    order = Encoder::OrderRelevantModels(p);
    std::set<int> oq = Encoder::OrderRelevantModels(q);
    order.insert(oq.begin(), oq.end());
  }
  EncoderOptions enc_options = options_.encoder;
  enc_options.order_models = order;
  ApplyProjection(p, q, &enc_options);

  // The encode span covers query construction (path application, axioms); it ends just
  // before RunSolver opens the solve span.
  std::optional<obs::ScopedSpan> encode_span;
  encode_span.emplace("encode_com", obs::kCatEncode);

  smt::TermFactory factory;
  Encoder enc(schema_, &factory, enc_options);

  EncState s0 = enc.FreshState("S0");

  // S0 + P(x) + Q(y)
  Encoder::PathResult pq1 = enc.ApplyPath(p, s0, "x");
  Encoder::PathResult pq2 = enc.ApplyPath(q, pq1.post, "y");
  // S0 + Q(y) + P(x)  (same argument constants: same prefixes)
  Encoder::PathResult qp1 = enc.ApplyPath(q, s0, "y");
  Encoder::PathResult qp2 = enc.ApplyPath(p, qp1.post, "x");

  bool unsupported =
      pq1.unsupported || pq2.unsupported || qp1.unsupported || qp2.unsupported;

  // Assertion order is a search heuristic: the (negated) goal first, so the solver's
  // atom selection is driven by what can actually refute the property; then the most
  // constraining facts; axioms last.
  std::vector<Term> assertions;
  assertions.push_back(factory.Not(enc.StateEq(pq2.post, qp2.post, order)));

  // The replayed effects must be producible: assert their preconditions on fresh origin
  // states (paper §5.2), or directly on S0 in the cheaper shared mode.
  if (options_.fresh_origin_states) {
    EncState sa = enc.FreshState("Sa");
    EncState sb = enc.FreshState("Sb");
    Encoder::PathResult pre_p = enc.ApplyPath(p, sa, "x");
    Encoder::PathResult pre_q = enc.ApplyPath(q, sb, "y");
    unsupported = unsupported || pre_p.unsupported || pre_q.unsupported;
    // Freshness of database-generated IDs holds w.r.t. the shared initial state only:
    // an op's origin state may causally follow the other op (e.g. following a question
    // right after it was created), so new IDs may be live there.
    assertions.push_back(enc.UniqueIdAxiom(s0));
    assertions.push_back(pre_p.pre);
    assertions.push_back(pre_q.pre);
    assertions.push_back(enc.StateAxioms(sa));
    assertions.push_back(enc.StateAxioms(sb));
  } else {
    assertions.push_back(enc.UniqueIdAxiom(s0));
    assertions.push_back(pq1.pre);
    assertions.push_back(qp1.pre);
  }
  assertions.push_back(pq1.defs);
  assertions.push_back(pq2.defs);
  assertions.push_back(qp1.defs);
  assertions.push_back(qp2.defs);
  assertions.push_back(enc.StateAxioms(s0));

  if (encode_span) {
    encode_span->Arg("terms", factory.size());
    encode_span.reset();
  }
  CheckOutcome outcome = RunSolver(factory, {factory.And(std::move(assertions))}, unsupported, stats);
  if (stats != nullptr) {
    stats->seconds = watch.ElapsedSeconds();
  }
  return outcome;
}

CheckOutcome Checker::CheckNotInvalidate(const soir::CodePath& p, const soir::CodePath& q,
                                         CheckStats* stats) const {
  Stopwatch watch;
  if (options_.independence_prefilter && Independent(p, q)) {
    if (stats != nullptr) {
      stats->prefiltered = true;
      stats->seconds = watch.ElapsedSeconds();
    }
    return CheckOutcome::kPass;
  }

  EncoderOptions enc_options = options_.encoder;
  {
    std::set<int> order = Encoder::OrderRelevantModels(p);
    std::set<int> oq = Encoder::OrderRelevantModels(q);
    order.insert(oq.begin(), oq.end());
    enc_options.order_models = order;
  }
  ApplyProjection(p, q, &enc_options);

  std::optional<obs::ScopedSpan> encode_span;
  encode_span.emplace("encode_ni", obs::kCatEncode);

  smt::TermFactory factory;
  Encoder enc(schema_, &factory, enc_options);

  EncState s0 = enc.FreshState("S0");

  // g_P(x, S0) holds...
  Encoder::PathResult p_before = enc.ApplyPath(p, s0, "x");

  // ...Q's effect is applied (replayed on S0; its own precondition is asserted on a fresh
  // origin state, since the effect was generated elsewhere)...
  Encoder::PathResult q_applied = enc.ApplyPath(q, s0, "y");
  bool unsupported = p_before.unsupported || q_applied.unsupported;

  // ...and yet g_P(x, S0 + Q(y)) is violated. The negated goal goes first (search
  // heuristic, see CheckCommutativity).
  Encoder::PathResult p_after = enc.ApplyPath(p, q_applied.post, "x");
  unsupported = unsupported || p_after.unsupported;

  std::vector<Term> assertions;
  assertions.push_back(factory.Not(p_after.pre));
  assertions.push_back(p_before.pre);
  assertions.push_back(enc.UniqueIdAxiom(s0));
  if (options_.fresh_origin_states) {
    EncState sb = enc.FreshState("Sb");
    Encoder::PathResult pre_q = enc.ApplyPath(q, sb, "y");
    unsupported = unsupported || pre_q.unsupported;
    assertions.push_back(pre_q.pre);
    assertions.push_back(enc.StateAxioms(sb));
  } else {
    assertions.push_back(q_applied.pre);
  }
  assertions.push_back(q_applied.defs);
  assertions.push_back(enc.StateAxioms(s0));

  if (encode_span) {
    encode_span->Arg("terms", factory.size());
    encode_span.reset();
  }
  CheckOutcome outcome = RunSolver(factory, {factory.And(std::move(assertions))}, unsupported, stats);
  if (stats != nullptr) {
    stats->seconds = watch.ElapsedSeconds();
  }
  return outcome;
}

CheckOutcome Checker::CheckSemantic(const soir::CodePath& p, const soir::CodePath& q,
                                    CheckStats* stats) const {
  return CheckSemantic(p, q, stats, nullptr, nullptr);
}

CheckOutcome Checker::CheckSemantic(const soir::CodePath& p, const soir::CodePath& q,
                                    CheckStats* stats, CheckStats* dir1_stats,
                                    CheckStats* dir2_stats) const {
  PairSession session(*this, p, q);
  CheckStats s1, s2;
  CheckOutcome a = session.NotInvalidatePQ(&s1);
  CheckOutcome b = a == CheckOutcome::kPass ? session.NotInvalidateQP(&s2)
                                            : CheckOutcome::kPass;
  if (stats != nullptr) {
    stats->seconds = s1.seconds + s2.seconds;
    stats->solver_nodes = s1.solver_nodes + s2.solver_nodes;
    // One prefilter decision covers both directions (footprint disjointness is
    // symmetric); s2 stays default-initialized — not measured — when direction two is
    // skipped, so ANDing it in would misreport a prefiltered pair as solved.
    stats->prefiltered = s1.prefiltered;
  }
  if (dir1_stats != nullptr) {
    *dir1_stats = s1;
  }
  if (dir2_stats != nullptr) {
    *dir2_stats = s2;
  }
  // The worse of the two directions decides.
  return WorseOutcome(a, b);
}

// ---------------------------------------------------------------------------
// PairSession
// ---------------------------------------------------------------------------

struct Checker::PairSession::Shared {
  // The factory outlives (and is destroyed after) the encoders and backend below, all of
  // which hold terms interned in it.
  smt::TermFactory factory;
  std::unique_ptr<Encoder> com_enc;
  std::unique_ptr<Encoder> ni_enc;
  std::unique_ptr<smt::SolverBackend> backend;
  bool incremental = false;

  // What the backend currently holds asserted; commutativity and NotInvalidate
  // interleave by re-asserting their base (cheap: grounding is cached per root).
  enum class Mode : uint8_t { kNone, kCom, kNi };
  Mode mode = Mode::kNone;

  bool com_built = false;
  std::vector<Term> com_assertions;
  bool com_unsupported = false;

  bool ni_built = false;
  std::vector<Term> ni_frame;     // asserted once, shared by both directions
  std::vector<Term> ni_delta_pq;  // pushed/popped per direction
  std::vector<Term> ni_delta_qp;
  bool ni_unsupported_pq = false;
  bool ni_unsupported_qp = false;
};

Checker::PairSession::PairSession(const Checker& checker, const soir::CodePath& p,
                                  const soir::CodePath& q,
                                  const std::set<int>* order_models)
    : checker_(checker), p_(p), q_(q) {
  ni_order_ = Encoder::OrderRelevantModels(p);
  std::set<int> oq = Encoder::OrderRelevantModels(q);
  ni_order_.insert(oq.begin(), oq.end());
  com_order_ = order_models != nullptr ? *order_models : ni_order_;
  prefiltered_ =
      checker_.options_.independence_prefilter && checker_.Independent(p_, q_);
}

Checker::PairSession::~PairSession() = default;

void Checker::PairSession::EnsureShared() {
  if (shared_ != nullptr) {
    return;
  }
  shared_ = std::make_unique<Shared>();
  shared_->backend = smt::MakeBackend(checker_.options_.solver);
  shared_->incremental = smt::IncrementalEnabled(checker_.options_.solver) &&
                         shared_->backend->caps().incremental;
}

CheckOutcome Checker::PairSession::Commutativity(CheckStats* stats) {
  Stopwatch watch;
  if (prefiltered_) {
    if (stats != nullptr) {
      stats->prefiltered = true;
      stats->seconds = watch.ElapsedSeconds();
    }
    return CheckOutcome::kPass;
  }
  EnsureShared();
  if (!shared_->incremental) {
    return checker_.CheckCommutativity(p_, q_, &com_order_, stats);
  }
  Shared& sh = *shared_;
  if (!sh.com_built) {
    sh.com_built = true;
    obs::ScopedSpan encode_span("encode_com", obs::kCatEncode);

    EncoderOptions enc_options = checker_.options_.encoder;
    enc_options.order_models = com_order_;
    checker_.ApplyProjection(p_, q_, &enc_options);
    sh.com_enc = std::make_unique<Encoder>(checker_.schema_, &sh.factory, enc_options);
    Encoder& enc = *sh.com_enc;

    EncState s0 = enc.FreshState("S0");
    Encoder::PathResult pq1 = enc.ApplyPath(p_, s0, "x");
    Encoder::PathResult pq2 = enc.ApplyPath(q_, pq1.post, "y");
    Encoder::PathResult qp1 = enc.ApplyPath(q_, s0, "y");
    Encoder::PathResult qp2 = enc.ApplyPath(p_, qp1.post, "x");
    sh.com_unsupported =
        pq1.unsupported || pq2.unsupported || qp1.unsupported || qp2.unsupported;

    // Same assertion content and order as CheckCommutativity, kept as separate roots so
    // the incremental grounder can cache the ones shared with the NotInvalidate frame
    // (S0's axioms, the unique-id axiom).
    std::vector<Term>& assertions = sh.com_assertions;
    assertions.push_back(sh.factory.Not(enc.StateEq(pq2.post, qp2.post, com_order_)));
    if (checker_.options_.fresh_origin_states) {
      EncState sa = enc.FreshState("Sa");
      EncState sb = enc.FreshState("Sb");
      Encoder::PathResult pre_p = enc.ApplyPath(p_, sa, "x");
      Encoder::PathResult pre_q = enc.ApplyPath(q_, sb, "y");
      sh.com_unsupported = sh.com_unsupported || pre_p.unsupported || pre_q.unsupported;
      assertions.push_back(enc.UniqueIdAxiom(s0));
      assertions.push_back(pre_p.pre);
      assertions.push_back(pre_q.pre);
      assertions.push_back(enc.StateAxioms(sa));
      assertions.push_back(enc.StateAxioms(sb));
    } else {
      assertions.push_back(enc.UniqueIdAxiom(s0));
      assertions.push_back(pq1.pre);
      assertions.push_back(qp1.pre);
    }
    assertions.push_back(pq1.defs);
    assertions.push_back(pq2.defs);
    assertions.push_back(qp1.defs);
    assertions.push_back(qp2.defs);
    assertions.push_back(enc.StateAxioms(s0));
    encode_span.Arg("terms", sh.factory.size());
  }

  CheckOutcome outcome;
  if (sh.com_unsupported) {
    outcome = CheckOutcome::kUnsupported;
  } else {
    if (sh.mode != Shared::Mode::kCom) {
      sh.backend->ResetAssertions();
      sh.backend->AssertAll(sh.com_assertions);
      sh.mode = Shared::Mode::kCom;
    }
    outcome = checker_.RunSolverOn(*sh.backend, sh.factory, false, stats);
  }
  if (stats != nullptr) {
    stats->seconds = watch.ElapsedSeconds();
  }
  return outcome;
}

CheckOutcome Checker::PairSession::NotInvalidatePQ(CheckStats* stats) {
  return NotInvalidateDir(/*pq=*/true, stats);
}

CheckOutcome Checker::PairSession::NotInvalidateQP(CheckStats* stats) {
  return NotInvalidateDir(/*pq=*/false, stats);
}

void Checker::PairSession::BuildNiFrame() {
  Shared& sh = *shared_;
  if (sh.ni_built) {
    return;
  }
  sh.ni_built = true;
  obs::ScopedSpan encode_span("encode_ni", obs::kCatEncode);

  EncoderOptions enc_options = checker_.options_.encoder;
  enc_options.order_models = ni_order_;
  checker_.ApplyProjection(p_, q_, &enc_options);
  sh.ni_enc = std::make_unique<Encoder>(checker_.schema_, &sh.factory, enc_options);
  Encoder& enc = *sh.ni_enc;

  EncState s0 = enc.FreshState("S0");
  Encoder::PathResult p0 = enc.ApplyPath(p_, s0, "x");
  Encoder::PathResult q0 = enc.ApplyPath(q_, s0, "y");
  bool frame_unsupported = p0.unsupported || q0.unsupported;

  // Built after both ApplyPath calls so it covers both argument sets (the fresh-origin
  // re-applications below reuse the cached argument constants and add nothing new).
  Term uid = enc.UniqueIdAxiom(s0);

  if (checker_.options_.fresh_origin_states) {
    // Frame: both effects producible from fresh origin states, plus all state axioms.
    // Relative to the legacy per-direction query this also asserts the *checked* (not
    // replayed) path's origin precondition — satisfiability-preserving, because any
    // legacy witness extends by choosing that origin state to be S0 itself, where the
    // checked precondition already holds.
    EncState sa = enc.FreshState("Sa");
    EncState sb = enc.FreshState("Sb");
    Encoder::PathResult pre_p = enc.ApplyPath(p_, sa, "x");
    Encoder::PathResult pre_q = enc.ApplyPath(q_, sb, "y");
    frame_unsupported =
        frame_unsupported || pre_p.unsupported || pre_q.unsupported;
    sh.ni_frame = {uid,
                   pre_p.pre,
                   pre_q.pre,
                   enc.StateAxioms(sa),
                   enc.StateAxioms(sb),
                   enc.StateAxioms(s0)};
    sh.ni_delta_pq = {nullptr, p0.pre, q0.defs};  // goal filled below
    sh.ni_delta_qp = {nullptr, q0.pre, p0.defs};
  } else {
    // Shared-origin mode: frame + delta is content-identical to the legacy query.
    sh.ni_frame = {uid, p0.pre, q0.pre, enc.StateAxioms(s0)};
    sh.ni_delta_pq = {nullptr, q0.defs};
    sh.ni_delta_qp = {nullptr, p0.defs};
  }

  // Direction goals: replay the other path's effect on S0 and negate the checked path's
  // precondition there. Goal first — the innermost frame is asserted before the shared
  // frame, preserving the legacy goal-first search heuristic.
  Encoder::PathResult p_after = enc.ApplyPath(p_, q0.post, "x");
  sh.ni_unsupported_pq = frame_unsupported || p_after.unsupported;
  sh.ni_delta_pq[0] = sh.factory.Not(p_after.pre);

  Encoder::PathResult q_after = enc.ApplyPath(q_, p0.post, "y");
  sh.ni_unsupported_qp = frame_unsupported || q_after.unsupported;
  sh.ni_delta_qp[0] = sh.factory.Not(q_after.pre);

  encode_span.Arg("terms", sh.factory.size());
}

CheckOutcome Checker::PairSession::NotInvalidateDir(bool pq, CheckStats* stats) {
  Stopwatch watch;
  if (prefiltered_) {
    if (stats != nullptr) {
      stats->prefiltered = true;
      stats->seconds = watch.ElapsedSeconds();
    }
    return CheckOutcome::kPass;
  }
  EnsureShared();
  if (!shared_->incremental) {
    return pq ? checker_.CheckNotInvalidate(p_, q_, stats)
              : checker_.CheckNotInvalidate(q_, p_, stats);
  }
  Shared& sh = *shared_;
  BuildNiFrame();

  bool unsupported = pq ? sh.ni_unsupported_pq : sh.ni_unsupported_qp;
  CheckOutcome outcome;
  if (unsupported) {
    outcome = CheckOutcome::kUnsupported;
  } else {
    if (sh.mode != Shared::Mode::kNi) {
      sh.backend->ResetAssertions();
      sh.backend->AssertAll(sh.ni_frame);
      sh.mode = Shared::Mode::kNi;
    }
    sh.backend->Push();
    for (const Term& t : (pq ? sh.ni_delta_pq : sh.ni_delta_qp)) {
      sh.backend->AddAssertion(t);
    }
    outcome = checker_.RunSolverOn(*sh.backend, sh.factory, false, stats);
    sh.backend->Pop();
  }
  if (stats != nullptr) {
    stats->seconds = watch.ElapsedSeconds();
  }
  return outcome;
}

}  // namespace noctua::verifier
