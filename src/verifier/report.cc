#include "src/verifier/report.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <optional>

#include "src/obs/obs.h"
#include "src/smt/backend.h"
#include "src/soir/serialize.h"
#include "src/support/check.h"
#include "src/support/rng.h"
#include "src/support/stopwatch.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"
#include "src/verifier/cache.h"

namespace noctua::verifier {

const char* PairProvenanceName(PairProvenance p) {
  switch (p) {
    case PairProvenance::kComputed:
      return "computed";
    case PairProvenance::kReplayed:
      return "replayed";
    case PairProvenance::kPrefiltered:
      return "prefiltered";
  }
  return "?";
}

size_t RestrictionReport::num_restrictions() const {
  size_t n = 0;
  for (const PairVerdict& v : pairs) {
    n += v.Restricted() ? 1 : 0;
  }
  return n;
}

size_t RestrictionReport::com_failures() const {
  size_t n = 0;
  for (const PairVerdict& v : pairs) {
    n += OutcomeRestricts(v.commutativity) ? 1 : 0;
  }
  return n;
}

size_t RestrictionReport::sem_failures() const {
  size_t n = 0;
  for (const PairVerdict& v : pairs) {
    n += OutcomeRestricts(v.semantic) ? 1 : 0;
  }
  return n;
}

double RestrictionReport::com_seconds() const {
  double t = 0;
  for (const PairVerdict& v : pairs) {
    t += v.com_seconds;
  }
  return t;
}

double RestrictionReport::sem_seconds() const {
  double t = 0;
  for (const PairVerdict& v : pairs) {
    t += v.sem_seconds;
  }
  return t;
}

std::vector<std::string> RestrictionReport::RestrictedPairNames() const {
  std::vector<std::string> out;
  for (const PairVerdict& v : pairs) {
    if (v.Restricted()) {
      out.push_back("(" + v.p + ", " + v.q + ")");
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> RestrictionReport::RestrictedViewPairs()
    const {
  auto view_of = [](const std::string& op) { return op.substr(0, op.find('#')); };
  std::vector<std::pair<std::string, std::string>> out;
  for (const PairVerdict& v : pairs) {
    if (!v.Restricted()) {
      continue;
    }
    std::pair<std::string, std::string> vp{view_of(v.p), view_of(v.q)};
    if (std::find(out.begin(), out.end(), vp) == out.end()) {
      out.push_back(std::move(vp));
    }
  }
  return out;
}

std::string RestrictionReport::ToString() const {
  std::string out = "checks: " + std::to_string(num_checks()) +
                    ", restrictions: " + std::to_string(num_restrictions()) +
                    ", com failures: " + std::to_string(com_failures()) +
                    ", sem failures: " + std::to_string(sem_failures()) + "\n";
  for (const PairVerdict& v : pairs) {
    if (v.Restricted()) {
      out += "  (" + v.p + ", " + v.q + "): com=" + CheckOutcomeName(v.commutativity) +
             " sem=" + CheckOutcomeName(v.semantic) + "\n";
    }
  }
  return out;
}

namespace {

// One unordered pair of path indices, with its scheduling estimate.
struct PairJob {
  size_t i = 0;
  size_t j = 0;
  bool prefiltered = false;
  uint64_t cost = 0;
};

// A crude but monotone cost proxy: command count of both paths times the size of the
// footprint closure the solver must reason about. Prefiltered pairs cost nothing.
uint64_t EstimateCost(const Checker& checker, const soir::CodePath& p,
                      const soir::CodePath& q) {
  Checker::PairScope scope = checker.ComputeScope(p, q);
  return static_cast<uint64_t>(p.commands.size() + q.commands.size()) *
         static_cast<uint64_t>(1 + scope.models.size() + scope.relations.size());
}

}  // namespace

RestrictionReport AnalyzeRestrictions(const Checker& checker,
                                      const std::vector<soir::CodePath>& paths,
                                      const ParallelOptions& parallel,
                                      const std::vector<soir::CodePath>& observers) {
  Stopwatch watch;
  obs::ScopedSpan run_span("AnalyzeRestrictions", obs::kCatVerify);
  const soir::Schema& schema = checker.schema();

  // Models whose insertion order any operation observes: their relative order is part of
  // state equality app-wide (a divergent order would be visible to those operations).
  // Read-only `observers` contribute here without being pair-checked themselves.
  std::set<int> order_models;
  for (const soir::CodePath& p : paths) {
    std::set<int> m = Encoder::OrderRelevantModels(p);
    order_models.insert(m.begin(), m.end());
  }
  for (const soir::CodePath& p : observers) {
    std::set<int> m = Encoder::OrderRelevantModels(p);
    order_models.insert(m.begin(), m.end());
  }

  // Enumerate pairs in the report's canonical (i, j >= i) order and estimate costs.
  std::vector<PairJob> jobs;
  jobs.reserve(paths.size() * (paths.size() + 1) / 2);
  for (size_t i = 0; i < paths.size(); ++i) {
    for (size_t j = i; j < paths.size(); ++j) {
      PairJob job;
      job.i = i;
      job.j = j;
      job.prefiltered = checker.Prefilterable(paths[i], paths[j]);
      job.cost = job.prefiltered ? 0 : EstimateCost(checker, paths[i], paths[j]);
      jobs.push_back(job);
    }
  }

  // Cheapest-first dispatch order (stable: ties keep report order). Results still land
  // at their original index, so the schedule never shows in the output.
  std::vector<size_t> dispatch(jobs.size());
  std::iota(dispatch.begin(), dispatch.end(), size_t{0});
  if (parallel.cheapest_first) {
    std::stable_sort(dispatch.begin(), dispatch.end(),
                     [&](size_t a, size_t b) { return jobs[a].cost < jobs[b].cost; });
  }

  // A caller-provided store makes verdicts persistent across runs; its counters
  // accumulate, so report stats are computed as deltas from this snapshot. Only the
  // run-local cache may be bounded — evicting from a store would turn replayable
  // verdicts into cold misses on the next warm run.
  // Cache keys carry a backend tag for non-default backends. Verdicts themselves are
  // backend-independent (the cross-backend soundness contract), but kTimeout is not: a
  // query one backend finishes may exhaust another's budget, so entries must not leak
  // across backends. The dfs default stays untagged to keep existing artifact stores
  // replayable.
  const smt::BackendKind backend_kind =
      smt::ResolveBackendKind(checker.options().solver.backend);
  const std::string backend_tag =
      backend_kind == smt::BackendKind::kDfs
          ? std::string()
          : std::string(smt::BackendKindName(backend_kind)) + "|";
  // This run's tallies accumulate into the caller's sink when one is provided (an
  // engine-owned sink keeps concurrent runs from reading each other's deltas), else
  // into the process-wide sink exactly as before.
  smt::SolverCounterSink* sink =
      parallel.counters != nullptr ? parallel.counters : &smt::ProcessSolverCounters();
  const smt::PortfolioCounts portfolio_before = sink->Portfolio();
  const smt::SolverSharedCounts shared_before = sink->Shared();

  VerdictCache local_cache(parallel.store != nullptr ? 0 : parallel.cache_capacity);
  VerdictCache* cache = parallel.store != nullptr ? parallel.store : &local_cache;
  const uint64_t hits_before = cache->hits();
  const uint64_t misses_before = cache->misses();
  const uint64_t evictions_before = cache->evictions();
  const bool use_cache = parallel.cache;
  std::atomic<uint64_t> prefiltered_count{0};
  std::atomic<uint64_t> solver_checks{0};
  std::atomic<uint64_t> solver_nodes{0};
  std::atomic<uint64_t> replayed_queries{0};
  std::atomic<uint64_t> paranoia_rechecks{0};

  RestrictionReport report;
  report.pairs.resize(jobs.size());

  // One solver-level query, answered from the verdict cache when an isomorphic query
  // already ran. Both outcomes and cache contents are scheduling-independent: isomorphic
  // queries have equal verdicts, so whichever worker computes first inserts the same
  // answer every interleaving. Replayed hits (entries loaded from a prior store) are
  // additionally subject to paranoia sampling: a per-fingerprint coin decides whether to
  // re-solve and cross-check, so the audited subset is the same for any thread count.
  auto cached_query = [&](const std::function<std::string()>& key_fn, CheckStats* cs,
                          const std::function<CheckOutcome(CheckStats*)>& compute) {
    std::string key;
    if (use_cache) {
      key = key_fn();
      std::optional<VerdictCache::Entry> hit;
      {
        obs::ScopedSpan probe("cache_probe", obs::kCatCache);
        hit = cache->LookupEntry(key);
        probe.Arg("hit", hit.has_value() ? 1 : 0);
      }
      if (hit) {
        cs->cache_hit = true;
        cs->replayed = hit->replayed;
        if (hit->replayed) {
          replayed_queries.fetch_add(1, std::memory_order_relaxed);
          if (parallel.paranoia > 0) {
            Rng coin(soir::Fnv1a64(key) ^ parallel.paranoia_seed);
            if (coin.Chance(parallel.paranoia)) {
              CheckStats recheck;
              CheckOutcome fresh = compute(&recheck);
              solver_checks.fetch_add(1, std::memory_order_relaxed);
              solver_nodes.fetch_add(recheck.solver_nodes, std::memory_order_relaxed);
              paranoia_rechecks.fetch_add(1, std::memory_order_relaxed);
              NOCTUA_CHECK_MSG(fresh == hit->outcome,
                               "paranoia recheck disagrees with replayed verdict ("
                                   << CheckOutcomeName(fresh) << " vs "
                                   << CheckOutcomeName(hit->outcome)
                                   << ") — the artifact store is corrupt; key: " << key);
            }
          }
        }
        return hit->outcome;
      }
    }
    CheckOutcome o = compute(cs);
    solver_checks.fetch_add(1, std::memory_order_relaxed);
    solver_nodes.fetch_add(cs->solver_nodes, std::memory_order_relaxed);
    if (use_cache) {
      cache->Insert(key, o);
    }
    return o;
  };

  // The submitting thread's request-scoped trace context, captured once so every pool
  // task below re-installs it: per-pair spans inherit the service request (if any) that
  // scheduled this run, even when they execute on a shared pool worker.
  const obs::TraceContext trace_ctx = obs::CurrentTraceContext();

  auto run_job = [&](size_t k) {
    // Route every solver accumulation this task performs (including portfolio races,
    // which re-install the current sink on their contestant threads) to this run's sink.
    smt::ScopedSolverCounterSink scoped_sink(sink);
    obs::ScopedTraceContext trace_scope(trace_ctx);
    const PairJob& job = jobs[k];
    const soir::CodePath& p = paths[job.i];
    const soir::CodePath& q = paths[job.j];
    // Dynamic span name only when recording — the concatenation is not free.
    std::string span_name;
    if (obs::Enabled()) {
      span_name = p.op_name + "|" + q.op_name;
    }
    obs::ScopedSpan pair_span(std::move(span_name), obs::kCatPair);
    Stopwatch pair_watch;
    PairVerdict v;
    v.p = p.op_name;
    v.q = q.op_name;
    if (job.prefiltered) {
      v.prefiltered = true;
      v.provenance = PairProvenance::kPrefiltered;
      prefiltered_count.fetch_add(1, std::memory_order_relaxed);
    } else {
      // One session per pair: the commutativity query and both NotInvalidate directions
      // share a term factory, a backend, and the grounding of their common frame. Cache
      // keys are unchanged — a cache hit just skips the session's corresponding query.
      Checker::PairSession session(checker, p, q, &order_models);
      Stopwatch com_watch;
      CheckStats cs;
      v.commutativity = cached_query(
          [&] { return backend_tag + CommutativityKey(schema, p, q, order_models); }, &cs,
          [&](CheckStats* st) { return session.Commutativity(st); });
      v.com_seconds = com_watch.ElapsedSeconds();
      v.solver_nodes += cs.solver_nodes;
      v.cache_hits += cs.cache_hit ? 1 : 0;

      // The semantic rule, with each direction cached separately: NotInvalidate(P, P)
      // appears twice in every self-pair, and viewset twins share both directions.
      Stopwatch sem_watch;
      CheckStats s1, s2;
      CheckOutcome a =
          cached_query([&] { return backend_tag + NotInvalidateKey(schema, p, q); }, &s1,
                       [&](CheckStats* st) { return session.NotInvalidatePQ(st); });
      CheckOutcome b = CheckOutcome::kPass;
      if (a == CheckOutcome::kPass) {
        b = cached_query([&] { return backend_tag + NotInvalidateKey(schema, q, p); }, &s2,
                         [&](CheckStats* st) { return session.NotInvalidateQP(st); });
      }
      v.semantic = Checker::WorseOutcome(a, b);
      v.sem_seconds = sem_watch.ElapsedSeconds();
      v.solver_nodes += s1.solver_nodes + s2.solver_nodes;
      v.cache_hits += (s1.cache_hit ? 1 : 0) + (s2.cache_hit ? 1 : 0);

      // A pair replays only if *every* verdict it needed came from the prior store; a
      // twin-cache hit computed this run still means this run did the (shared) work.
      bool all_replayed = cs.replayed && s1.replayed &&
                          (a != CheckOutcome::kPass || s2.replayed);
      v.provenance = all_replayed ? PairProvenance::kReplayed : PairProvenance::kComputed;
    }
    if (obs::Enabled()) {
      pair_span.Arg("solver_nodes", v.solver_nodes);
      pair_span.Arg("cache_hits", v.cache_hits);
      pair_span.Arg("prefiltered", v.prefiltered ? 1 : 0);
      if (!v.prefiltered) {
        obs::Observe(obs::Hist::kPairMicros,
                     static_cast<uint64_t>(pair_watch.ElapsedSeconds() * 1e6));
      }
    }
    report.pairs[k] = std::move(v);
  };

  // Either borrow the caller's long-lived pool (engine mode) or spin up a run-local one.
  // A borrowed pool's lifetime totals span many runs, so stats are snapshotted around
  // the ParallelFor and reported as deltas.
  std::optional<ThreadPool> local_pool;
  ThreadPool* pool = parallel.pool;
  if (pool == nullptr) {
    int threads = parallel.threads > 0 ? parallel.threads : ThreadPool::DefaultThreads();
    local_pool.emplace(threads);
    pool = &*local_pool;
  }
  const ThreadPool::Stats pool_before = pool->stats();
  pool->ParallelFor(jobs.size(), run_job, parallel.cheapest_first ? &dispatch : nullptr);

  report.stats.threads_used = pool->threads();
  report.stats.pairs = jobs.size();
  report.stats.prefiltered = prefiltered_count.load();
  report.stats.solver_checks = solver_checks.load();
  report.stats.cache_hits = cache->hits() - hits_before;
  report.stats.cache_misses = cache->misses() - misses_before;
  report.stats.replayed = replayed_queries.load();
  report.stats.paranoia_rechecks = paranoia_rechecks.load();
  report.stats.solver_nodes = solver_nodes.load();
  ThreadPool::Stats pool_stats = pool->stats();
  report.stats.pool_tasks = pool_stats.tasks - pool_before.tasks;
  report.stats.pool_steals = pool_stats.steals - pool_before.steals;
  report.stats.cache_evictions = cache->evictions() - evictions_before;
  report.stats.solver_backend = smt::BackendKindName(backend_kind);
  {
    const smt::PortfolioCounts after = sink->Portfolio();
    report.stats.portfolio_races = after.races - portfolio_before.races;
    report.stats.portfolio_wins_dfs = after.wins_dfs - portfolio_before.wins_dfs;
    report.stats.portfolio_wins_cdcl = after.wins_cdcl - portfolio_before.wins_cdcl;
    report.stats.portfolio_undecided = after.undecided - portfolio_before.undecided;
  }
  {
    const smt::SolverSharedCounts after = sink->Shared();
    report.stats.incremental_reuse_hits =
        after.incremental_reuse_hits - shared_before.incremental_reuse_hits;
    report.stats.symmetry_pruned = after.symmetry_pruned - shared_before.symmetry_pruned;
    report.stats.cdcl_restarts = after.cdcl_restarts - shared_before.cdcl_restarts;
    report.stats.cdcl_clauses_forgotten =
        after.cdcl_clauses_forgotten - shared_before.cdcl_clauses_forgotten;
  }
  for (const VerdictCache::ShardStats& s : cache->PerShardStats()) {
    report.stats.cache_shards.push_back(
        ReportStats::CacheShardStat{s.entries, s.hits, s.misses, s.evictions});
  }
  for (const PairVerdict& v : report.pairs) {
    report.stats.check_seconds += v.com_seconds + v.sem_seconds;
    if (v.provenance == PairProvenance::kReplayed) {
      ++report.stats.pairs_replayed;
    } else if (v.provenance == PairProvenance::kComputed) {
      ++report.stats.pairs_computed;
    }
  }
  report.total_seconds = watch.ElapsedSeconds();

  if (obs::Enabled()) {
    // One-shot counter feed from the assembled stats — nothing in the pair loop
    // incremented obs counters directly.
    const ReportStats& st = report.stats;
    obs::Add(obs::Counter::kPairsChecked, st.pairs);
    obs::Add(obs::Counter::kPairsPrefiltered, st.prefiltered);
    obs::Add(obs::Counter::kSolverChecks, st.solver_checks);
    obs::Add(obs::Counter::kCacheHits, st.cache_hits);
    obs::Add(obs::Counter::kCacheMisses, st.cache_misses);
    obs::Add(obs::Counter::kCacheReplayed, st.replayed);
    obs::Add(obs::Counter::kCacheEvictions, st.cache_evictions);
    obs::Add(obs::Counter::kPoolTasks, st.pool_tasks);
    obs::Add(obs::Counter::kPoolSteals, st.pool_steals);
    obs::Add(obs::Counter::kPairsReplayed, st.pairs_replayed);
    obs::Add(obs::Counter::kPairsComputed, st.pairs_computed);
    obs::Add(obs::Counter::kParanoiaRechecks, st.paranoia_rechecks);
    run_span.Arg("pairs", st.pairs);
    run_span.Arg("solver_checks", st.solver_checks);
    run_span.Arg("threads", static_cast<uint64_t>(st.threads_used));
  }
  return report;
}

}  // namespace noctua::verifier
