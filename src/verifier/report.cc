#include "src/verifier/report.h"

#include "src/support/stopwatch.h"
#include "src/support/strings.h"

namespace noctua::verifier {

size_t RestrictionReport::num_restrictions() const {
  size_t n = 0;
  for (const PairVerdict& v : pairs) {
    n += v.Restricted() ? 1 : 0;
  }
  return n;
}

size_t RestrictionReport::com_failures() const {
  size_t n = 0;
  for (const PairVerdict& v : pairs) {
    n += OutcomeRestricts(v.commutativity) ? 1 : 0;
  }
  return n;
}

size_t RestrictionReport::sem_failures() const {
  size_t n = 0;
  for (const PairVerdict& v : pairs) {
    n += OutcomeRestricts(v.semantic) ? 1 : 0;
  }
  return n;
}

double RestrictionReport::com_seconds() const {
  double t = 0;
  for (const PairVerdict& v : pairs) {
    t += v.com_seconds;
  }
  return t;
}

double RestrictionReport::sem_seconds() const {
  double t = 0;
  for (const PairVerdict& v : pairs) {
    t += v.sem_seconds;
  }
  return t;
}

std::vector<std::string> RestrictionReport::RestrictedPairNames() const {
  std::vector<std::string> out;
  for (const PairVerdict& v : pairs) {
    if (v.Restricted()) {
      out.push_back("(" + v.p + ", " + v.q + ")");
    }
  }
  return out;
}

std::string RestrictionReport::ToString() const {
  std::string out = "checks: " + std::to_string(num_checks()) +
                    ", restrictions: " + std::to_string(num_restrictions()) +
                    ", com failures: " + std::to_string(com_failures()) +
                    ", sem failures: " + std::to_string(sem_failures()) + "\n";
  for (const PairVerdict& v : pairs) {
    if (v.Restricted()) {
      out += "  (" + v.p + ", " + v.q + "): com=" + CheckOutcomeName(v.commutativity) +
             " sem=" + CheckOutcomeName(v.semantic) + "\n";
    }
  }
  return out;
}

RestrictionReport AnalyzeRestrictions(const soir::Schema& schema,
                                      const std::vector<soir::CodePath>& paths,
                                      const CheckerOptions& options,
                                      const std::vector<soir::CodePath>& observers) {
  Stopwatch watch;
  Checker checker(schema, options);

  // Models whose insertion order any operation observes: their relative order is part of
  // state equality app-wide (a divergent order would be visible to those operations).
  // Read-only `observers` contribute here without being pair-checked themselves.
  std::set<int> order_models;
  for (const soir::CodePath& p : paths) {
    std::set<int> m = Encoder::OrderRelevantModels(p);
    order_models.insert(m.begin(), m.end());
  }
  for (const soir::CodePath& p : observers) {
    std::set<int> m = Encoder::OrderRelevantModels(p);
    order_models.insert(m.begin(), m.end());
  }

  RestrictionReport report;
  for (size_t i = 0; i < paths.size(); ++i) {
    for (size_t j = i; j < paths.size(); ++j) {
      PairVerdict v;
      v.p = paths[i].op_name;
      v.q = paths[j].op_name;
      CheckStats cs, ss;
      v.commutativity = checker.CheckCommutativity(paths[i], paths[j], &order_models, &cs);
      v.semantic = checker.CheckSemantic(paths[i], paths[j], &ss);
      v.com_seconds = cs.seconds;
      v.sem_seconds = ss.seconds;
      report.pairs.push_back(std::move(v));
    }
  }
  report.total_seconds = watch.ElapsedSeconds();
  return report;
}

}  // namespace noctua::verifier
