// Order-aware array-based SMT encoding of database states and SOIR code paths
// (paper §4.2, Table 2; axioms from §5.2).
//
// Each model state is encoded as the paper's triple:
//     ids   : Set<Ref>             the live object IDs
//     data  : Array<Ref, Tuple>    object data; tuple field 0 is the primary key
//     order : Array<Ref, Int>      decoupled order information
// and each relation as an association set Set<Pair<Ref,Ref>>.
//
// Query sets are encoded compositionally as (member set, effective data, effective order):
// filter narrows the member set, orderby/reverse rewrite the effective order (the paper's
// order'[x] = data[x].f and order'[x] = -order[x] rules), and constructed objects overlay
// the data array. Order costs nothing unless an order primitive appears — the decoupling
// that motivates the design (§2.2.2).
//
// Applying a code path to a state yields its commit precondition (conjunction of guards),
// the post state, and side definitions (fresh order numbers for inserts). Unsupported
// constructs set `unsupported`, which the checker treats conservatively (restrict the
// pair), mirroring §3.3's fallback.
#ifndef SRC_VERIFIER_ENCODER_H_
#define SRC_VERIFIER_ENCODER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/smt/term.h"
#include "src/soir/ast.h"
#include "src/soir/schema.h"

namespace noctua::verifier {

struct EncModelState {
  smt::Term ids = nullptr;
  smt::Term data = nullptr;
  smt::Term order = nullptr;
};

struct EncState {
  std::vector<EncModelState> models;
  std::vector<smt::Term> relations;  // Set<Pair<from Ref, to Ref>> per relation
};

struct EncoderOptions {
  // The order-decoupling ablation (Table 7 / Fig. 9): when false, order primitives are
  // not encoded and any path using them is reported unsupported.
  bool use_order = true;
  // §5.2: assert that database-generated IDs of new objects are globally unique.
  bool unique_id_optimization = true;
  // Models whose order information must be materialized (order arrays, uniqueness axioms,
  // insert-order definitions). This is the paper's decoupling payoff in action: models
  // outside this set pay nothing for order. Populated by the checker from the paths'
  // order-relevant models.
  std::set<int> order_models;

  // Footprint projection: when `project` is true, only the models/relations listed below
  // are materialized — FreshState leaves other entries null and StateAxioms/StateEq skip
  // them. The checker fills these with the pair's footprint closure (every model and
  // relation either path can reach, plus relation endpoints and delete-incident
  // relations). Sound because the dropped axioms constrain only atoms absent from every
  // kept assertion and are independently satisfiable (choose empty relations and
  // distinct data fields), so the projected query is equisatisfiable with the full one.
  bool project = false;
  std::set<int> active_models;
  std::set<int> active_relations;

  bool OrderFor(int model) const { return use_order && order_models.count(model) != 0; }
  bool ModelActive(int model) const { return !project || active_models.count(model) != 0; }
  bool RelationActive(int rel) const { return !project || active_relations.count(rel) != 0; }
};

class Encoder {
 public:
  Encoder(const soir::Schema& schema, smt::TermFactory* factory, EncoderOptions options);

  // --- Sorts -----------------------------------------------------------------------------
  smt::Sort RefSortOf(int model) const;
  smt::Sort ObjSortOf(int model) const;   // Tuple: [pk ref] + data fields
  smt::Sort PairSortOf(int relation) const;

  // --- States ----------------------------------------------------------------------------
  // A fresh symbolic state whose constants are prefixed with `prefix`.
  EncState FreshState(const std::string& prefix);

  // Well-formedness axioms (§5.2): data[id].pk == id, unique-field injectivity, unique
  // order numbers, foreign-key multiplicity, and association referential integrity.
  smt::Term StateAxioms(const EncState& s);

  // --- Paths -----------------------------------------------------------------------------
  struct PathResult {
    smt::Term pre = nullptr;    // conjunction of the path's guards
    EncState post;              // state after all effects
    smt::Term defs = nullptr;   // side constraints (fresh insert order numbers)
    bool unsupported = false;   // hit a construct the encoding cannot express
  };
  // Encodes `path` applied to `in`; argument constants are named "<arg_prefix>_<name>"
  // and cached, so re-encoding the same path with the same prefix reuses them.
  PathResult ApplyPath(const soir::CodePath& path, const EncState& in,
                       const std::string& arg_prefix);

  // State equality modulo dead data: ids and relations must agree, data must agree on
  // live ids, and relative order must agree for the models in `order_models`.
  smt::Term StateEq(const EncState& a, const EncState& b, const std::set<int>& order_models);

  // The unique-ID optimization axiom over every unique argument created so far, plus
  // freshness w.r.t. the given initial state (§5.2). True() when disabled or unneeded.
  smt::Term UniqueIdAxiom(const EncState& initial);

  // Models whose *insertion order* a path observes (first/last/reverse/orderby).
  static std::set<int> OrderRelevantModels(const soir::CodePath& p);
  // True if the path uses any order primitive at all.
  static bool UsesOrderPrimitives(const soir::CodePath& p);

  const soir::Schema& schema() const { return schema_; }
  smt::TermFactory& factory() { return *f_; }

 private:
  struct EncObj {
    int model = -1;
    smt::Term ref = nullptr;
    smt::Term tuple = nullptr;
  };
  struct EncSet {
    int model = -1;
    smt::Term member = nullptr;  // Set<Ref>
    smt::Term data = nullptr;    // effective data (overlays constructed objects)
    smt::Term order = nullptr;   // effective order (rewritten by orderby/reverse); may be
                                 // null when use_order is false
    bool db_subset = true;       // member ⊆ state ids (false once constructed objs enter)
  };
  struct EncVal {
    enum class Kind { kScalar, kObj, kSet } kind = Kind::kScalar;
    smt::Term scalar = nullptr;
    EncObj obj;
    EncSet set;
  };
  struct PathCtx {
    const soir::CodePath* path;
    std::string arg_prefix;
    EncState state;
    std::vector<smt::Term> guards;
    std::vector<smt::Term> defs;
    const EncObj* bound_obj = nullptr;  // kMapSet iteration variable
    bool unsupported = false;
  };

  EncVal Eval(const soir::Expr& e, PathCtx& ctx);
  smt::Term FieldOf(const EncObj& obj, const std::string& field, PathCtx& ctx);
  // Predicate: does `x` (a Ref term with obj data array `data0`) satisfy the filter
  // rel_path/field/op/value starting at `model`?
  smt::Term FilterPred(smt::Term x, int model, smt::Term data0,
                       const std::vector<soir::RelStep>& path, size_t step,
                       const std::string& field, soir::CmpOp op, smt::Term value,
                       PathCtx& ctx);
  smt::Term CmpTerm(soir::CmpOp op, smt::Term a, smt::Term b);
  void ApplyCommand(const soir::Command& cmd, PathCtx& ctx);
  smt::Term ArgConst(const soir::ArgDef& arg, const std::string& prefix);
  int FieldTupleIndex(int model, const std::string& field) const;  // -1 for pk

  const soir::Schema& schema_;
  smt::TermFactory* f_;
  EncoderOptions options_;
  std::vector<smt::Sort> ref_sorts_;
  std::vector<smt::Sort> obj_sorts_;
  std::vector<smt::Sort> pair_sorts_;
  std::map<std::string, smt::Term> arg_cache_;
  // Unique-id argument constants grouped by model (for the distinct axiom).
  std::map<int, std::vector<smt::Term>> unique_args_;
  int fresh_counter_ = 0;
};

}  // namespace noctua::verifier

#endif  // SRC_VERIFIER_ENCODER_H_
