// In-memory relational database engine — the replicated storage substrate.
//
// Each site of the geo-replication simulator holds one Database instance; the SOIR
// interpreter executes code paths against it. Rows are keyed by primary key; insertion
// order numbers implement the paper's decoupled order information (§4.2) concretely, so
// ORDER BY / first / last have well-defined semantics. Relations are association sets, the
// concrete counterpart of the verifier's Set<Pair<Ref,Ref>> encoding.
//
// Database has value semantics: the interpreter copies it to implement transactional
// all-or-nothing application of a code path (Django wraps responders in transactions,
// §2.2.1), and the simulator copies it to fork replica states.
#ifndef SRC_ORM_DATABASE_H_
#define SRC_ORM_DATABASE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/orm/value.h"
#include "src/soir/schema.h"

namespace noctua::orm {

using Row = std::vector<Value>;  // data fields in schema order (pk is the map key)

class Database {
 public:
  explicit Database(const soir::Schema* schema);

  const soir::Schema& schema() const { return *schema_; }

  // --- Rows -----------------------------------------------------------------------------
  // Inserts or overwrites (merge semantics of SOIR update). New rows receive the next
  // order number; existing rows keep theirs.
  void Upsert(int model, int64_t pk, Row fields);
  // Removes the row and every association involving it. No-op if absent.
  void Erase(int model, int64_t pk);
  bool Exists(int model, int64_t pk) const;
  // Row accessor; the row must exist.
  const Row& Get(int model, int64_t pk) const;
  int64_t OrderOf(int model, int64_t pk) const;
  // Primary keys of all live rows, sorted by order number (the storage order).
  std::vector<int64_t> AllPks(int model) const;
  size_t RowCount(int model) const;

  // --- Relations ------------------------------------------------------------------------
  // Links from/to; for many-to-one relations any previous target of `from` is replaced
  // (a foreign key holds at most one target).
  void Link(int relation, int64_t from, int64_t to);
  void Delink(int relation, int64_t from, int64_t to);
  void ClearLinks(int relation, int64_t obj, bool obj_is_from);
  bool Linked(int relation, int64_t from, int64_t to) const;
  // Targets associated with `from` (forward=true) or sources associated with `to`.
  std::vector<int64_t> Associated(int relation, int64_t obj, bool forward) const;
  const std::set<std::pair<int64_t, int64_t>>& Associations(int relation) const;

  // Allocates a fresh, never-used primary key for the model (the database-generated
  // globally-unique ID of §5.2). The returned keys are unique across all sites when each
  // site allocates from a disjoint stripe — see StripeNewIds.
  int64_t NewId(int model);
  // Configures ID striping: site s of n allocates s, s+n, s+2n, ... (unique across sites).
  void StripeNewIds(int64_t site, int64_t num_sites);

  // Deep structural equality: rows and relations must match everywhere; relative
  // insertion order is compared only for the models in `order_models` (order divergence
  // elsewhere is unobservable — §4.2's decoupling, mirrored concretely). Used by the
  // convergence property tests and the simulator.
  bool SameState(const Database& other, const std::set<int>& order_models = {}) const;

  std::string ToString() const;

 private:
  struct Table {
    std::map<int64_t, Row> rows;
    std::map<int64_t, int64_t> order;  // pk -> order number
    int64_t next_order = 0;
    int64_t next_id = 0;
  };

  const soir::Schema* schema_;
  std::vector<Table> tables_;
  std::vector<std::set<std::pair<int64_t, int64_t>>> relations_;
  int64_t id_offset_ = 0;
  int64_t id_stride_ = 1;
};

}  // namespace noctua::orm

#endif  // SRC_ORM_DATABASE_H_
