#include "src/orm/database.h"

#include <algorithm>

#include "src/support/check.h"

namespace noctua::orm {

Database::Database(const soir::Schema* schema) : schema_(schema) {
  tables_.resize(schema->num_models());
  relations_.resize(schema->num_relations());
}

void Database::Upsert(int model, int64_t pk, Row fields) {
  Table& t = tables_[model];
  NOCTUA_CHECK_MSG(fields.size() == schema_->model(model).fields().size(),
                   "row width mismatch for model " << schema_->model(model).name());
  auto it = t.rows.find(pk);
  if (it == t.rows.end()) {
    t.order[pk] = t.next_order++;
    t.rows.emplace(pk, std::move(fields));
    t.next_id = std::max(t.next_id, pk + 1);
  } else {
    it->second = std::move(fields);
  }
}

void Database::Erase(int model, int64_t pk) {
  Table& t = tables_[model];
  t.rows.erase(pk);
  t.order.erase(pk);
  for (size_t r = 0; r < relations_.size(); ++r) {
    const soir::RelationDef& rel = schema_->relation(static_cast<int>(r));
    auto& pairs = relations_[r];
    for (auto it = pairs.begin(); it != pairs.end();) {
      // The from side's associations always die with the object; the to side's survive
      // only under DO_NOTHING (dangling reference, Django semantics).
      bool incident = (rel.from_model == model && it->first == pk) ||
                      (rel.to_model == model && it->second == pk &&
                       rel.on_delete != soir::OnDelete::kDoNothing);
      it = incident ? pairs.erase(it) : std::next(it);
    }
  }
}

bool Database::Exists(int model, int64_t pk) const {
  return tables_[model].rows.count(pk) != 0;
}

const Row& Database::Get(int model, int64_t pk) const {
  auto it = tables_[model].rows.find(pk);
  NOCTUA_CHECK_MSG(it != tables_[model].rows.end(),
                   "missing row " << pk << " in " << schema_->model(model).name());
  return it->second;
}

int64_t Database::OrderOf(int model, int64_t pk) const {
  auto it = tables_[model].order.find(pk);
  NOCTUA_CHECK(it != tables_[model].order.end());
  return it->second;
}

std::vector<int64_t> Database::AllPks(int model) const {
  const Table& t = tables_[model];
  std::vector<int64_t> pks;
  pks.reserve(t.rows.size());
  for (const auto& [pk, _] : t.rows) {
    pks.push_back(pk);
  }
  std::sort(pks.begin(), pks.end(), [&](int64_t a, int64_t b) {
    return t.order.at(a) < t.order.at(b);
  });
  return pks;
}

size_t Database::RowCount(int model) const { return tables_[model].rows.size(); }

void Database::Link(int relation, int64_t from, int64_t to) {
  if (schema_->relation(relation).kind == soir::RelationKind::kManyToOne) {
    ClearLinks(relation, from, /*obj_is_from=*/true);
  }
  relations_[relation].insert({from, to});
}

void Database::Delink(int relation, int64_t from, int64_t to) {
  relations_[relation].erase({from, to});
}

void Database::ClearLinks(int relation, int64_t obj, bool obj_is_from) {
  auto& pairs = relations_[relation];
  for (auto it = pairs.begin(); it != pairs.end();) {
    bool hit = obj_is_from ? it->first == obj : it->second == obj;
    it = hit ? pairs.erase(it) : std::next(it);
  }
}

bool Database::Linked(int relation, int64_t from, int64_t to) const {
  return relations_[relation].count({from, to}) != 0;
}

std::vector<int64_t> Database::Associated(int relation, int64_t obj, bool forward) const {
  std::vector<int64_t> out;
  for (const auto& [from, to] : relations_[relation]) {
    if (forward && from == obj) {
      out.push_back(to);
    } else if (!forward && to == obj) {
      out.push_back(from);
    }
  }
  return out;
}

const std::set<std::pair<int64_t, int64_t>>& Database::Associations(int relation) const {
  return relations_[relation];
}

int64_t Database::NewId(int model) {
  Table& t = tables_[model];
  // Round next_id up to the site's stripe so IDs are globally unique across sites.
  int64_t base = t.next_id;
  int64_t k = (base - id_offset_ + id_stride_ - 1) / id_stride_;
  if (k < 0) {
    k = 0;
  }
  int64_t id = id_offset_ + k * id_stride_;
  t.next_id = id + 1;
  return id;
}

void Database::StripeNewIds(int64_t site, int64_t num_sites) {
  id_offset_ = site;
  id_stride_ = num_sites;
}

bool Database::SameState(const Database& other, const std::set<int>& order_models) const {
  if (tables_.size() != other.tables_.size() || relations_ != other.relations_) {
    return false;
  }
  for (size_t m = 0; m < tables_.size(); ++m) {
    if (tables_[m].rows != other.tables_[m].rows) {
      return false;
    }
    // Relative order must agree where it is observable: sorting by order numbers yields
    // the same sequence.
    if (order_models.count(static_cast<int>(m)) != 0 &&
        AllPks(static_cast<int>(m)) != other.AllPks(static_cast<int>(m))) {
      return false;
    }
  }
  return true;
}

std::string Database::ToString() const {
  std::string out;
  for (size_t m = 0; m < tables_.size(); ++m) {
    out += schema_->model(static_cast<int>(m)).name() + ":\n";
    for (int64_t pk : AllPks(static_cast<int>(m))) {
      out += "  #" + std::to_string(pk) + " (";
      const Row& row = tables_[m].rows.at(pk);
      for (size_t i = 0; i < row.size(); ++i) {
        if (i != 0) {
          out += ", ";
        }
        out += row[i].ToString();
      }
      out += ")\n";
    }
  }
  for (size_t r = 0; r < relations_.size(); ++r) {
    out += schema_->relation(static_cast<int>(r)).name + ": {";
    bool first = true;
    for (const auto& [from, to] : relations_[r]) {
      if (!first) {
        out += ", ";
      }
      first = false;
      out += "(" + std::to_string(from) + "," + std::to_string(to) + ")";
    }
    out += "}\n";
  }
  return out;
}

}  // namespace noctua::orm
