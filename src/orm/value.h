// Runtime values for the concrete ORM database and the SOIR interpreter.
//
// Floats and datetimes are stored as int64 (fixed-point / ticks), matching the pipeline's
// convention. Refs (object IDs) are int64 too; for models with string primary keys the
// workload generator maps the string space onto integers, which is transparent to the
// application semantics.
#ifndef SRC_ORM_VALUE_H_
#define SRC_ORM_VALUE_H_

#include <cstdint>
#include <string>

#include "src/support/check.h"

namespace noctua::orm {

class Value {
 public:
  enum class Kind : uint8_t { kNull, kBool, kInt, kString, kRef };

  Value() : kind_(Kind::kNull) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    Value v;
    v.kind_ = Kind::kBool;
    v.i_ = b ? 1 : 0;
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.kind_ = Kind::kInt;
    v.i_ = i;
    return v;
  }
  static Value Str(std::string s) {
    Value v;
    v.kind_ = Kind::kString;
    v.s_ = std::move(s);
    return v;
  }
  static Value Ref(int64_t id) {
    Value v;
    v.kind_ = Kind::kRef;
    v.i_ = id;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool bool_v() const {
    NOCTUA_DCHECK(kind_ == Kind::kBool);
    return i_ != 0;
  }
  int64_t int_v() const {
    NOCTUA_DCHECK(kind_ == Kind::kInt || kind_ == Kind::kRef);
    return i_;
  }
  const std::string& str_v() const {
    NOCTUA_DCHECK(kind_ == Kind::kString);
    return s_;
  }

  bool operator==(const Value& o) const {
    if (kind_ != o.kind_) {
      return false;
    }
    switch (kind_) {
      case Kind::kNull:
        return true;
      case Kind::kString:
        return s_ == o.s_;
      default:
        return i_ == o.i_;
    }
  }
  bool operator!=(const Value& o) const { return !(*this == o); }

  // Total order used by ORDER BY and deterministic iteration. Nulls sort first; values of
  // different kinds order by kind.
  bool operator<(const Value& o) const {
    if (kind_ != o.kind_) {
      return kind_ < o.kind_;
    }
    switch (kind_) {
      case Kind::kNull:
        return false;
      case Kind::kString:
        return s_ < o.s_;
      default:
        return i_ < o.i_;
    }
  }

  std::string ToString() const {
    switch (kind_) {
      case Kind::kNull:
        return "null";
      case Kind::kBool:
        return i_ ? "true" : "false";
      case Kind::kInt:
        return std::to_string(i_);
      case Kind::kString:
        return "\"" + s_ + "\"";
      case Kind::kRef:
        return "#" + std::to_string(i_);
    }
    return "?";
  }

 private:
  Kind kind_;
  int64_t i_ = 0;
  std::string s_;
};

}  // namespace noctua::orm

#endif  // SRC_ORM_VALUE_H_
