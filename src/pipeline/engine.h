// The long-lived heart of Noctua-as-a-service: one Engine owns every piece of state
// the static Pipeline facade used to conjure per call or keep in process-wide globals —
// the worker pool, the renaming-invariant verdict cache, the solver tally sink, and a
// snapshot of every environment knob.
//
// Lifecycle contract:
//
//   - EngineConfig is resolved ONCE, at construction (EngineConfig::FromEnv reads
//     NOCTUA_THREADS / NOCTUA_SOLVER / NOCTUA_SYMMETRY / NOCTUA_INCREMENTAL /
//     NOCTUA_ARTIFACT_DIR / NOCTUA_VERDICT_CACHE). A running engine never consults the
//     environment again, so a daemon's behavior cannot drift when its environment does.
//   - Run/Verify/RunIncremental are safe to call from many threads: the verify stage is
//     serialized on an internal mutex because the work-stealing ThreadPool supports one
//     ParallelFor at a time. Callers queue; admission control (bounding that queue)
//     belongs to the service layer above, not here.
//   - Solver tallies land in the engine's own SolverCounterSink, so two engines (or an
//     engine and a bare Pipeline::Run) never read each other's before/after deltas.
//   - The verdict cache is engine-owned and shared across calls AND tenants: keys are
//     canonical query fingerprints, which are app-content-addressed, so a hit is always
//     semantically valid. Tenant isolation applies to the on-disk artifact namespace
//     (TenantStoreDir), never to in-memory verdict sharing.
//
// Pipeline::Run / Verify / RunIncremental still exist and behave exactly as before —
// each is now a thin wrapper constructing a throwaway Engine from the environment.
#ifndef SRC_PIPELINE_ENGINE_H_
#define SRC_PIPELINE_ENGINE_H_

#include <memory>
#include <mutex>
#include <string>

#include "src/pipeline/pipeline.h"
#include "src/pipeline/session.h"
#include "src/smt/backend.h"
#include "src/support/thread_pool.h"
#include "src/verifier/cache.h"

namespace noctua {

// Everything an Engine resolves from the environment, captured once at construction.
// Defaults match the documented env-knob defaults, so a value-initialized config equals
// FromEnv() in a clean environment (modulo threads, which follows the hardware).
struct EngineConfig {
  // Worker-pool width including the calling thread; 0 = ThreadPool::DefaultThreads()
  // (NOCTUA_THREADS if set, else the hardware concurrency, clamped to env::kMaxThreads).
  int threads = 0;
  // The decision procedure kAuto resolves to for every query this engine runs.
  smt::BackendKind solver = smt::BackendKind::kDfs;
  // What solver-option Toggle::kAuto resolves to.
  bool symmetry = true;
  bool incremental = true;
  // Root directory for on-disk artifact stores ("" = no persistence). Tenants get
  // disjoint subtrees under it — see Engine::TenantStoreDir.
  std::string artifact_root;
  // Entry bound for the engine-owned verdict cache. 0 = unbounded — correct for the
  // throwaway per-call engines inside the Pipeline facade, which die with the run.
  // Long-lived owners must bound it or grow without limit: noctua-serve applies a
  // finite default when neither NOCTUA_VERDICT_CACHE nor --verdict-cache is given.
  size_t verdict_cache_capacity = 0;

  // Captures the environment (fail-fast on a configured-but-unusable artifact dir,
  // warn-once + fallback on malformed knobs — the same disciplines as before).
  static EngineConfig FromEnv();
};

class Engine {
 public:
  explicit Engine(EngineConfig config = EngineConfig::FromEnv());
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  const EngineConfig& config() const { return config_; }
  ThreadPool& pool() { return *pool_; }
  smt::SolverCounterSink& counters() { return *counters_; }
  verifier::VerdictCache& verdicts() { return *verdicts_; }

  // The pipeline entry points, semantically identical to the static Pipeline ones but
  // running on this engine's pool, sink, and (for Run/Verify, when the caller did not
  // bring a store or a run-local cache bound) its shared verdict cache.
  PipelineResult Run(const app::App& app, const PipelineOptions& options = {});
  verifier::RestrictionReport Verify(const app::App& app,
                                     const analyzer::AnalysisResult& analysis,
                                     const PipelineOptions& options = {});
  IncrementalResult RunIncremental(const app::App& app, const std::string& store_dir,
                                   const IncrementalOptions& options = {});

  // The per-tenant artifact namespace: config.artifact_root / <tenant> / <app>. Tenant
  // names are restricted to [A-Za-z0-9._-] (no separators, no "..", must be non-empty)
  // so one tenant can never name another tenant's subtree; returns "" for an invalid
  // tenant or when the engine has no artifact root.
  std::string TenantStoreDir(const std::string& tenant, const std::string& app_name) const;

  // True iff `tenant` is acceptable to TenantStoreDir.
  static bool ValidTenantName(const std::string& tenant);

  // Copies `options` with this engine's resolutions applied: kAuto solver knobs pinned
  // to the config, pool/counters injected when the caller left them null (the pool only
  // when `threads` does not demand a different width), and the engine verdict cache
  // installed as the store when the caller asked for neither a store nor a bounded
  // run-local cache. Idempotent. Exposed for tests and the service layer.
  PipelineOptions ResolveOptions(const PipelineOptions& options) const;

 private:
  EngineConfig config_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<smt::SolverCounterSink> counters_;
  std::unique_ptr<verifier::VerdictCache> verdicts_;
  // Serializes verify stages: the pool supports one ParallelFor at a time.
  std::mutex run_mutex_;
};

}  // namespace noctua

#endif  // SRC_PIPELINE_ENGINE_H_
