// Incremental analysis sessions: persistent content-addressed artifacts and O(change)
// re-verification.
//
// A Session binds the pipeline to an on-disk artifact store (one directory per app):
//
//   manifest   format version + app name + schema digests (exact and structural; the
//              load gate is the structural one, so rename-only schema edits replay)
//   schema     the serialized schema the artifacts were produced under
//   analysis   every code path + per-endpoint renaming-invariant digests
//   verdicts   the verdict cache: canonical query fingerprint -> solver outcome
//
// RunIncremental loads the prior artifacts, memoizes analysis per endpoint (handler
// fingerprint match), seeds the verifier's cache with the prior verdicts, runs the
// normal pipeline, and writes the updated artifacts back. Because verdict fingerprints
// encode everything the SMT encoding can see — canonical paths, order membership, the
// touched schema fragment — only pairs affected by the edit miss the cache and reach the
// solver; everything else replays. The emitted RestrictionReport is the same one a cold
// run would produce, with per-pair provenance (computed vs replayed) attached.
//
// Loading fails closed: a missing, truncated, corrupted, version-mismatched, or
// schema-mismatched store degrades to a cold run (IncrementalResult::cold), never to a
// crash or a wrong answer. For defense against silent corruption that still parses,
// IncrementalOptions::paranoia re-solves a seeded random sample of replayed verdicts and
// CHECK-fails on disagreement.
#ifndef SRC_PIPELINE_SESSION_H_
#define SRC_PIPELINE_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/pipeline/pipeline.h"
#include "src/verifier/cache.h"

namespace noctua {

struct IncrementalOptions {
  PipelineOptions pipeline;
  // Probability of re-solving a replayed verdict and CHECK-failing on disagreement (see
  // verifier::ParallelOptions::paranoia).
  double paranoia = 0;
  uint64_t paranoia_seed = 0;
};

struct IncrementalResult {
  PipelineResult run;
  // True when no usable prior artifact existed (first run, or the store failed
  // validation) and everything was computed from scratch.
  bool cold = false;
  // False when writing the artifacts back failed — the run's results are valid, but the
  // next run will be cold. A warning is also printed to stderr, because a persistently
  // unwritable store silently degrades every future run to a cold one.
  bool artifacts_saved = false;
  // Endpoints whose content digest differs from the prior artifact: edited ones, added
  // ones, and removed ones (renaming-invariant — a pure rename changes nothing here).
  std::vector<std::string> changed_endpoints;
  // Convenience mirrors of run.restrictions.stats / run.analysis counters.
  uint64_t pairs_replayed = 0;
  uint64_t pairs_computed = 0;
  size_t endpoints_reused = 0;
};

class Session {
 public:
  // `store_dir` is created on first save if it does not exist.
  explicit Session(std::string store_dir) : store_dir_(std::move(store_dir)) {}

  const std::string& store_dir() const { return store_dir_; }

  // One warm pipeline run against the store (see file header). Artifacts are saved back
  // after the run, so consecutive calls see each other's results.
  IncrementalResult RunIncremental(const app::App& app,
                                   const IncrementalOptions& options = {});

  // Loads and validates the store's prior artifacts for `app`. Returns false — leaving
  // outputs unspecified — unless every layer checks out: manifest version and app name,
  // stored schema round-trips to the app's exact schema digest, analysis parses and its
  // endpoint digests recompute from its paths, verdicts parse. Exposed for tests.
  bool LoadPrior(const app::App& app, analyzer::AnalysisResult* analysis,
                 verifier::VerdictCache* verdicts) const;

  // Overwrites the store with the given artifacts. Returns false on I/O failure.
  bool Save(const app::App& app, const analyzer::AnalysisResult& analysis,
            const verifier::VerdictCache& verdicts) const;

 private:
  std::string Path(const char* file) const { return store_dir_ + "/" + file; }

  std::string store_dir_;
};

// Resolves the NOCTUA_ARTIFACT_DIR environment variable into a session store directory.
// Returns "" when the variable is unset (caller runs without persistence). When it IS
// set, the directory is created if missing and probed with a throwaway write; failure of
// either is a *fatal error* with a clear message — a user who configured an artifact
// store wants warm runs, and silently degrading every run to cold is strictly worse
// than stopping.
std::string ArtifactDirFromEnv();

}  // namespace noctua

#endif  // SRC_PIPELINE_SESSION_H_
