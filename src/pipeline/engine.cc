#include "src/pipeline/engine.h"

#include <cstdio>
#include <optional>

#include "src/support/env.h"
#include "src/support/stopwatch.h"

namespace noctua {

EngineConfig EngineConfig::FromEnv() {
  env::Snapshot snap = env::CaptureSnapshot();
  EngineConfig config;
  config.threads = snap.threads;
  smt::ParseBackendKind(snap.solver, &config.solver);
  config.symmetry = snap.symmetry;
  config.incremental = snap.incremental;
  // Verbatim, unprobed: Run/Verify never touch the artifact root, and the throwaway
  // engines inside the static facade must not suddenly mkdir (or die on) a directory
  // the old facade never looked at. Daemons that DO persist call ArtifactDirFromEnv
  // for the fail-fast create-and-probe before constructing their engine.
  config.artifact_root = snap.artifact_dir;
  config.verdict_cache_capacity = snap.verdict_cache_capacity;
  return config;
}

Engine::Engine(EngineConfig config)
    : config_(std::move(config)),
      pool_(std::make_unique<ThreadPool>(config_.threads > 0
                                             ? config_.threads
                                             : ThreadPool::DefaultThreads())),
      counters_(std::make_unique<smt::SolverCounterSink>()),
      verdicts_(std::make_unique<verifier::VerdictCache>(config_.verdict_cache_capacity)) {}

Engine::~Engine() = default;

PipelineOptions Engine::ResolveOptions(const PipelineOptions& options) const {
  PipelineOptions o = options;
  smt::SolverOptions& solver = o.checker.solver;
  if (solver.backend == smt::BackendKind::kAuto) {
    solver.backend = config_.solver;
  }
  if (solver.symmetry == smt::Toggle::kAuto) {
    solver.symmetry = config_.symmetry ? smt::Toggle::kOn : smt::Toggle::kOff;
  }
  if (solver.incremental == smt::Toggle::kAuto) {
    solver.incremental = config_.incremental ? smt::Toggle::kOn : smt::Toggle::kOff;
  }
  if (o.parallel.counters == nullptr) {
    o.parallel.counters = counters_.get();
  }
  // The engine pool has a fixed width; a caller that pinned a different `threads` gets
  // the classic run-local pool so the requested width is honored exactly.
  if (o.parallel.pool == nullptr &&
      (o.parallel.threads == 0 || o.parallel.threads == pool_->threads())) {
    o.parallel.pool = pool_.get();
  }
  // The shared warm cache steps in only where the old facade used an unbounded
  // run-local cache; an explicit store or a bounded run-local cache wins.
  if (o.parallel.store == nullptr && o.parallel.cache && o.parallel.cache_capacity == 0) {
    o.parallel.store = verdicts_.get();
  }
  return o;
}

verifier::RestrictionReport Engine::Verify(const app::App& app,
                                           const analyzer::AnalysisResult& analysis,
                                           const PipelineOptions& options) {
  PipelineOptions o = ResolveOptions(options);
  verifier::Checker checker(app.schema(), o.checker);
  static const std::vector<soir::CodePath> kNoObservers;
  const std::vector<soir::CodePath>& observers =
      o.order_observers ? analysis.paths : kNoObservers;
  std::lock_guard<std::mutex> lock(run_mutex_);
  return verifier::AnalyzeRestrictions(checker, analysis.EffectfulPaths(), o.parallel,
                                       observers);
}

PipelineResult Engine::Run(const app::App& app, const PipelineOptions& options) {
  // Own a collector only when asked *and* nobody outer owns one already — a bench that
  // installed its own collector gets this run's spans recorded into it instead.
  std::optional<obs::Collector> collector;
  if (options.obs.enabled && !obs::Active()) {
    collector.emplace(options.obs);
  }

  Stopwatch watch;
  PipelineResult result;
  double analyze_seconds = 0;
  double verify_seconds = 0;
  {
    // One parent span for the whole engine pass, so a request-scoped trace shows the
    // analyze/verify phases nested under a single "engine_run" node.
    obs::ScopedSpan engine_span("engine_run", obs::kCatPipeline);
    {
      obs::ScopedSpan span("analyze", obs::kCatPipeline);
      Stopwatch phase;
      result.analysis = analyzer::AnalyzeApp(app, options.analyzer);
      analyze_seconds = phase.ElapsedSeconds();
      span.Arg("paths", result.analysis.paths.size());
      span.Arg("effectful", result.analysis.num_effectful);
    }
    if (options.verify) {
      obs::ScopedSpan span("verify", obs::kCatPipeline);
      Stopwatch phase;
      result.restrictions = Verify(app, result.analysis, options);
      verify_seconds = phase.ElapsedSeconds();
      span.Arg("restrictions", result.restrictions.num_restrictions());
    }
  }
  result.total_seconds = watch.ElapsedSeconds();

  if (collector) {
    collector->Stop();
    result.has_report = true;
    result.report = obs::BuildRunReport(*collector, app.name(), result.total_seconds,
                                        analyze_seconds, verify_seconds);
    if (!options.obs.trace_out.empty() &&
        !collector->WriteChromeTrace(options.obs.trace_out)) {
      std::fprintf(stderr, "noctua: failed to write trace to %s\n",
                   options.obs.trace_out.c_str());
    }
  }
  return result;
}

IncrementalResult Engine::RunIncremental(const app::App& app, const std::string& store_dir,
                                         const IncrementalOptions& options) {
  IncrementalOptions o = options;
  // Pool, counters, and knob resolutions carry into the session's verify stage through
  // the option structs; the session installs its own loaded store, overriding the
  // engine cache injection.
  o.pipeline = ResolveOptions(o.pipeline);
  std::lock_guard<std::mutex> lock(run_mutex_);
  obs::ScopedSpan engine_span("engine_run", obs::kCatPipeline);
  Session session(store_dir);
  return session.RunIncremental(app, o);
}

bool Engine::ValidTenantName(const std::string& tenant) {
  if (tenant.empty() || tenant.size() > 128) {
    return false;
  }
  // No separators and no leading dot: "..", ".", and dotfile-shaped names are all
  // rejected, so a tenant string can never escape (or hide inside) its subtree.
  if (tenant[0] == '.') {
    return false;
  }
  for (char c : tenant) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '.' || c == '_' || c == '-';
    if (!ok) {
      return false;
    }
  }
  return true;
}

std::string Engine::TenantStoreDir(const std::string& tenant,
                                   const std::string& app_name) const {
  if (config_.artifact_root.empty() || !ValidTenantName(tenant) ||
      !ValidTenantName(app_name)) {
    return "";
  }
  return config_.artifact_root + "/" + tenant + "/" + app_name;
}

// ---- The static facade, now thin wrappers over a throwaway Engine. ----

PipelineResult Pipeline::Run(const app::App& app, const PipelineOptions& options) {
  Engine engine;
  return engine.Run(app, options);
}

verifier::RestrictionReport Pipeline::Verify(const app::App& app,
                                             const analyzer::AnalysisResult& analysis,
                                             const PipelineOptions& options) {
  Engine engine;
  return engine.Verify(app, analysis, options);
}

IncrementalResult Pipeline::RunIncremental(const app::App& app,
                                           const std::string& store_dir,
                                           const IncrementalOptions& options) {
  Engine engine;
  return engine.RunIncremental(app, store_dir, options);
}

}  // namespace noctua
