// The one-call entry point to Noctua's end-to-end analysis: ANALYZER (explore every
// view function's code paths into SOIR) followed by VERIFIER (check every unordered
// pair of effectful paths and assemble the restriction set).
//
// Before this facade, every bench and example hand-rolled the same three-step dance —
// AnalyzeApp, EffectfulPaths, AnalyzeRestrictions — each with its own copies of the
// option structs (sometimes divergent copies of the same options). Pipeline::Run owns
// the plumbing; callers state what they want checked (PipelineOptions) and read one
// result.
#ifndef SRC_PIPELINE_PIPELINE_H_
#define SRC_PIPELINE_PIPELINE_H_

#include <string>

#include "src/analyzer/analyzer.h"
#include "src/app/app.h"
#include "src/obs/obs.h"
#include "src/obs/report.h"
#include "src/verifier/report.h"

namespace noctua {

struct IncrementalOptions;
struct IncrementalResult;

struct PipelineOptions {
  analyzer::AnalyzerOptions analyzer;
  verifier::CheckerOptions checker;
  verifier::ParallelOptions parallel;

  // Run the verifier stage; when false the result carries the analysis only (e.g. the
  // analyzer-scaling benchmarks).
  bool verify = true;
  // Pass the app's full path list (including read-only paths) as order observers, so an
  // insertion order rendered by a read-only endpoint still counts toward app-wide state
  // equality. Off by default: the paper's tables are computed from the effectful paths
  // alone; deployment harnesses (e.g. the chaos suite) opt in.
  bool order_observers = false;

  // Observability. When obs.enabled is true and no collector is already installed,
  // Pipeline::Run owns one for the duration of the run: spans/counters are recorded
  // across analyzer, verifier, and SMT backend, the result carries a populated
  // RunReport, and obs.trace_out (if set) receives Chrome trace-event JSON. When a
  // collector is already active (a bench owning several runs), the run records into it
  // and leaves report assembly to its owner. Default-off: every probe degrades to one
  // relaxed atomic load.
  obs::ObsOptions obs;
};

struct PipelineResult {
  analyzer::AnalysisResult analysis;
  verifier::RestrictionReport restrictions;
  double total_seconds = 0;

  // Populated only when this run owned a collector (see PipelineOptions::obs);
  // `has_report` distinguishes that from a default-constructed report.
  bool has_report = false;
  obs::RunReport report;

  const verifier::ReportStats& stats() const { return restrictions.stats; }
};

class Pipeline {
 public:
  // Analyzes and verifies `app` in one call.
  static PipelineResult Run(const app::App& app, const PipelineOptions& options = {});

  // Verifier stage only, for callers that already hold an analysis (e.g. ablations
  // re-checking the same paths under different checker options).
  static verifier::RestrictionReport Verify(const app::App& app,
                                            const analyzer::AnalysisResult& analysis,
                                            const PipelineOptions& options = {});

  // Incremental run against the on-disk artifact store at `store_dir`: analysis is
  // memoized per endpoint, verdicts replay from the prior run, and only pairs touched by
  // the edit reach the solver. Convenience for Session(store_dir).RunIncremental(app) —
  // include src/pipeline/session.h for the option/result types.
  static IncrementalResult RunIncremental(const app::App& app, const std::string& store_dir,
                                          const IncrementalOptions& options);
};

}  // namespace noctua

#endif  // SRC_PIPELINE_PIPELINE_H_
