#include "src/pipeline/pipeline.h"

#include <cstdio>
#include <optional>

#include "src/support/stopwatch.h"

namespace noctua {

verifier::RestrictionReport Pipeline::Verify(const app::App& app,
                                             const analyzer::AnalysisResult& analysis,
                                             const PipelineOptions& options) {
  verifier::Checker checker(app.schema(), options.checker);
  static const std::vector<soir::CodePath> kNoObservers;
  const std::vector<soir::CodePath>& observers =
      options.order_observers ? analysis.paths : kNoObservers;
  return verifier::AnalyzeRestrictions(checker, analysis.EffectfulPaths(), options.parallel,
                                       observers);
}

PipelineResult Pipeline::Run(const app::App& app, const PipelineOptions& options) {
  // Own a collector only when asked *and* nobody outer owns one already — a bench that
  // installed its own collector gets this run's spans recorded into it instead.
  std::optional<obs::Collector> collector;
  if (options.obs.enabled && !obs::Active()) {
    collector.emplace(options.obs);
  }

  Stopwatch watch;
  PipelineResult result;
  double analyze_seconds = 0;
  {
    obs::ScopedSpan span("analyze", obs::kCatPipeline);
    Stopwatch phase;
    result.analysis = analyzer::AnalyzeApp(app, options.analyzer);
    analyze_seconds = phase.ElapsedSeconds();
    span.Arg("paths", result.analysis.paths.size());
    span.Arg("effectful", result.analysis.num_effectful);
  }
  double verify_seconds = 0;
  if (options.verify) {
    obs::ScopedSpan span("verify", obs::kCatPipeline);
    Stopwatch phase;
    result.restrictions = Verify(app, result.analysis, options);
    verify_seconds = phase.ElapsedSeconds();
    span.Arg("restrictions", result.restrictions.num_restrictions());
  }
  result.total_seconds = watch.ElapsedSeconds();

  if (collector) {
    collector->Stop();
    result.has_report = true;
    result.report = obs::BuildRunReport(*collector, app.name(), result.total_seconds,
                                        analyze_seconds, verify_seconds);
    if (!options.obs.trace_out.empty() &&
        !collector->WriteChromeTrace(options.obs.trace_out)) {
      std::fprintf(stderr, "noctua: failed to write trace to %s\n",
                   options.obs.trace_out.c_str());
    }
  }
  return result;
}

}  // namespace noctua
