#include "src/pipeline/pipeline.h"

// The facade's implementation lives in engine.cc: Pipeline::Run / Verify /
// RunIncremental are thin wrappers constructing a throwaway noctua::Engine, which owns
// the pool, the verdict cache, and the solver tally sink for the duration of the call.
// This file intentionally holds nothing but the facade's documentation anchor.
