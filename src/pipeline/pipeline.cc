#include "src/pipeline/pipeline.h"

#include "src/support/stopwatch.h"

namespace noctua {

verifier::RestrictionReport Pipeline::Verify(const app::App& app,
                                             const analyzer::AnalysisResult& analysis,
                                             const PipelineOptions& options) {
  verifier::Checker checker(app.schema(), options.checker);
  static const std::vector<soir::CodePath> kNoObservers;
  const std::vector<soir::CodePath>& observers =
      options.order_observers ? analysis.paths : kNoObservers;
  return verifier::AnalyzeRestrictions(checker, analysis.EffectfulPaths(), options.parallel,
                                       observers);
}

PipelineResult Pipeline::Run(const app::App& app, const PipelineOptions& options) {
  Stopwatch watch;
  PipelineResult result;
  result.analysis = analyzer::AnalyzeApp(app, options.analyzer);
  if (options.verify) {
    result.restrictions = Verify(app, result.analysis, options);
  }
  result.total_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace noctua
