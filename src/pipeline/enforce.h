// Bridges the analysis pipeline's output to the runtime enforcement layer: turns a
// verifier RestrictionReport into the endpoint-level ConflictTable that the simulator's
// LeaseCoordinator enforces and the trace checker validates against.
//
// This is the closing of the loop promised in the roadmap: the statically computed
// restriction set is no longer just a number in a table — it is the live input to a
// coordination protocol, and its correctness is observable (drop a restriction and the
// trace checker finds the resulting cycle; keep it intact and the chaos grid stays
// violation-free).
#ifndef SRC_PIPELINE_ENFORCE_H_
#define SRC_PIPELINE_ENFORCE_H_

#include <string>

#include "src/repl/simulator.h"
#include "src/verifier/report.h"

namespace noctua {

// The computed restriction set lifted to HTTP endpoints (view names), as a runtime
// conflict table. Exactly the lifting Simulator deployments coordinate with (the
// paper's §6.5 simplification: endpoint-level, not path-level, restrictions).
repl::ConflictTable EnforcementTable(const verifier::RestrictionReport& report);

// The same table with the restricted view pair (a, b) removed (order-insensitive).
// The mutation knob for oracle testing: enforcing a table with one restriction
// missing must produce a trace the checker rejects — with the *full* table as the
// specification — on some (plan, seed). Aborts via NOCTUA_CHECK if (a, b) is not a
// restricted pair of `report`, so a typo cannot silently test nothing.
repl::ConflictTable EnforcementTableDropping(const verifier::RestrictionReport& report,
                                             const std::string& a, const std::string& b);

}  // namespace noctua

#endif  // SRC_PIPELINE_ENFORCE_H_
