#include "src/pipeline/enforce.h"

#include "src/support/check.h"

namespace noctua {

repl::ConflictTable EnforcementTable(const verifier::RestrictionReport& report) {
  repl::ConflictTable table;
  for (const auto& [p, q] : report.RestrictedViewPairs()) {
    table.AddPair(p, q);
  }
  return table;
}

repl::ConflictTable EnforcementTableDropping(const verifier::RestrictionReport& report,
                                             const std::string& a, const std::string& b) {
  repl::ConflictTable table = EnforcementTable(report);
  NOCTUA_CHECK_MSG(table.RemovePair(a, b),
                   "EnforcementTableDropping: (" << a << ", " << b
                       << ") is not a restricted view pair of this report");
  return table;
}

}  // namespace noctua
