#include "src/pipeline/session.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "src/obs/obs.h"
#include "src/obs/report.h"
#include "src/soir/serialize.h"
#include "src/support/check.h"
#include "src/support/env.h"
#include "src/support/stopwatch.h"

namespace noctua {

namespace {

constexpr const char* kManifestFile = "manifest";
constexpr const char* kSchemaFile = "schema";
constexpr const char* kAnalysisFile = "analysis";
constexpr const char* kVerdictsFile = "verdicts";

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out << data;
  return static_cast<bool>(out);
}

}  // namespace

bool Session::LoadPrior(const app::App& app, analyzer::AnalysisResult* analysis,
                        verifier::VerdictCache* verdicts) const {
  const std::string app_structure = soir::SchemaStructuralDigest(app.schema());

  // Manifest: version + app name + schema digests. The gate is the *structural* digest:
  // stored paths carry model/relation ids and verdict fingerprints cover the canonical
  // (renaming-invariant) schema fragment, so both survive a rename-only schema edit —
  // but nothing else. The exact digest is informational (it additionally distinguishes
  // renames from no-ops).
  std::string data;
  if (!ReadFile(Path(kManifestFile), &data)) {
    return false;
  }
  {
    soir::ArtifactReader r(std::move(data));
    r.ExpectAtom("noctua-manifest");
    if (r.Int() != soir::kArtifactVersion) {
      return false;
    }
    std::string name = r.Str();
    r.Str();  // exact content digest, not gated on
    std::string structure = r.Str();
    if (!r.ok() || !r.AtEnd() || name != app.name() || structure != app_structure) {
      return false;
    }
  }

  // Stored schema must round-trip to the same structural digest the manifest promised.
  // It is kept around: the stored paths reference fields by the *stored* names, which a
  // rename-only edit may have moved.
  if (!ReadFile(Path(kSchemaFile), &data)) {
    return false;
  }
  soir::Schema stored;
  {
    soir::ArtifactReader r(std::move(data));
    if (!soir::DeserializeSchema(&r, &stored) || !r.AtEnd() ||
        soir::SchemaStructuralDigest(stored) != app_structure) {
      return false;
    }
  }

  if (!ReadFile(Path(kAnalysisFile), &data)) {
    return false;
  }
  {
    soir::ArtifactReader r(std::move(data));
    r.ExpectAtom("noctua-analysis");
    if (r.Int() != soir::kArtifactVersion) {
      return false;
    }
    if (!analyzer::DeserializeAnalysis(&r, app.schema(), analysis) || !r.AtEnd()) {
      return false;
    }
  }
  // Follow any rename-only schema edit: rewrite the stored paths' field names to the
  // current ones (by model/slot correspondence). Ambiguous renames degrade to cold.
  if (!soir::AdaptPathsToSchema(stored, app.schema(), &analysis->paths)) {
    return false;
  }
  // Digests must recompute from the stored paths: catches artifacts whose paths and
  // metadata were corrupted consistently enough to parse.
  if (!analyzer::ValidateAnalysisDigests(app.schema(), *analysis)) {
    return false;
  }

  return verdicts->LoadFromFile(Path(kVerdictsFile));
}

bool Session::Save(const app::App& app, const analyzer::AnalysisResult& analysis,
                   const verifier::VerdictCache& verdicts) const {
  std::error_code ec;
  std::filesystem::create_directories(store_dir_, ec);
  if (ec) {
    return false;
  }

  soir::ArtifactWriter manifest;
  manifest.Atom("noctua-manifest");
  manifest.Int(soir::kArtifactVersion);
  manifest.Str(app.name());
  manifest.Str(soir::SchemaContentDigest(app.schema()));
  manifest.Str(soir::SchemaStructuralDigest(app.schema()));

  soir::ArtifactWriter schema;
  soir::SerializeSchema(app.schema(), &schema);

  soir::ArtifactWriter analysis_w;
  analysis_w.Atom("noctua-analysis");
  analysis_w.Int(soir::kArtifactVersion);
  analyzer::SerializeAnalysis(analysis, &analysis_w);

  return WriteFile(Path(kSchemaFile), schema.str()) &&
         WriteFile(Path(kAnalysisFile), analysis_w.str()) &&
         verdicts.SaveToFile(Path(kVerdictsFile)) &&
         // Manifest last: a crash mid-save leaves a store whose manifest (if any) is the
         // old one, which then fails the schema/analysis cross-checks and reads as cold.
         WriteFile(Path(kManifestFile), manifest.str());
}

IncrementalResult Session::RunIncremental(const app::App& app,
                                          const IncrementalOptions& options) {
  // Same ownership rule as Pipeline::Run: install a collector only when asked and none
  // is active, so a bench wrapping several incremental runs can own one collector.
  std::optional<obs::Collector> collector;
  if (options.pipeline.obs.enabled && !obs::Active()) {
    collector.emplace(options.pipeline.obs);
  }

  Stopwatch watch;
  IncrementalResult result;

  analyzer::AnalysisResult prior;
  verifier::VerdictCache store;
  bool have_prior = false;
  {
    obs::ScopedSpan span("load_prior", obs::kCatIncremental);
    have_prior = LoadPrior(app, &prior, &store);
    span.Arg("loaded", have_prior ? 1 : 0);
    span.Arg("verdicts", store.size());
  }
  obs::Add(have_prior ? obs::Counter::kArtifactLoads
                      : obs::Counter::kArtifactLoadFailures);
  result.cold = !have_prior;

  double analyze_seconds = 0;
  {
    obs::ScopedSpan span("analyze", obs::kCatPipeline);
    Stopwatch phase;
    result.run.analysis = analyzer::AnalyzeAppIncremental(
        app, have_prior ? &prior : nullptr, options.pipeline.analyzer);
    analyze_seconds = phase.ElapsedSeconds();
    span.Arg("endpoints_reused", result.run.analysis.endpoints_reused);
  }
  result.endpoints_reused = result.run.analysis.endpoints_reused;

  // Digest diff against the prior artifact: edited, added, and removed endpoints.
  if (have_prior) {
    for (const auto& [view, digest] : result.run.analysis.endpoint_digests) {
      auto it = prior.endpoint_digests.find(view);
      if (it == prior.endpoint_digests.end() || it->second != digest) {
        result.changed_endpoints.push_back(view);
      }
    }
    for (const auto& [view, digest] : prior.endpoint_digests) {
      if (result.run.analysis.endpoint_digests.find(view) ==
          result.run.analysis.endpoint_digests.end()) {
        result.changed_endpoints.push_back(view);
      }
    }
  }

  double verify_seconds = 0;
  if (options.pipeline.verify) {
    obs::ScopedSpan span("verify", obs::kCatPipeline);
    Stopwatch phase;
    PipelineOptions popts = options.pipeline;
    popts.parallel.store = &store;
    popts.parallel.paranoia = options.paranoia;
    popts.parallel.paranoia_seed = options.paranoia_seed;
    result.run.restrictions = Pipeline::Verify(app, result.run.analysis, popts);
    verify_seconds = phase.ElapsedSeconds();
    result.pairs_replayed = result.run.restrictions.stats.pairs_replayed;
    result.pairs_computed = result.run.restrictions.stats.pairs_computed;
  }

  {
    obs::ScopedSpan span("save_artifacts", obs::kCatIncremental);
    result.artifacts_saved = Save(app, result.run.analysis, store);
    span.Arg("saved", result.artifacts_saved ? 1 : 0);
  }
  obs::Add(result.artifacts_saved ? obs::Counter::kArtifactSaves
                                  : obs::Counter::kArtifactSaveFailures);
  if (!result.artifacts_saved) {
    std::fprintf(stderr,
                 "noctua: failed to save artifacts to %s — this run's results are "
                 "valid, but the next run will be cold\n",
                 store_dir_.c_str());
  }
  result.run.total_seconds = watch.ElapsedSeconds();

  if (collector) {
    collector->Stop();
    result.run.has_report = true;
    result.run.report =
        obs::BuildRunReport(*collector, app.name(), result.run.total_seconds,
                            analyze_seconds, verify_seconds);
    const std::string& trace_out = options.pipeline.obs.trace_out;
    if (!trace_out.empty() && !collector->WriteChromeTrace(trace_out)) {
      std::fprintf(stderr, "noctua: failed to write trace to %s\n", trace_out.c_str());
    }
  }
  return result;
}

std::string ArtifactDirFromEnv() {
  if (!env::IsSet("NOCTUA_ARTIFACT_DIR")) {
    return "";
  }
  std::string dir(env::Raw("NOCTUA_ARTIFACT_DIR"));
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  NOCTUA_CHECK_MSG(!ec, "NOCTUA_ARTIFACT_DIR is set to \""
                            << dir << "\" but the directory cannot be created ("
                            << ec.message()
                            << ") — fix the path or unset the variable; refusing to "
                               "silently run cold");
  // Probe with a real write: create_directories succeeding does not imply writability
  // (read-only mounts, permission bits).
  const std::string probe = dir + "/.noctua-write-probe";
  bool writable = WriteFile(probe, "probe");
  if (writable) {
    std::filesystem::remove(probe, ec);
  }
  NOCTUA_CHECK_MSG(writable, "NOCTUA_ARTIFACT_DIR is set to \""
                                 << dir
                                 << "\" but the directory is not writable — fix the "
                                    "permissions or unset the variable; refusing to "
                                    "silently run cold");
  return dir;
}

}  // namespace noctua
