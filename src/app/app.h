// Application container: a schema plus HTTP endpoints (view functions).
//
// This is the C++ counterpart of a Django project: models.py is the Schema, urls.py +
// views.py are the registered views. View functions are written once against the symbolic
// ORM API (ViewCtx); the analyzer explores them, and the extracted SOIR paths are executed
// concretely by the replication simulator.
#ifndef SRC_APP_APP_H_
#define SRC_APP_APP_H_

#include <functional>
#include <string>
#include <vector>

#include "src/analyzer/view_ctx.h"
#include "src/soir/schema.h"

namespace noctua::app {

using ViewFn = std::function<void(analyzer::ViewCtx&)>;

struct View {
  std::string name;  // endpoint name, e.g. "batch_update"
  ViewFn fn;
  // Opaque content fingerprint of the handler's *source* (e.g. a hash the extraction
  // layer computes over the view function's text). When non-empty and unchanged between
  // runs, the incremental analyzer reuses the prior artifact's paths for this endpoint
  // without re-executing the handler symbolically. Empty means "unknown": the endpoint
  // is re-analyzed every run — always sound, just not memoized.
  std::string fingerprint;
};

class App {
 public:
  App(std::string name, std::string source_file)
      : name_(std::move(name)), source_file_(std::move(source_file)) {}

  const std::string& name() const { return name_; }
  // Path of the C++ source defining this app (used by the Table 4 bench to count LoC).
  const std::string& source_file() const { return source_file_; }

  soir::Schema& schema() { return schema_; }
  const soir::Schema& schema() const { return schema_; }

  void AddView(const std::string& name, ViewFn fn, std::string fingerprint = "") {
    views_.push_back(View{name, std::move(fn), std::move(fingerprint)});
  }
  // Swaps an endpoint's handler (the "developer edited this view" refactor). Returns
  // false if no view has that name.
  bool ReplaceView(const std::string& name, ViewFn fn, std::string fingerprint = "") {
    for (View& v : views_) {
      if (v.name == name) {
        v.fn = std::move(fn);
        v.fingerprint = std::move(fingerprint);
        return true;
      }
    }
    return false;
  }
  void SetViewFingerprint(const std::string& name, std::string fingerprint) {
    for (View& v : views_) {
      if (v.name == name) {
        v.fingerprint = std::move(fingerprint);
      }
    }
  }
  const std::vector<View>& views() const { return views_; }

 private:
  std::string name_;
  std::string source_file_;
  soir::Schema schema_;
  std::vector<View> views_;
};

}  // namespace noctua::app

#endif  // SRC_APP_APP_H_
