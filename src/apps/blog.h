// The multi-user blog application of paper Figure 3 — used by the quickstart example and
// the analyzer tests.
#ifndef SRC_APPS_BLOG_H_
#define SRC_APPS_BLOG_H_

#include "src/app/app.h"

namespace noctua::apps {

// Models: User (pk name), Article (author FK -> User, unique url), Comment (user, article).
// Views: batch_update (Fig. 3), create_article, add_comment.
app::App MakeBlogApp();

}  // namespace noctua::apps

#endif  // SRC_APPS_BLOG_H_
