#include "src/apps/courseware.h"

namespace noctua::apps {

using analyzer::SymObj;
using analyzer::ViewCtx;
using soir::FieldDef;
using soir::FieldType;
using soir::OnDelete;
using soir::RelationKind;

app::App MakeCoursewareApp() {
  app::App app("courseware", __FILE__);
  soir::Schema& s = app.schema();

  s.AddModel("Student");
  s.AddField("Student", FieldDef{.name = "name", .type = FieldType::kString});

  s.AddModel("Course");
  s.AddField("Course", FieldDef{.name = "title", .type = FieldType::kString});
  s.AddField("Course", FieldDef{.name = "capacity", .type = FieldType::kInt});

  // Enrolment references student and course with DO_NOTHING: referential integrity is an
  // application invariant, not a storage guarantee (the Hamsaz formulation).
  s.AddModel("Enrolment");
  s.AddRelation("student", "Enrolment", "Student", RelationKind::kManyToOne,
                OnDelete::kDoNothing);
  s.AddRelation("course", "Enrolment", "Course", RelationKind::kManyToOne,
                OnDelete::kDoNothing);

  // Register(name): creates a student.
  app.AddView("Register", [](ViewCtx& v) {
    v.Create("Student", {{"name", v.Post("name")}});
  });

  // AddCourse(title): creates a course with a database-generated ID.
  app.AddView("AddCourse", [](ViewCtx& v) {
    v.Create("Course", {{"title", v.Post("title")}, {"capacity", v.PostInt("capacity")}});
  });

  // Enroll(student, course): requires both to exist (referential integrity).
  app.AddView("Enroll", [](ViewCtx& v) {
    SymObj student = v.Deref("Student", v.ParamRef("student", "Student"));
    SymObj course = v.Deref("Course", v.ParamRef("course", "Course"));
    v.Create("Enrolment", {}, {{"student", student}, {"course", course}});
  });

  // DeleteCourse(course): deletes by filter — no existence requirement, like Django's
  // queryset.delete().
  app.AddView("DeleteCourse", [](ViewCtx& v) {
    v.M("Course").filter("id", v.ParamRef("course", "Course")).del();
  });

  return app;
}

}  // namespace noctua::apps
