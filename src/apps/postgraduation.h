// PostGraduation — a management system for postgraduates (paper Table 4: 8 models,
// 4 relations). This application uses no order-related primitives, which is why the paper
// selects it for the order-ablation experiment (Table 7 / Fig. 9).
#ifndef SRC_APPS_POSTGRADUATION_H_
#define SRC_APPS_POSTGRADUATION_H_

#include "src/app/app.h"

namespace noctua::apps {

app::App MakePostGraduationApp();

}  // namespace noctua::apps

#endif  // SRC_APPS_POSTGRADUATION_H_
