#include "src/apps/ownphotos.h"

#include <string>
#include <vector>

namespace noctua::apps {

using analyzer::Sym;
using analyzer::SymObj;
using analyzer::SymSet;
using analyzer::ViewCtx;
using soir::FieldDef;
using soir::FieldType;
using soir::OnDelete;
using soir::RelationKind;

namespace {

// Registers a Django-REST-style viewset for `model`: create / partial_update / destroy /
// share / unshare / favorite / retrieve endpoints, each with the usual permission branch
// (only the owner may mutate). `text_fields` are the string columns partial_update may
// patch; `share_rel` / `fav_rel` are optional M2M related keys to User.
void RegisterViewSet(app::App& app, const std::string& model, const std::string& owner_rel,
                     std::vector<std::string> text_fields, const std::string& share_rel,
                     const std::string& fav_rel, bool has_public = true) {
  std::string lower = model;
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(c));
  }

  app.AddView(lower + "_create", [model, owner_rel, text_fields, has_public](ViewCtx& v) {
    SymObj user = v.Deref("User", v.ParamRef("user", "User"));
    std::vector<std::pair<std::string, Sym>> fields;
    for (const std::string& fld : text_fields) {
      fields.emplace_back(fld, v.Post(fld));
    }
    if (has_public && v.PostBool("public")) {
      fields.emplace_back("is_public", Sym(true));
    }
    v.Create(model, fields, {{owner_rel, user}});
  });

  app.AddView(lower + "_partial_update", [model, owner_rel, text_fields](ViewCtx& v) {
    SymObj user = v.Deref("User", v.ParamRef("user", "User"));
    SymObj obj = v.M(model).get("id", v.ParamRef("pk", model));
    if (!(obj.rel(owner_rel).ref() == user.ref())) {
      v.Abort();  // 403
    }
    // Each posted field patches independently (PATCH semantics).
    for (const std::string& fld : text_fields) {
      if (v.Post(fld) != "") {
        obj = obj.with(fld, v.Post(fld));
      }
    }
    obj.save();
  });

  app.AddView(lower + "_destroy", [model, owner_rel](ViewCtx& v) {
    SymObj user = v.Deref("User", v.ParamRef("user", "User"));
    SymObj obj = v.M(model).get("id", v.ParamRef("pk", model));
    if (!(obj.rel(owner_rel).ref() == user.ref())) {
      v.Abort();
    }
    obj.destroy();
  });

  if (!share_rel.empty()) {
    app.AddView(lower + "_share", [model, owner_rel, share_rel](ViewCtx& v) {
      SymObj user = v.Deref("User", v.ParamRef("user", "User"));
      SymObj obj = v.M(model).get("id", v.ParamRef("pk", model));
      if (!(obj.rel(owner_rel).ref() == user.ref())) {
        v.Abort();
      }
      SymObj target = v.Deref("User", v.PostRef("target", "User"));
      v.Link(share_rel, obj, target);
    });
    app.AddView(lower + "_unshare", [model, owner_rel, share_rel](ViewCtx& v) {
      SymObj user = v.Deref("User", v.ParamRef("user", "User"));
      SymObj obj = v.M(model).get("id", v.ParamRef("pk", model));
      if (!(obj.rel(owner_rel).ref() == user.ref())) {
        v.Abort();
      }
      SymObj target = v.Deref("User", v.PostRef("target", "User"));
      v.Delink(share_rel, obj, target);
    });
  }
  if (!fav_rel.empty()) {
    app.AddView(lower + "_favorite", [model, fav_rel](ViewCtx& v) {
      SymObj user = v.Deref("User", v.ParamRef("user", "User"));
      SymObj obj = v.M(model).get("id", v.ParamRef("pk", model));
      if (v.PostBool("on")) {
        v.Link(fav_rel, obj, user);
      } else {
        v.Delink(fav_rel, obj, user);
      }
    });
  }

  app.AddView(lower + "_retrieve", [model](ViewCtx& v) {
    SymObj obj = v.M(model).get("id", v.ParamRef("pk", model));
    (void)obj;
  });

  // DRF-style list endpoint: pagination / visibility / ordering flags multiply read-only
  // code paths exactly as the original's filter backends do.
  app.AddView(lower + "_list", [model, owner_rel, has_public](ViewCtx& v) {
    SymSet qs(v.trace(), soir::MakeAll(v.schema().ModelId(model)));
    if (v.PostBool("mine")) {
      SymObj user = v.Deref("User", v.ParamRef("user", "User"));
      qs = qs.filter(owner_rel, user);
    }
    if (has_public && v.PostBool("public_only")) {
      qs = qs.filter("is_public", Sym(true));
    }
    if (v.PostBool("count_only")) {
      Sym n = qs.count();
      (void)n;
    } else {
      Sym any = qs.exists();
      (void)any;
    }
  });
}

// Album photo management endpoints shared by all five album flavors.
void RegisterAlbumPhotoViews(app::App& app, const std::string& album) {
  std::string lower = album;
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(c));
  }
  app.AddView(lower + "_add_photo", [album](ViewCtx& v) {
    SymObj user = v.Deref("User", v.ParamRef("user", "User"));
    SymObj a = v.M(album).get("id", v.ParamRef("pk", album));
    if (!(a.rel("owner").ref() == user.ref())) {
      v.Abort();
    }
    SymObj photo = v.M("Photo").get("id", v.PostRef("photo", "Photo"));
    v.Link("photos", a, photo);
    if (v.PostBool("as_cover")) {
      v.Link("cover", a, photo);
    }
  });
  app.AddView(lower + "_remove_photo", [album](ViewCtx& v) {
    SymObj user = v.Deref("User", v.ParamRef("user", "User"));
    SymObj a = v.M(album).get("id", v.ParamRef("pk", album));
    if (!(a.rel("owner").ref() == user.ref())) {
      v.Abort();
    }
    SymObj photo = v.M("Photo").get("id", v.PostRef("photo", "Photo"));
    v.Delink("photos", a, photo);
  });
  app.AddView(lower + "_set_cover", [album](ViewCtx& v) {
    SymObj a = v.M(album).get("id", v.ParamRef("pk", album));
    if (v.PostBool("clear")) {
      v.ClearLinks("cover", a);
    } else {
      SymObj photo = v.M("Photo").get("id", v.PostRef("photo", "Photo"));
      v.Link("cover", a, photo);
    }
  });
}

}  // namespace

app::App MakeOwnPhotosApp() {
  app::App app("ownphotos", __FILE__);
  soir::Schema& s = app.schema();

  // --- 12 models -----------------------------------------------------------------------------
  s.AddModel("User");
  s.AddField("User", FieldDef{.name = "username", .type = FieldType::kString, .unique = true});
  s.AddField("User", FieldDef{.name = "scan_directory", .type = FieldType::kString});

  s.AddModel("Photo");
  s.AddField("Photo", FieldDef{.name = "image_hash", .type = FieldType::kString,
                               .unique = true});
  s.AddField("Photo", FieldDef{.name = "caption", .type = FieldType::kString});
  s.AddField("Photo", FieldDef{.name = "rating", .type = FieldType::kInt, .positive = true});
  s.AddField("Photo", FieldDef{.name = "hidden", .type = FieldType::kBool});
  s.AddField("Photo", FieldDef{.name = "added_on", .type = FieldType::kDatetime});

  s.AddModel("Person");
  s.AddField("Person", FieldDef{.name = "name", .type = FieldType::kString});
  s.AddField("Person", FieldDef{.name = "kind", .type = FieldType::kString});

  s.AddModel("Face");
  s.AddField("Face", FieldDef{.name = "encoding", .type = FieldType::kString});
  s.AddField("Face", FieldDef{.name = "confidence", .type = FieldType::kInt,
                              .positive = true});

  s.AddModel("Cluster");
  s.AddField("Cluster", FieldDef{.name = "mean_encoding", .type = FieldType::kString});

  s.AddModel("LongRunningJob");
  s.AddField("LongRunningJob",
             FieldDef{.name = "job_type", .type = FieldType::kString,
                      .choices = {"scan", "train", "cluster"}, .default_string = "scan"});
  s.AddField("LongRunningJob", FieldDef{.name = "finished", .type = FieldType::kBool});
  s.AddField("LongRunningJob", FieldDef{.name = "progress", .type = FieldType::kInt,
                                        .positive = true});

  const std::vector<std::string> kAlbums = {"AlbumAuto", "AlbumUser", "AlbumDate",
                                            "AlbumThing", "AlbumPlace"};
  for (const std::string& album : kAlbums) {
    s.AddModel(album);
    s.AddField(album, FieldDef{.name = "title", .type = FieldType::kString});
    s.AddField(album, FieldDef{.name = "description", .type = FieldType::kString});
    s.AddField(album, FieldDef{.name = "is_public", .type = FieldType::kBool});
  }

  s.AddModel("Tag");
  s.AddField("Tag", FieldDef{.name = "name", .type = FieldType::kString, .unique = true});

  // --- 46 relations ----------------------------------------------------------------------------
  // Photo graph (5).
  s.AddRelation("owner", "Photo", "User", RelationKind::kManyToOne, OnDelete::kCascade,
                "photos");
  s.AddRelation("shared_to", "Photo", "User", RelationKind::kManyToMany, OnDelete::kCascade,
                "shared_photos");
  s.AddRelation("liked_by", "Photo", "User", RelationKind::kManyToMany, OnDelete::kCascade,
                "liked_photos");
  s.AddRelation("tags", "Photo", "Tag", RelationKind::kManyToMany, OnDelete::kCascade,
                "tagged_photos");
  s.AddRelation("hidden_by", "Photo", "User", RelationKind::kManyToMany, OnDelete::kCascade,
                "hidden_photos");
  // Faces and people (6).
  s.AddRelation("photo", "Face", "Photo", RelationKind::kManyToOne, OnDelete::kCascade,
                "faces");
  s.AddRelation("person", "Face", "Person", RelationKind::kManyToOne, OnDelete::kSetNull,
                "faces_of");
  s.AddRelation("suggested_person", "Face", "Person", RelationKind::kManyToOne,
                OnDelete::kSetNull, "suggested_faces");
  s.AddRelation("cover_photo", "Person", "Photo", RelationKind::kManyToOne,
                OnDelete::kSetNull, "cover_of_people");
  s.AddRelation("account", "Person", "User", RelationKind::kManyToOne, OnDelete::kSetNull,
                "persons");
  s.AddRelation("tagged_in", "Person", "Photo", RelationKind::kManyToMany, OnDelete::kCascade,
                "people_tagged");
  // Clusters (3).
  s.AddRelation("cluster", "Face", "Cluster", RelationKind::kManyToOne, OnDelete::kSetNull,
                "clustered_faces");
  s.AddRelation("person", "Cluster", "Person", RelationKind::kManyToOne, OnDelete::kCascade,
                "clusters");
  s.AddRelation("members", "Cluster", "Face", RelationKind::kManyToMany, OnDelete::kCascade,
                "member_of_clusters");
  // Jobs (3).
  s.AddRelation("target_album", "LongRunningJob", "AlbumUser", RelationKind::kManyToOne,
                OnDelete::kSetNull, "album_jobs");
  s.AddRelation("started_by", "LongRunningJob", "User", RelationKind::kManyToOne,
                OnDelete::kCascade, "jobs");
  s.AddRelation("target_person", "LongRunningJob", "Person", RelationKind::kManyToOne,
                OnDelete::kSetNull, "jobs_targeting");
  // Tags (2).
  s.AddRelation("creator", "Tag", "User", RelationKind::kManyToOne, OnDelete::kCascade,
                "created_tags");
  s.AddRelation("parent", "Tag", "Tag", RelationKind::kManyToOne, OnDelete::kSetNull,
                "child_tags");
  // Social (1).
  s.AddRelation("blocked", "User", "User", RelationKind::kManyToMany, OnDelete::kCascade,
                "blocked_by");
  // Per album type: owner, cover, photos, shared_to, favorited_by + one extra for
  // AlbumUser (collaborators): 5*5 + 1 = 26.
  for (const std::string& album : kAlbums) {
    s.AddRelation("owner", album, "User", RelationKind::kManyToOne, OnDelete::kCascade,
                  "own_" + album);
    s.AddRelation("cover", album, "Photo", RelationKind::kManyToOne, OnDelete::kSetNull,
                  "cover_of_" + album);
    s.AddRelation("photos", album, "Photo", RelationKind::kManyToMany, OnDelete::kCascade,
                  "in_" + album);
    s.AddRelation("shared_to", album, "User", RelationKind::kManyToMany, OnDelete::kCascade,
                  "shared_" + album);
    s.AddRelation("favorited_by", album, "User", RelationKind::kManyToMany,
                  OnDelete::kCascade, "favorite_" + album);
  }
  s.AddRelation("collaborators", "AlbumUser", "User", RelationKind::kManyToMany,
                OnDelete::kCascade, "collaborating_on");

  // --- Endpoints -------------------------------------------------------------------------------
  // Viewsets for the five album types, photos, people, and tags — as in the original's
  // REST routers.
  for (const std::string& album : kAlbums) {
    RegisterViewSet(app, album, "owner", {"title", "description"}, "shared_to",
                    "favorited_by");
  }
  for (const std::string& album : kAlbums) {
    RegisterAlbumPhotoViews(app, album);
  }
  RegisterViewSet(app, "Photo", "owner", {"caption"}, "shared_to", "liked_by",
                  /*has_public=*/false);
  RegisterViewSet(app, "Tag", "creator", {"name"}, "", "", /*has_public=*/false);
  RegisterViewSet(app, "Person", "account", {"name", "kind"}, "", "", /*has_public=*/false);

  // Hand-written endpoints beyond the generated CRUD families.

  // upload_photo: ingests a photo and optionally files it into a user album.
  app.AddView("upload_photo", [](ViewCtx& v) {
    SymObj user = v.Deref("User", v.ParamRef("user", "User"));
    SymObj photo = v.Create("Photo",
                            {{"image_hash", v.Post("hash")},
                             {"caption", v.Post("caption")},
                             {"added_on", v.PostInt("now")}},
                            {{"owner", user}});
    if (v.PostBool("into_album")) {
      SymObj album = v.M("AlbumUser").get("id", v.PostRef("album", "AlbumUser"));
      v.Link("photos", album, photo);
    }
  });

  // rate_photo: owner-only star rating with validation.
  app.AddView("rate_photo", [](ViewCtx& v) {
    SymObj user = v.Deref("User", v.ParamRef("user", "User"));
    SymObj photo = v.M("Photo").get("id", v.ParamRef("pk", "Photo"));
    if (!(photo.rel("owner").ref() == user.ref())) {
      v.Abort();
    }
    Sym rating = v.PostInt("rating");
    v.Guard(rating >= 0);
    v.Guard(rating <= 5);
    photo.with("rating", rating).save();
  });

  // hide_photo: toggles per-user visibility.
  app.AddView("hide_photo", [](ViewCtx& v) {
    SymObj user = v.Deref("User", v.ParamRef("user", "User"));
    SymObj photo = v.M("Photo").get("id", v.ParamRef("pk", "Photo"));
    if (v.PostBool("hide")) {
      v.Link("hidden_by", photo, user);
    } else {
      v.Delink("hidden_by", photo, user);
    }
  });

  // label_face: assigns a person to a detected face (confirming or overriding the
  // suggestion), possibly creating the person.
  app.AddView("label_face", [](ViewCtx& v) {
    SymObj face = v.M("Face").get("id", v.ParamRef("pk", "Face"));
    if (v.PostBool("new_person")) {
      SymObj person = v.Create("Person", {{"name", v.Post("name")}, {"kind", Sym("USER")}});
      v.Link("person", face, person);
    } else {
      SymObj person = v.M("Person").get("id", v.PostRef("person", "Person"));
      v.Link("person", face, person);
      if (v.PostBool("set_cover")) {
        SymObj photo = face.rel("photo");
        v.Link("cover_photo", person, photo);
      }
    }
  });

  // run_job: starts a background scan/train/cluster job; only one unfinished job of a
  // kind may run.
  app.AddView("run_job", [](ViewCtx& v) {
    SymObj user = v.Deref("User", v.ParamRef("user", "User"));
    SymSet running = v.M("LongRunningJob")
                         .filter("started_by", user)
                         .filter("finished", Sym(false));
    if (running.exists()) {
      v.Abort();
    }
    v.Create("LongRunningJob", {{"job_type", v.Post("kind")}, {"finished", Sym(false)}},
             {{"started_by", user}});
  });

  // job_progress: the worker reports progress and may finish the job.
  app.AddView("job_progress", [](ViewCtx& v) {
    SymObj job = v.M("LongRunningJob").get("id", v.ParamRef("pk", "LongRunningJob"));
    Sym progress = v.PostInt("progress");
    v.Guard(progress >= 0);
    if (v.PostBool("done")) {
      job.with("finished", Sym(true)).with("progress", progress).save();
    } else {
      job.with("progress", progress).save();
    }
  });

  // add_collaborator: shared user albums.
  app.AddView("add_collaborator", [](ViewCtx& v) {
    SymObj user = v.Deref("User", v.ParamRef("user", "User"));
    SymObj album = v.M("AlbumUser").get("id", v.ParamRef("pk", "AlbumUser"));
    if (!(album.rel("owner").ref() == user.ref())) {
      v.Abort();
    }
    SymObj target = v.Deref("User", v.PostRef("target", "User"));
    v.Link("collaborators", album, target);
  });

  // block_user: social blocking; also unshares this user's photos from the blocked user.
  app.AddView("block_user", [](ViewCtx& v) {
    SymObj user = v.Deref("User", v.ParamRef("user", "User"));
    SymObj target = v.Deref("User", v.PostRef("target", "User"));
    v.Link("blocked", user, target);
    if (v.PostBool("unshare_all")) {
      SymSet mine = v.M("Photo").filter("owner", user);
      (void)mine;
      v.ClearLinks("shared_photos", target);
    }
  });

  // gallery: read-only browse with a few flavors.
  app.AddView("gallery", [](ViewCtx& v) {
    if (v.PostBool("favorites")) {
      Sym n = v.M("Photo").filter("rating__gte", Sym(4)).count();
      (void)n;
    } else if (v.PostBool("recent")) {
      SymObj latest = v.M("Photo").order_by("-added_on").first();
      (void)latest;
    } else {
      Sym n = v.M("Photo").count();
      (void)n;
    }
  });

  return app;
}

}  // namespace noctua::apps
