// django-todo — a toy todo-list application (paper Table 4: 1 model, 0 relations).
#ifndef SRC_APPS_TODO_H_
#define SRC_APPS_TODO_H_

#include "src/app/app.h"

namespace noctua::apps {

app::App MakeTodoApp();

}  // namespace noctua::apps

#endif  // SRC_APPS_TODO_H_
