// zhihu — a Quora-like Q&A site clone (paper Table 4: 14 models, 25 relations). The
// CreateQuestion / FollowQuestion operations drive the paper's case study (§6.4).
#ifndef SRC_APPS_ZHIHU_H_
#define SRC_APPS_ZHIHU_H_

#include "src/app/app.h"

namespace noctua::apps {

app::App MakeZhihuApp();

}  // namespace noctua::apps

#endif  // SRC_APPS_ZHIHU_H_
