#include "src/apps/postgraduation.h"

namespace noctua::apps {

using analyzer::Sym;
using analyzer::SymObj;
using analyzer::SymSet;
using analyzer::ViewCtx;
using soir::FieldDef;
using soir::FieldType;
using soir::OnDelete;
using soir::RelationKind;

app::App MakePostGraduationApp() {
  app::App app("postgraduation", __FILE__);
  soir::Schema& s = app.schema();

  // 8 models.
  s.AddModel("Account");
  s.AddField("Account", FieldDef{.name = "username", .type = FieldType::kString,
                                 .unique = true});
  s.AddField("Account", FieldDef{.name = "email", .type = FieldType::kString});
  s.AddField("Account", FieldDef{.name = "is_staff", .type = FieldType::kBool});

  s.AddModel("Student");
  s.AddField("Student", FieldDef{.name = "name", .type = FieldType::kString});
  s.AddField("Student", FieldDef{.name = "score", .type = FieldType::kInt,
                                 .positive = true});
  s.AddField("Student", FieldDef{.name = "enrolled", .type = FieldType::kBool});

  s.AddModel("Supervisor");
  s.AddField("Supervisor", FieldDef{.name = "name", .type = FieldType::kString});
  s.AddField("Supervisor", FieldDef{.name = "quota", .type = FieldType::kInt,
                                    .positive = true});

  s.AddModel("Department");
  s.AddField("Department", FieldDef{.name = "name", .type = FieldType::kString,
                                    .unique = true});

  s.AddModel("Application");
  s.AddField("Application", FieldDef{.name = "status", .type = FieldType::kString,
                                     .choices = {"pending", "accepted", "rejected"},
                                     .default_string = "pending"});
  s.AddField("Application", FieldDef{.name = "submitted", .type = FieldType::kDatetime});

  s.AddModel("Notice");
  s.AddField("Notice", FieldDef{.name = "title", .type = FieldType::kString});
  s.AddField("Notice", FieldDef{.name = "body", .type = FieldType::kString});
  s.AddField("Notice", FieldDef{.name = "pinned", .type = FieldType::kBool});

  s.AddModel("Message");
  s.AddField("Message", FieldDef{.name = "text", .type = FieldType::kString});
  s.AddField("Message", FieldDef{.name = "read", .type = FieldType::kBool});

  s.AddModel("Score");
  s.AddField("Score", FieldDef{.name = "subject", .type = FieldType::kString});
  s.AddField("Score", FieldDef{.name = "value", .type = FieldType::kInt, .positive = true});

  // 4 relations.
  s.AddRelation("supervisor", "Student", "Supervisor", RelationKind::kManyToOne,
                OnDelete::kSetNull);
  s.AddRelation("department", "Supervisor", "Department", RelationKind::kManyToOne,
                OnDelete::kSetNull);
  s.AddRelation("applicant", "Application", "Student", RelationKind::kManyToOne,
                OnDelete::kCascade);
  s.AddRelation("student", "Score", "Student", RelationKind::kManyToOne,
                OnDelete::kCascade);

  // register_account: staff flag depends on an invite code.
  app.AddView("register_account", [](ViewCtx& v) {
    if (v.Post("invite") == "staff2024") {
      v.Create("Account", {{"username", v.Post("username")},
                           {"email", v.Post("email")},
                           {"is_staff", Sym(true)}});
    } else {
      v.Create("Account", {{"username", v.Post("username")},
                           {"email", v.Post("email")}});
    }
  });

  // submit_application: a student applies; duplicate pending applications are rejected.
  app.AddView("submit_application", [](ViewCtx& v) {
    SymObj student = v.Deref("Student", v.ParamRef("student", "Student"));
    SymSet pending = v.M("Application")
                         .filter("applicant", student)
                         .filter("status", Sym("pending"));
    if (pending.exists()) {
      v.Abort();
    }
    v.Create("Application", {{"submitted", v.PostInt("now")}}, {{"applicant", student}});
  });

  // review_application: accept (consuming supervisor quota) or reject.
  app.AddView("review_application", [](ViewCtx& v) {
    SymObj application = v.M("Application").get("id", v.ParamRef("app", "Application"));
    if (v.Post("decision") == "accept") {
      SymObj sup = v.Deref("Supervisor", v.PostRef("supervisor", "Supervisor"));
      v.Guard(sup.attr("quota") >= 1);
      sup.with("quota", sup.attr("quota") - 1).save();
      application.with("status", Sym("accepted")).save();
      SymObj student = application.rel("applicant");
      student.with("enrolled", Sym(true)).save();
      v.Link("supervisor", student, sup);
    } else {
      application.with("status", Sym("rejected")).save();
    }
  });

  // withdraw_application: the student withdraws; cascades delete the application.
  app.AddView("withdraw_application", [](ViewCtx& v) {
    v.M("Application").filter("id", v.ParamRef("app", "Application")).del();
  });

  // post_notice: staff-only announcement, optionally pinned.
  app.AddView("post_notice", [](ViewCtx& v) {
    SymObj account = v.Deref("Account", v.ParamRef("account", "Account"));
    if (!account.attr("is_staff")) {
      v.Abort();
    }
    if (v.PostBool("pinned")) {
      v.M("Notice").filter("pinned", Sym(true)).update("pinned", Sym(false));
      v.Create("Notice",
               {{"title", v.Post("title")}, {"body", v.Post("body")}, {"pinned", Sym(true)}});
    } else {
      v.Create("Notice", {{"title", v.Post("title")}, {"body", v.Post("body")}});
    }
  });

  // send_message / mark_read: a tiny in-app inbox.
  app.AddView("send_message", [](ViewCtx& v) {
    v.Create("Message", {{"text", v.Post("text")}});
  });
  app.AddView("mark_read", [](ViewCtx& v) {
    v.M("Message").filter("read", Sym(false)).update("read", Sym(true));
  });

  // record_score: adds a grade entry; the value must be a valid score.
  app.AddView("record_score", [](ViewCtx& v) {
    SymObj student = v.Deref("Student", v.ParamRef("student", "Student"));
    Sym value = v.PostInt("value");
    v.Guard(value >= 0);
    v.Guard(value <= 100);
    v.Create("Score", {{"subject", v.Post("subject")}, {"value", value}},
             {{"student", student}});
    Sym total = student.attr("score") + value;
    student.with("score", total).save();
  });

  // transfer_student: moves a student to another supervisor, adjusting quotas.
  app.AddView("transfer_student", [](ViewCtx& v) {
    SymObj student = v.Deref("Student", v.ParamRef("student", "Student"));
    SymObj to = v.Deref("Supervisor", v.PostRef("to", "Supervisor"));
    v.Guard(to.attr("quota") >= 1);
    SymObj from = student.rel("supervisor");
    from.with("quota", from.attr("quota") + 1).save();
    to.with("quota", to.attr("quota") - 1).save();
    v.Link("supervisor", student, to);
  });

  // drop_student: removes a student (cascades to applications and scores); frees quota
  // when the student had a supervisor.
  app.AddView("drop_student", [](ViewCtx& v) {
    SymObj student = v.Deref("Student", v.ParamRef("student", "Student"));
    if (v.PostBool("refund_quota")) {
      SymObj sup = student.rel("supervisor");
      sup.with("quota", sup.attr("quota") + 1).save();
    }
    student.destroy();
  });

  // rename_department: staff maintenance endpoint.
  app.AddView("rename_department", [](ViewCtx& v) {
    SymObj dep = v.M("Department").get("id", v.ParamRef("dep", "Department"));
    if (v.Post("name") == "") {
      v.Abort();
    }
    dep.with("name", v.Post("name")).save();
  });

  // profile: read-only view of a student's record.
  app.AddView("profile", [](ViewCtx& v) {
    SymObj student = v.Deref("Student", v.ParamRef("student", "Student"));
    Sym n = v.M("Score").filter("student", student).count();
    (void)n;
  });

  return app;
}

}  // namespace noctua::apps
