#include "src/apps/smallbank.h"

namespace noctua::apps {

using analyzer::Sym;
using analyzer::SymObj;
using analyzer::ViewCtx;
using soir::FieldDef;
using soir::FieldType;

app::App MakeSmallBankApp() {
  app::App app("smallbank", __FILE__);
  soir::Schema& s = app.schema();

  s.AddModel("Account");
  s.AddField("Account", FieldDef{.name = "owner", .type = FieldType::kString});
  s.AddField("Account", FieldDef{.name = "checking", .type = FieldType::kInt});
  s.AddField("Account", FieldDef{.name = "savings", .type = FieldType::kInt});

  // Balance(acct): read-only — returns checking + savings. No effects; the verifier
  // ignores it (paper §6.2 "Balance is a read-only operation (thus ignored)").
  app.AddView("Balance", [](ViewCtx& v) {
    SymObj acct = v.Deref("Account", v.ParamRef("acct", "Account"));
    Sym total = acct.attr("checking") + acct.attr("savings");
    (void)total;
  });

  // DepositChecking(acct, amount): amount must be non-negative.
  app.AddView("DepositChecking", [](ViewCtx& v) {
    SymObj acct = v.Deref("Account", v.ParamRef("acct", "Account"));
    Sym amount = v.PostInt("amount");
    v.Guard(amount >= 0);
    acct.with("checking", acct.attr("checking") + amount).save();
  });

  // TransactSavings(acct, amount): deposit or withdrawal; the resulting savings balance
  // must stay non-negative — the invariant behind the (TS, TS) restriction.
  app.AddView("TransactSavings", [](ViewCtx& v) {
    SymObj acct = v.Deref("Account", v.ParamRef("acct", "Account"));
    Sym amount = v.PostInt("amount");
    v.Guard(acct.attr("savings") + amount >= 0);
    acct.with("savings", acct.attr("savings") + amount).save();
  });

  // SendPayment(src, dst, amount): moves checking funds; the source balance must cover
  // the payment — the invariant behind (SP, SP) and (Amalgamate, SP).
  app.AddView("SendPayment", [](ViewCtx& v) {
    SymObj src = v.Deref("Account", v.ParamRef("src", "Account"));
    SymObj dst = v.Deref("Account", v.ParamRef("dst", "Account"));
    Sym amount = v.PostInt("amount");
    v.Guard(amount >= 0);
    v.Guard(src.attr("checking") >= amount);
    src.with("checking", src.attr("checking") - amount).save();
    dst.with("checking", dst.attr("checking") + amount).save();
  });

  // Amalgamate(src, dst, amount): moves src's checking funds into dst's checking. The
  // request is speculatively executed at the origin site (paper §2.1), so the transferred
  // amount — the full balance read there — reaches the replicas as an operation argument;
  // the guard re-establishes sufficiency on replay.
  app.AddView("Amalgamate", [](ViewCtx& v) {
    SymObj src = v.Deref("Account", v.ParamRef("src", "Account"));
    SymObj dst = v.Deref("Account", v.ParamRef("dst", "Account"));
    Sym amount = v.PostInt("amount");
    v.Guard(amount >= 0);
    v.Guard(src.attr("checking") >= amount);
    src.with("checking", src.attr("checking") - amount).save();
    dst.with("checking", dst.attr("checking") + amount).save();
  });

  return app;
}

}  // namespace noctua::apps
