#include "src/apps/zhihu.h"

namespace noctua::apps {

using analyzer::Sym;
using analyzer::SymObj;
using analyzer::SymSet;
using analyzer::ViewCtx;
using soir::FieldDef;
using soir::FieldType;
using soir::OnDelete;
using soir::RelationKind;

app::App MakeZhihuApp() {
  app::App app("zhihu", __FILE__);
  soir::Schema& s = app.schema();

  // --- 14 models ---------------------------------------------------------------------------
  s.AddModel("User");
  s.AddField("User", FieldDef{.name = "username", .type = FieldType::kString, .unique = true});
  s.AddField("User", FieldDef{.name = "bio", .type = FieldType::kString});
  s.AddField("User", FieldDef{.name = "reputation", .type = FieldType::kInt});

  s.AddModel("Question");
  s.AddField("Question", FieldDef{.name = "title", .type = FieldType::kString});
  s.AddField("Question", FieldDef{.name = "content", .type = FieldType::kString});
  s.AddField("Question", FieldDef{.name = "follow", .type = FieldType::kInt});
  s.AddField("Question", FieldDef{.name = "created", .type = FieldType::kDatetime});

  s.AddModel("Answer");
  s.AddField("Answer", FieldDef{.name = "content", .type = FieldType::kString});
  s.AddField("Answer", FieldDef{.name = "votes", .type = FieldType::kInt});

  s.AddModel("Comment");
  s.AddField("Comment", FieldDef{.name = "text", .type = FieldType::kString});

  s.AddModel("Topic");
  s.AddField("Topic", FieldDef{.name = "name", .type = FieldType::kString, .unique = true});

  s.AddModel("FollowQuestion");
  s.AddField("FollowQuestion", FieldDef{.name = "created", .type = FieldType::kDatetime});

  s.AddModel("FollowUser");
  s.AddField("FollowUser", FieldDef{.name = "created", .type = FieldType::kDatetime});

  s.AddModel("Vote");
  s.AddField("Vote", FieldDef{.name = "positive", .type = FieldType::kBool});

  s.AddModel("Collection");
  s.AddField("Collection", FieldDef{.name = "name", .type = FieldType::kString});
  s.AddField("Collection", FieldDef{.name = "is_public", .type = FieldType::kBool});

  s.AddModel("CollectionItem");
  s.AddField("CollectionItem", FieldDef{.name = "added", .type = FieldType::kDatetime});

  s.AddModel("Notification");
  s.AddField("Notification", FieldDef{.name = "text", .type = FieldType::kString});
  s.AddField("Notification", FieldDef{.name = "read", .type = FieldType::kBool});

  s.AddModel("Article");
  s.AddField("Article", FieldDef{.name = "title", .type = FieldType::kString});
  s.AddField("Article", FieldDef{.name = "content", .type = FieldType::kString});

  s.AddModel("Draft");
  s.AddField("Draft", FieldDef{.name = "content", .type = FieldType::kString});

  s.AddModel("Report");
  s.AddField("Report", FieldDef{.name = "reason", .type = FieldType::kString,
                                .choices = {"spam", "abuse", "other"},
                                .default_string = "other"});

  // --- 25 relations ------------------------------------------------------------------------
  s.AddRelation("author", "Question", "User", RelationKind::kManyToOne, OnDelete::kCascade,
                "questions");
  s.AddRelation("question", "Answer", "Question", RelationKind::kManyToOne,
                OnDelete::kCascade, "answers");
  s.AddRelation("author", "Answer", "User", RelationKind::kManyToOne, OnDelete::kCascade,
                "user_answers");
  s.AddRelation("answer", "Comment", "Answer", RelationKind::kManyToOne, OnDelete::kCascade,
                "comments");
  s.AddRelation("author", "Comment", "User", RelationKind::kManyToOne, OnDelete::kCascade,
                "user_comments");
  s.AddRelation("reply_to", "Comment", "Comment", RelationKind::kManyToOne,
                OnDelete::kSetNull, "replies");
  s.AddRelation("user", "FollowQuestion", "User", RelationKind::kManyToOne,
                OnDelete::kCascade, "question_follows");
  s.AddRelation("question", "FollowQuestion", "Question", RelationKind::kManyToOne,
                OnDelete::kCascade, "followers");
  s.AddRelation("follower", "FollowUser", "User", RelationKind::kManyToOne,
                OnDelete::kCascade, "following_edges");
  s.AddRelation("followee", "FollowUser", "User", RelationKind::kManyToOne,
                OnDelete::kCascade, "follower_edges");
  s.AddRelation("user", "Vote", "User", RelationKind::kManyToOne, OnDelete::kCascade,
                "votes");
  s.AddRelation("answer", "Vote", "Answer", RelationKind::kManyToOne, OnDelete::kCascade,
                "answer_votes");
  s.AddRelation("owner", "Collection", "User", RelationKind::kManyToOne, OnDelete::kCascade,
                "collections");
  s.AddRelation("collection", "CollectionItem", "Collection", RelationKind::kManyToOne,
                OnDelete::kCascade, "items");
  s.AddRelation("answer", "CollectionItem", "Answer", RelationKind::kManyToOne,
                OnDelete::kCascade, "collected_in");
  s.AddRelation("user", "Notification", "User", RelationKind::kManyToOne, OnDelete::kCascade,
                "notifications");
  s.AddRelation("actor", "Notification", "User", RelationKind::kManyToOne,
                OnDelete::kSetNull, "triggered_notifications");
  s.AddRelation("author", "Article", "User", RelationKind::kManyToOne, OnDelete::kCascade,
                "articles");
  s.AddRelation("author", "Draft", "User", RelationKind::kManyToOne, OnDelete::kCascade,
                "drafts");
  s.AddRelation("question", "Draft", "Question", RelationKind::kManyToOne, OnDelete::kCascade,
                "question_drafts");
  s.AddRelation("topics", "Question", "Topic", RelationKind::kManyToMany, OnDelete::kCascade,
                "topic_questions");
  s.AddRelation("parent", "Topic", "Topic", RelationKind::kManyToOne, OnDelete::kSetNull,
                "children");
  s.AddRelation("reporter", "Report", "User", RelationKind::kManyToOne, OnDelete::kCascade,
                "reports");
  s.AddRelation("answer", "Report", "Answer", RelationKind::kManyToOne, OnDelete::kCascade,
                "answer_reports");
  s.AddRelation("following_topics", "User", "Topic", RelationKind::kManyToMany,
                OnDelete::kCascade, "topic_followers");

  // --- Views ---------------------------------------------------------------------------------

  // CreateQuestion (§6.4): a new Question with all counters initialized to zero.
  app.AddView("CreateQuestion", [](ViewCtx& v) {
    SymObj author = v.Deref("User", v.ParamRef("user", "User"));
    SymObj q = v.Create("Question",
                        {{"title", v.Post("title")},
                         {"content", v.Post("content")},
                         {"follow", Sym(0)},
                         {"created", v.PostInt("now")}},
                        {{"author", author}});
    (void)q;
  });

  // FollowQuestion (§6.4): subscribes a user — (user, question) is "unique together" —
  // and increments the question's follow count.
  app.AddView("FollowQuestion", [](ViewCtx& v) {
    SymObj user = v.Deref("User", v.ParamRef("user", "User"));
    SymObj q = v.Deref("Question", v.ParamRef("question", "Question"));
    v.GuardUniqueTogether("FollowQuestion", {{"user", user}, {"question", q}});
    v.Create("FollowQuestion", {{"created", v.PostInt("now")}},
             {{"user", user}, {"question", q}});
    q.with("follow", q.attr("follow") + 1).save();
  });

  // UnfollowQuestion: removes the subscription and decrements the counter.
  app.AddView("UnfollowQuestion", [](ViewCtx& v) {
    SymObj user = v.Deref("User", v.ParamRef("user", "User"));
    SymObj q = v.Deref("Question", v.ParamRef("question", "Question"));
    SymSet edge =
        v.M("FollowQuestion").filter("user", user).filter("question", q);
    v.Guard(edge.exists());
    edge.del();
    q.with("follow", q.attr("follow") - 1).save();
  });

  // PostAnswer: answers a question, optionally consuming a draft.
  app.AddView("PostAnswer", [](ViewCtx& v) {
    SymObj author = v.Deref("User", v.ParamRef("user", "User"));
    SymObj q = v.Deref("Question", v.ParamRef("question", "Question"));
    if (v.PostBool("from_draft")) {
      SymObj draft = v.M("Draft").filter("author", author).filter("question", q).any();
      v.Create("Answer", {{"content", draft.attr("content")}, {"votes", Sym(0)}},
               {{"question", q}, {"author", author}});
      v.M("Draft").filter("author", author).filter("question", q).del();
    } else {
      v.Create("Answer", {{"content", v.Post("content")}, {"votes", Sym(0)}},
               {{"question", q}, {"author", author}});
    }
  });

  // SaveDraft: creates or replaces the user's draft for a question.
  app.AddView("SaveDraft", [](ViewCtx& v) {
    SymObj author = v.Deref("User", v.ParamRef("user", "User"));
    SymObj q = v.Deref("Question", v.ParamRef("question", "Question"));
    v.M("Draft").filter("author", author).filter("question", q).del();
    v.Create("Draft", {{"content", v.Post("content")}},
             {{"author", author}, {"question", q}});
  });

  // VoteAnswer: one vote per (user, answer); adjusts the answer's counter and the
  // author's reputation.
  app.AddView("VoteAnswer", [](ViewCtx& v) {
    SymObj user = v.Deref("User", v.ParamRef("user", "User"));
    SymObj answer = v.M("Answer").get("id", v.ParamRef("answer", "Answer"));
    v.GuardUniqueTogether("Vote", {{"user", user}, {"answer", answer}});
    if (v.PostBool("positive")) {
      v.Create("Vote", {{"positive", Sym(true)}}, {{"user", user}, {"answer", answer}});
      answer.with("votes", answer.attr("votes") + 1).save();
      SymObj author = answer.rel("author");
      author.with("reputation", author.attr("reputation") + 10).save();
    } else {
      v.Create("Vote", {{"positive", Sym(false)}}, {{"user", user}, {"answer", answer}});
      answer.with("votes", answer.attr("votes") - 1).save();
    }
  });

  // AddComment: comments an answer, optionally as a reply; notifies the answer's author.
  app.AddView("AddComment", [](ViewCtx& v) {
    SymObj user = v.Deref("User", v.ParamRef("user", "User"));
    SymObj answer = v.M("Answer").get("id", v.ParamRef("answer", "Answer"));
    SymObj comment = v.Create("Comment", {{"text", v.Post("text")}},
                              {{"answer", answer}, {"author", user}});
    if (v.PostBool("is_reply")) {
      SymObj parent = v.M("Comment").get("id", v.PostRef("reply_to", "Comment"));
      v.Link("reply_to", comment, parent);
    }
    SymObj target = answer.rel("author");
    v.Create("Notification", {{"text", v.Post("text")}, {"read", Sym(false)}},
             {{"user", target}, {"actor", user}});
  });

  // FollowUser: social graph edge, unique together.
  app.AddView("FollowUser", [](ViewCtx& v) {
    SymObj follower = v.Deref("User", v.ParamRef("user", "User"));
    SymObj followee = v.Deref("User", v.PostRef("followee", "User"));
    v.GuardUniqueTogether("FollowUser", {{"follower", follower}, {"followee", followee}});
    v.Create("FollowUser", {{"created", v.PostInt("now")}},
             {{"follower", follower}, {"followee", followee}});
  });

  // CollectAnswer: adds an answer to one of the user's collections.
  app.AddView("CollectAnswer", [](ViewCtx& v) {
    SymObj user = v.Deref("User", v.ParamRef("user", "User"));
    SymObj answer = v.M("Answer").get("id", v.ParamRef("answer", "Answer"));
    if (v.PostBool("new_collection")) {
      SymObj col = v.Create("Collection",
                            {{"name", v.Post("name")}, {"is_public", v.PostBool("public")}},
                            {{"owner", user}});
      v.Create("CollectionItem", {{"added", v.PostInt("now")}},
               {{"collection", col}, {"answer", answer}});
    } else {
      SymObj col = v.M("Collection").get("id", v.PostRef("collection", "Collection"));
      v.Create("CollectionItem", {{"added", v.PostInt("now")}},
               {{"collection", col}, {"answer", answer}});
    }
  });

  // TagQuestion: attaches a topic to a question (many-to-many link).
  app.AddView("TagQuestion", [](ViewCtx& v) {
    SymObj q = v.M("Question").get("id", v.ParamRef("question", "Question"));
    SymObj topic = v.M("Topic").get("id", v.PostRef("topic", "Topic"));
    v.Link("topics", q, topic);
  });

  // PublishArticle: standalone long-form post.
  app.AddView("PublishArticle", [](ViewCtx& v) {
    SymObj author = v.Deref("User", v.ParamRef("user", "User"));
    if (v.Post("title") == "") {
      v.Abort();
    }
    v.Create("Article", {{"title", v.Post("title")}, {"content", v.Post("content")}},
             {{"author", author}});
  });

  // ReportAnswer: flags an answer for moderation.
  app.AddView("ReportAnswer", [](ViewCtx& v) {
    SymObj user = v.Deref("User", v.ParamRef("user", "User"));
    SymObj answer = v.M("Answer").get("id", v.ParamRef("answer", "Answer"));
    v.Create("Report", {{"reason", v.Post("reason")}},
             {{"reporter", user}, {"answer", answer}});
  });

  // DeleteAnswer: the author retracts an answer (cascades votes/comments/reports).
  app.AddView("DeleteAnswer", [](ViewCtx& v) {
    SymObj user = v.Deref("User", v.ParamRef("user", "User"));
    SymObj answer = v.M("Answer").get("id", v.ParamRef("answer", "Answer"));
    SymObj author = answer.rel("author");
    if (!(author.ref() == user.ref())) {
      v.Abort();
    }
    answer.destroy();
  });

  // MarkNotificationsRead: inbox maintenance.
  app.AddView("MarkNotificationsRead", [](ViewCtx& v) {
    SymObj user = v.Deref("User", v.ParamRef("user", "User"));
    v.M("Notification").filter("user", user).filter("read", Sym(false))
        .update("read", Sym(true));
  });

  // Timeline: read-only; branches on the feed flavor.
  app.AddView("Timeline", [](ViewCtx& v) {
    if (v.PostBool("hot")) {
      Sym n = v.M("Question").filter("follow__gte", Sym(10)).count();
      (void)n;
    } else {
      Sym n = v.M("Answer").count();
      (void)n;
    }
  });

  return app;
}

}  // namespace noctua::apps
