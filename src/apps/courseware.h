// Courseware — the standard benchmark specified by Hamsaz, used for the correctness
// comparison in paper Table 5.
//
// Three models (Student, Course, Enrolment) and two relations (paper Table 4). The only
// invariant is referential integrity: enrolments must reference live students/courses.
// Expected restrictions (paper §6.2): one commutativity failure (AddCourse, DeleteCourse)
// — a freshly added course can carry the same ID an unrelated delete targets — and one
// semantic failure (Enroll, DeleteCourse) — the course can be deleted under the enrolment.
#ifndef SRC_APPS_COURSEWARE_H_
#define SRC_APPS_COURSEWARE_H_

#include "src/app/app.h"

namespace noctua::apps {

app::App MakeCoursewareApp();

}  // namespace noctua::apps

#endif  // SRC_APPS_COURSEWARE_H_
