// SmallBank — the standard OLTP consistency benchmark (H-Store variant), used for the
// correctness comparison against Rigi in paper Table 5.
//
// One model (Account) with checking and savings balances, no relations (paper Table 4:
// 1 model, 0 relations). Five operations; Balance is read-only and therefore ignored by
// the verifier, leaving four effectful operations (Table 4: 4 effectful paths).
#ifndef SRC_APPS_SMALLBANK_H_
#define SRC_APPS_SMALLBANK_H_

#include "src/app/app.h"

namespace noctua::apps {

app::App MakeSmallBankApp();

}  // namespace noctua::apps

#endif  // SRC_APPS_SMALLBANK_H_
