#include "src/apps/blog.h"

namespace noctua::apps {

using analyzer::Sym;
using analyzer::SymObj;
using analyzer::SymSet;
using analyzer::ViewCtx;
using soir::FieldDef;
using soir::FieldType;
using soir::OnDelete;
using soir::RelationKind;

app::App MakeBlogApp() {
  app::App app("blog", __FILE__);
  soir::Schema& s = app.schema();

  // class User(Model): name = TextField(primary_key=True)
  s.AddModel("User", /*pk_name=*/"name");

  // class Article(Model): url unique, author FK(User, SET_NULL), title, content, created.
  s.AddModel("Article");
  s.AddField("Article", FieldDef{.name = "url", .type = FieldType::kString, .unique = true});
  s.AddField("Article", FieldDef{.name = "title", .type = FieldType::kString});
  s.AddField("Article", FieldDef{.name = "content", .type = FieldType::kString});
  s.AddField("Article", FieldDef{.name = "created", .type = FieldType::kDatetime});
  s.AddRelation("author", "Article", "User", RelationKind::kManyToOne, OnDelete::kSetNull);

  // class Comment(Model): user FK, article FK, text.
  s.AddModel("Comment");
  s.AddField("Comment", FieldDef{.name = "text", .type = FieldType::kString});
  s.AddRelation("user", "Comment", "User", RelationKind::kManyToOne, OnDelete::kCascade);
  s.AddRelation("article", "Comment", "Article", RelationKind::kManyToOne,
                OnDelete::kCascade);

  // def batch_update(request, username) — Figure 3, lines 13..23.
  app.AddView("batch_update", [](ViewCtx& v) {
    SymObj user = v.Deref("User", v.ParamRef("username", "User"));
    SymSet articles = v.M("Article").filter("author", user);
    if (v.Post("action") == "delete") {
      articles.del();
    } else if (v.Post("action") == "transfer") {
      SymObj to_user = v.Deref("User", v.PostRef("to_user", "User"));
      articles.relink("author", to_user);
    } else {
      v.Abort();  // raise RuntimeError()
    }
  });

  app.AddView("create_article", [](ViewCtx& v) {
    SymObj author = v.Deref("User", v.PostRef("author", "User"));
    v.Create("Article",
             {{"url", v.Post("url")},
              {"title", v.Post("title")},
              {"content", v.Post("content")},
              {"created", v.PostInt("now")}},
             {{"author", author}});
  });

  app.AddView("add_comment", [](ViewCtx& v) {
    SymObj user = v.Deref("User", v.PostRef("user", "User"));
    SymObj article = v.M("Article").get("url", v.Post("url"));
    v.Create("Comment", {{"text", v.Post("text")}},
             {{"user", user}, {"article", article}});
  });

  return app;
}

}  // namespace noctua::apps
