// OwnPhotos — an open-source Google Photos clone, the largest evaluated application
// (paper Table 4: 12 models, 46 relations, 545 code paths, 120 effectful paths).
//
// Like the original (a Django-REST project), most endpoints come from *viewsets*: CRUD
// endpoint families constructed programmatically per model. That is exactly the dynamic
// endpoint construction that motivates the paper's framework-integrated entry discovery
// (§5.1) — the analyzer enumerates these endpoints from the registered application, not
// from source text.
#ifndef SRC_APPS_OWNPHOTOS_H_
#define SRC_APPS_OWNPHOTOS_H_

#include "src/app/app.h"

namespace noctua::apps {

app::App MakeOwnPhotosApp();

}  // namespace noctua::apps

#endif  // SRC_APPS_OWNPHOTOS_H_
