// Registry of every application evaluated in the paper (§6.1, Table 4).
#ifndef SRC_APPS_APPS_H_
#define SRC_APPS_APPS_H_

#include <functional>
#include <string>
#include <vector>

#include "src/app/app.h"
#include "src/apps/blog.h"
#include "src/apps/courseware.h"
#include "src/apps/ownphotos.h"
#include "src/apps/postgraduation.h"
#include "src/apps/smallbank.h"
#include "src/apps/todo.h"
#include "src/apps/zhihu.h"

namespace noctua::apps {

struct AppEntry {
  std::string name;
  std::function<app::App()> make;
};

// The four real-world codebases followed by the two standard benchmarks, in the paper's
// Table 4 order.
inline std::vector<AppEntry> EvaluatedApps() {
  return {
      {"Todo", MakeTodoApp},
      {"PostGraduation", MakePostGraduationApp},
      {"Zhihu", MakeZhihuApp},
      {"OwnPhotos", MakeOwnPhotosApp},
      {"SmallBank", MakeSmallBankApp},
      {"Courseware", MakeCoursewareApp},
  };
}

}  // namespace noctua::apps

#endif  // SRC_APPS_APPS_H_
