#include "src/apps/todo.h"

namespace noctua::apps {

using analyzer::Sym;
using analyzer::SymObj;
using analyzer::SymSet;
using analyzer::ViewCtx;
using soir::FieldDef;
using soir::FieldType;

app::App MakeTodoApp() {
  app::App app("todo", __FILE__);
  soir::Schema& s = app.schema();

  s.AddModel("Task");
  s.AddField("Task", FieldDef{.name = "title", .type = FieldType::kString});
  s.AddField("Task", FieldDef{.name = "note", .type = FieldType::kString});
  s.AddField("Task", FieldDef{.name = "done", .type = FieldType::kBool});
  s.AddField("Task", FieldDef{.name = "priority", .type = FieldType::kInt, .positive = true});
  s.AddField("Task", FieldDef{.name = "created", .type = FieldType::kDatetime});

  // add_task: creates a task; empty titles are rejected.
  app.AddView("add_task", [](ViewCtx& v) {
    if (v.Post("title") == "") {
      v.Abort();
    }
    v.Create("Task", {{"title", v.Post("title")},
                      {"note", v.Post("note")},
                      {"priority", v.PostInt("priority")},
                      {"created", v.PostInt("now")}});
  });

  // toggle_done: flips completion, or marks done depending on the `force` flag.
  app.AddView("toggle_done", [](ViewCtx& v) {
    SymObj task = v.M("Task").get("id", v.ParamRef("task", "Task"));
    if (v.PostBool("force")) {
      task.with("done", Sym(true)).save();
    } else {
      task.with("done", !task.attr("done")).save();
    }
  });

  // edit_task: updates title and/or note depending on which fields the form posted.
  app.AddView("edit_task", [](ViewCtx& v) {
    SymObj task = v.M("Task").get("id", v.ParamRef("task", "Task"));
    if (v.Post("title") != "") {
      task = task.with("title", v.Post("title"));
    }
    if (v.Post("note") != "") {
      task = task.with("note", v.Post("note"));
    }
    task.save();
  });

  // delete_task: removes one task (no existence requirement, filter semantics).
  app.AddView("delete_task", [](ViewCtx& v) {
    v.M("Task").filter("id", v.ParamRef("task", "Task")).del();
  });

  // clear_done: bulk-deletes completed tasks, optionally only low-priority ones.
  app.AddView("clear_done", [](ViewCtx& v) {
    SymSet done = v.M("Task").filter("done", Sym(true));
    if (v.PostBool("only_low_priority")) {
      done.filter("priority__lte", v.PostInt("threshold")).del();
    } else {
      done.del();
    }
  });

  // reprioritize: bumps or lowers the priority of every pending task.
  app.AddView("reprioritize", [](ViewCtx& v) {
    SymSet pending = v.M("Task").filter("done", Sym(false));
    if (v.PostBool("raise")) {
      pending.update_each("priority", [](SymObj t) { return t.attr("priority") + 1; });
    } else {
      Sym level = v.PostInt("level");
      v.Guard(level >= 0);
      pending.update("priority", level);
    }
  });

  // list_tasks: read-only; branches on the requested ordering.
  app.AddView("list_tasks", [](ViewCtx& v) {
    if (v.PostBool("by_priority")) {
      SymObj top = v.M("Task").order_by("-priority").first();
      (void)top;
    } else {
      Sym n = v.M("Task").count();
      (void)n;
    }
  });

  return app;
}

}  // namespace noctua::apps
