// noctua-cli: command-line client for a running noctua-serve daemon.
//
//   noctua-cli [--host H] --port P analyze --tenant T --app NAME [--omit-view V]...
//                                          [--trace] [--trace-id ID]
//   noctua-cli [--host H] --port P metrics [--check] [--format json|prometheus]
//   noctua-cli [--host H] --port P healthz
//   noctua-cli [--host H] --port P shutdown
//
// `metrics --check` re-parses the daemon's /metrics body with the strict RFC 8259
// parser (src/obs/json.h) and verifies the documented top-level shape — the CI smoke
// step's machine check that the daemon emits real JSON, not JSON-shaped text. With
// `--format prometheus` it fetches the text exposition instead and machine-checks it
// with obs::CheckPrometheusText (monotone cumulative buckets, _count == +Inf bucket).
// `analyze --trace` asks for the request's span tree inline; `--trace-id` supplies the
// x-noctua-trace header so the request joins a caller-chosen trace.
// Exit code: 0 on HTTP 200 (and a passing --check), 1 otherwise.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/prom.h"
#include "src/service/client.h"
#include "src/support/env.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] --port P analyze --tenant T --app NAME"
               " [--omit-view V]... [--trace] [--trace-id ID]\n"
               "       %s [--host H] --port P metrics [--check]"
               " [--format json|prometheus]\n"
               "       %s [--host H] --port P healthz | shutdown\n",
               argv0, argv0, argv0);
  return 2;
}

int CheckMetricsBody(const std::string& body) {
  std::string error;
  noctua::obs::JsonPtr doc = noctua::obs::ParseJson(body, &error);
  if (doc == nullptr) {
    std::fprintf(stderr, "metrics --check: body is not strict JSON: %s\n", error.c_str());
    return 1;
  }
  for (const char* key : {"service", "engine", "counters", "histograms"}) {
    noctua::obs::JsonPtr section = doc->Get(key);
    if (section == nullptr || !section->is_object()) {
      std::fprintf(stderr, "metrics --check: missing or non-object section \"%s\"\n", key);
      return 1;
    }
  }
  std::fprintf(stderr, "metrics --check: ok (%zu counters)\n",
               doc->Get("counters")->AsObject().size());
  return 0;
}

int CheckPrometheusBody(const std::string& body) {
  std::string error;
  size_t num_series = 0;
  if (!noctua::obs::CheckPrometheusText(body, &error, &num_series)) {
    std::fprintf(stderr, "metrics --check: bad prometheus exposition: %s\n",
                 error.c_str());
    return 1;
  }
  std::fprintf(stderr, "metrics --check: ok (%zu series)\n", num_series);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  int i = 1;
  auto next = [&](const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", flag);
      std::exit(2);
    }
    return argv[++i];
  };
  for (; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--host") {
      host = next("--host");
    } else if (arg == "--port") {
      long p = 0;
      const char* raw = next("--port");
      if (!noctua::env::ParseLong(raw, &p) || p < 1 || p > 65535) {
        std::fprintf(stderr, "--port expects an integer in [1, 65535], got \"%s\"\n", raw);
        return Usage(argv[0]);
      }
      port = static_cast<int>(p);
    } else {
      break;
    }
  }
  if (i >= argc || port <= 0) {
    return Usage(argv[0]);
  }
  std::string command = argv[i++];
  noctua::service::Client client(host, port);
  noctua::service::HttpResponse resp;
  std::string error;

  if (command == "analyze") {
    noctua::service::AnalyzeParams params;
    for (; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--tenant") {
        params.tenant = next("--tenant");
      } else if (arg == "--app") {
        params.app = next("--app");
      } else if (arg == "--omit-view") {
        params.omit_views.push_back(next("--omit-view"));
      } else if (arg == "--trace") {
        params.trace = true;
      } else if (arg == "--trace-id") {
        params.trace_id = next("--trace-id");
      } else {
        return Usage(argv[0]);
      }
    }
    if (params.tenant.empty() || params.app.empty()) {
      return Usage(argv[0]);
    }
    if (!client.Analyze(params, &resp, &error)) {
      std::fprintf(stderr, "noctua-cli: %s\n", error.c_str());
      return 1;
    }
  } else if (command == "metrics") {
    bool check = false;
    std::string format;
    for (; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--check") {
        check = true;
      } else if (arg == "--format") {
        format = next("--format");
      } else {
        return Usage(argv[0]);
      }
    }
    if (!format.empty() && format != "json" && format != "prometheus") {
      std::fprintf(stderr, "--format expects json or prometheus, got \"%s\"\n",
                   format.c_str());
      return Usage(argv[0]);
    }
    std::string target = "/metrics";
    if (!format.empty()) {
      target += "?format=" + format;
    }
    if (!client.Get(target, &resp, &error)) {
      std::fprintf(stderr, "noctua-cli: %s\n", error.c_str());
      return 1;
    }
    if (check && resp.status == 200) {
      std::fputs(resp.body.c_str(), stdout);
      return format == "prometheus" ? CheckPrometheusBody(resp.body)
                                    : CheckMetricsBody(resp.body);
    }
  } else if (command == "healthz") {
    if (!client.Get("/healthz", &resp, &error)) {
      std::fprintf(stderr, "noctua-cli: %s\n", error.c_str());
      return 1;
    }
  } else if (command == "shutdown") {
    if (!client.Post("/shutdown", "", &resp, &error)) {
      std::fprintf(stderr, "noctua-cli: %s\n", error.c_str());
      return 1;
    }
  } else {
    return Usage(argv[0]);
  }

  std::fputs(resp.body.c_str(), stdout);
  if (resp.status != 200) {
    std::fprintf(stderr, "noctua-cli: HTTP %d\n", resp.status);
    return 1;
  }
  return 0;
}
