// Noctua-as-a-service: a long-lived daemon wrapping one noctua::Engine behind the HTTP
// subset in protocol.h, on a loopback TCP socket.
//
// Architecture (one Server = one Engine = one artifact root):
//
//   accept thread   only accepts. Each new fd goes into a bounded connection backlog
//                   (overflow answered 503 and closed), so a client that stalls
//                   mid-request can never wedge admission: the accept thread does no
//                   socket reads at all.
//   reader threads  pop raw fds, read + parse the request (bounded by the per-socket
//                   io timeout), and route it. Control-plane endpoints (/healthz,
//                   /metrics, /shutdown) are answered right there — they never queue
//                   behind analysis, so they stay responsive while the engine is
//                   saturated. Analysis requests go through admission control: a
//                   bounded queue in front of a fixed worker pool. A full queue is
//                   answered 503 immediately (fail-fast: the client retries or sheds
//                   load; the daemon never builds an unbounded backlog).
//   worker threads  pop admitted requests and run them on the shared Engine. The
//                   in-flight cap is the worker count; the Engine serializes its verify
//                   stage internally, so workers mostly pipeline analysis against
//                   verification.
//
// Endpoints:
//
//   POST /v1/analyze   {"tenant": "...", "app": "<registry name>",
//                       "omit_views": ["View", ...]?}    — omit_views models a revision
//     -> 200 {"app", "tenant", "mode": "run"|"incremental", "cold", "pairs",
//             "num_restrictions", "restrictions": ["(P, Q)", ...], "seconds", ...}
//     -> 400 on malformed JSON / unknown app / invalid tenant; 503 when admission-full.
//     With an artifact root configured, each (tenant, app) gets its own on-disk store
//     under <root>/<tenant>/<app> — tenants can never read or warm each other's
//     artifacts. Without one, runs are in-memory and warmth comes from the engine's
//     shared verdict cache.
//   GET /metrics       live obs counters/histograms + admission + engine state, as
//                      strict RFC 8259 JSON (machine-checked in CI by the json.h parser).
//   GET /healthz       {"status": "ok"}
//   POST /shutdown     acknowledges, then stops accepting; Wait() returns.
#ifndef SRC_SERVICE_SERVER_H_
#define SRC_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/log.h"
#include "src/obs/obs.h"
#include "src/pipeline/engine.h"
#include "src/service/protocol.h"

namespace noctua::service {

struct ServiceOptions {
  std::string host = "127.0.0.1";
  // 0 = ephemeral: the kernel picks a free port, readable via Server::port() (and
  // printed by noctua-serve as "listening on <host>:<port>").
  int port = 0;
  // In-flight cap: number of analysis requests executing concurrently.
  int workers = 2;
  // Admission bound: analysis requests accepted-but-not-yet-started. One more request
  // beyond workers + max_queue is answered 503 without touching the engine.
  size_t max_queue = 8;
  // Reader-pool width: connections being read/parsed concurrently. A stalled client
  // occupies one reader for at most io_timeout_seconds; the control plane needs only
  // one free reader to answer.
  int readers = 2;
  // Install a process collector at Start so /metrics serves live counters. Skipped
  // (without error) when some outer owner already installed one.
  bool metrics = true;
  // Per-connection socket receive/send timeout, so a stalled client cannot wedge the
  // accept thread or a worker.
  int io_timeout_seconds = 10;
  // Structured event log: minimum level and sink (empty = stderr). The default kWarn
  // keeps embedded servers (tests, benches) quiet; noctua-serve lowers it to kInfo so
  // the daemon writes per-request access-log lines.
  obs::LogLevel log_level = obs::LogLevel::kWarn;
  std::string log_file;
  // Requests slower than this (worker execution time) emit a rate-limited kWarn
  // "slow_request" line; 0 disables the slow log.
  int slow_ms = 1000;
  // The engine this server owns; artifact_root inside it enables per-tenant stores.
  EngineConfig engine;
};

class Server {
 public:
  explicit Server(ServiceOptions options);
  ~Server();  // calls Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and starts the accept + worker threads. False (with *error set)
  // when the socket cannot be bound.
  bool Start(std::string* error);

  // Blocks until a /shutdown request arrives or Stop() is called from another thread.
  void Wait();

  // Stops accepting, drains admitted requests, joins all threads. Idempotent.
  void Stop();

  // The bound port; valid after Start succeeded.
  int port() const { return port_; }
  const ServiceOptions& options() const { return options_; }
  Engine& engine() { return *engine_; }

  // The /metrics response bodies. Exposed for tests (strict-JSON round-trip and
  // Prometheus exposition checks).
  std::string MetricsJson() const;
  std::string MetricsPrometheus() const;

 private:
  struct Job {
    int fd = -1;
    HttpRequest req;
    int64_t enqueue_us = 0;  // obs::SteadyNowMicros() at admission
  };

  void AcceptLoop();
  void ReaderLoop();
  void WorkerLoop();
  void HandleConnection(int fd);
  HttpResponse HandleAnalyze(const HttpRequest& req, int64_t enqueue_us,
                             int64_t dequeue_us);
  void RequestShutdown();

  ServiceOptions options_;
  std::unique_ptr<Engine> engine_;
  std::optional<obs::Collector> collector_;

  // Atomic: Stop() resets it while the accept thread re-reads it per accept().
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> readers_;
  std::vector<std::thread> workers_;
  size_t conn_backlog_ = 0;  // bound on conn_queue_, fixed at Start

  mutable std::mutex queue_mu_;  // mutable: MetricsJson (const) reports queue depth
  std::condition_variable queue_cv_;  // wakes workers (queue_)
  std::condition_variable conn_cv_;   // wakes readers (conn_queue_)
  std::deque<Job> queue_;      // admitted analysis requests, guarded by queue_mu_
  std::deque<int> conn_queue_;  // accepted-but-unread fds, guarded by queue_mu_
  bool stopping_ = false;  // guarded by queue_mu_

  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  bool shutdown_requested_ = false;  // guarded by wait_mu_

  std::atomic<bool> started_{false};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<int> in_flight_{0};

  // Internal trace-id sequence: each analyze request gets the next value as its span
  // trace id; the external id (header-supplied or "ntr-<seq>") rides the response.
  std::atomic<uint64_t> trace_seq_{0};
  obs::EventLog log_;
  obs::LogRateLimiter slow_limiter_{/*per_second=*/1.0, /*burst=*/5.0};
};

}  // namespace noctua::service

#endif  // SRC_SERVICE_SERVER_H_
