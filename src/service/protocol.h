// The wire protocol of Noctua-as-a-service: a deliberately small HTTP/1.1 subset over a
// local TCP socket.
//
// Why HTTP and not a bespoke framed protocol: the daemon's consumers are the bundled
// noctua-cli, tests, and ad-hoc curl during CI smoke checks — being curl-able is worth
// more than saving a few header bytes on a loopback socket. The subset is exactly what
// those consumers need:
//
//   * requests:  one method + target + headers + optional Content-Length body
//   * responses: status line + Content-Type/Content-Length/Connection headers + body
//   * one request per connection (the server always answers Connection: close)
//   * no chunked transfer, no keep-alive, no continuation lines, no TLS
//
// Inputs are bounded (kMaxHeaderBytes / kMaxBodyBytes) and reads are timeout-guarded by
// the caller (the server sets SO_RCVTIMEO), so a stalled or hostile client cannot wedge
// a handler thread forever. All parsing is strict: a malformed request is an error, not
// a guess.
#ifndef SRC_SERVICE_PROTOCOL_H_
#define SRC_SERVICE_PROTOCOL_H_

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace noctua::service {

// Upper bounds on one message's header block and body. Requests carry small JSON
// descriptors and responses carry restriction sets — megabytes is already generous.
inline constexpr size_t kMaxHeaderBytes = 16 * 1024;
inline constexpr size_t kMaxBodyBytes = 4 * 1024 * 1024;

struct HttpRequest {
  std::string method;   // "GET", "POST"
  std::string target;   // origin-form, e.g. "/v1/analyze"
  std::map<std::string, std::string> headers;  // keys lowercased
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

// Standard reason phrase for the handful of statuses the service emits.
const char* StatusText(int status);

// Reads one request from `fd` (blocking; honors the socket's receive timeout). Returns
// false — with a human-readable reason in *error — on EOF, timeout, a malformed message,
// or a size-bound violation.
bool ReadHttpRequest(int fd, HttpRequest* req, std::string* error);

// Writes one response (adds Content-Length and Connection: close). False on I/O error.
bool WriteHttpResponse(int fd, const HttpResponse& resp);

// Client-side halves of the same subset. `extra_headers` are emitted verbatim after
// the fixed ones (the client uses this for x-noctua-trace).
bool WriteHttpRequest(int fd, const std::string& method, const std::string& target,
                      const std::string& host, const std::string& body,
                      const std::vector<std::pair<std::string, std::string>>&
                          extra_headers = {});
bool ReadHttpResponse(int fd, HttpResponse* resp, std::string* error);

// Splits an origin-form target at the first '?': "/metrics?format=x" -> path
// "/metrics", query "format=x" (query is "" when absent). No %-decoding — the service
// only routes on literal ASCII paths and parameter values.
void SplitTarget(const std::string& target, std::string* path, std::string* query);

// Value of `key` in a "k=v&k2=v2" query string; "" when absent.
std::string QueryParam(const std::string& query, const std::string& key);

// JSON string literal (quoted + escaped) — shorthand over obs::JsonEscape for the
// handful of handlers that assemble response bodies by hand.
std::string JsonStr(const std::string& s);

}  // namespace noctua::service

#endif  // SRC_SERVICE_PROTOCOL_H_
