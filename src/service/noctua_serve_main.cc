// noctua-serve: the Noctua-as-a-service daemon. Binds a loopback HTTP endpoint, owns
// one long-lived Engine, and serves analysis requests until /shutdown (or SIGTERM-ish
// termination by the supervisor).
//
//   noctua-serve [--host H] [--port P] [--workers N] [--queue Q] [--readers R]
//                [--verdict-cache C] [--artifact-root DIR] [--no-metrics]
//                [--log-file PATH] [--log-level debug|info|warn|error] [--slow-ms N]
//
// Prints exactly one line "listening on H:P" to stdout once ready (scripts grab the
// ephemeral port from it), then blocks. Engine knobs (threads, solver, toggles) come
// from the usual NOCTUA_* environment variables, snapshotted once at startup.
//
// The daemon defaults to --log-level info: one JSON access-log line per analysis
// request (trace id, tenant, status, queue-wait, service-time) on stderr or into
// --log-file, plus rate-limited "slow_request" warnings above --slow-ms.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/pipeline/session.h"
#include "src/service/server.h"
#include "src/support/env.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--workers N] [--queue Q] [--readers R]\n"
               "          [--verdict-cache C] [--artifact-root DIR] [--no-metrics]\n"
               "          [--log-file PATH] [--log-level debug|info|warn|error]"
               " [--slow-ms N]\n",
               argv0);
  return 2;
}

// The long-lived daemon's default bound on the engine's shared verdict cache. The
// unbounded (0) setting is reserved for throwaway per-call engines; a server that ran
// forever with it would grow without limit. Overridable with --verdict-cache or
// NOCTUA_VERDICT_CACHE (either may say 0 to explicitly opt back into unbounded).
constexpr size_t kDefaultVerdictCacheCapacity = 1 << 16;

}  // namespace

int main(int argc, char** argv) {
  noctua::service::ServiceOptions options;
  options.engine = noctua::EngineConfig::FromEnv();
  // A daemon is operated, not embedded: access-log lines on by default (the embedded
  // Server default is the quiet kWarn).
  options.log_level = noctua::obs::LogLevel::kInfo;

  // The daemon honors a NOCTUA_VERDICT_CACHE from the environment (already folded into
  // the FromEnv snapshot above); otherwise, unlike throwaway engines, it must not run
  // unbounded — see kDefaultVerdictCacheCapacity.
  bool verdict_cache_chosen = noctua::env::IsSet("NOCTUA_VERDICT_CACHE");

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    // Strict flag-value parse, same discipline as the env knobs: a malformed or
    // out-of-range value is a usage error, never a silent 0.
    auto next_long = [&](const char* flag, long lo, long hi) -> long {
      const char* raw = next(flag);
      long n = 0;
      if (!noctua::env::ParseLong(raw, &n) || n < lo || n > hi) {
        std::fprintf(stderr, "%s expects an integer in [%ld, %ld], got \"%s\"\n", flag, lo,
                     hi, raw);
        std::exit(Usage(argv[0]));
      }
      return n;
    };
    if (arg == "--host") {
      options.host = next("--host");
    } else if (arg == "--port") {
      options.port = static_cast<int>(next_long("--port", 0, 65535));
    } else if (arg == "--workers") {
      options.workers = static_cast<int>(next_long("--workers", 1, 1024));
    } else if (arg == "--queue") {
      options.max_queue = static_cast<size_t>(next_long("--queue", 0, 1L << 20));
    } else if (arg == "--readers") {
      options.readers = static_cast<int>(next_long("--readers", 1, 1024));
    } else if (arg == "--verdict-cache") {
      options.engine.verdict_cache_capacity = static_cast<size_t>(
          next_long("--verdict-cache", 0, noctua::env::kMaxVerdictCacheEntries));
      verdict_cache_chosen = true;
    } else if (arg == "--artifact-root") {
      options.engine.artifact_root = next("--artifact-root");
    } else if (arg == "--no-metrics") {
      options.metrics = false;
    } else if (arg == "--log-file") {
      options.log_file = next("--log-file");
    } else if (arg == "--log-level") {
      const char* raw = next("--log-level");
      if (!noctua::obs::ParseLogLevel(raw, &options.log_level)) {
        std::fprintf(stderr, "--log-level expects debug|info|warn|error, got \"%s\"\n",
                     raw);
        return Usage(argv[0]);
      }
    } else if (arg == "--slow-ms") {
      options.slow_ms = static_cast<int>(next_long("--slow-ms", 0, 1L << 30));
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }

  if (!verdict_cache_chosen) {
    options.engine.verdict_cache_capacity = kDefaultVerdictCacheCapacity;
  }

  // A daemon with persistence wants the fail-fast create-and-probe before it starts
  // accepting: a misconfigured store should stop the server, not silently cold-run
  // every tenant forever. (When the root came from the environment, ArtifactDirFromEnv
  // performed this already; re-probing is harmless.)
  if (!options.engine.artifact_root.empty()) {
    setenv("NOCTUA_ARTIFACT_DIR", options.engine.artifact_root.c_str(), 1);
    options.engine.artifact_root = noctua::ArtifactDirFromEnv();
  }

  noctua::service::Server server(options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "noctua-serve: %s\n", error.c_str());
    return 1;
  }
  std::printf("listening on %s:%d\n", server.options().host.c_str(), server.port());
  std::fflush(stdout);
  server.Wait();
  server.Stop();
  std::printf("shut down cleanly\n");
  return 0;
}
