// noctua-serve: the Noctua-as-a-service daemon. Binds a loopback HTTP endpoint, owns
// one long-lived Engine, and serves analysis requests until /shutdown (or SIGTERM-ish
// termination by the supervisor).
//
//   noctua-serve [--host H] [--port P] [--workers N] [--queue Q]
//                [--artifact-root DIR] [--no-metrics]
//
// Prints exactly one line "listening on H:P" to stdout once ready (scripts grab the
// ephemeral port from it), then blocks. Engine knobs (threads, solver, toggles) come
// from the usual NOCTUA_* environment variables, snapshotted once at startup.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/pipeline/session.h"
#include "src/service/server.h"
#include "src/support/env.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--workers N] [--queue Q]\n"
               "          [--artifact-root DIR] [--no-metrics]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  noctua::service::ServiceOptions options;
  options.engine = noctua::EngineConfig::FromEnv();

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      options.host = next("--host");
    } else if (arg == "--port") {
      options.port = std::atoi(next("--port"));
    } else if (arg == "--workers") {
      options.workers = std::atoi(next("--workers"));
    } else if (arg == "--queue") {
      options.max_queue = static_cast<size_t>(std::atol(next("--queue")));
    } else if (arg == "--artifact-root") {
      options.engine.artifact_root = next("--artifact-root");
    } else if (arg == "--no-metrics") {
      options.metrics = false;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }

  // A daemon with persistence wants the fail-fast create-and-probe before it starts
  // accepting: a misconfigured store should stop the server, not silently cold-run
  // every tenant forever. (When the root came from the environment, ArtifactDirFromEnv
  // performed this already; re-probing is harmless.)
  if (!options.engine.artifact_root.empty()) {
    setenv("NOCTUA_ARTIFACT_DIR", options.engine.artifact_root.c_str(), 1);
    options.engine.artifact_root = noctua::ArtifactDirFromEnv();
  }

  noctua::service::Server server(options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "noctua-serve: %s\n", error.c_str());
    return 1;
  }
  std::printf("listening on %s:%d\n", server.options().host.c_str(), server.port());
  std::fflush(stdout);
  server.Wait();
  server.Stop();
  std::printf("shut down cleanly\n");
  return 0;
}
