// Blocking client for the noctua-serve daemon: one TCP connection per request (the
// server always answers Connection: close), strict parsing of what comes back. Shared
// by noctua-cli, the service tests, and the bench/service_sweep load generator.
#ifndef SRC_SERVICE_CLIENT_H_
#define SRC_SERVICE_CLIENT_H_

#include <string>
#include <vector>

#include "src/service/protocol.h"

namespace noctua::service {

// One /v1/analyze request, fully specified. `trace` asks the server to return the
// request's span tree inline ("trace" key of the response); `trace_id` is sent as the
// x-noctua-trace header when non-empty, otherwise the server generates one (the
// response's "trace_id" field carries whichever was used).
struct AnalyzeParams {
  std::string tenant;
  std::string app;
  std::vector<std::string> omit_views;
  bool trace = false;
  std::string trace_id;
};

class Client {
 public:
  Client(std::string host, int port) : host_(std::move(host)), port_(port) {}

  // One round trip: connect, send, read the full response. False (with *error) on
  // connect/send/parse failure — an HTTP error status is NOT a transport failure; the
  // caller inspects resp->status.
  bool Get(const std::string& target, HttpResponse* resp, std::string* error);
  bool Post(const std::string& target, const std::string& body, HttpResponse* resp,
            std::string* error);

  // POST /v1/analyze with the given tenant/app/revision. Returns the transport result;
  // the raw JSON body (success or error) lands in *resp.
  bool Analyze(const std::string& tenant, const std::string& app,
               const std::vector<std::string>& omit_views, HttpResponse* resp,
               std::string* error);
  bool Analyze(const AnalyzeParams& params, HttpResponse* resp, std::string* error);

  const std::string& host() const { return host_; }
  int port() const { return port_; }

 private:
  std::string host_;
  int port_ = 0;
};

// The JSON body Analyze sends; exposed so callers can log or replay requests.
std::string AnalyzeRequestBody(const std::string& tenant, const std::string& app,
                               const std::vector<std::string>& omit_views);
std::string AnalyzeRequestBody(const AnalyzeParams& params);

}  // namespace noctua::service

#endif  // SRC_SERVICE_CLIENT_H_
