#include "src/service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace noctua::service {

namespace {

int Connect(const std::string& host, int port, std::string* error) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "invalid host address: " + host;
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = std::string("connect to ") + host + ":" + std::to_string(port) + ": " +
             std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

bool RoundTrip(const std::string& host, int port, const std::string& method,
               const std::string& target, const std::string& body, HttpResponse* resp,
               std::string* error,
               const std::vector<std::pair<std::string, std::string>>& extra_headers =
                   {}) {
  int fd = Connect(host, port, error);
  if (fd < 0) {
    return false;
  }
  bool ok = WriteHttpRequest(fd, method, target, host + ":" + std::to_string(port), body,
                             extra_headers) &&
            ReadHttpResponse(fd, resp, error);
  if (!ok && error->empty()) {
    *error = "request I/O failed";
  }
  ::close(fd);
  return ok;
}

}  // namespace

bool Client::Get(const std::string& target, HttpResponse* resp, std::string* error) {
  return RoundTrip(host_, port_, "GET", target, "", resp, error);
}

bool Client::Post(const std::string& target, const std::string& body, HttpResponse* resp,
                  std::string* error) {
  return RoundTrip(host_, port_, "POST", target, body, resp, error);
}

std::string AnalyzeRequestBody(const std::string& tenant, const std::string& app,
                               const std::vector<std::string>& omit_views) {
  AnalyzeParams params;
  params.tenant = tenant;
  params.app = app;
  params.omit_views = omit_views;
  return AnalyzeRequestBody(params);
}

std::string AnalyzeRequestBody(const AnalyzeParams& params) {
  std::string body =
      "{\"tenant\": " + JsonStr(params.tenant) + ", \"app\": " + JsonStr(params.app);
  if (!params.omit_views.empty()) {
    body += ", \"omit_views\": [";
    for (size_t i = 0; i < params.omit_views.size(); ++i) {
      body += std::string(i ? ", " : "") + JsonStr(params.omit_views[i]);
    }
    body += "]";
  }
  if (params.trace) {
    body += ", \"trace\": true";
  }
  body += "}";
  return body;
}

bool Client::Analyze(const std::string& tenant, const std::string& app,
                     const std::vector<std::string>& omit_views, HttpResponse* resp,
                     std::string* error) {
  AnalyzeParams params;
  params.tenant = tenant;
  params.app = app;
  params.omit_views = omit_views;
  return Analyze(params, resp, error);
}

bool Client::Analyze(const AnalyzeParams& params, HttpResponse* resp,
                     std::string* error) {
  std::vector<std::pair<std::string, std::string>> headers;
  if (!params.trace_id.empty()) {
    headers.emplace_back("x-noctua-trace", params.trace_id);
  }
  return RoundTrip(host_, port_, "POST", "/v1/analyze", AnalyzeRequestBody(params), resp,
                   error, headers);
}

}  // namespace noctua::service
