#include "src/service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <set>

#include "src/apps/apps.h"
#include "src/obs/json.h"
#include "src/obs/prom.h"
#include "src/support/stopwatch.h"

namespace noctua::service {

namespace {

void SetSocketTimeouts(int fd, int seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

HttpResponse ErrorResponse(int status, const std::string& message) {
  HttpResponse resp;
  resp.status = status;
  resp.body = "{\"error\": " + JsonStr(message) + "}\n";
  return resp;
}

// Builds the registry app named `name`, minus `omit` views (a "revision" of the app).
// Returns false when the name is unknown or an omitted view does not exist.
bool BuildRevision(const std::string& name, const std::set<std::string>& omit,
                   app::App* out, std::string* error) {
  for (const apps::AppEntry& entry : apps::EvaluatedApps()) {
    if (entry.name != name) {
      continue;
    }
    app::App base = entry.make();
    for (const std::string& v : omit) {
      bool found = false;
      for (const app::View& view : base.views()) {
        found = found || view.name == v;
      }
      if (!found) {
        *error = "app \"" + name + "\" has no view \"" + v + "\"";
        return false;
      }
    }
    if (omit.empty()) {
      *out = std::move(base);
      return true;
    }
    app::App rev(base.name(), base.source_file());
    rev.schema() = base.schema();
    for (const app::View& view : base.views()) {
      if (omit.count(view.name) == 0) {
        rev.AddView(view.name, view.fn, view.fingerprint);
      }
    }
    *out = std::move(rev);
    return true;
  }
  *error = "unknown app \"" + name + "\" — not in the evaluated-apps registry";
  return false;
}

std::string HistJson(const obs::HistSummary& h) {
  return "{\"count\": " + std::to_string(h.count) + ", \"sum\": " + std::to_string(h.sum) +
         ", \"min\": " + std::to_string(h.min) + ", \"max\": " + std::to_string(h.max) +
         ", \"p50\": " + std::to_string(h.p50) + ", \"p95\": " + std::to_string(h.p95) +
         ", \"p99\": " + std::to_string(h.p99) + "}";
}

// An external trace id as the service accepts it in x-noctua-trace: short, printable,
// and safe to echo into JSON, span args, and log lines without further escaping rules.
bool ValidTraceId(const std::string& id) {
  if (id.empty() || id.size() > 64) {
    return false;
  }
  for (char c : id) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
              c == '.' || c == '_' || c == ':' || c == '-';
    if (!ok) {
      return false;
    }
  }
  return true;
}

}  // namespace

Server::Server(ServiceOptions options) : options_(std::move(options)) {
  if (options_.workers < 1) {
    options_.workers = 1;
  }
  if (options_.readers < 1) {
    options_.readers = 1;
  }
  // Unread connections the accept thread may park ahead of the readers. Sized so the
  // analysis queue plus every reader/worker can be fed with slack for the control
  // plane; past this the daemon is genuinely overrun and fail-fast 503 is the answer.
  conn_backlog_ = options_.max_queue + static_cast<size_t>(options_.workers) +
                  static_cast<size_t>(options_.readers) + 16;
  engine_ = std::make_unique<Engine>(options_.engine);
}

Server::~Server() { Stop(); }

bool Server::Start(std::string* error) {
  if (!log_.Configure(options_.log_level, options_.log_file, error)) {
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    *error = "invalid host address: " + options_.host;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = std::string("bind: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 64) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  if (options_.metrics && !obs::Active()) {
    collector_.emplace(obs::ObsOptions{/*enabled=*/true, /*trace_out=*/"",
                                       /*top_slowest_pairs=*/10});
  }

  started_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  for (int i = 0; i < options_.readers; ++i) {
    readers_.emplace_back([this] { ReaderLoop(); });
  }
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return true;
}

void Server::AcceptLoop() {
  // Accept only — never read. A stalled client costs a reader at most the io timeout;
  // it can never block admission of other connections or the control plane.
  while (true) {
    int fd = ::accept(listen_fd_.load(std::memory_order_relaxed), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // listener closed by Stop()
    }
    SetSocketTimeouts(fd, options_.io_timeout_seconds);
    bool refuse_stopping = false;
    bool refuse_overrun = false;
    {
      std::lock_guard<std::mutex> lk(queue_mu_);
      if (stopping_) {
        refuse_stopping = true;
      } else if (conn_queue_.size() >= conn_backlog_) {
        refuse_overrun = true;
      } else {
        conn_queue_.push_back(fd);
      }
    }
    if (refuse_stopping) {
      WriteHttpResponse(fd, ErrorResponse(503, "server shutting down"));
      ::close(fd);
      return;
    }
    if (refuse_overrun) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      obs::Add(obs::Counter::kServiceRejected);
      WriteHttpResponse(fd, ErrorResponse(503, "connection backlog full — retry later"));
      ::close(fd);
      continue;
    }
    conn_cv_.notify_one();
  }
}

void Server::ReaderLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      conn_cv_.wait(lk, [this] { return stopping_ || !conn_queue_.empty(); });
      if (stopping_) {
        // Refuse everything still parked; Stop() joins us before draining workers, so
        // an fd refused here is never half-admitted.
        std::deque<int> leftover;
        leftover.swap(conn_queue_);
        lk.unlock();
        for (int parked : leftover) {
          WriteHttpResponse(parked, ErrorResponse(503, "server shutting down"));
          ::close(parked);
        }
        return;
      }
      fd = conn_queue_.front();
      conn_queue_.pop_front();
    }
    HandleConnection(fd);
  }
}

void Server::HandleConnection(int fd) {
  HttpRequest req;
  std::string error;
  if (!ReadHttpRequest(fd, &req, &error)) {
    WriteHttpResponse(fd, ErrorResponse(400, error));
    ::close(fd);
    return;
  }

  // Control plane: answered inline so health and metrics stay responsive under load.
  std::string path;
  std::string query;
  SplitTarget(req.target, &path, &query);
  if (path == "/healthz") {
    if (req.method != "GET") {
      WriteHttpResponse(fd, ErrorResponse(405, "use GET"));
    } else {
      HttpResponse resp;
      resp.body = "{\"status\": \"ok\"}\n";
      WriteHttpResponse(fd, resp);
    }
    ::close(fd);
    return;
  }
  if (path == "/metrics") {
    if (req.method != "GET") {
      WriteHttpResponse(fd, ErrorResponse(405, "use GET"));
    } else {
      std::string format = QueryParam(query, "format");
      if (format.empty() || format == "json") {
        HttpResponse resp;
        resp.body = MetricsJson();
        WriteHttpResponse(fd, resp);
      } else if (format == "prometheus") {
        HttpResponse resp;
        resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
        resp.body = MetricsPrometheus();
        WriteHttpResponse(fd, resp);
      } else {
        WriteHttpResponse(
            fd, ErrorResponse(400, "unknown metrics format \"" + format +
                                       "\" — use json or prometheus"));
      }
    }
    ::close(fd);
    return;
  }
  if (path == "/shutdown") {
    if (req.method != "POST") {
      WriteHttpResponse(fd, ErrorResponse(405, "use POST"));
      ::close(fd);
      return;
    }
    HttpResponse resp;
    resp.body = "{\"status\": \"shutting down\"}\n";
    WriteHttpResponse(fd, resp);
    ::close(fd);
    RequestShutdown();
    return;
  }
  if (path != "/v1/analyze") {
    WriteHttpResponse(fd, ErrorResponse(404, "no such endpoint: " + req.target));
    ::close(fd);
    return;
  }
  if (req.method != "POST") {
    WriteHttpResponse(fd, ErrorResponse(405, "use POST"));
    ::close(fd);
    return;
  }

  // Admission control: fail fast when the queue is full rather than building an
  // unbounded backlog in front of a saturated engine.
  bool refuse_stopping = false;
  bool refuse_full = false;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    if (stopping_) {
      // Stop() raced this read: the workers are draining and must not be handed new
      // work after they observe an empty queue.
      refuse_stopping = true;
    } else if (queue_.size() >= options_.max_queue) {
      refuse_full = true;
    } else {
      admitted_.fetch_add(1, std::memory_order_relaxed);
      queue_.push_back(Job{fd, std::move(req), obs::SteadyNowMicros()});
    }
  }
  if (refuse_stopping) {
    WriteHttpResponse(fd, ErrorResponse(503, "server shutting down"));
    ::close(fd);
    return;
  }
  if (refuse_full) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    obs::Add(obs::Counter::kServiceRejected);
    WriteHttpResponse(
        fd, ErrorResponse(503, "admission queue full (" +
                                   std::to_string(options_.max_queue) + ") — retry later"));
    ::close(fd);
    return;
  }
  queue_cv_.notify_one();
}

void Server::WorkerLoop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    HttpResponse resp = HandleAnalyze(job.req, job.enqueue_us, obs::SteadyNowMicros());
    WriteHttpResponse(job.fd, resp);
    ::close(job.fd);
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
  }
}

HttpResponse Server::HandleAnalyze(const HttpRequest& req, int64_t enqueue_us,
                                   int64_t dequeue_us) {
  Stopwatch watch;
  obs::Add(obs::Counter::kServiceRequests);
  const uint64_t seq = trace_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  const int64_t queue_wait_us = dequeue_us > enqueue_us ? dequeue_us - enqueue_us : 0;

  // Filled in as parsing progresses so failure paths log whatever is known so far.
  std::string tenant;
  std::string app_name;
  std::string trace_id = "ntr-" + std::to_string(seq);

  auto access_log = [&](int status) {
    log_.Log(obs::LogLevel::kInfo, "request",
             {{"trace_id", trace_id},
              {"tenant", tenant},
              {"app", app_name},
              {"status", status},
              {"queue_wait_us", queue_wait_us},
              {"service_us", static_cast<int64_t>(watch.ElapsedSeconds() * 1e6)}});
  };
  auto fail = [&](const std::string& message) {
    obs::Add(obs::Counter::kServiceRequestsFailed);
    obs::AddLabeled(obs::Counter::kServiceRequestsFailed,
                    obs::MetricLabels{tenant, app_name, "error"});
    access_log(400);
    return ErrorResponse(400, message);
  };

  if (auto it = req.headers.find("x-noctua-trace"); it != req.headers.end()) {
    if (!ValidTraceId(it->second)) {
      return fail(
          "invalid x-noctua-trace header — use 1-64 chars of [A-Za-z0-9._:-]");
    }
    trace_id = it->second;
  }

  std::string parse_error;
  obs::JsonPtr doc = obs::ParseJson(req.body, &parse_error);
  if (doc == nullptr || !doc->is_object()) {
    return fail(doc == nullptr ? "malformed JSON body: " + parse_error
                               : "request body must be a JSON object");
  }

  obs::JsonPtr tenant_v = doc->Get("tenant");
  obs::JsonPtr app_v = doc->Get("app");
  if (tenant_v == nullptr || !tenant_v->is_string() || app_v == nullptr ||
      !app_v->is_string()) {
    return fail("request must carry string fields \"tenant\" and \"app\"");
  }
  tenant = tenant_v->AsString();
  app_name = app_v->AsString();
  if (!Engine::ValidTenantName(tenant)) {
    return fail("invalid tenant name \"" + tenant +
                "\" — use [A-Za-z0-9._-], no leading dot");
  }

  std::set<std::string> omit;
  if (obs::JsonPtr omit_v = doc->Get("omit_views"); omit_v != nullptr) {
    if (!omit_v->is_array()) {
      return fail("\"omit_views\" must be an array of view names");
    }
    for (const obs::JsonPtr& item : omit_v->AsArray()) {
      if (!item->is_string()) {
        return fail("\"omit_views\" must be an array of view names");
      }
      omit.insert(item->AsString());
    }
  }

  bool want_trace = false;
  if (obs::JsonPtr trace_v = doc->Get("trace"); trace_v != nullptr) {
    if (!trace_v->is_bool()) {
      return fail("\"trace\" must be a boolean");
    }
    want_trace = trace_v->AsBool();
  }

  app::App app("", "");
  std::string build_error;
  if (!BuildRevision(app_name, omit, &app, &build_error)) {
    return fail(build_error);
  }

  // Request scope: from here on, every span this thread (and the pool workers running
  // this request's pairs) closes is stamped with `seq` — and, when the caller asked for
  // an inline trace, copied into `capture`. The queue wait becomes the first span of
  // the tree, back-dated to its admission timestamp.
  obs::TraceCapture capture;
  obs::ScopedTraceContext trace_scope(seq, want_trace ? &capture : nullptr);
  obs::RecordSpan("queue_wait", obs::kCatService, enqueue_us, dequeue_us);
  obs::Observe(obs::Hist::kServiceQueueWaitMicros,
               static_cast<uint64_t>(queue_wait_us));

  const std::string store_dir = engine_->TenantStoreDir(tenant, app_name);
  std::string mode;
  bool cold = true;
  PipelineResult run;
  {
    // Nested scope: the request span must close before the capture is serialized.
    std::string span_name;
    if (obs::Enabled()) {
      span_name = "analyze:" + tenant + ":" + app_name;
    }
    obs::ScopedSpan span(std::move(span_name), obs::kCatService);
    if (store_dir.empty()) {
      mode = "run";
      run = engine_->Run(app);
    } else {
      mode = "incremental";
      IncrementalResult inc = engine_->RunIncremental(app, store_dir);
      cold = inc.cold;
      run = std::move(inc.run);
    }
  }

  std::string body = "{\"app\": " + JsonStr(app_name) + ", \"tenant\": " + JsonStr(tenant) +
                     ", \"mode\": " + JsonStr(mode) +
                     ", \"cold\": " + (cold ? "true" : "false") +
                     ", \"store\": " + JsonStr(store_dir) +
                     ", \"trace_id\": " + JsonStr(trace_id) +
                     ", \"pairs\": " + std::to_string(run.restrictions.num_checks()) +
                     ", \"num_restrictions\": " +
                     std::to_string(run.restrictions.num_restrictions()) +
                     ", \"restrictions\": [";
  bool first = true;
  for (const std::string& name : run.restrictions.RestrictedPairNames()) {
    body += std::string(first ? "" : ", ") + JsonStr(name);
    first = false;
  }
  const verifier::ReportStats& st = run.restrictions.stats;
  body += "], \"stats\": {\"solver_checks\": " + std::to_string(st.solver_checks) +
          ", \"cache_hits\": " + std::to_string(st.cache_hits) +
          ", \"pairs_replayed\": " + std::to_string(st.pairs_replayed) +
          ", \"pairs_computed\": " + std::to_string(st.pairs_computed) +
          ", \"threads\": " + std::to_string(st.threads_used) +
          "}, \"seconds\": " + std::to_string(run.total_seconds);
  if (want_trace) {
    body += ", \"trace\": " + capture.ChromeTraceJson(trace_id);
  }
  body += "}\n";

  const uint64_t handle_us = static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6);
  const obs::MetricLabels labels{tenant, app_name, cold ? "cold" : "warm"};
  obs::Add(obs::Counter::kServiceRequestsOk);
  obs::AddLabeled(obs::Counter::kServiceRequestsOk, labels);
  obs::Observe(obs::Hist::kServiceRequestMicros,
               handle_us + static_cast<uint64_t>(queue_wait_us));
  obs::ObserveLabeled(obs::Hist::kServiceRequestMicros, labels,
                      handle_us + static_cast<uint64_t>(queue_wait_us));
  obs::Observe(obs::Hist::kServiceHandleMicros, handle_us);
  obs::ObserveLabeled(obs::Hist::kServiceHandleMicros, labels, handle_us);
  obs::ObserveLabeled(obs::Hist::kServiceQueueWaitMicros, labels,
                      static_cast<uint64_t>(queue_wait_us));
  // Verdict provenance per tenant/app: how much of this request was solved fresh vs
  // replayed from the store vs retired by the prefilter. Zero deltas are dropped.
  obs::AddLabeled(obs::Counter::kServiceVerdicts,
                  obs::MetricLabels{tenant, app_name, "computed"}, st.pairs_computed);
  obs::AddLabeled(obs::Counter::kServiceVerdicts,
                  obs::MetricLabels{tenant, app_name, "replayed"}, st.pairs_replayed);
  obs::AddLabeled(obs::Counter::kServiceVerdicts,
                  obs::MetricLabels{tenant, app_name, "prefiltered"}, st.prefiltered);

  access_log(200);
  if (options_.slow_ms > 0 &&
      handle_us >= static_cast<uint64_t>(options_.slow_ms) * 1000 &&
      log_.Enabled(obs::LogLevel::kWarn) && slow_limiter_.Allow()) {
    log_.Log(obs::LogLevel::kWarn, "slow_request",
             {{"trace_id", trace_id},
              {"tenant", tenant},
              {"app", app_name},
              {"service_us", handle_us},
              {"queue_wait_us", queue_wait_us},
              {"slow_ms_threshold", static_cast<int64_t>(options_.slow_ms)},
              {"cold", cold}});
  }

  HttpResponse resp;
  resp.body = std::move(body);
  return resp;
}

std::string Server::MetricsJson() const {
  std::string out = "{\"service\": {";
  out += "\"admitted\": " + std::to_string(admitted_.load(std::memory_order_relaxed));
  out += ", \"rejected\": " + std::to_string(rejected_.load(std::memory_order_relaxed));
  out += ", \"completed\": " + std::to_string(completed_.load(std::memory_order_relaxed));
  out += ", \"in_flight\": " + std::to_string(in_flight_.load(std::memory_order_relaxed));
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    out += ", \"queue_depth\": " + std::to_string(queue_.size());
    out += ", \"conn_queue_depth\": " + std::to_string(conn_queue_.size());
  }
  out += ", \"workers\": " + std::to_string(options_.workers);
  out += ", \"readers\": " + std::to_string(options_.readers);
  out += ", \"max_queue\": " + std::to_string(options_.max_queue);
  out += "}, \"engine\": {";
  out += "\"threads\": " + std::to_string(engine_->pool().threads());
  out += ", \"solver\": " + JsonStr(smt::BackendKindName(engine_->config().solver));
  out += ", \"verdict_cache_entries\": " + std::to_string(engine_->verdicts().size());
  out += ", \"artifact_root\": " + JsonStr(engine_->config().artifact_root);
  out += "}, \"counters\": {";
  for (size_t i = 0; i < static_cast<size_t>(obs::Counter::kNumCounters); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += JsonStr(obs::CounterName(static_cast<obs::Counter>(i))) + ": " +
           std::to_string(obs::LiveCounter(static_cast<obs::Counter>(i)));
  }
  out += "}, \"histograms\": {";
  for (size_t i = 0; i < static_cast<size_t>(obs::Hist::kNumHists); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += JsonStr(obs::HistName(static_cast<obs::Hist>(i))) + ": " +
           HistJson(obs::LiveHistogram(static_cast<obs::Hist>(i)));
  }
  // Per-tenant breakdown: every labeled row as one flat object, deterministic order
  // (metric index, then label tuple). Empty until the first labeled emission.
  out += "}, \"labeled\": {\"counters\": [";
  bool first = true;
  for (const obs::LabeledCounterRow& row : obs::LiveLabeledCounters()) {
    out += std::string(first ? "" : ", ") +
           "{\"name\": " + JsonStr(obs::CounterName(row.counter)) +
           ", \"tenant\": " + JsonStr(row.labels.tenant) +
           ", \"app\": " + JsonStr(row.labels.app) +
           ", \"mode\": " + JsonStr(row.labels.mode) +
           ", \"value\": " + std::to_string(row.value) + "}";
    first = false;
  }
  out += "], \"histograms\": [";
  first = true;
  for (const obs::LabeledHistRow& row : obs::LiveLabeledHistograms()) {
    out += std::string(first ? "" : ", ") +
           "{\"name\": " + JsonStr(obs::HistName(row.hist)) +
           ", \"tenant\": " + JsonStr(row.labels.tenant) +
           ", \"app\": " + JsonStr(row.labels.app) +
           ", \"mode\": " + JsonStr(row.labels.mode) +
           ", \"summary\": " + HistJson(row.summary) + "}";
    first = false;
  }
  out += "]}}\n";
  return out;
}

std::string Server::MetricsPrometheus() const {
  std::vector<obs::PromSample> extras;
  auto gauge = [&](const char* name, const char* help, uint64_t value) {
    obs::PromSample s;
    s.name = std::string("noctua_service_") + name;
    s.help = help;
    s.type = "gauge";
    s.value = value;
    extras.push_back(std::move(s));
  };
  gauge("admitted", "analysis requests admitted to the queue",
        admitted_.load(std::memory_order_relaxed));
  gauge("rejected", "requests refused by admission control",
        rejected_.load(std::memory_order_relaxed));
  gauge("completed", "analysis requests finished",
        completed_.load(std::memory_order_relaxed));
  gauge("in_flight", "analysis requests executing now",
        static_cast<uint64_t>(in_flight_.load(std::memory_order_relaxed)));
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    gauge("queue_depth", "admitted requests waiting for a worker", queue_.size());
  }
  gauge("workers", "worker pool size", static_cast<uint64_t>(options_.workers));
  gauge("verdict_cache_entries", "entries in the engine verdict cache",
        engine_->verdicts().size());
  return obs::PrometheusText(extras);
}

void Server::RequestShutdown() {
  {
    std::lock_guard<std::mutex> lk(wait_mu_);
    shutdown_requested_ = true;
  }
  wait_cv_.notify_all();
}

void Server::Wait() {
  std::unique_lock<std::mutex> lk(wait_mu_);
  wait_cv_.wait(lk, [this] { return shutdown_requested_; });
}

void Server::Stop() {
  if (!started_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    stopping_ = true;
  }
  conn_cv_.notify_all();
  queue_cv_.notify_all();
  // Closing the listener makes the blocking accept() fail, ending the accept thread.
  // shutdown() first so a concurrently-blocked accept wakes on every platform.
  int fd = listen_fd_.load(std::memory_order_relaxed);
  ::shutdown(fd, SHUT_RDWR);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  ::close(fd);
  listen_fd_.store(-1, std::memory_order_relaxed);
  // Readers first: they refuse parked connections and finish in-flight reads, possibly
  // admitting a last job — which the workers then drain before exiting.
  for (std::thread& r : readers_) {
    if (r.joinable()) {
      r.join();
    }
  }
  readers_.clear();
  for (std::thread& w : workers_) {
    if (w.joinable()) {
      w.join();
    }
  }
  workers_.clear();
  RequestShutdown();  // release any Wait()er even when Stop came from outside
  collector_.reset();
}

}  // namespace noctua::service
