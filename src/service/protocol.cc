#include "src/service/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstring>

#include "src/obs/obs.h"

namespace noctua::service {

namespace {

// Appends up to `cap` more bytes to *buf; false on EOF/error/timeout.
bool ReadSome(int fd, std::string* buf, size_t cap) {
  char chunk[4096];
  size_t want = cap < sizeof(chunk) ? cap : sizeof(chunk);
  ssize_t n = ::recv(fd, chunk, want, 0);
  if (n <= 0) {
    return false;
  }
  buf->append(chunk, static_cast<size_t>(n));
  return true;
}

bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) {
    return "";
  }
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

// Splits a CRLF-terminated header block into lines; strict about the CRLFs.
bool ParseHeaderLines(const std::string& block, std::map<std::string, std::string>* headers,
                      std::string* error) {
  size_t pos = 0;
  while (pos < block.size()) {
    size_t eol = block.find("\r\n", pos);
    if (eol == std::string::npos) {
      *error = "header line not CRLF-terminated";
      return false;
    }
    std::string line = block.substr(pos, eol - pos);
    pos = eol + 2;
    size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      *error = "malformed header line: " + line;
      return false;
    }
    (*headers)[ToLower(line.substr(0, colon))] = Trim(line.substr(colon + 1));
  }
  return true;
}

// Reads start-line + headers (up to the blank line), then Content-Length body bytes.
// Shared by the request and response readers; `start_line` receives the first line.
bool ReadMessage(int fd, std::string* start_line, std::map<std::string, std::string>* headers,
                 std::string* body, std::string* error) {
  std::string buf;
  size_t header_end = std::string::npos;
  while (true) {
    header_end = buf.find("\r\n\r\n");
    if (header_end != std::string::npos) {
      break;
    }
    if (buf.size() >= kMaxHeaderBytes) {
      *error = "header block exceeds limit";
      return false;
    }
    if (!ReadSome(fd, &buf, kMaxHeaderBytes + 1 - buf.size())) {
      *error = buf.empty() ? "connection closed before request" : "connection closed mid-header";
      return false;
    }
  }

  size_t line_end = buf.find("\r\n");
  *start_line = buf.substr(0, line_end);
  if (!ParseHeaderLines(buf.substr(line_end + 2, header_end + 2 - (line_end + 2)), headers,
                        error)) {
    return false;
  }

  size_t content_length = 0;
  auto it = headers->find("content-length");
  if (it != headers->end()) {
    const std::string& v = it->second;
    if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos) {
      *error = "malformed Content-Length";
      return false;
    }
    // from_chars, not stoull: an all-digit value that overflows uint64 must be a
    // rejected request, not an exception escaping the read thread.
    uint64_t parsed = 0;
    auto res = std::from_chars(v.data(), v.data() + v.size(), parsed);
    if (res.ec != std::errc() || res.ptr != v.data() + v.size() ||
        parsed > kMaxBodyBytes) {
      *error = "body exceeds limit";
      return false;
    }
    content_length = static_cast<size_t>(parsed);
  }
  if (headers->count("transfer-encoding") != 0) {
    *error = "chunked transfer encoding not supported";
    return false;
  }

  *body = buf.substr(header_end + 4);
  while (body->size() < content_length) {
    if (!ReadSome(fd, body, content_length - body->size())) {
      *error = "connection closed mid-body";
      return false;
    }
  }
  body->resize(content_length);
  return true;
}

}  // namespace

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
  }
  return "Unknown";
}

bool ReadHttpRequest(int fd, HttpRequest* req, std::string* error) {
  std::string start;
  if (!ReadMessage(fd, &start, &req->headers, &req->body, error)) {
    return false;
  }
  size_t sp1 = start.find(' ');
  size_t sp2 = start.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    *error = "malformed request line: " + start;
    return false;
  }
  req->method = start.substr(0, sp1);
  req->target = start.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string version = start.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    *error = "unsupported HTTP version: " + version;
    return false;
  }
  if (req->method.empty() || req->target.empty() || req->target[0] != '/') {
    *error = "malformed request line: " + start;
    return false;
  }
  return true;
}

bool WriteHttpResponse(int fd, const HttpResponse& resp) {
  std::string msg = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    StatusText(resp.status) + "\r\nContent-Type: " + resp.content_type +
                    "\r\nContent-Length: " + std::to_string(resp.body.size()) +
                    "\r\nConnection: close\r\n\r\n" + resp.body;
  return WriteAll(fd, msg);
}

bool WriteHttpRequest(int fd, const std::string& method, const std::string& target,
                      const std::string& host, const std::string& body,
                      const std::vector<std::pair<std::string, std::string>>&
                          extra_headers) {
  std::string msg = method + " " + target + " HTTP/1.1\r\nHost: " + host +
                    "\r\nContent-Type: application/json\r\nContent-Length: " +
                    std::to_string(body.size());
  for (const auto& [key, value] : extra_headers) {
    msg += "\r\n" + key + ": " + value;
  }
  msg += "\r\nConnection: close\r\n\r\n" + body;
  return WriteAll(fd, msg);
}

void SplitTarget(const std::string& target, std::string* path, std::string* query) {
  size_t q = target.find('?');
  if (q == std::string::npos) {
    *path = target;
    query->clear();
    return;
  }
  *path = target.substr(0, q);
  *query = target.substr(q + 1);
}

std::string QueryParam(const std::string& query, const std::string& key) {
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t amp = query.find('&', pos);
    std::string pair =
        query.substr(pos, amp == std::string::npos ? std::string::npos : amp - pos);
    size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    if (amp == std::string::npos) {
      break;
    }
    pos = amp + 1;
  }
  return "";
}

bool ReadHttpResponse(int fd, HttpResponse* resp, std::string* error) {
  std::string start;
  std::map<std::string, std::string> headers;
  if (!ReadMessage(fd, &start, &headers, &resp->body, error)) {
    return false;
  }
  // "HTTP/1.1 200 OK"
  size_t sp1 = start.find(' ');
  if (sp1 == std::string::npos || start.size() < sp1 + 4) {
    *error = "malformed status line: " + start;
    return false;
  }
  std::string code = start.substr(sp1 + 1, 3);
  if (code.find_first_not_of("0123456789") != std::string::npos) {
    *error = "malformed status code: " + start;
    return false;
  }
  resp->status = std::stoi(code);
  auto it = headers.find("content-type");
  resp->content_type = it != headers.end() ? it->second : "";
  return true;
}

std::string JsonStr(const std::string& s) { return "\"" + obs::JsonEscape(s) + "\""; }

}  // namespace noctua::service
