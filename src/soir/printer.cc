#include "src/soir/printer.h"

#include "src/support/check.h"

namespace noctua::soir {
namespace {

std::string PrintRelPath(const Schema& schema, const std::vector<RelStep>& path) {
  std::string out;
  for (const RelStep& s : path) {
    const RelationDef& rel = schema.relation(s.relation);
    out += (s.forward ? rel.name + "+" : rel.reverse_name + "-") + ".";
  }
  return out;
}

}  // namespace

std::string PrintExpr(const Schema& schema, const Expr& e) {
  auto p = [&](size_t i) { return PrintExpr(schema, *e.child(i)); };
  switch (e.kind) {
    case ExprKind::kArg:
      return e.str;
    case ExprKind::kBoolLit:
      return e.int_val ? "true" : "false";
    case ExprKind::kIntLit:
      return std::to_string(e.int_val);
    case ExprKind::kStrLit:
      return "\"" + e.str + "\"";
    case ExprKind::kBoundObj:
      return "it";
    case ExprKind::kAnd:
      return "(" + p(0) + " and " + p(1) + ")";
    case ExprKind::kOr:
      return "(" + p(0) + " or " + p(1) + ")";
    case ExprKind::kNot:
      return "not(" + p(0) + ")";
    case ExprKind::kAdd:
      return "(" + p(0) + " + " + p(1) + ")";
    case ExprKind::kSub:
      return "(" + p(0) + " - " + p(1) + ")";
    case ExprKind::kMul:
      return "(" + p(0) + " * " + p(1) + ")";
    case ExprKind::kNegate:
      return "-(" + p(0) + ")";
    case ExprKind::kCmp:
      return "(" + p(0) + " " + CmpOpName(e.cmp_op) + " " + p(1) + ")";
    case ExprKind::kConcat:
      return "concat(" + p(0) + ", " + p(1) + ")";
    case ExprKind::kGetField:
      return p(0) + "." + e.str;
    case ExprKind::kSetField:
      return "setf(" + e.str + ", " + p(1) + ", " + p(0) + ")";
    case ExprKind::kNewObj: {
      const ModelDef& m = schema.model(e.type.model_id);
      std::string out = "new " + m.name() + "{" + m.pk_name() + ": " + p(0);
      for (size_t i = 1; i < e.children.size(); ++i) {
        out += ", " + m.field(static_cast<int>(i) - 1).name + ": " + p(i);
      }
      return out + "}";
    }
    case ExprKind::kSingleton:
      return "singleton(" + p(0) + ")";
    case ExprKind::kDeref:
      return "deref<" + schema.model(e.type.model_id).name() + ">(" + p(0) + ")";
    case ExprKind::kAny:
      return "any(" + p(0) + ")";
    case ExprKind::kRefOf:
      return "ref(" + p(0) + ")";
    case ExprKind::kAll:
      return "all<" + schema.model(e.type.model_id).name() + ">";
    case ExprKind::kFilter:
      return "filter(" + PrintRelPath(schema, e.rel_path) + e.str + " " + CmpOpName(e.cmp_op) +
             " " + p(1) + ", " + p(0) + ")";
    case ExprKind::kFollow:
      return "follow(" + PrintRelPath(schema, e.rel_path) + ", " + p(0) + ")";
    case ExprKind::kOrderBy:
      return "orderby(" + e.str + (e.int_val ? " asc" : " desc") + ", " + p(0) + ")";
    case ExprKind::kReverse:
      return "reverse(" + p(0) + ")";
    case ExprKind::kFirst:
      return "first(" + p(0) + ")";
    case ExprKind::kLast:
      return "last(" + p(0) + ")";
    case ExprKind::kAggregate:
      return std::string(AggOpName(e.agg_op)) + "(" + (e.str.empty() ? "" : e.str + ", ") +
             p(0) + ")";
    case ExprKind::kExists:
      return "exists(" + p(0) + ")";
    case ExprKind::kMapSet:
      return "mapset(" + e.str + " := " + p(1) + ", " + p(0) + ")";
  }
  NOCTUA_UNREACHABLE("bad expr kind");
}

std::string PrintCommand(const Schema& schema, const Command& c) {
  switch (c.kind) {
    case CommandKind::kGuard:
      return "guard(" + PrintExpr(schema, *c.a) + ")";
    case CommandKind::kUpdate:
      return "update(" + PrintExpr(schema, *c.a) + ")";
    case CommandKind::kDelete:
      return "delete(" + PrintExpr(schema, *c.a) + ")";
    case CommandKind::kLink:
      return "link<" + schema.relation(c.relation).name + ">(" + PrintExpr(schema, *c.a) +
             ", " + PrintExpr(schema, *c.b) + ")";
    case CommandKind::kDelink:
      return "delink<" + schema.relation(c.relation).name + ">(" + PrintExpr(schema, *c.a) +
             ", " + PrintExpr(schema, *c.b) + ")";
    case CommandKind::kRLink:
      return "rlink<" + schema.relation(c.relation).name + ">(" + PrintExpr(schema, *c.a) +
             ", " + PrintExpr(schema, *c.b) + ")";
    case CommandKind::kClearLinks:
      return "clearlinks<" + schema.relation(c.relation).name + ">(" +
             PrintExpr(schema, *c.a) + (c.forward ? ", forward)" : ", backward)");
  }
  NOCTUA_UNREACHABLE("bad command kind");
}

// --- Canonical fingerprints ---------------------------------------------------------------

int CanonicalizationCtx::ModelId(int m) {
  auto it = model_map_.find(m);
  if (it != model_map_.end()) {
    return it->second;
  }
  int id = static_cast<int>(models_.size());
  model_map_[m] = id;
  models_.push_back(m);
  return id;
}

int CanonicalizationCtx::RelationId(int r) {
  auto it = relation_map_.find(r);
  if (it != relation_map_.end()) {
    return it->second;
  }
  int id = static_cast<int>(relations_.size());
  relation_map_[r] = id;
  relations_.push_back(r);
  // Endpoints are part of the relation's identity (referential-integrity axioms mention
  // both sides), so assign them now even if the path text never names them.
  const RelationDef& rel = schema_.relation(r);
  ModelId(rel.from_model);
  ModelId(rel.to_model);
  return id;
}

std::string CanonicalizationCtx::SchemaSignature() const {
  std::string out;
  for (size_t k = 0; k < models_.size(); ++k) {
    const ModelDef& md = schema_.model(models_[k]);
    out += "m" + std::to_string(k) + "[";
    for (const FieldDef& fd : md.fields()) {
      switch (fd.type) {
        case FieldType::kBool:
          out += 'b';
          break;
        case FieldType::kString:
          out += 's';
          break;
        default:  // Int / Float / Datetime: all integer-sorted and order-comparable
          out += 'i';
          break;
      }
      if (fd.unique) {
        out += '!';
      }
    }
    out += "];";
  }
  for (size_t k = 0; k < relations_.size(); ++k) {
    const RelationDef& rel = schema_.relation(relations_[k]);
    out += "r" + std::to_string(k) + "(" +
           std::to_string(static_cast<int>(rel.kind)) + "," +
           std::to_string(static_cast<int>(rel.on_delete)) + "," +
           std::to_string(model_map_.at(rel.from_model)) + "," +
           std::to_string(model_map_.at(rel.to_model)) + ");";
  }
  return out;
}

namespace {

// Per-path canonical printing state: argument names densely renumbered in declaration
// order (the encoder pre-registers them in exactly that order).
struct CanonPathCtx {
  CanonicalizationCtx* ctx;
  std::map<std::string, int> arg_ids;

  int ArgId(const std::string& name) {
    auto it = arg_ids.find(name);
    if (it != arg_ids.end()) {
      return it->second;
    }
    int id = static_cast<int>(arg_ids.size());
    arg_ids[name] = id;
    return id;
  }
};

std::string CanonType(const Type& t, CanonicalizationCtx* ctx) {
  switch (t.kind) {
    case Type::Kind::kBool:
      return "b";
    case Type::Kind::kString:
      return "s";
    case Type::Kind::kObj:
      return "O" + std::to_string(ctx->ModelId(t.model_id));
    case Type::Kind::kSet:
      return "S" + std::to_string(ctx->ModelId(t.model_id));
    case Type::Kind::kRef:
      return "R" + std::to_string(ctx->ModelId(t.model_id));
    default:  // Int / Float / Datetime share the integer sort
      return "i";
  }
}

// Mirrors the encoder's FieldTupleIndex: the pk renders as "pk", data fields as their
// tuple slot.
std::string CanonField(const Schema& schema, int model, const std::string& field) {
  const ModelDef& md = schema.model(model);
  if (md.IsPk(field) || field == "id") {
    return "pk";
  }
  int idx = md.FieldIndex(field);
  if (idx < 0) {
    return "?" + field;  // unknown fields keep their name: never silently collide
  }
  return std::to_string(idx + 1);
}

std::string CanonRelPath(const Schema& schema, const std::vector<RelStep>& path,
                         CanonPathCtx& c) {
  std::string out;
  for (const RelStep& s : path) {
    out += "r" + std::to_string(c.ctx->RelationId(s.relation)) + (s.forward ? "+" : "-") + ".";
  }
  return out;
}

// The model a filter's terminal field lives on: the base set's model, advanced through
// the relation path.
int RelPathTarget(const Schema& schema, int base_model, const std::vector<RelStep>& path) {
  int m = base_model;
  for (const RelStep& s : path) {
    const RelationDef& rel = schema.relation(s.relation);
    m = s.forward ? rel.to_model : rel.from_model;
  }
  return m;
}

std::string CanonExpr(const Schema& schema, const Expr& e, CanonPathCtx& c) {
  auto p = [&](size_t i) { return CanonExpr(schema, *e.child(i), c); };
  switch (e.kind) {
    case ExprKind::kArg:
      return "a" + std::to_string(c.ArgId(e.str));
    case ExprKind::kBoolLit:
      return e.int_val ? "true" : "false";
    case ExprKind::kIntLit:
      return std::to_string(e.int_val);
    case ExprKind::kStrLit:
      return "\"" + e.str + "\"";
    case ExprKind::kBoundObj:
      return "it";
    case ExprKind::kAnd:
      return "(" + p(0) + " and " + p(1) + ")";
    case ExprKind::kOr:
      return "(" + p(0) + " or " + p(1) + ")";
    case ExprKind::kNot:
      return "not(" + p(0) + ")";
    case ExprKind::kAdd:
      return "(" + p(0) + " + " + p(1) + ")";
    case ExprKind::kSub:
      return "(" + p(0) + " - " + p(1) + ")";
    case ExprKind::kMul:
      return "(" + p(0) + " * " + p(1) + ")";
    case ExprKind::kNegate:
      return "-(" + p(0) + ")";
    case ExprKind::kCmp: {
      // The comparison's sort class decides which operators encode (only equality exists
      // for bool/string/ref), so it is part of the fingerprint.
      return "(" + p(0) + " " + CmpOpName(e.cmp_op) + "/" + CanonType(e.child(0)->type, c.ctx) +
             " " + p(1) + ")";
    }
    case ExprKind::kConcat:
      return "concat(" + p(0) + ", " + p(1) + ")";
    case ExprKind::kGetField:
      return p(0) + ".f" + CanonField(schema, e.child(0)->type.model_id, e.str);
    case ExprKind::kSetField:
      return "setf(f" + CanonField(schema, e.child(0)->type.model_id, e.str) + ", " + p(1) +
             ", " + p(0) + ")";
    case ExprKind::kNewObj: {
      std::string out = "new m" + std::to_string(c.ctx->ModelId(e.type.model_id)) + "{" + p(0);
      for (size_t i = 1; i < e.children.size(); ++i) {
        out += ", " + p(i);
      }
      return out + "}";
    }
    case ExprKind::kSingleton:
      return "singleton(" + p(0) + ")";
    case ExprKind::kDeref:
      return "deref<m" + std::to_string(c.ctx->ModelId(e.type.model_id)) + ">(" + p(0) + ")";
    case ExprKind::kAny:
      return "any(" + p(0) + ")";
    case ExprKind::kRefOf:
      return "ref(" + p(0) + ")";
    case ExprKind::kAll:
      return "all<m" + std::to_string(c.ctx->ModelId(e.type.model_id)) + ">";
    case ExprKind::kFilter: {
      int target = RelPathTarget(schema, e.child(0)->type.model_id, e.rel_path);
      return "filter(" + CanonRelPath(schema, e.rel_path, c) + "f" +
             CanonField(schema, target, e.str) + " " + CmpOpName(e.cmp_op) + "/" +
             CanonType(e.child(1)->type, c.ctx) + " " + p(1) + ", " + p(0) + ")";
    }
    case ExprKind::kFollow:
      return "follow(" + CanonRelPath(schema, e.rel_path, c) + ", " + p(0) + ")";
    case ExprKind::kOrderBy:
      return "orderby(f" + CanonField(schema, e.child(0)->type.model_id, e.str) +
             (e.int_val ? " asc" : " desc") + ", " + p(0) + ")";
    case ExprKind::kReverse:
      return "reverse(" + p(0) + ")";
    case ExprKind::kFirst:
      return "first(" + p(0) + ")";
    case ExprKind::kLast:
      return "last(" + p(0) + ")";
    case ExprKind::kAggregate:
      return std::string(AggOpName(e.agg_op)) + "(" +
             (e.str.empty() ? ""
                            : "f" + CanonField(schema, e.child(0)->type.model_id, e.str) + ", ") +
             p(0) + ")";
    case ExprKind::kExists:
      return "exists(" + p(0) + ")";
    case ExprKind::kMapSet:
      return "mapset(f" + CanonField(schema, e.child(0)->type.model_id, e.str) + " := " + p(1) +
             ", " + p(0) + ")";
  }
  NOCTUA_UNREACHABLE("bad expr kind");
}

std::string CanonCommand(const Schema& schema, const Command& cmd, CanonPathCtx& c) {
  switch (cmd.kind) {
    case CommandKind::kGuard:
      return "guard(" + CanonExpr(schema, *cmd.a, c) + ")";
    case CommandKind::kUpdate:
      return "update(" + CanonExpr(schema, *cmd.a, c) + ")";
    case CommandKind::kDelete: {
      // The encoder rewrites every relation incident to the deleted model, so those
      // relations (and which side the model is on) are part of the query even though the
      // path text never names them.
      int m = cmd.a->type.model_id;
      std::string out = "delete(" + CanonExpr(schema, *cmd.a, c) + ")[";
      for (size_t r = 0; r < schema.num_relations(); ++r) {
        const RelationDef& rel = schema.relation(static_cast<int>(r));
        if (rel.from_model != m && rel.to_model != m) {
          continue;
        }
        out += "r" + std::to_string(c.ctx->RelationId(static_cast<int>(r)));
        if (rel.from_model == m) {
          out += "f";
        }
        if (rel.to_model == m) {
          out += "t";
        }
        out += ",";
      }
      return out + "]";
    }
    case CommandKind::kLink:
      return "link<r" + std::to_string(c.ctx->RelationId(cmd.relation)) + ">(" +
             CanonExpr(schema, *cmd.a, c) + ", " + CanonExpr(schema, *cmd.b, c) + ")";
    case CommandKind::kDelink:
      return "delink<r" + std::to_string(c.ctx->RelationId(cmd.relation)) + ">(" +
             CanonExpr(schema, *cmd.a, c) + ", " + CanonExpr(schema, *cmd.b, c) + ")";
    case CommandKind::kRLink:
      return "rlink<r" + std::to_string(c.ctx->RelationId(cmd.relation)) + ">(" +
             CanonExpr(schema, *cmd.a, c) + ", " + CanonExpr(schema, *cmd.b, c) + ")";
    case CommandKind::kClearLinks:
      return "clearlinks<r" + std::to_string(c.ctx->RelationId(cmd.relation)) + ">(" +
             CanonExpr(schema, *cmd.a, c) + (cmd.forward ? ", forward)" : ", backward)");
  }
  NOCTUA_UNREACHABLE("bad command kind");
}

}  // namespace

std::string CanonicalPath(const Schema& schema, const CodePath& path,
                          CanonicalizationCtx* ctx) {
  CanonPathCtx c;
  c.ctx = ctx;
  std::string out = "args(";
  for (const ArgDef& a : path.args) {
    out += "a" + std::to_string(c.ArgId(a.name)) + ":" + CanonType(a.type, ctx);
    if (a.unique_id) {
      out += "!";
    }
    out += ";";
  }
  out += ")";
  for (const Command& cmd : path.commands) {
    out += " " + CanonCommand(schema, cmd, c) + ";";
  }
  return out;
}

std::string PrintCodePath(const Schema& schema, const CodePath& path) {
  std::string out = "path " + path.op_name + " (view " + path.view_name + ")\n";
  out += "  args:";
  for (const ArgDef& a : path.args) {
    out += " " + a.name + ":" + a.type.ToString(&schema);
    if (a.unique_id) {
      out += "!";
    }
  }
  out += "\n";
  for (const Command& c : path.commands) {
    out += "  " + PrintCommand(schema, c) + "\n";
  }
  return out;
}

}  // namespace noctua::soir
