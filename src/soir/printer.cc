#include "src/soir/printer.h"

#include "src/support/check.h"

namespace noctua::soir {
namespace {

std::string PrintRelPath(const Schema& schema, const std::vector<RelStep>& path) {
  std::string out;
  for (const RelStep& s : path) {
    const RelationDef& rel = schema.relation(s.relation);
    out += (s.forward ? rel.name + "+" : rel.reverse_name + "-") + ".";
  }
  return out;
}

}  // namespace

std::string PrintExpr(const Schema& schema, const Expr& e) {
  auto p = [&](size_t i) { return PrintExpr(schema, *e.child(i)); };
  switch (e.kind) {
    case ExprKind::kArg:
      return e.str;
    case ExprKind::kBoolLit:
      return e.int_val ? "true" : "false";
    case ExprKind::kIntLit:
      return std::to_string(e.int_val);
    case ExprKind::kStrLit:
      return "\"" + e.str + "\"";
    case ExprKind::kBoundObj:
      return "it";
    case ExprKind::kAnd:
      return "(" + p(0) + " and " + p(1) + ")";
    case ExprKind::kOr:
      return "(" + p(0) + " or " + p(1) + ")";
    case ExprKind::kNot:
      return "not(" + p(0) + ")";
    case ExprKind::kAdd:
      return "(" + p(0) + " + " + p(1) + ")";
    case ExprKind::kSub:
      return "(" + p(0) + " - " + p(1) + ")";
    case ExprKind::kMul:
      return "(" + p(0) + " * " + p(1) + ")";
    case ExprKind::kNegate:
      return "-(" + p(0) + ")";
    case ExprKind::kCmp:
      return "(" + p(0) + " " + CmpOpName(e.cmp_op) + " " + p(1) + ")";
    case ExprKind::kConcat:
      return "concat(" + p(0) + ", " + p(1) + ")";
    case ExprKind::kGetField:
      return p(0) + "." + e.str;
    case ExprKind::kSetField:
      return "setf(" + e.str + ", " + p(1) + ", " + p(0) + ")";
    case ExprKind::kNewObj: {
      const ModelDef& m = schema.model(e.type.model_id);
      std::string out = "new " + m.name() + "{" + m.pk_name() + ": " + p(0);
      for (size_t i = 1; i < e.children.size(); ++i) {
        out += ", " + m.field(static_cast<int>(i) - 1).name + ": " + p(i);
      }
      return out + "}";
    }
    case ExprKind::kSingleton:
      return "singleton(" + p(0) + ")";
    case ExprKind::kDeref:
      return "deref<" + schema.model(e.type.model_id).name() + ">(" + p(0) + ")";
    case ExprKind::kAny:
      return "any(" + p(0) + ")";
    case ExprKind::kRefOf:
      return "ref(" + p(0) + ")";
    case ExprKind::kAll:
      return "all<" + schema.model(e.type.model_id).name() + ">";
    case ExprKind::kFilter:
      return "filter(" + PrintRelPath(schema, e.rel_path) + e.str + " " + CmpOpName(e.cmp_op) +
             " " + p(1) + ", " + p(0) + ")";
    case ExprKind::kFollow:
      return "follow(" + PrintRelPath(schema, e.rel_path) + ", " + p(0) + ")";
    case ExprKind::kOrderBy:
      return "orderby(" + e.str + (e.int_val ? " asc" : " desc") + ", " + p(0) + ")";
    case ExprKind::kReverse:
      return "reverse(" + p(0) + ")";
    case ExprKind::kFirst:
      return "first(" + p(0) + ")";
    case ExprKind::kLast:
      return "last(" + p(0) + ")";
    case ExprKind::kAggregate:
      return std::string(AggOpName(e.agg_op)) + "(" + (e.str.empty() ? "" : e.str + ", ") +
             p(0) + ")";
    case ExprKind::kExists:
      return "exists(" + p(0) + ")";
    case ExprKind::kMapSet:
      return "mapset(" + e.str + " := " + p(1) + ", " + p(0) + ")";
  }
  NOCTUA_UNREACHABLE("bad expr kind");
}

std::string PrintCommand(const Schema& schema, const Command& c) {
  switch (c.kind) {
    case CommandKind::kGuard:
      return "guard(" + PrintExpr(schema, *c.a) + ")";
    case CommandKind::kUpdate:
      return "update(" + PrintExpr(schema, *c.a) + ")";
    case CommandKind::kDelete:
      return "delete(" + PrintExpr(schema, *c.a) + ")";
    case CommandKind::kLink:
      return "link<" + schema.relation(c.relation).name + ">(" + PrintExpr(schema, *c.a) +
             ", " + PrintExpr(schema, *c.b) + ")";
    case CommandKind::kDelink:
      return "delink<" + schema.relation(c.relation).name + ">(" + PrintExpr(schema, *c.a) +
             ", " + PrintExpr(schema, *c.b) + ")";
    case CommandKind::kRLink:
      return "rlink<" + schema.relation(c.relation).name + ">(" + PrintExpr(schema, *c.a) +
             ", " + PrintExpr(schema, *c.b) + ")";
    case CommandKind::kClearLinks:
      return "clearlinks<" + schema.relation(c.relation).name + ">(" +
             PrintExpr(schema, *c.a) + (c.forward ? ", forward)" : ", backward)");
  }
  NOCTUA_UNREACHABLE("bad command kind");
}

std::string PrintCodePath(const Schema& schema, const CodePath& path) {
  std::string out = "path " + path.op_name + " (view " + path.view_name + ")\n";
  out += "  args:";
  for (const ArgDef& a : path.args) {
    out += " " + a.name + ":" + a.type.ToString(&schema);
    if (a.unique_id) {
      out += "!";
    }
  }
  out += "\n";
  for (const Command& c : path.commands) {
    out += "  " + PrintCommand(schema, c) + "\n";
  }
  return out;
}

}  // namespace noctua::soir
