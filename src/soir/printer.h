// Pretty printer for SOIR expressions, commands and code paths, plus the canonical
// printer used to fingerprint verification queries for the verdict cache.
#ifndef SRC_SOIR_PRINTER_H_
#define SRC_SOIR_PRINTER_H_

#include <map>
#include <string>
#include <vector>

#include "src/soir/ast.h"
#include "src/soir/schema.h"

namespace noctua::soir {

std::string PrintExpr(const Schema& schema, const Expr& e);
std::string PrintCommand(const Schema& schema, const Command& c);

// Renders the full path: header, arguments, then one command per line.
std::string PrintCodePath(const Schema& schema, const CodePath& path);

// --- Canonical fingerprints ---------------------------------------------------------------
//
// CanonicalPath renders a code path with every schema-dependent identifier replaced by a
// dense canonical id assigned in first-use order: models become m0, m1, ..., relations
// r0, r1, ..., arguments a0, a1, ... (declaration order), and field names become tuple
// slot indices. Two paths that are isomorphic up to model/relation/argument/field *names*
// — e.g. the per-model CRUD endpoints a viewset stamps out — therefore render to the
// same string, which is what lets the verifier share one solver verdict between them.
//
// The renaming context is shared across the two paths of a pair (and across repeated
// mentions within one path), so cross-path identity of models and relations is preserved:
// "both paths touch the same model" and "the paths touch different models of the same
// shape" fingerprint differently, as they must.
//
// Everything the SMT encoding depends on beyond the path text — field sorts, unique
// flags, relation kinds and delete behavior — is captured by SchemaSignature(), which
// renders the schema fragment for exactly the models/relations mentioned so far, in
// canonical order. A fingerprint is only valid as (canonical paths + schema signature).
class CanonicalizationCtx {
 public:
  explicit CanonicalizationCtx(const Schema& schema) : schema_(schema) {}

  // Canonical id for an absolute model/relation id, assigned on first use.
  int ModelId(int m);
  int RelationId(int r);

  // Schema fragment signature for every model/relation assigned so far (canonical
  // order): field sort kinds + unique flags per model, kind/on-delete/endpoints per
  // relation.
  std::string SchemaSignature() const;

  // Absolute ids in canonical (first-use) order.
  const std::vector<int>& models() const { return models_; }
  const std::vector<int>& relations() const { return relations_; }

  const Schema& schema() const { return schema_; }

 private:
  const Schema& schema_;
  std::map<int, int> model_map_;
  std::map<int, int> relation_map_;
  std::vector<int> models_;
  std::vector<int> relations_;
};

// Renders `path` canonically under `ctx` (see above). Argument names are canonicalized
// per path in declaration order, mirroring the encoder's pre-registration order.
std::string CanonicalPath(const Schema& schema, const CodePath& path, CanonicalizationCtx* ctx);

}  // namespace noctua::soir

#endif  // SRC_SOIR_PRINTER_H_
