// Pretty printer for SOIR expressions, commands and code paths.
#ifndef SRC_SOIR_PRINTER_H_
#define SRC_SOIR_PRINTER_H_

#include <string>

#include "src/soir/ast.h"
#include "src/soir/schema.h"

namespace noctua::soir {

std::string PrintExpr(const Schema& schema, const Expr& e);
std::string PrintCommand(const Schema& schema, const Command& c);

// Renders the full path: header, arguments, then one command per line.
std::string PrintCodePath(const Schema& schema, const CodePath& path);

}  // namespace noctua::soir

#endif  // SRC_SOIR_PRINTER_H_
