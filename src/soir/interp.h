// Concrete interpreter for SOIR code paths.
//
// This gives SOIR an executable semantics against the orm::Database substrate. It serves
// two roles in the reproduction:
//   1. The geo-replication simulator replays extracted code paths at every site (the
//      paper's operation-transfer model: replicas re-execute operations, §2.1).
//   2. Differential property testing of the verifier: a pair of paths that the verifier
//      judges commutative must commute on randomly generated concrete states.
//
// A code path runs transactionally: if any guard fails (or a partial query like deref of
// a missing object occurs), the database is left untouched and Run returns false.
#ifndef SRC_SOIR_INTERP_H_
#define SRC_SOIR_INTERP_H_

#include <map>
#include <string>
#include <vector>

#include "src/orm/database.h"
#include "src/soir/ast.h"

namespace noctua::soir {

// An object value flowing through expression evaluation: possibly-modified field values
// detached from the store (SOIR objects are immutable records).
struct ObjVal {
  int model = -1;
  int64_t pk = 0;
  orm::Row fields;
};

// Runtime value: scalar, object, or (ordered) query set.
struct RtValue {
  enum class Kind : uint8_t { kScalar, kObj, kSet };
  Kind kind = Kind::kScalar;
  orm::Value scalar;
  ObjVal obj;
  std::vector<ObjVal> set;

  static RtValue Scalar(orm::Value v) {
    RtValue r;
    r.kind = Kind::kScalar;
    r.scalar = std::move(v);
    return r;
  }
  static RtValue Obj(ObjVal o) {
    RtValue r;
    r.kind = Kind::kObj;
    r.obj = std::move(o);
    return r;
  }
  static RtValue Set(std::vector<ObjVal> s) {
    RtValue r;
    r.kind = Kind::kSet;
    r.set = std::move(s);
    return r;
  }
};

using ArgValues = std::map<std::string, orm::Value>;

class Interp {
 public:
  explicit Interp(const Schema& schema) : schema_(schema) {}

  // Executes `path` with the given arguments against `db`. Returns true and applies all
  // effects if every guard holds; returns false and leaves `db` unchanged otherwise.
  bool Run(const CodePath& path, const ArgValues& args, orm::Database* db) const;

  // Applies `path`'s *effects* without enforcing guards — the semantics of replaying a
  // propagated mutation at a remote replica (paper §2.1: the origin validated the
  // request; replicas apply its side effects). Returns false (leaving `db` unchanged)
  // only if an expression itself cannot evaluate (e.g. deref of a missing row), which a
  // correct restriction set prevents.
  bool Apply(const CodePath& path, const ArgValues& args, orm::Database* db) const;

  // Evaluates a single expression against `db` (for tests). Aborting expressions (deref
  // of a missing row, any() of an empty set) throw AbortError.
  RtValue Eval(const Expr& e, const ArgValues& args, const orm::Database& db) const;

  struct AbortError {};

 private:
  struct Env {
    const ArgValues* args;
    const orm::Database* db;
    const ObjVal* bound_obj = nullptr;  // kMapSet iteration variable
    bool strict = true;  // false in apply mode: deref of a missing row yields a default
                         // row instead of aborting (total replay, like the encoder)
  };

  bool RunImpl(const CodePath& path, const ArgValues& args, orm::Database* db,
               bool enforce_guards) const;
  RtValue EvalRec(const Expr& e, Env& env) const;
  ObjVal LoadObj(const orm::Database& db, int model, int64_t pk, bool strict) const;
  std::vector<ObjVal> FollowPath(const orm::Database& db, const std::vector<ObjVal>& from,
                                 const std::vector<RelStep>& path) const;
  orm::Value GetField(const ObjVal& obj, const std::string& field) const;
  void ApplyCommand(const Command& cmd, Env& env, orm::Database* db) const;

  const Schema& schema_;
};

}  // namespace noctua::soir

#endif  // SRC_SOIR_INTERP_H_
