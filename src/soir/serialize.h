// Stable serialization and content digests for SOIR artifacts — the foundation of the
// incremental analysis engine (and of any future multi-process verification).
//
// Two distinct notions of identity live here, and they are deliberately different:
//
//  * The *serialized form* is exact: it round-trips a Schema / CodePath byte-for-byte
//    through save→load, names included. It is versioned (kArtifactVersion) and parsed
//    defensively — a truncated, corrupted, or newer-versioned artifact makes the reader
//    fail closed rather than crash, so callers can fall back to a cold run.
//
//  * The *content digest* of a path is renaming-invariant: it hashes the canonical
//    rendering (soir::CanonicalPath) plus the canonical schema fragment the path touches
//    (SchemaSignature). Renaming a model, field, relation, or argument does not change a
//    digest; changing a guard, a field's sort, a relation's on-delete policy, or anything
//    else the SMT encoding can see does. Digest equality therefore means "every
//    verification verdict involving this path is reusable as-is".
#ifndef SRC_SOIR_SERIALIZE_H_
#define SRC_SOIR_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/soir/ast.h"
#include "src/soir/schema.h"

namespace noctua::soir {

// Bump when the serialized form of any artifact changes incompatibly. Readers reject
// files written under any other version (the caller falls back to a cold run).
inline constexpr int64_t kArtifactVersion = 1;

// --- Token stream ---------------------------------------------------------------------------
//
// Artifacts are whitespace-separated token streams: atoms (no whitespace), integers, and
// quoted strings with \-escapes. Text keeps the format diffable and debuggable; counts
// are written before every repeated group so the reader never guesses.

class ArtifactWriter {
 public:
  void Atom(std::string_view s);     // raw token; must contain no whitespace
  void Int(int64_t v);
  void Str(std::string_view s);      // quoted, escaped — arbitrary content
  const std::string& str() const { return out_; }

 private:
  std::string out_;
};

class ArtifactReader {
 public:
  explicit ArtifactReader(std::string data) : data_(std::move(data)) {}

  // All accessors degrade to defaults once the stream has failed; check ok() at the end
  // (or at any checkpoint) rather than after every token.
  bool ok() const { return ok_; }
  void Fail() { ok_ = false; }

  std::string Atom();
  int64_t Int();
  std::string Str();
  // Consumes one atom and fails the stream unless it equals `expected`.
  void ExpectAtom(std::string_view expected);
  // Reads a count and fails unless 0 <= n <= max (guards allocations against corruption).
  size_t Count(size_t max);
  // True when every token has been consumed (trailing whitespace allowed).
  bool AtEnd();

 private:
  bool SkipSpace();  // false at end of input

  std::string data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// --- Schema / path serialization ------------------------------------------------------------

void SerializeSchema(const Schema& schema, ArtifactWriter* w);
// Appends models/fields/relations into `out` (which must be empty). Returns false —
// leaving `out` unspecified — on malformed input.
bool DeserializeSchema(ArtifactReader* r, Schema* out);

// Paths are serialized against a schema: model/relation/field identifiers are the
// schema's ids, so a path only deserializes meaningfully under the same (or an equal)
// schema — which is why artifacts carry their schema alongside.
void SerializeCodePath(const CodePath& path, ArtifactWriter* w);
bool DeserializeCodePath(ArtifactReader* r, const Schema& schema, CodePath* out);

// --- Content digests ------------------------------------------------------------------------

// FNV-1a, the 64-bit flavor: tiny, dependency-free, and stable across platforms. Not
// cryptographic — the store trusts its own artifacts; paranoia sampling (see
// verifier::ParallelOptions) is the defense against silent corruption.
uint64_t Fnv1a64(std::string_view s);
std::string DigestHex(uint64_t digest);

// Renaming-invariant content digest of one code path (see file header).
std::string PathDigest(const Schema& schema, const CodePath& path);

// Exact content digest of a whole schema (names included — NOT renaming-invariant).
std::string SchemaContentDigest(const Schema& schema);

// Structural digest of a whole schema: every name (model, pk, field, relation, reverse)
// is blanked before hashing, leaving exactly what model/relation/field *ids* and the SMT
// encoding depend on — counts, declaration order, field sorts and constraints, relation
// endpoints/kinds/delete policies. A rename-only schema edit preserves it; any other
// edit changes it. Artifact loaders gate on this digest: under structural equality the
// stored paths' ids still mean the same thing and every verdict fingerprint is intact,
// so a pure rename replays 100% of a prior run.
std::string SchemaStructuralDigest(const Schema& schema);

// Rewrites every field / pk reference in `paths` (expressions store them by *name*) from
// `stored`'s names to `current`'s, matching fields by (model id, declaration slot). The
// two schemas must be structurally equal (same SchemaStructuralDigest) — the caller
// gates. Returns false without touching `paths` when the rename is ambiguous: some name
// maps to two different new names in different models, so a bare name occurrence cannot
// be remapped without type inference, and the caller must fall back to a cold run. A
// no-rename (identical names) adaptation is a cheap no-op.
bool AdaptPathsToSchema(const Schema& stored, const Schema& current,
                        std::vector<CodePath>* paths);

}  // namespace noctua::soir

#endif  // SRC_SOIR_SERIALIZE_H_
