#include "src/soir/ast.h"

#include <algorithm>

#include "src/support/check.h"

namespace noctua::soir {

std::string Type::ToString(const Schema* schema) const {
  auto model_name = [&](int id) {
    return schema ? schema->model(id).name() : std::to_string(id);
  };
  switch (kind) {
    case Kind::kBool:
      return "Bool";
    case Kind::kInt:
      return "Int";
    case Kind::kFloat:
      return "Float";
    case Kind::kString:
      return "String";
    case Kind::kDatetime:
      return "Datetime";
    case Kind::kObj:
      return "Obj<" + model_name(model_id) + ">";
    case Kind::kSet:
      return "Set<" + model_name(model_id) + ">";
    case Kind::kRef:
      return "Ref<" + model_name(model_id) + ">";
  }
  return "?";
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "==";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

const char* AggOpName(AggOp op) {
  switch (op) {
    case AggOp::kCount: return "cnt";
    case AggOp::kSum: return "sum";
    case AggOp::kMin: return "min";
    case AggOp::kMax: return "max";
  }
  return "?";
}

namespace {
std::shared_ptr<Expr> New(ExprKind kind, Type type) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  e->type = type;
  return e;
}
}  // namespace

ExprP MakeArg(const std::string& name, Type type) {
  auto e = New(ExprKind::kArg, type);
  e->str = name;
  return e;
}

ExprP MakeBoolLit(bool v) {
  auto e = New(ExprKind::kBoolLit, Type::Bool());
  e->int_val = v ? 1 : 0;
  return e;
}

ExprP MakeIntLit(int64_t v, Type::Kind kind) {
  auto e = New(ExprKind::kIntLit, Type{kind, -1});
  e->int_val = v;
  return e;
}

ExprP MakeStrLit(const std::string& v) {
  auto e = New(ExprKind::kStrLit, Type::String());
  e->str = v;
  return e;
}

ExprP MakeBoundObj(int model_id) { return New(ExprKind::kBoundObj, Type::Obj(model_id)); }

namespace {
ExprP Binary(ExprKind kind, Type type, ExprP a, ExprP b) {
  auto e = New(kind, type);
  e->children = {std::move(a), std::move(b)};
  return e;
}
ExprP Unary(ExprKind kind, Type type, ExprP a) {
  auto e = New(kind, type);
  e->children = {std::move(a)};
  return e;
}
}  // namespace

ExprP MakeAnd(ExprP a, ExprP b) { return Binary(ExprKind::kAnd, Type::Bool(), a, b); }
ExprP MakeOr(ExprP a, ExprP b) { return Binary(ExprKind::kOr, Type::Bool(), a, b); }
ExprP MakeNot(ExprP a) { return Unary(ExprKind::kNot, Type::Bool(), a); }
ExprP MakeAdd(ExprP a, ExprP b) { return Binary(ExprKind::kAdd, a->type, a, b); }
ExprP MakeSub(ExprP a, ExprP b) { return Binary(ExprKind::kSub, a->type, a, b); }
ExprP MakeMul(ExprP a, ExprP b) { return Binary(ExprKind::kMul, a->type, a, b); }
ExprP MakeNegate(ExprP a) {
  Type t = a->type;
  return Unary(ExprKind::kNegate, t, std::move(a));
}

ExprP MakeCmp(CmpOp op, ExprP a, ExprP b) {
  auto e = Binary(ExprKind::kCmp, Type::Bool(), std::move(a), std::move(b));
  const_cast<Expr*>(e.get())->cmp_op = op;
  return e;
}

ExprP MakeConcat(ExprP a, ExprP b) { return Binary(ExprKind::kConcat, Type::String(), a, b); }

ExprP MakeGetField(ExprP obj, const std::string& field, Type field_type) {
  auto e = Unary(ExprKind::kGetField, field_type, std::move(obj));
  const_cast<Expr*>(e.get())->str = field;
  return e;
}

ExprP MakeSetField(ExprP obj, const std::string& field, ExprP value) {
  auto e = Binary(ExprKind::kSetField, obj->type, obj, std::move(value));
  const_cast<Expr*>(e.get())->str = field;
  return e;
}

ExprP MakeNewObj(int model_id, ExprP pk, std::vector<ExprP> field_values) {
  auto e = New(ExprKind::kNewObj, Type::Obj(model_id));
  e->children.push_back(std::move(pk));
  for (auto& v : field_values) {
    e->children.push_back(std::move(v));
  }
  return e;
}

ExprP MakeSingleton(ExprP obj) {
  NOCTUA_CHECK(obj->type.kind == Type::Kind::kObj);
  Type t = Type::Set(obj->type.model_id);
  return Unary(ExprKind::kSingleton, t, std::move(obj));
}

ExprP MakeDeref(ExprP ref) {
  NOCTUA_CHECK(ref->type.kind == Type::Kind::kRef);
  Type t = Type::Obj(ref->type.model_id);
  return Unary(ExprKind::kDeref, t, std::move(ref));
}

ExprP MakeAny(ExprP set) {
  NOCTUA_CHECK(set->type.kind == Type::Kind::kSet);
  Type t = Type::Obj(set->type.model_id);
  return Unary(ExprKind::kAny, t, std::move(set));
}

ExprP MakeRefOf(ExprP obj) {
  NOCTUA_CHECK(obj->type.kind == Type::Kind::kObj);
  Type t = Type::Ref(obj->type.model_id);
  return Unary(ExprKind::kRefOf, t, std::move(obj));
}

ExprP MakeAll(int model_id) { return New(ExprKind::kAll, Type::Set(model_id)); }

ExprP MakeFilter(ExprP set, std::vector<RelStep> rel_path, const std::string& field, CmpOp op,
                 ExprP value) {
  auto e = Binary(ExprKind::kFilter, set->type, set, std::move(value));
  Expr* m = const_cast<Expr*>(e.get());
  m->rel_path = std::move(rel_path);
  m->str = field;
  m->cmp_op = op;
  return e;
}

ExprP MakeFollow(ExprP set, std::vector<RelStep> rel_path, int result_model) {
  auto e = Unary(ExprKind::kFollow, Type::Set(result_model), std::move(set));
  const_cast<Expr*>(e.get())->rel_path = std::move(rel_path);
  return e;
}

ExprP MakeOrderBy(ExprP set, const std::string& field, bool ascending) {
  Type t = set->type;
  auto e = Unary(ExprKind::kOrderBy, t, std::move(set));
  Expr* m = const_cast<Expr*>(e.get());
  m->str = field;
  m->int_val = ascending ? 1 : 0;
  return e;
}

ExprP MakeReverse(ExprP set) {
  Type t = set->type;
  return Unary(ExprKind::kReverse, t, std::move(set));
}

ExprP MakeFirst(ExprP set) {
  NOCTUA_CHECK(set->type.kind == Type::Kind::kSet);
  Type t = Type::Obj(set->type.model_id);
  return Unary(ExprKind::kFirst, t, std::move(set));
}

ExprP MakeLast(ExprP set) {
  NOCTUA_CHECK(set->type.kind == Type::Kind::kSet);
  Type t = Type::Obj(set->type.model_id);
  return Unary(ExprKind::kLast, t, std::move(set));
}

ExprP MakeAggregate(ExprP set, AggOp op, const std::string& field) {
  auto e = Unary(ExprKind::kAggregate, Type::Int(), std::move(set));
  Expr* m = const_cast<Expr*>(e.get());
  m->agg_op = op;
  m->str = field;
  return e;
}

ExprP MakeExists(ExprP set) { return Unary(ExprKind::kExists, Type::Bool(), std::move(set)); }

ExprP MakeMapSet(ExprP set, const std::string& field, ExprP value) {
  auto e = Binary(ExprKind::kMapSet, set->type, set, std::move(value));
  const_cast<Expr*>(e.get())->str = field;
  return e;
}

// --- CodePath -------------------------------------------------------------------------------

bool CodePath::IsEffectful() const {
  return std::any_of(commands.begin(), commands.end(),
                     [](const Command& c) { return c.kind != CommandKind::kGuard; });
}

namespace {
void VisitExpr(const Expr& e, const std::function<void(const Expr&)>& fn) {
  fn(e);
  for (const ExprP& c : e.children) {
    VisitExpr(*c, fn);
  }
}
}  // namespace

void VisitExprs(const CodePath& path, const std::function<void(const Expr&)>& fn) {
  for (const Command& c : path.commands) {
    if (c.a) {
      VisitExpr(*c.a, fn);
    }
    if (c.b) {
      VisitExpr(*c.b, fn);
    }
  }
}

std::set<int> OrderRelevantModels(const CodePath& path) {
  std::set<int> out;
  VisitExprs(path, [&](const Expr& e) {
    switch (e.kind) {
      case ExprKind::kFirst:
      case ExprKind::kLast:
      case ExprKind::kReverse:
      case ExprKind::kOrderBy:
        out.insert(e.child(0)->type.model_id);
        break;
      default:
        break;
    }
  });
  return out;
}

void CodePath::CollectFootprint(const Schema& schema, std::vector<int>* models_read,
                                std::vector<int>* models_written,
                                std::vector<int>* relations_touched) const {
  auto add = [](std::vector<int>* v, int x) {
    if (std::find(v->begin(), v->end(), x) == v->end()) {
      v->push_back(x);
    }
  };
  for (const Command& c : commands) {
    switch (c.kind) {
      case CommandKind::kGuard:
        break;
      case CommandKind::kUpdate:
        add(models_written, c.a->type.model_id);
        break;
      case CommandKind::kDelete: {
        int m = c.a->type.model_id;
        add(models_written, m);
        // Deleting rows removes every incident association.
        for (const RelationDef& rel : schema.relations()) {
          if (rel.from_model == m || rel.to_model == m) {
            add(relations_touched, rel.id);
          }
        }
        break;
      }
      case CommandKind::kLink:
      case CommandKind::kDelink:
      case CommandKind::kRLink:
      case CommandKind::kClearLinks:
        add(relations_touched, c.relation);
        break;
    }
  }
  VisitExprs(*this, [&](const Expr& e) {
    if (e.kind == ExprKind::kAll || e.kind == ExprKind::kDeref) {
      add(models_read, e.type.model_id);
    }
    if (e.kind == ExprKind::kFollow || e.kind == ExprKind::kFilter) {
      // Relation traversals read the association sets and the data of every model along
      // the path.
      for (const RelStep& s : e.rel_path) {
        add(relations_touched, s.relation);
        const RelationDef& rel = schema.relation(s.relation);
        add(models_read, s.forward ? rel.to_model : rel.from_model);
      }
    }
  });
}

}  // namespace noctua::soir
