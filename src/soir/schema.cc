#include "src/soir/schema.h"

#include <algorithm>

#include "src/support/check.h"

namespace noctua::soir {

const char* FieldTypeName(FieldType t) {
  switch (t) {
    case FieldType::kBool:
      return "Bool";
    case FieldType::kInt:
      return "Int";
    case FieldType::kFloat:
      return "Float";
    case FieldType::kString:
      return "String";
    case FieldType::kDatetime:
      return "Datetime";
    case FieldType::kRef:
      return "Ref";
  }
  return "?";
}

int ModelDef::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int Schema::AddModel(const std::string& name, const std::string& pk_name) {
  NOCTUA_CHECK_MSG(model_by_name_.find(name) == model_by_name_.end(),
                   "duplicate model " << name);
  int id = static_cast<int>(models_.size());
  models_.emplace_back(id, name, pk_name);
  model_by_name_[name] = id;
  return id;
}

int Schema::ModelId(const std::string& name) const {
  auto it = model_by_name_.find(name);
  NOCTUA_CHECK_MSG(it != model_by_name_.end(), "unknown model " << name);
  return it->second;
}

void Schema::AddField(const std::string& model, FieldDef field) {
  models_[ModelId(model)].AddField(std::move(field));
}

int Schema::AddRelation(const std::string& name, const std::string& from_model,
                        const std::string& to_model, RelationKind kind, OnDelete on_delete,
                        const std::string& reverse_name) {
  RelationDef rel;
  rel.id = static_cast<int>(relations_.size());
  rel.name = name;
  rel.from_model = ModelId(from_model);
  rel.to_model = ModelId(to_model);
  rel.kind = kind;
  rel.on_delete = on_delete;
  if (reverse_name.empty()) {
    std::string lower = from_model;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    rel.reverse_name = lower + "_set";
  } else {
    rel.reverse_name = reverse_name;
  }
  relations_.push_back(std::move(rel));
  return relations_.back().id;
}

void Schema::RenameModel(int id, const std::string& new_name) {
  NOCTUA_CHECK(id >= 0 && id < static_cast<int>(models_.size()));
  NOCTUA_CHECK_MSG(model_by_name_.find(new_name) == model_by_name_.end(),
                   "rename collides with existing model " << new_name);
  model_by_name_.erase(models_[id].name_);
  models_[id].name_ = new_name;
  model_by_name_[new_name] = id;
}

void Schema::RenameField(const std::string& model, const std::string& old_name,
                         const std::string& new_name) {
  ModelDef& md = models_[ModelId(model)];
  int idx = md.FieldIndex(old_name);
  NOCTUA_CHECK_MSG(idx >= 0, "unknown field " << model << "." << old_name);
  NOCTUA_CHECK_MSG(md.FieldIndex(new_name) < 0 && !md.IsPk(new_name),
                   "rename collides with existing field " << model << "." << new_name);
  md.fields_[idx].name = new_name;
}

void Schema::RenameRelation(int id, const std::string& new_name,
                            const std::string& new_reverse) {
  NOCTUA_CHECK(id >= 0 && id < static_cast<int>(relations_.size()));
  relations_[id].name = new_name;
  relations_[id].reverse_name = new_reverse;
}

std::pair<int, bool> Schema::FindRelation(int model_id, const std::string& key) const {
  for (const RelationDef& rel : relations_) {
    if (rel.from_model == model_id && rel.name == key) {
      return {rel.id, true};
    }
    if (rel.to_model == model_id && rel.reverse_name == key) {
      return {rel.id, false};
    }
  }
  return {-1, true};
}

std::string Schema::ToString() const {
  std::string out;
  for (const ModelDef& m : models_) {
    out += "model " + m.name() + " (pk: " + m.pk_name() + ")\n";
    for (const FieldDef& f : m.fields()) {
      out += "  " + f.name + ": " + FieldTypeName(f.type);
      if (f.unique) {
        out += " unique";
      }
      if (f.positive) {
        out += " positive";
      }
      out += "\n";
    }
  }
  for (const RelationDef& r : relations_) {
    out += "relation " + r.name + ": " + models_[r.from_model].name() +
           (r.kind == RelationKind::kManyToOne ? " -> " : " <-> ") +
           models_[r.to_model].name() + " (reverse: " + r.reverse_name + ")\n";
  }
  return out;
}

}  // namespace noctua::soir
