#include "src/soir/serialize.h"

#include <cctype>

#include "src/soir/printer.h"

namespace noctua::soir {

// --- Token stream ---------------------------------------------------------------------------

void ArtifactWriter::Atom(std::string_view s) {
  if (!out_.empty()) {
    out_ += ' ';
  }
  out_ += s;
}

void ArtifactWriter::Int(int64_t v) { Atom(std::to_string(v)); }

void ArtifactWriter::Str(std::string_view s) {
  std::string quoted = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        quoted += "\\\"";
        break;
      case '\\':
        quoted += "\\\\";
        break;
      case '\n':
        quoted += "\\n";
        break;
      default:
        quoted += c;
        break;
    }
  }
  quoted += '"';
  Atom(quoted);
}

bool ArtifactReader::SkipSpace() {
  while (pos_ < data_.size() && std::isspace(static_cast<unsigned char>(data_[pos_]))) {
    ++pos_;
  }
  return pos_ < data_.size();
}

std::string ArtifactReader::Atom() {
  if (!ok_ || !SkipSpace()) {
    Fail();
    return "";
  }
  size_t start = pos_;
  while (pos_ < data_.size() && !std::isspace(static_cast<unsigned char>(data_[pos_]))) {
    ++pos_;
  }
  return data_.substr(start, pos_ - start);
}

int64_t ArtifactReader::Int() {
  std::string tok = Atom();
  if (!ok_) {
    return 0;
  }
  size_t used = 0;
  int64_t v = 0;
  try {
    v = std::stoll(tok, &used);
  } catch (...) {
    Fail();
    return 0;
  }
  if (used != tok.size()) {
    Fail();
    return 0;
  }
  return v;
}

std::string ArtifactReader::Str() {
  if (!ok_ || !SkipSpace() || data_[pos_] != '"') {
    Fail();
    return "";
  }
  ++pos_;
  std::string out;
  while (pos_ < data_.size()) {
    char c = data_[pos_++];
    if (c == '"') {
      return out;
    }
    if (c == '\\') {
      if (pos_ >= data_.size()) {
        break;
      }
      char e = data_[pos_++];
      out += e == 'n' ? '\n' : e;
    } else {
      out += c;
    }
  }
  Fail();  // unterminated string
  return "";
}

void ArtifactReader::ExpectAtom(std::string_view expected) {
  if (Atom() != expected) {
    Fail();
  }
}

size_t ArtifactReader::Count(size_t max) {
  int64_t n = Int();
  if (!ok_ || n < 0 || static_cast<uint64_t>(n) > max) {
    Fail();
    return 0;
  }
  return static_cast<size_t>(n);
}

bool ArtifactReader::AtEnd() { return !SkipSpace(); }

// --- Schema ---------------------------------------------------------------------------------

namespace {

// Caps on repeated-group counts: far above any real application, far below anything that
// could make a corrupted count allocate unreasonably.
constexpr size_t kMaxModels = 100000;
constexpr size_t kMaxFields = 100000;
constexpr size_t kMaxRelations = 1000000;
constexpr size_t kMaxChoices = 10000;
constexpr size_t kMaxArgs = 100000;
constexpr size_t kMaxCommands = 1000000;
constexpr size_t kMaxChildren = 1000000;
constexpr size_t kMaxRelSteps = 10000;

}  // namespace

void SerializeSchema(const Schema& schema, ArtifactWriter* w) {
  w->Atom("schema");
  w->Int(static_cast<int64_t>(schema.num_models()));
  for (size_t m = 0; m < schema.num_models(); ++m) {
    const ModelDef& md = schema.model(static_cast<int>(m));
    w->Str(md.name());
    w->Str(md.pk_name());
    w->Int(static_cast<int64_t>(md.fields().size()));
    for (const FieldDef& f : md.fields()) {
      w->Str(f.name);
      w->Int(static_cast<int64_t>(f.type));
      w->Int(f.unique ? 1 : 0);
      w->Int(f.positive ? 1 : 0);
      w->Int(static_cast<int64_t>(f.choices.size()));
      for (const std::string& c : f.choices) {
        w->Str(c);
      }
      w->Int(f.default_int);
      w->Str(f.default_string);
    }
  }
  w->Int(static_cast<int64_t>(schema.num_relations()));
  for (const RelationDef& rel : schema.relations()) {
    w->Str(rel.name);
    w->Str(rel.reverse_name);
    w->Int(rel.from_model);
    w->Int(rel.to_model);
    w->Int(static_cast<int64_t>(rel.kind));
    w->Int(static_cast<int64_t>(rel.on_delete));
  }
}

bool DeserializeSchema(ArtifactReader* r, Schema* out) {
  r->ExpectAtom("schema");
  size_t num_models = r->Count(kMaxModels);
  for (size_t m = 0; r->ok() && m < num_models; ++m) {
    std::string name = r->Str();
    std::string pk = r->Str();
    if (!r->ok() || name.empty()) {
      r->Fail();
      return false;
    }
    out->AddModel(name, pk);
    size_t num_fields = r->Count(kMaxFields);
    for (size_t f = 0; r->ok() && f < num_fields; ++f) {
      FieldDef fd;
      fd.name = r->Str();
      int64_t type = r->Int();
      if (type < 0 || type > static_cast<int64_t>(FieldType::kRef)) {
        r->Fail();
        return false;
      }
      fd.type = static_cast<FieldType>(type);
      fd.unique = r->Int() != 0;
      fd.positive = r->Int() != 0;
      size_t num_choices = r->Count(kMaxChoices);
      for (size_t c = 0; r->ok() && c < num_choices; ++c) {
        fd.choices.push_back(r->Str());
      }
      fd.default_int = r->Int();
      fd.default_string = r->Str();
      if (!r->ok()) {
        return false;
      }
      out->AddField(name, std::move(fd));
    }
  }
  size_t num_relations = r->Count(kMaxRelations);
  for (size_t k = 0; r->ok() && k < num_relations; ++k) {
    std::string name = r->Str();
    std::string reverse = r->Str();
    int64_t from = r->Int();
    int64_t to = r->Int();
    int64_t kind = r->Int();
    int64_t on_delete = r->Int();
    if (!r->ok() || from < 0 || from >= static_cast<int64_t>(out->num_models()) || to < 0 ||
        to >= static_cast<int64_t>(out->num_models()) || kind < 0 ||
        kind > static_cast<int64_t>(RelationKind::kManyToMany) || on_delete < 0 ||
        on_delete > static_cast<int64_t>(OnDelete::kDoNothing)) {
      r->Fail();
      return false;
    }
    out->AddRelation(name, out->model(static_cast<int>(from)).name(),
                     out->model(static_cast<int>(to)).name(), static_cast<RelationKind>(kind),
                     static_cast<OnDelete>(on_delete), reverse);
  }
  return r->ok();
}

// --- Expressions / commands / paths ---------------------------------------------------------

namespace {

constexpr ExprKind kLastExprKind = ExprKind::kMapSet;
constexpr CommandKind kLastCommandKind = CommandKind::kClearLinks;

void SerializeType(const Type& t, ArtifactWriter* w) {
  w->Int(static_cast<int64_t>(t.kind));
  w->Int(t.model_id);
}

bool DeserializeType(ArtifactReader* r, size_t num_models, Type* out) {
  int64_t kind = r->Int();
  int64_t model = r->Int();
  if (!r->ok() || kind < 0 || kind > static_cast<int64_t>(Type::Kind::kRef) || model < -1 ||
      model >= static_cast<int64_t>(num_models)) {
    r->Fail();
    return false;
  }
  out->kind = static_cast<Type::Kind>(kind);
  out->model_id = static_cast<int>(model);
  return true;
}

void SerializeExpr(const Expr& e, ArtifactWriter* w) {
  w->Atom("e");
  w->Int(static_cast<int64_t>(e.kind));
  SerializeType(e.type, w);
  w->Str(e.str);
  w->Int(e.int_val);
  w->Int(static_cast<int64_t>(e.cmp_op));
  w->Int(static_cast<int64_t>(e.agg_op));
  w->Int(static_cast<int64_t>(e.rel_path.size()));
  for (const RelStep& s : e.rel_path) {
    w->Int(s.relation);
    w->Int(s.forward ? 1 : 0);
  }
  w->Int(static_cast<int64_t>(e.children.size()));
  for (const ExprP& c : e.children) {
    SerializeExpr(*c, w);
  }
}

ExprP DeserializeExpr(ArtifactReader* r, const Schema& schema, size_t depth) {
  // A corrupted child count could otherwise nest deep enough to smash the stack.
  if (depth > 1000) {
    r->Fail();
    return nullptr;
  }
  r->ExpectAtom("e");
  auto e = std::make_shared<Expr>();
  int64_t kind = r->Int();
  if (!r->ok() || kind < 0 || kind > static_cast<int64_t>(kLastExprKind)) {
    r->Fail();
    return nullptr;
  }
  e->kind = static_cast<ExprKind>(kind);
  if (!DeserializeType(r, schema.num_models(), &e->type)) {
    return nullptr;
  }
  e->str = r->Str();
  e->int_val = r->Int();
  int64_t cmp = r->Int();
  int64_t agg = r->Int();
  if (!r->ok() || cmp < 0 || cmp > static_cast<int64_t>(CmpOp::kGe) || agg < 0 ||
      agg > static_cast<int64_t>(AggOp::kMax)) {
    r->Fail();
    return nullptr;
  }
  e->cmp_op = static_cast<CmpOp>(cmp);
  e->agg_op = static_cast<AggOp>(agg);
  size_t num_steps = r->Count(kMaxRelSteps);
  for (size_t s = 0; r->ok() && s < num_steps; ++s) {
    RelStep step;
    int64_t rel = r->Int();
    if (rel < 0 || rel >= static_cast<int64_t>(schema.num_relations())) {
      r->Fail();
      return nullptr;
    }
    step.relation = static_cast<int>(rel);
    step.forward = r->Int() != 0;
    e->rel_path.push_back(step);
  }
  size_t num_children = r->Count(kMaxChildren);
  for (size_t c = 0; r->ok() && c < num_children; ++c) {
    ExprP child = DeserializeExpr(r, schema, depth + 1);
    if (child == nullptr) {
      return nullptr;
    }
    e->children.push_back(std::move(child));
  }
  return r->ok() ? e : nullptr;
}

void SerializeCommand(const Command& c, ArtifactWriter* w) {
  w->Atom("c");
  w->Int(static_cast<int64_t>(c.kind));
  w->Int(c.relation);
  w->Int(c.forward ? 1 : 0);
  w->Int(c.a != nullptr ? 1 : 0);
  if (c.a != nullptr) {
    SerializeExpr(*c.a, w);
  }
  w->Int(c.b != nullptr ? 1 : 0);
  if (c.b != nullptr) {
    SerializeExpr(*c.b, w);
  }
}

bool DeserializeCommand(ArtifactReader* r, const Schema& schema, Command* out) {
  r->ExpectAtom("c");
  int64_t kind = r->Int();
  int64_t rel = r->Int();
  if (!r->ok() || kind < 0 || kind > static_cast<int64_t>(kLastCommandKind) || rel < -1 ||
      rel >= static_cast<int64_t>(schema.num_relations())) {
    r->Fail();
    return false;
  }
  out->kind = static_cast<CommandKind>(kind);
  out->relation = static_cast<int>(rel);
  out->forward = r->Int() != 0;
  if (r->Int() != 0) {
    out->a = DeserializeExpr(r, schema, 0);
    if (out->a == nullptr) {
      return false;
    }
  }
  if (r->Int() != 0) {
    out->b = DeserializeExpr(r, schema, 0);
    if (out->b == nullptr) {
      return false;
    }
  }
  return r->ok();
}

}  // namespace

void SerializeCodePath(const CodePath& path, ArtifactWriter* w) {
  w->Atom("path");
  w->Str(path.op_name);
  w->Str(path.view_name);
  w->Int(static_cast<int64_t>(path.args.size()));
  for (const ArgDef& a : path.args) {
    w->Str(a.name);
    SerializeType(a.type, w);
    w->Int(a.unique_id ? 1 : 0);
  }
  w->Int(static_cast<int64_t>(path.commands.size()));
  for (const Command& c : path.commands) {
    SerializeCommand(c, w);
  }
}

bool DeserializeCodePath(ArtifactReader* r, const Schema& schema, CodePath* out) {
  r->ExpectAtom("path");
  out->op_name = r->Str();
  out->view_name = r->Str();
  size_t num_args = r->Count(kMaxArgs);
  for (size_t a = 0; r->ok() && a < num_args; ++a) {
    ArgDef arg;
    arg.name = r->Str();
    if (!DeserializeType(r, schema.num_models(), &arg.type)) {
      return false;
    }
    arg.unique_id = r->Int() != 0;
    out->args.push_back(std::move(arg));
  }
  size_t num_commands = r->Count(kMaxCommands);
  for (size_t c = 0; r->ok() && c < num_commands; ++c) {
    Command cmd;
    if (!DeserializeCommand(r, schema, &cmd)) {
      return false;
    }
    out->commands.push_back(std::move(cmd));
  }
  return r->ok();
}

// --- Content digests ------------------------------------------------------------------------

uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string DigestHex(uint64_t digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kHex[digest & 0xf];
    digest >>= 4;
  }
  return out;
}

std::string PathDigest(const Schema& schema, const CodePath& path) {
  // A fresh renaming context per path: the digest covers the canonical path text plus
  // the canonical schema fragment it can reach — exactly the inputs of every verdict
  // fingerprint the path participates in (up to the pair's shared context).
  CanonicalizationCtx ctx(schema);
  std::string material = CanonicalPath(schema, path, &ctx);
  material += "\n";
  material += ctx.SchemaSignature();
  return DigestHex(Fnv1a64(material));
}

std::string SchemaContentDigest(const Schema& schema) {
  ArtifactWriter w;
  SerializeSchema(schema, &w);
  return DigestHex(Fnv1a64(w.str()));
}

std::string SchemaStructuralDigest(const Schema& schema) {
  // The exact serialization with every name blanked. Field choices and defaults stay:
  // they are semantics (the encoding can constrain on them), not naming.
  ArtifactWriter w;
  w.Atom("schema-structure");
  w.Int(static_cast<int64_t>(schema.num_models()));
  for (size_t m = 0; m < schema.num_models(); ++m) {
    const ModelDef& md = schema.model(static_cast<int>(m));
    w.Int(static_cast<int64_t>(md.fields().size()));
    for (const FieldDef& f : md.fields()) {
      w.Int(static_cast<int64_t>(f.type));
      w.Int(f.unique ? 1 : 0);
      w.Int(f.positive ? 1 : 0);
      w.Int(static_cast<int64_t>(f.choices.size()));
      for (const std::string& c : f.choices) {
        w.Str(c);
      }
      w.Int(f.default_int);
      w.Str(f.default_string);
    }
  }
  w.Int(static_cast<int64_t>(schema.num_relations()));
  for (const RelationDef& rel : schema.relations()) {
    w.Int(rel.from_model);
    w.Int(rel.to_model);
    w.Int(static_cast<int64_t>(rel.kind));
    w.Int(static_cast<int64_t>(rel.on_delete));
  }
  return DigestHex(Fnv1a64(w.str()));
}

namespace {

// The expression kinds whose `str` is a field (or pk) name. Everything else keeps its
// str untouched — notably kStrLit (user data) and kArg (handler-chosen names).
bool StrIsFieldName(ExprKind k) {
  switch (k) {
    case ExprKind::kGetField:
    case ExprKind::kSetField:
    case ExprKind::kFilter:
    case ExprKind::kOrderBy:
    case ExprKind::kAggregate:
    case ExprKind::kMapSet:
      return true;
    default:
      return false;
  }
}

ExprP RemapFieldNames(const std::map<std::string, std::string>& renames, const ExprP& e) {
  if (e == nullptr) {
    return e;
  }
  auto copy = std::make_shared<Expr>(*e);
  for (ExprP& child : copy->children) {
    child = RemapFieldNames(renames, child);
  }
  if (StrIsFieldName(copy->kind)) {
    auto it = renames.find(copy->str);
    if (it != renames.end()) {
      copy->str = it->second;
    }
  }
  return copy;
}

}  // namespace

bool AdaptPathsToSchema(const Schema& stored, const Schema& current,
                        std::vector<CodePath>* paths) {
  if (stored.num_models() != current.num_models()) {
    return false;
  }
  // Field identity across the rename is (model id, declaration slot) — exactly what
  // structural equality pins down. Expressions reference fields by bare name with no
  // model attached, so the union of the per-model maps must itself be a function.
  std::map<std::string, std::string> renames;
  auto add = [&renames](const std::string& from, const std::string& to) {
    auto [it, inserted] = renames.emplace(from, to);
    return inserted || it->second == to;
  };
  for (size_t m = 0; m < stored.num_models(); ++m) {
    const ModelDef& sm = stored.model(static_cast<int>(m));
    const ModelDef& cm = current.model(static_cast<int>(m));
    if (sm.fields().size() != cm.fields().size()) {
      return false;
    }
    if (!add(sm.pk_name(), cm.pk_name())) {
      return false;
    }
    for (size_t f = 0; f < sm.fields().size(); ++f) {
      if (!add(sm.fields()[f].name, cm.fields()[f].name)) {
        return false;
      }
    }
  }
  for (auto it = renames.begin(); it != renames.end();) {
    it = it->first == it->second ? renames.erase(it) : std::next(it);
  }
  if (renames.empty()) {
    return true;
  }
  for (CodePath& path : *paths) {
    for (Command& c : path.commands) {
      c.a = RemapFieldNames(renames, c.a);
      c.b = RemapFieldNames(renames, c.b);
    }
  }
  return true;
}

}  // namespace noctua::soir
