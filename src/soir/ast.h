// SOIR — the SMT-verifiable Object Intermediate Representation (paper §3, Table 1).
//
// A code path is (arguments, path conditions, commands): the analyzer emits one CodePath
// per effectful execution path of a view function. Expressions model local computation and
// side-effect-free database queries; commands model state transitions (guard / update /
// delete / link / delink / rlink / clearlinks).
//
// SOIR is deliberately small: no loops, no recursion, no closures (§3.3). Higher-level
// constructs of the source program (branching, user functions, viewsets, mixins) are
// desugared by the analyzer, never represented here.
#ifndef SRC_SOIR_AST_H_
#define SRC_SOIR_AST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/soir/schema.h"

namespace noctua::soir {

// The simple type system of SOIR (paper Table 1, "Constants and types").
struct Type {
  enum class Kind : uint8_t { kBool, kInt, kFloat, kString, kDatetime, kObj, kSet, kRef };
  Kind kind = Kind::kInt;
  int model_id = -1;  // for kObj / kSet / kRef

  static Type Bool() { return {Kind::kBool, -1}; }
  static Type Int() { return {Kind::kInt, -1}; }
  static Type Float() { return {Kind::kFloat, -1}; }
  static Type String() { return {Kind::kString, -1}; }
  static Type Datetime() { return {Kind::kDatetime, -1}; }
  static Type Obj(int m) { return {Kind::kObj, m}; }
  static Type Set(int m) { return {Kind::kSet, m}; }
  static Type Ref(int m) { return {Kind::kRef, m}; }

  bool IsScalar() const {
    return kind != Kind::kObj && kind != Kind::kSet;
  }
  bool operator==(const Type& o) const { return kind == o.kind && model_id == o.model_id; }
  std::string ToString(const Schema* schema = nullptr) const;
};

enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
const char* CmpOpName(CmpOp op);

enum class AggOp : uint8_t { kCount, kSum, kMin, kMax };
const char* AggOpName(AggOp op);

// One step of a relation path in a nested filter/follow (e.g. article__author in §2.3):
// relation id + traversal direction.
struct RelStep {
  int relation = -1;
  bool forward = true;
};

enum class ExprKind : uint8_t {
  // Leaves.
  kArg,       // code path argument; str = name; type carried in `type`
  kBoolLit,   // int_val
  kIntLit,    // int_val (also Float/Datetime literals, fixed-point)
  kStrLit,    // str
  kBoundObj,  // the iterated object inside kMapSet's value expressions

  // Scalar operators.
  kAnd, kOr, kNot,
  kAdd, kSub, kMul, kNegate,
  kCmp,     // children [a, b]; cmp_op
  kConcat,

  // Objects.
  kGetField,  // children [obj]; str = field name ("id"/pk name returns the ref)
  kSetField,  // children [obj, value]; str = field name  (SOIR setf)
  kNewObj,    // children: one value per data field (schema order); plus child 0 = pk ref
              // expression. Constructs an object that need not exist yet.

  // Conversions (Table 1).
  kSingleton,  // obj -> set
  kDeref,      // ref -> obj (reads the current state)
  kAny,        // set -> obj (an arbitrary member; deterministic choice in our semantics)
  kRefOf,      // obj -> ref

  // Queries (Table 1).
  kAll,       // the query set of every live object of `type.model_id`
  kFilter,    // children [qs, value]; rel_path + str(field, may be pk) + cmp_op
  kFollow,    // children [qs]; rel_path
  kOrderBy,   // children [qs]; str = field; int_val = 1 ascending / 0 descending
  kReverse,   // children [qs]
  kFirst,     // children [qs] -> obj (smallest order number)
  kLast,      // children [qs] -> obj (largest order number)
  kAggregate, // children [qs]; agg_op; str = field (ignored for count)
  kExists,    // children [qs] -> bool
  kMapSet,    // children [qs, value]; str = field: every object's `field` set to value,
              // where value may mention kBoundObj (e.g. F-expressions / increments)
};

class Expr;
using ExprP = std::shared_ptr<const Expr>;

class Expr {
 public:
  ExprKind kind;
  Type type;
  std::vector<ExprP> children;
  std::string str;
  int64_t int_val = 0;
  CmpOp cmp_op = CmpOp::kEq;
  AggOp agg_op = AggOp::kCount;
  std::vector<RelStep> rel_path;

  const ExprP& child(size_t i) const { return children[i]; }
};

// --- Expression constructors --------------------------------------------------------------
ExprP MakeArg(const std::string& name, Type type);
ExprP MakeBoolLit(bool v);
ExprP MakeIntLit(int64_t v, Type::Kind kind = Type::Kind::kInt);
ExprP MakeStrLit(const std::string& v);
ExprP MakeBoundObj(int model_id);
ExprP MakeAnd(ExprP a, ExprP b);
ExprP MakeOr(ExprP a, ExprP b);
ExprP MakeNot(ExprP a);
ExprP MakeAdd(ExprP a, ExprP b);
ExprP MakeSub(ExprP a, ExprP b);
ExprP MakeMul(ExprP a, ExprP b);
ExprP MakeNegate(ExprP a);
ExprP MakeCmp(CmpOp op, ExprP a, ExprP b);
ExprP MakeConcat(ExprP a, ExprP b);
ExprP MakeGetField(ExprP obj, const std::string& field, Type field_type);
ExprP MakeSetField(ExprP obj, const std::string& field, ExprP value);
ExprP MakeNewObj(int model_id, ExprP pk, std::vector<ExprP> field_values);
ExprP MakeSingleton(ExprP obj);
ExprP MakeDeref(ExprP ref);
ExprP MakeAny(ExprP set);
ExprP MakeRefOf(ExprP obj);
ExprP MakeAll(int model_id);
ExprP MakeFilter(ExprP set, std::vector<RelStep> rel_path, const std::string& field, CmpOp op,
                 ExprP value);
ExprP MakeFollow(ExprP set, std::vector<RelStep> rel_path, int result_model);
ExprP MakeOrderBy(ExprP set, const std::string& field, bool ascending);
ExprP MakeReverse(ExprP set);
ExprP MakeFirst(ExprP set);
ExprP MakeLast(ExprP set);
ExprP MakeAggregate(ExprP set, AggOp op, const std::string& field);
ExprP MakeExists(ExprP set);
ExprP MakeMapSet(ExprP set, const std::string& field, ExprP value);

// --- Commands (paper Table 1, bottom) -------------------------------------------------------

enum class CommandKind : uint8_t {
  kGuard,       // abort unless expr is true
  kUpdate,      // merge the objects of `set` into the current state
  kDelete,      // remove the objects of `set` (incident associations removed too)
  kLink,        // add association (from_obj, to_obj) in `relation`
  kDelink,      // remove that association
  kRLink,       // link all objects of `set` with to_obj
  kClearLinks,  // remove all associations of obj in `relation` (direction given)
};

struct Command {
  CommandKind kind;
  ExprP a;           // guard cond / update|delete|rlink set / link from_obj / clearlinks obj
  ExprP b;           // link|rlink to_obj
  int relation = -1;
  bool forward = true;  // clearlinks direction: true = obj is on the `from` side
};

// An argument of a code path. `unique_id` marks arguments that carry database-generated
// globally-unique IDs of new objects (the unique-ID optimization, §5.2).
struct ArgDef {
  std::string name;
  Type type;
  bool unique_id = false;
};

// The unit of verification: one effectful execution path of one operation.
struct CodePath {
  std::string op_name;    // e.g. "batch_update#delete" (view function + path discriminator)
  std::string view_name;  // the owning HTTP endpoint
  std::vector<ArgDef> args;
  std::vector<Command> commands;

  // True if any command mutates state (non-guard).
  bool IsEffectful() const;
  // Models read / written and relations touched, used by the verifier's independence
  // pre-filter. Deletes count every incident relation as touched; relation traversals
  // count every model along the path as read.
  void CollectFootprint(const Schema& schema, std::vector<int>* models_read,
                        std::vector<int>* models_written,
                        std::vector<int>* relations_touched) const;
};

// Walks all sub-expressions of a path (guards, sets, values), calling fn on each.
void VisitExprs(const CodePath& path, const std::function<void(const Expr&)>& fn);

// Models whose storage order the path observes (first/last/reverse/orderby). Order
// divergence on any other model is unobservable (the basis of the paper's decoupled
// order encoding, §4.2).
std::set<int> OrderRelevantModels(const CodePath& path);

}  // namespace noctua::soir

#endif  // SRC_SOIR_AST_H_
