#include "src/soir/interp.h"

#include <algorithm>
#include <set>

#include "src/support/check.h"

namespace noctua::soir {
namespace {

bool CompareValues(CmpOp op, const orm::Value& a, const orm::Value& b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a < b || a == b;
    case CmpOp::kGt:
      return b < a;
    case CmpOp::kGe:
      return b < a || a == b;
  }
  NOCTUA_UNREACHABLE("bad cmp op");
}

}  // namespace

ObjVal Interp::LoadObj(const orm::Database& db, int model, int64_t pk, bool strict) const {
  if (!db.Exists(model, pk)) {
    if (strict) {
      throw AbortError{};
    }
    // Apply mode: the mutation references the row by ID; materialize a default row (the
    // concrete counterpart of the encoder reading unconstrained array data).
    const ModelDef& md = schema_.model(model);
    orm::Row row;
    for (const FieldDef& fd : md.fields()) {
      switch (fd.type) {
        case FieldType::kBool:
          row.push_back(orm::Value::Bool(fd.default_int != 0));
          break;
        case FieldType::kString:
          row.push_back(orm::Value::Str(fd.default_string));
          break;
        default:
          row.push_back(orm::Value::Int(fd.default_int));
          break;
      }
    }
    return ObjVal{model, pk, std::move(row)};
  }
  return ObjVal{model, pk, db.Get(model, pk)};
}

orm::Value Interp::GetField(const ObjVal& obj, const std::string& field) const {
  const ModelDef& m = schema_.model(obj.model);
  if (m.IsPk(field) || field == "id") {
    return orm::Value::Ref(obj.pk);
  }
  int idx = m.FieldIndex(field);
  NOCTUA_CHECK_MSG(idx >= 0, "unknown field " << field << " of " << m.name());
  return obj.fields[idx];
}

std::vector<ObjVal> Interp::FollowPath(const orm::Database& db, const std::vector<ObjVal>& from,
                                       const std::vector<RelStep>& path) const {
  std::vector<ObjVal> current = from;
  for (const RelStep& step : path) {
    const RelationDef& rel = schema_.relation(step.relation);
    int target_model = step.forward ? rel.to_model : rel.from_model;
    std::set<int64_t> seen;
    std::vector<int64_t> pks;
    for (const ObjVal& o : current) {
      for (int64_t pk : db.Associated(step.relation, o.pk, step.forward)) {
        if (seen.insert(pk).second) {
          pks.push_back(pk);
        }
      }
    }
    // Order targets by their storage order (deterministic).
    std::sort(pks.begin(), pks.end(), [&](int64_t a, int64_t b) {
      return db.OrderOf(target_model, a) < db.OrderOf(target_model, b);
    });
    std::vector<ObjVal> next;
    next.reserve(pks.size());
    for (int64_t pk : pks) {
      if (db.Exists(target_model, pk)) {
        next.push_back(ObjVal{target_model, pk, db.Get(target_model, pk)});
      }
    }
    current = std::move(next);
  }
  return current;
}

RtValue Interp::EvalRec(const Expr& e, Env& env) const {
  auto scalar = [&](size_t i) { return EvalRec(*e.child(i), env).scalar; };
  switch (e.kind) {
    case ExprKind::kArg: {
      auto it = env.args->find(e.str);
      NOCTUA_CHECK_MSG(it != env.args->end(), "missing argument " << e.str);
      return RtValue::Scalar(it->second);
    }
    case ExprKind::kBoolLit:
      return RtValue::Scalar(orm::Value::Bool(e.int_val != 0));
    case ExprKind::kIntLit:
      return RtValue::Scalar(orm::Value::Int(e.int_val));
    case ExprKind::kStrLit:
      return RtValue::Scalar(orm::Value::Str(e.str));
    case ExprKind::kBoundObj:
      NOCTUA_CHECK_MSG(env.bound_obj != nullptr, "kBoundObj outside mapset");
      return RtValue::Obj(*env.bound_obj);
    case ExprKind::kAnd: {
      orm::Value a = scalar(0);
      if (!a.bool_v()) {
        return RtValue::Scalar(orm::Value::Bool(false));
      }
      return RtValue::Scalar(orm::Value::Bool(scalar(1).bool_v()));
    }
    case ExprKind::kOr: {
      orm::Value a = scalar(0);
      if (a.bool_v()) {
        return RtValue::Scalar(orm::Value::Bool(true));
      }
      return RtValue::Scalar(orm::Value::Bool(scalar(1).bool_v()));
    }
    case ExprKind::kNot:
      return RtValue::Scalar(orm::Value::Bool(!scalar(0).bool_v()));
    case ExprKind::kAdd:
      return RtValue::Scalar(orm::Value::Int(scalar(0).int_v() + scalar(1).int_v()));
    case ExprKind::kSub:
      return RtValue::Scalar(orm::Value::Int(scalar(0).int_v() - scalar(1).int_v()));
    case ExprKind::kMul:
      return RtValue::Scalar(orm::Value::Int(scalar(0).int_v() * scalar(1).int_v()));
    case ExprKind::kNegate:
      return RtValue::Scalar(orm::Value::Int(-scalar(0).int_v()));
    case ExprKind::kCmp:
      return RtValue::Scalar(orm::Value::Bool(CompareValues(e.cmp_op, scalar(0), scalar(1))));
    case ExprKind::kConcat:
      return RtValue::Scalar(orm::Value::Str(scalar(0).str_v() + scalar(1).str_v()));
    case ExprKind::kGetField: {
      RtValue obj = EvalRec(*e.child(0), env);
      NOCTUA_CHECK(obj.kind == RtValue::Kind::kObj);
      return RtValue::Scalar(GetField(obj.obj, e.str));
    }
    case ExprKind::kSetField: {
      RtValue obj = EvalRec(*e.child(0), env);
      orm::Value v = scalar(1);
      const ModelDef& m = schema_.model(obj.obj.model);
      int idx = m.FieldIndex(e.str);
      NOCTUA_CHECK_MSG(idx >= 0, "setf of unknown field " << e.str);
      obj.obj.fields[idx] = std::move(v);
      return obj;
    }
    case ExprKind::kNewObj: {
      const ModelDef& m = schema_.model(e.type.model_id);
      ObjVal obj;
      obj.model = e.type.model_id;
      obj.pk = scalar(0).int_v();
      obj.fields.reserve(m.fields().size());
      for (size_t i = 1; i < e.children.size(); ++i) {
        obj.fields.push_back(scalar(i));
      }
      NOCTUA_CHECK(obj.fields.size() == m.fields().size());
      return RtValue::Obj(std::move(obj));
    }
    case ExprKind::kSingleton: {
      RtValue obj = EvalRec(*e.child(0), env);
      return RtValue::Set({obj.obj});
    }
    case ExprKind::kDeref: {
      int64_t pk = scalar(0).int_v();
      return RtValue::Obj(LoadObj(*env.db, e.type.model_id, pk, env.strict));
    }
    case ExprKind::kAny:
    case ExprKind::kFirst: {
      RtValue set = EvalRec(*e.child(0), env);
      if (set.set.empty()) {
        throw AbortError{};
      }
      return RtValue::Obj(set.set.front());
    }
    case ExprKind::kLast: {
      RtValue set = EvalRec(*e.child(0), env);
      if (set.set.empty()) {
        throw AbortError{};
      }
      return RtValue::Obj(set.set.back());
    }
    case ExprKind::kRefOf: {
      RtValue obj = EvalRec(*e.child(0), env);
      return RtValue::Scalar(orm::Value::Ref(obj.obj.pk));
    }
    case ExprKind::kAll: {
      std::vector<ObjVal> out;
      for (int64_t pk : env.db->AllPks(e.type.model_id)) {
        out.push_back(ObjVal{e.type.model_id, pk, env.db->Get(e.type.model_id, pk)});
      }
      return RtValue::Set(std::move(out));
    }
    case ExprKind::kFilter: {
      RtValue base = EvalRec(*e.child(0), env);
      orm::Value rhs = scalar(1);
      std::vector<ObjVal> out;
      for (const ObjVal& o : base.set) {
        // Resolve the relation path from this object, then test the field on the targets
        // (Django semantics: the filter matches if *some* related object satisfies it).
        std::vector<ObjVal> targets = FollowPath(*env.db, {o}, e.rel_path);
        bool match = false;
        for (const ObjVal& t : targets) {
          if (CompareValues(e.cmp_op, GetField(t, e.str), rhs)) {
            match = true;
            break;
          }
        }
        if (match) {
          out.push_back(o);
        }
      }
      return RtValue::Set(std::move(out));
    }
    case ExprKind::kFollow: {
      RtValue base = EvalRec(*e.child(0), env);
      return RtValue::Set(FollowPath(*env.db, base.set, e.rel_path));
    }
    case ExprKind::kOrderBy: {
      RtValue base = EvalRec(*e.child(0), env);
      bool asc = e.int_val != 0;
      std::stable_sort(base.set.begin(), base.set.end(),
                       [&](const ObjVal& a, const ObjVal& b) {
                         orm::Value va = GetField(a, e.str);
                         orm::Value vb = GetField(b, e.str);
                         return asc ? va < vb : vb < va;
                       });
      return base;
    }
    case ExprKind::kReverse: {
      RtValue base = EvalRec(*e.child(0), env);
      std::reverse(base.set.begin(), base.set.end());
      return base;
    }
    case ExprKind::kAggregate: {
      RtValue base = EvalRec(*e.child(0), env);
      if (e.agg_op == AggOp::kCount) {
        return RtValue::Scalar(orm::Value::Int(static_cast<int64_t>(base.set.size())));
      }
      int64_t acc = 0;
      bool any = false;
      for (const ObjVal& o : base.set) {
        int64_t v = GetField(o, e.str).int_v();
        if (e.agg_op == AggOp::kSum) {
          acc += v;
        } else if (!any) {
          acc = v;
        } else if (e.agg_op == AggOp::kMin) {
          acc = std::min(acc, v);
        } else {
          acc = std::max(acc, v);
        }
        any = true;
      }
      return RtValue::Scalar(orm::Value::Int(acc));  // empty aggregates yield 0
    }
    case ExprKind::kExists: {
      RtValue base = EvalRec(*e.child(0), env);
      return RtValue::Scalar(orm::Value::Bool(!base.set.empty()));
    }
    case ExprKind::kMapSet: {
      RtValue base = EvalRec(*e.child(0), env);
      const ModelDef& m = schema_.model(e.type.model_id);
      int idx = m.FieldIndex(e.str);
      NOCTUA_CHECK_MSG(idx >= 0, "mapset of unknown field " << e.str);
      for (ObjVal& o : base.set) {
        const ObjVal* saved = env.bound_obj;
        env.bound_obj = &o;
        orm::Value v = EvalRec(*e.child(1), env).scalar;
        env.bound_obj = saved;
        o.fields[idx] = std::move(v);
      }
      return base;
    }
  }
  NOCTUA_UNREACHABLE("bad expr kind");
}

RtValue Interp::Eval(const Expr& e, const ArgValues& args, const orm::Database& db) const {
  Env env{&args, &db, nullptr};
  return EvalRec(e, env);
}

void Interp::ApplyCommand(const Command& cmd, Env& env, orm::Database* db) const {
  switch (cmd.kind) {
    case CommandKind::kGuard: {
      RtValue v = EvalRec(*cmd.a, env);
      if (!v.scalar.bool_v()) {
        throw AbortError{};
      }
      break;
    }
    case CommandKind::kUpdate: {
      RtValue set = EvalRec(*cmd.a, env);
      for (const ObjVal& o : set.set) {
        db->Upsert(o.model, o.pk, o.fields);
      }
      break;
    }
    case CommandKind::kDelete: {
      RtValue set = EvalRec(*cmd.a, env);
      for (const ObjVal& o : set.set) {
        db->Erase(o.model, o.pk);
      }
      break;
    }
    case CommandKind::kLink: {
      ObjVal from = EvalRec(*cmd.a, env).obj;
      ObjVal to = EvalRec(*cmd.b, env).obj;
      db->Link(cmd.relation, from.pk, to.pk);
      break;
    }
    case CommandKind::kDelink: {
      ObjVal from = EvalRec(*cmd.a, env).obj;
      ObjVal to = EvalRec(*cmd.b, env).obj;
      db->Delink(cmd.relation, from.pk, to.pk);
      break;
    }
    case CommandKind::kRLink: {
      RtValue set = EvalRec(*cmd.a, env);
      ObjVal to = EvalRec(*cmd.b, env).obj;
      for (const ObjVal& o : set.set) {
        db->Link(cmd.relation, o.pk, to.pk);
      }
      break;
    }
    case CommandKind::kClearLinks: {
      ObjVal obj = EvalRec(*cmd.a, env).obj;
      db->ClearLinks(cmd.relation, obj.pk, cmd.forward);
      break;
    }
  }
}

bool Interp::RunImpl(const CodePath& path, const ArgValues& args, orm::Database* db,
                     bool enforce_guards) const {
  orm::Database scratch = *db;  // transactional: commit only on success
  Env env{&args, &scratch, nullptr, enforce_guards};
  try {
    for (const Command& cmd : path.commands) {
      if (!enforce_guards && cmd.kind == CommandKind::kGuard) {
        continue;
      }
      ApplyCommand(cmd, env, &scratch);
    }
  } catch (const AbortError&) {
    return false;
  }
  *db = std::move(scratch);
  return true;
}

bool Interp::Run(const CodePath& path, const ArgValues& args, orm::Database* db) const {
  return RunImpl(path, args, db, /*enforce_guards=*/true);
}

bool Interp::Apply(const CodePath& path, const ArgValues& args, orm::Database* db) const {
  return RunImpl(path, args, db, /*enforce_guards=*/false);
}

}  // namespace noctua::soir
