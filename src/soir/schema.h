// Application schema: models, fields and relations (the ORM's model definitions).
//
// Mirrors what the Django integration extracts from `models.py` (paper Fig. 3): each model
// has a primary key (field 0, identified with the model's Ref sort), a list of data
// fields with optional validators (unique, positive, choices — utility classes like
// PositiveIntegerField carry consistency-relevant semantics, §2.3), and relations between
// models. Relations are first-class association sets (SOIR §3.2); foreign keys are
// many-to-one relations with an on-delete policy, expanded client-side by the ORM facade
// exactly as Django expands cascades in Python.
#ifndef SRC_SOIR_SCHEMA_H_
#define SRC_SOIR_SCHEMA_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace noctua::soir {

// Scalar field types. Float and Datetime are represented as integers throughout the
// pipeline (ticks / fixed-point); the distinction is kept for printing and typechecking.
enum class FieldType : uint8_t { kBool, kInt, kFloat, kString, kDatetime, kRef };

const char* FieldTypeName(FieldType t);

struct FieldDef {
  std::string name;
  FieldType type = FieldType::kInt;
  bool unique = false;      // unique=True — generates an injectivity axiom (§5.2)
  bool positive = false;    // PositiveIntegerField — value must be >= 0
  std::vector<std::string> choices;  // ChoiceField — value must be one of these
  int64_t default_int = 0;
  std::string default_string;
};

enum class RelationKind : uint8_t { kManyToOne, kManyToMany };
// kDoNothing mirrors Django's DO_NOTHING: deleting the target leaves the association
// dangling (referential integrity becomes the application's problem).
enum class OnDelete : uint8_t { kCascade, kSetNull, kDoNothing };

struct RelationDef {
  int id = -1;
  std::string name;          // the related key, e.g. "author"
  std::string reverse_name;  // the reversal related key, e.g. "article_set"
  int from_model = -1;       // model holding the related key (e.g. Article)
  int to_model = -1;         // target model (e.g. User)
  RelationKind kind = RelationKind::kManyToOne;
  OnDelete on_delete = OnDelete::kCascade;
};

class ModelDef {
 public:
  ModelDef(int id, std::string name, std::string pk_name)
      : id_(id), name_(std::move(name)), pk_name_(std::move(pk_name)) {}

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  // Name of the primary key (default "id"; may be a user field like User.name in Fig. 3).
  const std::string& pk_name() const { return pk_name_; }

  void AddField(FieldDef field) { fields_.push_back(std::move(field)); }
  const std::vector<FieldDef>& fields() const { return fields_; }

  // Index of a data field by name; -1 if it is the pk or unknown.
  int FieldIndex(const std::string& name) const;
  const FieldDef& field(int index) const { return fields_[index]; }
  bool IsPk(const std::string& name) const { return name == pk_name_; }

 private:
  friend class Schema;  // rename refactors reach through to name_ / fields_

  int id_;
  std::string name_;
  std::string pk_name_;
  std::vector<FieldDef> fields_;
};

// The whole application schema: models + relations, with name-based lookup.
class Schema {
 public:
  // Adds a model; pk_name defaults to "id". Returns its id.
  int AddModel(const std::string& name, const std::string& pk_name = "id");
  ModelDef& model(int id) { return models_[id]; }
  const ModelDef& model(int id) const { return models_[id]; }
  int ModelId(const std::string& name) const;
  size_t num_models() const { return models_.size(); }

  void AddField(const std::string& model, FieldDef field);

  // Rename refactors (the incremental engine's rename-edit scenarios): ids, field order
  // and every relation endpoint are untouched, so canonical fingerprints — and therefore
  // all cached verdicts — survive. The caller owns updating view functions that mention
  // the old names.
  void RenameModel(int id, const std::string& new_name);
  void RenameField(const std::string& model, const std::string& old_name,
                   const std::string& new_name);
  void RenameRelation(int id, const std::string& new_name, const std::string& new_reverse);

  // Adds a relation; reverse_name defaults to "<from_model_lowercase>_set".
  int AddRelation(const std::string& name, const std::string& from_model,
                  const std::string& to_model, RelationKind kind = RelationKind::kManyToOne,
                  OnDelete on_delete = OnDelete::kCascade, const std::string& reverse_name = "");
  const RelationDef& relation(int id) const { return relations_[id]; }
  size_t num_relations() const { return relations_.size(); }
  const std::vector<RelationDef>& relations() const { return relations_; }

  // Finds the relation with the given related key reachable from `model_id` (forward via
  // name, backward via reverse_name). Returns {relation id, is_forward}; {-1,...} if none.
  std::pair<int, bool> FindRelation(int model_id, const std::string& key) const;

  std::string ToString() const;

 private:
  std::vector<ModelDef> models_;
  std::vector<RelationDef> relations_;
  std::map<std::string, int> model_by_name_;
};

}  // namespace noctua::soir

#endif  // SRC_SOIR_SCHEMA_H_
