#include "src/support/strings.h"

#include <cstdio>

namespace noctua {

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string Pad(const std::string& s, size_t width, Align align) {
  if (s.size() >= width) {
    return s;
  }
  std::string spaces(width - s.size(), ' ');
  return align == Align::kLeft ? s + spaces : spaces + s;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return std::string(buf);
}

}  // namespace noctua
