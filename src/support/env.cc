#include "src/support/env.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>

#include "src/support/check.h"

namespace noctua::env {

const char* Raw(const char* var) { return std::getenv(var); }

bool IsSet(const char* var) {
  const char* v = Raw(var);
  return v != nullptr && *v != '\0';
}

bool FlagSet(const char* var) {
  const char* v = Raw(var);
  return v != nullptr && v[0] == '1';
}

bool ParseLong(const std::string& text, long* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  long n = std::strtol(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) {
    return false;
  }
  *out = n;
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseOnOff(const std::string& text, bool* out) {
  if (text == "on") {
    *out = true;
    return true;
  }
  if (text == "off") {
    *out = false;
    return true;
  }
  return false;
}

void WarnOnce(const char* var, const std::string& message) {
  static std::mutex mu;
  static std::set<std::string>* warned = new std::set<std::string>();
  std::lock_guard<std::mutex> lk(mu);
  if (!warned->insert(var).second) {
    return;
  }
  std::fprintf(stderr, "noctua: %s\n", message.c_str());
}

long PositiveIntOr(const char* var, long fallback, long cap) {
  const char* raw = Raw(var);
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  long n = 0;
  if (!ParseLong(raw, &n) || n <= 0) {
    WarnOnce(var, std::string("ignoring ") + var + "=\"" + raw +
                      "\" (expected a positive integer); using the default");
    return fallback;
  }
  if (n > cap) {
    WarnOnce(var, std::string(var) + "=" + raw + " exceeds the " + std::to_string(cap) +
                      "-thread cap; clamping");
    return cap;
  }
  return n;
}

long NonNegativeIntOr(const char* var, long fallback, long cap) {
  const char* raw = Raw(var);
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  long n = 0;
  if (!ParseLong(raw, &n) || n < 0) {
    WarnOnce(var, std::string("ignoring ") + var + "=\"" + raw +
                      "\" (expected a non-negative integer); using the default");
    return fallback;
  }
  if (n > cap) {
    WarnOnce(var, std::string(var) + "=" + raw + " exceeds the " + std::to_string(cap) +
                      " cap; clamping");
    return cap;
  }
  return n;
}

bool OnOffOr(const char* var, bool fallback) {
  const char* raw = Raw(var);
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  bool value = fallback;
  if (ParseOnOff(raw, &value)) {
    return value;
  }
  WarnOnce(var, std::string("ignoring ") + var + "=\"" + raw +
                    "\" (expected on or off); using " + (fallback ? "on" : "off"));
  return fallback;
}

std::string EnumOr(const char* var, std::initializer_list<const char*> allowed,
                   const char* fallback) {
  const char* raw = Raw(var);
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  for (const char* a : allowed) {
    if (std::string(raw) == a) {
      return a;
    }
  }
  std::string expected;
  size_t i = 0;
  for (const char* a : allowed) {
    if (i > 0) {
      expected += (i + 1 == allowed.size()) ? ", or " : ", ";
    }
    expected += a;
    ++i;
  }
  WarnOnce(var, std::string("ignoring ") + var + "=\"" + raw + "\" (expected " + expected +
                    "); using " + fallback);
  return fallback;
}

long RequireLongInRange(const char* var, long lo, long hi, long fallback) {
  const char* raw = Raw(var);
  if (raw == nullptr) {
    return fallback;
  }
  long n = 0;
  NOCTUA_CHECK_MSG(ParseLong(raw, &n), var << "=\"" << raw << "\" is not an integer");
  NOCTUA_CHECK_MSG(n >= lo && n <= hi,
                   var << "=" << n << " is outside [" << lo << ", " << hi << "]");
  return n;
}

double RequireDoubleInRange(const char* var, double lo, double hi, double fallback) {
  const char* raw = Raw(var);
  if (raw == nullptr) {
    return fallback;
  }
  double v = 0;
  NOCTUA_CHECK_MSG(ParseDouble(raw, &v), var << "=\"" << raw << "\" is not a number");
  NOCTUA_CHECK_MSG(v > lo && v <= hi,
                   var << "=" << v << " is outside (" << lo << ", " << hi << "]");
  return v;
}

bool RequireBool01(const char* var, bool fallback) {
  const char* raw = Raw(var);
  if (raw == nullptr) {
    return fallback;
  }
  NOCTUA_CHECK_MSG(std::string(raw) == "0" || std::string(raw) == "1",
                   var << "=\"" << raw << "\" must be 0 or 1");
  return raw[0] == '1';
}

Snapshot CaptureSnapshot() {
  Snapshot s;
  unsigned hw = std::thread::hardware_concurrency();
  s.threads = static_cast<int>(
      PositiveIntOr("NOCTUA_THREADS", hw == 0 ? 1 : static_cast<long>(hw), kMaxThreads));
  s.solver = EnumOr("NOCTUA_SOLVER", {"dfs", "cdcl", "portfolio"}, "dfs");
  s.symmetry = OnOffOr("NOCTUA_SYMMETRY", true);
  s.incremental = OnOffOr("NOCTUA_INCREMENTAL", true);
  if (const char* dir = Raw("NOCTUA_ARTIFACT_DIR")) {
    s.artifact_dir = dir;
  }
  s.verdict_cache_capacity = static_cast<size_t>(
      NonNegativeIntOr("NOCTUA_VERDICT_CACHE", 0, kMaxVerdictCacheEntries));
  return s;
}

}  // namespace noctua::env
