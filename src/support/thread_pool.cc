#include "src/support/thread_pool.h"

#include <memory>

#include "src/support/env.h"

namespace noctua {

// One ParallelFor invocation: per-participant deques plus completion accounting.
// Participant 0 is the calling thread; worker w uses slot w + 1.
struct ThreadPool::Batch {
  struct Queue {
    std::mutex mu;
    std::deque<size_t> q;
  };

  const std::function<void(size_t)>* fn = nullptr;
  std::vector<std::unique_ptr<Queue>> queues;
  std::atomic<size_t> remaining{0};      // tasks not yet finished
  std::atomic<int> active_workers{0};    // pool workers currently draining this batch
  std::atomic<uint64_t> steals{0};       // cross-deque pops within this batch

  // Pop from the front of one's own deque; steal from the back of a victim's otherwise.
  // Owners and thieves take opposite ends, so a worker keeps the cheap (earlier-
  // scheduled) tasks it was dealt and thieves take the most recently dealt ones.
  bool Pop(size_t self, size_t* out) {
    {
      Queue& mine = *queues[self];
      std::lock_guard<std::mutex> lk(mine.mu);
      if (!mine.q.empty()) {
        *out = mine.q.front();
        mine.q.pop_front();
        return true;
      }
    }
    for (size_t k = 1; k < queues.size(); ++k) {
      Queue& victim = *queues[(self + k) % queues.size()];
      std::lock_guard<std::mutex> lk(victim.mu);
      if (!victim.q.empty()) {
        *out = victim.q.back();
        victim.q.pop_back();
        steals.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }
};

ThreadPool::ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

int ThreadPool::DefaultThreads() {
  // More worker threads than env::kMaxThreads is never useful for pair verification and
  // usually a typo (an extra digit); env::PositiveIntOr clamps rather than spawn
  // thousands of threads, and rejects non-integers with a one-shot warning.
  unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(env::PositiveIntOr(
      "NOCTUA_THREADS", hw == 0 ? 1 : static_cast<long>(hw), env::kMaxThreads));
}

void ThreadPool::StartWorkers() {
  if (started_ || threads_ <= 1) {
    return;
  }
  started_ = true;
  workers_.reserve(threads_ - 1);
  for (int w = 0; w < threads_ - 1; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(static_cast<size_t>(w)); });
  }
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  uint64_t last_seen = 0;
  for (;;) {
    Batch* b;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return shutdown_ || (batch_ != nullptr && batch_seq_ != last_seen); });
      if (shutdown_) {
        return;
      }
      b = batch_;
      last_seen = batch_seq_;
      // Attach under the lock: ParallelFor only destroys the batch after observing
      // (remaining == 0 && active_workers == 0) under this same lock and unpublishing it.
      b->active_workers.fetch_add(1, std::memory_order_relaxed);
    }
    size_t idx;
    while (b->Pop(worker_index + 1, &idx)) {
      (*b->fn)(idx);
      if (b->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lk(mu_);
        done_cv_.notify_all();
      }
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      b->active_workers.fetch_sub(1, std::memory_order_acq_rel);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             const std::vector<size_t>* order) {
  if (n == 0) {
    return;
  }
  if (threads_ <= 1 || n == 1) {
    // Serial fast path: no threads, no queues — the deterministic baseline.
    if (order != nullptr) {
      for (size_t k = 0; k < n; ++k) {
        fn((*order)[k]);
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        fn(i);
      }
    }
    tasks_.fetch_add(n, std::memory_order_relaxed);
    return;
  }
  StartWorkers();

  Batch b;
  b.fn = &fn;
  b.remaining.store(n, std::memory_order_relaxed);
  size_t participants = static_cast<size_t>(threads_);
  b.queues.reserve(participants);
  for (size_t p = 0; p < participants; ++p) {
    b.queues.push_back(std::make_unique<Batch::Queue>());
  }
  // Deal tasks round-robin in dispatch order: task k goes to participant k mod P, so the
  // first P tasks of the (cheapest-first) order start simultaneously.
  for (size_t k = 0; k < n; ++k) {
    size_t idx = order != nullptr ? (*order)[k] : k;
    b.queues[k % participants]->q.push_back(idx);
  }

  {
    std::lock_guard<std::mutex> lk(mu_);
    batch_ = &b;
    ++batch_seq_;
  }
  work_cv_.notify_all();

  // The caller is participant 0.
  size_t idx;
  while (b.Pop(0, &idx)) {
    fn(idx);
    b.remaining.fetch_sub(1, std::memory_order_acq_rel);
  }

  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] {
    return b.remaining.load(std::memory_order_acquire) == 0 &&
           b.active_workers.load(std::memory_order_acquire) == 0;
  });
  batch_ = nullptr;  // unpublish before the stack frame (and Batch) dies
  tasks_.fetch_add(n, std::memory_order_relaxed);
  steals_.fetch_add(b.steals.load(std::memory_order_relaxed), std::memory_order_relaxed);
}

}  // namespace noctua
