// Lightweight assertion and fatal-error macros used across the Noctua codebase.
//
// NOCTUA_CHECK is always on (it guards logic invariants of the analyzer/verifier, which
// must hold in release builds too); NOCTUA_DCHECK compiles out in NDEBUG builds.
#ifndef SRC_SUPPORT_CHECK_H_
#define SRC_SUPPORT_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace noctua {

[[noreturn]] inline void FatalError(const char* file, int line, const std::string& msg) {
  std::cerr << "[noctua fatal] " << file << ":" << line << ": " << msg << std::endl;
  std::abort();
}

}  // namespace noctua

#define NOCTUA_CHECK(cond)                                                       \
  do {                                                                           \
    if (!(cond)) {                                                               \
      ::noctua::FatalError(__FILE__, __LINE__, "check failed: " #cond);          \
    }                                                                            \
  } while (0)

#define NOCTUA_CHECK_MSG(cond, msg)                                              \
  do {                                                                           \
    if (!(cond)) {                                                               \
      std::ostringstream noctua_os_;                                             \
      noctua_os_ << "check failed: " #cond << " — " << msg;                      \
      ::noctua::FatalError(__FILE__, __LINE__, noctua_os_.str());                \
    }                                                                            \
  } while (0)

#define NOCTUA_UNREACHABLE(msg) ::noctua::FatalError(__FILE__, __LINE__, msg)

#ifdef NDEBUG
#define NOCTUA_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define NOCTUA_DCHECK(cond) NOCTUA_CHECK(cond)
#endif

#endif  // SRC_SUPPORT_CHECK_H_
