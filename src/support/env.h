// Centralized parsing of the NOCTUA_* environment knobs.
//
// Every knob in the codebase follows one of two disciplines, and both live here so no
// module hand-rolls its own strtol-and-warn copy again:
//
//   * Lenient knobs (tuning, safe to ignore): unset means the built-in default; a valid
//     value is honored; anything else is rejected with a one-shot stderr warning and the
//     default is used. A typo is noticed, never silently absorbed. NOCTUA_THREADS,
//     NOCTUA_SOLVER, NOCTUA_SYMMETRY, NOCTUA_INCREMENTAL, NOCTUA_VERDICT_CACHE.
//
//   * Fail-fast knobs (semantics, wrong to ignore): unset means the built-in default,
//     but a set-and-malformed value is a *fatal error*. Used where running with a
//     half-understood configuration is worse than stopping: the enforcement knobs
//     (NOCTUA_ENFORCE*), and NOCTUA_ARTIFACT_DIR's writability probe in
//     src/pipeline/session.h.
//
// Long-lived processes must not re-read the environment mid-flight: a server that
// consulted getenv per request would let one setenv race every in-flight analysis.
// Snapshot (CaptureSnapshot) is the one-shot capture an Engine resolves at construction
// (pipeline/engine.h turns it into a typed EngineConfig); everything downstream of an
// Engine reads the snapshot, not the environment.
#ifndef SRC_SUPPORT_ENV_H_
#define SRC_SUPPORT_ENV_H_

#include <initializer_list>
#include <string>

namespace noctua::env {

// Raw variable access: nullptr when unset. Callers treat "" as unset.
const char* Raw(const char* var);

// True when `var` is set to a non-empty value.
bool IsSet(const char* var);

// True when `var` is set and its first character is '1' (NOCTUA_COORD_SELFCHECK).
bool FlagSet(const char* var);

// Strict scalar parses: pure functions of the text, no getenv, no policy. Return false —
// leaving *out untouched — on anything that is not exactly one well-formed value
// (trailing characters, empty string, overflow all reject).
bool ParseLong(const std::string& text, long* out);
bool ParseDouble(const std::string& text, double* out);
bool ParseOnOff(const std::string& text, bool* out);  // exactly "on" or "off"

// Prints "noctua: <message>\n" to stderr the first time it is called for `var`;
// subsequent calls for the same variable are silent. Keyed by variable name, so a knob
// re-parsed by several modules still warns exactly once per process.
void WarnOnce(const char* var, const std::string& message);

// ---------------------------------------------------------------------------------------
// Lenient knobs (warn once + fall back)

// Positive integer with an upper clamp: unset/empty returns `fallback`; malformed or
// non-positive warns and returns `fallback`; a value above `cap` warns and returns
// `cap`. (NOCTUA_THREADS)
long PositiveIntOr(const char* var, long fallback, long cap);

// Like PositiveIntOr but 0 is a valid value (e.g. "unbounded" for capacity knobs).
// (NOCTUA_VERDICT_CACHE)
long NonNegativeIntOr(const char* var, long fallback, long cap);

// on/off toggle: unset/empty returns `fallback`; malformed warns and returns `fallback`.
// (NOCTUA_SYMMETRY, NOCTUA_INCREMENTAL)
bool OnOffOr(const char* var, bool fallback);

// Enumerated knob: unset/empty returns `fallback`; a member of `allowed` is returned
// verbatim; anything else warns and returns `fallback`. (NOCTUA_SOLVER)
std::string EnumOr(const char* var, std::initializer_list<const char*> allowed,
                   const char* fallback);

// ---------------------------------------------------------------------------------------
// Fail-fast knobs (fatal on a set-and-malformed value)

// Integer in [lo, hi]: unset returns `fallback`; malformed or out-of-range is fatal with
// a message naming the variable. (NOCTUA_ENFORCE_SHARDS)
long RequireLongInRange(const char* var, long lo, long hi, long fallback);

// Double in (lo, hi]: unset returns `fallback`; malformed or out-of-range is fatal.
// (NOCTUA_ENFORCE_LEASE_MS)
double RequireDoubleInRange(const char* var, double lo, double hi, double fallback);

// Exactly "0" or "1": unset returns `fallback`; anything else is fatal. (NOCTUA_ENFORCE)
bool RequireBool01(const char* var, bool fallback);

// ---------------------------------------------------------------------------------------
// Snapshot

// One-shot capture of every analysis-affecting knob, taken at engine construction and
// never re-read. Fields hold *resolved* values (parse policy already applied), typed as
// far as this layer can without depending on smt — the engine layer lifts `solver` into
// a BackendKind.
struct Snapshot {
  // Resolved degree of parallelism: NOCTUA_THREADS if valid, else hardware concurrency.
  int threads = 1;
  // Validated backend name ("dfs", "cdcl", "portfolio"); unset resolves to the built-in
  // default, "dfs".
  std::string solver = "dfs";
  // Resolved optimization toggles (default on).
  bool symmetry = true;
  bool incremental = true;
  // NOCTUA_ARTIFACT_DIR verbatim ("" = no persistence). Writability is probed by
  // ArtifactDirFromEnv, not here: capturing a snapshot must not touch the filesystem.
  std::string artifact_dir;
  // NOCTUA_VERDICT_CACHE: entry bound for an engine's shared verdict cache. 0 (the
  // default) = unbounded — right for throwaway per-call engines; long-lived daemons
  // apply their own finite default when the knob is unset (see noctua-serve).
  size_t verdict_cache_capacity = 0;
};

Snapshot CaptureSnapshot();

// The NOCTUA_THREADS clamp shared by CaptureSnapshot and ThreadPool::DefaultThreads.
inline constexpr long kMaxThreads = 256;

// NOCTUA_VERDICT_CACHE clamp; shared with noctua-serve's --verdict-cache flag.
inline constexpr long kMaxVerdictCacheEntries = 1L << 30;

}  // namespace noctua::env

#endif  // SRC_SUPPORT_ENV_H_
