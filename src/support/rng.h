// Deterministic pseudo-random number generator (splitmix64 + xoshiro-style mixing).
//
// All randomized components (workload generator, property tests, replication simulator)
// take an explicit Rng so that every experiment in this repository is reproducible from a
// seed printed in its output.
#ifndef SRC_SUPPORT_RNG_H_
#define SRC_SUPPORT_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/support/check.h"

namespace noctua {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed ? seed : 1) {}

  // splitmix64 step: high-quality 64-bit output, tiny state.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound). bound must be positive.
  uint64_t NextBelow(uint64_t bound) {
    NOCTUA_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias (matters for property tests).
    uint64_t threshold = -bound % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  int64_t NextInRange(int64_t lo, int64_t hi) {  // inclusive range [lo, hi]
    NOCTUA_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  double NextDouble() {  // uniform in [0, 1)
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool NextBool() { return (Next() & 1) != 0; }

  // Returns true with the given probability.
  bool Chance(double p) { return NextDouble() < p; }

  // Uniform real in [lo, hi).
  double NextUniform(double lo, double hi) {
    NOCTUA_CHECK(lo <= hi);
    return lo + (hi - lo) * NextDouble();
  }

  // Exponentially distributed real with the given mean (inverse-CDF sampling). Models
  // heavy-tailed latency spikes in the fault-injection layer. mean <= 0 yields 0.
  double NextExponential(double mean) {
    if (mean <= 0) {
      return 0;
    }
    // 1 - NextDouble() is in (0, 1], so the log argument never hits zero.
    return -mean * std::log(1.0 - NextDouble());
  }

  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    NOCTUA_CHECK(!items.empty());
    return items[NextBelow(items.size())];
  }

 private:
  uint64_t state_;
};

}  // namespace noctua

#endif  // SRC_SUPPORT_RNG_H_
