// Monotonic stopwatch and deadline helpers, used for analysis/verification timing and for
// per-check solver timeouts (the paper uses a 2-second timeout per SMT check).
#ifndef SRC_SUPPORT_STOPWATCH_H_
#define SRC_SUPPORT_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace noctua {

// Measures elapsed wall time from construction (or the last Reset()).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// A point in time after which long-running work (e.g. the SMT search) must give up.
// A default-constructed Deadline never expires.
class Deadline {
 public:
  Deadline() : expires_(Clock::time_point::max()) {}

  static Deadline AfterSeconds(double seconds) {
    Deadline d;
    d.expires_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(seconds));
    return d;
  }

  static Deadline Never() { return Deadline(); }

  bool Expired() const { return Clock::now() >= expires_; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point expires_;
};

}  // namespace noctua

#endif  // SRC_SUPPORT_STOPWATCH_H_
