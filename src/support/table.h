// Plain-text table renderer used by the benchmark harnesses to print paper-style tables
// (Table 4/5/6/7) with aligned columns.
#ifndef SRC_SUPPORT_TABLE_H_
#define SRC_SUPPORT_TABLE_H_

#include <string>
#include <vector>

namespace noctua {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  // Renders the table with a header separator line.
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace noctua

#endif  // SRC_SUPPORT_TABLE_H_
