// A small work-stealing thread pool for embarrassingly parallel verification work.
//
// Design notes:
//  - Each worker owns a deque; tasks are pushed round-robin and idle workers steal from
//    the back of a victim's deque. For the verifier's workload (a few hundred
//    independent SMT checks of wildly varying cost) stealing keeps all cores busy even
//    when one worker draws several expensive pairs in a row.
//  - The caller participates: ParallelFor runs tasks on the calling thread too, so a
//    pool of N threads uses N cores, not N+1, and `threads == 1` degenerates to a plain
//    serial loop with no thread ever spawned (important for deterministic baselines).
//  - Tasks are indexed, not futures: ParallelFor(n, fn) invokes fn(i) for every
//    i in [0, n) exactly once and returns when all are done. Results are written by the
//    caller into pre-sized slots, which keeps output ordering independent of the
//    execution interleaving.
#ifndef SRC_SUPPORT_THREAD_POOL_H_
#define SRC_SUPPORT_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace noctua {

class ThreadPool {
 public:
  // `threads` is the degree of parallelism including the calling thread; values < 1 are
  // clamped to 1. The pool spawns `threads - 1` workers lazily on the first ParallelFor.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  // Cumulative scheduling statistics across all ParallelFor batches this pool ran.
  // `steals` counts tasks a participant popped from another participant's deque — a
  // direct measure of how unevenly the dealt work was sized. Callers that want the
  // numbers for one region snapshot stats() before and after. (The pool does not depend
  // on noctua::obs; the verifier bridges these into its counters.)
  struct Stats {
    uint64_t tasks = 0;
    uint64_t steals = 0;
  };
  Stats stats() const {
    return Stats{tasks_.load(std::memory_order_relaxed),
                 steals_.load(std::memory_order_relaxed)};
  }

  // Runs fn(i) for every i in [0, n) across the pool (including the calling thread) and
  // blocks until all invocations return. `order` optionally gives the dispatch order
  // (a permutation of [0, n)); earlier entries are started first — the hook for
  // cheapest-first scheduling. fn must be safe to call concurrently from different
  // threads for different i.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   const std::vector<size_t>* order = nullptr);

  // Degree of parallelism to use by default: the NOCTUA_THREADS environment variable if
  // set to a positive integer, otherwise std::thread::hardware_concurrency() (>= 1).
  static int DefaultThreads();

 private:
  struct Batch;

  void WorkerLoop(size_t worker_index);
  void StartWorkers();
  // Pops one task index for `self`, stealing from other workers' deques if its own is
  // empty. Returns false when no work is available anywhere.
  bool PopTask(size_t self, size_t* out);

  const int threads_;
  std::vector<std::thread> workers_;
  bool started_ = false;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here for a new batch
  std::condition_variable done_cv_;   // ParallelFor waits here for batch completion
  Batch* batch_ = nullptr;            // the active batch, null when idle
  uint64_t batch_seq_ = 0;            // bumped per batch so workers notice new work
  bool shutdown_ = false;

  std::atomic<uint64_t> tasks_{0};    // tasks executed, all batches
  std::atomic<uint64_t> steals_{0};   // cross-deque pops, all batches
};

}  // namespace noctua

#endif  // SRC_SUPPORT_THREAD_POOL_H_
