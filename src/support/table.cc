#include "src/support/table.h"

#include <algorithm>

#include "src/support/check.h"
#include "src/support/strings.h"

namespace noctua {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  NOCTUA_CHECK_MSG(row.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "| ";
    for (size_t c = 0; c < row.size(); ++c) {
      // First column left-aligned (names); the rest right-aligned (numbers).
      Align a = c == 0 ? Align::kLeft : Align::kRight;
      line += Pad(row[c], widths[c], a);
      line += c + 1 == row.size() ? " |" : " | ";
    }
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string sep = "|-";
  for (size_t c = 0; c < widths.size(); ++c) {
    sep += std::string(widths[c], '-');
    sep += c + 1 == widths.size() ? "-|" : "-|-";
  }
  out += sep + "\n";
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

}  // namespace noctua
