// Small string utilities shared by the printer, reports and benchmarks.
#ifndef SRC_SUPPORT_STRINGS_H_
#define SRC_SUPPORT_STRINGS_H_

#include <string>
#include <vector>

namespace noctua {

// Joins the elements of `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

// Splits `s` on the single character `sep`; empty fields are preserved.
std::vector<std::string> Split(const std::string& s, char sep);

// True if `s` begins with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

// Left-pads (Align::kRight) or right-pads (Align::kLeft) `s` with spaces to `width`.
enum class Align { kLeft, kRight };
std::string Pad(const std::string& s, size_t width, Align align = Align::kLeft);

// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double v, int digits);

}  // namespace noctua

#endif  // SRC_SUPPORT_STRINGS_H_
