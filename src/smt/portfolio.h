// The portfolio backend: races the bounded model finder and the CDCL ground-SAT backend
// on the same query, takes the first decisive verdict, and cancels the loser.
//
// Why a race instead of a choice: the two procedures have complementary cost profiles.
// The model finder is fast when three-valued pruning collapses the search (most unsat
// refutation queries), while clause learning pays off when the query has deep propagation
// structure. Per-query winners are hard to predict, so we run both and keep whichever
// answers first — the classic SAT-portfolio move, scoped to a 2-contestant race per
// query.
//
// Soundness doubles as a free oracle: both contestants decide the identical finite
// question (shared grounding + shared value domains), so whenever both finish decisively
// their verdicts MUST agree, and the race checks that with a hard failure on
// disagreement. Verdicts under a deterministic (node-only) budget stay machine-
// independent even though the *winner* is timing-dependent: cancellation only ever turns
// the loser's would-be verdict into kUnknown, never flips a decisive answer.
//
// On a machine without a second core the race degenerates: both contestants serialize,
// so every query pays for both searches plus two factory clones. The backend detects
// that (hardware_concurrency < 2) and runs a sequential cascade instead — dfs first,
// cdcl only if dfs abandons — directly on the caller's factory, since no second thread
// ever exists. Same verdicts (a cascade winner would also have won the race), same
// tallies, no racing overhead.
#ifndef SRC_SMT_PORTFOLIO_H_
#define SRC_SMT_PORTFOLIO_H_

#include <array>
#include <atomic>
#include <memory>

#include "src/smt/backend.h"
#include "src/smt/solver.h"
#include "src/smt/term.h"

namespace noctua::smt {

class PortfolioBackend : public SolverBackend {
 public:
  explicit PortfolioBackend(SolverOptions options) : options_(std::move(options)) {}

  const char* name() const override { return "portfolio"; }
  BackendCaps caps() const override {
    // Not cancellable: the race is synchronous and self-cancels its loser; an external
    // flag is only honored between races (checked before one starts). Incremental:
    // contestants persist across Checks (when incremental solving is on), so their
    // ground caches see the shared frame of a pair session — racing included, because
    // each contestant's private clone factory hash-conses repeated frames to the same
    // terms.
    return BackendCaps{/*deterministic_budget=*/true, /*produces_model=*/true,
                       /*cancellable=*/false, /*incremental=*/true};
  }
  const SmtModel& model() const override { return model_; }
  const SolverStats& stats() const override { return stats_; }
  void set_cancel(const std::atomic<bool>* cancel) override { cancel_ = cancel; }

  // Overrides the race-vs-cascade choice: 1 forces the threaded race, 0 forces the
  // sequential cascade, -1 restores hardware detection. Tests use this to cover both
  // paths regardless of the machine they run on.
  static void SetRaceModeForTesting(int mode);

 protected:
  SolveResult DoCheck(TermFactory& factory, const std::vector<Term>& assertions) override;

 private:
  SolveResult Cascade(TermFactory& factory, const std::vector<Term>& assertions);

  SolverOptions options_;
  SmtModel model_;
  SolverStats stats_;
  // Persistent contestants (incremental solving): the cascade pair runs on the caller's
  // factory (its ground caches self-invalidate if that factory changes); the race pair
  // owns private clone factories so repeated frames hash-cons to identical terms and
  // re-grounding is skipped. All reset per Check via ResetAssertions.
  std::array<std::unique_ptr<SolverBackend>, 2> cascade_backends_;
  std::array<std::unique_ptr<TermFactory>, 2> race_factories_;
  std::array<std::unique_ptr<SolverBackend>, 2> race_backends_;
  const std::atomic<bool>* cancel_ = nullptr;
};

}  // namespace noctua::smt

#endif  // SRC_SMT_PORTFOLIO_H_
