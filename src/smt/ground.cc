#include "src/smt/ground.h"

#include <algorithm>
#include <unordered_set>

#include "src/support/check.h"

namespace noctua::smt {

std::vector<Term> Grounder::DomainElements(const Sort& sort) {
  std::vector<Term> out;
  if (sort->is_ref()) {
    int n = scope_.RefSize(sort->model_id());
    out.reserve(n);
    for (int i = 0; i < n; ++i) {
      out.push_back(f_->RefLit(sort, i));
    }
  } else if (sort->is_pair()) {
    const Sort& s1 = sort->children()[0];
    const Sort& s2 = sort->children()[1];
    int n1 = scope_.RefSize(s1->model_id());
    int n2 = scope_.RefSize(s2->model_id());
    out.reserve(static_cast<size_t>(n1) * n2);
    for (int i = 0; i < n1; ++i) {
      for (int j = 0; j < n2; ++j) {
        out.push_back(f_->MkPair(f_->RefLit(s1, i), f_->RefLit(s2, j)));
      }
    }
  } else {
    NOCTUA_UNREACHABLE("domain of non-finite sort");
  }
  return out;
}

Term Grounder::GroundBinder(Term t) {
  ++binders_expanded_;
  int64_t var_id = t->int_payload();
  const Sort& dom = t->binder_sort();
  std::vector<Term> elems = DomainElements(dom);

  // Instantiates body child `c` at domain element `e` and grounds the result (the body
  // may contain nested binders).
  auto inst = [&](size_t c, Term e) {
    return Ground(SubstituteBoundVar(*f_, t->child(c), var_id, e));
  };

  switch (t->kind()) {
    case TermKind::kForall: {
      std::vector<Term> parts;
      parts.reserve(elems.size());
      for (Term e : elems) {
        parts.push_back(inst(0, e));
      }
      return f_->And(std::move(parts));
    }
    case TermKind::kExists: {
      std::vector<Term> parts;
      parts.reserve(elems.size());
      for (Term e : elems) {
        parts.push_back(inst(0, e));
      }
      return f_->Or(std::move(parts));
    }
    case TermKind::kCount: {
      Term acc = f_->IntLit(0);
      for (Term e : elems) {
        acc = f_->Add(acc, f_->Ite(inst(0, e), f_->IntLit(1), f_->IntLit(0)));
      }
      return acc;
    }
    case TermKind::kSum: {
      Term acc = f_->IntLit(0);
      for (Term e : elems) {
        acc = f_->Add(acc, f_->Ite(inst(0, e), inst(1, e), f_->IntLit(0)));
      }
      return acc;
    }
    case TermKind::kMinAgg:
    case TermKind::kMaxAgg: {
      bool is_min = t->kind() == TermKind::kMinAgg;
      Term acc = f_->IntLit(0);       // empty aggregates yield 0 by convention
      Term found = f_->False();
      for (Term e : elems) {
        Term cond = inst(0, e);
        Term val = inst(1, e);
        Term better = is_min ? f_->Lt(val, acc) : f_->Lt(acc, val);
        Term take = f_->And(cond, f_->Or(f_->Not(found), better));
        acc = f_->Ite(take, val, acc);
        found = f_->Or(found, cond);
      }
      return acc;
    }
    case TermKind::kArgExtreme: {
      bool want_max = t->int_payload2() != 0;
      NOCTUA_CHECK(!elems.empty());
      Term acc = elems[0];            // empty sets yield element 0 by convention
      Term acc_key = f_->IntLit(0);
      Term found = f_->False();
      for (Term e : elems) {
        Term cond = inst(0, e);
        Term key = inst(1, e);
        // Strict improvement keeps the earliest element on ties (matching the evaluator).
        Term better = want_max ? f_->Lt(acc_key, key) : f_->Lt(key, acc_key);
        Term take = f_->And(cond, f_->Or(f_->Not(found), better));
        acc = f_->Ite(take, e, acc);
        acc_key = f_->Ite(take, key, acc_key);
        found = f_->Or(found, cond);
      }
      return acc;
    }
    case TermKind::kArrayLambda:
      // Lambdas only ever occur under Select, which beta-reduces at construction; a
      // surviving lambda would mean an array-valued leaf, which the encoder never builds.
      NOCTUA_UNREACHABLE("array lambda survived grounding");
    default:
      NOCTUA_UNREACHABLE("not a binder");
  }
}

Term Grounder::Ground(Term t) {
  if (!t->has_bound_var()) {
    auto it = memo_.find(t);
    if (it != memo_.end()) {
      return it->second;
    }
  }
  Term result;
  switch (t->kind()) {
    case TermKind::kForall:
    case TermKind::kExists:
    case TermKind::kCount:
    case TermKind::kSum:
    case TermKind::kMinAgg:
    case TermKind::kMaxAgg:
    case TermKind::kArgExtreme:
      result = GroundBinder(t);
      break;
    default: {
      if (t->children().empty()) {
        result = t;
        break;
      }
      std::vector<Term> kids;
      kids.reserve(t->children().size());
      bool changed = false;
      for (Term c : t->children()) {
        Term g = Ground(c);
        changed = changed || g != c;
        kids.push_back(g);
      }
      result = changed ? RebuildTerm(*f_, t, std::move(kids)) : t;
      break;
    }
  }
  if (!t->has_bound_var()) {
    memo_.emplace(t, result);
  }
  return result;
}

bool Grounder::IsGroundAtom(Term t) {
  if (t->kind() == TermKind::kConst) {
    return !t->sort()->is_array() && !t->sort()->is_tuple();
  }
  if (t->kind() == TermKind::kSelect) {
    Term base = t->child(0);
    return base->kind() == TermKind::kConst && IsGroundIndex(t->child(1)) &&
           !t->sort()->is_tuple();
  }
  if (t->kind() == TermKind::kProj) {
    Term cell = t->child(0);
    return cell->kind() == TermKind::kSelect && cell->child(0)->kind() == TermKind::kConst &&
           IsGroundIndex(cell->child(1));
  }
  return false;
}

void Grounder::CollectAtoms(Term grounded, std::vector<Term>* atoms) {
  std::unordered_set<Term> seen;
  auto walk = [&](Term t, auto&& self) -> void {
    if (!seen.insert(t).second) {
      return;
    }
    if (IsGroundAtom(t)) {
      atoms->push_back(t);
      return;
    }
    for (Term c : t->children()) {
      self(c, self);
    }
  };
  walk(grounded, walk);
}

bool GroundAndFlatten(Grounder& g, TermFactory& f, const std::vector<Term>& assertions,
                      std::vector<Term>* out) {
  for (Term a : assertions) {
    Term ground = g.Ground(f.And(a, f.True()));  // And() normalizes/flattens
    if (ground->kind() == TermKind::kAnd) {
      for (Term c : ground->children()) {
        out->push_back(c);
      }
    } else {
      out->push_back(ground);
    }
  }
  for (Term a : *out) {
    if (a->IsBoolLit(false)) {
      return false;
    }
  }
  out->erase(std::remove_if(out->begin(), out->end(),
                            [](Term a) { return a->IsBoolLit(true); }),
             out->end());
  return true;
}

bool IncrementalGrounder::Ground(TermFactory& f, const Scope& scope,
                                 const std::vector<Term>& assertions, std::vector<Term>* out,
                                 uint64_t* reuse_hits, uint64_t* binders_expanded) {
  if (factory_ != &f) {
    // Term identity is per-factory: a new factory invalidates everything.
    factory_ = &f;
    grounder_ = std::make_unique<Grounder>(&f, scope);
    roots_.clear();
  }
  const uint64_t before = grounder_->binders_expanded();
  bool feasible = true;
  for (Term a : assertions) {
    auto it = roots_.find(a);
    if (it == roots_.end()) {
      Entry e;
      e.feasible = GroundAndFlatten(*grounder_, f, {a}, &e.conjuncts);
      it = roots_.emplace(a, std::move(e)).first;
    } else if (reuse_hits != nullptr) {
      ++*reuse_hits;
    }
    if (!it->second.feasible) {
      feasible = false;
    } else {
      out->insert(out->end(), it->second.conjuncts.begin(), it->second.conjuncts.end());
    }
  }
  if (binders_expanded != nullptr) {
    *binders_expanded += grounder_->binders_expanded() - before;
  }
  return feasible;
}

std::string GroundAtomName(Term atom) {
  switch (atom->kind()) {
    case TermKind::kConst:
      return atom->str_payload();
    case TermKind::kSelect: {
      Term idx = atom->child(1);
      std::string i = idx->kind() == TermKind::kRefLit
                          ? std::to_string(idx->int_payload())
                          : "(" + std::to_string(idx->child(0)->int_payload()) + "," +
                                std::to_string(idx->child(1)->int_payload()) + ")";
      return GroundAtomName(atom->child(0)) + "[" + i + "]";
    }
    case TermKind::kProj:
      return GroundAtomName(atom->child(0)) + "." + std::to_string(atom->int_payload());
    default:
      return atom->ToString();
  }
}

Term SubstGround(TermFactory& f, Term t, const std::unordered_map<Term, Term>& values,
                 std::unordered_map<Term, Term>& memo) {
  auto vit = values.find(t);
  if (vit != values.end()) {
    return vit->second;
  }
  if (t->children().empty()) {
    return t;
  }
  auto it = memo.find(t);
  if (it != memo.end()) {
    return it->second;
  }
  std::vector<Term> kids;
  kids.reserve(t->children().size());
  bool changed = false;
  for (Term c : t->children()) {
    Term nc = SubstGround(f, c, values, memo);
    changed = changed || nc != c;
    kids.push_back(nc);
  }
  Term result = changed ? RebuildTerm(f, t, std::move(kids)) : t;
  // The rebuilt term may expose an assigned atom (e.g. a fresh Select cell).
  vit = values.find(result);
  if (vit != values.end()) {
    result = vit->second;
  }
  memo.emplace(t, result);
  return result;
}

Term SubstFixpoint(TermFactory& f, Term t, const std::unordered_map<Term, Term>& values,
                   std::unordered_map<Term, Term>& memo) {
  for (int round = 0; round < 16; ++round) {
    Term r = SubstGround(f, t, values, memo);
    if (r == t) {
      return r;
    }
    t = r;
  }
  return t;
}

Term FindFirstAtom(Term t, std::unordered_map<Term, Term>& memo) {
  auto it = memo.find(t);
  if (it != memo.end()) {
    return it->second;
  }
  Term found = nullptr;
  if (Grounder::IsGroundAtom(t)) {
    found = t;
  } else {
    for (Term c : t->children()) {
      found = FindFirstAtom(c, memo);
      if (found != nullptr) {
        break;
      }
    }
  }
  memo.emplace(t, found);
  return found;
}

}  // namespace noctua::smt
