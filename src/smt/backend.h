// The verifier <-> solver boundary: an abstract decision-procedure interface.
//
// The paper treats its solver as a black box behind a fixed query shape (assert a
// refutation query, ask sat/unsat under a budget, read a counterexample model). This
// header makes that boundary explicit so decision procedures can be swapped without
// touching the verifier: the bounded model finder ("dfs", solver.h), a CDCL-style ground
// SAT solver ("cdcl", cdcl.h), and a portfolio that races the two per query
// ("portfolio", portfolio.h).
//
// Construction happens in exactly one place — MakeBackend — so every call site (verifier,
// tests, benches) picks its procedure through SolverOptions::backend / NOCTUA_SOLVER
// rather than naming a concrete class.
//
// Soundness contract: all backends decide the *same* finite question. Each one
// preprocesses its query through GroundAndFlatten (identical grounding) and draws
// candidate values from ValueDomains (identical domains), so for any query that no
// backend abandons (kUnknown), all backends must return the same verdict. Models may
// differ — a satisfiable query can have many witnesses — but sat/unsat may not. The
// portfolio backend and the cross-backend tests check this invariant at runtime.
#ifndef SRC_SMT_BACKEND_H_
#define SRC_SMT_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/smt/budget.h"
#include "src/smt/solver.h"
#include "src/smt/term.h"

namespace noctua::smt {

// What a backend can do, beyond deciding satisfiability. The verifier consults these
// rather than switching on the backend's name.
struct BackendCaps {
  // Honors Budget::deterministic: bounded by max_nodes only, verdicts independent of
  // machine speed. False for backends whose verdict can depend on wall-clock timing
  // (the portfolio race).
  bool deterministic_budget = false;
  // Fills model() with a witness on kSat.
  bool produces_model = false;
  // Polls a set_cancel flag at budget checkpoints and abandons with kUnknown.
  bool cancellable = false;
};

// One decision procedure. Usage:
//
//   auto backend = MakeBackend(options);
//   backend->AssertAll(assertions);
//   SolveResult r = backend->Check(factory);
//   if (r == SolveResult::kSat) { ... backend->model() ... }
//
// Backends are single-use per Check in spirit but reusable in practice: Check decides the
// conjunction of everything asserted so far and may be called again after further
// Asserts. The factory passed to Check must be the one that created the asserted terms.
// Like TermFactory, a backend instance is not thread-safe; create one per thread.
class SolverBackend {
 public:
  virtual ~SolverBackend() = default;

  void Assert(Term t) { assertions_.push_back(t); }
  void AssertAll(const std::vector<Term>& ts) {
    assertions_.insert(assertions_.end(), ts.begin(), ts.end());
  }
  const std::vector<Term>& assertions() const { return assertions_; }

  // Decides satisfiability of the conjunction of all asserted terms.
  SolveResult Check(TermFactory& factory) { return DoCheck(factory, assertions_); }

  // Stable lower-case identifier ("dfs", "cdcl", "portfolio"): the tag verdict caches
  // and bench JSON use.
  virtual const char* name() const = 0;
  virtual BackendCaps caps() const = 0;

  // Valid after Check returned kSat (when caps().produces_model).
  virtual const SmtModel& model() const = 0;
  virtual const SolverStats& stats() const = 0;

  // Installs a cooperative cancellation flag (nullptr to clear); see Solver::set_cancel.
  virtual void set_cancel(const std::atomic<bool>* cancel) = 0;

 protected:
  virtual SolveResult DoCheck(TermFactory& factory, const std::vector<Term>& assertions) = 0;

 private:
  std::vector<Term> assertions_;
};

// THE factory: the only place concrete backends are constructed. Resolves
// options.backend (kAuto consults NOCTUA_SOLVER) and returns the matching procedure.
std::unique_ptr<SolverBackend> MakeBackend(const SolverOptions& options);

// Same, with the kind pinned explicitly (ignoring options.backend). The portfolio uses
// this to build its two contestants; tests use it to pin a procedure under test.
std::unique_ptr<SolverBackend> MakeBackend(BackendKind kind, const SolverOptions& options);

// Process-wide portfolio tallies, accumulated across every portfolio Check since process
// start. The verifier snapshots these around a run to report win deltas; bench JSON
// stamps them into sweep preambles.
struct PortfolioCounts {
  uint64_t races = 0;      // portfolio Checks executed
  uint64_t wins_dfs = 0;   // races where the model finder answered first
  uint64_t wins_cdcl = 0;  // races where the SAT backend answered first
  uint64_t undecided = 0;  // races where neither produced a decisive verdict
};
PortfolioCounts GetPortfolioCounts();

}  // namespace noctua::smt

#endif  // SRC_SMT_BACKEND_H_
