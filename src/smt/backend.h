// The verifier <-> solver boundary: an abstract decision-procedure interface.
//
// The paper treats its solver as a black box behind a fixed query shape (assert a
// refutation query, ask sat/unsat under a budget, read a counterexample model). This
// header makes that boundary explicit so decision procedures can be swapped without
// touching the verifier: the bounded model finder ("dfs", solver.h), a CDCL-style ground
// SAT solver ("cdcl", cdcl.h), and a portfolio that races the two per query
// ("portfolio", portfolio.h).
//
// Construction happens in exactly one place — MakeBackend — so every call site (verifier,
// tests, benches) picks its procedure through SolverOptions::backend / NOCTUA_SOLVER
// rather than naming a concrete class.
//
// Soundness contract: all backends decide the *same* finite question. Each one
// preprocesses its query through GroundAndFlatten (identical grounding) and draws
// candidate values from ValueDomains (identical domains), so for any query that no
// backend abandons (kUnknown), all backends must return the same verdict. Models may
// differ — a satisfiable query can have many witnesses — but sat/unsat may not. The
// portfolio backend and the cross-backend tests check this invariant at runtime.
#ifndef SRC_SMT_BACKEND_H_
#define SRC_SMT_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/smt/budget.h"
#include "src/smt/solver.h"
#include "src/smt/term.h"
#include "src/support/check.h"

namespace noctua::smt {

// What a backend can do, beyond deciding satisfiability. The verifier consults these
// rather than switching on the backend's name.
struct BackendCaps {
  // Honors Budget::deterministic: bounded by max_nodes only, verdicts independent of
  // machine speed. False for backends whose verdict can depend on wall-clock timing
  // (the portfolio race).
  bool deterministic_budget = false;
  // Fills model() with a witness on kSat.
  bool produces_model = false;
  // Polls a set_cancel flag at budget checkpoints and abandons with kUnknown.
  bool cancellable = false;
  // Retains grounding work across Checks on the same factory, so a Push/Assert/Check/Pop
  // sequence over a stable frame re-grounds only the pushed deltas. All backends accept
  // the Push/Pop interface (it lives in the base class); this cap advertises that
  // repeated Checks actually get cheaper, which is what the verifier's pair sessions
  // key on.
  bool incremental = false;
};

// One decision procedure. Usage:
//
//   auto backend = MakeBackend(options);
//   backend->AssertAll(assertions);
//   SolveResult r = backend->Check(factory);
//   if (r == SolveResult::kSat) { ... backend->model() ... }
//
// Backends are single-use per Check in spirit but reusable in practice: Check decides the
// conjunction of everything asserted so far and may be called again after further
// Asserts. The factory passed to Check must be the one that created the asserted terms.
// Like TermFactory, a backend instance is not thread-safe; create one per thread.
//
// Incremental use: Push opens an assertion frame, Pop discards everything asserted since
// the matching Push. The verifier asserts one pair's common frame (axioms, shared path
// definitions) at level zero, then solves each query direction as Push / Assert(negated
// goal) / Check / Pop on the same backend instance — the persistent ground cache inside
// the concrete backends (see caps().incremental) makes the repeated frame essentially
// free.
class SolverBackend {
 public:
  virtual ~SolverBackend() = default;

  void Assert(Term t) { assertions_.push_back(t); }
  void AssertAll(const std::vector<Term>& ts) {
    assertions_.insert(assertions_.end(), ts.begin(), ts.end());
  }
  // Alias of Assert, matching the incremental-API naming used alongside Push/Pop.
  void AddAssertion(Term t) { Assert(t); }
  const std::vector<Term>& assertions() const { return assertions_; }

  // Opens an assertion frame: Pop removes every assertion added since the matching Push.
  void Push() { frames_.push_back(assertions_.size()); }
  void Pop() {
    NOCTUA_CHECK_MSG(!frames_.empty(), "SolverBackend::Pop without matching Push");
    assertions_.resize(frames_.back());
    frames_.pop_back();
  }
  size_t num_frames() const { return frames_.size(); }
  // Clears all assertions and frames; grounding caches inside the backend survive.
  void ResetAssertions() {
    assertions_.clear();
    frames_.clear();
  }

  // Decides satisfiability of the conjunction of all asserted terms. Assertions from the
  // innermost frame are passed to the procedure first: the newest frame holds the
  // (negated) per-query goal, and goal-first ordering is the search heuristic every
  // caller of the non-incremental path already encodes by hand.
  SolveResult Check(TermFactory& factory) {
    if (frames_.empty()) {
      return DoCheck(factory, assertions_);
    }
    std::vector<Term> ordered;
    ordered.reserve(assertions_.size());
    size_t end = assertions_.size();
    for (size_t i = frames_.size(); i-- > 0;) {
      ordered.insert(ordered.end(), assertions_.begin() + static_cast<long>(frames_[i]),
                     assertions_.begin() + static_cast<long>(end));
      end = frames_[i];
    }
    ordered.insert(ordered.end(), assertions_.begin(),
                   assertions_.begin() + static_cast<long>(end));
    return DoCheck(factory, ordered);
  }

  // Stable lower-case identifier ("dfs", "cdcl", "portfolio"): the tag verdict caches
  // and bench JSON use.
  virtual const char* name() const = 0;
  virtual BackendCaps caps() const = 0;

  // Valid after Check returned kSat (when caps().produces_model).
  virtual const SmtModel& model() const = 0;
  virtual const SolverStats& stats() const = 0;

  // Installs a cooperative cancellation flag (nullptr to clear); see Solver::set_cancel.
  virtual void set_cancel(const std::atomic<bool>* cancel) = 0;

 protected:
  virtual SolveResult DoCheck(TermFactory& factory, const std::vector<Term>& assertions) = 0;

 private:
  std::vector<Term> assertions_;
  std::vector<size_t> frames_;  // start index of each open Push frame
};

// THE factory: the only place concrete backends are constructed. Resolves
// options.backend (kAuto consults NOCTUA_SOLVER) and returns the matching procedure.
std::unique_ptr<SolverBackend> MakeBackend(const SolverOptions& options);

// Same, with the kind pinned explicitly (ignoring options.backend). The portfolio uses
// this to build its two contestants; tests use it to pin a procedure under test.
std::unique_ptr<SolverBackend> MakeBackend(BackendKind kind, const SolverOptions& options);

// Process-wide portfolio tallies, accumulated across every portfolio Check since process
// start. The verifier snapshots these around a run to report win deltas; bench JSON
// stamps them into sweep preambles.
struct PortfolioCounts {
  uint64_t races = 0;      // portfolio Checks executed
  uint64_t wins_dfs = 0;   // races where the model finder answered first
  uint64_t wins_cdcl = 0;  // races where the SAT backend answered first
  uint64_t undecided = 0;  // races where neither produced a decisive verdict
};
PortfolioCounts GetPortfolioCounts();

// Process-wide optimization tallies, accumulated by every concrete backend at the end of
// each Check (portfolio contestants count individually). Same reporting pattern as
// PortfolioCounts: the verifier snapshots before/after a run and reports the deltas,
// bench JSON stamps the totals into preambles.
struct SolverSharedCounts {
  uint64_t incremental_reuse_hits = 0;   // root assertions served from a ground cache
  uint64_t symmetry_pruned = 0;          // values (dfs) / clause slots (cdcl) pruned
  uint64_t cdcl_restarts = 0;            // Luby restarts performed
  uint64_t cdcl_clauses_forgotten = 0;   // learned clauses dropped by DB reduction
};
SolverSharedCounts GetSolverSharedCounts();
// Folds one Check's stats into the process-wide tallies; called by concrete backends.
void AccumulateSolverSharedCounts(const SolverStats& stats);

// Resolved values of the optimization toggles for a given options struct (kAuto defers
// to NOCTUA_SYMMETRY / NOCTUA_INCREMENTAL; both default to on).
bool SymmetryEnabled(const SolverOptions& options);
bool IncrementalEnabled(const SolverOptions& options);

}  // namespace noctua::smt

#endif  // SRC_SMT_BACKEND_H_
