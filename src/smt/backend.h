// The verifier <-> solver boundary: an abstract decision-procedure interface.
//
// The paper treats its solver as a black box behind a fixed query shape (assert a
// refutation query, ask sat/unsat under a budget, read a counterexample model). This
// header makes that boundary explicit so decision procedures can be swapped without
// touching the verifier: the bounded model finder ("dfs", solver.h), a CDCL-style ground
// SAT solver ("cdcl", cdcl.h), and a portfolio that races the two per query
// ("portfolio", portfolio.h).
//
// Construction happens in exactly one place — MakeBackend — so every call site (verifier,
// tests, benches) picks its procedure through SolverOptions::backend / NOCTUA_SOLVER
// rather than naming a concrete class.
//
// Soundness contract: all backends decide the *same* finite question. Each one
// preprocesses its query through GroundAndFlatten (identical grounding) and draws
// candidate values from ValueDomains (identical domains), so for any query that no
// backend abandons (kUnknown), all backends must return the same verdict. Models may
// differ — a satisfiable query can have many witnesses — but sat/unsat may not. The
// portfolio backend and the cross-backend tests check this invariant at runtime.
#ifndef SRC_SMT_BACKEND_H_
#define SRC_SMT_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/smt/budget.h"
#include "src/smt/solver.h"
#include "src/smt/term.h"
#include "src/support/check.h"

namespace noctua::smt {

// What a backend can do, beyond deciding satisfiability. The verifier consults these
// rather than switching on the backend's name.
struct BackendCaps {
  // Honors Budget::deterministic: bounded by max_nodes only, verdicts independent of
  // machine speed. False for backends whose verdict can depend on wall-clock timing
  // (the portfolio race).
  bool deterministic_budget = false;
  // Fills model() with a witness on kSat.
  bool produces_model = false;
  // Polls a set_cancel flag at budget checkpoints and abandons with kUnknown.
  bool cancellable = false;
  // Retains grounding work across Checks on the same factory, so a Push/Assert/Check/Pop
  // sequence over a stable frame re-grounds only the pushed deltas. All backends accept
  // the Push/Pop interface (it lives in the base class); this cap advertises that
  // repeated Checks actually get cheaper, which is what the verifier's pair sessions
  // key on.
  bool incremental = false;
};

// One decision procedure. Usage:
//
//   auto backend = MakeBackend(options);
//   backend->AssertAll(assertions);
//   SolveResult r = backend->Check(factory);
//   if (r == SolveResult::kSat) { ... backend->model() ... }
//
// Backends are single-use per Check in spirit but reusable in practice: Check decides the
// conjunction of everything asserted so far and may be called again after further
// Asserts. The factory passed to Check must be the one that created the asserted terms.
// Like TermFactory, a backend instance is not thread-safe; create one per thread.
//
// Incremental use: Push opens an assertion frame, Pop discards everything asserted since
// the matching Push. The verifier asserts one pair's common frame (axioms, shared path
// definitions) at level zero, then solves each query direction as Push / Assert(negated
// goal) / Check / Pop on the same backend instance — the persistent ground cache inside
// the concrete backends (see caps().incremental) makes the repeated frame essentially
// free.
class SolverBackend {
 public:
  virtual ~SolverBackend() = default;

  void Assert(Term t) { assertions_.push_back(t); }
  void AssertAll(const std::vector<Term>& ts) {
    assertions_.insert(assertions_.end(), ts.begin(), ts.end());
  }
  // Alias of Assert, matching the incremental-API naming used alongside Push/Pop.
  void AddAssertion(Term t) { Assert(t); }
  const std::vector<Term>& assertions() const { return assertions_; }

  // Opens an assertion frame: Pop removes every assertion added since the matching Push.
  void Push() { frames_.push_back(assertions_.size()); }
  void Pop() {
    NOCTUA_CHECK_MSG(!frames_.empty(), "SolverBackend::Pop without matching Push");
    assertions_.resize(frames_.back());
    frames_.pop_back();
  }
  size_t num_frames() const { return frames_.size(); }
  // Clears all assertions and frames; grounding caches inside the backend survive.
  void ResetAssertions() {
    assertions_.clear();
    frames_.clear();
  }

  // Decides satisfiability of the conjunction of all asserted terms. Assertions from the
  // innermost frame are passed to the procedure first: the newest frame holds the
  // (negated) per-query goal, and goal-first ordering is the search heuristic every
  // caller of the non-incremental path already encodes by hand.
  SolveResult Check(TermFactory& factory) {
    if (frames_.empty()) {
      return DoCheck(factory, assertions_);
    }
    std::vector<Term> ordered;
    ordered.reserve(assertions_.size());
    size_t end = assertions_.size();
    for (size_t i = frames_.size(); i-- > 0;) {
      ordered.insert(ordered.end(), assertions_.begin() + static_cast<long>(frames_[i]),
                     assertions_.begin() + static_cast<long>(end));
      end = frames_[i];
    }
    ordered.insert(ordered.end(), assertions_.begin(),
                   assertions_.begin() + static_cast<long>(end));
    return DoCheck(factory, ordered);
  }

  // Stable lower-case identifier ("dfs", "cdcl", "portfolio"): the tag verdict caches
  // and bench JSON use.
  virtual const char* name() const = 0;
  virtual BackendCaps caps() const = 0;

  // Valid after Check returned kSat (when caps().produces_model).
  virtual const SmtModel& model() const = 0;
  virtual const SolverStats& stats() const = 0;

  // Installs a cooperative cancellation flag (nullptr to clear); see Solver::set_cancel.
  virtual void set_cancel(const std::atomic<bool>* cancel) = 0;

 protected:
  virtual SolveResult DoCheck(TermFactory& factory, const std::vector<Term>& assertions) = 0;

 private:
  std::vector<Term> assertions_;
  std::vector<size_t> frames_;  // start index of each open Push frame
};

// THE factory: the only place concrete backends are constructed. Resolves
// options.backend (kAuto consults NOCTUA_SOLVER) and returns the matching procedure.
std::unique_ptr<SolverBackend> MakeBackend(const SolverOptions& options);

// Same, with the kind pinned explicitly (ignoring options.backend). The portfolio uses
// this to build its two contestants; tests use it to pin a procedure under test.
std::unique_ptr<SolverBackend> MakeBackend(BackendKind kind, const SolverOptions& options);

// Portfolio tallies, accumulated across portfolio Checks. The verifier snapshots these
// around a run to report win deltas; bench JSON stamps the process-lifetime totals into
// sweep preambles.
struct PortfolioCounts {
  uint64_t races = 0;      // portfolio Checks executed
  uint64_t wins_dfs = 0;   // races where the model finder answered first
  uint64_t wins_cdcl = 0;  // races where the SAT backend answered first
  uint64_t undecided = 0;  // races where neither produced a decisive verdict
};

// Optimization tallies, accumulated by every concrete backend at the end of each Check
// (portfolio contestants count individually). Same reporting pattern as PortfolioCounts:
// the verifier snapshots before/after a run and reports the deltas.
struct SolverSharedCounts {
  uint64_t incremental_reuse_hits = 0;   // root assertions served from a ground cache
  uint64_t symmetry_pruned = 0;          // values (dfs) / clause slots (cdcl) pruned
  uint64_t cdcl_restarts = 0;            // Luby restarts performed
  uint64_t cdcl_clauses_forgotten = 0;   // learned clauses dropped by DB reduction
};

// Where one run's solver tallies land. Historically these were process-wide statics,
// which a long-lived multi-tenant engine would cross-contaminate: two concurrent runs
// snapshotting before/after deltas of one shared set of atomics read each other's work.
// A sink is now an owned object — each noctua::Engine holds one — installed per worker
// task through ScopedSolverCounterSink. Accumulations always ALSO land in the
// process-wide instance (ProcessSolverCounters), so process-lifetime totals (bench JSON
// preambles, GetSolverSharedCounts/GetPortfolioCounts) keep their historical meaning.
class SolverCounterSink {
 public:
  SolverCounterSink() = default;
  SolverCounterSink(const SolverCounterSink&) = delete;
  SolverCounterSink& operator=(const SolverCounterSink&) = delete;

  SolverSharedCounts Shared() const {
    SolverSharedCounts c;
    c.incremental_reuse_hits = reuse_hits_.load(std::memory_order_relaxed);
    c.symmetry_pruned = symmetry_pruned_.load(std::memory_order_relaxed);
    c.cdcl_restarts = cdcl_restarts_.load(std::memory_order_relaxed);
    c.cdcl_clauses_forgotten = cdcl_forgotten_.load(std::memory_order_relaxed);
    return c;
  }
  PortfolioCounts Portfolio() const {
    PortfolioCounts c;
    c.races = races_.load(std::memory_order_relaxed);
    c.wins_dfs = wins_dfs_.load(std::memory_order_relaxed);
    c.wins_cdcl = wins_cdcl_.load(std::memory_order_relaxed);
    c.undecided = undecided_.load(std::memory_order_relaxed);
    return c;
  }

  void AddShared(const SolverStats& stats);
  void AddRace(int winner);  // 0 = dfs, 1 = cdcl, -1 = undecided

 private:
  std::atomic<uint64_t> reuse_hits_{0};
  std::atomic<uint64_t> symmetry_pruned_{0};
  std::atomic<uint64_t> cdcl_restarts_{0};
  std::atomic<uint64_t> cdcl_forgotten_{0};
  std::atomic<uint64_t> races_{0};
  std::atomic<uint64_t> wins_dfs_{0};
  std::atomic<uint64_t> wins_cdcl_{0};
  std::atomic<uint64_t> undecided_{0};
};

// The process-wide sink: the default target when no scoped sink is installed, and the
// always-written lifetime totals behind GetSolverSharedCounts/GetPortfolioCounts.
SolverCounterSink& ProcessSolverCounters();

// The calling thread's current sink (never null; defaults to ProcessSolverCounters).
SolverCounterSink* CurrentSolverCounterSink();

// Installs `sink` as the calling thread's accumulation target for its lifetime; restores
// the previous sink on destruction. The verifier's pair loop installs its engine's sink
// inside every worker task, and the portfolio race re-installs the caller's sink on its
// contestant threads. Passing nullptr is a no-op install (the current sink stays).
class ScopedSolverCounterSink {
 public:
  explicit ScopedSolverCounterSink(SolverCounterSink* sink);
  ~ScopedSolverCounterSink();
  ScopedSolverCounterSink(const ScopedSolverCounterSink&) = delete;
  ScopedSolverCounterSink& operator=(const ScopedSolverCounterSink&) = delete;

 private:
  SolverCounterSink* prev_;
};

// Process-lifetime totals (reads ProcessSolverCounters). Bench JSON stamps these into
// sweep preambles; per-run deltas come from an engine-owned sink instead.
PortfolioCounts GetPortfolioCounts();
SolverSharedCounts GetSolverSharedCounts();

// Folds one Check's stats into the current sink (and the process totals); called by
// concrete backends.
void AccumulateSolverSharedCounts(const SolverStats& stats);

// Records one portfolio race outcome into the current sink (and the process totals);
// winner is 0 = dfs, 1 = cdcl, -1 = undecided.
void AccumulatePortfolioRace(int winner);

// Resolved values of the optimization toggles for a given options struct (kAuto defers
// to NOCTUA_SYMMETRY / NOCTUA_INCREMENTAL; both default to on).
bool SymmetryEnabled(const SolverOptions& options);
bool IncrementalEnabled(const SolverOptions& options);

}  // namespace noctua::smt

#endif  // SRC_SMT_BACKEND_H_
