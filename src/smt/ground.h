// Finite-scope grounding: expands every binder (quantifiers, aggregates, lambdas) over
// the scope's domains, producing a quantifier-free term whose only irreducible leaves are
// *ground atoms* — scalar constants, `Select(array_const, ground_index)` cells, and
// `Proj(cell, field)` tuple slots.
//
// This is the Kodkod/Alloy move: with Ref domains of size k fixed, first-order structure
// is compiled away, and the solver's search happens by substituting ground atoms with
// literals and letting the term factory's simplifier (constant folding, linear arithmetic
// normalization, complementary-literal detection) collapse the residual formula.
#ifndef SRC_SMT_GROUND_H_
#define SRC_SMT_GROUND_H_

#include <unordered_map>
#include <vector>

#include "src/smt/eval.h"  // for Scope
#include "src/smt/term.h"

namespace noctua::smt {

class Grounder {
 public:
  Grounder(TermFactory* factory, const Scope& scope) : f_(factory), scope_(scope) {}

  // Expands all binders in `t` over the scope. The result contains no binder nodes and no
  // bound variables.
  Term Ground(Term t);

  // Ground atoms of a grounded term, in deterministic first-occurrence order:
  // scalar constants, Select(const, ground index), Proj(Select(const, ground index), i).
  static void CollectAtoms(Term grounded, std::vector<Term>* atoms);

  // True if `t` is a ground atom in the sense above.
  static bool IsGroundAtom(Term t);

  // Number of binder nodes this grounder expanded over their domains (memoized re-visits
  // of the same binder term do not recount). Observability reports this as
  // "smt.ground_expansions".
  uint64_t binders_expanded() const { return binders_expanded_; }

 private:
  // Domain elements of a Ref or Pair sort as literal terms.
  std::vector<Term> DomainElements(const Sort& sort);
  Term GroundBinder(Term t);

  TermFactory* f_;
  Scope scope_;
  std::unordered_map<Term, Term> memo_;
  uint64_t binders_expanded_ = 0;
};

}  // namespace noctua::smt

#endif  // SRC_SMT_GROUND_H_
