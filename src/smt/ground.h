// Finite-scope grounding: expands every binder (quantifiers, aggregates, lambdas) over
// the scope's domains, producing a quantifier-free term whose only irreducible leaves are
// *ground atoms* — scalar constants, `Select(array_const, ground_index)` cells, and
// `Proj(cell, field)` tuple slots.
//
// This is the Kodkod/Alloy move: with Ref domains of size k fixed, first-order structure
// is compiled away, and the solver's search happens by substituting ground atoms with
// literals and letting the term factory's simplifier (constant folding, linear arithmetic
// normalization, complementary-literal detection) collapse the residual formula.
#ifndef SRC_SMT_GROUND_H_
#define SRC_SMT_GROUND_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/smt/eval.h"  // for Scope
#include "src/smt/term.h"

namespace noctua::smt {

class Grounder {
 public:
  Grounder(TermFactory* factory, const Scope& scope) : f_(factory), scope_(scope) {}

  // Expands all binders in `t` over the scope. The result contains no binder nodes and no
  // bound variables.
  Term Ground(Term t);

  // Ground atoms of a grounded term, in deterministic first-occurrence order:
  // scalar constants, Select(const, ground index), Proj(Select(const, ground index), i).
  static void CollectAtoms(Term grounded, std::vector<Term>* atoms);

  // True if `t` is a ground atom in the sense above.
  static bool IsGroundAtom(Term t);

  // Number of binder nodes this grounder expanded over their domains (memoized re-visits
  // of the same binder term do not recount). Observability reports this as
  // "smt.ground_expansions".
  uint64_t binders_expanded() const { return binders_expanded_; }

 private:
  // Domain elements of a Ref or Pair sort as literal terms.
  std::vector<Term> DomainElements(const Sort& sort);
  Term GroundBinder(Term t);

  TermFactory* f_;
  Scope scope_;
  std::unordered_map<Term, Term> memo_;
  uint64_t binders_expanded_ = 0;
};

// Grounds every assertion over `g`'s scope and flattens top-level conjunctions into
// `out` (one conjunct per entry, literal-true conjuncts dropped), so each conjunct can
// prune or propagate independently. Returns false — leaving `out` meaningless — when
// some conjunct grounded to literal false, i.e. the conjunction is trivially unsat.
//
// Every backend preprocesses its query through this one helper: identical grounding is
// one of the two legs (with ValueDomains) that cross-backend verdict identity stands on.
bool GroundAndFlatten(Grounder& g, TermFactory& f, const std::vector<Term>& assertions,
                      std::vector<Term>* out);

// A Grounder that persists across Checks of one backend instance, plus a per-root cache
// of flattened conjuncts. The verifier's pair sessions assert a stable frame (axioms,
// shared path definitions) across several queries on one backend; with this class the
// frame's binders are expanded once and every later Check serves the frame roots from
// the cache, grounding only the fresh per-query goals. Composing the per-root results
// reproduces GroundAndFlatten exactly (same conjuncts, same order, same infeasibility
// rule), which keeps the cross-backend identity contract intact.
//
// The cache is keyed on term identity, which is only meaningful within one TermFactory:
// when Ground is called with a different factory the whole state is rebuilt from
// scratch. The scope is fixed at the first call per factory (backends never change
// scope mid-life).
class IncrementalGrounder {
 public:
  // Grounds `assertions`, appending flattened conjuncts to `out` (append-only; `out` is
  // not cleared). Returns false when some conjunct is literal false, like
  // GroundAndFlatten. `reuse_hits` (optional) is incremented once per root served from
  // the cache; `binders_expanded` (optional) receives the number of binder expansions
  // this call actually performed (cache hits contribute zero).
  bool Ground(TermFactory& f, const Scope& scope, const std::vector<Term>& assertions,
              std::vector<Term>* out, uint64_t* reuse_hits, uint64_t* binders_expanded);

 private:
  struct Entry {
    std::vector<Term> conjuncts;
    bool feasible = true;
  };
  const TermFactory* factory_ = nullptr;
  std::unique_ptr<Grounder> grounder_;
  std::unordered_map<Term, Entry> roots_;
};

// Renders a ground atom for model reporting: "c", "c[1]", "c[(0,1)]", "c[1].2". Every
// backend names model entries through this one function so models are comparable.
std::string GroundAtomName(Term atom);

// Multi-atom substitution with rebuild through the factory (simplifications re-fire).
// Note that substituting a Ref-valued atom can *materialize* new ground atoms (assigning
// x := #0 turns Select(data, x) into the cell Select(data, #0)), so callers must iterate
// with the full assignment trail until a fixpoint is reached — or use SubstFixpoint.
Term SubstGround(TermFactory& f, Term t, const std::unordered_map<Term, Term>& values,
                 std::unordered_map<Term, Term>& memo);

// Substitutes until no assigned atom remains reachable.
Term SubstFixpoint(TermFactory& f, Term t, const std::unordered_map<Term, Term>& values,
                   std::unordered_map<Term, Term>& memo);

// First ground atom in DFS order, memoized (nullptr when the term contains none). This is
// the shared branching heuristic: backends decide atoms that survive in simplified
// residuals, never don't-care atoms the simplifier already collapsed away.
Term FindFirstAtom(Term t, std::unordered_map<Term, Term>& memo);

}  // namespace noctua::smt

#endif  // SRC_SMT_GROUND_H_
