// A bounded model finder: the Noctua verification backend's decision procedure.
//
// This plays the role Z3 plays in the paper. The verifier's checking rules are refutation
// queries — "is there a database state and arguments that break commutativity /
// invalidate a precondition?" — and real counterexamples to such properties are small
// (the small-scope hypothesis; every conflict in the paper's case studies is exhibited
// with at most two objects per model). The solver therefore searches all assignments over
// a finite scope:
//
//   * Ref sorts range over k elements per model (Scope).
//   * Int atoms range over a domain harvested from the formula's integer literals
//     (each literal ±1, plus 0 and 1) — sufficient to cross any comparison threshold.
//   * String atoms range over the formula's string literals plus fresh distinct symbols.
//   * Bool atoms range over {false, true}.
//
// Search is depth-first over atoms (the decomposed scalar unknowns, see eval.h) with
// three-valued evaluation for pruning: after each assignment, pending assertions are
// re-evaluated; any definitely-false assertion prunes the subtree, and assertions that
// become definitely-true are dropped from deeper levels.
//
// kSat means a counterexample was found (the check FAILS); kUnsat means the property holds
// within the scope; kUnknown means the deadline or node budget was exhausted, which the
// verifier treats conservatively (restrict the pair), mirroring the paper's 2s timeout.
#ifndef SRC_SMT_SOLVER_H_
#define SRC_SMT_SOLVER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/smt/eval.h"
#include "src/smt/term.h"
#include "src/support/stopwatch.h"

namespace noctua::smt {

enum class SolveResult { kSat, kUnsat, kUnknown };

const char* SolveResultName(SolveResult r);

// A satisfying assignment, reported atom-by-atom (atom names encode the constant, domain
// index and tuple field, e.g. "S0_User_data[1].2"). Only atoms the search actually
// decided appear; everything else is unconstrained.
struct SmtModel {
  std::map<std::string, std::string> values;

  std::string ToString() const;
};

struct SolverStats {
  uint64_t nodes_visited = 0;
  uint64_t evaluations = 0;
  double seconds = 0;
  size_t num_atoms = 0;
  // Binder expansions performed while grounding this query's assertions.
  uint64_t binders_expanded = 0;
};

struct SolverOptions {
  Scope scope{2};
  double timeout_seconds = 2.0;  // the paper's per-check timeout
  int max_int_domain = 8;
  int max_string_domain = 6;
  uint64_t max_nodes = 50'000'000;
  // Bound the search by max_nodes only, ignoring the wall-clock timeout. The search is
  // deterministic given the term DAG, so with this set the solver's verdict is too —
  // independent of machine speed, CPU contention, or how many verification workers run
  // alongside. Used by tests that assert byte-identical verdicts across thread counts.
  bool deterministic_budget = false;
};

class Solver {
 public:
  explicit Solver(SolverOptions options) : options_(std::move(options)) {}

  // Decides satisfiability of the conjunction of `assertions`. The factory must be the
  // one that created the terms; grounding and substitute-and-simplify build new terms
  // through it.
  SolveResult CheckSat(TermFactory& factory, const std::vector<Term>& assertions);

  // Valid after CheckSat returned kSat.
  const SmtModel& model() const { return model_; }
  const SolverStats& stats() const { return stats_; }
  const SolverOptions& options() const { return options_; }

 private:
  // Builds the candidate value domain (as literal terms) for one ground atom.
  std::vector<Term> DomainFor(TermFactory& f, Term atom) const;
  void HarvestLiterals(const std::vector<Term>& roots);

  SolverOptions options_;
  SmtModel model_;
  SolverStats stats_;
  std::vector<int64_t> int_domain_;
  std::vector<std::string> string_domain_;
};

}  // namespace noctua::smt

#endif  // SRC_SMT_SOLVER_H_
