// A bounded model finder: the default decision procedure behind the SolverBackend
// interface (backend.h).
//
// This plays the role Z3 plays in the paper. The verifier's checking rules are refutation
// queries — "is there a database state and arguments that break commutativity /
// invalidate a precondition?" — and real counterexamples to such properties are small
// (the small-scope hypothesis; every conflict in the paper's case studies is exhibited
// with at most two objects per model). The solver therefore searches all assignments over
// a finite scope:
//
//   * Ref sorts range over k elements per model (Scope).
//   * Int atoms range over a domain harvested from the formula's integer literals
//     (each literal ±1, plus 0 and 1) — sufficient to cross any comparison threshold.
//   * String atoms range over the formula's string literals plus fresh distinct symbols.
//   * Bool atoms range over {false, true}.
//
// Search is depth-first over atoms (the decomposed scalar unknowns, see eval.h) with
// three-valued evaluation for pruning: after each assignment, pending assertions are
// re-evaluated; any definitely-false assertion prunes the subtree, and assertions that
// become definitely-true are dropped from deeper levels.
//
// kSat means a counterexample was found (the check FAILS); kUnsat means the property holds
// within the scope; kUnknown means the budget was exhausted (or a portfolio race cancelled
// the search), which the verifier treats conservatively (restrict the pair), mirroring the
// paper's 2s timeout.
#ifndef SRC_SMT_SOLVER_H_
#define SRC_SMT_SOLVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/smt/budget.h"
#include "src/smt/eval.h"
#include "src/smt/ground.h"
#include "src/smt/term.h"
#include "src/support/stopwatch.h"

namespace noctua::smt {

enum class SolveResult { kSat, kUnsat, kUnknown };

const char* SolveResultName(SolveResult r);

// A satisfying assignment, reported atom-by-atom (atom names encode the constant, domain
// index and tuple field, e.g. "S0_User_data[1].2"). Only atoms the search actually
// decided appear; everything else is unconstrained.
struct SmtModel {
  std::map<std::string, std::string> values;

  std::string ToString() const;
};

struct SolverStats {
  // Search nodes: DFS assignments, or CDCL decisions + propagations. The unit Budget's
  // max_nodes is charged against.
  uint64_t nodes_visited = 0;
  uint64_t evaluations = 0;
  double seconds = 0;
  size_t num_atoms = 0;
  // Binder expansions performed while grounding this query's assertions.
  uint64_t binders_expanded = 0;
  // CDCL-only: conflicts analyzed and clauses learned (0 for the model finder).
  uint64_t conflicts = 0;
  uint64_t learned_clauses = 0;
  // Root assertions whose grounding this Check served from the backend's persistent
  // ground cache instead of re-expanding (incremental solving, see IncrementalGrounder).
  uint64_t incremental_reuse_hits = 0;
  // Work removed by lex-leader symmetry reduction: candidate values dropped from DFS
  // frames, or CDCL literals pinned/excluded by the precedence clauses.
  uint64_t symmetry_pruned = 0;
  // CDCL-only: Luby restarts performed and learned clauses dropped by DB reduction.
  uint64_t restarts = 0;
  uint64_t clauses_forgotten = 0;
  // Portfolio-only: which sub-backend produced the verdict (0 = dfs, 1 = cdcl,
  // -1 = not a portfolio run or no decisive winner).
  int portfolio_winner = -1;
};

struct SolverOptions {
  Scope scope{2};
  Budget budget;
  int max_int_domain = 8;
  int max_string_domain = 6;
  // Which decision procedure answers checks. kAuto defers to NOCTUA_SOLVER (see
  // budget.h); construction goes through smt::MakeBackend — the one factory.
  BackendKind backend = BackendKind::kAuto;
  // Lex-leader symmetry reduction over the k interchangeable instances of each model
  // sort, and reuse of grounding work across Checks on one backend instance. Both are
  // verdict-preserving; kAuto defers to NOCTUA_SYMMETRY / NOCTUA_INCREMENTAL (default
  // on). See SymmetryEnabled / IncrementalEnabled in backend.h.
  Toggle symmetry = Toggle::kAuto;
  Toggle incremental = Toggle::kAuto;
};

// The finite value space one query's search ranges over, harvested from the query's own
// literals. Every backend MUST build its candidate values through this class: verdict
// agreement across backends (the cross-backend soundness oracle) relies on all of them
// deciding satisfiability over identical domains.
class ValueDomains {
 public:
  // Harvests int/string literals from the grounded assertions and assembles the bounded
  // domains described in the header comment.
  void Harvest(const std::vector<Term>& roots, int max_int_domain, int max_string_domain);

  const std::vector<int64_t>& ints() const { return int_domain_; }
  const std::vector<std::string>& strings() const { return string_domain_; }

  // Candidate value literals for one ground atom term (the DFS substitution search).
  std::vector<Term> LiteralsFor(TermFactory& f, const Scope& scope, Term atom) const;

  // Candidate Values for one decomposed scalar atom of `sort` (the CDCL direct
  // encoding). Same values, same order, as LiteralsFor.
  std::vector<Value> ValuesFor(const Scope& scope, const Sort& sort) const;

 private:
  std::vector<int64_t> int_domain_;
  std::vector<std::string> string_domain_;
};

// Lex-leader symmetry reduction over the k interchangeable elements of each model's Ref
// sort (the ROADMAP's DPOR move applied to value symmetry). A query never distinguishes
// the elements of a Ref sort by name unless an assertion mentions a concrete element —
// an explicit kRefLit, or a kArgExtreme binder (whose grounding breaks ties by element
// order and picks element 0 for empty sets). For every *clean* model sort the full
// symmetric group acts on satisfying assignments: permuting element names in every
// Ref-valued atom and simultaneously relocating the array cells they index maps models
// to models. It therefore suffices to search value-precedence canonical assignments of
// the sort's scalar Ref constants c_0, c_1, ... (in deterministic first-occurrence
// order): c_0 = #0, and c_t <= 1 + max_{j<t} c_j. Every orbit contains such a
// representative (sort the used element names by first use), so pruning the rest is
// verdict-preserving.
//
// Cleanliness is judged on the RAW pre-grounding assertions: after grounding, element
// literals are everywhere by construction, which is exactly why the check must happen
// before.
class SymmetryBreaker {
 public:
  // Computes dirty models from `raw`, then collects the governed scalar Ref constants
  // per clean model from the grounded conjuncts' atoms (first-occurrence order).
  void Analyze(const std::vector<Term>& raw, const std::vector<Term>& grounded,
               const Scope& scope);

  bool active() const { return !groups_.empty(); }

  struct Group {
    int model_id = -1;
    std::vector<Term> consts;  // governed scalar Ref constants, precedence order
  };
  const std::vector<Group>& groups() const { return groups_; }

  // Largest element index `atom` may be assigned under value precedence, given the
  // current assignment of its predecessors: `value_of` returns a predecessor's assigned
  // element index, or -1 while unassigned (an unassigned c_j is bounded by its canonical
  // ceiling j, which keeps the bound sound for partial assignments). Returns -1 when
  // `atom` is not a governed constant (no restriction).
  int MaxAllowedIndex(Term atom, const std::function<int(Term)>& value_of) const;

 private:
  std::unordered_map<Term, std::pair<int, int>> position_;  // const -> (group idx, rank)
  std::vector<Group> groups_;
};

class Solver {
 public:
  explicit Solver(SolverOptions options) : options_(std::move(options)) {}

  // Decides satisfiability of the conjunction of `assertions`. The factory must be the
  // one that created the terms; grounding and substitute-and-simplify build new terms
  // through it.
  SolveResult CheckSat(TermFactory& factory, const std::vector<Term>& assertions);

  // Valid after CheckSat returned kSat.
  const SmtModel& model() const { return model_; }
  const SolverStats& stats() const { return stats_; }
  const SolverOptions& options() const { return options_; }

  // Installs a cooperative cancellation flag (nullptr to clear): the search polls it at
  // its budget checkpoints and abandons with kUnknown when set. This is how a portfolio
  // race stops the losing backend mid-search.
  void set_cancel(const std::atomic<bool>* cancel) { cancel_ = cancel; }

 private:
  SolverOptions options_;
  SmtModel model_;
  SolverStats stats_;
  ValueDomains domains_;
  // Survives across CheckSat calls: repeated queries over a shared frame (the verifier's
  // pair sessions) re-ground only their fresh roots. Only used when incremental solving
  // is enabled; the legacy path builds a throwaway Grounder per call.
  IncrementalGrounder inc_ground_;
  const std::atomic<bool>* cancel_ = nullptr;
};

}  // namespace noctua::smt

#endif  // SRC_SMT_SOLVER_H_
