// A bounded model finder: the default decision procedure behind the SolverBackend
// interface (backend.h).
//
// This plays the role Z3 plays in the paper. The verifier's checking rules are refutation
// queries — "is there a database state and arguments that break commutativity /
// invalidate a precondition?" — and real counterexamples to such properties are small
// (the small-scope hypothesis; every conflict in the paper's case studies is exhibited
// with at most two objects per model). The solver therefore searches all assignments over
// a finite scope:
//
//   * Ref sorts range over k elements per model (Scope).
//   * Int atoms range over a domain harvested from the formula's integer literals
//     (each literal ±1, plus 0 and 1) — sufficient to cross any comparison threshold.
//   * String atoms range over the formula's string literals plus fresh distinct symbols.
//   * Bool atoms range over {false, true}.
//
// Search is depth-first over atoms (the decomposed scalar unknowns, see eval.h) with
// three-valued evaluation for pruning: after each assignment, pending assertions are
// re-evaluated; any definitely-false assertion prunes the subtree, and assertions that
// become definitely-true are dropped from deeper levels.
//
// kSat means a counterexample was found (the check FAILS); kUnsat means the property holds
// within the scope; kUnknown means the budget was exhausted (or a portfolio race cancelled
// the search), which the verifier treats conservatively (restrict the pair), mirroring the
// paper's 2s timeout.
#ifndef SRC_SMT_SOLVER_H_
#define SRC_SMT_SOLVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/smt/budget.h"
#include "src/smt/eval.h"
#include "src/smt/term.h"
#include "src/support/stopwatch.h"

namespace noctua::smt {

enum class SolveResult { kSat, kUnsat, kUnknown };

const char* SolveResultName(SolveResult r);

// A satisfying assignment, reported atom-by-atom (atom names encode the constant, domain
// index and tuple field, e.g. "S0_User_data[1].2"). Only atoms the search actually
// decided appear; everything else is unconstrained.
struct SmtModel {
  std::map<std::string, std::string> values;

  std::string ToString() const;
};

struct SolverStats {
  // Search nodes: DFS assignments, or CDCL decisions + propagations. The unit Budget's
  // max_nodes is charged against.
  uint64_t nodes_visited = 0;
  uint64_t evaluations = 0;
  double seconds = 0;
  size_t num_atoms = 0;
  // Binder expansions performed while grounding this query's assertions.
  uint64_t binders_expanded = 0;
  // CDCL-only: conflicts analyzed and clauses learned (0 for the model finder).
  uint64_t conflicts = 0;
  uint64_t learned_clauses = 0;
  // Portfolio-only: which sub-backend produced the verdict (0 = dfs, 1 = cdcl,
  // -1 = not a portfolio run or no decisive winner).
  int portfolio_winner = -1;
};

struct SolverOptions {
  Scope scope{2};
  Budget budget;
  int max_int_domain = 8;
  int max_string_domain = 6;
  // Which decision procedure answers checks. kAuto defers to NOCTUA_SOLVER (see
  // budget.h); construction goes through smt::MakeBackend — the one factory.
  BackendKind backend = BackendKind::kAuto;
};

// The finite value space one query's search ranges over, harvested from the query's own
// literals. Every backend MUST build its candidate values through this class: verdict
// agreement across backends (the cross-backend soundness oracle) relies on all of them
// deciding satisfiability over identical domains.
class ValueDomains {
 public:
  // Harvests int/string literals from the grounded assertions and assembles the bounded
  // domains described in the header comment.
  void Harvest(const std::vector<Term>& roots, int max_int_domain, int max_string_domain);

  const std::vector<int64_t>& ints() const { return int_domain_; }
  const std::vector<std::string>& strings() const { return string_domain_; }

  // Candidate value literals for one ground atom term (the DFS substitution search).
  std::vector<Term> LiteralsFor(TermFactory& f, const Scope& scope, Term atom) const;

  // Candidate Values for one decomposed scalar atom of `sort` (the CDCL direct
  // encoding). Same values, same order, as LiteralsFor.
  std::vector<Value> ValuesFor(const Scope& scope, const Sort& sort) const;

 private:
  std::vector<int64_t> int_domain_;
  std::vector<std::string> string_domain_;
};

class Solver {
 public:
  explicit Solver(SolverOptions options) : options_(std::move(options)) {}

  // Decides satisfiability of the conjunction of `assertions`. The factory must be the
  // one that created the terms; grounding and substitute-and-simplify build new terms
  // through it.
  SolveResult CheckSat(TermFactory& factory, const std::vector<Term>& assertions);

  // Valid after CheckSat returned kSat.
  const SmtModel& model() const { return model_; }
  const SolverStats& stats() const { return stats_; }
  const SolverOptions& options() const { return options_; }

  // Installs a cooperative cancellation flag (nullptr to clear): the search polls it at
  // its budget checkpoints and abandons with kUnknown when set. This is how a portfolio
  // race stops the losing backend mid-search.
  void set_cancel(const std::atomic<bool>* cancel) { cancel_ = cancel; }

 private:
  SolverOptions options_;
  SmtModel model_;
  SolverStats stats_;
  ValueDomains domains_;
  const std::atomic<bool>* cancel_ = nullptr;
};

}  // namespace noctua::smt

#endif  // SRC_SMT_SOLVER_H_
