#include "src/smt/term.h"

#include <algorithm>

#include "src/support/check.h"

namespace noctua::smt {
namespace {

uint64_t HashMix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

uint64_t HashSort(const Sort& s) {
  uint64_t h = static_cast<uint64_t>(s->kind()) * 0x100000001b3ULL;
  h = HashMix(h, static_cast<uint64_t>(s->model_id() + 1));
  for (const Sort& c : s->children()) {
    h = HashMix(h, HashSort(c));
  }
  return h;
}

uint64_t HashString(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  return h;
}

bool IsBinderKind(TermKind k) {
  switch (k) {
    case TermKind::kArrayLambda:
    case TermKind::kForall:
    case TermKind::kExists:
    case TermKind::kCount:
    case TermKind::kSum:
    case TermKind::kMinAgg:
    case TermKind::kMaxAgg:
    case TermKind::kArgExtreme:
      return true;
    default:
      return false;
  }
}

const char* KindName(TermKind k) {
  switch (k) {
    case TermKind::kConst: return "const";
    case TermKind::kBoundVar: return "var";
    case TermKind::kBoolLit: return "bool";
    case TermKind::kIntLit: return "int";
    case TermKind::kStrLit: return "str";
    case TermKind::kRefLit: return "ref";
    case TermKind::kAnd: return "and";
    case TermKind::kOr: return "or";
    case TermKind::kNot: return "not";
    case TermKind::kImplies: return "=>";
    case TermKind::kIte: return "ite";
    case TermKind::kEq: return "=";
    case TermKind::kDistinct: return "distinct";
    case TermKind::kAdd: return "+";
    case TermKind::kSub: return "-";
    case TermKind::kMul: return "*";
    case TermKind::kNeg: return "neg";
    case TermKind::kLt: return "<";
    case TermKind::kLe: return "<=";
    case TermKind::kConcat: return "concat";
    case TermKind::kMkTuple: return "tuple";
    case TermKind::kProj: return "proj";
    case TermKind::kConstArray: return "K";
    case TermKind::kStore: return "store";
    case TermKind::kSelect: return "select";
    case TermKind::kArrayLambda: return "lambda";
    case TermKind::kMkPair: return "pair";
    case TermKind::kFst: return "fst";
    case TermKind::kSnd: return "snd";
    case TermKind::kForall: return "forall";
    case TermKind::kExists: return "exists";
    case TermKind::kCount: return "count";
    case TermKind::kSum: return "sum";
    case TermKind::kMinAgg: return "min";
    case TermKind::kMaxAgg: return "max";
    case TermKind::kArgExtreme: return "argext";
  }
  return "?";
}

}  // namespace

std::string TermData::ToString() const {
  switch (kind_) {
    case TermKind::kConst:
      return str_payload_;
    case TermKind::kBoundVar:
      return "$" + std::to_string(int_payload_);
    case TermKind::kBoolLit:
      return int_payload_ ? "true" : "false";
    case TermKind::kIntLit:
      return std::to_string(int_payload_);
    case TermKind::kStrLit:
      return "\"" + str_payload_ + "\"";
    case TermKind::kRefLit:
      return "#" + std::to_string(int_payload_);
    case TermKind::kProj:
      return "(proj." + std::to_string(int_payload_) + " " + children_[0]->ToString() + ")";
    default: {
      std::string out = "(";
      out += KindName(kind_);
      if (IsBinderKind(kind_)) {
        out += " $" + std::to_string(int_payload_);
      }
      for (Term c : children_) {
        out += " " + c->ToString();
      }
      return out + ")";
    }
  }
}

TermFactory::TermFactory() {
  // A typical verification query interns a few thousand terms; reserving up front saves
  // the rehash/reallocation churn on every check (factories are created per check).
  buckets_.reserve(4096);
  all_terms_.reserve(4096);
}
TermFactory::~TermFactory() = default;

Term TermFactory::Intern(TermKind kind, Sort sort, std::vector<Term> children,
                         int64_t int_payload, int64_t int_payload2, std::string str_payload,
                         Sort binder_sort) {
  uint64_t h = static_cast<uint64_t>(kind);
  h = HashMix(h, HashSort(sort));
  for (Term c : children) {
    h = HashMix(h, c->hash());
    h = HashMix(h, reinterpret_cast<uintptr_t>(c));
  }
  h = HashMix(h, static_cast<uint64_t>(int_payload));
  h = HashMix(h, static_cast<uint64_t>(int_payload2));
  h = HashMix(h, HashString(str_payload));
  if (binder_sort) {
    h = HashMix(h, HashSort(binder_sort));
  }

  auto& bucket = buckets_[h];
  for (const auto& t : bucket) {
    if (t->kind_ == kind && t->int_payload_ == int_payload && t->int_payload2_ == int_payload2 &&
        t->str_payload_ == str_payload && t->children_ == children && SortEq(t->sort_, sort) &&
        (!binder_sort || (t->binder_sort_ && SortEq(t->binder_sort_, binder_sort)))) {
      ++intern_hits_;
      return t.get();
    }
  }

  auto t = std::unique_ptr<TermData>(new TermData());
  t->kind_ = kind;
  t->sort_ = std::move(sort);
  t->children_ = std::move(children);
  t->int_payload_ = int_payload;
  t->int_payload2_ = int_payload2;
  t->str_payload_ = std::move(str_payload);
  t->binder_sort_ = std::move(binder_sort);
  t->hash_ = h;
  t->id_ = all_terms_.size();
  // Free bound-variable tracking: a binder removes its own variable from scope.
  bool hbv = kind == TermKind::kBoundVar;
  for (Term c : t->children_) {
    hbv = hbv || c->has_bound_var();
  }
  if (IsBinderKind(kind)) {
    // Conservative: we do not track exact free-variable sets, so a binder only clears the
    // flag when its body mentions no *other* variables. We detect that cheaply by checking
    // whether the body's variables are all equal to the binder's own id.
    bool other = false;
    for (Term c : t->children_) {
      other = other || HasOtherBoundVar(c, int_payload);
    }
    hbv = other;
  }
  t->has_bound_var_ = hbv;
  Term result = t.get();
  all_terms_.push_back(t.get());
  bucket.push_back(std::move(t));
  return result;
}

// Returns true if `t` contains a bound variable whose id differs from `self_id`.
// (File-scope helper declared here because Intern needs it.)
static bool HasOtherBoundVarImpl(Term t, int64_t self_id) {
  if (!t->has_bound_var()) {
    return false;
  }
  if (t->kind() == TermKind::kBoundVar) {
    return t->int_payload() != self_id;
  }
  for (Term c : t->children()) {
    if (HasOtherBoundVarImpl(c, self_id)) {
      return true;
    }
  }
  return false;
}

bool HasOtherBoundVar(Term t, int64_t self_id) { return HasOtherBoundVarImpl(t, self_id); }

// --- Leaves -----------------------------------------------------------------------------

Term TermFactory::Const(const std::string& name, const Sort& sort) {
  return Intern(TermKind::kConst, sort, {}, 0, 0, name, nullptr);
}

Term TermFactory::BoolLit(bool v) {
  return Intern(TermKind::kBoolLit, BoolSort(), {}, v ? 1 : 0, 0, "", nullptr);
}

Term TermFactory::IntLit(int64_t v) {
  return Intern(TermKind::kIntLit, IntSort(), {}, v, 0, "", nullptr);
}

Term TermFactory::StrLit(const std::string& v) {
  return Intern(TermKind::kStrLit, StringSort(), {}, 0, 0, v, nullptr);
}

Term TermFactory::RefLit(const Sort& ref_sort, int64_t index) {
  NOCTUA_CHECK(ref_sort->is_ref());
  NOCTUA_CHECK(index >= 0);
  return Intern(TermKind::kRefLit, ref_sort, {}, index, 0, "", nullptr);
}

Term TermFactory::NewBoundVar(const Sort& sort) {
  return Intern(TermKind::kBoundVar, sort, {}, next_bound_var_++, 0, "", nullptr);
}

// --- Boolean ----------------------------------------------------------------------------

Term TermFactory::And(std::vector<Term> xs) {
  std::vector<Term> flat;
  for (Term x : xs) {
    NOCTUA_DCHECK(x->sort()->is_bool());
    if (x->IsBoolLit(true)) {
      continue;
    }
    if (x->IsBoolLit(false)) {
      return False();
    }
    if (x->kind() == TermKind::kAnd) {
      for (Term c : x->children()) {
        flat.push_back(c);
      }
    } else {
      flat.push_back(x);
    }
  }
  // Deduplicate and detect complementary literals.
  std::vector<Term> uniq;
  for (Term x : flat) {
    bool dup = false;
    for (Term u : uniq) {
      if (u == x) {
        dup = true;
        break;
      }
    }
    if (dup) {
      continue;
    }
    for (Term u : uniq) {
      if ((u->kind() == TermKind::kNot && u->child(0) == x) ||
          (x->kind() == TermKind::kNot && x->child(0) == u)) {
        return False();
      }
    }
    uniq.push_back(x);
  }
  if (uniq.empty()) {
    return True();
  }
  if (uniq.size() == 1) {
    return uniq[0];
  }
  return Intern(TermKind::kAnd, BoolSort(), std::move(uniq), 0, 0, "", nullptr);
}

Term TermFactory::Or(std::vector<Term> xs) {
  std::vector<Term> flat;
  for (Term x : xs) {
    NOCTUA_DCHECK(x->sort()->is_bool());
    if (x->IsBoolLit(false)) {
      continue;
    }
    if (x->IsBoolLit(true)) {
      return True();
    }
    if (x->kind() == TermKind::kOr) {
      for (Term c : x->children()) {
        flat.push_back(c);
      }
    } else {
      flat.push_back(x);
    }
  }
  std::vector<Term> uniq;
  for (Term x : flat) {
    bool dup = false;
    for (Term u : uniq) {
      if (u == x) {
        dup = true;
        break;
      }
    }
    if (dup) {
      continue;
    }
    for (Term u : uniq) {
      if ((u->kind() == TermKind::kNot && u->child(0) == x) ||
          (x->kind() == TermKind::kNot && x->child(0) == u)) {
        return True();
      }
    }
    uniq.push_back(x);
  }
  if (uniq.empty()) {
    return False();
  }
  if (uniq.size() == 1) {
    return uniq[0];
  }
  return Intern(TermKind::kOr, BoolSort(), std::move(uniq), 0, 0, "", nullptr);
}

Term TermFactory::Not(Term a) {
  NOCTUA_DCHECK(a->sort()->is_bool());
  if (a->kind() == TermKind::kBoolLit) {
    return BoolLit(a->int_payload() == 0);
  }
  if (a->kind() == TermKind::kNot) {
    return a->child(0);
  }
  return Intern(TermKind::kNot, BoolSort(), {a}, 0, 0, "", nullptr);
}

Term TermFactory::Implies(Term a, Term b) { return Or(Not(a), b); }

Term TermFactory::Ite(Term cond, Term then_t, Term else_t) {
  NOCTUA_DCHECK(cond->sort()->is_bool());
  NOCTUA_DCHECK(SortEq(then_t->sort(), else_t->sort()));
  if (cond->IsBoolLit(true)) {
    return then_t;
  }
  if (cond->IsBoolLit(false)) {
    return else_t;
  }
  if (then_t == else_t) {
    return then_t;
  }
  if (then_t->sort()->is_bool()) {
    if (then_t->IsBoolLit(true) && else_t->IsBoolLit(false)) {
      return cond;
    }
    if (then_t->IsBoolLit(false) && else_t->IsBoolLit(true)) {
      return Not(cond);
    }
    // Boolean ite is cheap to express with connectives, which the 3-valued evaluator
    // short-circuits better.
    return Or(And(cond, then_t), And(Not(cond), else_t));
  }
  return Intern(TermKind::kIte, then_t->sort(), {cond, then_t, else_t}, 0, 0, "", nullptr);
}

Term TermFactory::Eq(Term a, Term b) {
  NOCTUA_CHECK_MSG(SortEq(a->sort(), b->sort()),
                   "eq sorts differ: " << a->sort()->ToString() << " vs "
                                       << b->sort()->ToString());
  if (a == b) {
    return True();
  }
  if (a->IsLiteral() && b->IsLiteral()) {
    // Interning guarantees equal literals are pointer-equal.
    return False();
  }
  if (a->sort()->is_bool()) {
    if (a->kind() == TermKind::kBoolLit) {
      return a->int_payload() ? b : Not(b);
    }
    if (b->kind() == TermKind::kBoolLit) {
      return b->int_payload() ? a : Not(a);
    }
  }
  if (a->sort()->is_tuple()) {
    // Tuple equality decomposes element-wise, so each field constrains search separately.
    std::vector<Term> eqs;
    for (size_t i = 0; i < a->sort()->children().size(); ++i) {
      eqs.push_back(Eq(Proj(a, static_cast<int64_t>(i)), Proj(b, static_cast<int64_t>(i))));
    }
    return And(std::move(eqs));
  }
  if (a->kind() == TermKind::kMkPair && b->kind() == TermKind::kMkPair) {
    return And(Eq(a->child(0), b->child(0)), Eq(a->child(1), b->child(1)));
  }
  // Canonical argument order for commutative equality.
  if (a->id() > b->id()) {
    std::swap(a, b);
  }
  return Intern(TermKind::kEq, BoolSort(), {a, b}, 0, 0, "", nullptr);
}

Term TermFactory::Distinct(std::vector<Term> xs) {
  if (xs.size() < 2) {
    return True();
  }
  bool all_lit = true;
  for (Term x : xs) {
    all_lit = all_lit && x->IsLiteral();
  }
  if (all_lit) {
    for (size_t i = 0; i < xs.size(); ++i) {
      for (size_t j = i + 1; j < xs.size(); ++j) {
        if (xs[i] == xs[j]) {
          return False();
        }
      }
    }
    return True();
  }
  return Intern(TermKind::kDistinct, BoolSort(), std::move(xs), 0, 0, "", nullptr);
}

// --- Integers ---------------------------------------------------------------------------
//
// Integer terms are kept in a *linear normal form*: every +,-,neg,const*term combination
// is flattened into c0 + c1*t1 + ... + cn*tn with the ti sorted by term id. Combined with
// hash consing, algebraically equal sums become pointer-equal, so the commutativity rule's
// state equalities (balance + x + y vs balance + y + x) collapse statically — the job
// Z3's arithmetic simplifier does in the paper's pipeline.

void TermFactory::DecomposeLinear(Term t, int64_t scale, std::map<Term, int64_t>& coeffs,
                                  int64_t& constant) {
  if (scale == 0) {
    return;
  }
  switch (t->kind()) {
    case TermKind::kIntLit:
      constant += scale * t->int_payload();
      return;
    case TermKind::kAdd:
      DecomposeLinear(t->child(0), scale, coeffs, constant);
      DecomposeLinear(t->child(1), scale, coeffs, constant);
      return;
    case TermKind::kSub:
      DecomposeLinear(t->child(0), scale, coeffs, constant);
      DecomposeLinear(t->child(1), -scale, coeffs, constant);
      return;
    case TermKind::kNeg:
      DecomposeLinear(t->child(0), -scale, coeffs, constant);
      return;
    case TermKind::kMul:
      if (t->child(0)->kind() == TermKind::kIntLit) {
        DecomposeLinear(t->child(1), scale * t->child(0)->int_payload(), coeffs, constant);
        return;
      }
      if (t->child(1)->kind() == TermKind::kIntLit) {
        DecomposeLinear(t->child(0), scale * t->child(1)->int_payload(), coeffs, constant);
        return;
      }
      break;
    default:
      break;
  }
  coeffs[t] += scale;
}

Term TermFactory::BuildLinear(const std::map<Term, int64_t>& coeffs, int64_t constant) {
  // Deterministic atom order: by term id.
  std::vector<std::pair<Term, int64_t>> parts(coeffs.begin(), coeffs.end());
  std::sort(parts.begin(), parts.end(),
            [](const auto& a, const auto& b) { return a.first->id() < b.first->id(); });
  Term acc = nullptr;
  for (const auto& [t, c] : parts) {
    if (c == 0) {
      continue;
    }
    Term scaled = c == 1 ? t
                         : Intern(TermKind::kMul, IntSort(), {IntLit(c), t}, 0, 0, "", nullptr);
    acc = acc == nullptr
              ? scaled
              : Intern(TermKind::kAdd, IntSort(), {acc, scaled}, 0, 0, "", nullptr);
  }
  if (acc == nullptr) {
    return IntLit(constant);
  }
  if (constant != 0) {
    acc = Intern(TermKind::kAdd, IntSort(), {acc, IntLit(constant)}, 0, 0, "", nullptr);
  }
  return acc;
}

Term TermFactory::Linear(Term a, int64_t sa, Term b, int64_t sb) {
  std::map<Term, int64_t> coeffs;
  int64_t constant = 0;
  DecomposeLinear(a, sa, coeffs, constant);
  if (b != nullptr) {
    DecomposeLinear(b, sb, coeffs, constant);
  }
  return BuildLinear(coeffs, constant);
}

Term TermFactory::Add(Term a, Term b) { return Linear(a, 1, b, 1); }

Term TermFactory::Sub(Term a, Term b) { return Linear(a, 1, b, -1); }

Term TermFactory::Mul(Term a, Term b) {
  if (a->kind() == TermKind::kIntLit || b->kind() == TermKind::kIntLit) {
    Term lit = a->kind() == TermKind::kIntLit ? a : b;
    Term other = a->kind() == TermKind::kIntLit ? b : a;
    return Linear(other, lit->int_payload(), nullptr, 0);
  }
  if (a->id() > b->id()) {
    std::swap(a, b);
  }
  return Intern(TermKind::kMul, IntSort(), {a, b}, 0, 0, "", nullptr);
}

Term TermFactory::Neg(Term a) { return Linear(a, -1, nullptr, 0); }

Term TermFactory::Lt(Term a, Term b) {
  // Normalize to diff < 0 so a guard and its negation share one atom.
  Term diff = Sub(a, b);
  if (diff->kind() == TermKind::kIntLit) {
    return BoolLit(diff->int_payload() < 0);
  }
  return Intern(TermKind::kLt, BoolSort(), {diff, IntLit(0)}, 0, 0, "", nullptr);
}

Term TermFactory::Le(Term a, Term b) {
  Term diff = Sub(a, b);
  if (diff->kind() == TermKind::kIntLit) {
    return BoolLit(diff->int_payload() <= 0);
  }
  // a <= b  ==  !(b - a < 0); keep a single canonical predicate per difference.
  return Not(Intern(TermKind::kLt, BoolSort(), {Linear(diff, -1, nullptr, 0), IntLit(0)}, 0,
                    0, "", nullptr));
}

// --- Strings ----------------------------------------------------------------------------

Term TermFactory::Concat(Term a, Term b) {
  if (a->kind() == TermKind::kStrLit && b->kind() == TermKind::kStrLit) {
    return StrLit(a->str_payload() + b->str_payload());
  }
  if (a->kind() == TermKind::kStrLit && a->str_payload().empty()) {
    return b;
  }
  if (b->kind() == TermKind::kStrLit && b->str_payload().empty()) {
    return a;
  }
  return Intern(TermKind::kConcat, StringSort(), {a, b}, 0, 0, "", nullptr);
}

// --- Tuples -----------------------------------------------------------------------------

Term TermFactory::MkTuple(std::vector<Term> fields) {
  std::vector<Sort> sorts;
  sorts.reserve(fields.size());
  for (Term f : fields) {
    sorts.push_back(f->sort());
  }
  return Intern(TermKind::kMkTuple, TupleSort(std::move(sorts)), std::move(fields), 0, 0, "",
                nullptr);
}

Term TermFactory::Proj(Term tuple, int64_t index) {
  NOCTUA_CHECK(tuple->sort()->is_tuple());
  NOCTUA_CHECK(index >= 0 &&
               static_cast<size_t>(index) < tuple->sort()->children().size());
  if (tuple->kind() == TermKind::kMkTuple) {
    return tuple->child(index);
  }
  if (tuple->kind() == TermKind::kIte) {
    return Intern(TermKind::kIte, tuple->sort()->children()[index],
                  {tuple->child(0), Proj(tuple->child(1), index), Proj(tuple->child(2), index)},
                  0, 0, "", nullptr);
  }
  return Intern(TermKind::kProj, tuple->sort()->children()[index], {tuple}, index, 0, "",
                nullptr);
}

Term TermFactory::TupleWith(Term tuple, int64_t index, Term value) {
  NOCTUA_CHECK(tuple->sort()->is_tuple());
  std::vector<Term> fields;
  size_t n = tuple->sort()->children().size();
  fields.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    fields.push_back(static_cast<int64_t>(i) == index ? value : Proj(tuple, i));
  }
  return MkTuple(std::move(fields));
}

// --- Arrays -----------------------------------------------------------------------------

Term TermFactory::ConstArray(const Sort& index_sort, Term default_value) {
  return Intern(TermKind::kConstArray, ArraySort(index_sort, default_value->sort()),
                {default_value}, 0, 0, "", index_sort);
}

// True for fully-ground array indices: a Ref literal or a pair of Ref literals. Ground
// indices of the same sort are pointer-distinct when distinct, enabling store folding.
bool IsGroundIndex(Term t) {
  if (t->kind() == TermKind::kRefLit) {
    return true;
  }
  return t->kind() == TermKind::kMkPair && t->child(0)->kind() == TermKind::kRefLit &&
         t->child(1)->kind() == TermKind::kRefLit;
}

Term TermFactory::Store(Term array, Term index, Term value) {
  NOCTUA_CHECK(array->sort()->is_array());
  NOCTUA_DCHECK(SortEq(array->sort()->index_sort(), index->sort()));
  NOCTUA_DCHECK(SortEq(array->sort()->element_sort(), value->sort()));
  // store(a, i, select(a, i)) == a
  if (value->kind() == TermKind::kSelect && value->child(0) == array &&
      value->child(1) == index) {
    return array;
  }
  return Intern(TermKind::kStore, array->sort(), {array, index, value}, 0, 0, "", nullptr);
}

Term TermFactory::Select(Term array, Term index) {
  NOCTUA_CHECK(array->sort()->is_array());
  NOCTUA_DCHECK(SortEq(array->sort()->index_sort(), index->sort()));
  if (array->kind() == TermKind::kConstArray) {
    return array->child(0);
  }
  if (array->kind() == TermKind::kStore) {
    Term si = array->child(1);
    if (si == index) {
      return array->child(2);
    }
    if (IsGroundIndex(si) && IsGroundIndex(index)) {
      // Distinct ground indices (pointer-distinct by interning).
      return Select(array->child(0), index);
    }
  }
  if (array->kind() == TermKind::kArrayLambda) {
    // Beta reduction; bound variables are globally unique so capture cannot occur.
    return SubstituteBoundVar(*this, array->child(0), array->int_payload(), index);
  }
  return Intern(TermKind::kSelect, array->sort()->element_sort(), {array, index}, 0, 0, "",
                nullptr);
}

Term TermFactory::ArrayLambda(Term var, Term body) {
  NOCTUA_CHECK(var->kind() == TermKind::kBoundVar);
  return Intern(TermKind::kArrayLambda, ArraySort(var->sort(), body->sort()), {body},
                var->int_payload(), 0, "", var->sort());
}

Term TermFactory::SetUnion(Term a, Term b) {
  if (a == b) {
    return a;
  }
  Term var = NewBoundVar(a->sort()->index_sort());
  return ArrayLambda(var, Or(Select(a, var), Select(b, var)));
}

Term TermFactory::SetIntersect(Term a, Term b) {
  if (a == b) {
    return a;
  }
  Term var = NewBoundVar(a->sort()->index_sort());
  return ArrayLambda(var, And(Select(a, var), Select(b, var)));
}

Term TermFactory::SetDifference(Term a, Term b) {
  Term var = NewBoundVar(a->sort()->index_sort());
  return ArrayLambda(var, And(Select(a, var), Not(Select(b, var))));
}

Term TermFactory::SetSubset(Term a, Term b) {
  if (a == b) {
    return True();
  }
  Term var = NewBoundVar(a->sort()->index_sort());
  return Forall(var, Implies(Select(a, var), Select(b, var)));
}

Term TermFactory::SetIsEmpty(Term set) {
  Term var = NewBoundVar(set->sort()->index_sort());
  return Not(Exists(var, Select(set, var)));
}

Term TermFactory::SetEq(Term a, Term b) {
  if (a == b) {
    return True();
  }
  Term var = NewBoundVar(a->sort()->index_sort());
  return Forall(var, Eq(Select(a, var), Select(b, var)));
}

// --- Pairs ------------------------------------------------------------------------------

Term TermFactory::MkPair(Term fst, Term snd) {
  return Intern(TermKind::kMkPair, PairSort(fst->sort(), snd->sort()), {fst, snd}, 0, 0, "",
                nullptr);
}

Term TermFactory::Fst(Term pair) {
  NOCTUA_CHECK(pair->sort()->is_pair());
  if (pair->kind() == TermKind::kMkPair) {
    return pair->child(0);
  }
  return Intern(TermKind::kFst, pair->sort()->children()[0], {pair}, 0, 0, "", nullptr);
}

Term TermFactory::Snd(Term pair) {
  NOCTUA_CHECK(pair->sort()->is_pair());
  if (pair->kind() == TermKind::kMkPair) {
    return pair->child(1);
  }
  return Intern(TermKind::kSnd, pair->sort()->children()[1], {pair}, 0, 0, "", nullptr);
}

// --- Binders ----------------------------------------------------------------------------

Term TermFactory::MakeBinder(TermKind kind, Term var, std::vector<Term> bodies,
                             Sort result_sort, int64_t payload2) {
  NOCTUA_CHECK(var->kind() == TermKind::kBoundVar);
  NOCTUA_CHECK_MSG(var->sort()->is_finite_domain(), "binder variable must be Ref or Pair");
  return Intern(kind, std::move(result_sort), std::move(bodies), var->int_payload(), payload2,
                "", var->sort());
}

Term TermFactory::Forall(Term var, Term body) {
  if (body->kind() == TermKind::kBoolLit) {
    return body;
  }
  return MakeBinder(TermKind::kForall, var, {body}, BoolSort());
}

Term TermFactory::Exists(Term var, Term body) {
  if (body->kind() == TermKind::kBoolLit) {
    return body;
  }
  return MakeBinder(TermKind::kExists, var, {body}, BoolSort());
}

Term TermFactory::Count(Term var, Term cond) {
  if (cond->IsBoolLit(false)) {
    return IntLit(0);
  }
  return MakeBinder(TermKind::kCount, var, {cond}, IntSort());
}

Term TermFactory::Sum(Term var, Term cond, Term value) {
  if (cond->IsBoolLit(false)) {
    return IntLit(0);
  }
  return MakeBinder(TermKind::kSum, var, {cond, value}, IntSort());
}

Term TermFactory::MinAgg(Term var, Term cond, Term value) {
  return MakeBinder(TermKind::kMinAgg, var, {cond, value}, IntSort());
}

Term TermFactory::MaxAgg(Term var, Term cond, Term value) {
  return MakeBinder(TermKind::kMaxAgg, var, {cond, value}, IntSort());
}

Term TermFactory::ArgExtreme(Term var, Term cond, Term key, bool want_max) {
  return MakeBinder(TermKind::kArgExtreme, var, {cond, key}, var->sort(), want_max ? 1 : 0);
}

// --- Substitution (beta reduction support) ----------------------------------------------

namespace {
Term SubstituteImpl(TermFactory& f, Term t, int64_t var_id, Term value,
                    std::unordered_map<Term, Term>& memo);
}  // namespace

Term SubstituteBoundVar(TermFactory& f, Term body, int64_t var_id, Term value) {
  std::unordered_map<Term, Term> memo;
  return SubstituteImpl(f, body, var_id, value, memo);
}

namespace {

Term SubstituteImpl(TermFactory& f, Term t, int64_t var_id, Term value,
                    std::unordered_map<Term, Term>& memo) {
  if (!t->has_bound_var()) {
    return t;
  }
  if (t->kind() == TermKind::kBoundVar) {
    return t->int_payload() == var_id ? value : t;
  }
  auto it = memo.find(t);
  if (it != memo.end()) {
    return it->second;
  }
  std::vector<Term> kids;
  kids.reserve(t->children().size());
  bool changed = false;
  for (Term c : t->children()) {
    Term nc = SubstituteImpl(f, c, var_id, value, memo);
    changed = changed || nc != c;
    kids.push_back(nc);
  }
  Term result = t;
  if (changed) {
    // Rebuild through the factory so simplifications re-fire.
    result = RebuildTerm(f, t, std::move(kids));
  }
  memo.emplace(t, result);
  return result;
}

}  // namespace

Term RebuildTerm(TermFactory& f, Term t, std::vector<Term> kids) {
  switch (t->kind()) {
    case TermKind::kAnd:
      return f.And(std::move(kids));
    case TermKind::kOr:
      return f.Or(std::move(kids));
    case TermKind::kNot:
      return f.Not(kids[0]);
    case TermKind::kIte:
      return f.Ite(kids[0], kids[1], kids[2]);
    case TermKind::kEq:
      return f.Eq(kids[0], kids[1]);
    case TermKind::kDistinct:
      return f.Distinct(std::move(kids));
    case TermKind::kAdd:
      return f.Add(kids[0], kids[1]);
    case TermKind::kSub:
      return f.Sub(kids[0], kids[1]);
    case TermKind::kMul:
      return f.Mul(kids[0], kids[1]);
    case TermKind::kNeg:
      return f.Neg(kids[0]);
    case TermKind::kLt:
      return f.Lt(kids[0], kids[1]);
    case TermKind::kLe:
      return f.Le(kids[0], kids[1]);
    case TermKind::kConcat:
      return f.Concat(kids[0], kids[1]);
    case TermKind::kMkTuple:
      return f.MkTuple(std::move(kids));
    case TermKind::kProj:
      return f.Proj(kids[0], t->int_payload());
    case TermKind::kConstArray:
      return f.ConstArray(t->sort()->index_sort(), kids[0]);
    case TermKind::kStore:
      return f.Store(kids[0], kids[1], kids[2]);
    case TermKind::kSelect:
      return f.Select(kids[0], kids[1]);
    case TermKind::kMkPair:
      return f.MkPair(kids[0], kids[1]);
    case TermKind::kFst:
      return f.Fst(kids[0]);
    case TermKind::kSnd:
      return f.Snd(kids[0]);
    case TermKind::kArrayLambda:
    case TermKind::kForall:
    case TermKind::kExists:
    case TermKind::kCount:
    case TermKind::kSum:
    case TermKind::kMinAgg:
    case TermKind::kMaxAgg:
    case TermKind::kArgExtreme:
      // Binder nodes: the bound variable id and sort are unchanged; rebuild via Intern by
      // reconstructing the same binder with the substituted bodies.
      return RebuildBinder(f, t, std::move(kids));
    default:
      NOCTUA_UNREACHABLE("rebuild of leaf term");
  }
}

Term RebuildBinder(TermFactory& f, Term t, std::vector<Term> kids) {
  // Recreate the bound variable term so the factory can re-intern the binder. Bound
  // variables are identified by id, so making "the same" variable is just an intern hit.
  Term var = f.InternBoundVar(t->binder_sort(), t->int_payload());
  switch (t->kind()) {
    case TermKind::kArrayLambda:
      return f.ArrayLambda(var, kids[0]);
    case TermKind::kForall:
      return f.Forall(var, kids[0]);
    case TermKind::kExists:
      return f.Exists(var, kids[0]);
    case TermKind::kCount:
      return f.Count(var, kids[0]);
    case TermKind::kSum:
      return f.Sum(var, kids[0], kids[1]);
    case TermKind::kMinAgg:
      return f.MinAgg(var, kids[0], kids[1]);
    case TermKind::kMaxAgg:
      return f.MaxAgg(var, kids[0], kids[1]);
    case TermKind::kArgExtreme:
      return f.ArgExtreme(var, kids[0], kids[1], t->int_payload2() != 0);
    default:
      NOCTUA_UNREACHABLE("not a binder");
  }
}

Term TermFactory::InternBoundVar(const Sort& sort, int64_t id) {
  return Intern(TermKind::kBoundVar, sort, {}, id, 0, "", nullptr);
}

namespace {

Term CloneRec(TermFactory& f, Term t, std::unordered_map<Term, Term>& memo) {
  auto it = memo.find(t);
  if (it != memo.end()) {
    return it->second;
  }
  Term result;
  switch (t->kind()) {
    case TermKind::kConst:
      result = f.Const(t->str_payload(), t->sort());
      break;
    case TermKind::kBoundVar:
      result = f.InternBoundVar(t->sort(), t->int_payload());
      break;
    case TermKind::kBoolLit:
      result = f.BoolLit(t->IsBoolLit(true));
      break;
    case TermKind::kIntLit:
      result = f.IntLit(t->int_payload());
      break;
    case TermKind::kStrLit:
      result = f.StrLit(t->str_payload());
      break;
    case TermKind::kRefLit:
      result = f.RefLit(t->sort(), t->int_payload());
      break;
    default: {
      std::vector<Term> kids;
      kids.reserve(t->children().size());
      for (Term c : t->children()) {
        kids.push_back(CloneRec(f, c, memo));
      }
      result = RebuildTerm(f, t, std::move(kids));
      break;
    }
  }
  memo.emplace(t, result);
  return result;
}

}  // namespace

Term CloneTermInto(TermFactory& f, Term t) {
  std::unordered_map<Term, Term> memo;
  return CloneRec(f, t, memo);
}

}  // namespace noctua::smt
