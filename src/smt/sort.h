// SMT sorts for the Noctua verification backend.
//
// The verifier encodes database state with the paper's order-aware array-based encoding
// (Table 2): every model state is a triple (ids, data, order). The sorts needed are:
//
//   Bool / Int / String        scalar sorts (Float and Datetime map to Int, see encoder)
//   Ref(m)                     the ID sort of model m — finite-scope uninterpreted sort
//   Pair(m1, m2)               an association in a relation between models m1 and m2
//   Tuple(fields...)           object data (one component per model field)
//   Array(index, element)      index is Ref or Pair; used for `data`, `order` and —
//                              with Bool elements — for sets (`ids`, relation states)
//
// Sets are deliberately represented as Arrays to Bool: this keeps the term language small
// and makes the finite-domain evaluator trivial (a set value is a bitmask over the scope).
#ifndef SRC_SMT_SORT_H_
#define SRC_SMT_SORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace noctua::smt {

enum class SortKind : uint8_t {
  kBool,
  kInt,
  kString,
  kRef,    // model_id identifies which model's ID space
  kPair,   // children: two Ref sorts
  kTuple,  // children: field sorts
  kArray,  // children: [index sort, element sort]
};

class SortData;
// Sorts are immutable shared values; structural equality (operator==) is what matters.
using Sort = std::shared_ptr<const SortData>;

class SortData {
 public:
  SortData(SortKind kind, int model_id, std::vector<Sort> children)
      : kind_(kind), model_id_(model_id), children_(std::move(children)) {}

  SortKind kind() const { return kind_; }
  int model_id() const { return model_id_; }
  const std::vector<Sort>& children() const { return children_; }

  bool is_bool() const { return kind_ == SortKind::kBool; }
  bool is_int() const { return kind_ == SortKind::kInt; }
  bool is_string() const { return kind_ == SortKind::kString; }
  bool is_ref() const { return kind_ == SortKind::kRef; }
  bool is_pair() const { return kind_ == SortKind::kPair; }
  bool is_tuple() const { return kind_ == SortKind::kTuple; }
  bool is_array() const { return kind_ == SortKind::kArray; }

  // Array accessors (only valid for kArray).
  const Sort& index_sort() const { return children_[0]; }
  const Sort& element_sort() const { return children_[1]; }

  // True for Array(_, Bool), the representation of sets.
  bool is_set() const { return is_array() && children_[1]->is_bool(); }

  // True for sorts over which the evaluator can enumerate all values given a scope
  // (Ref and Pair). These are the only legal binder/index sorts.
  bool is_finite_domain() const { return is_ref() || is_pair(); }

  std::string ToString() const;

 private:
  SortKind kind_;
  int model_id_;  // only meaningful for kRef
  std::vector<Sort> children_;
};

// Structural sort equality.
bool SortEq(const Sort& a, const Sort& b);

// Sort constructors. Scalar sorts are interned singletons; composite sorts are cheap
// shared values (equality is structural, so duplicates are harmless).
Sort BoolSort();
Sort IntSort();
Sort StringSort();
Sort RefSort(int model_id);
Sort PairSort(const Sort& ref1, const Sort& ref2);
Sort TupleSort(std::vector<Sort> fields);
Sort ArraySort(const Sort& index, const Sort& element);
Sort SetSort(const Sort& index);  // == ArraySort(index, Bool)

}  // namespace noctua::smt

#endif  // SRC_SMT_SORT_H_
