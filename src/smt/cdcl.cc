#include "src/smt/cdcl.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/smt/eval.h"
#include "src/smt/ground.h"
#include "src/support/check.h"
#include "src/support/stopwatch.h"

namespace noctua::smt {

// ---------------------------------------------------------------------------
// CdclSearch: the propositional core.
// ---------------------------------------------------------------------------

int CdclSearch::NewVar() {
  int v = num_vars();
  value_.push_back(-1);
  level_.push_back(0);
  reason_.push_back(-1);
  activity_.push_back(0.0);
  seen_.push_back(0);
  watches_.emplace_back();  // positive literal 2v
  watches_.emplace_back();  // negative literal 2v+1
  return v;
}

int CdclSearch::LitValue(int lit) const {
  int8_t v = value_[VarOf(lit)];
  if (v < 0) {
    return -1;
  }
  return (v == 1) != IsNeg(lit) ? 1 : 0;
}

void CdclSearch::AddClause(std::vector<int> lits) {
  NOCTUA_CHECK_MSG(decision_level() == 0, "AddClause is a level-0 operation");
  if (unsat_) {
    return;
  }
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  std::vector<int> kept;
  kept.reserve(lits.size());
  for (size_t i = 0; i < lits.size(); ++i) {
    // Sorted order puts 2v next to 2v+1: a tautology makes the clause vacuous.
    if (i + 1 < lits.size() && lits[i + 1] == Negate(lits[i])) {
      return;
    }
    int lv = LitValue(lits[i]);
    if (lv == 1) {
      return;  // satisfied at level 0
    }
    if (lv == -1) {
      kept.push_back(lits[i]);
    }
    // level-0 false literals are dropped
  }
  if (kept.empty()) {
    unsat_ = true;
    return;
  }
  if (kept.size() == 1) {
    if (!Enqueue(kept[0], -1)) {
      unsat_ = true;
    }
    return;
  }
  AttachClause(std::move(kept));
}

void CdclSearch::AddEncodingClause(std::vector<int> lits) {
  NOCTUA_CHECK_MSG(lits.size() >= 2, "encoding clause must have >= 2 literals");
  for (int lit : lits) {
    NOCTUA_CHECK_MSG(LitValue(lit) == -1, "encoding clause over an assigned literal");
  }
  AttachClause(std::move(lits));
}

int CdclSearch::AttachClause(std::vector<int> lits) {
  int ci = static_cast<int>(clauses_.size());
  watches_[lits[0]].push_back(ci);
  watches_[lits[1]].push_back(ci);
  clauses_.push_back(Clause{std::move(lits)});
  return ci;
}

bool CdclSearch::Enqueue(int lit, int reason_clause) {
  int lv = LitValue(lit);
  if (lv == 0) {
    return false;
  }
  if (lv == 1) {
    return true;
  }
  int v = VarOf(lit);
  value_[v] = IsNeg(lit) ? 0 : 1;
  level_[v] = decision_level();
  reason_[v] = reason_clause;
  trail_.push_back(lit);
  ++nodes_;
  return true;
}

int CdclSearch::Propagate() {
  while (qhead_ < trail_.size()) {
    int p = trail_[qhead_++];  // p just became true...
    int fl = Negate(p);        // ...so fl just became false
    std::vector<int>& wl = watches_[fl];
    size_t i = 0;
    size_t j = 0;
    int conflict = -1;
    for (; i < wl.size(); ++i) {
      int ci = wl[i];
      std::vector<int>& c = clauses_[ci].lits;
      // Keep the falsified watch at position 1.
      if (c[0] == fl) {
        std::swap(c[0], c[1]);
      }
      if (LitValue(c[0]) == 1) {
        wl[j++] = ci;  // satisfied by the other watch
        continue;
      }
      bool moved = false;
      for (size_t k = 2; k < c.size(); ++k) {
        if (LitValue(c[k]) != 0) {
          std::swap(c[1], c[k]);
          watches_[c[1]].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) {
        continue;  // watch migrated to the non-false literal
      }
      wl[j++] = ci;  // all other literals false: unit or conflict
      if (LitValue(c[0]) == 0) {
        conflict = ci;
        ++i;
        break;
      }
      Enqueue(c[0], ci);
    }
    while (i < wl.size()) {
      wl[j++] = wl[i++];
    }
    wl.resize(j);
    if (conflict != -1) {
      qhead_ = trail_.size();  // drain: the conflict invalidates pending propagation
      return conflict;
    }
  }
  return -1;
}

void CdclSearch::Decide(int lit) {
  NOCTUA_CHECK_MSG(LitValue(lit) == -1, "deciding an assigned literal");
  trail_lim_.push_back(static_cast<int>(trail_.size()));
  Enqueue(lit, -1);
}

void CdclSearch::BacktrackTo(int level) {
  if (decision_level() <= level) {
    return;
  }
  size_t keep = static_cast<size_t>(trail_lim_[level]);
  for (size_t i = trail_.size(); i > keep; --i) {
    int v = VarOf(trail_[i - 1]);
    value_[v] = -1;
    reason_[v] = -1;
  }
  trail_.resize(keep);
  trail_lim_.resize(level);
  qhead_ = keep;
}

void CdclSearch::BumpVar(int var) {
  activity_[var] += var_inc_;
  if (activity_[var] > 1e100) {
    for (double& a : activity_) {
      a *= 1e-100;
    }
    var_inc_ *= 1e-100;
  }
}

CdclSearch::Conflict CdclSearch::Analyze(const std::vector<int>& conflict_lits) {
  const int clevel = decision_level();
  NOCTUA_CHECK_MSG(clevel > 0, "conflict analysis at level 0");
  std::vector<int> learned{0};  // slot 0 is the asserting literal, filled below
  int counter = 0;
  int p = -1;
  size_t idx = trail_.size();
  const std::vector<int>* reason_lits = &conflict_lits;
  // Resolve backwards along the trail until exactly one literal of the current decision
  // level remains: the first unique implication point.
  for (;;) {
    for (int q : *reason_lits) {
      if (q == p) {
        continue;  // the implied literal of p's reason clause
      }
      int v = VarOf(q);
      if (seen_[v] == 0 && level_[v] > 0) {
        seen_[v] = 1;
        BumpVar(v);
        if (level_[v] == clevel) {
          ++counter;
        } else {
          learned.push_back(q);
        }
      }
    }
    do {
      --idx;
    } while (seen_[VarOf(trail_[idx])] == 0);
    p = trail_[idx];
    seen_[VarOf(p)] = 0;
    --counter;
    if (counter == 0) {
      break;
    }
    int rc = reason_[VarOf(p)];
    NOCTUA_CHECK_MSG(rc >= 0, "non-UIP current-level literal without a reason");
    reason_lits = &clauses_[rc].lits;
  }
  learned[0] = Negate(p);
  Conflict result;
  if (learned.size() > 1) {
    // Move the highest-level remaining literal to slot 1: it defines the backjump level
    // and must hold a watch so backtracking past it re-wakes the clause.
    size_t mi = 1;
    for (size_t k = 2; k < learned.size(); ++k) {
      if (level_[VarOf(learned[k])] > level_[VarOf(learned[mi])]) {
        mi = k;
      }
    }
    std::swap(learned[1], learned[mi]);
    result.backjump_level = level_[VarOf(learned[1])];
  }
  for (size_t k = 1; k < learned.size(); ++k) {
    seen_[VarOf(learned[k])] = 0;
  }
  result.learned = std::move(learned);
  var_inc_ /= 0.95;  // decay: recent conflicts weigh more
  return result;
}

void CdclSearch::ResolveConflict(const std::vector<int>& conflict_lits) {
  ++conflicts_;
  Conflict c = Analyze(conflict_lits);
  BacktrackTo(c.backjump_level);
  ++learned_;
  if (c.learned.size() == 1) {
    bool ok = Enqueue(c.learned[0], -1);
    NOCTUA_CHECK_MSG(ok, "asserting literal false after backjump");
  } else {
    int ci = AttachClause(std::move(c.learned));
    bool ok = Enqueue(clauses_[ci].lits[0], ci);
    NOCTUA_CHECK_MSG(ok, "asserting literal false after backjump");
  }
}

int CdclSearch::PickBranchVar() const {
  int best = -1;
  for (int v = 0; v < num_vars(); ++v) {
    if (value_[v] < 0 && (best == -1 || activity_[v] > activity_[best])) {
      best = v;
    }
  }
  return best;
}

SolveResult CdclSearch::Solve(const std::function<TheoryResult()>& theory,
                              const std::function<bool()>& budget) {
  if (unsat_) {
    return SolveResult::kUnsat;
  }
  for (;;) {
    int confl = Propagate();
    if (confl != -1) {
      if (decision_level() == 0) {
        unsat_ = true;
        return SolveResult::kUnsat;
      }
      ResolveConflict(clauses_[confl].lits);
      continue;
    }
    if (budget && budget()) {
      return SolveResult::kUnknown;
    }
    if (theory) {
      TheoryResult tr = theory();
      if (tr.verdict == TheoryVerdict::kSat) {
        return SolveResult::kSat;
      }
      if (tr.verdict == TheoryVerdict::kConsistent && tr.decision >= 0) {
        Decide(tr.decision);
        continue;
      }
      if (tr.verdict == TheoryVerdict::kConflict) {
        // The nogood is false under the current assignment, but its literals may all
        // live below the current level; analysis requires a current-level literal, so
        // first backjump to the deepest level the nogood mentions.
        int maxl = 0;
        for (int q : tr.nogood) {
          maxl = std::max(maxl, level_[VarOf(q)]);
        }
        if (tr.nogood.empty() || maxl == 0) {
          unsat_ = true;  // falsified by level-0 facts alone
          return SolveResult::kUnsat;
        }
        BacktrackTo(maxl);
        ResolveConflict(tr.nogood);
        continue;
      }
    }
    int v = PickBranchVar();
    if (v == -1) {
      // Complete conflict-free assignment. With a theory hook this is unreachable in
      // practice (a total assignment evaluates every assertion to a known value, so the
      // hook answers kSat or kConflict), but it is the sat condition for pure SAT.
      return SolveResult::kSat;
    }
    // Always try "true" first: for the direct [atom = value] encoding a positive decision
    // fixes an atom and lets exactly-one clauses propagate the siblings false.
    Decide(PosLit(v));
  }
}

// ---------------------------------------------------------------------------
// CdclBackend: lazy direct encoding + substitute-and-simplify theory.
// ---------------------------------------------------------------------------

SolveResult CdclBackend::DoCheck(TermFactory& factory, const std::vector<Term>& assertions) {
  Stopwatch watch;
  stats_ = SolverStats{};
  model_.values.clear();
  const Budget& budget = options_.budget;
  Deadline deadline = budget.timeout_seconds > 0 && !budget.deterministic
                          ? Deadline::AfterSeconds(budget.timeout_seconds)
                          : Deadline::Never();

  Grounder grounder(&factory, options_.scope);
  std::vector<Term> pending;
  bool feasible = GroundAndFlatten(grounder, factory, assertions, &pending);
  stats_.binders_expanded = grounder.binders_expanded();
  if (!feasible) {
    stats_.seconds = watch.ElapsedSeconds();
    return SolveResult::kUnsat;
  }
  if (pending.empty()) {
    stats_.seconds = watch.ElapsedSeconds();
    return SolveResult::kSat;
  }

  ValueDomains domains;
  domains.Harvest(pending, options_.max_int_domain, options_.max_string_domain);

  // Per-assertion support approximation: the constants an assertion mentions. Every atom
  // that can influence its residual — including array cells materialized mid-search —
  // has its base constant in this set, so nogoods quantify over assigned atoms with a
  // mentioned base, never the whole registry.
  std::vector<std::unordered_set<Term>> consts_of(pending.size());
  for (size_t ai = 0; ai < pending.size(); ++ai) {
    std::unordered_set<Term> seen;
    std::vector<Term> stack{pending[ai]};
    while (!stack.empty()) {
      Term t = stack.back();
      stack.pop_back();
      if (!seen.insert(t).second) {
        continue;
      }
      if (t->kind() == TermKind::kConst) {
        consts_of[ai].insert(t);
      }
      for (Term c : t->children()) {
        stack.push_back(c);
      }
    }
  }
  auto base_const = [](Term atom) {
    while (atom->kind() != TermKind::kConst) {
      atom = atom->child(0);
    }
    return atom;
  };

  // Lazy direct encoding: atoms get their variable block (one per candidate value, tied
  // by exactly-one clauses) the first time they survive in a residual. An atom with a
  // single candidate value gets no variables at all — it is a fact, substituted always.
  CdclSearch search;
  std::vector<Term> atom_terms;            // discovered atoms, first-appearance order
  std::vector<std::vector<Term>> lits_of;  // atom id -> candidate literal terms
  std::vector<std::vector<int>> vars_of;   // atom id -> variable block ({} for facts)
  std::unordered_map<Term, int> atom_id;
  std::unordered_map<Term, Term> forced;   // the facts, as a standing substitution

  auto ensure_atom = [&](Term atom) -> int {
    auto it = atom_id.find(atom);
    if (it != atom_id.end()) {
      return it->second;
    }
    int id = static_cast<int>(atom_terms.size());
    atom_id.emplace(atom, id);
    atom_terms.push_back(atom);
    std::vector<Term> lits = domains.LiteralsFor(factory, options_.scope, atom);
    std::vector<int> block;
    if (lits.size() == 1) {
      forced.emplace(atom, lits[0]);
    } else {
      block.reserve(lits.size());
      std::vector<int> alo;
      alo.reserve(lits.size());
      for (size_t j = 0; j < lits.size(); ++j) {
        int v = search.NewVar();
        block.push_back(v);
        alo.push_back(CdclSearch::PosLit(v));
      }
      // At least one value, at most one value (pairwise; domains are bounded and small).
      search.AddEncodingClause(std::move(alo));
      for (size_t j = 0; j < block.size(); ++j) {
        for (size_t k = j + 1; k < block.size(); ++k) {
          search.AddEncodingClause(
              {CdclSearch::NegLit(block[j]), CdclSearch::NegLit(block[k])});
        }
      }
    }
    lits_of.push_back(std::move(lits));
    vars_of.push_back(std::move(block));
    return id;
  };

  // The lazy theory: substitute every atom the propositional state has fixed into the
  // assertions and let the simplifier collapse the residuals. Literal false => nogood
  // over the assigned support atoms; all literal true => model found; otherwise suggest
  // deciding the first atom surviving in the first open residual (the model finder's
  // branching rule, which never touches atoms the simplifier eliminated).
  auto theory = [&]() -> TheoryResult {
    for (;;) {
      std::unordered_map<Term, Term> values = forced;
      for (size_t i = 0; i < atom_terms.size(); ++i) {
        const std::vector<int>& block = vars_of[i];
        for (size_t j = 0; j < block.size(); ++j) {
          if (search.value(block[j]) == 1) {
            values.emplace(atom_terms[i], lits_of[i][j]);
            break;
          }
        }
      }
      std::unordered_map<Term, Term> memo;
      std::unordered_map<Term, Term> atom_memo;
      Term branch_atom = nullptr;
      bool all_true = true;
      for (size_t ai = 0; ai < pending.size(); ++ai) {
        ++stats_.evaluations;
        Term r = SubstFixpoint(factory, pending[ai], values, memo);
        if (r->IsBoolLit(true)) {
          continue;
        }
        if (r->IsBoolLit(false)) {
          TheoryResult out;
          out.verdict = TheoryVerdict::kConflict;
          for (size_t i = 0; i < atom_terms.size(); ++i) {
            const std::vector<int>& block = vars_of[i];
            if (block.empty() || consts_of[ai].count(base_const(atom_terms[i])) == 0) {
              continue;
            }
            for (size_t j = 0; j < block.size(); ++j) {
              if (search.value(block[j]) == 1) {
                out.nogood.push_back(CdclSearch::NegLit(block[j]));
                break;
              }
            }
          }
          return out;
        }
        all_true = false;
        if (branch_atom == nullptr) {
          branch_atom = FindFirstAtom(r, atom_memo);
          NOCTUA_CHECK_MSG(branch_atom != nullptr, "undecided residual without atoms");
        }
      }
      if (all_true) {
        return TheoryResult{TheoryVerdict::kSat, {}, -1};
      }
      int id = ensure_atom(branch_atom);
      if (vars_of[id].empty()) {
        continue;  // a fact joined `forced`: substitute it and re-simplify
      }
      for (int var : vars_of[id]) {
        if (search.value(var) == -1) {
          TheoryResult out;
          out.decision = CdclSearch::PosLit(var);
          return out;
        }
      }
      NOCTUA_UNREACHABLE("open residual atom with no decidable value");
    }
  };

  auto over_budget = [&]() {
    if (search.nodes() > budget.max_nodes) {
      return true;
    }
    return deadline.Expired() ||
           (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed));
  };

  SolveResult result = search.Solve(theory, over_budget);
  stats_.nodes_visited = search.nodes();
  stats_.num_atoms = atom_terms.size();
  stats_.conflicts = search.conflicts();
  stats_.learned_clauses = search.learned_clauses();
  if (result == SolveResult::kSat) {
    for (size_t i = 0; i < atom_terms.size(); ++i) {
      const std::vector<int>& block = vars_of[i];
      for (size_t j = 0; j < block.size(); ++j) {
        if (search.value(block[j]) == 1) {
          model_.values[GroundAtomName(atom_terms[i])] = lits_of[i][j]->ToString();
          break;
        }
      }
    }
    for (const auto& [atom, lit] : forced) {
      model_.values[GroundAtomName(atom)] = lit->ToString();
    }
  }
  stats_.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace noctua::smt
